// Package amac_bench regenerates every table and figure of the paper's
// evaluation as testing.B benchmarks. Each benchmark runs the corresponding
// experiment from internal/harness and reports the headline quantity as a
// custom metric, so `go test -bench=. -benchmem` reproduces the paper's
// results table end to end. See EXPERIMENTS.md for the paper-vs-measured
// record produced by cmd/amacbench.
package amac_bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/harness"
	"amac/internal/mac"
	"amac/internal/scenario"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

func benchOpts(seed int64) harness.Options {
	return harness.Options{Quick: true, Trials: 1, Seed: seed}
}

// reportRatio extracts the final-row measured/bound ratio column and
// reports it as a benchmark metric.
func reportRatio(b *testing.B, tab *harness.Table, col int) {
	b.Helper()
	if len(tab.Rows) == 0 {
		b.Fatal("empty table")
	}
	last := tab.Rows[len(tab.Rows)-1]
	v, err := strconv.ParseFloat(last[col], 64)
	if err != nil {
		b.Fatalf("parse ratio %q: %v", last[col], err)
	}
	b.ReportMetric(v, "measured/bound")
}

// BenchmarkFig1StdReliable regenerates the G'=G cell of Figure 1:
// BMMB in O(D·Fprog + k·Fack) on reliable networks.
func BenchmarkFig1StdReliable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := harness.Fig1StdReliable(benchOpts(int64(i + 1)))
		reportRatio(b, tab, 6)
	}
}

// BenchmarkFig1StdRRestricted regenerates the r-restricted cell of Figure 1
// (Theorem 3.2): BMMB in O(D·Fprog + r·k·Fack).
func BenchmarkFig1StdRRestricted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := harness.Fig1StdRRestricted(benchOpts(int64(i + 1)))
		reportRatio(b, tab, 6)
	}
}

// BenchmarkFig1StdArbitrary regenerates the arbitrary-G' cell of Figure 1
// (Theorem 3.1): BMMB in O((D+k)·Fack).
func BenchmarkFig1StdArbitrary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := harness.Fig1StdArbitrary(benchOpts(int64(i + 1)))
		reportRatio(b, tab, 5)
	}
}

// BenchmarkFig2LowerBound regenerates the grey-zone lower bound (Theorem
// 3.17) by executing the Figure 2 parallel-lines schedule and the Lemma
// 3.18 star choke.
func BenchmarkFig2LowerBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := harness.Fig2LowerBound(benchOpts(int64(i + 1)))
		reportRatio(b, tab, 4)
	}
}

// BenchmarkFig1EnhGreyZone regenerates the enhanced-model cell of Figure 1
// (Theorem 4.1): FMMB in O((D log n + k log n + log³n)·Fprog).
func BenchmarkFig1EnhGreyZone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := harness.Fig1EnhGreyZone(benchOpts(int64(i + 1)))
		reportRatio(b, tab, 6)
	}
}

// BenchmarkAblationFackRatio regenerates the BMMB-vs-FMMB comparison as the
// Fack/Fprog gap widens (the paper's case for the abort interface).
func BenchmarkAblationFackRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = harness.AblationFackRatio(benchOpts(int64(i + 1)))
	}
}

// BenchmarkLemma318Choke isolates the star-choke execution of Lemma 3.18
// at k = 16 and reports the completion time in Fack units.
func BenchmarkLemma318Choke(b *testing.B) {
	const k = 16
	s := topology.NewStarChoke(k)
	a := make(core.Assignment, s.N())
	for i := 1; i < k; i++ {
		v := s.Source(i)
		a[v] = []core.Msg{{ID: i - 1, Origin: v}}
	}
	a[s.Hub()] = []core.Msg{{ID: k - 1, Origin: s.Hub()}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.MustRun(core.RunConfig{
			Dual:             s.Dual,
			Fack:             200,
			Fprog:            10,
			Scheduler:        &sched.Sync{},
			Seed:             int64(i + 1),
			Assignment:       a,
			Automata:         core.NewBMMBFleet(s.N()),
			HaltOnCompletion: true,
		})
		if !res.Solved {
			b.Fatal("not solved")
		}
		b.ReportMetric(float64(res.CompletionTime)/200, "Fack-units")
	}
}

// BenchmarkMISSubroutine measures the standalone MIS subroutine on a
// grey-zone geometric network.
func BenchmarkMISSubroutine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := harness.MISExperiment(benchOpts(int64(i + 1)))
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkGatherSubroutine and BenchmarkSpreadSubroutine measure the FMMB
// stages against their lemma budgets (Lemmas 4.6 and 4.8).
func BenchmarkGatherSubroutine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := harness.SubroutineExperiment(benchOpts(int64(i + 1)))
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkSpreadSubroutine reports the spread-stage rounds of the largest
// k point of the subroutine experiment.
func BenchmarkSpreadSubroutine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := harness.SubroutineExperiment(benchOpts(int64(i + 100)))
		last := tab.Rows[len(tab.Rows)-1]
		v, err := strconv.ParseFloat(last[3], 64)
		if err != nil {
			b.Fatalf("parse %q: %v", last[3], err)
		}
		b.ReportMetric(v, "spread-rounds")
	}
}

// BenchmarkBMMBvsFMMB reports raw completion times of the two algorithms on
// the same grey-zone network at a realistic Fack/Fprog = 32.
func BenchmarkBMMBvsFMMB(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	d := topology.ConnectedRandomGeometric(30, 3.8, 1.6, 0.5, rng, 200)
	if d == nil {
		b.Fatal("no connected instance")
	}
	const (
		k     = 4
		fprog = sim.Time(10)
		fack  = sim.Time(320) // Fack/Fprog = 32
	)
	a := make(core.Assignment, d.N())
	for i := 0; i < k; i++ {
		v := i * d.N() / k
		a[v] = append(a[v], core.Msg{ID: i, Origin: graph.NodeID(v)})
	}
	var bmmbT, fmmbT float64
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		bres := core.MustRun(core.RunConfig{
			Dual:             d,
			Fack:             fack,
			Fprog:            fprog,
			Scheduler:        &sched.Sync{Rel: sched.Bernoulli{P: 0.5}},
			Seed:             seed,
			Assignment:       a,
			Automata:         core.NewBMMBFleet(d.N()),
			HaltOnCompletion: true,
		})
		cfg := core.FMMBConfig{N: d.N(), K: k, D: d.G.Diameter(), C: 1.6}
		fres := core.MustRun(core.RunConfig{
			Dual:             d,
			Fack:             fack,
			Fprog:            fprog,
			Scheduler:        &sched.Slot{},
			Mode:             mac.Enhanced,
			Seed:             seed,
			Assignment:       a,
			Automata:         core.NewFMMBFleet(d.N(), cfg),
			Horizon:          sim.Time(cfg.Rounds()+2) * fprog,
			StepLimit:        1 << 62,
			HaltOnCompletion: true,
		})
		if !bres.Solved || !fres.Solved {
			b.Fatal("a run failed")
		}
		bmmbT += float64(bres.CompletionTime)
		fmmbT += float64(fres.CompletionTime)
	}
	b.ReportMetric(bmmbT/float64(b.N), "bmmb-ticks")
	b.ReportMetric(fmmbT/float64(b.N), "fmmb-ticks")
}

// BenchmarkEngineThroughput measures raw simulator throughput: BMMB
// flooding one message over a 64-node line, events per second.
func BenchmarkEngineThroughput(b *testing.B) {
	benchThroughput(b, false)
}

// BenchmarkEngineThroughputNoTrace is the same flood on the no-trace fast
// path (RunOptions.Trace = TraceOff): the completion watcher still observes
// every event, but nothing is recorded.
func BenchmarkEngineThroughputNoTrace(b *testing.B) {
	benchThroughput(b, true)
}

func traceOpts(noTrace bool) core.RunOptions {
	if noTrace {
		return core.RunOptions{Trace: core.TraceOff}
	}
	return core.RunOptions{}
}

func benchThroughput(b *testing.B, noTrace bool) {
	d := topology.Line(64)
	var steps uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.MustRun(core.RunConfig{
			Dual:             d,
			Fack:             200,
			Fprog:            10,
			Scheduler:        &sched.Sync{},
			Seed:             int64(i + 1),
			Assignment:       core.SingleSource(64, 0, 4),
			Automata:         core.NewBMMBFleet(64),
			HaltOnCompletion: true,
			Options:          traceOpts(noTrace),
		})
		if !res.Solved {
			b.Fatal("not solved")
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N), "events/op")
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "events/sec")
	_ = sim.Time(0)
}

// BenchmarkEngineThroughputSparse floods one message over a 1024-node ring.
// Per-instance delivery state dominates memory at this shape — every node
// re-broadcasts once, so dense per-instance slices would cost O(n) words ×
// n instances (~8 MB per flood). The degree-indexed (CSR) storage keeps it
// at O(deg) per instance, which is what B/op measures here.
func BenchmarkEngineThroughputSparse(b *testing.B) {
	const n = 1024
	d := topology.Ring(n)
	var steps uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.MustRun(core.RunConfig{
			Dual:             d,
			Fack:             200,
			Fprog:            10,
			Scheduler:        &sched.Sync{},
			Seed:             int64(i + 1),
			Assignment:       core.SingleSource(n, 0, 1),
			Automata:         core.NewBMMBFleet(n),
			HaltOnCompletion: true,
			Options:          core.RunOptions{Trace: core.TraceOff},
		})
		if !res.Solved {
			b.Fatal("not solved")
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N), "events/op")
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkSweepPinnedTopology measures repeated trials of one pinned
// topology through scenario.Sweep — the shape of every figure sweep in this
// repo — with the warm run-arena path on (default) and off (the -no-arena
// escape hatch). B/op is the headline metric: warm trials reuse the fleet,
// the engine and its node states, the flat CSR delivery rows and the trace
// buffer, so per-trial allocation collapses to per-event work.
func BenchmarkSweepPinnedTopology(b *testing.B) {
	spec := scenario.Spec{
		Name: "pinned-rline-sweep",
		Topology: scenario.TopologySpec{
			Name:   "rline",
			Params: topology.Params{"n": 48, "r": 2, "p": 0.6},
			Seed:   7,
		},
		Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: 4},
		Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
		Scheduler: scenario.SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
		Model:     scenario.ModelSpec{Fprog: 10, Fack: 200},
		Run:       scenario.RunSpec{Seed: 1, Trials: 16},
	}
	for _, mode := range []struct {
		name    string
		noArena bool
	}{{"arena", false}, {"cold", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reports, err := scenario.SweepWithOptions([]scenario.Spec{spec},
					scenario.SweepOptions{Parallelism: 1, NoArena: mode.noArena})
				if err != nil {
					b.Fatal(err)
				}
				if got := reports[0].Solved(); got != spec.Run.Trials {
					b.Fatalf("%d/%d trials solved", got, spec.Run.Trials)
				}
			}
		})
	}
}

// BenchmarkSweepRandomTopology measures repeated trials of an *unpinned*
// randomized topology through scenario.Sweep — every trial draws a fresh
// grey-zone geometric network — with the warm per-worker path on (default:
// workspace-built graphs, rebound run arena) and off (-no-arena). B/op is
// the headline metric: warm trials emit the per-trial graphs into recycled
// workspace storage and rebind one runner instead of building a cold engine,
// so the per-trial cost collapses toward per-event work even though no two
// trials share a network.
func BenchmarkSweepRandomTopology(b *testing.B) {
	spec := scenario.Spec{
		Name: "random-rgg-sweep",
		Topology: scenario.TopologySpec{
			Name:   "rgg",
			Params: topology.Params{"n": 36, "side": 4.2, "c": 1.6, "p": 0.5},
		},
		Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: 4},
		Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
		Scheduler: scenario.SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
		Model:     scenario.ModelSpec{Fprog: 10, Fack: 200},
		Run:       scenario.RunSpec{Seed: 1, Trials: 16},
	}
	for _, mode := range []struct {
		name    string
		noArena bool
	}{{"arena", false}, {"cold", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reports, err := scenario.SweepWithOptions([]scenario.Spec{spec},
					scenario.SweepOptions{Parallelism: 1, NoArena: mode.noArena})
				if err != nil {
					b.Fatal(err)
				}
				if got := reports[0].Solved(); got != spec.Run.Trials {
					b.Fatalf("%d/%d trials solved", got, spec.Run.Trials)
				}
			}
		})
	}
}

// BenchmarkHarnessParallelism measures experiment wall-time scaling with
// Options.Parallelism (sub-benchmarks p=1 and p=NumCPU); the rendered
// tables are byte-identical by construction.
func BenchmarkHarnessParallelism(b *testing.B) {
	for _, p := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOpts(int64(i + 1))
				o.Parallelism = p
				_ = harness.Fig1StdReliable(o)
			}
		})
	}
}
