module amac

go 1.24

tool amac/cmd/amacvet
