// Package stats provides the small statistics toolkit the benchmark
// harness uses to verify scaling *shapes*: summaries over repeated runs and
// least-squares fits of measured times against the paper's bound formulas.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary aggregates a sample.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	Median float64
	P95    float64
	Stddev float64
}

// Summarize computes the summary of xs. It panics on an empty sample: a
// missing measurement is a harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Percentile(sorted, 0.5)
	s.P95 = Percentile(sorted, 0.95)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of a sorted sample, with
// linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Fit is a least-squares line y = Slope·x + Intercept with the Pearson
// correlation of the underlying data.
type Fit struct {
	Slope     float64
	Intercept float64
	R         float64
}

// String renders the fit compactly.
func (f Fit) String() string {
	return fmt.Sprintf("y = %.4g·x + %.4g (r=%.3f)", f.Slope, f.Intercept, f.R)
}

// FitLinear computes the least-squares fit of y against x. Both slices must
// have equal length ≥ 2.
func FitLinear(x, y []float64) Fit {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: FitLinear needs two equal-length samples of size >= 2")
	}
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		panic("stats: degenerate x sample (zero variance)")
	}
	f := Fit{}
	f.Slope = (n*sxy - sx*sy) / denom
	f.Intercept = (sy - f.Slope*sx) / n
	ry := n*syy - sy*sy
	if ry <= 0 {
		f.R = 0 // y constant: correlation undefined, report 0
	} else {
		f.R = (n*sxy - sx*sy) / math.Sqrt(denom*ry)
	}
	return f
}

// Ratios returns elementwise y[i]/x[i]; x entries must be non-zero.
func Ratios(y, x []float64) []float64 {
	if len(x) != len(y) {
		panic("stats: Ratios needs equal-length samples")
	}
	out := make([]float64, len(x))
	for i := range x {
		if x[i] == 0 {
			panic("stats: zero denominator in Ratios")
		}
		out[i] = y[i] / x[i]
	}
	return out
}

// GrowthTrend fits the ratio measured/bound against the sweep variable and
// reports the relative growth across the sweep: (fit at max x − fit at min
// x) / fit at min x. A bounded (O(1)) ratio yields a small value; a
// systematic upward trend — evidence the bound formula misses a factor —
// yields a large positive one.
func GrowthTrend(sweep, measured, bound []float64) float64 {
	r := Ratios(measured, bound)
	f := FitLinear(sweep, r)
	lo, hi := sweep[0], sweep[0]
	for _, x := range sweep {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	atLo := f.Slope*lo + f.Intercept
	atHi := f.Slope*hi + f.Intercept
	if atLo <= 0 {
		return math.Inf(1)
	}
	return (atHi - atLo) / atLo
}
