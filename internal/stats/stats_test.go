package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || !almost(s.Mean, 2.5) || !almost(s.Min, 1) || !almost(s.Max, 4) {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Median, 2.5) {
		t.Fatalf("median = %v", s.Median)
	}
	if s.Stddev <= 0 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Stddev != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample did not panic")
		}
	}()
	Summarize(nil)
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	if got := Percentile(sorted, 0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(sorted, 1); got != 50 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(sorted, 0.5); got != 30 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(sorted, 0.25); got != 20 {
		t.Fatalf("p25 = %v", got)
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	f := FitLinear(x, y)
	if !almost(f.Slope, 2) || !almost(f.Intercept, 3) || !almost(f.R, 1) {
		t.Fatalf("fit = %v", f)
	}
	if f.String() == "" {
		t.Fatal("empty fit string")
	}
}

func TestFitLinearConstantY(t *testing.T) {
	f := FitLinear([]float64{1, 2, 3}, []float64{4, 4, 4})
	if !almost(f.Slope, 0) || !almost(f.Intercept, 4) || f.R != 0 {
		t.Fatalf("fit = %v", f)
	}
}

// Property: fitting y = a·x + b recovers a and b for random a, b.
func TestFitLinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()*20 - 10
		b := rng.Float64()*20 - 10
		var xs, ys []float64
		for i := 0; i < 10; i++ {
			x := float64(i + 1)
			xs = append(xs, x)
			ys = append(ys, a*x+b)
		}
		fit := FitLinear(xs, ys)
		return math.Abs(fit.Slope-a) < 1e-6 && math.Abs(fit.Intercept-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRatios(t *testing.T) {
	r := Ratios([]float64{2, 6, 12}, []float64{1, 2, 3})
	want := []float64{2, 3, 4}
	for i := range want {
		if !almost(r[i], want[i]) {
			t.Fatalf("ratios = %v", r)
		}
	}
}

func TestGrowthTrendFlat(t *testing.T) {
	// measured = 2 × bound: ratio flat ⇒ trend ≈ 0.
	sweep := []float64{1, 2, 4, 8}
	bound := []float64{10, 20, 40, 80}
	measured := []float64{20, 40, 80, 160}
	if g := GrowthTrend(sweep, measured, bound); math.Abs(g) > 1e-9 {
		t.Fatalf("flat ratio has trend %v", g)
	}
}

func TestGrowthTrendRising(t *testing.T) {
	// measured grows like sweep² while bound grows like sweep: ratio rises
	// linearly ⇒ trend positive and large.
	sweep := []float64{1, 2, 4, 8}
	bound := []float64{1, 2, 4, 8}
	measured := []float64{1, 4, 16, 64}
	if g := GrowthTrend(sweep, measured, bound); g < 2 {
		t.Fatalf("rising ratio trend = %v, want large", g)
	}
}
