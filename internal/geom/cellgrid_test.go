package geom

import (
	"math/rand"
	"slices"
	"testing"

	"amac/internal/graph"
)

// forceCellGrid lowers the grid threshold so the cell-grid path runs at test
// sizes, restoring it on cleanup.
func forceCellGrid(t *testing.T, min int) {
	t.Helper()
	old := cellGridMinNodes
	cellGridMinNodes = min
	t.Cleanup(func() { cellGridMinNodes = old })
}

func edgesOf(g *graph.Graph) [][2]graph.NodeID { return g.Edges() }

// TestUnitDiskCellGridMatchesScan forces the cell-grid sweep at small n and
// diffs its edge set against the all-pairs scan on randomized embeddings —
// the equivalence that lets large-n builds switch paths without perturbing
// any topology.
func TestUnitDiskCellGridMatchesScan(t *testing.T) {
	for _, tc := range []struct {
		n      int
		side   float64
		radius float64
		seed   int64
	}{
		{1, 1, 1, 1},
		{2, 0.5, 1, 2},
		{40, 4, 1, 3},
		{120, 8, 1, 4},
		{120, 8, 2.5, 5},
		{200, 3, 1, 6},  // dense: most pairs in range
		{200, 40, 1, 7}, // sparse: most cells empty
		{64, 6, 0.3, 8}, // radius well under cell side of 1
	} {
		e := RandomUniform(tc.n, tc.side, rand.New(rand.NewSource(tc.seed)))

		cellGridMinNodes = 1 << 30
		scan := e.UnitDisk(tc.radius)

		forceCellGrid(t, 0)
		gridded := e.UnitDisk(tc.radius)

		if !slices.Equal(edgesOf(scan), edgesOf(gridded)) {
			t.Fatalf("n=%d side=%g radius=%g: cell-grid edges differ from scan\nscan: %v\ngrid: %v",
				tc.n, tc.side, tc.radius, edgesOf(scan), edgesOf(gridded))
		}
	}
}

// TestGreyZoneCellGridMatchesScan checks the stronger grey-zone contract:
// not just the same edge set but the same random stream consumption, so a
// seeded build is bit-identical whichever path runs. The post-build draw
// comparison fails if either path consumes one extra or one fewer variate.
func TestGreyZoneCellGridMatchesScan(t *testing.T) {
	for _, tc := range []struct {
		n    int
		side float64
		c    float64
		p    float64
		seed int64
	}{
		{50, 5, 1.5, 0.5, 11},
		{120, 8, 2, 0.3, 12},
		{120, 8, 1, 0.5, 13}, // c = 1: no grey zone, no draws at all
		{200, 6, 3, 1, 14},   // p = 1: every candidate taken, still no draws
		{200, 30, 1.7, 0.9, 15},
	} {
		e := RandomUniform(tc.n, tc.side, rand.New(rand.NewSource(tc.seed)))

		cellGridMinNodes = 1 << 30
		scanRng := rand.New(rand.NewSource(tc.seed + 1000))
		scan := e.GreyZone(tc.c, tc.p, scanRng)

		forceCellGrid(t, 0)
		gridRng := rand.New(rand.NewSource(tc.seed + 1000))
		gridded := e.GreyZone(tc.c, tc.p, gridRng)

		if !slices.Equal(edgesOf(scan), edgesOf(gridded)) {
			t.Fatalf("n=%d c=%g p=%g: grey-zone cell-grid edges differ from scan",
				tc.n, tc.c, tc.p)
		}
		if a, b := scanRng.Int63(), gridRng.Int63(); a != b {
			t.Fatalf("n=%d c=%g p=%g: random streams diverged (next draw %d vs %d) — the paths consumed different variate counts",
				tc.n, tc.c, tc.p, a, b)
		}
		if !e.VerifyGreyZone(e.UnitDisk(1), gridded, tc.c) {
			t.Fatalf("n=%d c=%g p=%g: cell-grid grey zone violates the constraint", tc.n, tc.c, tc.p)
		}
	}
}

// TestCellGridIntoReusesStorage checks the grid path composes with the
// structure-sharing Into builders: emitting into a recycled graph matches a
// fresh build.
func TestCellGridIntoReusesStorage(t *testing.T) {
	forceCellGrid(t, 0)
	recycled := graph.New(0)
	for _, seed := range []int64{21, 22, 23} {
		e := RandomUniform(150, 7, rand.New(rand.NewSource(seed)))
		fresh := e.UnitDisk(1)
		e.UnitDiskInto(recycled, 1)
		if !slices.Equal(edgesOf(fresh), edgesOf(recycled)) {
			t.Fatalf("seed %d: UnitDiskInto on recycled storage differs from fresh build", seed)
		}
	}
}
