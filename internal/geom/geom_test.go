package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"amac/internal/graph"
)

func TestPointDist(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if d := a.Dist(b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d := a.Dist(a); d != 0 {
		t.Fatalf("Dist(a,a) = %v", d)
	}
}

func TestUnitDiskLine(t *testing.T) {
	e := LinePoints(5, 1.0)
	g := e.UnitDisk(1.0)
	for i := 0; i < 4; i++ {
		if !g.HasEdge(graph.NodeID(i), graph.NodeID(i+1)) {
			t.Fatalf("missing line edge %d-%d", i, i+1)
		}
	}
	if g.HasEdge(0, 2) {
		t.Fatal("unexpected edge 0-2 at distance 2")
	}
	if g.Diameter() != 4 {
		t.Fatalf("Diameter = %d, want 4", g.Diameter())
	}
}

func TestGreyZoneConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := RandomUniform(60, 6, rng)
	g := e.UnitDisk(1.0)
	c := 2.0
	gp := e.GreyZone(c, 0.5, rng)
	if !e.VerifyGreyZone(g, gp, c) {
		t.Fatal("generated grey zone dual violates the constraint")
	}
	// Densest grey zone: p = 1.
	gpFull := e.GreyZone(c, 1.0, rng)
	if !e.VerifyGreyZone(g, gpFull, c) {
		t.Fatal("full grey zone dual violates the constraint")
	}
	if gpFull.M() < gp.M() {
		t.Fatal("p=1 grey zone has fewer edges than p=0.5")
	}
}

func TestVerifyGreyZoneRejects(t *testing.T) {
	e := LinePoints(4, 1.0)
	g := e.UnitDisk(1.0)
	// Add a too-long edge to G': 0 to 3 has length 3 > c = 2.
	bad := g.Clone()
	bad.AddEdge(0, 3)
	if e.VerifyGreyZone(g, bad, 2.0) {
		t.Fatal("VerifyGreyZone accepted an over-length G' edge")
	}
	// G missing a unit edge.
	gBad := graph.New(4)
	if e.VerifyGreyZone(gBad, g, 2.0) {
		t.Fatal("VerifyGreyZone accepted a non-unit-disk G")
	}
}

func TestPackingBoundLemma42(t *testing.T) {
	// Generate random point sets with pairwise distance > 1 and diameter <= d;
	// their size must never exceed PackingBound(d).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1.0 + rng.Float64()*4
		var pts []Point
		// Greedy packing attempt.
		for tries := 0; tries < 2000 && len(pts) < 500; tries++ {
			cand := Point{X: rng.Float64() * d, Y: rng.Float64() * d}
			ok := true
			for _, p := range pts {
				if p.Dist(cand) <= 1 {
					ok = false
					break
				}
			}
			if ok {
				pts = append(pts, cand)
			}
		}
		// All pairwise distances are in (1, d*sqrt2]; use that diameter.
		diam := 0.0
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				if dd := pts[i].Dist(pts[j]); dd > diam {
					diam = dd
				}
			}
		}
		return len(pts) <= PackingBound(diam)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestIsPackedIndependentSet(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e := RandomUniform(80, 8, rng)
	g := e.UnitDisk(1.0)
	// Greedy MIS of a unit-disk graph is packed with minSep 1.
	var mis []graph.NodeID
	taken := make([]bool, g.N())
	for u := 0; u < g.N(); u++ {
		if taken[u] {
			continue
		}
		mis = append(mis, graph.NodeID(u))
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			taken[v] = true
		}
		taken[u] = true
	}
	if !g.IsIndependent(mis) {
		t.Fatal("greedy set not independent")
	}
	if !e.IsPacked(mis, 1.0) {
		t.Fatal("independent set of a unit-disk graph must be 1-packed")
	}
}

func TestGridPoints(t *testing.T) {
	e := GridPoints(3, 4, 1.0)
	if e.N() != 12 {
		t.Fatalf("N = %d", e.N())
	}
	// Node r*cols+c at (c, r).
	if e[5] != (Point{X: 1, Y: 1}) {
		t.Fatalf("e[5] = %v", e[5])
	}
	g := e.UnitDisk(1.0)
	// Interior node has 4 neighbors at spacing 1 (diagonals are sqrt2 > 1).
	if g.Degree(5) != 4 {
		t.Fatalf("grid interior degree = %d, want 4", g.Degree(5))
	}
}

func TestTwoLinesGeometry(t *testing.T) {
	d := 10
	spacing, dy := 1.0, 0.8
	e := TwoLines(d, spacing, dy)
	if e.N() != 2*d {
		t.Fatalf("N = %d", e.N())
	}
	g := e.UnitDisk(1.0)
	// Within-line edges exist.
	if !g.HasEdge(0, 1) || !g.HasEdge(graph.NodeID(d), graph.NodeID(d+1)) {
		t.Fatal("missing intra-line edges")
	}
	// The diagonal (a_i, b_{i+1}) has length sqrt(1+0.64) ≈ 1.28 > 1: not in G.
	if g.HasEdge(0, graph.NodeID(d+1)) {
		t.Fatal("diagonal should not be reliable")
	}
	// But it is within c = 1.5 so a grey zone G' may include it.
	diag := e.Dist(0, graph.NodeID(d+1))
	if diag <= 1 || diag > 1.5 {
		t.Fatalf("diagonal length %v outside (1, 1.5]", diag)
	}
}

func TestRandomUniformDeterministic(t *testing.T) {
	a := RandomUniform(10, 5, rand.New(rand.NewSource(1)))
	b := RandomUniform(10, 5, rand.New(rand.NewSource(1)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different embeddings")
		}
	}
}

func TestGreyZoneBadC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("c < 1 did not panic")
		}
	}()
	LinePoints(3, 1).GreyZone(0.5, 1, rand.New(rand.NewSource(1)))
}
