package geom

import (
	"math"
	"slices"

	"amac/internal/graph"
)

// cellGridMinNodes is the embedding size at which UnitDiskInto and
// GreyZoneInto switch from the O(n²) all-pairs scan to the cell-grid sweep
// below. It is a variable, not a constant, so the equivalence tests can
// force the grid path at small n and diff it against the scan; every
// experiment predating the large-n family sits under the threshold and
// keeps the scan bit for bit.
var cellGridMinNodes = 2048

// cellGrid buckets an embedding into square cells of side ≥ the interaction
// radius, so each node's neighbor candidates are confined to its 3×3 cell
// block: O(n·deg) candidate pairs on bounded-density embeddings instead of
// the all-pairs n²/2. Cells are stored CSR-style (one flat id array plus
// per-cell offsets), matching the graph core's layout.
type cellGrid struct {
	minX, minY float64
	inv        float64 // 1 / cell side
	cols, rows int
	start      []int32        // per-cell offsets into ids, len cols*rows+1
	ids        []graph.NodeID // node ids grouped by cell, ascending per cell
	cand       []graph.NodeID // candidate scratch reused across nodes
}

// build indexes the embedding with cells of the given side (the interaction
// radius; every pair within that distance shares a cell or touches an
// adjacent one).
func (cg *cellGrid) build(e Embedding, side float64) {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, pt := range e {
		minX, minY = math.Min(minX, pt.X), math.Min(minY, pt.Y)
		maxX, maxY = math.Max(maxX, pt.X), math.Max(maxY, pt.Y)
	}
	cg.minX, cg.minY = minX, minY
	cg.inv = 1 / side
	cg.cols = int((maxX-minX)*cg.inv) + 1
	cg.rows = int((maxY-minY)*cg.inv) + 1
	cells := cg.cols * cg.rows
	cg.start = make([]int32, cells+1)
	for _, pt := range e {
		cg.start[cg.cell(pt)+1]++
	}
	for i := 1; i <= cells; i++ {
		cg.start[i] += cg.start[i-1]
	}
	cg.ids = make([]graph.NodeID, len(e))
	cursor := make([]int32, cells)
	// Nodes are placed in id order, so each cell's slice stays ascending.
	for u, pt := range e {
		c := cg.cell(pt)
		cg.ids[cg.start[c]+cursor[c]] = graph.NodeID(u)
		cursor[c]++
	}
}

func (cg *cellGrid) cell(pt Point) int {
	cx := int((pt.X - cg.minX) * cg.inv)
	cy := int((pt.Y - cg.minY) * cg.inv)
	return cy*cg.cols + cx
}

// candidates returns every node v > u in u's 3×3 cell block, sorted
// ascending — a superset of the nodes within one cell side of u, in the
// order the all-pairs scan would visit them. The slice is scratch owned by
// the grid, overwritten by the next call.
func (cg *cellGrid) candidates(e Embedding, u graph.NodeID) []graph.NodeID {
	cx := int((e[u].X - cg.minX) * cg.inv)
	cy := int((e[u].Y - cg.minY) * cg.inv)
	out := cg.cand[:0]
	for dy := -1; dy <= 1; dy++ {
		y := cy + dy
		if y < 0 || y >= cg.rows {
			continue
		}
		for dx := -1; dx <= 1; dx++ {
			x := cx + dx
			if x < 0 || x >= cg.cols {
				continue
			}
			c := y*cg.cols + x
			bucket := cg.ids[cg.start[c]:cg.start[c+1]]
			// Buckets are ascending: skip to the first id past u.
			lo, hi := 0, len(bucket)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if bucket[mid] <= u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			out = append(out, bucket[lo:]...)
		}
	}
	slices.Sort(out)
	cg.cand = out
	return out
}
