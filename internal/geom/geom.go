// Package geom provides the Euclidean-plane machinery behind the paper's
// grey zone constraint (Section 2): node embeddings p : V → R², unit-disk
// reliable graphs (edge iff distance ≤ 1), grey-zone unreliable graphs
// (E′ edges only between nodes at distance ≤ c for a universal constant
// c ≥ 1), and the sphere-packing bound (Lemma 4.2) used throughout the
// analysis of FMMB.
package geom

import (
	"math"
	"math/rand"

	"amac/internal/graph"
)

// Point is a position in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance ‖p − q‖₂.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Embedding assigns plane positions to nodes 0..n-1.
type Embedding []Point

// N returns the number of embedded nodes.
func (e Embedding) N() int { return len(e) }

// Dist returns the distance between nodes u and v under the embedding.
func (e Embedding) Dist(u, v graph.NodeID) float64 {
	return e[u].Dist(e[v])
}

// UnitDisk builds the reliable graph G of the grey zone model: nodes u ≠ v
// are adjacent iff their distance is at most radius. The paper normalizes
// radius to 1.
func (e Embedding) UnitDisk(radius float64) *graph.Graph {
	return e.UnitDiskInto(graph.New(len(e)), radius)
}

// UnitDiskInto is UnitDisk emitting into g (reset first, keeping its
// adjacency storage — see graph.Reset) and returns g. Past
// cellGridMinNodes the candidate pairs come from a cell-grid bucketing of
// the embedding instead of the all-pairs scan; the edge set is identical.
func (e Embedding) UnitDiskInto(g *graph.Graph, radius float64) *graph.Graph {
	g.Reset(len(e))
	if len(e) >= cellGridMinNodes && radius > 0 {
		var cg cellGrid
		cg.build(e, radius)
		for u := 0; u < len(e); u++ {
			for _, v := range cg.candidates(e, graph.NodeID(u)) {
				if e[u].Dist(e[v]) <= radius {
					g.AddEdge(graph.NodeID(u), v)
				}
			}
		}
		return g
	}
	for u := 0; u < len(e); u++ {
		for v := u + 1; v < len(e); v++ {
			if e[u].Dist(e[v]) <= radius {
				g.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return g
}

// GreyZone builds an unreliable graph G′ for the embedding: it contains
// every unit-disk edge (distance ≤ 1) plus each candidate grey-zone edge
// (distance in (1, c]) independently with probability p, drawn from rng.
// With p = 1 the result is the densest legal grey-zone G′. The result
// always satisfies the paper's grey zone constraint: E ⊆ E′ and every E′
// edge has length ≤ c.
func (e Embedding) GreyZone(c, p float64, rng *rand.Rand) *graph.Graph {
	return e.GreyZoneInto(graph.New(len(e)), c, p, rng)
}

// GreyZoneInto is GreyZone emitting into g (reset first, keeping its
// adjacency storage) and returns g. The random stream is consumed in exactly
// the order GreyZone consumes it, so equal seeds yield equal graphs on both
// paths.
func (e Embedding) GreyZoneInto(g *graph.Graph, c, p float64, rng *rand.Rand) *graph.Graph {
	if c < 1 {
		panic("geom: grey zone constant c must be >= 1")
	}
	g.Reset(len(e))
	if len(e) >= cellGridMinNodes {
		// Cell-grid path: candidates(u) returns every v > u within one cell
		// length c, in increasing v — a superset of the pairs at distance
		// ≤ c, visited in the same (u, v)-lexicographic order as the scan
		// below. Since the scan draws from rng only for pairs with
		// 1 < d ≤ c, and all such pairs are candidates, the random stream
		// is consumed identically on both paths.
		var cg cellGrid
		cg.build(e, c)
		for u := 0; u < len(e); u++ {
			for _, v := range cg.candidates(e, graph.NodeID(u)) {
				d := e[u].Dist(e[v])
				switch {
				case d <= 1:
					g.AddEdge(graph.NodeID(u), v)
				case d <= c && (p >= 1 || rng.Float64() < p):
					g.AddEdge(graph.NodeID(u), v)
				}
			}
		}
		return g
	}
	for u := 0; u < len(e); u++ {
		for v := u + 1; v < len(e); v++ {
			d := e[u].Dist(e[v])
			switch {
			case d <= 1:
				g.AddEdge(graph.NodeID(u), graph.NodeID(v))
			case d <= c && (p >= 1 || rng.Float64() < p):
				g.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return g
}

// VerifyGreyZone checks the grey zone constraint of Section 2 for a dual
// (g, gp) against the embedding: (1) g is exactly the unit-disk graph of the
// embedding, and (2) every gp edge has length at most c. It returns false if
// either property fails.
func (e Embedding) VerifyGreyZone(g, gp *graph.Graph, c float64) bool {
	if g.N() != len(e) || gp.N() != len(e) {
		return false
	}
	for u := 0; u < len(e); u++ {
		for v := u + 1; v < len(e); v++ {
			d := e[u].Dist(e[v])
			if (d <= 1) != g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				return false
			}
		}
	}
	for u, v := range gp.EdgeSeq() {
		if e.Dist(u, v) > c {
			return false
		}
	}
	return g.IsSubgraphOf(gp)
}

// PackingBound returns the sphere-packing cap of Lemma 4.2: the maximum
// cardinality of a point set with pairwise distances in (1, d]. A disk of
// radius d + 1/2 contains disjoint radius-1/2 disks around each point, so
// the count is at most (2d + 1)². The paper only needs O(d²).
func PackingBound(d float64) int {
	if d < 0 {
		return 0
	}
	r := 2*d + 1
	return int(math.Ceil(r * r))
}

// IsPacked reports whether the points at the given node IDs have pairwise
// distances strictly greater than minSep (the premise of Lemma 4.2 with
// minSep = 1 holds for any G-independent set under a unit-disk G).
func (e Embedding) IsPacked(ids []graph.NodeID, minSep float64) bool {
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if e.Dist(ids[i], ids[j]) <= minSep {
				return false
			}
		}
	}
	return true
}

// RandomUniform places n points uniformly at random in the side×side square.
func RandomUniform(n int, side float64, rng *rand.Rand) Embedding {
	return RandomUniformInto(make(Embedding, n), n, side, rng)
}

// RandomUniformInto is RandomUniform filling e's storage (grown only when
// its capacity is short of n) and returns the n-point embedding. The rng is
// drawn exactly as RandomUniform draws it.
func RandomUniformInto(e Embedding, n int, side float64, rng *rand.Rand) Embedding {
	if cap(e) < n {
		e = make(Embedding, n)
	} else {
		e = e[:n]
	}
	for i := range e {
		e[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return e
}

// GridPoints places nodes on a rows×cols grid with the given spacing,
// row-major: node r*cols+c sits at (c*spacing, r*spacing). With spacing ≤ 1
// the unit-disk graph contains the 4-neighbor grid.
func GridPoints(rows, cols int, spacing float64) Embedding {
	e := make(Embedding, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			e = append(e, Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return e
}

// LinePoints places n nodes on a horizontal line with the given spacing.
func LinePoints(n int, spacing float64) Embedding {
	e := make(Embedding, n)
	for i := range e {
		e[i] = Point{X: float64(i) * spacing}
	}
	return e
}

// TwoLines places 2D nodes as in the paper's Figure 2 lower-bound network:
// nodes 0..D-1 form line A at y = 0, nodes D..2D-1 form line B at y = dy,
// both with the given x spacing. Choosing spacing ≤ 1 and dy such that the
// diagonal sqrt(spacing² + dy²) lies in (1, c] realizes the grey-zone
// geometry of the construction.
func TwoLines(d int, spacing, dy float64) Embedding {
	e := make(Embedding, 0, 2*d)
	for i := 0; i < d; i++ {
		e = append(e, Point{X: float64(i) * spacing, Y: 0})
	}
	for i := 0; i < d; i++ {
		e = append(e, Point{X: float64(i) * spacing, Y: dy})
	}
	return e
}
