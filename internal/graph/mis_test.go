package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyMISLine(t *testing.T) {
	g := line(7)
	mis := g.GreedyMIS()
	want := []NodeID{0, 2, 4, 6}
	if len(mis) != len(want) {
		t.Fatalf("GreedyMIS = %v, want %v", mis, want)
	}
	for i := range want {
		if mis[i] != want[i] {
			t.Fatalf("GreedyMIS = %v, want %v", mis, want)
		}
	}
	if !g.IsMaximalIndependent(mis) {
		t.Fatal("greedy MIS not maximal independent")
	}
}

// Property: GreedyMIS is always a maximal independent set on random graphs.
func TestGreedyMISProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := New(n)
		for e := 0; e < 2*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(NodeID(u), NodeID(v))
			}
		}
		return g.IsMaximalIndependent(g.GreedyMIS())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlayLine(t *testing.T) {
	// MIS {0, 2, 4, 6} of a 7-line: with maxDist 3, consecutive members
	// (distance 2) connect, and 0—4 (distance 4) does not... wait distance
	// 0 to 4 is 4 > 3: no edge; 0 to 2 is 2 <= 3: edge.
	g := line(7)
	h, members := g.Overlay([]NodeID{0, 2, 4, 6}, 3)
	if h.N() != 4 {
		t.Fatalf("overlay size = %d", h.N())
	}
	if members[0] != 0 || members[3] != 6 {
		t.Fatalf("members = %v", members)
	}
	if !h.HasEdge(0, 1) || !h.HasEdge(1, 2) || !h.HasEdge(2, 3) {
		t.Fatalf("overlay missing chain edges: %v", h.Edges())
	}
	if h.HasEdge(0, 2) {
		t.Fatal("overlay has an edge between members 4 hops apart")
	}
	if !h.IsConnected() {
		t.Fatal("overlay disconnected")
	}
}

// Property (used implicitly by Lemma 4.8): for a connected graph G and any
// maximal independent set S, the overlay H over S with maxDist = 3 is
// connected, and its diameter is at most that of G.
func TestOverlayMISConnectivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := line(n) // connected spine
		for e := 0; e < n/2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(NodeID(u), NodeID(v))
			}
		}
		mis := g.GreedyMIS()
		h, _ := g.Overlay(mis, 3)
		if !h.IsConnected() {
			return false
		}
		return h.Diameter() <= g.Diameter()+1 // +1 absorbs the single-member case
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlayUnsortedInput(t *testing.T) {
	g := line(7)
	h1, m1 := g.Overlay([]NodeID{6, 0, 4, 2}, 3)
	h2, m2 := g.Overlay([]NodeID{0, 2, 4, 6}, 3)
	if h1.M() != h2.M() {
		t.Fatalf("edge counts differ: %d vs %d", h1.M(), h2.M())
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("members differ: %v vs %v", m1, m2)
		}
	}
}
