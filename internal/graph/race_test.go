//go:build race

package graph

// raceEnabled reports that this build runs under the race detector, where
// sync.Pool deliberately drops puts at random and pooled-scratch paths may
// allocate; the alloc-ceiling assertions skip themselves there.
const raceEnabled = true
