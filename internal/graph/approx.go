package graph

import "math/rand"

// ExactDiameterCutoff is the node count up to which ApproxDiameter computes
// the exact all-source diameter. Exact diameter is O(n·m); past this size
// the sampled double-sweep estimate below is used instead. Every experiment
// shipped before the large-n family sits well under the cutoff, so their
// horizons and tables are unchanged by the approximate path existing.
const ExactDiameterCutoff = 2048

// ApproxDiameter estimates the diameter with k seeded double sweeps: each
// round BFSes from a pseudo-random source, then from the farthest node that
// sweep reaches (whose eccentricity is a strong diameter lower bound on
// sparse geometric and mesh-like graphs — the large-n families this path
// exists for). The returned value is the maximum eccentricity observed, so
// it never exceeds the true diameter. Graphs with at most
// ExactDiameterCutoff nodes take the exact path, making the two observably
// identical at the sizes the golden suites pin. Source selection is
// deterministic in seed, and results are memoized per (k, seed) under the
// same lock as Diameter, so shared graphs may call it concurrently.
func (g *Graph) ApproxDiameter(k int, seed int64) int {
	g.finalize()
	if g.n <= ExactDiameterCutoff {
		return g.Diameter()
	}
	if k < 1 {
		k = 1
	}
	g.diamMu.Lock()
	defer g.diamMu.Unlock()
	if g.diamOK {
		// The exact value is already known — strictly better than a sample.
		return g.diam
	}
	if g.adiamOK && g.adiamK == k && g.adiamSeed == seed {
		return g.adiam
	}
	rng := rand.New(rand.NewSource(seed))
	s := getScratch(g.n)
	resetDist(s.dist)
	best := 0
	for i := 0; i < k; i++ {
		src := NodeID(rng.Intn(g.n))
		// Sweep 1: find the node farthest from the sampled source.
		s.queue = g.bfsInto(src, s.dist, s.queue)
		far, fd := src, 0
		for _, v := range s.queue {
			if d := s.dist[v]; d > fd {
				far, fd = v, d
			}
			s.dist[v] = Unreachable // restore for the next sweep
		}
		// Sweep 2: that node's eccentricity lower-bounds the diameter.
		s.queue = g.bfsInto(far, s.dist, s.queue)
		for _, v := range s.queue {
			if d := s.dist[v]; d > best {
				best = d
			}
			s.dist[v] = Unreachable
		}
	}
	putScratch(s)
	g.adiam, g.adiamOK, g.adiamK, g.adiamSeed = best, true, k, seed
	return best
}

// SampleEccentricities returns the exact eccentricities of k seeded
// pseudo-random sources (one BFS each) — the sampling primitive behind
// ApproxDiameter, exposed for metrics that want the distribution rather
// than the maximum. Sources are drawn with replacement, deterministically
// in seed.
func (g *Graph) SampleEccentricities(k int, seed int64) []int {
	g.finalize()
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, k)
	s := getScratch(g.n)
	resetDist(s.dist)
	for i := range out {
		src := NodeID(rng.Intn(g.n))
		s.queue = g.bfsInto(src, s.dist, s.queue)
		ecc := 0
		for _, v := range s.queue {
			if d := s.dist[v]; d > ecc {
				ecc = d
			}
			s.dist[v] = Unreachable
		}
		out[i] = ecc
	}
	putScratch(s)
	return out
}
