// Package graph provides the undirected-graph machinery the paper's model is
// built on: adjacency graphs over dense integer node IDs, BFS distances,
// diameter, connected components, graph powers Gʳ (Section 3.2 of the
// paper), and independence checks used by the MIS subroutine analysis.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a node. Node IDs are dense integers in [0, N).
type NodeID int

// Graph is an undirected simple graph over nodes 0..n-1 stored as sorted
// adjacency lists. The zero value is an empty graph with no nodes; use New.
type Graph struct {
	n   int
	m   int // edge count, maintained at mutation time
	adj [][]NodeID

	// diam memoizes Diameter() under diamMu: finished graphs are shared
	// read-only across harness workers, so the lazy fill must be
	// synchronized. diamOK is cleared by AddEdge (mutation is
	// build-phase-only and not goroutine-safe, like the rest of Graph).
	diamMu sync.Mutex
	diam   int
	diamOK bool
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n, adj: make([][]NodeID, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Reset restores g to an empty graph with n nodes while keeping the backing
// storage of its adjacency rows, so rebuilding a same-shaped graph performs
// no allocation. It is the structure-sharing construction mode behind
// topology.Workspace: a Reset graph is observably identical to New(n), only
// the memory is recycled.
func (g *Graph) Reset(n int) {
	if n < 0 {
		panic("graph: negative node count")
	}
	if cap(g.adj) < n {
		old := g.adj[:cap(g.adj)]
		g.adj = make([][]NodeID, n)
		// Keep the old rows' backing arrays; the loop below truncates them.
		copy(g.adj, old)
	} else {
		g.adj = g.adj[:n]
	}
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	g.n = n
	g.m = 0
	g.diamOK = false
}

// CloneInto copies g into dst, reusing dst's adjacency storage (see Reset).
// It returns dst. The graphs must be distinct.
func (g *Graph) CloneInto(dst *Graph) *Graph {
	if dst == g {
		panic("graph: CloneInto onto itself")
	}
	dst.Reset(g.n)
	dst.m = g.m
	for u := range g.adj {
		dst.adj[u] = append(dst.adj[u], g.adj[u]...)
	}
	return dst
}

// M returns the number of edges. The count is maintained by AddEdge, so
// validation paths can call M freely without an adjacency sweep.
func (g *Graph) M() int { return g.m }

func (g *Graph) check(v NodeID) {
	if v < 0 || int(v) >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, g.n))
	}
}

// AddEdge inserts the undirected edge (u, v). Self-loops are rejected;
// duplicate insertions are idempotent.
func (g *Graph) AddEdge(u, v NodeID) {
	g.check(u)
	g.check(v)
	if u == v {
		panic("graph: self-loop")
	}
	if g.insertArc(u, v) {
		g.insertArc(v, u)
		g.m++
		g.diamOK = false
	}
}

// insertArc adds v to u's adjacency list, reporting whether it was new.
func (g *Graph) insertArc(u, v NodeID) bool {
	nbrs := g.adj[u]
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	if i < len(nbrs) && nbrs[i] == v {
		return false
	}
	nbrs = append(nbrs, 0)
	copy(nbrs[i+1:], nbrs[i:])
	nbrs[i] = v
	g.adj[u] = nbrs
	return true
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	g.check(u)
	g.check(v)
	nbrs := g.adj[u]
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// Neighbors returns u's adjacency list in increasing order. The returned
// slice is owned by the graph; callers must not mutate it.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	g.check(u)
	return g.adj[u]
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u NodeID) int {
	g.check(u)
	return len(g.adj[u])
}

// MaxDegree returns the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// Edges returns every edge once, as pairs (u, v) with u < v, in
// lexicographic order.
func (g *Graph) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, g.M())
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				out = append(out, [2]NodeID{NodeID(u), v})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for u := range g.adj {
		c.adj[u] = append([]NodeID(nil), g.adj[u]...)
	}
	return c
}

// Union returns a new graph with n nodes containing the edges of both g and
// h. Both graphs must have the same node count.
func Union(g, h *Graph) *Graph {
	if g.n != h.n {
		panic("graph: union of graphs with different node counts")
	}
	u := g.Clone()
	for _, e := range h.Edges() {
		u.AddEdge(e[0], e[1])
	}
	return u
}

// IsSubgraphOf reports whether every edge of g is also an edge of h (the
// paper's G ⊆ G′ requirement). It walks the adjacency rows directly —
// no edge-slice allocation — because dual validation runs once per trial.
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	if g.n != h.n {
		return false
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if NodeID(u) < v && !h.HasEdge(NodeID(u), v) {
				return false
			}
		}
	}
	return true
}

// IsIndependent reports whether no two nodes in set are adjacent in g
// (G-independence, Section 4 of the paper).
func (g *Graph) IsIndependent(set []NodeID) bool {
	in := make(map[NodeID]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for _, v := range set {
		for _, u := range g.adj[v] {
			if in[u] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependent reports whether set is a maximal independent set of
// g: independent, and every node is in set or adjacent to a member.
func (g *Graph) IsMaximalIndependent(set []NodeID) bool {
	if !g.IsIndependent(set) {
		return false
	}
	in := make(map[NodeID]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for u := 0; u < g.n; u++ {
		if in[NodeID(u)] {
			continue
		}
		covered := false
		for _, v := range g.adj[u] {
			if in[v] {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}
