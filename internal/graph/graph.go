// Package graph provides the undirected-graph machinery the paper's model is
// built on: adjacency graphs over dense integer node IDs, BFS distances,
// diameter, connected components, graph powers Gʳ (Section 3.2 of the
// paper), and independence checks used by the MIS subroutine analysis.
package graph

import (
	"fmt"
	"iter"
	"math"
	"slices"
	"sync"
)

// NodeID identifies a node. Node IDs are dense integers in [0, N).
type NodeID int

// Graph is an undirected simple graph over nodes 0..n-1 stored as one flat
// CSR arc array: off has length n+1 and node u's sorted neighbor row is
// arcs[off[u]:off[u+1]]. One contiguous block for the whole graph — the
// same layout mac.Arena uses for delivery rows — keeps million-node
// adjacency cache-friendly and lets consumers index straight off the shared
// arc array. The zero value is an empty graph with no nodes; use New.
//
// Mutation is build-phase-only and not goroutine-safe (like the previous
// slice-of-slices representation): AddEdge appends to a pending arc buffer
// and the first read — Neighbors, BFS, M, Edges, ... — compacts it into the
// CSR block (sort + merge + dedup, so duplicate AddEdge calls stay
// idempotent). HasEdge alone answers without compacting, through a lazily
// built membership overlay, because the randomized builders interleave
// HasEdge probes with AddEdge and must stay O(1) amortized per call.
// Graphs shared read-only across goroutines must be finalized first (see
// Finalize; topology.BuildInto does this for every registry build).
type Graph struct {
	n int
	m int // edge count, recomputed when pending arcs compact

	off  []int32  // row offsets, len n+1 (nil only for the zero value)
	arcs []NodeID // flat arc array, rows sorted, concatenated in node order

	// offBuf/arcsBuf are the spare buffers finalize merges into; the old
	// storage is retained for the next merge, so alternating build/read
	// phases on a recycled graph allocate nothing in steady state.
	offBuf  []int32
	arcsBuf []NodeID

	// pend holds arcs added since the last finalize, packed u<<32|v (both
	// directions per AddEdge), unsorted and possibly duplicated.
	pend []uint64
	// seen is the pending-arc membership overlay HasEdge consults while
	// dirty; built lazily on the first such probe and kept in sync by
	// AddEdge from then on (seenOK). Invalidated by finalize and Reset.
	seen   map[uint64]struct{}
	seenOK bool

	// diam memoizes Diameter() under diamMu: finished graphs are shared
	// read-only across harness workers, so the lazy fill must be
	// synchronized. diamOK is cleared by AddEdge (mutation is
	// build-phase-only and not goroutine-safe, like the rest of Graph).
	diamMu sync.Mutex
	diam   int
	diamOK bool
	// adiam memoizes ApproxDiameter for the sampling arguments it was
	// computed with, under the same lock and invalidation rule.
	adiam     int
	adiamOK   bool
	adiamK    int
	adiamSeed int64
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n, off: make([]int32, n+1)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Reset restores g to an empty graph with n nodes while keeping the backing
// storage of its arc block and pending buffer, so rebuilding a same-shaped
// graph performs no allocation. It is the structure-sharing construction
// mode behind topology.Workspace: a Reset graph is observably identical to
// New(n), only the memory is recycled.
func (g *Graph) Reset(n int) {
	if n < 0 {
		panic("graph: negative node count")
	}
	if cap(g.off) < n+1 {
		g.off = make([]int32, n+1)
	} else {
		g.off = g.off[:n+1]
		clear(g.off)
	}
	g.arcs = g.arcs[:0]
	g.pend = g.pend[:0]
	g.seenOK = false
	g.n = n
	g.m = 0
	g.diamOK = false
	g.adiamOK = false
}

// CloneInto copies g into dst, reusing dst's storage (see Reset). It
// returns dst. The graphs must be distinct.
func (g *Graph) CloneInto(dst *Graph) *Graph {
	if dst == g {
		panic("graph: CloneInto onto itself")
	}
	g.finalize()
	dst.Reset(g.n)
	dst.off = append(dst.off[:0], g.off...)
	dst.arcs = append(dst.arcs[:0], g.arcs...)
	dst.m = g.m
	return dst
}

// M returns the number of edges.
func (g *Graph) M() int {
	g.finalize()
	return g.m
}

func (g *Graph) check(v NodeID) {
	if v < 0 || int(v) >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, g.n))
	}
}

func pack(u, v NodeID) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// AddEdge inserts the undirected edge (u, v). Self-loops are rejected;
// duplicate insertions are idempotent.
func (g *Graph) AddEdge(u, v NodeID) {
	g.check(u)
	g.check(v)
	if u == v {
		panic("graph: self-loop")
	}
	if g.hasArc(u, v) {
		return
	}
	g.pend = append(g.pend, pack(u, v), pack(v, u))
	if g.seenOK {
		g.seen[pack(u, v)] = struct{}{}
		g.seen[pack(v, u)] = struct{}{}
	}
	g.diamOK = false
	g.adiamOK = false
}

// hasArc reports whether (u, v) is in the compacted CSR block (pending arcs
// not considered) by binary-searching u's sorted row.
func (g *Graph) hasArc(u, v NodeID) bool {
	row := g.arcs[g.off[u]:g.off[u+1]]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == v
}

// HasEdge reports whether (u, v) is an edge. It answers without compacting
// pending arcs: the randomized builders interleave HasEdge with AddEdge,
// and a full compaction per probe would be quadratic.
func (g *Graph) HasEdge(u, v NodeID) bool {
	g.check(u)
	g.check(v)
	if g.hasArc(u, v) {
		return true
	}
	if len(g.pend) == 0 {
		return false
	}
	if !g.seenOK {
		g.buildSeen()
	}
	_, ok := g.seen[pack(u, v)]
	return ok
}

// buildSeen fills the pending-arc membership overlay from pend, reusing the
// map's buckets across builds.
func (g *Graph) buildSeen() {
	if g.seen == nil {
		g.seen = make(map[uint64]struct{}, len(g.pend))
	} else {
		clear(g.seen)
	}
	for _, k := range g.pend {
		g.seen[k] = struct{}{}
	}
	g.seenOK = true
}

// Finalize compacts any pending arcs into the flat CSR block. Every read
// API does this implicitly; builders that hand a graph to concurrent
// readers call it explicitly so no reader races the compaction. It is
// idempotent and cheap when nothing is pending.
func (g *Graph) Finalize() { g.finalize() }

func (g *Graph) finalize() {
	if len(g.pend) == 0 {
		return
	}
	slices.Sort(g.pend)
	need := len(g.arcs) + len(g.pend)
	dst := g.arcsBuf[:0]
	if cap(dst) < need {
		dst = make([]NodeID, 0, need)
	}
	newOff := g.offBuf
	if cap(newOff) < g.n+1 {
		newOff = make([]int32, g.n+1)
	} else {
		newOff = newOff[:g.n+1]
	}
	pi := 0
	for u := 0; u < g.n; u++ {
		newOff[u] = int32(len(dst))
		oi, oe := int(g.off[u]), int(g.off[u+1])
		for {
			havePend := pi < len(g.pend) && g.pend[pi]>>32 == uint64(u)
			if oi >= oe && !havePend {
				break
			}
			var v NodeID
			if !havePend {
				v = g.arcs[oi]
				oi++
			} else if oi >= oe {
				v = NodeID(uint32(g.pend[pi]))
				pi++
			} else if pv := NodeID(uint32(g.pend[pi])); pv < g.arcs[oi] {
				v = pv
				pi++
			} else {
				v = g.arcs[oi]
				oi++
			}
			if n := len(dst); n > int(newOff[u]) && dst[n-1] == v {
				continue // duplicate within the merged row
			}
			dst = append(dst, v)
		}
	}
	if len(dst) > math.MaxInt32 {
		panic("graph: arc count exceeds int32 offsets")
	}
	newOff[g.n] = int32(len(dst))
	// Swap: the displaced storage becomes the spare for the next merge.
	g.arcsBuf, g.arcs = g.arcs, dst
	g.offBuf, g.off = g.off, newOff
	g.pend = g.pend[:0]
	g.seenOK = false
	g.m = len(g.arcs) / 2
}

// row returns u's neighbor row. The graph must be finalized.
func (g *Graph) row(u NodeID) []NodeID {
	return g.arcs[g.off[u]:g.off[u+1]]
}

// Neighbors returns u's adjacency list in increasing order, as a zero-copy
// subslice of the graph's flat arc array. The slice is owned by the graph;
// callers must not mutate it, and it is invalidated by the next mutation.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	g.check(u)
	g.finalize()
	return g.arcs[g.off[u]:g.off[u+1]:g.off[u+1]]
}

// CSR exposes the finalized flat adjacency: off has length N()+1 and node
// u's sorted neighbor row occupies arcs[off[u]:off[u+1]]. Consumers that
// keep per-arc side state (mac.Arena's delivery rows and reliability bits)
// index straight off this shared array instead of re-deriving per-node
// rows. Both slices are owned by the graph, must not be mutated, and are
// invalidated by the next mutation.
func (g *Graph) CSR() (off []int32, arcs []NodeID) {
	g.finalize()
	return g.off, g.arcs
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u NodeID) int {
	g.check(u)
	g.finalize()
	return int(g.off[u+1] - g.off[u])
}

// MaxDegree returns the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	g.finalize()
	max := 0
	for u := 0; u < g.n; u++ {
		if d := int(g.off[u+1] - g.off[u]); d > max {
			max = d
		}
	}
	return max
}

// Edges returns every edge once, as pairs (u, v) with u < v, in
// lexicographic order. Large-graph consumers that only need to walk the
// edges should range over EdgeSeq instead and skip this materialization.
func (g *Graph) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, g.M())
	for u, v := range g.EdgeSeq() {
		out = append(out, [2]NodeID{u, v})
	}
	return out
}

// EdgeSeq returns an iterator over every edge once, as pairs (u, v) with
// u < v, in the same lexicographic order Edges returns — streamed straight
// off the CSR rows, with no intermediate slice. Builders that feed a
// random stream from the edge order (RRestricted and friends) may switch
// between Edges and EdgeSeq freely: the visit order is identical.
func (g *Graph) EdgeSeq() iter.Seq2[NodeID, NodeID] {
	return func(yield func(NodeID, NodeID) bool) {
		g.finalize()
		for u := 0; u < g.n; u++ {
			for _, v := range g.row(NodeID(u)) {
				if NodeID(u) < v && !yield(NodeID(u), v) {
					return
				}
			}
		}
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	return g.CloneInto(New(g.n))
}

// Union returns a new graph with n nodes containing the edges of both g and
// h. Both graphs must have the same node count.
func Union(g, h *Graph) *Graph {
	if g.n != h.n {
		panic("graph: union of graphs with different node counts")
	}
	u := g.Clone()
	for a, b := range h.EdgeSeq() {
		u.AddEdge(a, b)
	}
	return u
}

// IsSubgraphOf reports whether every edge of g is also an edge of h (the
// paper's G ⊆ G′ requirement). It merge-walks the two sorted CSR rows per
// node — no edge-slice allocation, O(m + m′) total — because dual
// validation runs once per trial.
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	if g.n != h.n {
		return false
	}
	g.finalize()
	h.finalize()
	for u := 0; u < g.n; u++ {
		gr, hr := g.row(NodeID(u)), h.row(NodeID(u))
		hi := 0
		for _, v := range gr {
			for hi < len(hr) && hr[hi] < v {
				hi++
			}
			if hi >= len(hr) || hr[hi] != v {
				return false
			}
		}
	}
	return true
}

// IsIndependent reports whether no two nodes in set are adjacent in g
// (G-independence, Section 4 of the paper).
func (g *Graph) IsIndependent(set []NodeID) bool {
	g.finalize()
	in := make(map[NodeID]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for _, v := range set {
		for _, u := range g.row(v) {
			if in[u] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependent reports whether set is a maximal independent set of
// g: independent, and every node is in set or adjacent to a member.
func (g *Graph) IsMaximalIndependent(set []NodeID) bool {
	if !g.IsIndependent(set) {
		return false
	}
	in := make(map[NodeID]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for u := 0; u < g.n; u++ {
		if in[NodeID(u)] {
			continue
		}
		covered := false
		for _, v := range g.row(NodeID(u)) {
			if in[v] {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}
