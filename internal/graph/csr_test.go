package graph

import (
	"math/rand"
	"slices"
	"testing"
)

// refGraph is the pre-refactor slice-of-slices adjacency, kept as the
// executable specification the flat-CSR Graph is property-tested against:
// every query below is re-derived from this naive form and compared
// field-for-field with the CSR answer on randomized edge streams.
type refGraph struct {
	n   int
	adj []map[NodeID]bool
}

func newRef(n int) *refGraph {
	adj := make([]map[NodeID]bool, n)
	for i := range adj {
		adj[i] = map[NodeID]bool{}
	}
	return &refGraph{n: n, adj: adj}
}

func (r *refGraph) addEdge(u, v NodeID) {
	r.adj[u][v] = true
	r.adj[v][u] = true
}

func (r *refGraph) neighbors(u NodeID) []NodeID {
	out := make([]NodeID, 0, len(r.adj[u]))
	for v := range r.adj[u] {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

func (r *refGraph) m() int {
	total := 0
	for _, nb := range r.adj {
		total += len(nb)
	}
	return total / 2
}

func (r *refGraph) bfs(src NodeID) []int {
	dist := make([]int, r.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range r.neighbors(u) {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

func (r *refGraph) diameter() int {
	max := 0
	for u := 0; u < r.n; u++ {
		for _, d := range r.bfs(NodeID(u)) {
			if d > max {
				max = d
			}
		}
	}
	return max
}

func (r *refGraph) components() [][]NodeID {
	seen := make([]bool, r.n)
	var comps [][]NodeID
	for u := 0; u < r.n; u++ {
		if seen[u] {
			continue
		}
		var comp []NodeID
		for v, d := range r.bfs(NodeID(u)) {
			if d != Unreachable {
				comp = append(comp, NodeID(v))
				seen[v] = true
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

func (r *refGraph) greedyMIS() []NodeID {
	blocked := make([]bool, r.n)
	var mis []NodeID
	for u := 0; u < r.n; u++ {
		if blocked[u] {
			continue
		}
		mis = append(mis, NodeID(u))
		for v := range r.adj[u] {
			blocked[v] = true
		}
	}
	return mis
}

// checkAgainstRef compares every CSR query against its naive re-derivation.
func checkAgainstRef(t *testing.T, g *Graph, r *refGraph, rng *rand.Rand) {
	t.Helper()
	if g.N() != r.n {
		t.Fatalf("N = %d, want %d", g.N(), r.n)
	}
	if g.M() != r.m() {
		t.Fatalf("M = %d, want %d", g.M(), r.m())
	}
	maxDeg := 0
	for u := 0; u < r.n; u++ {
		want := r.neighbors(NodeID(u))
		got := g.Neighbors(NodeID(u))
		if !slices.Equal(got, want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", u, got, want)
		}
		if g.Degree(NodeID(u)) != len(want) {
			t.Fatalf("Degree(%d) = %d, want %d", u, g.Degree(NodeID(u)), len(want))
		}
		if len(want) > maxDeg {
			maxDeg = len(want)
		}
	}
	if g.MaxDegree() != maxDeg {
		t.Fatalf("MaxDegree = %d, want %d", g.MaxDegree(), maxDeg)
	}
	// Random pair membership probes, hitting both present and absent edges.
	for i := 0; i < 50 && r.n >= 2; i++ {
		u := NodeID(rng.Intn(r.n))
		v := NodeID(rng.Intn(r.n))
		if u == v {
			continue
		}
		if g.HasEdge(u, v) != r.adj[u][v] {
			t.Fatalf("HasEdge(%d,%d) = %v, want %v", u, v, g.HasEdge(u, v), r.adj[u][v])
		}
	}
	var wantEdges [][2]NodeID
	for u := 0; u < r.n; u++ {
		for _, v := range r.neighbors(NodeID(u)) {
			if NodeID(u) < v {
				wantEdges = append(wantEdges, [2]NodeID{NodeID(u), v})
			}
		}
	}
	if gotEdges := g.Edges(); !slices.Equal(gotEdges, wantEdges) {
		t.Fatalf("Edges = %v, want %v", gotEdges, wantEdges)
	}
	for i := 0; i < 3 && r.n > 0; i++ {
		src := NodeID(rng.Intn(r.n))
		if got, want := g.BFS(src), r.bfs(src); !slices.Equal(got, want) {
			t.Fatalf("BFS(%d) = %v, want %v", src, got, want)
		}
	}
	if got, want := g.Diameter(), r.diameter(); got != want {
		t.Fatalf("Diameter = %d, want %d", got, want)
	}
	wantComps := r.components()
	gotComps := g.Components()
	if len(gotComps) != len(wantComps) {
		t.Fatalf("Components: %d components, want %d", len(gotComps), len(wantComps))
	}
	for i := range wantComps {
		if !slices.Equal(gotComps[i], wantComps[i]) {
			t.Fatalf("component %d = %v, want %v", i, gotComps[i], wantComps[i])
		}
	}
	if got, want := g.IsConnected(), len(wantComps) <= 1; got != want {
		t.Fatalf("IsConnected = %v, want %v", got, want)
	}
	if got, want := g.GreedyMIS(), r.greedyMIS(); !slices.Equal(got, want) {
		t.Fatalf("GreedyMIS = %v, want %v", got, want)
	}
	if mis := g.GreedyMIS(); len(mis) > 0 && !g.IsMaximalIndependent(mis) {
		t.Fatalf("GreedyMIS %v is not maximal independent", mis)
	}
}

// TestCSRMatchesReference drives randomized edge streams — with duplicate
// inserts, HasEdge probes interleaved mid-build, and reads that force
// compaction between build phases — through both the CSR graph and the
// naive reference, then compares every query. This is the pre/post-refactor
// equivalence contract for the flat-CSR core.
func TestCSRMatchesReference(t *testing.T) {
	cases := []struct {
		n     int
		edges int
		seed  int64
	}{
		{0, 0, 1},
		{1, 0, 2},
		{2, 1, 3},
		{7, 4, 4},
		{16, 10, 5},
		{16, 60, 6},
		{40, 30, 7},
		{40, 200, 8},
		{97, 400, 9},
		{128, 128, 10},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(tc.seed))
		g := New(tc.n)
		r := newRef(tc.n)
		for i := 0; i < tc.edges; i++ {
			u := NodeID(rng.Intn(tc.n))
			v := NodeID(rng.Intn(tc.n))
			if u == v {
				continue
			}
			// Interleave membership probes with inserts: this is the access
			// pattern of the randomized topology builders, and it exercises
			// the pending-arc overlay rather than the compacted rows.
			if g.HasEdge(u, v) != r.adj[u][v] {
				t.Fatalf("n=%d seed=%d: mid-build HasEdge(%d,%d) = %v, want %v",
					tc.n, tc.seed, u, v, g.HasEdge(u, v), r.adj[u][v])
			}
			g.AddEdge(u, v)
			if rng.Intn(4) == 0 {
				g.AddEdge(v, u) // duplicate insert must stay idempotent
			}
			r.addEdge(u, v)
			if rng.Intn(8) == 0 {
				g.M() // force a compaction mid-stream
			}
		}
		checkAgainstRef(t, g, r, rng)

		// Mutate after the reads above: the merge path now folds new pending
		// arcs into an already-compacted CSR block.
		for i := 0; i < tc.edges/2; i++ {
			u := NodeID(rng.Intn(tc.n))
			v := NodeID(rng.Intn(tc.n))
			if u == v {
				continue
			}
			g.AddEdge(u, v)
			r.addEdge(u, v)
		}
		checkAgainstRef(t, g, r, rng)
	}
}

// TestCSRRecycledStorageMatchesFresh pins the structure-sharing contract:
// a Reset graph and a CloneInto destination must be observably identical to
// freshly allocated ones, across shrinking and growing node counts.
func TestCSRRecycledStorageMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recycled := New(0)
	clone := New(0)
	for _, n := range []int{30, 7, 64, 1, 50} {
		recycled.Reset(n)
		r := newRef(n)
		for i := 0; i < 3*n; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			recycled.AddEdge(u, v)
			r.addEdge(u, v)
		}
		checkAgainstRef(t, recycled, r, rng)
		checkAgainstRef(t, recycled.CloneInto(clone), r, rng)
	}
}

// TestApproxDiameterExactBelowCutoff: at or below ExactDiameterCutoff nodes
// ApproxDiameter must be the exact diameter for every (k, seed) — the
// property that keeps the shipped experiment tables byte-identical.
func TestApproxDiameterExactBelowCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 9, 33, 80} {
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v)
			}
		}
		want := g.Diameter()
		for _, k := range []int{0, 1, 4} {
			for _, seed := range []int64{1, 99} {
				if got := g.ApproxDiameter(k, seed); got != want {
					t.Fatalf("n=%d: ApproxDiameter(%d,%d) = %d, want exact %d", n, k, seed, got, want)
				}
			}
		}
	}
}

// TestApproxDiameterAboveCutoff exercises the sampled double-sweep path on
// graphs past the cutoff: the estimate is a diameter lower bound, exact on
// paths (a double sweep from any source reaches an endpoint), deterministic
// in (k, seed), and superseded by the exact value once Diameter has run.
func TestApproxDiameterAboveCutoff(t *testing.T) {
	n := ExactDiameterCutoff + 101
	g := line(n)
	want := n - 1
	if got := g.ApproxDiameter(1, 7); got != want {
		t.Fatalf("line ApproxDiameter = %d, want %d", got, want)
	}

	// A cycle: every double sweep finds an antipodal pair, so the sample is
	// exact at n/2 regardless of the source draw.
	cyc := line(n)
	cyc.AddEdge(0, NodeID(n-1))
	if got, want := cyc.ApproxDiameter(2, 3), n/2; got != want {
		t.Fatalf("cycle ApproxDiameter = %d, want %d", got, want)
	}

	// A star: diameter 2, and any double sweep sees it (sweep 1 ends on a
	// leaf, whose eccentricity is 2). Also checks determinism and the
	// lower-bound property against the cheap exact value.
	star := New(n)
	for i := 1; i < n; i++ {
		star.AddEdge(0, NodeID(i))
	}
	a := star.ApproxDiameter(3, 5)
	if b := star.ApproxDiameter(3, 5); b != a {
		t.Fatalf("ApproxDiameter not deterministic: %d then %d", a, b)
	}
	if a != 2 {
		t.Fatalf("star ApproxDiameter = %d, want 2", a)
	}
	if exact := star.Diameter(); a > exact {
		t.Fatalf("ApproxDiameter %d exceeds exact diameter %d", a, exact)
	}
	// Once the exact diameter is memoized it wins over any sample.
	if got := star.ApproxDiameter(1, 12345); got != 2 {
		t.Fatalf("post-Diameter ApproxDiameter = %d, want exact 2", got)
	}

	// Mutation invalidates the memo: extending the line stretches the
	// diameter, and the refreshed sample must see it.
	g.AddEdge(NodeID(n-1), NodeID(n-2)) // duplicate — no-op, memo intact
	if got := g.ApproxDiameter(1, 7); got != want {
		t.Fatalf("after duplicate AddEdge: ApproxDiameter = %d, want %d", got, want)
	}
}

// TestSampleEccentricities checks the sampling primitive: k exact
// eccentricities, deterministic in seed, each bounded by the diameter.
func TestSampleEccentricities(t *testing.T) {
	g := line(600)
	ecc := g.SampleEccentricities(5, 9)
	if len(ecc) != 5 {
		t.Fatalf("len = %d, want 5", len(ecc))
	}
	if again := g.SampleEccentricities(5, 9); !slices.Equal(again, ecc) {
		t.Fatalf("not deterministic: %v then %v", again, ecc)
	}
	diam := g.Diameter()
	for i, e := range ecc {
		// On a path, every eccentricity is at least half the diameter.
		if e > diam || e < diam/2 {
			t.Fatalf("ecc[%d] = %d outside [%d, %d]", i, e, diam/2, diam)
		}
	}
	if got := len(g.SampleEccentricities(0, 1)); got != 1 {
		t.Fatalf("k<1 clamps to 1 sample, got %d", got)
	}
}

// TestBFSQueriesAllocationFree pins the pooled-scratch contract: once the
// BFS pool is warm, the distance/connectivity/eccentricity queries the
// builders and runners issue per trial must not allocate. A regression here
// puts an O(n) allocation back into every rejected topology draw.
func TestBFSQueriesAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode drops sync.Pool puts at random, so the pooled scratch may allocate")
	}
	g := line(512)
	g.Finalize()
	// Warm the pool and each query's internal state.
	g.Dist(0, 511)
	g.Eccentricity(5)
	g.IsConnected()

	allocs := testing.AllocsPerRun(20, func() {
		if g.Dist(0, 511) != 511 {
			t.Fatal("wrong distance")
		}
		if g.Eccentricity(5) != 506 {
			t.Fatal("wrong eccentricity")
		}
		if !g.IsConnected() {
			t.Fatal("line disconnected")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm BFS queries allocate %.1f times per run, want 0", allocs)
	}
}

// TestSharedGraphQueriesConcurrent hammers the read-only query surface of
// one finalized graph from many goroutines — the sharing pattern of
// parallel harness workers. Run under -race this pins the lock discipline
// of the Diameter/ApproxDiameter memo and the pooled BFS scratch.
func TestSharedGraphQueriesConcurrent(t *testing.T) {
	g := line(ExactDiameterCutoff + 50)
	g.Finalize()
	done := make(chan int, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			d := 0
			for i := 0; i < 20; i++ {
				switch w % 4 {
				case 0:
					d = g.ApproxDiameter(2, 1)
				case 1:
					d = g.Diameter()
				case 2:
					d = g.Eccentricity(NodeID(i))
					g.SampleEccentricities(1, int64(i))
				case 3:
					g.BFS(NodeID(w * 100))
					d = g.Dist(0, NodeID(w*100+i))
				}
			}
			done <- d
		}(w)
	}
	for w := 0; w < 8; w++ {
		if d := <-done; d < 0 {
			t.Fatalf("worker returned %d", d)
		}
	}
}
