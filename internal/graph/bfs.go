package graph

import "sort"

// Unreachable is the distance reported for nodes in a different connected
// component.
const Unreachable = -1

// BFS returns the hop distance from src to every node; Unreachable for nodes
// in other components.
func (g *Graph) BFS(src NodeID) []int {
	g.check(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]NodeID, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Dist returns the hop distance dG(u, v), or Unreachable when disconnected.
func (g *Graph) Dist(u, v NodeID) int {
	return g.BFS(u)[v]
}

// Eccentricity returns the maximum finite BFS distance from src (distance to
// the farthest node in src's component).
func (g *Graph) Eccentricity(src NodeID) int {
	max := 0
	for _, d := range g.BFS(src) {
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the maximum eccentricity over all nodes, considering only
// intra-component distances. For an empty graph it returns 0. The result is
// memoized until the next mutation (runners recompute the diameter of the
// same network for every execution); the memo is lock-guarded because
// finished graphs are shared read-only across parallel harness workers.
func (g *Graph) Diameter() int {
	g.diamMu.Lock()
	defer g.diamMu.Unlock()
	if g.diamOK {
		return g.diam
	}
	max := 0
	for u := 0; u < g.n; u++ {
		if e := g.Eccentricity(NodeID(u)); e > max {
			max = e
		}
	}
	g.diam, g.diamOK = max, true
	return max
}

// Components returns the connected components as slices of node IDs, each
// sorted, ordered by smallest member.
func (g *Graph) Components() [][]NodeID {
	seen := make([]bool, g.n)
	var comps [][]NodeID
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []NodeID
		queue := []NodeID{NodeID(s)}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sortNodeIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether g has exactly one connected component (true
// for the empty and single-node graphs).
func (g *Graph) IsConnected() bool {
	return g.n <= 1 || len(g.Components()) == 1
}

// Ball returns all nodes within r hops of center (including center), sorted.
// It matches the paper's N_G^r(j) notation.
func (g *Graph) Ball(center NodeID, r int) []NodeID {
	g.check(center)
	dist := map[NodeID]int{center: 0}
	queue := []NodeID{center}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == r {
			continue
		}
		for _, v := range g.adj[u] {
			if _, ok := dist[v]; !ok {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	out := make([]NodeID, 0, len(dist))
	for v := range dist {
		out = append(out, v)
	}
	sortNodeIDs(out)
	return out
}

// Power returns Gʳ: the graph on the same nodes with an edge between every
// pair at hop distance in [1, r] in g (Section 3.2 of the paper; no
// self-loops).
func (g *Graph) Power(r int) *Graph { return g.PowerInto(r, New(g.n)) }

// PowerInto builds Gʳ into dst, reusing dst's adjacency storage (see Reset),
// and returns dst. The r-balls are walked with a bounded BFS over two
// scratch slices shared by all n source walks of the call — two allocations
// per call instead of Ball's map per node; the resulting edge set is
// identical to Power's.
func (g *Graph) PowerInto(r int, dst *Graph) *Graph {
	if r < 1 {
		panic("graph: power exponent must be >= 1")
	}
	if dst == g {
		panic("graph: PowerInto onto its own receiver")
	}
	dst.Reset(g.n)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]NodeID, 0, g.n)
	for u := 0; u < g.n; u++ {
		dist[u] = 0
		queue = append(queue[:0], NodeID(u))
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			if dist[v] == r {
				continue
			}
			for _, w := range g.adj[v] {
				if dist[w] == Unreachable {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for _, v := range queue {
			if v != NodeID(u) {
				dst.AddEdge(NodeID(u), v)
			}
			dist[v] = Unreachable
		}
	}
	return dst
}

func sortNodeIDs(s []NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
