package graph

import (
	"slices"
	"sync"
)

// Unreachable is the distance reported for nodes in a different connected
// component.
const Unreachable = -1

// bfsScratch is the frontier/visited storage behind the BFS-family queries.
// The buffers are pooled rather than hung off the Graph because finished
// graphs are shared read-only across parallel harness workers: per-graph
// scratch would make concurrent Diameter/IsConnected calls race, while a
// pooled scratch is exclusively owned between get and put. Connectivity
// probes run once per rejected draw inside the random-topology builders, so
// steady-state sweeps must not pay an allocation here.
type bfsScratch struct {
	dist  []int
	queue []NodeID
}

var bfsPool = sync.Pool{New: func() any { return new(bfsScratch) }}

// getScratch returns a scratch with capacity for n nodes. dist contents are
// stale; callers reset the entries they rely on (resetDist, or restoring
// visited entries after each walk).
//amac:hotpath
func getScratch(n int) *bfsScratch {
	s := bfsPool.Get().(*bfsScratch)
	if cap(s.dist) < n {
		s.dist = make([]int, n) //lint:hotalloc lazy grow: runs once per pool entry per graph size, then every warm call reuses the block
		s.queue = make([]NodeID, 0, n) //lint:hotalloc lazy grow, same lifetime as dist above
	}
	s.dist = s.dist[:n]
	return s
}

func putScratch(s *bfsScratch) { bfsPool.Put(s) }

func resetDist(dist []int) {
	for i := range dist {
		dist[i] = Unreachable
	}
}

// bfsInto walks the component of src, writing hop distances into dist —
// whose entries must be Unreachable beforehand — and returns the visited
// nodes in traversal order in queue's storage. The graph must be finalized
// (every public entry point below finalizes first).
//amac:hotpath
func (g *Graph) bfsInto(src NodeID, dist []int, queue []NodeID) []NodeID {
	dist[src] = 0
	queue = append(queue[:0], src)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, v := range g.row(u) {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// BFS returns the hop distance from src to every node; Unreachable for nodes
// in other components.
func (g *Graph) BFS(src NodeID) []int {
	g.check(src)
	g.finalize()
	dist := make([]int, g.n)
	resetDist(dist)
	s := getScratch(g.n)
	s.queue = g.bfsInto(src, dist, s.queue)
	putScratch(s)
	return dist
}

// Dist returns the hop distance dG(u, v), or Unreachable when disconnected.
func (g *Graph) Dist(u, v NodeID) int {
	g.check(u)
	g.check(v)
	g.finalize()
	s := getScratch(g.n)
	defer putScratch(s)
	resetDist(s.dist)
	s.queue = g.bfsInto(u, s.dist, s.queue)
	return s.dist[v]
}

// Eccentricity returns the maximum finite BFS distance from src (distance to
// the farthest node in src's component).
func (g *Graph) Eccentricity(src NodeID) int {
	g.check(src)
	g.finalize()
	s := getScratch(g.n)
	defer putScratch(s)
	resetDist(s.dist)
	s.queue = g.bfsInto(src, s.dist, s.queue)
	max := 0
	for _, v := range s.queue {
		if d := s.dist[v]; d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the maximum eccentricity over all nodes, considering only
// intra-component distances. For an empty graph it returns 0. The result is
// memoized until the next mutation (runners recompute the diameter of the
// same network for every execution); the memo is lock-guarded because
// finished graphs are shared read-only across parallel harness workers.
func (g *Graph) Diameter() int {
	g.finalize()
	g.diamMu.Lock()
	defer g.diamMu.Unlock()
	if g.diamOK {
		return g.diam
	}
	s := getScratch(g.n)
	resetDist(s.dist)
	max := 0
	for u := 0; u < g.n; u++ {
		s.queue = g.bfsInto(NodeID(u), s.dist, s.queue)
		for _, v := range s.queue {
			if d := s.dist[v]; d > max {
				max = d
			}
			s.dist[v] = Unreachable // restore for the next source
		}
	}
	putScratch(s)
	g.diam, g.diamOK = max, true
	return max
}

// Components returns the connected components as slices of node IDs, each
// sorted, ordered by smallest member.
func (g *Graph) Components() [][]NodeID {
	g.finalize()
	s := getScratch(g.n)
	resetDist(s.dist)
	var comps [][]NodeID
	for u := 0; u < g.n; u++ {
		if s.dist[u] != Unreachable {
			continue
		}
		s.queue = g.bfsInto(NodeID(u), s.dist, s.queue)
		comp := append([]NodeID(nil), s.queue...)
		sortNodeIDs(comp)
		comps = append(comps, comp)
	}
	putScratch(s)
	return comps
}

// IsConnected reports whether g has exactly one connected component (true
// for the empty and single-node graphs). A single BFS from node 0 — no
// component materialization, because the random-topology builders probe
// connectivity on every rejected draw.
//amac:hotpath
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	g.finalize()
	s := getScratch(g.n)
	defer putScratch(s)
	resetDist(s.dist)
	s.queue = g.bfsInto(0, s.dist, s.queue)
	return len(s.queue) == g.n
}

// Ball returns all nodes within r hops of center (including center), sorted.
// It matches the paper's N_G^r(j) notation.
func (g *Graph) Ball(center NodeID, r int) []NodeID {
	g.check(center)
	g.finalize()
	dist := map[NodeID]int{center: 0}
	queue := []NodeID{center}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == r {
			continue
		}
		for _, v := range g.row(u) {
			if _, ok := dist[v]; !ok {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	out := make([]NodeID, 0, len(dist))
	for v := range dist {
		out = append(out, v)
	}
	sortNodeIDs(out)
	return out
}

// Power returns Gʳ: the graph on the same nodes with an edge between every
// pair at hop distance in [1, r] in g (Section 3.2 of the paper; no
// self-loops).
func (g *Graph) Power(r int) *Graph { return g.PowerInto(r, New(g.n)) }

// PowerInto builds Gʳ into dst, reusing dst's adjacency storage (see Reset),
// and returns dst. The r-balls are walked with a bounded BFS over two
// scratch slices shared by all n source walks of the call — two allocations
// per call instead of Ball's map per node; the resulting edge set is
// identical to Power's.
func (g *Graph) PowerInto(r int, dst *Graph) *Graph {
	if r < 1 {
		panic("graph: power exponent must be >= 1")
	}
	if dst == g {
		panic("graph: PowerInto onto its own receiver")
	}
	g.finalize()
	dst.Reset(g.n)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]NodeID, 0, g.n)
	for u := 0; u < g.n; u++ {
		dist[u] = 0
		queue = append(queue[:0], NodeID(u))
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			if dist[v] == r {
				continue
			}
			for _, w := range g.row(v) {
				if dist[w] == Unreachable {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for _, v := range queue {
			if v != NodeID(u) {
				dst.AddEdge(NodeID(u), v)
			}
			dist[v] = Unreachable
		}
	}
	return dst
}

func sortNodeIDs(s []NodeID) {
	slices.Sort(s)
}
