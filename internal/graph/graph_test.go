package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func line(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	return g
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 1)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) missing")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge (0,2)")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range node did not panic")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(2, 1)
	nbrs := g.Neighbors(2)
	want := []NodeID{0, 1, 3, 4}
	if len(nbrs) != len(want) {
		t.Fatalf("Neighbors = %v", nbrs)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", nbrs, want)
		}
	}
	if g.Degree(2) != 4 || g.MaxDegree() != 4 {
		t.Fatalf("Degree=%d MaxDegree=%d", g.Degree(2), g.MaxDegree())
	}
}

func TestEdgesEnumeration(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	g.AddEdge(3, 0)
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("Edges = %v", edges)
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not normalized", e)
		}
	}
}

func TestBFSLine(t *testing.T) {
	g := line(5)
	dist := g.BFS(0)
	for i, d := range dist {
		if d != i {
			t.Fatalf("dist[%d] = %d, want %d", i, d, i)
		}
	}
	if g.Dist(0, 4) != 4 {
		t.Fatalf("Dist(0,4) = %d", g.Dist(0, 4))
	}
	if g.Diameter() != 4 {
		t.Fatalf("Diameter = %d, want 4", g.Diameter())
	}
	if g.Eccentricity(2) != 2 {
		t.Fatalf("Eccentricity(2) = %d, want 2", g.Eccentricity(2))
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	dist := g.BFS(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatalf("dist = %v, want unreachable for 2,3", dist)
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("Components = %v", comps)
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !line(3).IsConnected() {
		t.Fatal("line reported disconnected")
	}
}

func TestBall(t *testing.T) {
	g := line(7)
	ball := g.Ball(3, 2)
	want := []NodeID{1, 2, 3, 4, 5}
	if len(ball) != len(want) {
		t.Fatalf("Ball = %v, want %v", ball, want)
	}
	for i := range want {
		if ball[i] != want[i] {
			t.Fatalf("Ball = %v, want %v", ball, want)
		}
	}
	if got := g.Ball(0, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Ball(0,0) = %v", got)
	}
}

func TestPowerLine(t *testing.T) {
	g := line(6)
	g2 := g.Power(2)
	// In the square of a line, i connects to i±1 and i±2.
	if !g2.HasEdge(0, 2) || !g2.HasEdge(1, 3) {
		t.Fatal("missing distance-2 edges in square")
	}
	if g2.HasEdge(0, 3) {
		t.Fatal("distance-3 edge present in square")
	}
	if !g.IsSubgraphOf(g2) {
		t.Fatal("G not a subgraph of G^2")
	}
}

func TestPowerExponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Power(0) did not panic")
		}
	}()
	line(3).Power(0)
}

func TestUnionAndClone(t *testing.T) {
	a := New(4)
	a.AddEdge(0, 1)
	b := New(4)
	b.AddEdge(2, 3)
	u := Union(a, b)
	if !u.HasEdge(0, 1) || !u.HasEdge(2, 3) || u.M() != 2 {
		t.Fatalf("union wrong: %v", u.Edges())
	}
	c := a.Clone()
	c.AddEdge(1, 2)
	if a.HasEdge(1, 2) {
		t.Fatal("clone aliases original")
	}
}

func TestIndependence(t *testing.T) {
	g := line(5) // 0-1-2-3-4
	if !g.IsIndependent([]NodeID{0, 2, 4}) {
		t.Fatal("{0,2,4} should be independent")
	}
	if g.IsIndependent([]NodeID{0, 1}) {
		t.Fatal("{0,1} should not be independent")
	}
	if !g.IsMaximalIndependent([]NodeID{0, 2, 4}) {
		t.Fatal("{0,2,4} should be maximal")
	}
	if g.IsMaximalIndependent([]NodeID{0, 4}) {
		t.Fatal("{0,4} should not be maximal (2 uncovered... actually 2 is covered? 2's neighbors are 1,3; not in set; so not maximal)")
	}
	if g.IsMaximalIndependent([]NodeID{0, 1, 3}) {
		t.Fatal("{0,1,3} not independent")
	}
}

// Property: Power(1) equals the original graph.
func TestPowerOneIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(NodeID(i), NodeID(j))
				}
			}
		}
		p := g.Power(1)
		return p.M() == g.M() && g.IsSubgraphOf(p) && p.IsSubgraphOf(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every edge (u,v) of Power(r) satisfies dist_G(u,v) in [1,r].
func TestPowerDistanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		r := 1 + rng.Intn(4)
		g := New(n)
		for i := 0; i < n-1; i++ {
			g.AddEdge(NodeID(i), NodeID(i+1))
		}
		for e := 0; e < n/2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(NodeID(u), NodeID(v))
			}
		}
		p := g.Power(r)
		for _, e := range p.Edges() {
			d := g.Dist(e[0], e[1])
			if d < 1 || d > r {
				return false
			}
		}
		// And conversely every pair within distance r is an edge of p.
		for u := 0; u < n; u++ {
			dist := g.BFS(NodeID(u))
			for v := u + 1; v < n; v++ {
				if dist[v] != Unreachable && dist[v] <= r && !p.HasEdge(NodeID(u), NodeID(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances satisfy the triangle inequality along edges:
// |dist(u) - dist(v)| <= 1 for every edge (u,v) in a connected graph.
func TestBFSLipschitzProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := line(n) // ensure connected
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(NodeID(u), NodeID(v))
			}
		}
		dist := g.BFS(0)
		for _, e := range g.Edges() {
			du, dv := dist[e[0]], dist[e[1]]
			if du-dv > 1 || dv-du > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := New(40)
	for e := 0; e < 30; e++ {
		u, v := rng.Intn(40), rng.Intn(40)
		if u != v {
			g.AddEdge(NodeID(u), NodeID(v))
		}
	}
	seen := map[NodeID]bool{}
	for _, comp := range g.Components() {
		for _, v := range comp {
			if seen[v] {
				t.Fatalf("node %d in two components", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 40 {
		t.Fatalf("components cover %d nodes, want 40", len(seen))
	}
}

// graphEqual reports structural equality: same node count and edge set.
func graphEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	return a.IsSubgraphOf(b) && b.IsSubgraphOf(a)
}

// TestResetMatchesNew pins the structure-sharing contract: a Reset graph is
// observably identical to New(n) — across shrinks, growths and re-fills.
func TestResetMatchesNew(t *testing.T) {
	g := line(8)
	for _, n := range []int{8, 3, 12, 0, 5} {
		g.Reset(n)
		if !graphEqual(g, New(n)) {
			t.Fatalf("Reset(%d) != New(%d): edges %v", n, n, g.Edges())
		}
		for i := 0; i < n-1; i++ {
			g.AddEdge(NodeID(i), NodeID(i+1))
		}
		if !graphEqual(g, line(n)) {
			t.Fatalf("rebuilt line(%d) after Reset diverged: %v", n, g.Edges())
		}
		if n > 1 && g.Diameter() != n-1 {
			t.Fatalf("stale diameter memo after Reset: %d", g.Diameter())
		}
	}
}

// TestResetReusesRows asserts the point of Reset: rebuilding a same-shaped
// graph into a Reset receiver performs no allocation.
func TestResetReusesRows(t *testing.T) {
	g := line(64)
	allocs := testing.AllocsPerRun(20, func() {
		g.Reset(64)
		for i := 0; i < 63; i++ {
			g.AddEdge(NodeID(i), NodeID(i+1))
		}
	})
	if allocs != 0 {
		t.Fatalf("Reset rebuild allocates %.0f times, want 0", allocs)
	}
}

// TestCloneInto pins that CloneInto equals Clone and does not alias the
// source.
func TestCloneInto(t *testing.T) {
	src := line(6)
	dst := New(0)
	for round := 0; round < 3; round++ {
		got := src.CloneInto(dst)
		if got != dst {
			t.Fatal("CloneInto did not return its destination")
		}
		if !graphEqual(dst, src) {
			t.Fatalf("CloneInto diverged: %v vs %v", dst.Edges(), src.Edges())
		}
		dst.AddEdge(0, 5)
		if src.HasEdge(0, 5) {
			t.Fatal("CloneInto aliases the source rows")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CloneInto onto itself did not panic")
		}
	}()
	src.CloneInto(src)
}

// TestPowerIntoMatchesPower pins that the slice-based bounded BFS produces
// exactly Ball-derived powers, across reuse of one destination.
func TestPowerIntoMatchesPower(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dst := New(0)
	for round := 0; round < 30; round++ {
		n := 2 + rng.Intn(20)
		r := 1 + rng.Intn(4)
		g := line(n)
		for e := 0; e < n/2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(NodeID(u), NodeID(v))
			}
		}
		want := g.Power(r)
		if got := g.PowerInto(r, dst); !graphEqual(got, want) {
			t.Fatalf("PowerInto(%d) diverged on n=%d: %v vs %v", r, n, got.Edges(), want.Edges())
		}
	}
	g := line(4)
	defer func() {
		if recover() == nil {
			t.Fatal("PowerInto onto its receiver did not panic")
		}
	}()
	g.PowerInto(2, g)
}

// TestEdgeSeqMatchesEdges pins the streaming iterator's contract: EdgeSeq
// yields exactly the pairs Edges materializes, in the same lexicographic
// order — the property the randomized builders rely on to keep their rng
// streams (and hence the golden traces) unchanged after switching.
func TestEdgeSeqMatchesEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		g := New(n)
		for k := 0; k < n*2; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(NodeID(u), NodeID(v))
			}
		}
		want := g.Edges()
		i := 0
		for u, v := range g.EdgeSeq() {
			if i >= len(want) || want[i][0] != u || want[i][1] != v {
				t.Fatalf("trial %d: EdgeSeq[%d] = (%d,%d), want %v", trial, i, u, v, want[i:])
			}
			i++
		}
		if i != len(want) {
			t.Fatalf("trial %d: EdgeSeq yielded %d edges, Edges has %d", trial, i, len(want))
		}
	}
}

// TestEdgeSeqEarlyBreak pins that a consumer can stop the stream mid-walk.
func TestEdgeSeqEarlyBreak(t *testing.T) {
	g := line(10)
	count := 0
	for range g.EdgeSeq() {
		count++
		if count == 3 {
			break
		}
	}
	if count != 3 {
		t.Fatalf("walked %d edges after break at 3", count)
	}
}
