package graph

// GreedyMIS returns the maximal independent set produced by the sequential
// greedy algorithm scanning nodes in ID order. It is the centralized
// baseline the distributed MIS subroutine (paper Section 4.2) is compared
// against: both produce maximal independent sets; the distributed one does
// it in O(polylog n) Fprog-rounds over the abstract MAC layer.
func (g *Graph) GreedyMIS() []NodeID {
	g.finalize()
	blocked := make([]bool, g.n)
	var mis []NodeID
	for u := 0; u < g.n; u++ {
		if blocked[u] {
			continue
		}
		mis = append(mis, NodeID(u))
		blocked[u] = true
		for _, v := range g.row(NodeID(u)) {
			blocked[v] = true
		}
	}
	return mis
}

// Overlay returns the overlay graph H = (set, E_set) of Section 4.4: the
// graph over the given node subset with an edge between two members
// whenever their hop distance in g is at most maxDist (the paper uses
// maxDist = 3 over an MIS). Node i of the result corresponds to set[i];
// the mapping is returned alongside.
func (g *Graph) Overlay(set []NodeID, maxDist int) (*Graph, []NodeID) {
	g.finalize()
	idx := make(map[NodeID]int, len(set))
	members := append([]NodeID(nil), set...)
	sortNodeIDs(members)
	for i, v := range members {
		idx[v] = i
	}
	h := New(len(members))
	for i, v := range members {
		dist := g.boundedBFS(v, maxDist)
		//lint:mapiter AddEdge order is invisible: finalize sorts and dedups the CSR arc array, so the built graph is identical for any visit order
		for u, d := range dist {
			j, ok := idx[u]
			if !ok || j == i || d > maxDist {
				continue
			}
			h.AddEdge(NodeID(i), NodeID(j))
		}
	}
	return h, members
}

// boundedBFS returns hop distances from src up to the given radius.
func (g *Graph) boundedBFS(src NodeID, radius int) map[NodeID]int {
	dist := map[NodeID]int{src: 0}
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == radius {
			continue
		}
		for _, v := range g.row(u) {
			if _, ok := dist[v]; !ok {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
