//go:build !race

package graph

// raceEnabled mirrors race_test.go for regular builds.
const raceEnabled = false
