package scenario

import (
	"strings"
	"testing"

	"amac/internal/core"
	"amac/internal/topology"
)

// TestRunSpecTraceMode walks the normalization table for the "run" block's
// trace surface: the new explicit "trace" mode, the deprecated no_trace /
// trace_file keys it replaces, and every illegal combination.
func TestRunSpecTraceMode(t *testing.T) {
	cases := []struct {
		name string
		run  RunSpec
		mode core.TraceMode
		want string // substring of the error, "" = valid
	}{
		// New surface.
		{"default", RunSpec{}, core.TraceMemory, ""},
		{"explicit memory", RunSpec{Trace: "memory"}, core.TraceMemory, ""},
		{"explicit off", RunSpec{Trace: "off"}, core.TraceOff, ""},
		{"explicit stream", RunSpec{Trace: "stream", TraceFile: "t.jsonl"}, core.TraceStream, ""},
		{"memory+check", RunSpec{Trace: "memory", Check: true}, core.TraceMemory, ""},
		// Deprecated keys, legacy precedence preserved.
		{"legacy no_trace", RunSpec{NoTrace: true}, core.TraceOff, ""},
		{"legacy no_trace yields to check", RunSpec{NoTrace: true, Check: true}, core.TraceMemory, ""},
		{"legacy trace_file", RunSpec{TraceFile: "t.jsonl"}, core.TraceStream, ""},
		// Illegal combinations.
		{"unknown mode", RunSpec{Trace: "ndjson"}, 0, "unknown trace mode"},
		{"trace conflicts with no_trace", RunSpec{Trace: "off", NoTrace: true}, 0, "no_trace is deprecated"},
		{"check+off", RunSpec{Trace: "off", Check: true}, 0, "check requires trace=memory"},
		{"check+stream", RunSpec{Trace: "stream", TraceFile: "t.jsonl", Check: true}, 0, "check requires trace=memory"},
		{"stream without file", RunSpec{Trace: "stream"}, 0, "requires trace_file"},
		{"file without stream", RunSpec{Trace: "memory", TraceFile: "t.jsonl"}, 0, "trace_file requires trace=stream"},
		{"legacy file+check", RunSpec{TraceFile: "t.jsonl", Check: true}, 0, "incompatible with check"},
		{"legacy file+no_trace", RunSpec{TraceFile: "t.jsonl", NoTrace: true}, 0, "incompatible with no_trace"},
	}
	for _, tc := range cases {
		mode, err := tc.run.TraceMode()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			} else if mode != tc.mode {
				t.Errorf("%s: mode %v, want %v", tc.name, mode, tc.mode)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

// TestRunSpecParallelKeysRoundTrip pins JSON parity for the new run-block
// keys: "trace", "shards" and "regions" survive a marshal/parse round trip,
// so the JSON surface cannot drift from the Go surface.
func TestRunSpecParallelKeysRoundTrip(t *testing.T) {
	spec := Spec{
		Name:      "parallel",
		Topology:  TopologySpec{Name: "line", Params: topology.Params{"n": 16}},
		Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 2},
		Algorithm: AlgorithmSpec{Name: "bmmb"},
		Scheduler: SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
		Run:       RunSpec{Seed: 1, Trace: "off", Shards: 4, Regions: 8},
	}
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"trace": "off"`, `"shards": 4`, `"regions": 8`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("marshaled spec is missing %s:\n%s", key, data)
		}
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Run.Trace != "off" || back.Run.Shards != 4 || back.Run.Regions != 8 {
		t.Fatalf("round trip lost parallel keys: %+v", back.Run)
	}
	if err := back.WithDefaults().Validate(); err != nil {
		t.Fatalf("round-tripped spec invalid: %v", err)
	}
}

// TestRunSpecValidateParallel pins the validation rules for the shards and
// regions knobs at the scenario surface.
func TestRunSpecValidateParallel(t *testing.T) {
	base := Spec{
		Topology:  TopologySpec{Name: "line", Params: topology.Params{"n": 8}},
		Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 1},
		Algorithm: AlgorithmSpec{Name: "bmmb"},
		Run:       RunSpec{Seed: 1},
	}
	cases := []struct {
		name string
		edit func(*Spec)
		want string
	}{
		{"negative shards", func(s *Spec) { s.Run.Shards = -1 }, "negative shards"},
		{"negative regions", func(s *Spec) { s.Run.Regions = -2 }, "negative regions"},
		{"regions without shards", func(s *Spec) { s.Run.Regions = 4 }, "requires shards >= 1"},
	}
	for _, tc := range cases {
		spec := base
		tc.edit(&spec)
		err := spec.WithDefaults().Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

// TestScenarioShardedWarmMatchesCold extends the unpinned warm/cold
// byte-identity guarantee to shards>1: the decomposed executor behind the
// scenario surface must agree with the cold Trial path trace-for-trace on
// warm per-worker state, exactly as the legacy path does.
func TestScenarioShardedWarmMatchesCold(t *testing.T) {
	for _, spec := range unpinnedSpecs(1) {
		spec.Run.Shards = 2
		t.Run(spec.Name, func(t *testing.T) {
			r := spec.WithDefaults()
			warm := newWarmRandRun(r, 1)
			for seed := int64(1); seed <= 4; seed++ {
				cold, err := Trial(spec, seed)
				if err != nil {
					t.Fatalf("cold trial seed %d: %v", seed, err)
				}
				want := trialSnapshot(cold)
				tr, err := warm.trial(seed, 0, false)
				if err != nil {
					t.Fatalf("warm trial seed %d: %v", seed, err)
				}
				if got := trialSnapshot(tr); got != want {
					t.Fatalf("sharded warm trial seed %d diverged from cold:\nwarm:\n%.400s\ncold:\n%.400s",
						seed, got, want)
				}
			}
		})
	}
}
