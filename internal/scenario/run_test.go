package scenario

import (
	"reflect"
	"strings"
	"testing"

	"amac/internal/core"
	"amac/internal/sched"
	"amac/internal/topology"
)

// tinyTopologies maps every registered topology family to small-instance
// parameters and the workload that fits it. TestRegistryCompleteness fails
// if a family is registered without an entry here, so new topologies cannot
// ship untested.
var tinyTopologies = map[string]struct {
	params   topology.Params
	workload WorkloadSpec
}{
	"line":           {topology.Params{"n": 6}, WorkloadSpec{Kind: WorkloadSingleton, K: 2}},
	"ring":           {topology.Params{"n": 6}, WorkloadSpec{Kind: WorkloadSingleton, K: 2}},
	"star":           {topology.Params{"n": 6}, WorkloadSpec{Kind: WorkloadSingleton, K: 2}},
	"tree":           {topology.Params{"n": 7}, WorkloadSpec{Kind: WorkloadSingleton, K: 2}},
	"grid":           {topology.Params{"rows": 2, "cols": 3}, WorkloadSpec{Kind: WorkloadSingleton, K: 2}},
	"rgg":            {topology.Params{"n": 10, "side": 2, "c": 1.6, "p": 0.5}, WorkloadSpec{Kind: WorkloadSingleton, K: 2}},
	"rline":          {topology.Params{"n": 8, "r": 2, "p": 0.6}, WorkloadSpec{Kind: WorkloadSingleton, K: 2}},
	"noisy-line":     {topology.Params{"n": 8, "extra": 4}, WorkloadSpec{Kind: WorkloadSingleton, K: 2}},
	"pods":           {topology.Params{"n": 12, "k": 3, "r": 2, "p": 0.6}, WorkloadSpec{Kind: WorkloadSingleton, K: 3}},
	"grid-crosstalk": {topology.Params{"rows": 3, "r": 2, "p": 0.5}, WorkloadSpec{Kind: WorkloadSingleton, K: 2}},
	"parallel-lines": {topology.Params{"d": 3}, WorkloadSpec{Kind: WorkloadConstruction}},
	"star-choke":     {topology.Params{"k": 3}, WorkloadSpec{Kind: WorkloadConstruction}},
}

// schedulerFor pairs every registered scheduler with a topology it can run
// on. TestRegistryCompleteness fails on registered-but-unlisted schedulers.
var schedulerFor = map[string]struct {
	topo   string
	params topology.Params
}{
	"sync":       {"line", topology.Params{"rel": 0.5}},
	"random":     {"rline", topology.Params{"rel": 0.5}},
	"contention": {"rline", topology.Params{"flaky-up": 40, "flaky-down": 40}},
	"slot":       {"line", nil},
	"adversary":  {"parallel-lines", nil},
}

// runTiny executes the spec across a few seeds and returns the first solved
// report (FMMB's guarantees are w.h.p., so a fixed seed may legitimately
// miss on tiny instances).
func runTiny(t *testing.T, s Spec) *Report {
	t.Helper()
	var last *Report
	for seed := int64(1); seed <= 5; seed++ {
		s.Run.Seed = seed
		rep, err := Run(s)
		if err != nil {
			t.Fatalf("%s/%s: %v", s.Topology.Name, s.Algorithm.Name, err)
		}
		last = rep
		if tr := rep.Trials[0]; tr.Result.Report != nil && !tr.Result.Report.OK() {
			t.Fatalf("%s/%s seed %d: model violation: %v",
				s.Topology.Name, s.Algorithm.Name, seed, tr.Result.Report.Violations[0])
		}
		if rep.Solved() == len(rep.Trials) {
			return rep
		}
	}
	t.Fatalf("%s/%s: unsolved on every seed (last: %d/%d)",
		s.Topology.Name, s.Algorithm.Name,
		last.Trials[0].Result.Delivered, last.Trials[0].Result.Required)
	return nil
}

// TestRegistryCompleteness builds and runs every registered topology with
// every registered algorithm (on its default scheduler) and exercises every
// registered scheduler, all on tiny instances with the model checkers on.
func TestRegistryCompleteness(t *testing.T) {
	var covered []string
	for _, name := range topology.Names() {
		if _, ok := tinyTopologies[name]; ok {
			covered = append(covered, name)
		}
	}
	if !reflect.DeepEqual(covered, topology.Names()) {
		t.Fatalf("tinyTopologies covers %v but the registry has %v", covered, topology.Names())
	}
	for _, schedName := range sched.Names() {
		if _, ok := schedulerFor[schedName]; !ok {
			t.Fatalf("scheduler %q registered without a completeness entry", schedName)
		}
	}

	for _, topoName := range topology.Names() {
		tiny := tinyTopologies[topoName]
		for _, algName := range core.AlgorithmNames() {
			spec := Spec{
				Topology:  TopologySpec{Name: topoName, Params: tiny.params},
				Workload:  tiny.workload,
				Algorithm: AlgorithmSpec{Name: algName},
				Run:       RunSpec{Check: true},
			}
			if algName == "fmmb" {
				spec.Algorithm.Params = topology.Params{"c": 1.6}
			}
			runTiny(t, spec)
		}
	}

	for schedName, cfg := range schedulerFor {
		tiny := tinyTopologies[cfg.topo]
		spec := Spec{
			Topology:  TopologySpec{Name: cfg.topo, Params: tiny.params},
			Workload:  tiny.workload,
			Algorithm: AlgorithmSpec{Name: "bmmb"},
			Scheduler: SchedulerSpec{Name: schedName, Params: cfg.params},
			Run:       RunSpec{Check: true},
		}
		runTiny(t, spec)
	}
}

// TestRunDeterministicAcrossParallelism asserts a multi-trial report is a
// pure function of the spec regardless of worker pool size.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	base := Spec{
		Topology:  TopologySpec{Name: "rline", Params: topology.Params{"n": 12, "r": 2, "p": 0.6}},
		Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 3},
		Algorithm: AlgorithmSpec{Name: "bmmb"},
		Scheduler: SchedulerSpec{Name: "contention", Params: topology.Params{"rel": 0.5}},
		Run:       RunSpec{Trials: 6},
	}
	seq := base
	seq.Run.Parallelism = 1
	par := base
	par.Run.Parallelism = 4
	seqRep, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	parRep, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqRep.Trials {
		s, p := seqRep.Trials[i].Result, parRep.Trials[i].Result
		if s.CompletionTime != p.CompletionTime || s.Steps != p.Steps || s.Delivered != p.Delivered {
			t.Fatalf("trial %d diverged across parallelism: sequential %+v parallel %+v", i, s, p)
		}
	}
}

// TestSweepMatchesRun asserts Sweep over a grid equals Run on each member.
func TestSweepMatchesRun(t *testing.T) {
	var specs []Spec
	for _, n := range []int{6, 10} {
		specs = append(specs, Spec{
			Topology:  TopologySpec{Name: "line", Params: topology.Params{"n": float64(n)}},
			Workload:  WorkloadSpec{Kind: WorkloadSingleSource, K: 2},
			Algorithm: AlgorithmSpec{Name: "bmmb"},
			Run:       RunSpec{Trials: 3},
		})
	}
	reports, err := Sweep(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		direct, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(direct.Trials) != len(reports[i].Trials) {
			t.Fatalf("spec %d: %d vs %d trials", i, len(direct.Trials), len(reports[i].Trials))
		}
		for j := range direct.Trials {
			a, b := direct.Trials[j].Result, reports[i].Trials[j].Result
			if a.CompletionTime != b.CompletionTime || a.Steps != b.Steps {
				t.Fatalf("spec %d trial %d: Sweep diverged from Run", i, j)
			}
		}
	}
}

// TestExplicitWorkload runs an explicit arrival list end to end: timed,
// multi-origin injections the flag interface never expressed.
func TestExplicitWorkload(t *testing.T) {
	rep, err := Run(Spec{
		Topology:  TopologySpec{Name: "ring", Params: topology.Params{"n": 8}},
		Workload: WorkloadSpec{Kind: WorkloadExplicit, Arrivals: []ArrivalSpec{
			{At: 0, Node: 0}, {At: 50, Node: 4}, {At: 120, Node: 2},
		}},
		Algorithm: AlgorithmSpec{Name: "bmmb"},
		Run:       RunSpec{Check: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Trials[0].Result
	if !res.Solved {
		t.Fatalf("explicit workload unsolved: %d/%d", res.Delivered, res.Required)
	}
	if res.CompletionTime < 120 {
		t.Fatalf("completion %d precedes the last arrival", res.CompletionTime)
	}
}

// TestTrialErrors exercises the build-time error paths that static
// validation cannot catch.
func TestTrialErrors(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		wantSub string
	}{
		{"origin outside network", Spec{
			Topology:  TopologySpec{Name: "line", Params: topology.Params{"n": 4}},
			Workload:  WorkloadSpec{Kind: WorkloadSingleton, Origins: []int{9}},
			Algorithm: AlgorithmSpec{Name: "bmmb"},
		}, "outside [0,4)"},
		{"construction without artifact", Spec{
			Topology:  TopologySpec{Name: "line", Params: topology.Params{"n": 4}},
			Workload:  WorkloadSpec{Kind: WorkloadConstruction},
			Algorithm: AlgorithmSpec{Name: "bmmb"},
		}, "no canonical construction workload"},
		{"adversary off its network", Spec{
			Topology:  TopologySpec{Name: "line", Params: topology.Params{"n": 4}},
			Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 2},
			Algorithm: AlgorithmSpec{Name: "bmmb"},
			Scheduler: SchedulerSpec{Name: "adversary"},
		}, "requires the parallel-lines topology"},
		{"undersized rgg", Spec{
			Topology:  TopologySpec{Name: "rgg", Params: topology.Params{"n": 40, "side": 40, "max-tries": 3}},
			Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 2},
			Algorithm: AlgorithmSpec{Name: "bmmb"},
		}, "no connected rgg instance"},
		{"sync delay beyond fprog", Spec{
			Topology:  TopologySpec{Name: "line", Params: topology.Params{"n": 4}},
			Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 2},
			Algorithm: AlgorithmSpec{Name: "bmmb"},
			Scheduler: SchedulerSpec{Name: "sync", Params: topology.Params{"recv-delay": 50}},
		}, "recv-delay 50 outside [1, fprog=10]"},
	}
	for _, tc := range cases {
		_, err := Trial(tc.spec, 1)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}
