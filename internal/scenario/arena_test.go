package scenario_test

import (
	"fmt"
	"testing"

	"amac/internal/scenario"
	"amac/internal/topology"
)

// pinnedSpecs returns multi-trial pinned-topology scenarios covering both
// registered algorithms (bmmb's map-backed fleet, fmmb's staged
// timer/abort automaton with its MIS substate) and randomized scheduling,
// so arena plus fleet reuse is exercised across resets, not just on the
// first trial.
func pinnedSpecs(trials int) []scenario.Spec {
	return []scenario.Spec{
		{
			Name: "bmmb-pinned",
			Topology: scenario.TopologySpec{
				Name:   "rline",
				Params: topology.Params{"n": 14, "r": 2, "p": 0.6},
				Seed:   7,
			},
			Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: 3},
			Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
			Scheduler: scenario.SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
			Model:     scenario.ModelSpec{Fprog: 10, Fack: 200},
			Run:       scenario.RunSpec{Seed: 3, Trials: trials, Check: true},
		},
		{
			Name: "fmmb-pinned",
			Topology: scenario.TopologySpec{
				Name:   "rline",
				Params: topology.Params{"n": 10, "r": 2, "p": 0.5},
				Seed:   5,
			},
			Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: 2},
			Algorithm: scenario.AlgorithmSpec{Name: "fmmb"},
			Model:     scenario.ModelSpec{Fprog: 10, Fack: 200},
			Run:       scenario.RunSpec{Seed: 2, Trials: trials, Check: true},
		},
	}
}

// reportFingerprint renders every per-trial scalar outcome of a sweep.
func reportFingerprint(reports []*scenario.Report) string {
	out := ""
	for _, r := range reports {
		for _, tr := range r.Trials {
			res := tr.Result
			ok := res.Report == nil || res.Report.OK()
			out += fmt.Sprintf("%s seed=%d sched=%s solved=%v t=%d end=%d del=%d req=%d bcasts=%d steps=%d check=%v\n",
				r.Spec.Name, tr.Seed, tr.SchedulerName, res.Solved, res.CompletionTime,
				res.End, res.Delivered, res.Required, res.Broadcasts, res.Steps, ok)
		}
	}
	return out
}

// TestArenaSweepMatchesNoArena pins the acceptance guarantee of the run-
// arena subsystem at the scenario layer: repeated trials of pinned
// topologies produce identical results with arena/fleet reuse on and off,
// at sequential and parallel pool sizes alike.
func TestArenaSweepMatchesNoArena(t *testing.T) {
	const trials = 5
	specs := pinnedSpecs(trials)
	baseline, err := scenario.SweepWithOptions(specs, scenario.SweepOptions{Parallelism: 1, NoArena: true})
	if err != nil {
		t.Fatal(err)
	}
	want := reportFingerprint(baseline)
	for _, tc := range []scenario.SweepOptions{
		{Parallelism: 1},
		{Parallelism: 3},
		{Parallelism: 3, NoArena: true},
	} {
		reports, err := scenario.SweepWithOptions(specs, tc)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if got := reportFingerprint(reports); got != want {
			t.Fatalf("sweep with %+v diverged from the cold sequential baseline:\ngot:\n%s\nwant:\n%s", tc, got, want)
		}
	}
}

// TestRunSpecNoArena pins that the spec-level escape hatch is honored and
// produces identical results through scenario.Run.
func TestRunSpecNoArena(t *testing.T) {
	spec := pinnedSpecs(4)[0]
	warm, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Run.NoArena = true
	cold, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := reportFingerprint([]*scenario.Report{warm})
	c := reportFingerprint([]*scenario.Report{cold})
	// The fingerprints differ only in the resolved spec name, which is
	// identical here; everything else must match exactly.
	if w != c {
		t.Fatalf("no_arena run diverged:\nwarm:\n%s\ncold:\n%s", w, c)
	}
}
