package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/par"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// TrialResult is one executed seed of a scenario.
type TrialResult struct {
	// Seed is the run seed of this trial.
	Seed int64
	// Built is the topology the trial ran on (randomized families draw a
	// fresh instance per trial unless the spec pins the topology seed).
	// When unpinned trials reuse warm per-worker state (NoArena unset),
	// the graphs behind Built are workspace storage recycled by the next
	// trial on the same worker — except for the spec's first and final
	// trials, which are always built into stable storage so report
	// consumers stay correct (amacsim's header reads the first trial's
	// network, bound formulas the last trial's). Callers needing every
	// trial's instance intact copy it in a watcher or disable reuse.
	Built *topology.Built
	// Workload is the resolved arrival schedule.
	Workload *core.Workload
	// SchedulerName is the resolved scheduler's self-description.
	SchedulerName string
	// Result is the execution outcome. When trials reuse a warm arena
	// (pinned topology, NoArena unset), Result.Engine — and the trace it
	// backs, Result.Trace — is recycled by the next trial on the same
	// worker: with Trials == 1 it stays valid, and the scalar fields and
	// Report are always safe, but multi-trial callers that need per-trial
	// traces or instances must either copy them in a watcher or disable
	// reuse. Decomposed runs (shards >= 1 on a multi-component network)
	// leave Engine nil and return a freshly merged Trace the caller owns.
	Result *core.Result
}

// Report is the outcome of Run: the resolved spec plus one result per trial,
// in seed order. All aggregate accessors reduce in that order, so reports
// are byte-stable at any parallelism.
type Report struct {
	Spec   Spec
	Trials []*TrialResult
}

// Solved counts solved trials.
func (r *Report) Solved() int {
	n := 0
	for _, t := range r.Trials {
		if t.Result.Solved {
			n++
		}
	}
	return n
}

// MeanCompletion averages completion time over the solved trials (0 when
// none solved).
func (r *Report) MeanCompletion() float64 {
	sum, n := 0.0, 0
	for _, t := range r.Trials {
		if t.Result.Solved {
			sum += float64(t.Result.CompletionTime)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WorstCompletion returns the maximum completion time over solved trials.
func (r *Report) WorstCompletion() float64 {
	worst := 0.0
	for _, t := range r.Trials {
		if t.Result.Solved && float64(t.Result.CompletionTime) > worst {
			worst = float64(t.Result.CompletionTime)
		}
	}
	return worst
}

// Steps totals simulation events across all trials.
func (r *Report) Steps() uint64 {
	var s uint64
	for _, t := range r.Trials {
		s += t.Result.Steps
	}
	return s
}

// Run validates the spec and executes its trials on a worker pool of
// Run.Parallelism, returning per-trial results in seed order. Every trial is
// an independent deterministic simulation keyed by its seed, so the report
// is a pure function of the spec at any parallelism. Trials of a pinned
// topology run against one warm run arena per worker (see warmRun); trials
// of an unpinned (per-trial randomized) topology build into one warm
// workspace-and-runner pair per worker (see warmRandRun). Run.NoArena
// disables both kinds of reuse.
func Run(s Spec) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := s.WithDefaults()
	// A pinned topology is identical across trials: build the read-only
	// instance once and share it with the pool.
	var shared *topology.Built
	if topologyPinned(r) {
		var err error
		if shared, err = buildTopology(r, r.Run.Seed); err != nil {
			return nil, err
		}
	}
	workers := par.Workers(r.Run.Parallelism, r.Run.Trials)
	var warm *warmRun
	var warmRand *warmRandRun
	switch {
	case shared != nil && !r.Run.NoArena:
		var err error
		if warm, err = newWarmRun(r, shared, workers); err != nil {
			return nil, fmt.Errorf("scenario: trial with seed %d: %w", r.Run.Seed, err)
		}
	case shared == nil && !r.Run.NoArena:
		warmRand = newWarmRandRun(r, workers)
	}
	trials := make([]*TrialResult, r.Run.Trials)
	errs := make([]error, r.Run.Trials)
	par.ForWorker(r.Run.Parallelism, r.Run.Trials, func(worker, i int) {
		seed := r.Run.Seed + int64(i)
		switch {
		case warm != nil:
			trials[i], errs[i] = warm.trial(seed, worker)
		case warmRand != nil:
			trials[i], errs[i] = warmRand.trial(seed, worker, i == 0 || i == r.Run.Trials-1)
		case shared != nil:
			trials[i], errs[i] = trialOn(s, seed, shared)
		default:
			trials[i], errs[i] = Trial(s, seed)
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario: trial with seed %d: %w", r.Run.Seed+int64(i), err)
		}
	}
	return &Report{Spec: r, Trials: trials}, nil
}

// SweepOptions parameterizes Sweep beyond the spec grid itself.
type SweepOptions struct {
	// Parallelism bounds concurrent (spec, trial) simulations; 0 or 1 runs
	// sequentially. Reports are byte-identical at any value.
	Parallelism int
	// NoArena disables cross-trial arena and fleet reuse for pinned
	// topologies across the whole sweep (per-spec Run.NoArena also
	// applies). Executions are identical either way; this is the
	// debugging escape hatch.
	NoArena bool
	// Progress, when set, is called after each completed trial with the
	// cumulative number of trials finished so far in this call (1..total).
	// Trials complete on a worker pool, so the callback must be safe for
	// concurrent use; counts are assigned atomically and each value in
	// 1..total is delivered exactly once, though not necessarily in
	// order. Purely observational — results are identical with or
	// without it.
	Progress func(done int)
}

// Sweep executes a grid of specs, flattening every (spec, trial) pair onto
// one worker pool of the given parallelism, and returns one report per spec
// in input order. Each spec's own Run.Parallelism is ignored; everything
// else (seeds, trials) applies per spec.
func Sweep(specs []Spec, parallelism int) ([]*Report, error) {
	return SweepWithOptions(specs, SweepOptions{Parallelism: parallelism})
}

// SweepOffsets returns the flattened task-space offsets of a sweep: tasks
// [offsets[i], offsets[i+1]) are spec i's trials in seed order, and
// offsets[len(specs)] is the total task count. Task t of spec i runs with
// seed Run.Seed + (t - offsets[i]). This is the coordinate system SweepShard
// partitions, and shard planners derive their shard boundaries from it.
func SweepOffsets(specs []Spec) []int {
	offsets := make([]int, len(specs)+1)
	for i, s := range specs {
		offsets[i+1] = offsets[i] + s.WithDefaults().Run.Trials
	}
	return offsets
}

// SweepWithOptions is Sweep with explicit options. Trials of each pinned-
// topology spec share one warm run arena per (spec, worker) pair — pool-
// local state that no two goroutines touch concurrently — so repeated
// trials skip fleet construction and engine allocation while the parallel
// reduction stays byte-identical.
func SweepWithOptions(specs []Spec, o SweepOptions) ([]*Report, error) {
	p, err := newSweepPlan(specs, o, 0, -1)
	if err != nil {
		return nil, err
	}
	total := p.offsets[len(specs)]
	trials, err := p.run(o.Parallelism, 0, total)
	if err != nil {
		return nil, err
	}
	out := make([]*Report, len(specs))
	for i := range specs {
		out[i] = &Report{Spec: p.resolved[i], Trials: trials[p.offsets[i]:p.offsets[i+1]]}
	}
	return out, nil
}

// SweepShard executes tasks [lo, hi) of the sweep's flattened (spec, trial)
// task space — the SweepOffsets coordinate system — and returns their
// results in task order. Every task is a pure function of its (spec, seed),
// and the warm per-worker state a shard builds is byte-identical to the
// state a whole-sweep run would use, so concatenating the results of any
// partition of [0, total) in index order reproduces SweepWithOptions over
// the same specs exactly. This is the distribution primitive behind
// internal/jobs: shards run on different processes (or machines) and merge
// back byte-identically.
func SweepShard(specs []Spec, lo, hi int, o SweepOptions) ([]*TrialResult, error) {
	p, err := newSweepPlan(specs, o, lo, hi)
	if err != nil {
		return nil, err
	}
	return p.run(o.Parallelism, lo, hi)
}

// sweepPlan is the resolved execution plan of a sweep: every spec validated
// and resolved, the flattened task-space offsets, and — for the task range
// the caller will run — shared pinned topologies and per-worker warm state.
// It is the single sweep pipeline behind SweepWithOptions (which runs the
// full task space) and SweepShard (which runs a slice of it), so the two
// cannot diverge.
type sweepPlan struct {
	specs     []Spec // as passed (cold fallback paths re-resolve these)
	resolved  []Spec
	offsets   []int
	shared    []*topology.Built
	warms     []*warmRun
	warmRands []*warmRandRun
	progress  func(done int)
}

// newSweepPlan validates and resolves the specs and prepares warm state for
// the specs whose trials intersect [lo, hi); hi < 0 selects the full task
// space. Pinned topologies and warm arenas are only built for intersecting
// specs, so a narrow shard of a wide grid pays for its own slice only.
func newSweepPlan(specs []Spec, o SweepOptions, lo, hi int) (*sweepPlan, error) {
	p := &sweepPlan{
		specs:     specs,
		resolved:  make([]Spec, len(specs)),
		offsets:   make([]int, len(specs)+1),
		shared:    make([]*topology.Built, len(specs)),
		warms:     make([]*warmRun, len(specs)),
		warmRands: make([]*warmRandRun, len(specs)),
		progress:  o.Progress,
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: spec %d (%s): %w", i, s.Name, err)
		}
		p.resolved[i] = s.WithDefaults()
		p.offsets[i+1] = p.offsets[i] + p.resolved[i].Run.Trials
	}
	total := p.offsets[len(specs)]
	if hi < 0 {
		hi = total
	}
	if lo < 0 || hi > total || lo > hi {
		return nil, fmt.Errorf("scenario: shard [%d, %d) outside the sweep's task space [0, %d)", lo, hi, total)
	}
	workers := par.Workers(o.Parallelism, hi-lo)
	for i := range specs {
		if p.offsets[i+1] <= lo || p.offsets[i] >= hi {
			continue
		}
		if topologyPinned(p.resolved[i]) {
			var err error
			if p.shared[i], err = buildTopology(p.resolved[i], p.resolved[i].Run.Seed); err != nil {
				return nil, fmt.Errorf("scenario: spec %d (%s): %w", i, specs[i].Name, err)
			}
		}
		if o.NoArena || p.resolved[i].Run.NoArena {
			continue
		}
		if p.shared[i] != nil {
			var err error
			if p.warms[i], err = newWarmRun(p.resolved[i], p.shared[i], workers); err != nil {
				return nil, fmt.Errorf("scenario: spec %d (%s): %w", i, specs[i].Name, err)
			}
		} else {
			p.warmRands[i] = newWarmRandRun(p.resolved[i], workers)
		}
	}
	return p, nil
}

// run executes tasks [lo, hi) on a pool of the given parallelism and
// returns their results in task order. Trial seeds are derived from the
// global task index, never the shard-local one, so shard boundaries cannot
// shift an execution.
func (p *sweepPlan) run(parallelism, lo, hi int) ([]*TrialResult, error) {
	trials := make([]*TrialResult, hi-lo)
	errs := make([]error, hi-lo)
	var completed atomic.Int64
	par.ForWorker(parallelism, hi-lo, func(worker, i int) {
		task := lo + i
		// Binary search is overkill: sweeps are small, scan.
		si := 0
		for p.offsets[si+1] <= task {
			si++
		}
		seed := p.resolved[si].Run.Seed + int64(task-p.offsets[si])
		switch {
		case p.warms[si] != nil:
			trials[i], errs[i] = p.warms[si].trial(seed, worker)
		case p.warmRands[si] != nil:
			// keepBuilt marks the first and last tasks this call runs for
			// the spec: their instances build into stable storage so the
			// returned TrialResults honor the Built contract (see
			// TrialResult.Built) even when the range is a shard.
			first := max(p.offsets[si], lo)
			last := min(p.offsets[si+1], hi) - 1
			trials[i], errs[i] = p.warmRands[si].trial(seed, worker,
				task == first || task == last)
		case p.shared[si] != nil:
			trials[i], errs[i] = trialOn(p.specs[si], seed, p.shared[si])
		default:
			trials[i], errs[i] = Trial(p.specs[si], seed)
		}
		if errs[i] == nil && p.progress != nil {
			p.progress(int(completed.Add(1)))
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario: sweep task %d: %w", lo+i, err)
		}
	}
	return trials, nil
}

// warmRun is the reusable trial context of one pinned-topology spec: the
// shared trialPlan resolved once, plus per-worker warm state — each worker
// of the trial pool owns a core.Runner (arena, pooled engine) and, when
// the algorithm's automata implement mac.Resettable, a reusable fleet.
// Repeated trials therefore skip fleet construction, engine allocation and
// delivery-row allocation entirely.
type warmRun struct {
	*trialPlan

	// proto is worker 0's runner and the Fork source for the rest: the
	// CSR and component indexes are derived once per spec, not per
	// worker. Forking reads only immutable state, so workers fork
	// concurrently without locking.
	proto *core.Runner
	// Per-worker state, indexed by the pool's worker slot. A nil fleets
	// entry means "build per trial" (first use, or automata that cannot
	// Reset); a nil scheds entry means the worker has not built its
	// scheduler yet (or the scheduler cannot Reset).
	runners []*core.Runner
	fleets  [][]mac.Automaton
	scheds  []schedSlot
}

// schedSlot is a worker's cached scheduler together with its rendered
// self-description: Reset + Attach reuses the same instance trial after
// trial, so the name — a fmt.Sprintf per render — is computed once when the
// scheduler is built instead of once per trial.
type schedSlot struct {
	s    mac.Scheduler
	name string
}

// newWarmRun resolves the spec once (the same resolution a cold trial
// performs) and allocates the per-worker slots.
func newWarmRun(r Spec, built *topology.Built, workers int) (*warmRun, error) {
	p, err := resolvePlan(r, built)
	if err != nil {
		return nil, err
	}
	return &warmRun{
		trialPlan: p,
		proto:     core.NewRunner(built.Dual),
		runners:   make([]*core.Runner, workers),
		fleets:    make([][]mac.Automaton, workers),
		scheds:    make([]schedSlot, workers),
	}, nil
}

// trial executes one seed on the given worker's warm runner. The execution
// is a pure function of (spec, seed) — the worker index only selects which
// pooled storage backs it — so results are byte-identical to a cold trial
// at any parallelism.
func (w *warmRun) trial(seed int64, worker int) (*TrialResult, error) {
	rn := w.runners[worker]
	if rn == nil {
		if worker == 0 {
			rn = w.proto
		} else {
			rn = w.proto.Fork()
		}
		w.runners[worker] = rn
	}
	automata := w.fleets[worker]
	if automata != nil {
		for _, a := range automata {
			a.(mac.Resettable).Reset()
		}
	} else {
		var err error
		automata, err = w.newFleet()
		if err != nil {
			return nil, err
		}
		if fleetResettable(automata) {
			w.fleets[worker] = automata
		}
	}
	return w.execute(seed, automata, rn, &w.scheds[worker])
}

// warmRandRun is the unpinned counterpart of warmRun: the per-worker warm
// state of a spec whose topology is drawn fresh per trial. Each worker of
// the trial pool owns a topology.Workspace (graph and embedding scratch the
// per-trial builds emit into) and a core.Runner whose arena is rebound to
// every draw, so repeated trials skip graph, engine and delivery-row
// allocation even though no two trials share a network. The spec is
// re-resolved and the fleet rebuilt per trial — both depend on the drawn
// instance — exactly as on the cold path.
type warmRandRun struct {
	spec       Spec // resolved
	workspaces []*topology.Workspace
	runners    []*core.Runner
	scheds     []schedSlot
	pools      []fleetPool
	// plans interns resolved trial plans by drawn node count, per worker.
	// Everything in a plan except the built instance and the horizon is a
	// pure function of (spec, n) for the non-construction workload kinds,
	// so a draw whose size the worker has seen before skips workload and
	// payload re-derivation entirely (see planFor).
	plans []map[int]*trialPlan
}

// newWarmRandRun allocates the per-worker slots; workspaces and runners are
// created lazily on each worker's first trial.
func newWarmRandRun(r Spec, workers int) *warmRandRun {
	return &warmRandRun{
		spec:       r,
		workspaces: make([]*topology.Workspace, workers),
		runners:    make([]*core.Runner, workers),
		scheds:     make([]schedSlot, workers),
		pools:      make([]fleetPool, workers),
		plans:      make([]map[int]*trialPlan, workers),
	}
}

// planFor returns the worker's interned trial plan for the draw's node
// count, rebound to the fresh instance, or resolves and interns a new one.
// Interning is sound because every plan field other than the instance and
// the horizon depends only on (spec, n): singleton origin placement is a
// function of n and K, single-source and explicit workloads only
// bounds-check nodes against n, and the poisson stream is keyed by the
// spec-level workload seed, which is constant across trials. Construction
// workloads read the drawn artifact and are never interned — they only
// arise on deterministic families, which take the pinned path anyway.
func (w *warmRandRun) planFor(built *topology.Built, worker int) (*trialPlan, error) {
	if w.spec.Workload.Kind == WorkloadConstruction {
		return resolvePlan(w.spec, built)
	}
	n := built.Dual.N()
	if p := w.plans[worker][n]; p != nil {
		p.rebind(built)
		return p, nil
	}
	p, err := resolvePlan(w.spec, built)
	if err != nil {
		return nil, err
	}
	if w.plans[worker] == nil {
		w.plans[worker] = make(map[int]*trialPlan)
	}
	w.plans[worker][n] = p
	return p, nil
}

// trial executes one seed on the given worker's warm state. The execution
// is a pure function of (spec, seed) — builds are byte-identical with and
// without the workspace, and the rebound runner is byte-identical to a cold
// core.Run — so results match the cold path at any parallelism. keepBuilt
// marks the spec's first and final trials: they build into stable storage
// instead of the recycled workspace, keeping the report's edge instances
// valid after the sweep (see TrialResult.Built).
func (w *warmRandRun) trial(seed int64, worker int, keepBuilt bool) (*TrialResult, error) {
	var built *topology.Built
	var err error
	if keepBuilt {
		built, err = buildTopology(w.spec, seed)
	} else {
		ws := w.workspaces[worker]
		if ws == nil {
			ws = topology.NewWorkspace()
			w.workspaces[worker] = ws
		}
		built, err = buildTopologyInto(w.spec, seed, ws)
	}
	if err != nil {
		return nil, err
	}
	rn := w.runners[worker]
	if rn == nil {
		rn = core.NewRunner(built.Dual)
		w.runners[worker] = rn
	} else {
		rn.Rebind(built.Dual)
	}
	p, err := w.planFor(built, worker)
	if err != nil {
		return nil, err
	}
	automata, err := w.pools[worker].fleetFor(p)
	if err != nil {
		return nil, err
	}
	res, err := p.execute(seed, automata, rn, &w.scheds[worker])
	if err != nil {
		return nil, err
	}
	w.pools[worker].put(automata)
	return res, nil
}

// fleetResettable reports whether every automaton of the fleet can be
// restored for reuse.
func fleetResettable(fleet []mac.Automaton) bool {
	for _, a := range fleet {
		if _, ok := a.(mac.Resettable); !ok {
			return false
		}
	}
	return true
}

// Trial executes one seed of the scenario: build the topology (seeded per
// trial unless pinned), resolve the workload, instantiate a fresh fleet and
// scheduler, and run. It does not re-validate; Run and Sweep do, and direct
// callers get build-time errors for anything malformed.
func Trial(s Spec, seed int64) (*TrialResult, error) {
	built, err := buildTopology(s.WithDefaults(), seed)
	if err != nil {
		return nil, err
	}
	return trialOn(s, seed, built)
}

// BuildTopology constructs the network instance that trial `seed` of the
// spec would run on. Callers replaying one pinned instance across many
// hand-rolled trials build it once here and pass it to TrialOn; Run and
// Sweep already do this automatically for pinned topologies.
func BuildTopology(s Spec, seed int64) (*topology.Built, error) {
	return buildTopology(s.WithDefaults(), seed)
}

// TrialOn executes one seed of the scenario on an already-built network
// instance (see BuildTopology). The instance is treated as read-only.
func TrialOn(s Spec, seed int64, built *topology.Built) (*TrialResult, error) {
	return trialOn(s, seed, built)
}

// ResolveWorkload resolves the spec's workload against a built instance —
// the same resolution every trial performs. The result depends only on the
// spec and the instance, never on the trial seed, so clients reconstructing
// reports from serialized trial records (internal/jobs) recover the exact
// workload a remote worker ran.
func ResolveWorkload(s Spec, built *topology.Built) (*core.Workload, error) {
	assignment, workload, err := buildWorkload(s.WithDefaults(), built)
	if err != nil {
		return nil, err
	}
	if workload == nil {
		workload = core.FromAssignment(assignment)
	}
	return workload, nil
}

// TopologyPinned reports whether every trial of the spec runs on the same
// network instance (built once from the run's base seed), as opposed to a
// fresh draw per trial seed. Exported for report reconstruction: a pinned
// spec's instance is rebuilt once, an unpinned spec's per trial seed.
func TopologyPinned(s Spec) bool {
	return topologyPinned(s.WithDefaults())
}

// buildTopology constructs the trial's network instance.
func buildTopology(r Spec, seed int64) (*topology.Built, error) {
	return buildTopologyInto(r, seed, nil)
}

// buildTopologyInto constructs the trial's network instance into ws scratch
// (nil allocates fresh). The derived topology seed is threaded to the
// builder as an exact int64 — never through the float64 parameter map,
// which is lossy above 2^53 and used to silently collide large trial seeds
// onto one network. An explicit "seed" parameter still pins the family's
// stream, as always.
func buildTopologyInto(r Spec, seed int64, ws *topology.Workspace) (*topology.Built, error) {
	topoSeed := r.Topology.Seed
	if topoSeed == 0 {
		topoSeed = seed * r.Topology.SeedFactor
	}
	return topology.BuildInto(r.Topology.Name, r.Topology.Params, topoSeed, ws)
}

// topologyPinned reports whether every trial of the spec sees the same
// network instance, letting Run and Sweep build it once. Families
// registered as deterministic (ring, line, grid, ... — builders that
// ignore the seed) are pinned regardless of seeding: rebuilding them per
// trial would construct an identical network every time and forfeit the
// warm arena path.
func topologyPinned(r Spec) bool {
	return topology.Deterministic(r.Topology.Name) ||
		r.Topology.Seed != 0 || r.Topology.Params.Has("seed")
}

// trialOn executes one seed of the scenario on an already-built network.
func trialOn(s Spec, seed int64, built *topology.Built) (*TrialResult, error) {
	p, err := resolvePlan(s.WithDefaults(), built)
	if err != nil {
		return nil, err
	}
	automata, err := p.newFleet()
	if err != nil {
		return nil, err
	}
	return p.execute(seed, automata, nil, nil)
}

// trialPlan is everything about a trial that is a pure function of the
// resolved spec and its built network: the workload, payloads, algorithm,
// horizon and step limit. It is the single spec-resolution pipeline behind
// both the cold path (trialOn resolves one per trial) and the warm path
// (warmRun resolves one per spec and reuses it), so the two cannot
// diverge.
type trialPlan struct {
	spec      Spec // resolved
	built     *topology.Built
	workload  *core.Workload
	payloads  []sim.Payload
	alg       core.Algorithm
	schedName string
	horizon   sim.Time
	stepLimit uint64
	k         int
}

// resolvePlan resolves the trial-invariant parts of a spec against its
// built topology.
func resolvePlan(r Spec, built *topology.Built) (*trialPlan, error) {
	assignment, workload, err := buildWorkload(r, built)
	if err != nil {
		return nil, err
	}
	if workload == nil {
		workload = core.FromAssignment(assignment)
	}
	k := workload.K()
	alg, ok := core.LookupAlgorithm(r.Algorithm.Name)
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q (registered: %v)",
			r.Algorithm.Name, core.AlgorithmNames())
	}
	schedName := r.Scheduler.Name
	if schedName == "" {
		schedName = alg.DefaultScheduler
	}
	payloads := make([]sim.Payload, 0, k)
	for _, ar := range workload.Arrivals() {
		payloads = append(payloads, ar.Msg.Payload())
	}
	horizon := sim.Time(r.Run.Horizon)
	if horizon == 0 && alg.Horizon != nil {
		horizon = alg.Horizon(built.Dual, k, sim.Time(r.Model.Fprog), r.Algorithm.Params)
	}
	stepLimit := r.Run.StepLimit
	if stepLimit == 0 {
		stepLimit = alg.StepLimit
	}
	return &trialPlan{
		spec:      r,
		built:     built,
		workload:  workload,
		payloads:  payloads,
		alg:       alg,
		schedName: schedName,
		horizon:   horizon,
		stepLimit: stepLimit,
		k:         k,
	}, nil
}

// newFleet builds a fresh fleet for the plan.
func (p *trialPlan) newFleet() ([]mac.Automaton, error) {
	return p.alg.NewFleet(p.built.Dual, p.k, p.spec.Algorithm.Params)
}

// rebind points an interned plan at a fresh draw of the same node count,
// recomputing the only instance-dependent field: the horizon, whose
// registered formula may read instance invariants like the diameter. The
// result is field-for-field identical to resolvePlan(spec, built), which
// TestInternedPlanMatchesResolved pins.
func (p *trialPlan) rebind(built *topology.Built) {
	p.built = built
	horizon := sim.Time(p.spec.Run.Horizon)
	if horizon == 0 && p.alg.Horizon != nil {
		horizon = p.alg.Horizon(built.Dual, p.k, sim.Time(p.spec.Model.Fprog), p.spec.Algorithm.Params)
	}
	p.horizon = horizon
}

// scheduler returns the trial's scheduler: the cached one re-armed via
// sched.Resettable when cache points at a compatible instance, or a fresh
// build (stored back into a non-nil cache for the worker's next trial).
// Reset + Attach is observably identical to a fresh build + Attach, so the
// cache never changes executions.
func (p *trialPlan) scheduler(cache *schedSlot) (mac.Scheduler, string, error) {
	r := p.spec
	env := sched.Env{
		Dual:     p.built.Dual,
		Artifact: p.built.Artifact,
		Payloads: p.payloads,
		Fprog:    sim.Time(r.Model.Fprog),
		Fack:     sim.Time(r.Model.Fack),
	}
	if cache != nil && cache.s != nil {
		if rs, ok := cache.s.(sched.Resettable); ok && rs.Reset(env) {
			return cache.s, cache.name, nil
		}
	}
	s, err := sched.Build(p.schedName, env, r.Scheduler.Params)
	if err != nil {
		return nil, "", err
	}
	name := s.Name()
	if cache != nil {
		cache.s, cache.name = s, name
	}
	return s, name, nil
}

// execute runs one seed of the plan with the given fleet: through the warm
// runner when rn is non-nil, or a cold core.Run otherwise. The scheduler
// comes from the worker's cache when one is supplied, and is built fresh
// otherwise.
func (p *trialPlan) execute(seed int64, automata []mac.Automaton, rn *core.Runner, cache *schedSlot) (*TrialResult, error) {
	r := p.spec
	scheduler, schedName, err := p.scheduler(cache)
	if err != nil {
		return nil, err
	}
	mode, err := r.Run.TraceMode()
	if err != nil {
		return nil, err
	}
	cfg := core.RunConfig{
		Dual:             p.built.Dual,
		Fack:             sim.Time(r.Model.Fack),
		Fprog:            sim.Time(r.Model.Fprog),
		Scheduler:        scheduler,
		Mode:             p.alg.Mode,
		Seed:             seed,
		Workload:         p.workload,
		Automata:         automata,
		Horizon:          p.horizon,
		StepLimit:        p.stepLimit,
		HaltOnCompletion: !r.Run.ToQuiescence,
		Options: core.RunOptions{
			Trace:   mode,
			Check:   r.Run.Check,
			Shards:  r.Run.Shards,
			Regions: r.Run.Regions,
		},
		EpsAbort: sim.Time(r.Model.EpsAbort),
	}
	if r.Run.Shards >= 1 {
		// Each shard engine needs its own scheduler instance; rebuilding
		// with the environment that just built the main scheduler cannot
		// fail differently, so an error here is a registry bug.
		env := sched.Env{
			Dual:     p.built.Dual,
			Artifact: p.built.Artifact,
			Payloads: p.payloads,
			Fprog:    sim.Time(r.Model.Fprog),
			Fack:     sim.Time(r.Model.Fack),
		}
		params := r.Scheduler.Params
		schedName := p.schedName
		cfg.NewScheduler = func() mac.Scheduler {
			s, err := sched.Build(schedName, env, params)
			if err != nil {
				panic(fmt.Sprintf("scenario: shard scheduler rebuild: %v", err))
			}
			return s
		}
	}
	var tw *sim.TraceWriter
	var tf *os.File
	if r.Run.TraceFile != "" {
		path := TraceFilePath(r.Run.TraceFile, seed)
		tf, err = os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("scenario: trace file: %w", err)
		}
		tw = sim.NewTraceWriter(tf)
		cfg.Options.Sink = tw
	}
	var res *core.Result
	if rn != nil {
		res, err = rn.Run(cfg)
	} else {
		res, err = core.Run(cfg)
	}
	if tw != nil {
		ferr := tw.Flush()
		if cerr := tf.Close(); ferr == nil {
			ferr = cerr
		}
		if err == nil && ferr != nil {
			err = fmt.Errorf("scenario: trace file %s: %w", tf.Name(), ferr)
		}
	}
	if err != nil {
		return nil, err
	}
	return &TrialResult{
		Seed:          seed,
		Built:         p.built,
		Workload:      p.workload,
		SchedulerName: schedName,
		Result:        res,
	}, nil
}

// TraceFilePath derives the per-trial trace stream path from a spec's
// trace_file: the trial seed is spliced in before the extension
// ("out.amtr" with seed 3 -> "out.s3.amtr"), so multi-trial runs and
// parallel workers never share a file. Exported so consumers locate the
// files a run produced.
func TraceFilePath(pattern string, seed int64) string {
	ext := filepath.Ext(pattern)
	return fmt.Sprintf("%s.s%d%s", strings.TrimSuffix(pattern, ext), seed, ext)
}

// buildWorkload resolves the workload spec against the built topology. It
// returns either an assignment (time-zero workloads) or a timed workload.
func buildWorkload(r Spec, built *topology.Built) (core.Assignment, *core.Workload, error) {
	n := built.Dual.N()
	w := r.Workload
	switch w.Kind {
	case WorkloadSingleton:
		origins := make([]graph.NodeID, 0, len(w.Origins))
		if len(w.Origins) > 0 {
			for i, o := range w.Origins {
				if o < 0 || o >= n {
					return nil, nil, fmt.Errorf("scenario: workload: origin %d (index %d) outside [0,%d)", o, i, n)
				}
				origins = append(origins, graph.NodeID(o))
			}
		} else {
			for i := 0; i < w.K; i++ {
				origins = append(origins, graph.NodeID(i*n/w.K))
			}
		}
		return core.Singleton(n, origins), nil, nil
	case WorkloadSingleSource:
		if w.Origin >= n {
			return nil, nil, fmt.Errorf("scenario: workload: origin %d outside [0,%d)", w.Origin, n)
		}
		return core.SingleSource(n, graph.NodeID(w.Origin), w.K), nil, nil
	case WorkloadPoisson:
		wseed := w.Seed
		if wseed == 0 {
			wseed = r.Run.Seed
		}
		return nil, core.PoissonWorkload(n, w.K, sim.Time(w.Span), wseed), nil
	case WorkloadExplicit:
		wl := &core.Workload{}
		for i, ar := range w.Arrivals {
			if ar.Node >= n {
				return nil, nil, fmt.Errorf("scenario: workload: arrival %d at node %d outside [0,%d)", i, ar.Node, n)
			}
			wl.Add(sim.Time(ar.At), graph.NodeID(ar.Node), core.Msg{ID: i, Origin: graph.NodeID(ar.Node)})
		}
		return nil, wl, nil
	case WorkloadConstruction:
		switch art := built.Artifact.(type) {
		case *topology.ParallelLinesC:
			a := make(core.Assignment, n)
			a[art.A(1)] = []core.Msg{{ID: 0, Origin: art.A(1)}}
			a[art.B(1)] = []core.Msg{{ID: 1, Origin: art.B(1)}}
			return a, nil, nil
		case *topology.StarChoke:
			a := make(core.Assignment, n)
			for i := 1; i < art.K; i++ {
				v := art.Source(i)
				a[v] = []core.Msg{{ID: i - 1, Origin: v}}
			}
			a[art.Hub()] = []core.Msg{{ID: art.K - 1, Origin: art.Hub()}}
			return a, nil, nil
		default:
			return nil, nil, fmt.Errorf("scenario: workload: topology %q has no canonical construction workload (artifact %T)",
				r.Topology.Name, built.Artifact)
		}
	default:
		return nil, nil, fmt.Errorf("scenario: workload: unknown kind %q", w.Kind)
	}
}
