package scenario

import (
	"fmt"

	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/par"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// TrialResult is one executed seed of a scenario.
type TrialResult struct {
	// Seed is the run seed of this trial.
	Seed int64
	// Built is the topology the trial ran on (randomized families draw a
	// fresh instance per trial unless the spec pins the topology seed).
	// When unpinned trials reuse warm per-worker state (NoArena unset),
	// the graphs behind Built are workspace storage recycled by the next
	// trial on the same worker — except for the spec's first and final
	// trials, which are always built into stable storage so report
	// consumers stay correct (amacsim's header reads the first trial's
	// network, bound formulas the last trial's). Callers needing every
	// trial's instance intact copy it in a watcher or disable reuse.
	Built *topology.Built
	// Workload is the resolved arrival schedule.
	Workload *core.Workload
	// SchedulerName is the resolved scheduler's self-description.
	SchedulerName string
	// Result is the execution outcome. When trials reuse a warm arena
	// (pinned topology, NoArena unset), Result.Engine is recycled by the
	// next trial on the same worker: with Trials == 1 it stays valid, and
	// the scalar fields and Report are always safe, but multi-trial
	// callers that need per-trial traces or instances must either copy
	// them in a watcher or disable reuse.
	Result *core.Result
}

// Report is the outcome of Run: the resolved spec plus one result per trial,
// in seed order. All aggregate accessors reduce in that order, so reports
// are byte-stable at any parallelism.
type Report struct {
	Spec   Spec
	Trials []*TrialResult
}

// Solved counts solved trials.
func (r *Report) Solved() int {
	n := 0
	for _, t := range r.Trials {
		if t.Result.Solved {
			n++
		}
	}
	return n
}

// MeanCompletion averages completion time over the solved trials (0 when
// none solved).
func (r *Report) MeanCompletion() float64 {
	sum, n := 0.0, 0
	for _, t := range r.Trials {
		if t.Result.Solved {
			sum += float64(t.Result.CompletionTime)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WorstCompletion returns the maximum completion time over solved trials.
func (r *Report) WorstCompletion() float64 {
	worst := 0.0
	for _, t := range r.Trials {
		if t.Result.Solved && float64(t.Result.CompletionTime) > worst {
			worst = float64(t.Result.CompletionTime)
		}
	}
	return worst
}

// Steps totals simulation events across all trials.
func (r *Report) Steps() uint64 {
	var s uint64
	for _, t := range r.Trials {
		s += t.Result.Steps
	}
	return s
}

// Run validates the spec and executes its trials on a worker pool of
// Run.Parallelism, returning per-trial results in seed order. Every trial is
// an independent deterministic simulation keyed by its seed, so the report
// is a pure function of the spec at any parallelism. Trials of a pinned
// topology run against one warm run arena per worker (see warmRun); trials
// of an unpinned (per-trial randomized) topology build into one warm
// workspace-and-runner pair per worker (see warmRandRun). Run.NoArena
// disables both kinds of reuse.
func Run(s Spec) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := s.WithDefaults()
	// A pinned topology is identical across trials: build the read-only
	// instance once and share it with the pool.
	var shared *topology.Built
	if topologyPinned(r) {
		var err error
		if shared, err = buildTopology(r, r.Run.Seed); err != nil {
			return nil, err
		}
	}
	workers := par.Workers(r.Run.Parallelism, r.Run.Trials)
	var warm *warmRun
	var warmRand *warmRandRun
	switch {
	case shared != nil && !r.Run.NoArena:
		var err error
		if warm, err = newWarmRun(r, shared, workers); err != nil {
			return nil, fmt.Errorf("scenario: trial with seed %d: %w", r.Run.Seed, err)
		}
	case shared == nil && !r.Run.NoArena:
		warmRand = newWarmRandRun(r, workers)
	}
	trials := make([]*TrialResult, r.Run.Trials)
	errs := make([]error, r.Run.Trials)
	par.ForWorker(r.Run.Parallelism, r.Run.Trials, func(worker, i int) {
		seed := r.Run.Seed + int64(i)
		switch {
		case warm != nil:
			trials[i], errs[i] = warm.trial(seed, worker)
		case warmRand != nil:
			trials[i], errs[i] = warmRand.trial(seed, worker, i == 0 || i == r.Run.Trials-1)
		case shared != nil:
			trials[i], errs[i] = trialOn(s, seed, shared)
		default:
			trials[i], errs[i] = Trial(s, seed)
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario: trial with seed %d: %w", r.Run.Seed+int64(i), err)
		}
	}
	return &Report{Spec: r, Trials: trials}, nil
}

// SweepOptions parameterizes Sweep beyond the spec grid itself.
type SweepOptions struct {
	// Parallelism bounds concurrent (spec, trial) simulations; 0 or 1 runs
	// sequentially. Reports are byte-identical at any value.
	Parallelism int
	// NoArena disables cross-trial arena and fleet reuse for pinned
	// topologies across the whole sweep (per-spec Run.NoArena also
	// applies). Executions are identical either way; this is the
	// debugging escape hatch.
	NoArena bool
}

// Sweep executes a grid of specs, flattening every (spec, trial) pair onto
// one worker pool of the given parallelism, and returns one report per spec
// in input order. Each spec's own Run.Parallelism is ignored; everything
// else (seeds, trials) applies per spec.
func Sweep(specs []Spec, parallelism int) ([]*Report, error) {
	return SweepWithOptions(specs, SweepOptions{Parallelism: parallelism})
}

// SweepWithOptions is Sweep with explicit options. Trials of each pinned-
// topology spec share one warm run arena per (spec, worker) pair — pool-
// local state that no two goroutines touch concurrently — so repeated
// trials skip fleet construction and engine allocation while the parallel
// reduction stays byte-identical.
func SweepWithOptions(specs []Spec, o SweepOptions) ([]*Report, error) {
	resolved := make([]Spec, len(specs))
	shared := make([]*topology.Built, len(specs))
	offsets := make([]int, len(specs)+1)
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: spec %d (%s): %w", i, s.Name, err)
		}
		resolved[i] = s.WithDefaults()
		if topologyPinned(resolved[i]) {
			var err error
			if shared[i], err = buildTopology(resolved[i], resolved[i].Run.Seed); err != nil {
				return nil, fmt.Errorf("scenario: spec %d (%s): %w", i, s.Name, err)
			}
		}
		offsets[i+1] = offsets[i] + resolved[i].Run.Trials
	}
	total := offsets[len(specs)]
	workers := par.Workers(o.Parallelism, total)
	warms := make([]*warmRun, len(specs))
	warmRands := make([]*warmRandRun, len(specs))
	for i := range specs {
		if o.NoArena || resolved[i].Run.NoArena {
			continue
		}
		if shared[i] != nil {
			var err error
			if warms[i], err = newWarmRun(resolved[i], shared[i], workers); err != nil {
				return nil, fmt.Errorf("scenario: spec %d (%s): %w", i, specs[i].Name, err)
			}
		} else {
			warmRands[i] = newWarmRandRun(resolved[i], workers)
		}
	}
	trials := make([]*TrialResult, total)
	errs := make([]error, total)
	par.ForWorker(o.Parallelism, total, func(worker, task int) {
		// Binary search is overkill: sweeps are small, scan.
		si := 0
		for offsets[si+1] <= task {
			si++
		}
		seed := resolved[si].Run.Seed + int64(task-offsets[si])
		switch {
		case warms[si] != nil:
			trials[task], errs[task] = warms[si].trial(seed, worker)
		case warmRands[si] != nil:
			trials[task], errs[task] = warmRands[si].trial(seed, worker,
				task == offsets[si] || task == offsets[si+1]-1)
		case shared[si] != nil:
			trials[task], errs[task] = trialOn(specs[si], seed, shared[si])
		default:
			trials[task], errs[task] = Trial(specs[si], seed)
		}
	})
	for task, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario: sweep task %d: %w", task, err)
		}
	}
	out := make([]*Report, len(specs))
	for i := range specs {
		out[i] = &Report{Spec: resolved[i], Trials: trials[offsets[i]:offsets[i+1]]}
	}
	return out, nil
}

// warmRun is the reusable trial context of one pinned-topology spec: the
// shared trialPlan resolved once, plus per-worker warm state — each worker
// of the trial pool owns a core.Runner (arena, pooled engine) and, when
// the algorithm's automata implement mac.Resettable, a reusable fleet.
// Repeated trials therefore skip fleet construction, engine allocation and
// delivery-row allocation entirely.
type warmRun struct {
	*trialPlan

	// proto is worker 0's runner and the Fork source for the rest: the
	// CSR and component indexes are derived once per spec, not per
	// worker. Forking reads only immutable state, so workers fork
	// concurrently without locking.
	proto *core.Runner
	// Per-worker state, indexed by the pool's worker slot. A nil fleets
	// entry means "build per trial" (first use, or automata that cannot
	// Reset); a nil scheds entry means the worker has not built its
	// scheduler yet (or the scheduler cannot Reset).
	runners []*core.Runner
	fleets  [][]mac.Automaton
	scheds  []mac.Scheduler
}

// newWarmRun resolves the spec once (the same resolution a cold trial
// performs) and allocates the per-worker slots.
func newWarmRun(r Spec, built *topology.Built, workers int) (*warmRun, error) {
	p, err := resolvePlan(r, built)
	if err != nil {
		return nil, err
	}
	return &warmRun{
		trialPlan: p,
		proto:     core.NewRunner(built.Dual),
		runners:   make([]*core.Runner, workers),
		fleets:    make([][]mac.Automaton, workers),
		scheds:    make([]mac.Scheduler, workers),
	}, nil
}

// trial executes one seed on the given worker's warm runner. The execution
// is a pure function of (spec, seed) — the worker index only selects which
// pooled storage backs it — so results are byte-identical to a cold trial
// at any parallelism.
func (w *warmRun) trial(seed int64, worker int) (*TrialResult, error) {
	rn := w.runners[worker]
	if rn == nil {
		if worker == 0 {
			rn = w.proto
		} else {
			rn = w.proto.Fork()
		}
		w.runners[worker] = rn
	}
	automata := w.fleets[worker]
	if automata != nil {
		for _, a := range automata {
			a.(mac.Resettable).Reset()
		}
	} else {
		var err error
		automata, err = w.newFleet()
		if err != nil {
			return nil, err
		}
		if fleetResettable(automata) {
			w.fleets[worker] = automata
		}
	}
	return w.execute(seed, automata, rn, &w.scheds[worker])
}

// warmRandRun is the unpinned counterpart of warmRun: the per-worker warm
// state of a spec whose topology is drawn fresh per trial. Each worker of
// the trial pool owns a topology.Workspace (graph and embedding scratch the
// per-trial builds emit into) and a core.Runner whose arena is rebound to
// every draw, so repeated trials skip graph, engine and delivery-row
// allocation even though no two trials share a network. The spec is
// re-resolved and the fleet rebuilt per trial — both depend on the drawn
// instance — exactly as on the cold path.
type warmRandRun struct {
	spec       Spec // resolved
	workspaces []*topology.Workspace
	runners    []*core.Runner
	scheds     []mac.Scheduler
	pools      []fleetPool
}

// newWarmRandRun allocates the per-worker slots; workspaces and runners are
// created lazily on each worker's first trial.
func newWarmRandRun(r Spec, workers int) *warmRandRun {
	return &warmRandRun{
		spec:       r,
		workspaces: make([]*topology.Workspace, workers),
		runners:    make([]*core.Runner, workers),
		scheds:     make([]mac.Scheduler, workers),
		pools:      make([]fleetPool, workers),
	}
}

// trial executes one seed on the given worker's warm state. The execution
// is a pure function of (spec, seed) — builds are byte-identical with and
// without the workspace, and the rebound runner is byte-identical to a cold
// core.Run — so results match the cold path at any parallelism. keepBuilt
// marks the spec's first and final trials: they build into stable storage
// instead of the recycled workspace, keeping the report's edge instances
// valid after the sweep (see TrialResult.Built).
func (w *warmRandRun) trial(seed int64, worker int, keepBuilt bool) (*TrialResult, error) {
	var built *topology.Built
	var err error
	if keepBuilt {
		built, err = buildTopology(w.spec, seed)
	} else {
		ws := w.workspaces[worker]
		if ws == nil {
			ws = topology.NewWorkspace()
			w.workspaces[worker] = ws
		}
		built, err = buildTopologyInto(w.spec, seed, ws)
	}
	if err != nil {
		return nil, err
	}
	rn := w.runners[worker]
	if rn == nil {
		rn = core.NewRunner(built.Dual)
		w.runners[worker] = rn
	} else {
		rn.Rebind(built.Dual)
	}
	p, err := resolvePlan(w.spec, built)
	if err != nil {
		return nil, err
	}
	automata, err := w.pools[worker].fleetFor(p)
	if err != nil {
		return nil, err
	}
	res, err := p.execute(seed, automata, rn, &w.scheds[worker])
	if err != nil {
		return nil, err
	}
	w.pools[worker].put(automata)
	return res, nil
}

// fleetResettable reports whether every automaton of the fleet can be
// restored for reuse.
func fleetResettable(fleet []mac.Automaton) bool {
	for _, a := range fleet {
		if _, ok := a.(mac.Resettable); !ok {
			return false
		}
	}
	return true
}

// Trial executes one seed of the scenario: build the topology (seeded per
// trial unless pinned), resolve the workload, instantiate a fresh fleet and
// scheduler, and run. It does not re-validate; Run and Sweep do, and direct
// callers get build-time errors for anything malformed.
func Trial(s Spec, seed int64) (*TrialResult, error) {
	built, err := buildTopology(s.WithDefaults(), seed)
	if err != nil {
		return nil, err
	}
	return trialOn(s, seed, built)
}

// BuildTopology constructs the network instance that trial `seed` of the
// spec would run on. Callers replaying one pinned instance across many
// hand-rolled trials build it once here and pass it to TrialOn; Run and
// Sweep already do this automatically for pinned topologies.
func BuildTopology(s Spec, seed int64) (*topology.Built, error) {
	return buildTopology(s.WithDefaults(), seed)
}

// TrialOn executes one seed of the scenario on an already-built network
// instance (see BuildTopology). The instance is treated as read-only.
func TrialOn(s Spec, seed int64, built *topology.Built) (*TrialResult, error) {
	return trialOn(s, seed, built)
}

// buildTopology constructs the trial's network instance.
func buildTopology(r Spec, seed int64) (*topology.Built, error) {
	return buildTopologyInto(r, seed, nil)
}

// buildTopologyInto constructs the trial's network instance into ws scratch
// (nil allocates fresh). The derived topology seed is threaded to the
// builder as an exact int64 — never through the float64 parameter map,
// which is lossy above 2^53 and used to silently collide large trial seeds
// onto one network. An explicit "seed" parameter still pins the family's
// stream, as always.
func buildTopologyInto(r Spec, seed int64, ws *topology.Workspace) (*topology.Built, error) {
	topoSeed := r.Topology.Seed
	if topoSeed == 0 {
		topoSeed = seed * r.Topology.SeedFactor
	}
	return topology.BuildInto(r.Topology.Name, r.Topology.Params, topoSeed, ws)
}

// topologyPinned reports whether every trial of the spec sees the same
// network instance, letting Run and Sweep build it once. Families
// registered as deterministic (ring, line, grid, ... — builders that
// ignore the seed) are pinned regardless of seeding: rebuilding them per
// trial would construct an identical network every time and forfeit the
// warm arena path.
func topologyPinned(r Spec) bool {
	return topology.Deterministic(r.Topology.Name) ||
		r.Topology.Seed != 0 || r.Topology.Params.Has("seed")
}

// trialOn executes one seed of the scenario on an already-built network.
func trialOn(s Spec, seed int64, built *topology.Built) (*TrialResult, error) {
	p, err := resolvePlan(s.WithDefaults(), built)
	if err != nil {
		return nil, err
	}
	automata, err := p.newFleet()
	if err != nil {
		return nil, err
	}
	return p.execute(seed, automata, nil, nil)
}

// trialPlan is everything about a trial that is a pure function of the
// resolved spec and its built network: the workload, payloads, algorithm,
// horizon and step limit. It is the single spec-resolution pipeline behind
// both the cold path (trialOn resolves one per trial) and the warm path
// (warmRun resolves one per spec and reuses it), so the two cannot
// diverge.
type trialPlan struct {
	spec      Spec // resolved
	built     *topology.Built
	workload  *core.Workload
	payloads  []sim.Payload
	alg       core.Algorithm
	schedName string
	horizon   sim.Time
	stepLimit uint64
	k         int
}

// resolvePlan resolves the trial-invariant parts of a spec against its
// built topology.
func resolvePlan(r Spec, built *topology.Built) (*trialPlan, error) {
	assignment, workload, err := buildWorkload(r, built)
	if err != nil {
		return nil, err
	}
	if workload == nil {
		workload = core.FromAssignment(assignment)
	}
	k := workload.K()
	alg, ok := core.LookupAlgorithm(r.Algorithm.Name)
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q (registered: %v)",
			r.Algorithm.Name, core.AlgorithmNames())
	}
	schedName := r.Scheduler.Name
	if schedName == "" {
		schedName = alg.DefaultScheduler
	}
	payloads := make([]sim.Payload, 0, k)
	for _, ar := range workload.Arrivals() {
		payloads = append(payloads, ar.Msg.Payload())
	}
	horizon := sim.Time(r.Run.Horizon)
	if horizon == 0 && alg.Horizon != nil {
		horizon = alg.Horizon(built.Dual, k, sim.Time(r.Model.Fprog), r.Algorithm.Params)
	}
	stepLimit := r.Run.StepLimit
	if stepLimit == 0 {
		stepLimit = alg.StepLimit
	}
	return &trialPlan{
		spec:      r,
		built:     built,
		workload:  workload,
		payloads:  payloads,
		alg:       alg,
		schedName: schedName,
		horizon:   horizon,
		stepLimit: stepLimit,
		k:         k,
	}, nil
}

// newFleet builds a fresh fleet for the plan.
func (p *trialPlan) newFleet() ([]mac.Automaton, error) {
	return p.alg.NewFleet(p.built.Dual, p.k, p.spec.Algorithm.Params)
}

// scheduler returns the trial's scheduler: the cached one re-armed via
// sched.Resettable when cache points at a compatible instance, or a fresh
// build (stored back into a non-nil cache for the worker's next trial).
// Reset + Attach is observably identical to a fresh build + Attach, so the
// cache never changes executions.
func (p *trialPlan) scheduler(cache *mac.Scheduler) (mac.Scheduler, error) {
	r := p.spec
	env := sched.Env{
		Dual:     p.built.Dual,
		Artifact: p.built.Artifact,
		Payloads: p.payloads,
		Fprog:    sim.Time(r.Model.Fprog),
		Fack:     sim.Time(r.Model.Fack),
	}
	if cache != nil && *cache != nil {
		if rs, ok := (*cache).(sched.Resettable); ok && rs.Reset(env) {
			return *cache, nil
		}
	}
	s, err := sched.Build(p.schedName, env, r.Scheduler.Params)
	if err != nil {
		return nil, err
	}
	if cache != nil {
		*cache = s
	}
	return s, nil
}

// execute runs one seed of the plan with the given fleet: through the warm
// runner when rn is non-nil, or a cold core.Run otherwise. The scheduler
// comes from the worker's cache when one is supplied, and is built fresh
// otherwise.
func (p *trialPlan) execute(seed int64, automata []mac.Automaton, rn *core.Runner, cache *mac.Scheduler) (*TrialResult, error) {
	r := p.spec
	scheduler, err := p.scheduler(cache)
	if err != nil {
		return nil, err
	}
	cfg := core.RunConfig{
		Dual:             p.built.Dual,
		Fack:             sim.Time(r.Model.Fack),
		Fprog:            sim.Time(r.Model.Fprog),
		Scheduler:        scheduler,
		Mode:             p.alg.Mode,
		Seed:             seed,
		Workload:         p.workload,
		Automata:         automata,
		Horizon:          p.horizon,
		StepLimit:        p.stepLimit,
		HaltOnCompletion: !r.Run.ToQuiescence,
		Check:            r.Run.Check,
		NoTrace:          r.Run.NoTrace,
		EpsAbort:         sim.Time(r.Model.EpsAbort),
	}
	var res *core.Result
	if rn != nil {
		res, err = rn.Run(cfg)
	} else {
		res, err = core.Run(cfg)
	}
	if err != nil {
		return nil, err
	}
	return &TrialResult{
		Seed:          seed,
		Built:         p.built,
		Workload:      p.workload,
		SchedulerName: scheduler.Name(),
		Result:        res,
	}, nil
}

// buildWorkload resolves the workload spec against the built topology. It
// returns either an assignment (time-zero workloads) or a timed workload.
func buildWorkload(r Spec, built *topology.Built) (core.Assignment, *core.Workload, error) {
	n := built.Dual.N()
	w := r.Workload
	switch w.Kind {
	case WorkloadSingleton:
		origins := make([]graph.NodeID, 0, len(w.Origins))
		if len(w.Origins) > 0 {
			for i, o := range w.Origins {
				if o < 0 || o >= n {
					return nil, nil, fmt.Errorf("scenario: workload: origin %d (index %d) outside [0,%d)", o, i, n)
				}
				origins = append(origins, graph.NodeID(o))
			}
		} else {
			for i := 0; i < w.K; i++ {
				origins = append(origins, graph.NodeID(i*n/w.K))
			}
		}
		return core.Singleton(n, origins), nil, nil
	case WorkloadSingleSource:
		if w.Origin >= n {
			return nil, nil, fmt.Errorf("scenario: workload: origin %d outside [0,%d)", w.Origin, n)
		}
		return core.SingleSource(n, graph.NodeID(w.Origin), w.K), nil, nil
	case WorkloadPoisson:
		wseed := w.Seed
		if wseed == 0 {
			wseed = r.Run.Seed
		}
		return nil, core.PoissonWorkload(n, w.K, sim.Time(w.Span), wseed), nil
	case WorkloadExplicit:
		wl := &core.Workload{}
		for i, ar := range w.Arrivals {
			if ar.Node >= n {
				return nil, nil, fmt.Errorf("scenario: workload: arrival %d at node %d outside [0,%d)", i, ar.Node, n)
			}
			wl.Add(sim.Time(ar.At), graph.NodeID(ar.Node), core.Msg{ID: i, Origin: graph.NodeID(ar.Node)})
		}
		return nil, wl, nil
	case WorkloadConstruction:
		switch art := built.Artifact.(type) {
		case *topology.ParallelLinesC:
			a := make(core.Assignment, n)
			a[art.A(1)] = []core.Msg{{ID: 0, Origin: art.A(1)}}
			a[art.B(1)] = []core.Msg{{ID: 1, Origin: art.B(1)}}
			return a, nil, nil
		case *topology.StarChoke:
			a := make(core.Assignment, n)
			for i := 1; i < art.K; i++ {
				v := art.Source(i)
				a[v] = []core.Msg{{ID: i - 1, Origin: v}}
			}
			a[art.Hub()] = []core.Msg{{ID: art.K - 1, Origin: art.Hub()}}
			return a, nil, nil
		default:
			return nil, nil, fmt.Errorf("scenario: workload: topology %q has no canonical construction workload (artifact %T)",
				r.Topology.Name, built.Artifact)
		}
	default:
		return nil, nil, fmt.Errorf("scenario: workload: unknown kind %q", w.Kind)
	}
}
