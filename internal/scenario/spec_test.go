package scenario

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"amac/internal/topology"
)

// randSpec draws a random (not necessarily valid) spec whose field values
// all survive a JSON round trip: integral floats in params, nil (not empty)
// maps and slices.
func randSpec(rng *rand.Rand) Spec {
	params := func() topology.Params {
		if rng.Intn(2) == 0 {
			return nil
		}
		p := topology.Params{}
		keys := []string{"n", "r", "p", "c", "side", "k", "d", "rel"}
		for i := rng.Intn(4); i > 0; i-- {
			p[keys[rng.Intn(len(keys))]] = float64(rng.Intn(64)) / 2
		}
		if len(p) == 0 {
			// omitempty drops empty maps, which decode back as nil.
			return nil
		}
		return p
	}
	str := func(opts ...string) string { return opts[rng.Intn(len(opts))] }
	var origins []int
	for i := rng.Intn(3); i > 0; i-- {
		origins = append(origins, rng.Intn(100))
	}
	var arrivals []ArrivalSpec
	for i := rng.Intn(3); i > 0; i-- {
		arrivals = append(arrivals, ArrivalSpec{At: rng.Int63n(1000), Node: rng.Intn(100)})
	}
	return Spec{
		Name:        str("", "s1", "unicode-✓"),
		Description: str("", "a description"),
		Topology: TopologySpec{
			Name:       str("line", "rgg", "no-such-family"),
			Params:     params(),
			Seed:       rng.Int63n(1 << 40),
			SeedFactor: rng.Int63n(10000),
		},
		Workload: WorkloadSpec{
			Kind:     str(WorkloadSingleton, WorkloadSingleSource, WorkloadPoisson, WorkloadExplicit, WorkloadConstruction),
			K:        rng.Intn(16),
			Origin:   rng.Intn(16),
			Origins:  origins,
			Span:     rng.Int63n(1000),
			Seed:     rng.Int63n(1 << 40),
			Arrivals: arrivals,
		},
		Algorithm: AlgorithmSpec{Name: str("bmmb", "fmmb"), Params: params()},
		Scheduler: SchedulerSpec{Name: str("", "sync", "slot"), Params: params()},
		Model: ModelSpec{
			Fprog:    rng.Int63n(100),
			Fack:     rng.Int63n(1000),
			EpsAbort: rng.Int63n(10),
		},
		Run: RunSpec{
			Seed:         rng.Int63n(1 << 40),
			Trials:       rng.Intn(16),
			Parallelism:  rng.Intn(8),
			Check:        rng.Intn(2) == 0,
			NoTrace:      rng.Intn(2) == 0,
			ToQuiescence: rng.Intn(2) == 0,
			Horizon:      rng.Int63n(1 << 30),
			StepLimit:    uint64(rng.Int63n(1 << 40)),
		},
	}
}

// TestSpecJSONRoundTrip is the round-trip property test: for many random
// specs, marshal → parse must reproduce the spec exactly.
func TestSpecJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		s := randSpec(rng)
		buf, err := s.JSON()
		if err != nil {
			t.Fatalf("spec %d: marshal: %v", i, err)
		}
		back, err := Parse(buf)
		if err != nil {
			t.Fatalf("spec %d: parse: %v\n%s", i, err, buf)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("spec %d did not round-trip:\nbefore: %+v\nafter:  %+v\njson:\n%s", i, s, back, buf)
		}
	}
}

// TestSpecZeroValueOmitted asserts minimal specs marshal without noise from
// defaulted sections, so scenario files stay readable.
func TestSpecZeroValueOmitted(t *testing.T) {
	s := Spec{
		Topology:  TopologySpec{Name: "line", Params: topology.Params{"n": 8}},
		Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 2},
		Algorithm: AlgorithmSpec{Name: "bmmb"},
	}
	buf, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"scheduler", "model", "run", "description"} {
		if strings.Contains(string(buf), fmt.Sprintf("%q", absent)) {
			t.Fatalf("zero-valued section %q marshaled:\n%s", absent, buf)
		}
	}
}

// TestParseRejectsUnknownFields guards the strict decoding contract: typos
// in scenario files must error, not silently select defaults.
func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"topology": {"name": "line"}, "topolgy_typo": 3}`))
	if err == nil {
		t.Fatal("unknown field did not error")
	}
}

// TestValidateRejections feeds Validate one malformed field at a time and
// requires a descriptive error naming the problem.
func TestValidateRejections(t *testing.T) {
	valid := func() Spec {
		return Spec{
			Topology:  TopologySpec{Name: "line", Params: topology.Params{"n": 8}},
			Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 2},
			Algorithm: AlgorithmSpec{Name: "bmmb"},
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("baseline spec invalid: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"unknown topology", func(s *Spec) { s.Topology.Name = "moebius" }, "unknown topology"},
		{"unknown topology param", func(s *Spec) { s.Topology.Params = topology.Params{"sides": 3} }, `does not accept parameter "sides"`},
		{"negative seed factor", func(s *Spec) { s.Topology.SeedFactor = -2 }, "seed_factor"},
		{"overflowing seed product", func(s *Spec) {
			s.Topology.SeedFactor = 1 << 40
			s.Run.Seed = 1 << 40
		}, "overflow int64"},
		{"missing workload kind", func(s *Spec) { s.Workload.Kind = "" }, "kind is required"},
		{"unknown workload kind", func(s *Spec) { s.Workload.Kind = "burst" }, `unknown kind "burst"`},
		{"singleton without k", func(s *Spec) { s.Workload.K = 0 }, "singleton needs k >= 1"},
		{"negative origin", func(s *Spec) {
			s.Workload = WorkloadSpec{Kind: WorkloadSingleSource, K: 1, Origin: -4}
		}, "negative origin"},
		{"poisson without k", func(s *Spec) { s.Workload = WorkloadSpec{Kind: WorkloadPoisson, Span: 10} }, "poisson needs k >= 1"},
		{"poisson negative span", func(s *Spec) {
			s.Workload = WorkloadSpec{Kind: WorkloadPoisson, K: 2, Span: -1}
		}, "negative span"},
		{"explicit without arrivals", func(s *Spec) { s.Workload = WorkloadSpec{Kind: WorkloadExplicit} }, "at least one arrival"},
		{"explicit negative node", func(s *Spec) {
			s.Workload = WorkloadSpec{Kind: WorkloadExplicit, Arrivals: []ArrivalSpec{{Node: -1}}}
		}, "negative node"},
		{"explicit negative time", func(s *Spec) {
			s.Workload = WorkloadSpec{Kind: WorkloadExplicit, Arrivals: []ArrivalSpec{{At: -5, Node: 0}}}
		}, "negative time"},
		{"unknown algorithm", func(s *Spec) { s.Algorithm.Name = "qmmb" }, "unknown algorithm"},
		{"unknown algorithm param", func(s *Spec) {
			s.Algorithm = AlgorithmSpec{Name: "fmmb", Params: topology.Params{"zeta": 1}}
		}, `does not accept parameter "zeta"`},
		{"unknown scheduler", func(s *Spec) { s.Scheduler.Name = "chaos" }, "unknown scheduler"},
		{"unknown scheduler param", func(s *Spec) {
			s.Scheduler = SchedulerSpec{Name: "slot", Params: topology.Params{"rel": 0.5}}
		}, `does not accept parameter "rel"`},
		{"fprog too small", func(s *Spec) { s.Model.Fprog = 1 }, "fprog must be >= 2"},
		{"fack below fprog", func(s *Spec) { s.Model = ModelSpec{Fprog: 10, Fack: 5} }, "must be >= fprog"},
		{"negative eps_abort", func(s *Spec) { s.Model.EpsAbort = -1 }, "eps_abort"},
		{"negative trials", func(s *Spec) { s.Run.Trials = -3 }, "trials"},
		{"negative parallelism", func(s *Spec) { s.Run.Parallelism = -1 }, "parallelism"},
		{"negative horizon", func(s *Spec) { s.Run.Horizon = -1 }, "negative horizon"},
	}
	for _, tc := range cases {
		s := valid()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the malformed spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestCheckedInScenarioFiles parses, validates and type-checks every
// scenario file shipped in the repository's scenarios/ directory.
func TestCheckedInScenarioFiles(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no checked-in scenario files found")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Job-spec files (a "sweep" grid over scenario specs) belong to
		// internal/jobs, whose own checked-in-file test covers them.
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(data, &probe); err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if _, isJob := probe["sweep"]; isJob {
			continue
		}
		s, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", path, err)
		}
		if s.Name == "" || s.Description == "" {
			t.Errorf("%s: checked-in scenarios must carry name and description", path)
		}
	}
}

// TestLoadMissingFile exercises the file error path.
func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(os.TempDir(), "no-such-scenario.json")); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestSpecJSONStable pins the wire format of a representative spec: a
// change that breaks saved scenario files must show up here.
func TestSpecJSONStable(t *testing.T) {
	s := Spec{
		Name:      "pin",
		Topology:  TopologySpec{Name: "rgg", Params: topology.Params{"n": 30, "side": 4}, Seed: 7},
		Workload:  WorkloadSpec{Kind: WorkloadPoisson, K: 3, Span: 100},
		Algorithm: AlgorithmSpec{Name: "bmmb"},
		Scheduler: SchedulerSpec{Name: "contention", Params: topology.Params{"rel": 0.5}},
		Model:     ModelSpec{Fprog: 10, Fack: 200},
		Run:       RunSpec{Seed: 1, Trials: 2, Check: true},
	}
	buf, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "topology", "workload", "algorithm", "scheduler", "model", "run"} {
		if _, ok := m[key]; !ok {
			t.Errorf("wire format lost key %q:\n%s", key, buf)
		}
	}
}
