package scenario

import (
	"testing"

	"amac/internal/topology"
)

// warmPinnedSpec is the allocation-ceiling workload: a pinned r-restricted
// line under randomized reliability, traced off so the measurement isolates
// the simulation hot path the way sweeps run it.
func warmPinnedSpec() Spec {
	return Spec{
		Name: "alloc-pinned",
		Topology: TopologySpec{
			Name:   "rline",
			Params: topology.Params{"n": 32, "r": 2, "p": 0.6},
			Seed:   7,
		},
		Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 3},
		Algorithm: AlgorithmSpec{Name: "bmmb"},
		Scheduler: SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
		Model:     ModelSpec{Fprog: 10, Fack: 200},
		Run:       RunSpec{Seed: 1, Trials: 2, NoTrace: true},
	}.WithDefaults()
}

// TestWarmTrialAllocationCeiling is the tentpole's acceptance guard: once a
// pinned-topology worker is warm — fleet parked, runner arena filled,
// scheduler cached — each further trial must run in at most a handful of
// allocations (the trial's own Result record and residual per-run scraps),
// with no per-event or per-broadcast allocation left. Typed payloads killed
// the per-event boxing; fleet, engine, node states, instances, delivery
// rows and the scheduler all come from warm storage.
func TestWarmTrialAllocationCeiling(t *testing.T) {
	const ceiling = 6
	r := warmPinnedSpec()
	built, err := buildTopology(r, r.Run.Seed)
	if err != nil {
		t.Fatal(err)
	}
	w, err := newWarmRun(r, built, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		tr, err := w.trial(r.Run.Seed+1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Result.Solved {
			t.Fatalf("trial not solved: %d/%d", tr.Result.Delivered, tr.Result.Required)
		}
	}
	run() // warm the worker: fleet, arena, scheduler cache
	allocs := testing.AllocsPerRun(50, run)
	if allocs > ceiling {
		t.Fatalf("warm pinned trial allocates %.0f times per run, ceiling %d — construction crept back into the warm path", allocs, ceiling)
	}
}

// TestUnpinnedWarmTrialAllocationBound is the unpinned counterpart: every
// trial draws a fresh topology into the worker's workspace and refits a
// pooled fleet, so per-trial allocations cannot be zero — but they must stay
// bounded by the trial's own record-keeping (result, trial record, residual
// per-draw scraps), not scale with events, broadcasts, or rejected draws.
// Plan interning (planFor), pooled BFS scratch in internal/graph, and the
// cached scheduler description brought the measured cost from ~185 to ~22;
// the bound is calibrated ~2x above that so only a structural regression
// (per-event boxing, lost fleet reuse, graph rebuilds outside the workspace,
// per-probe BFS allocation) trips it.
func TestUnpinnedWarmTrialAllocationBound(t *testing.T) {
	const bound = 50
	r := Spec{
		Name: "alloc-unpinned",
		Topology: TopologySpec{
			Name:   "rgg",
			Params: topology.Params{"n": 24, "side": 3.6, "c": 1.6, "p": 0.5},
		},
		Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 3},
		Algorithm: AlgorithmSpec{Name: "bmmb"},
		Scheduler: SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
		Model:     ModelSpec{Fprog: 10, Fack: 200},
		Run:       RunSpec{Seed: 1, Trials: 2, NoTrace: true},
	}.WithDefaults()
	w := newWarmRandRun(r, 1)
	seed := r.Run.Seed
	run := func() {
		seed++
		tr, err := w.trial(seed, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Result.Solved {
			t.Fatalf("trial not solved: %d/%d", tr.Result.Delivered, tr.Result.Required)
		}
	}
	run() // warm the worker: workspace, runner, scheduler, fleet pool
	allocs := testing.AllocsPerRun(30, run)
	if allocs > bound {
		t.Fatalf("warm unpinned trial allocates %.0f times per run, bound %d", allocs, bound)
	}
}
