package scenario

import (
	"testing"

	"amac/internal/mac"
)

// poolStub is a minimal resettable automaton for exercising fleetPool
// directly.
type poolStub struct{ resets int }

func (s *poolStub) Wakeup(mac.Context)             {}
func (s *poolStub) Recv(mac.Context, mac.Message)  {}
func (s *poolStub) Acked(mac.Context, mac.Message) {}
func (s *poolStub) Reset()                         { s.resets++ }

type unresettable struct{}

func (unresettable) Wakeup(mac.Context)             {}
func (unresettable) Recv(mac.Context, mac.Message)  {}
func (unresettable) Acked(mac.Context, mac.Message) {}

func stubFleet(n int) []mac.Automaton {
	out := make([]mac.Automaton, n)
	for i := range out {
		out[i] = &poolStub{}
	}
	return out
}

// TestFleetPoolBounded pins the pool's memory bound: after any sequence of
// parks, the pool holds at most 2×live+fleetPoolFloor automata, where live
// is the fleet parked last — so a sweep wandering from large draws to small
// ones releases the large fleets instead of pinning them forever.
func TestFleetPoolBounded(t *testing.T) {
	var fp fleetPool
	// Park a descending sequence of fleet sizes, as a sweep cooling down
	// from big networks to small ones would.
	for _, n := range []int{400, 300, 200, 100, 50, 10, 4} {
		fp.put(stubFleet(n))
		bound := 2*n + fleetPoolFloor
		if fp.total > bound {
			t.Fatalf("after parking n=%d: pool holds %d automata, bound %d", n, fp.total, bound)
		}
		if fp.byN[n] == nil {
			t.Fatalf("after parking n=%d: the just-parked fleet was evicted", n)
		}
	}
	// The big early fleets must be gone by now.
	for _, n := range []int{400, 300, 200, 100} {
		if fp.byN[n] != nil {
			t.Fatalf("fleet of %d survived the bound (total %d)", n, fp.total)
		}
	}
}

// TestFleetPoolTakeAndReplace pins the reuse semantics: take returns the
// parked fleet of exactly the requested size, and parking a same-size fleet
// replaces the older one instead of double-counting it.
func TestFleetPoolTakeAndReplace(t *testing.T) {
	var fp fleetPool
	first := stubFleet(8)
	fp.put(first)
	second := stubFleet(8)
	fp.put(second)
	if fp.total != 8 {
		t.Fatalf("same-size park double-counted: total = %d, want 8", fp.total)
	}
	got := fp.take(8)
	if &got[0] != &second[0] {
		t.Fatal("take returned the stale fleet, not the newest one")
	}
	if fp.take(8) != nil {
		t.Fatal("second take of the same size returned a fleet")
	}
	if fp.take(5) != nil {
		t.Fatal("take of an unpooled size returned a fleet")
	}
	if fp.total != 0 || len(fp.order) != 0 {
		t.Fatalf("pool not empty after takes: total=%d order=%v", fp.total, fp.order)
	}
}

// TestFleetPoolRejectsUnresettable pins that fleets whose automata cannot
// Reset are never pooled — reusing them would leak one trial's state into
// the next.
func TestFleetPoolRejectsUnresettable(t *testing.T) {
	var fp fleetPool
	fp.put([]mac.Automaton{unresettable{}, unresettable{}})
	if fp.total != 0 || fp.take(2) != nil {
		t.Fatal("unresettable fleet was pooled")
	}
	fp.put(nil)
	if fp.total != 0 {
		t.Fatal("empty fleet was pooled")
	}
}
