package scenario_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"amac/internal/scenario"
	"amac/internal/sched"
	"amac/internal/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files under testdata/golden")

// goldenSpec returns the fixed-seed scenario pinned for one scheduler
// family. Every spec pins its topology seed, so the execution — and hence
// the recorded trace — is a pure function of this file.
func goldenSpec(schedName string) (scenario.Spec, bool) {
	rline := scenario.TopologySpec{
		Name:   "rline",
		Params: topology.Params{"n": 12, "r": 2, "p": 0.6},
		Seed:   7,
	}
	base := scenario.Spec{
		Topology:  rline,
		Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: 3},
		Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
		Model:     scenario.ModelSpec{Fprog: 10, Fack: 200},
		Run:       scenario.RunSpec{Seed: 5, Check: true},
	}
	switch schedName {
	case "sync":
		base.Scheduler = scenario.SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}}
	case "random":
		base.Scheduler = scenario.SchedulerSpec{Name: "random", Params: topology.Params{"rel": 0.5}}
	case "contention":
		base.Scheduler = scenario.SchedulerSpec{Name: "contention", Params: topology.Params{"rel": 0.5}}
	case "slot":
		base.Algorithm = scenario.AlgorithmSpec{Name: "fmmb"}
		base.Workload = scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: 2}
		base.Scheduler = scenario.SchedulerSpec{Name: "slot"}
	case "adversary":
		base.Topology = scenario.TopologySpec{
			Name:   "parallel-lines",
			Params: topology.Params{"d": 4},
			Seed:   1,
		}
		base.Workload = scenario.WorkloadSpec{Kind: scenario.WorkloadConstruction}
		base.Scheduler = scenario.SchedulerSpec{Name: "adversary"}
	default:
		return scenario.Spec{}, false
	}
	return base, true
}

// TestGoldenTraces pins the full event trace of one fixed-seed execution per
// registered scheduler family. The traces were recorded on the closure-based
// event path; the typed-dispatch engine must replay them byte-for-byte, so
// any scheduling-order or timing drift in the simulator core fails here with
// a line-level diff. Run with -update to re-record after an intentional
// semantic change (e.g. a scheduler bugfix).
func TestGoldenTraces(t *testing.T) {
	for _, name := range sched.Names() {
		spec, ok := goldenSpec(name)
		if !ok {
			t.Errorf("no golden scenario for registered scheduler %q — extend goldenSpec", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			got := goldenRun(t, spec)

			path := filepath.Join("testdata", "golden", name+".trace")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/scenario -run GoldenTraces -update`): %v", err)
			}
			if got != string(want) {
				t.Fatalf("trace diverged from golden %s\n%s", path, firstDiff(string(want), got))
			}
		})
	}
}

// goldenRun executes spec and renders the golden trace format.
func goldenRun(t *testing.T, spec scenario.Spec) string {
	t.Helper()
	rep, err := scenario.Run(spec)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tr := rep.Trials[0]
	if !tr.Result.Solved {
		t.Fatalf("golden scenario unsolved: %d/%d deliveries", tr.Result.Delivered, tr.Result.Required)
	}
	if tr.Result.Report != nil && !tr.Result.Report.OK() {
		t.Fatalf("model violation: %v", tr.Result.Report.Violations[0])
	}
	return fmt.Sprintf("# scheduler=%s solved@%d steps=%d broadcasts=%d\n%s",
		tr.SchedulerName, tr.Result.CompletionTime, tr.Result.Steps,
		tr.Result.Broadcasts, tr.Result.Trace.String())
}

// TestGoldenTracesSharded re-runs every golden scenario through the
// decomposed executor at shards 1 and 4. The golden networks are connected,
// where the decomposed semantics coincides with the single-engine execution
// exactly — so the sharded traces must stay byte-identical to the same
// golden files, at every shard count.
func TestGoldenTracesSharded(t *testing.T) {
	for _, name := range sched.Names() {
		spec, ok := goldenSpec(name)
		if !ok {
			continue
		}
		for _, shards := range []int{1, 4} {
			spec := spec
			spec.Run.Shards = shards
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				got := goldenRun(t, spec)
				path := filepath.Join("testdata", "golden", name+".trace")
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file: %v", err)
				}
				if got != string(want) {
					t.Fatalf("sharded trace diverged from golden %s\n%s", path, firstDiff(string(want), got))
				}
			})
		}
	}
}

// firstDiff renders the first differing line between two trace texts.
func firstDiff(want, got string) string {
	wl, gl := splitLines(want), splitLines(got)
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("lengths differ: want %d lines, got %d", len(wl), len(gl))
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
