package scenario_test

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"amac/internal/scenario"
	"amac/internal/sim"
	"amac/internal/topology"
)

// readTraceFile decodes one binary trace stream from disk.
func readTraceFile(t *testing.T, path string) *sim.Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	defer f.Close()
	tr, err := sim.NewTraceReader(f)
	if err != nil {
		t.Fatalf("trace header: %v", err)
	}
	all, err := tr.ReadAll()
	if err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	return all
}

// TestTraceFileMatchesInMemoryTrace routes the golden-suite scenario
// through the disk sink and replays the file: the decoded stream must
// render identically to the in-memory trace of the same execution. This is
// the disk-reader leg of the golden contract — the streamed path cannot
// drop, reorder, or re-render events.
func TestTraceFileMatchesInMemoryTrace(t *testing.T) {
	spec, ok := goldenSpec("sync")
	if !ok {
		t.Fatal("no golden sync scenario")
	}
	// The golden spec runs with Check, which needs the in-memory trace;
	// the streamed variant drops Check, which does not affect the
	// execution itself (checkers only observe).
	spec.Run.Check = false

	inMem, err := scenario.Run(spec)
	if err != nil {
		t.Fatalf("in-memory run: %v", err)
	}
	want := inMem.Trials[0].Result.Trace.String()
	if want == "" {
		t.Fatal("in-memory run recorded no events")
	}

	dir := t.TempDir()
	spec.Run.TraceFile = filepath.Join(dir, "golden.amtr")
	streamed, err := scenario.Run(spec)
	if err != nil {
		t.Fatalf("streamed run: %v", err)
	}
	if got := streamed.Trials[0].Result.Solved; got != inMem.Trials[0].Result.Solved {
		t.Fatalf("streamed Solved = %v, in-memory %v", got, inMem.Trials[0].Result.Solved)
	}

	path := scenario.TraceFilePath(spec.Run.TraceFile, streamed.Trials[0].Seed)
	got := readTraceFile(t, path).String()
	if got != want {
		t.Fatalf("disk trace differs from in-memory trace\ndisk:\n%s\nmemory:\n%s", got, want)
	}
}

// TestTraceFilePerTrialFiles: a multi-trial run must produce one stream per
// trial, named by the spliced trial seed, each decoding cleanly.
func TestTraceFilePerTrialFiles(t *testing.T) {
	spec, ok := goldenSpec("sync")
	if !ok {
		t.Fatal("no golden sync scenario")
	}
	spec.Run.Check = false
	spec.Run.Trials = 3
	dir := t.TempDir()
	spec.Run.TraceFile = filepath.Join(dir, "multi.amtr")

	rep, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, trial := range rep.Trials {
		path := scenario.TraceFilePath(spec.Run.TraceFile, trial.Seed)
		if decoded := readTraceFile(t, path); decoded.Len() == 0 {
			t.Fatalf("trial seed %d: empty trace at %s", trial.Seed, path)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "multi.s*.amtr"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("found %d trace files, want 3: %v", len(files), files)
	}
}

func TestTraceFilePath(t *testing.T) {
	for _, tc := range []struct {
		pattern string
		seed    int64
		want    string
	}{
		{"out.amtr", 3, "out.s3.amtr"},
		{"dir/run.amtr", 12, "dir/run.s12.amtr"},
		{"bare", 5, "bare.s5"},
		{"neg.amtr", -1, "neg.s-1.amtr"},
	} {
		if got := scenario.TraceFilePath(tc.pattern, tc.seed); got != tc.want {
			t.Errorf("TraceFilePath(%q, %d) = %q, want %q", tc.pattern, tc.seed, got, tc.want)
		}
	}
}

func TestTraceFileValidation(t *testing.T) {
	spec, ok := goldenSpec("sync")
	if !ok {
		t.Fatal("no golden sync scenario")
	}
	spec.Run.TraceFile = "out.amtr"

	spec.Run.Check = true
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "check") {
		t.Fatalf("trace_file+check: err = %v, want check incompatibility", err)
	}

	spec.Run.Check = false
	spec.Run.NoTrace = true
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "no_trace") {
		t.Fatalf("trace_file+no_trace: err = %v, want no_trace incompatibility", err)
	}

	spec.Run.NoTrace = false
	if err := spec.Validate(); err != nil {
		t.Fatalf("trace_file alone rejected: %v", err)
	}
}

// TestSweepProgress checks the per-trial progress callback contract: each
// cumulative count in 1..total delivered exactly once, concurrently safe,
// and purely observational (reports identical with and without it).
func TestSweepProgress(t *testing.T) {
	mkSpec := func(n int) scenario.Spec {
		return scenario.Spec{
			Topology:  scenario.TopologySpec{Name: "line", Params: topology.Params{"n": float64(n)}},
			Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: 1},
			Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
			Scheduler: scenario.SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 1}},
			Run:       scenario.RunSpec{Seed: 1, Trials: 3},
		}
	}
	specs := []scenario.Spec{mkSpec(4), mkSpec(6)}

	var mu sync.Mutex
	var counts []int
	withProgress, err := scenario.SweepWithOptions(specs, scenario.SweepOptions{
		Parallelism: 2,
		Progress: func(done int) {
			mu.Lock()
			counts = append(counts, done)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	total := 6
	if len(counts) != total {
		t.Fatalf("progress called %d times, want %d", len(counts), total)
	}
	sort.Ints(counts)
	for i, c := range counts {
		if c != i+1 {
			t.Fatalf("progress counts = %v, want each of 1..%d exactly once", counts, total)
		}
	}

	plain, err := scenario.Sweep(specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		for j := range plain[i].Trials {
			a, b := plain[i].Trials[j].Result, withProgress[i].Trials[j].Result
			if a.Solved != b.Solved || a.CompletionTime != b.CompletionTime || a.Steps != b.Steps {
				t.Fatalf("spec %d trial %d: results differ with progress callback", i, j)
			}
		}
	}
}
