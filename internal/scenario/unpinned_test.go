package scenario

import (
	"fmt"
	"testing"

	"amac/internal/topology"
)

// unpinnedSpecs returns multi-trial scenarios over randomized families with
// no pinned seed, so every trial draws a fresh network: the regime the
// warmRandRun (workspace + rebound runner) path serves.
func unpinnedSpecs(trials int) []Spec {
	return []Spec{
		{
			Name: "rgg-unpinned",
			Topology: TopologySpec{
				Name:   "rgg",
				Params: topology.Params{"n": 14, "side": 2.4, "c": 1.6, "p": 0.5},
			},
			Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 3},
			Algorithm: AlgorithmSpec{Name: "bmmb"},
			Scheduler: SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
			Model:     ModelSpec{Fprog: 10, Fack: 200},
			Run:       RunSpec{Seed: 3, Trials: trials, Check: true},
		},
		{
			Name: "crosstalk-unpinned",
			Topology: TopologySpec{
				Name:       "grid-crosstalk",
				Params:     topology.Params{"rows": 3, "cols": 4, "r": 2, "p": 0.5},
				SeedFactor: 7717,
			},
			Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 2},
			Algorithm: AlgorithmSpec{Name: "bmmb"},
			Scheduler: SchedulerSpec{Name: "contention", Params: topology.Params{"rel": 0.5}},
			Model:     ModelSpec{Fprog: 10, Fack: 200},
			Run:       RunSpec{Seed: 2, Trials: trials, Check: true},
		},
	}
}

// trialSnapshot renders everything observable about one executed trial —
// network name, scalar outcome and the full trace text — for byte-for-byte
// comparison. It must be taken before the worker's next trial recycles the
// pooled engine.
func trialSnapshot(tr *TrialResult) string {
	res := tr.Result
	ok := res.Report == nil || res.Report.OK()
	return fmt.Sprintf("net=%s sched=%s solved=%v t=%d end=%d del=%d req=%d bcasts=%d steps=%d check=%v\n%s",
		tr.Built.Dual.Name, tr.SchedulerName, res.Solved, res.CompletionTime, res.End,
		res.Delivered, res.Required, res.Broadcasts, res.Steps, ok,
		res.Trace.String())
}

// TestUnpinnedWarmMatchesCold is the tentpole's acceptance guarantee at
// trace granularity: for randomized families across a run of seeds, a trial
// executed on the warm per-worker state — workspace-built topology, rebound
// runner, recycled engine — is byte-identical to the cold Trial path,
// including the full event trace of every seed.
func TestUnpinnedWarmMatchesCold(t *testing.T) {
	for _, spec := range unpinnedSpecs(1) {
		t.Run(spec.Name, func(t *testing.T) {
			r := spec.WithDefaults()
			warm := newWarmRandRun(r, 1)
			for seed := int64(1); seed <= 6; seed++ {
				cold, err := Trial(spec, seed)
				if err != nil {
					t.Fatalf("cold trial seed %d: %v", seed, err)
				}
				want := trialSnapshot(cold)
				tr, err := warm.trial(seed, 0, false)
				if err != nil {
					t.Fatalf("warm trial seed %d: %v", seed, err)
				}
				if got := trialSnapshot(tr); got != want {
					t.Fatalf("warm trial seed %d diverged from cold:\nwarm:\n%.400s\ncold:\n%.400s",
						seed, got, want)
				}
			}
		})
	}
}

// TestUnpinnedSweepMatchesNoArena pins the guarantee at the scenario
// surface: sweeps of unpinned specs produce identical reports with warm
// reuse on and off, sequential and parallel alike.
func TestUnpinnedSweepMatchesNoArena(t *testing.T) {
	specs := unpinnedSpecs(5)
	fingerprint := func(reports []*Report) string {
		out := ""
		for _, r := range reports {
			for _, tr := range r.Trials {
				res := tr.Result
				ok := res.Report == nil || res.Report.OK()
				out += fmt.Sprintf("%s seed=%d net=%s solved=%v t=%d end=%d del=%d req=%d bcasts=%d steps=%d check=%v\n",
					r.Spec.Name, tr.Seed, tr.Built.Dual.Name, res.Solved, res.CompletionTime,
					res.End, res.Delivered, res.Required, res.Broadcasts, res.Steps, ok)
			}
		}
		return out
	}
	baseline, err := SweepWithOptions(specs, SweepOptions{Parallelism: 1, NoArena: true})
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(baseline)
	for _, tc := range []SweepOptions{
		{Parallelism: 1},
		{Parallelism: 3},
	} {
		reports, err := SweepWithOptions(specs, tc)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if got := fingerprint(reports); got != want {
			t.Fatalf("unpinned sweep with %+v diverged from the cold baseline:\ngot:\n%s\nwant:\n%s", tc, got, want)
		}
	}
}

// TestDeterministicFamilyTakesWarmPath pins the pinning bugfix: a
// deterministic family with no seed at all (ring) must be treated as pinned
// — one shared network instance, warm engine reuse across trials — and stay
// byte-identical to the cold path.
func TestDeterministicFamilyTakesWarmPath(t *testing.T) {
	spec := Spec{
		Topology:  TopologySpec{Name: "ring", Params: topology.Params{"n": 16}},
		Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 2},
		Algorithm: AlgorithmSpec{Name: "bmmb"},
		Run:       RunSpec{Seed: 1, Trials: 4},
	}
	if !topologyPinned(spec.WithDefaults()) {
		t.Fatal("seedless deterministic family not treated as pinned")
	}
	warm, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Trials[0].Built != warm.Trials[1].Built {
		t.Fatal("trials of a deterministic family did not share one built instance")
	}
	if warm.Trials[0].Result.Engine != warm.Trials[1].Result.Engine {
		t.Fatal("trials of a deterministic family did not reuse the warm engine")
	}

	cold := spec
	cold.Run.NoArena = true
	coldRep, err := Run(cold)
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm.Trials {
		w, c := warm.Trials[i].Result, coldRep.Trials[i].Result
		if w.CompletionTime != c.CompletionTime || w.Steps != c.Steps || w.Delivered != c.Delivered {
			t.Fatalf("trial %d diverged between warm and cold deterministic-family runs", i)
		}
	}
}

// TestLargeTrialSeedsStayDistinct is the regression test for the lossy
// seed plumbing: trial seeds above 2^53 used to be rounded through a
// float64 parameter, colliding adjacent trials onto one network. The spec
// below would have drawn the same rgg instance for both trials.
func TestLargeTrialSeedsStayDistinct(t *testing.T) {
	spec := unpinnedSpecs(2)[0]
	spec.Run.Seed = int64(1) << 53 // float64(2^53) == float64(2^53 + 1)
	if err := spec.Validate(); err != nil {
		t.Fatalf("large run seed rejected: %v", err)
	}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rep.Trials[0].Built.Dual, rep.Trials[1].Built.Dual
	if fmt.Sprint(a.G.Edges()) == fmt.Sprint(b.G.Edges()) &&
		fmt.Sprint(a.GPrime.Edges()) == fmt.Sprint(b.GPrime.Edges()) {
		t.Fatal("adjacent trial seeds above 2^53 drew the same network — the seed is being rounded through a float64")
	}

	// A pinned seed beyond 2^53 must validate and thread exactly too.
	pinned := spec
	pinned.Run.Seed = 1
	pinned.Topology.Seed = (int64(1) << 53) + 1
	if err := pinned.Validate(); err != nil {
		t.Fatalf("pinned seed beyond 2^53 rejected: %v", err)
	}
}

// TestUnpinnedEdgeTrialsBuiltStable pins the stable-storage contract of
// TrialResult.Built: the first and last trials of an unpinned warm run keep
// their own networks after the sweep (amacsim's report header reads the
// first, bound formulas the last) instead of aliasing recycled workspace
// graphs overwritten by later trials.
func TestUnpinnedEdgeTrialsBuiltStable(t *testing.T) {
	spec := unpinnedSpecs(5)[0]
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, len(rep.Trials) - 1} {
		want, err := BuildTopology(spec, rep.Trials[i].Seed)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(rep.Trials[i].Built.Dual.G.Edges()) != fmt.Sprint(want.Dual.G.Edges()) {
			t.Fatalf("trial %d's Built was recycled by a later trial on its worker", i)
		}
	}
}
