package scenario

import (
	"amac/internal/mac"
)

// fleetPoolFloor keeps a small pool even for tiny fleets, mirroring the
// event free-list floor in internal/sim.
const fleetPoolFloor = 64

// fleetPool caches built fleets by node count for the unpinned warm path,
// where successive trials on one worker draw networks of varying size. A
// trial that needs a fleet of n automata takes the pooled one for n (if its
// algorithm can Refit it to the new draw), resets it, and parks it again
// afterwards; only size misses pay fleet construction.
//
// The pool is bounded like the simulator's event free list: after each park,
// pooled automata in excess of 2×live+fleetPoolFloor — live being the size
// of the fleet just retired — are evicted oldest-first, so a sweep that
// wanders from large draws to small ones releases the large fleets instead
// of pinning them for its whole lifetime.
//
// Pools are per worker, so no locking is needed; the zero value is ready to
// use.
type fleetPool struct {
	byN   map[int][]mac.Automaton
	order []int // sizes in insertion order, oldest first
	total int   // automata across all pooled fleets
}

// fleetFor returns a fleet for the plan's draw: the pooled fleet of matching
// size refitted and reset when possible, or a freshly built one.
func (fp *fleetPool) fleetFor(p *trialPlan) ([]mac.Automaton, error) {
	n := p.built.Dual.N()
	if fleet := fp.take(n); fleet != nil {
		ok := true
		if p.alg.Refit != nil {
			ok = p.alg.Refit(fleet, p.built.Dual, p.k, p.spec.Algorithm.Params)
		}
		if ok {
			for _, a := range fleet {
				a.(mac.Resettable).Reset()
			}
			return fleet, nil
		}
		// The pooled fleet cannot be adapted to this draw; drop it.
	}
	return p.newFleet()
}

// take removes and returns the pooled fleet of exactly n automata, or nil.
func (fp *fleetPool) take(n int) []mac.Automaton {
	fleet := fp.byN[n]
	if fleet == nil {
		return nil
	}
	delete(fp.byN, n)
	fp.total -= len(fleet)
	for i, sz := range fp.order {
		if sz == n {
			fp.order = append(fp.order[:i], fp.order[i+1:]...)
			break
		}
	}
	return fleet
}

// put parks a retired fleet for reuse, then evicts oldest entries until the
// pool holds at most 2×len(fleet)+fleetPoolFloor automata. Fleets whose
// automata cannot Reset are not poolable and are dropped.
func (fp *fleetPool) put(fleet []mac.Automaton) {
	if len(fleet) == 0 || !fleetResettable(fleet) {
		return
	}
	n := len(fleet)
	if fp.byN == nil {
		fp.byN = make(map[int][]mac.Automaton)
	}
	if old := fp.byN[n]; old != nil {
		// Same size already pooled: keep the newer fleet, which just ran and
		// has warm per-automaton storage for this draw shape.
		fp.take(n)
	}
	fp.byN[n] = fleet
	fp.order = append(fp.order, n)
	fp.total += n

	bound := 2*n + fleetPoolFloor
	for fp.total > bound && len(fp.order) > 1 {
		oldest := fp.order[0]
		if oldest == n {
			// Never evict the fleet just parked; it is the likeliest match
			// for the worker's next trial.
			if len(fp.order) == 1 {
				break
			}
			oldest = fp.order[1]
		}
		fp.take(oldest)
	}
}
