package scenario

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"amac/internal/topology"
)

// shardSweepSpecs is a small mixed grid: a pinned r-restricted line (warm
// arena path), an unpinned grey-zone family (workspace + rebind path), and a
// NoArena spec (cold path), so partitions cross every execution regime.
func shardSweepSpecs() []Spec {
	return []Spec{
		{
			Name: "pinned",
			Topology: TopologySpec{
				Name:   "rline",
				Params: topology.Params{"n": 24, "r": 2, "p": 0.6},
				Seed:   7,
			},
			Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 3},
			Algorithm: AlgorithmSpec{Name: "bmmb"},
			Scheduler: SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
			Run:       RunSpec{Seed: 1, Trials: 5},
		},
		{
			Name: "unpinned",
			Topology: TopologySpec{
				Name:   "rgg",
				Params: topology.Params{"n": 20, "side": 3.4, "c": 1.6, "p": 0.5},
			},
			Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 2},
			Algorithm: AlgorithmSpec{Name: "bmmb"},
			Scheduler: SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.6}},
			Run:       RunSpec{Seed: 3, Trials: 7},
		},
		{
			Name:      "cold",
			Topology:  TopologySpec{Name: "line", Params: topology.Params{"n": 16}},
			Workload:  WorkloadSpec{Kind: WorkloadSingleton, K: 2},
			Algorithm: AlgorithmSpec{Name: "bmmb"},
			Scheduler: SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.7}},
			Run:       RunSpec{Seed: 2, Trials: 4, NoArena: true},
		},
	}
}

// trialScalars projects the comparison-safe fields of a trial result: the
// scalars and strings that must be invariant under sharding. Pointers
// (Built, Engine) are storage artifacts and legitimately differ.
type trialScalars struct {
	Seed           int64
	Scheduler      string
	Solved         bool
	CompletionTime int64
	End            int64
	Delivered      int
	Required       int
	Broadcasts     int
	Steps          uint64
	MMBViolations  []string
}

func scalarsOf(t *TrialResult) trialScalars {
	return trialScalars{
		Seed:           t.Seed,
		Scheduler:      t.SchedulerName,
		Solved:         t.Result.Solved,
		CompletionTime: int64(t.Result.CompletionTime),
		End:            int64(t.Result.End),
		Delivered:      t.Result.Delivered,
		Required:       t.Result.Required,
		Broadcasts:     t.Result.Broadcasts,
		Steps:          t.Result.Steps,
		MMBViolations:  t.Result.MMBViolations,
	}
}

// TestSweepShardPartitionMatchesSweep is the shard-determinism property:
// any partition of the task space into consecutive shards, each run by a
// separate SweepShard call at its own parallelism, concatenates in index
// order to exactly the trials SweepWithOptions produces.
func TestSweepShardPartitionMatchesSweep(t *testing.T) {
	specs := shardSweepSpecs()
	offsets := SweepOffsets(specs)
	total := offsets[len(specs)]

	reports, err := SweepWithOptions(specs, SweepOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want []trialScalars
	for _, r := range reports {
		for _, tr := range r.Trials {
			want = append(want, scalarsOf(tr))
		}
	}

	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 8; iter++ {
		var got []trialScalars
		for lo := 0; lo < total; {
			hi := lo + 1 + rng.Intn(total-lo)
			trials, err := SweepShard(specs, lo, hi, SweepOptions{Parallelism: 1 + rng.Intn(4)})
			if err != nil {
				t.Fatalf("iter %d: shard [%d, %d): %v", iter, lo, hi, err)
			}
			if len(trials) != hi-lo {
				t.Fatalf("iter %d: shard [%d, %d) returned %d trials", iter, lo, hi, len(trials))
			}
			for _, tr := range trials {
				got = append(got, scalarsOf(tr))
			}
			lo = hi
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: sharded results diverge from the serial sweep\ngot:  %+v\nwant: %+v", iter, got, want)
		}
	}
}

// TestSweepShardRange rejects out-of-range and inverted shards.
func TestSweepShardRange(t *testing.T) {
	specs := shardSweepSpecs()[:1] // 5 tasks
	for _, bad := range [][2]int{{-1, 3}, {0, 6}, {4, 2}} {
		if _, err := SweepShard(specs, bad[0], bad[1], SweepOptions{}); err == nil {
			t.Errorf("shard [%d, %d) accepted", bad[0], bad[1])
		} else if !strings.Contains(err.Error(), "task space") {
			t.Errorf("shard [%d, %d): undiagnostic error %q", bad[0], bad[1], err)
		}
	}
	if trials, err := SweepShard(specs, 2, 2, SweepOptions{}); err != nil || len(trials) != 0 {
		t.Errorf("empty shard: got %d trials, err %v", len(trials), err)
	}
}

// TestInternedPlanMatchesResolved pins the plan-interning contract: for a
// sequence of fresh draws, the interned-and-rebound plan must be
// field-for-field identical to a from-scratch resolvePlan on the same
// instance.
func TestInternedPlanMatchesResolved(t *testing.T) {
	r := shardSweepSpecs()[1].WithDefaults() // unpinned rgg
	w := newWarmRandRun(r, 1)
	for seed := int64(3); seed < 9; seed++ {
		built, err := buildTopology(r, seed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w.planFor(built, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := resolvePlan(r, built)
		if err != nil {
			t.Fatal(err)
		}
		if got.built != built {
			t.Fatalf("seed %d: interned plan not rebound to the new instance", seed)
		}
		if got.horizon != want.horizon || got.stepLimit != want.stepLimit ||
			got.k != want.k || got.schedName != want.schedName {
			t.Fatalf("seed %d: interned plan diverged: got {h=%v sl=%d k=%d s=%s}, want {h=%v sl=%d k=%d s=%s}",
				seed, got.horizon, got.stepLimit, got.k, got.schedName,
				want.horizon, want.stepLimit, want.k, want.schedName)
		}
		if !reflect.DeepEqual(got.payloads, want.payloads) {
			t.Fatalf("seed %d: interned payloads diverged", seed)
		}
		if !reflect.DeepEqual(got.workload.Arrivals(), want.workload.Arrivals()) {
			t.Fatalf("seed %d: interned workload diverged", seed)
		}
	}
}
