// Package scenario is the declarative experiment API: a Spec names a
// topology family, a workload, an algorithm and a scheduler — all resolved
// through name-keyed registries — plus the model constants and run options,
// and is JSON-round-trippable so scenarios live in files rather than code.
// Run executes a Spec across its trials on the shared worker pool; Sweep
// executes a grid of Specs. Adding a scenario is a data change, not a code
// change.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"amac/internal/core"
	"amac/internal/sched"
	"amac/internal/topology"
)

// Spec declares one executable scenario. The zero value of every optional
// field selects a documented default, so minimal specs stay minimal.
type Spec struct {
	// Name labels the scenario in reports and file listings.
	Name string `json:"name,omitempty"`
	// Description is free-form documentation carried with the spec.
	Description string `json:"description,omitempty"`
	// Topology selects the network family and its parameters.
	Topology TopologySpec `json:"topology"`
	// Workload selects how the MMB messages arrive.
	Workload WorkloadSpec `json:"workload"`
	// Algorithm selects the registered MMB algorithm.
	Algorithm AlgorithmSpec `json:"algorithm"`
	// Scheduler selects the MAC scheduler; an empty name uses the
	// algorithm's registered default.
	Scheduler SchedulerSpec `json:"scheduler,omitzero"`
	// Model sets the abstract MAC layer timing constants.
	Model ModelSpec `json:"model,omitzero"`
	// Run sets seeds, trials, parallelism and termination options.
	Run RunSpec `json:"run,omitzero"`
}

// TopologySpec names a registered topology family and its parameters.
type TopologySpec struct {
	// Name keys topology.Build.
	Name string `json:"name"`
	// Params parameterizes the family (see the registry for accepted
	// names). A "seed" entry pins the family's random stream directly.
	Params topology.Params `json:"params,omitempty"`
	// Seed pins the topology random stream for every trial; 0 derives it
	// from the trial seed times SeedFactor, so randomized families draw a
	// fresh instance per trial.
	Seed int64 `json:"seed,omitempty"`
	// SeedFactor scales the trial seed into the topology seed when Seed is
	// 0; 0 selects 1.
	SeedFactor int64 `json:"seed_factor,omitempty"`
}

// Workload kinds.
const (
	// WorkloadSingleton spreads K single-message origins evenly over the
	// nodes (or uses Origins verbatim when set), all arriving at time zero.
	WorkloadSingleton = "singleton"
	// WorkloadSingleSource injects K messages at Origin at time zero.
	WorkloadSingleSource = "single-source"
	// WorkloadPoisson spreads K messages over the first Span ticks at
	// reproducibly random times and nodes (the online MMB variant).
	WorkloadPoisson = "poisson"
	// WorkloadExplicit lists every arrival verbatim.
	WorkloadExplicit = "explicit"
	// WorkloadConstruction uses the canonical workload of a structured
	// topology (parallel-lines: m0 at a₁ and m1 at b₁; star-choke: one
	// message per source plus one at the hub).
	WorkloadConstruction = "construction"
)

// WorkloadSpec declares how messages arrive.
type WorkloadSpec struct {
	// Kind is one of the Workload* constants.
	Kind string `json:"kind"`
	// K is the message count (singleton, single-source, poisson).
	K int `json:"k,omitempty"`
	// Origin is the injection node for single-source workloads.
	Origin int `json:"origin,omitempty"`
	// Origins optionally lists singleton origins explicitly.
	Origins []int `json:"origins,omitempty"`
	// Span is the poisson arrival window in ticks.
	Span int64 `json:"span,omitempty"`
	// Seed pins the poisson stream; 0 uses the run's base seed, so the
	// workload is identical across trials (only execution randomness
	// varies).
	Seed int64 `json:"seed,omitempty"`
	// Arrivals lists explicit arrivals; message IDs follow slice order.
	Arrivals []ArrivalSpec `json:"arrivals,omitempty"`
}

// ArrivalSpec is one explicit timed injection.
type ArrivalSpec struct {
	At   int64 `json:"at"`
	Node int   `json:"node"`
}

// AlgorithmSpec names a registered algorithm and its parameters.
type AlgorithmSpec struct {
	Name   string          `json:"name"`
	Params topology.Params `json:"params,omitempty"`
}

// SchedulerSpec names a registered scheduler and its parameters.
type SchedulerSpec struct {
	Name   string          `json:"name,omitempty"`
	Params topology.Params `json:"params,omitempty"`
}

// ModelSpec sets the abstract MAC layer constants.
type ModelSpec struct {
	// Fprog is the progress bound in ticks; 0 selects 10.
	Fprog int64 `json:"fprog,omitempty"`
	// Fack is the acknowledgment bound in ticks; 0 selects 200.
	Fack int64 `json:"fack,omitempty"`
	// EpsAbort bounds post-abort deliveries (the paper's ε_abort).
	EpsAbort int64 `json:"eps_abort,omitempty"`
}

// RunSpec sets execution options.
type RunSpec struct {
	// Seed is the base random seed; trial t runs with Seed + t. 0 selects 1.
	Seed int64 `json:"seed,omitempty"`
	// Trials replays the scenario across consecutive seeds; 0 selects 1.
	Trials int `json:"trials,omitempty"`
	// Parallelism bounds concurrent trial simulations; results are
	// seed-keyed and deterministic at any value. 0 selects 1.
	Parallelism int `json:"parallelism,omitempty"`
	// Check verifies the model guarantees after every run. Requires the
	// memory trace mode.
	Check bool `json:"check,omitempty"`
	// Trace selects the trace mode: "memory" (default), "stream" (requires
	// trace_file) or "off". It mirrors core.RunOptions.Trace; illegal
	// combinations with check and trace_file fail Validate.
	Trace string `json:"trace,omitempty"`
	// NoTrace disables trace recording (throughput runs).
	//
	// Deprecated: set "trace": "off" instead. Accepted for one release;
	// setting both no_trace and trace is an error.
	NoTrace bool `json:"no_trace,omitempty"`
	// Shards selects the decomposed executor with at most this many
	// component shards running concurrently; 0 (default) keeps the legacy
	// single-engine executor. See core.RunOptions.Shards.
	Shards int `json:"shards,omitempty"`
	// Regions splits each run into this many contiguous node regions
	// executed optimistically in parallel time windows; requires shards
	// >= 1. See core.RunOptions.Regions.
	Regions int `json:"regions,omitempty"`
	// ToQuiescence runs past completion until the network is silent; the
	// default halts at the moment of the last required delivery.
	ToQuiescence bool `json:"to_quiescence,omitempty"`
	// Horizon bounds the execution in ticks; 0 selects the algorithm's
	// registered horizon, falling back to the runner's generic bound.
	Horizon int64 `json:"horizon,omitempty"`
	// StepLimit bounds simulation events; 0 selects the algorithm default.
	StepLimit uint64 `json:"step_limit,omitempty"`
	// NoArena disables cross-trial arena and fleet reuse for pinned
	// topologies — the debugging escape hatch. Executions are
	// byte-identical either way; reuse only changes where the memory
	// comes from.
	NoArena bool `json:"no_arena,omitempty"`
	// TraceFile streams each trial's trace to a binary file (see
	// sim.TraceWriter) instead of accumulating it in RAM — the path for
	// networks whose traces exceed memory. The trial seed is spliced in
	// before the extension ("out.amtr" -> "out.s3.amtr"), so parallel
	// trials and multi-trial runs never collide on one file.
	// Incompatible with Check (the checkers read the in-memory trace)
	// and NoTrace (nothing to stream).
	TraceFile string `json:"trace_file,omitempty"`
}

// WithDefaults returns a copy with every defaulted scalar resolved, so
// consumers can read fields without re-implementing the default table.
func (s Spec) WithDefaults() Spec {
	if s.Topology.SeedFactor == 0 {
		s.Topology.SeedFactor = 1
	}
	if s.Model.Fprog == 0 {
		s.Model.Fprog = 10
	}
	if s.Model.Fack == 0 {
		s.Model.Fack = 200
	}
	if s.Run.Seed == 0 {
		s.Run.Seed = 1
	}
	if s.Run.Trials == 0 {
		s.Run.Trials = 1
	}
	if s.Run.Parallelism == 0 {
		s.Run.Parallelism = 1
	}
	return s
}

// Validate checks the spec against the registries and the field domains,
// returning a descriptive error for the first violation. A valid spec can
// still fail at build time for instance-specific reasons (e.g. no connected
// geometric instance at the requested density); those surface from Run.
func (s Spec) Validate() error {
	r := s.WithDefaults()
	if err := topology.ValidateSpec(r.Topology.Name, r.Topology.Params); err != nil {
		return fmt.Errorf("scenario: topology: %w", err)
	}
	if r.Topology.SeedFactor < 0 {
		return fmt.Errorf("scenario: topology: seed_factor must be positive, got %d", r.Topology.SeedFactor)
	}
	// Topology seeds are threaded to the builders as exact int64s (the old
	// float64 round trip was lossy above 2^53), so any pinned seed is fine;
	// only the derived trial-seed × seed_factor product can still go wrong,
	// by overflowing int64 and silently aliasing seeds.
	if r.Topology.Seed == 0 && r.Topology.SeedFactor > 1 {
		maxTrialSeed := abs64(r.Run.Seed) + int64(r.Run.Trials)
		if maxTrialSeed > math.MaxInt64/r.Topology.SeedFactor {
			return fmt.Errorf("scenario: topology: trial seeds (run seed %d + %d trials) × seed_factor %d overflow int64",
				r.Run.Seed, r.Run.Trials, r.Topology.SeedFactor)
		}
	}
	switch r.Workload.Kind {
	case WorkloadSingleton:
		if len(r.Workload.Origins) == 0 && r.Workload.K < 1 {
			return fmt.Errorf("scenario: workload: singleton needs k >= 1 or explicit origins, got k=%d", r.Workload.K)
		}
		for _, o := range r.Workload.Origins {
			if o < 0 {
				return fmt.Errorf("scenario: workload: negative origin %d", o)
			}
		}
	case WorkloadSingleSource:
		if r.Workload.K < 1 {
			return fmt.Errorf("scenario: workload: single-source needs k >= 1, got %d", r.Workload.K)
		}
		if r.Workload.Origin < 0 {
			return fmt.Errorf("scenario: workload: negative origin %d", r.Workload.Origin)
		}
	case WorkloadPoisson:
		if r.Workload.K < 1 {
			return fmt.Errorf("scenario: workload: poisson needs k >= 1, got %d", r.Workload.K)
		}
		if r.Workload.Span < 0 {
			return fmt.Errorf("scenario: workload: negative span %d", r.Workload.Span)
		}
	case WorkloadExplicit:
		if len(r.Workload.Arrivals) == 0 {
			return fmt.Errorf("scenario: workload: explicit needs at least one arrival")
		}
		for i, ar := range r.Workload.Arrivals {
			if ar.Node < 0 {
				return fmt.Errorf("scenario: workload: arrival %d at negative node %d", i, ar.Node)
			}
			if ar.At < 0 {
				return fmt.Errorf("scenario: workload: arrival %d at negative time %d", i, ar.At)
			}
		}
	case WorkloadConstruction:
		// Artifact support is checked at build time, when the topology's
		// construction is in hand.
	case "":
		return fmt.Errorf("scenario: workload: kind is required (one of singleton, single-source, poisson, explicit, construction)")
	default:
		return fmt.Errorf("scenario: workload: unknown kind %q", r.Workload.Kind)
	}
	if err := core.ValidateAlgorithmSpec(r.Algorithm.Name, r.Algorithm.Params); err != nil {
		return fmt.Errorf("scenario: algorithm: %w", err)
	}
	schedName := r.Scheduler.Name
	if schedName == "" {
		alg, _ := core.LookupAlgorithm(r.Algorithm.Name)
		schedName = alg.DefaultScheduler
	}
	if err := sched.ValidateSpec(schedName, r.Scheduler.Params); err != nil {
		return fmt.Errorf("scenario: scheduler: %w", err)
	}
	if r.Model.Fprog < 2 {
		return fmt.Errorf("scenario: model: fprog must be >= 2 ticks, got %d", r.Model.Fprog)
	}
	if r.Model.Fack < r.Model.Fprog {
		return fmt.Errorf("scenario: model: fack (%d) must be >= fprog (%d)", r.Model.Fack, r.Model.Fprog)
	}
	if r.Model.EpsAbort < 0 {
		return fmt.Errorf("scenario: model: eps_abort must be >= 0, got %d", r.Model.EpsAbort)
	}
	if r.Run.Trials < 1 {
		return fmt.Errorf("scenario: run: trials must be >= 1, got %d", r.Run.Trials)
	}
	if r.Run.Parallelism < 1 {
		return fmt.Errorf("scenario: run: parallelism must be >= 1, got %d", r.Run.Parallelism)
	}
	if r.Run.Horizon < 0 {
		return fmt.Errorf("scenario: run: negative horizon %d", r.Run.Horizon)
	}
	if _, err := r.Run.TraceMode(); err != nil {
		return err
	}
	if r.Run.Shards < 0 {
		return fmt.Errorf("scenario: run: negative shards %d", r.Run.Shards)
	}
	if r.Run.Regions < 0 {
		return fmt.Errorf("scenario: run: negative regions %d", r.Run.Regions)
	}
	if r.Run.Regions > 1 && r.Run.Shards < 1 {
		return fmt.Errorf("scenario: run: regions > 1 requires shards >= 1 (windowed execution is part of the decomposed executor)")
	}
	return nil
}

// TraceMode normalizes the trace-related run keys — the new "trace" mode
// plus the deprecated "no_trace" and the "trace_file" pairing — into the
// core.TraceMode the execution uses, or an error for an illegal
// combination. Legacy precedence is preserved exactly for old-key-only
// specs: trace_file streams, no_trace (without check) turns recording off,
// and check keeps the in-memory trace even when no_trace is set.
func (r RunSpec) TraceMode() (core.TraceMode, error) {
	if r.Trace != "" {
		m, err := core.ParseTraceMode(r.Trace)
		if err != nil {
			return 0, fmt.Errorf("scenario: run: %w", err)
		}
		if r.NoTrace {
			return 0, fmt.Errorf("scenario: run: no_trace is deprecated and conflicts with the explicit trace mode %q (drop no_trace)", r.Trace)
		}
		if r.Check && m != core.TraceMemory {
			return 0, fmt.Errorf("scenario: run: check requires trace=memory (the checkers read the in-memory trace), got trace=%q", r.Trace)
		}
		if m == core.TraceStream && r.TraceFile == "" {
			return 0, fmt.Errorf("scenario: run: trace=stream requires trace_file")
		}
		if m != core.TraceStream && r.TraceFile != "" {
			return 0, fmt.Errorf("scenario: run: trace_file requires trace=stream, got trace=%q", r.Trace)
		}
		return m, nil
	}
	if r.TraceFile != "" {
		if r.Check {
			return 0, fmt.Errorf("scenario: run: trace_file is incompatible with check (the checkers read the in-memory trace)")
		}
		if r.NoTrace {
			return 0, fmt.Errorf("scenario: run: trace_file is incompatible with no_trace")
		}
		return core.TraceStream, nil
	}
	if r.NoTrace && !r.Check {
		return core.TraceOff, nil
	}
	return core.TraceMemory, nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Parse decodes a JSON spec strictly: unknown fields are errors, so typos in
// hand-written scenario files surface instead of silently selecting
// defaults.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse: %w", err)
	}
	return s, nil
}

// Load reads and parses a JSON scenario file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// JSON renders the spec as indented JSON with a trailing newline.
func (s Spec) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshal: %w", err)
	}
	return append(buf, '\n'), nil
}
