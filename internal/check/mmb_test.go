package check

import (
	"testing"

	"amac/internal/sim"
)

func ev(at sim.Time, kind string, node int, arg any) sim.TraceEvent {
	return sim.TraceEvent{At: at, Kind: kind, Node: node, P: sim.Ext(arg)}
}

func TestMMBCleanTrace(t *testing.T) {
	events := []sim.TraceEvent{
		ev(0, "arrive", 0, "m1"),
		ev(0, "deliver", 0, "m1"),
		ev(5, "deliver", 1, "m1"),
		ev(9, "deliver", 2, "m1"),
	}
	r := &Report{}
	MMB(r, events, MMBParams{})
	if !r.OK() {
		t.Fatalf("clean trace flagged: %v", r.Violations)
	}
}

func TestMMBDuplicateArrive(t *testing.T) {
	events := []sim.TraceEvent{
		ev(0, "arrive", 0, "m1"),
		ev(1, "arrive", 1, "m1"),
	}
	r := &Report{}
	MMB(r, events, MMBParams{})
	if r.OK() {
		t.Fatal("duplicate arrive not flagged")
	}
}

func TestMMBDuplicateDeliver(t *testing.T) {
	events := []sim.TraceEvent{
		ev(0, "arrive", 0, "m1"),
		ev(1, "deliver", 1, "m1"),
		ev(2, "deliver", 1, "m1"),
	}
	r := &Report{}
	MMB(r, events, MMBParams{})
	if r.OK() {
		t.Fatal("duplicate deliver not flagged")
	}
}

func TestMMBDeliverWithoutArrive(t *testing.T) {
	events := []sim.TraceEvent{
		ev(1, "deliver", 1, "ghost"),
	}
	r := &Report{}
	MMB(r, events, MMBParams{})
	if r.OK() {
		t.Fatal("unsolicited deliver not flagged")
	}
}

func TestMMBDeliverBeforeArrive(t *testing.T) {
	events := []sim.TraceEvent{
		ev(5, "arrive", 0, "m1"),
		ev(3, "deliver", 1, "m1"), // out of order in the trace
	}
	// Traces are time-ordered in practice; feed in time order so the
	// causality check sees the early deliver.
	events = []sim.TraceEvent{events[1], events[0]}
	r := &Report{}
	MMB(r, events, MMBParams{})
	if r.OK() {
		t.Fatal("pre-arrive deliver not flagged")
	}
}

func TestMMBCustomKinds(t *testing.T) {
	events := []sim.TraceEvent{
		ev(0, "inject", 0, 7),
		ev(1, "output", 1, 7),
	}
	r := &Report{}
	MMB(r, events, MMBParams{ArriveKind: "inject", DeliverKind: "output"})
	if !r.OK() {
		t.Fatalf("custom kinds flagged: %v", r.Violations)
	}
}
