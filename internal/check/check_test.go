package check

import (
	"testing"

	"amac/internal/mac"
	"amac/internal/sim"
	"amac/internal/topology"
)

func inst(id int, sender mac.NodeID, start sim.Time) *mac.Instance {
	return &mac.Instance{
		ID:        mac.InstanceID(id),
		Sender:    sender,
		Start:     start,
		Delivered: map[mac.NodeID]sim.Time{},
	}
}

func params() Params {
	return Params{Fack: 100, Fprog: 10, End: 1000}
}

func TestCleanExecutionPasses(t *testing.T) {
	d := topology.Line(3)
	b := inst(0, 1, 0)
	b.Delivered[0] = 5
	b.Delivered[2] = 7
	b.Term = mac.Acked
	b.TermAt = 9
	r := All(d, []*mac.Instance{b}, params())
	if !r.OK() {
		t.Fatalf("clean execution flagged: %v", r.Violations)
	}
}

func TestReceiveCorrectnessNonEdge(t *testing.T) {
	d := topology.Line(3) // no edge 0-2
	b := inst(0, 0, 0)
	b.Delivered[2] = 5 // illegal: 2 is not a G' neighbor of 0
	b.Delivered[1] = 5
	b.Term = mac.Acked
	b.TermAt = 6
	r := &Report{}
	ReceiveCorrectness(r, d, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("non-edge delivery not flagged")
	}
}

func TestReceiveCorrectnessAfterAck(t *testing.T) {
	d := topology.Line(3)
	b := inst(0, 1, 0)
	b.Delivered[0] = 5
	b.Delivered[2] = 20 // after the ack below
	b.Term = mac.Acked
	b.TermAt = 10
	r := &Report{}
	ReceiveCorrectness(r, d, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("post-ack delivery not flagged")
	}
}

func TestReceiveCorrectnessAbortEpsilon(t *testing.T) {
	d := topology.Line(2)
	b := inst(0, 0, 0)
	b.Term = mac.Aborted
	b.TermAt = 10
	b.Delivered[1] = 12
	p := params()
	p.EpsAbort = 5
	r := &Report{}
	ReceiveCorrectness(r, d, []*mac.Instance{b}, p)
	if !r.OK() {
		t.Fatalf("delivery within eps flagged: %v", r.Violations)
	}
	b.Delivered[1] = 16 // beyond eps
	r = &Report{}
	ReceiveCorrectness(r, d, []*mac.Instance{b}, p)
	if r.OK() {
		t.Fatal("delivery beyond eps not flagged")
	}
}

func TestAckCorrectnessMissingNeighbor(t *testing.T) {
	d := topology.Line(3)
	b := inst(0, 1, 0)
	b.Delivered[0] = 5 // neighbor 2 never receives
	b.Term = mac.Acked
	b.TermAt = 9
	r := &Report{}
	AckCorrectness(r, d, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("ack with missing neighbor not flagged")
	}
}

func TestTermination(t *testing.T) {
	b := inst(0, 0, 0) // never terminated, Fack window long past
	r := &Report{}
	Termination(r, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("unterminated instance not flagged")
	}
	// An instance whose Fack window extends past End is exempt.
	b2 := inst(1, 0, 950)
	r = &Report{}
	Termination(r, []*mac.Instance{b2}, params())
	if !r.OK() {
		t.Fatalf("fresh instance flagged: %v", r.Violations)
	}
}

func TestAckBound(t *testing.T) {
	b := inst(0, 0, 0)
	b.Term = mac.Acked
	b.TermAt = 150 // > Fack = 100
	r := &Report{}
	AckBound(r, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("late ack not flagged")
	}
}

func TestProgressBoundViolation(t *testing.T) {
	// Node 1 broadcasts for [0, 100]; neighbor 0 receives nothing at all.
	d := topology.Line(3)
	b := inst(0, 1, 0)
	b.Delivered[2] = 5 // other neighbor got it; 0 starved
	b.Term = mac.Acked
	b.TermAt = 100
	// Make the record ack-correct by pretending 0 received late... no: we
	// want a progress violation with an otherwise well-formed record, so
	// use an aborted instance (no ack correctness requirement).
	b.Term = mac.Aborted
	r := &Report{}
	ProgressBound(r, d, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("starved receiver not flagged")
	}
}

func TestProgressBoundEarlyReceiveCovers(t *testing.T) {
	// The paper's semantics (Lemma 3.10): one receive whose instance stays
	// alive covers all later windows inside the span.
	d := topology.Line(2)
	b := inst(0, 0, 0)
	b.Delivered[1] = 8 // within Fprog of start; instance alive to 100
	b.Term = mac.Acked
	b.TermAt = 100
	r := &Report{}
	ProgressBound(r, d, []*mac.Instance{b}, params())
	if !r.OK() {
		t.Fatalf("covered span flagged: %v", r.Violations)
	}
}

func TestProgressBoundLateFirstReceive(t *testing.T) {
	// First receive after more than Fprog from the span start: the initial
	// window is uncovered.
	d := topology.Line(2)
	b := inst(0, 0, 0)
	b.Delivered[1] = 25 // Fprog = 10: window [0, 25] uncovered
	b.Term = mac.Acked
	b.TermAt = 100
	r := &Report{}
	ProgressBound(r, d, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("late first receive not flagged")
	}
}

func TestProgressBoundDeadInstanceDoesNotCover(t *testing.T) {
	// A receive from an instance that terminated before the window starts
	// does not cover the window (contend excludes it).
	d := topology.Line(3)
	// Instance X from node 1: delivered to 0 early, terminated at t=10.
	x := inst(0, 1, 0)
	x.Delivered[0] = 5
	x.Delivered[2] = 5
	x.Term = mac.Acked
	x.TermAt = 10
	// Instance Y from node 1: spans [20, 120], never delivered to 0
	// (aborted so ack correctness doesn't apply), 2 covered.
	y := inst(1, 1, 20)
	y.Delivered[2] = 25
	y.Term = mac.Aborted
	y.TermAt = 120
	r := &Report{}
	ProgressBound(r, d, []*mac.Instance{x, y}, params())
	if r.OK() {
		t.Fatal("node 0 starved during Y's span; X's old receive must not cover it")
	}
}

func TestProgressBoundCrossInstanceCoverage(t *testing.T) {
	// Node 0 never receives X but receives Y mid-span; Y's receive covers
	// X's windows while Y is alive.
	d := topology.Line(3)
	x := inst(0, 1, 0) // spans [0, 100], never delivered to 0
	x.Delivered[2] = 5
	x.Term = mac.Aborted
	x.TermAt = 100
	y := inst(1, 1, 0) // delivered to 0 at 9, alive to 100
	y.Delivered[0] = 9
	y.Delivered[2] = 9
	y.Term = mac.Acked
	y.TermAt = 100
	r := &Report{}
	ProgressBound(r, d, []*mac.Instance{x, y}, params())
	if !r.OK() {
		t.Fatalf("cross-instance coverage not honored: %v", r.Violations)
	}
}

func TestReportErr(t *testing.T) {
	r := &Report{}
	if r.Err() != nil {
		t.Fatal("empty report has error")
	}
	r.add("x", "boom %d", 7)
	if r.Err() == nil || r.OK() {
		t.Fatal("violation not reported")
	}
	if r.Violations[0].Error() == "" {
		t.Fatal("empty error text")
	}
}
