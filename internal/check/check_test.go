package check

import (
	"testing"

	"amac/internal/mac"
	"amac/internal/sim"
	"amac/internal/topology"
)

// inst builds a bare instance record over n nodes. The reliable-degree
// counter is irrelevant here: the checkers re-derive every property from
// the dual graph, never from the instance's own ack-readiness counter. No
// neighbor row is attached, so every mark goes through the instance's
// overflow path — these tests deliberately build histories the engine
// would reject.
func inst(id int, sender mac.NodeID, start sim.Time, n int) *mac.Instance {
	_ = n
	return mac.NewInstance(mac.InstanceID(id), sender, mac.Payload{}, start, nil, 0)
}

func params() Params {
	return Params{Fack: 100, Fprog: 10, End: 1000}
}

func TestCleanExecutionPasses(t *testing.T) {
	d := topology.Line(3)
	b := inst(0, 1, 0, 3)
	b.MarkDelivered(0, 5, false)
	b.MarkDelivered(2, 7, false)
	b.Term = mac.Acked
	b.TermAt = 9
	r := All(d, []*mac.Instance{b}, params())
	if !r.OK() {
		t.Fatalf("clean execution flagged: %v", r.Violations)
	}
}

func TestReceiveCorrectnessNonEdge(t *testing.T) {
	d := topology.Line(3) // no edge 0-2
	b := inst(0, 0, 0, 3)
	b.MarkDelivered(2, 5, false) // illegal: 2 is not a G' neighbor of 0
	b.MarkDelivered(1, 5, false)
	b.Term = mac.Acked
	b.TermAt = 6
	r := &Report{}
	ReceiveCorrectness(r, d, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("non-edge delivery not flagged")
	}
}

func TestReceiveCorrectnessAfterAck(t *testing.T) {
	d := topology.Line(3)
	b := inst(0, 1, 0, 3)
	b.MarkDelivered(0, 5, false)
	b.MarkDelivered(2, 20, false) // after the ack below
	b.Term = mac.Acked
	b.TermAt = 10
	r := &Report{}
	ReceiveCorrectness(r, d, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("post-ack delivery not flagged")
	}
}

func TestReceiveCorrectnessAbortEpsilon(t *testing.T) {
	d := topology.Line(2)
	p := params()
	p.EpsAbort = 5

	b := inst(0, 0, 0, 2)
	b.Term = mac.Aborted
	b.TermAt = 10
	b.MarkDelivered(1, 12, false)
	r := &Report{}
	ReceiveCorrectness(r, d, []*mac.Instance{b}, p)
	if !r.OK() {
		t.Fatalf("delivery within eps flagged: %v", r.Violations)
	}

	b = inst(0, 0, 0, 2)
	b.Term = mac.Aborted
	b.TermAt = 10
	b.MarkDelivered(1, 16, false) // beyond eps
	r = &Report{}
	ReceiveCorrectness(r, d, []*mac.Instance{b}, p)
	if r.OK() {
		t.Fatal("delivery beyond eps not flagged")
	}
}

func TestAckCorrectnessMissingNeighbor(t *testing.T) {
	d := topology.Line(3)
	b := inst(0, 1, 0, 3)
	b.MarkDelivered(0, 5, false) // neighbor 2 never receives
	b.Term = mac.Acked
	b.TermAt = 9
	r := &Report{}
	AckCorrectness(r, d, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("ack with missing neighbor not flagged")
	}
}

func TestTermination(t *testing.T) {
	b := inst(0, 0, 0, 2) // never terminated, Fack window long past
	r := &Report{}
	Termination(r, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("unterminated instance not flagged")
	}
	// An instance whose Fack window extends past End is exempt.
	b2 := inst(1, 0, 950, 2)
	r = &Report{}
	Termination(r, []*mac.Instance{b2}, params())
	if !r.OK() {
		t.Fatalf("fresh instance flagged: %v", r.Violations)
	}
}

func TestAckBound(t *testing.T) {
	b := inst(0, 0, 0, 2)
	b.Term = mac.Acked
	b.TermAt = 150 // > Fack = 100
	r := &Report{}
	AckBound(r, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("late ack not flagged")
	}
}

func TestProgressBoundViolation(t *testing.T) {
	// Node 1 broadcasts for [0, 100]; neighbor 0 receives nothing at all.
	// Aborted rather than acked so ack correctness doesn't also apply.
	d := topology.Line(3)
	b := inst(0, 1, 0, 3)
	b.MarkDelivered(2, 5, false) // other neighbor got it; 0 starved
	b.Term = mac.Aborted
	b.TermAt = 100
	r := &Report{}
	ProgressBound(r, d, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("starved receiver not flagged")
	}
}

func TestProgressBoundEarlyReceiveCovers(t *testing.T) {
	// The paper's semantics (Lemma 3.10): one receive whose instance stays
	// alive covers all later windows inside the span.
	d := topology.Line(2)
	b := inst(0, 0, 0, 2)
	b.MarkDelivered(1, 8, false) // within Fprog of start; instance alive to 100
	b.Term = mac.Acked
	b.TermAt = 100
	r := &Report{}
	ProgressBound(r, d, []*mac.Instance{b}, params())
	if !r.OK() {
		t.Fatalf("covered span flagged: %v", r.Violations)
	}
}

func TestProgressBoundLateFirstReceive(t *testing.T) {
	// First receive after more than Fprog from the span start: the initial
	// window is uncovered.
	d := topology.Line(2)
	b := inst(0, 0, 0, 2)
	b.MarkDelivered(1, 25, false) // Fprog = 10: window [0, 25] uncovered
	b.Term = mac.Acked
	b.TermAt = 100
	r := &Report{}
	ProgressBound(r, d, []*mac.Instance{b}, params())
	if r.OK() {
		t.Fatal("late first receive not flagged")
	}
}

func TestProgressBoundDeadInstanceDoesNotCover(t *testing.T) {
	// A receive from an instance that terminated before the window starts
	// does not cover the window (contend excludes it).
	d := topology.Line(3)
	// Instance X from node 1: delivered to 0 early, terminated at t=10.
	x := inst(0, 1, 0, 3)
	x.MarkDelivered(0, 5, false)
	x.MarkDelivered(2, 5, false)
	x.Term = mac.Acked
	x.TermAt = 10
	// Instance Y from node 1: spans [20, 120], never delivered to 0
	// (aborted so ack correctness doesn't apply), 2 covered.
	y := inst(1, 1, 20, 3)
	y.MarkDelivered(2, 25, false)
	y.Term = mac.Aborted
	y.TermAt = 120
	r := &Report{}
	ProgressBound(r, d, []*mac.Instance{x, y}, params())
	if r.OK() {
		t.Fatal("node 0 starved during Y's span; X's old receive must not cover it")
	}
}

func TestProgressBoundCrossInstanceCoverage(t *testing.T) {
	// Node 0 never receives X but receives Y mid-span; Y's receive covers
	// X's windows while Y is alive.
	d := topology.Line(3)
	x := inst(0, 1, 0, 3) // spans [0, 100], never delivered to 0
	x.MarkDelivered(2, 5, false)
	x.Term = mac.Aborted
	x.TermAt = 100
	y := inst(1, 1, 0, 3) // delivered to 0 at 9, alive to 100
	y.MarkDelivered(0, 9, false)
	y.MarkDelivered(2, 9, false)
	y.Term = mac.Acked
	y.TermAt = 100
	r := &Report{}
	ProgressBound(r, d, []*mac.Instance{x, y}, params())
	if !r.OK() {
		t.Fatalf("cross-instance coverage not honored: %v", r.Violations)
	}
}

func TestReportErr(t *testing.T) {
	r := &Report{}
	if r.Err() != nil {
		t.Fatal("empty report has error")
	}
	r.add("x", "boom %d", 7)
	if r.Err() == nil || r.OK() {
		t.Fatal("violation not reported")
	}
	if r.Violations[0].Error() == "" {
		t.Fatal("empty error text")
	}
}
