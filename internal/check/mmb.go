package check

import (
	"amac/internal/sim"
)

// MMBParams describes what the MMB checker needs to know about the
// execution: which trace kinds encode the problem's external interface.
// The defaults match the core package ("arrive" and "deliver").
type MMBParams struct {
	ArriveKind  string
	DeliverKind string
}

func (p MMBParams) withDefaults() MMBParams {
	if p.ArriveKind == "" {
		p.ArriveKind = "arrive"
	}
	if p.DeliverKind == "" {
		p.DeliverKind = "deliver"
	}
	return p
}

// MMB verifies the MMB problem conditions of Section 3.2.2 on a trace:
//
//   - MMB-well-formedness: at most one arrive event per message;
//   - condition (b): at most one deliver(m) per process, and every deliver
//     is preceded by an arrive of the same message.
//
// Condition (a) — every message eventually delivered everywhere — is a
// liveness property tied to the workload's components; the runner checks
// it via completion accounting (Result.Solved), so it is not re-derived
// here.
func MMB(r *Report, events []sim.TraceEvent, p MMBParams) {
	p = p.withDefaults()
	// Messages key by their typed payload: payloads of the same kind with
	// equal operands stand for the same message. Violation text renders the
	// boxed value (the rare path), matching the old any-keyed output.
	arrived := make(map[sim.Payload]sim.Time)
	delivered := make(map[deliverKey]sim.Time)
	for _, ev := range events {
		switch ev.Kind {
		case p.ArriveKind:
			if prev, dup := arrived[ev.P]; dup {
				r.add("MMB well-formedness",
					"message %v arrived twice (first %v, again %v at node %d)",
					ev.Value(), prev, ev.At, ev.Node)
				continue
			}
			arrived[ev.P] = ev.At
		case p.DeliverKind:
			key := deliverKey{node: ev.Node, msg: ev.P}
			if prev, dup := delivered[key]; dup {
				r.add("MMB delivery uniqueness",
					"node %d delivered %v twice (first %v, again %v)",
					ev.Node, ev.Value(), prev, ev.At)
				continue
			}
			delivered[key] = ev.At
			at, ok := arrived[ev.P]
			if !ok {
				r.add("MMB delivery causality",
					"node %d delivered %v before any arrive", ev.Node, ev.Value())
			} else if ev.At < at {
				r.add("MMB delivery causality",
					"node %d delivered %v at %v, before its arrive at %v",
					ev.Node, ev.Value(), ev.At, at)
			}
		}
	}
}

type deliverKey struct {
	node int
	msg  sim.Payload
}
