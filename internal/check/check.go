// Package check verifies the abstract MAC layer guarantees of Section 3.2.1
// against a recorded execution: receive correctness, acknowledgment
// correctness, termination, the acknowledgment bound, and the progress
// bound. The engine enforces most safety properties constructively at event
// time; these checkers re-derive every property from the recorded instances
// so that tests validate executions end-to-end, independent of the engine's
// inline assertions — and so adversarial schedulers are proven to stay
// within the model.
package check

import (
	"fmt"
	"sort"

	"amac/internal/mac"
	"amac/internal/sim"
	"amac/internal/topology"
)

// Violation describes one failed model guarantee.
type Violation struct {
	Property string
	Detail   string
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("check: %s violated: %s", v.Property, v.Detail)
}

// Report aggregates the violations found in one execution.
type Report struct {
	Violations []Violation
}

// OK reports whether no guarantee was violated.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when OK, else the first violation.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return r.Violations[0]
}

func (r *Report) add(prop, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Property: prop,
		Detail:   fmt.Sprintf(format, args...),
	})
}

// Params carries the model constants an execution ran under.
type Params struct {
	Fack     sim.Time
	Fprog    sim.Time
	EpsAbort sim.Time
	// End is the time the execution was observed until; instances still
	// active at End are exempt from the termination check.
	End sim.Time
}

// All runs every model checker and returns the combined report.
func All(d *topology.Dual, insts []*mac.Instance, p Params) *Report {
	r := &Report{}
	ReceiveCorrectness(r, d, insts, p)
	AckCorrectness(r, d, insts, p)
	Termination(r, insts, p)
	AckBound(r, insts, p)
	ProgressBound(r, d, insts, p)
	return r
}

// ReceiveCorrectness checks Section 3.2.1 property 1: every rcv of an
// instance goes to a G′ neighbor of the sender at most once, not after the
// ack, and at most EpsAbort after an abort.
func ReceiveCorrectness(r *Report, d *topology.Dual, insts []*mac.Instance, p Params) {
	for _, b := range insts {
		for _, to := range b.Receivers() {
			at, _ := b.DeliveredAt(to)
			if to == b.Sender {
				r.add("receive correctness", "instance %d delivered to its sender %d", b.ID, to)
			}
			if !d.GPrime.HasEdge(b.Sender, to) {
				r.add("receive correctness", "instance %d delivered %d→%d without a G' edge",
					b.ID, b.Sender, to)
			}
			if at < b.Start {
				r.add("receive correctness", "instance %d delivered to %d at %v before bcast %v",
					b.ID, to, at, b.Start)
			}
			switch b.Term {
			case mac.Acked:
				if at > b.TermAt {
					r.add("receive correctness", "instance %d delivered to %d at %v after ack %v",
						b.ID, to, at, b.TermAt)
				}
			case mac.Aborted:
				if at > b.TermAt+p.EpsAbort {
					r.add("receive correctness",
						"instance %d delivered to %d at %v, later than abort %v + eps %v",
						b.ID, to, at, b.TermAt, p.EpsAbort)
				}
			}
		}
	}
}

// AckCorrectness checks Section 3.2.1 property 2: an acked instance was
// received by every G-neighbor of the sender no later than the ack.
func AckCorrectness(r *Report, d *topology.Dual, insts []*mac.Instance, p Params) {
	for _, b := range insts {
		if b.Term != mac.Acked {
			continue
		}
		for _, v := range d.G.Neighbors(b.Sender) {
			at, ok := b.DeliveredAt(v)
			if !ok {
				r.add("ack correctness", "instance %d acked but G-neighbor %d never received",
					b.ID, v)
				continue
			}
			if at > b.TermAt {
				r.add("ack correctness", "instance %d acked at %v before G-neighbor %d received at %v",
					b.ID, b.TermAt, v, at)
			}
		}
	}
}

// Termination checks Section 3.2.1 property 3: every bcast terminates with
// an ack or abort. Instances whose Fack window extends past the observation
// end are exempt (the model still has time to ack them).
func Termination(r *Report, insts []*mac.Instance, p Params) {
	for _, b := range insts {
		if b.Term == mac.Active && b.Start+p.Fack < p.End {
			r.add("termination", "instance %d from %d started at %v never terminated (observed to %v)",
				b.ID, b.Sender, b.Start, p.End)
		}
	}
}

// AckBound checks Section 3.2.1 property 4: ack within Fack of the bcast.
func AckBound(r *Report, insts []*mac.Instance, p Params) {
	for _, b := range insts {
		if b.Term == mac.Acked && b.TermAt > b.Start+p.Fack {
			r.add("acknowledgment bound", "instance %d acked after %v > Fack %v",
				b.ID, b.TermAt-b.Start, p.Fack)
		}
	}
}

// rcvEvent is one receive at a fixed node: when it happened (tau) and when
// the instance that caused it terminated (term; the observation end for
// instances still active).
type rcvEvent struct {
	tau, term sim.Time
}

// ProgressBound checks Section 3.2.1 property 5 by interval analysis. A
// window [s, e] with e − s > Fprog witnesses a violation at receiver j iff
// (b) some instance from a G-neighbor of j spans [s, e] entirely
// (connect(α′, j) ≠ ∅), and (c) no rcv_j event from a contending instance
// occurs by the end of the window. Following the paper's use of the bound
// in Lemmas 3.9/3.10, a receive covers the window if it happens at any time
// τ ≤ e — even before s — provided its instance had not terminated before s
// (so the instance is in contend(α′, j)).
//
// For fixed s, the earliest covering receive time is
// f(s) = min{τ : term(instance) ≥ s}; a violation inside a connect span
// [b, T] exists iff min(f(s), T) − s > Fprog for some s ∈ [b, T]. Since
// f is a non-decreasing step function that only jumps just after a
// termination time, it suffices to test s = b and s = term_i + 1 for each
// receive event i.
func ProgressBound(r *Report, d *topology.Dual, insts []*mac.Instance, p Params) {
	n := d.N()
	events := make([][]rcvEvent, n)
	for _, b := range insts {
		termAt := p.End
		if b.Terminated() {
			termAt = b.TermAt
		}
		for _, to := range b.Receivers() {
			at, _ := b.DeliveredAt(to)
			events[to] = append(events[to], rcvEvent{tau: at, term: termAt})
		}
	}
	// Per receiver: sort by term ascending and precompute suffix minima of
	// tau, so f(s) is a binary search plus a lookup.
	sufMin := make([][]sim.Time, n)
	for j := 0; j < n; j++ {
		evs := events[j]
		sort.Slice(evs, func(a, b int) bool { return evs[a].term < evs[b].term })
		sm := make([]sim.Time, len(evs)+1)
		sm[len(evs)] = sim.Infinity
		for i := len(evs) - 1; i >= 0; i-- {
			sm[i] = min(sm[i+1], evs[i].tau)
		}
		sufMin[j] = sm
	}
	f := func(j int, s sim.Time) sim.Time {
		evs := events[j]
		lo := sort.Search(len(evs), func(i int) bool { return evs[i].term >= s })
		return sufMin[j][lo]
	}
	for _, b := range insts {
		spanEnd := p.End
		if b.Terminated() {
			spanEnd = b.TermAt
		}
		for _, jn := range d.G.Neighbors(b.Sender) {
			j := int(jn)
			// Candidate window starts: the span start, plus just after
			// each termination of a receive's instance inside the span.
			check := func(s sim.Time) {
				if s < b.Start || s > spanEnd {
					return
				}
				e := min(f(j, s), spanEnd)
				if e-s > p.Fprog {
					r.add("progress bound",
						"node %d uncovered for %v > Fprog %v from %v while G-neighbor %d was broadcasting instance %d",
						j, e-s, p.Fprog, s, b.Sender, b.ID)
				}
			}
			check(b.Start)
			for _, ev := range events[j] {
				check(ev.term + 1)
			}
		}
	}
}
