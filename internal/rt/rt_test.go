package rt

import (
	"sync"
	"testing"
	"time"

	"amac/internal/check"
	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sim"
	"amac/internal/topology"
)

// runRealTime executes BMMB over the real-time engine until all required
// deliveries happen (or timeout) and returns the engine plus the completion
// wall time.
func runRealTime(t *testing.T, d *topology.Dual, a core.Assignment, cfg Config, timeout time.Duration) (*Engine, time.Duration) {
	t.Helper()
	cfg.Dual = d
	eng := New(cfg, core.NewBMMBFleet(d.N()))

	required := a.K() * d.N() // assumes connected G
	var mu sync.Mutex
	seen := make(map[[2]int]bool)
	done := make(chan struct{})
	eng.Watch(func(node mac.NodeID, kind string, arg any) {
		if kind != core.DeliverKind {
			return
		}
		m := arg.(core.Msg)
		mu.Lock()
		defer mu.Unlock()
		key := [2]int{int(node), m.ID}
		if seen[key] {
			return
		}
		seen[key] = true
		if len(seen) == required {
			close(done)
		}
	})

	start := time.Now()
	eng.Start()
	for v, msgs := range a {
		for _, m := range msgs {
			eng.Arrive(mac.NodeID(v), m.Payload())
		}
	}
	select {
	case <-done:
	case <-time.After(timeout):
		eng.Stop()
		mu.Lock()
		got := len(seen)
		mu.Unlock()
		t.Fatalf("real-time run timed out: %d/%d deliveries", got, required)
	}
	elapsed := time.Since(start)

	// Deliveries complete before the trailing BMMB re-broadcasts drain;
	// wait for quiescence (all instances terminated, count stable) so the
	// recorded execution is complete.
	deadline := time.Now().Add(timeout)
	for {
		count, settled := eng.Quiescent()
		if settled {
			time.Sleep(2 * cfg.RecvDelay)
			if c2, s2 := eng.Quiescent(); s2 && c2 == count {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("run never quiesced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	eng.Stop()
	return eng, elapsed
}

func TestRealTimeBMMBLine(t *testing.T) {
	d := topology.Line(8)
	cfg := Config{
		Fprog:     80 * time.Millisecond,
		Fack:      800 * time.Millisecond,
		RecvDelay: 10 * time.Millisecond,
		AckDelay:  60 * time.Millisecond,
		Seed:      1,
	}
	eng, elapsed := runRealTime(t, d, core.SingleSource(8, 0, 2), cfg, 10*time.Second)

	// Sanity: completion should be within an order of magnitude of the
	// deterministic expectation D·RecvDelay + k·AckDelay.
	expect := 7*cfg.RecvDelay + 2*cfg.AckDelay
	if elapsed > 10*expect {
		t.Fatalf("completion %v far beyond expectation %v", elapsed, expect)
	}

	// The recorded execution must satisfy the model guarantees.
	rep := check.All(d, eng.Instances(), check.Params{
		Fack:  sim.Time(cfg.Fack),
		Fprog: sim.Time(cfg.Fprog),
		End:   eng.Elapsed(),
	})
	if !rep.OK() {
		t.Fatalf("real execution violates the model: %v", rep.Violations[0])
	}
	// Every node broadcast both messages exactly once (BMMB behavior
	// carries over unchanged).
	counts := make(map[mac.NodeID]int)
	for _, b := range eng.Instances() {
		counts[b.Sender]++
	}
	for i := 0; i < 8; i++ {
		if counts[mac.NodeID(i)] != 2 {
			t.Fatalf("node %d broadcast %d times, want 2", i, counts[mac.NodeID(i)])
		}
	}
}

func TestRealTimeBMMBGreyZone(t *testing.T) {
	d := topology.LineRRestricted(8, 3, 1.0, nil)
	cfg := Config{
		Fprog:     80 * time.Millisecond,
		Fack:      800 * time.Millisecond,
		RecvDelay: 10 * time.Millisecond,
		AckDelay:  60 * time.Millisecond,
		GreyP:     0.7,
		Seed:      2,
	}
	eng, _ := runRealTime(t, d, core.Singleton(8, []graph.NodeID{0, 7}), cfg, 10*time.Second)
	rep := check.All(d, eng.Instances(), check.Params{
		Fack:  sim.Time(cfg.Fack),
		Fprog: sim.Time(cfg.Fprog),
		End:   eng.Elapsed(),
	})
	if !rep.OK() {
		t.Fatalf("real grey-zone execution violates the model: %v", rep.Violations[0])
	}
	grey := 0
	for _, b := range eng.Instances() {
		for _, to := range b.Receivers() {
			if !d.G.HasEdge(b.Sender, to) {
				grey++
			}
		}
	}
	if grey == 0 {
		t.Fatal("no grey-zone deliveries despite GreyP=0.7")
	}
}

func TestRealTimeStopIdempotent(t *testing.T) {
	d := topology.Line(4)
	eng := New(Config{Dual: d, Seed: 3}, core.NewBMMBFleet(4))
	eng.Start()
	eng.Arrive(0, core.Msg{ID: 0, Origin: 0}.Payload())
	time.Sleep(30 * time.Millisecond)
	eng.Stop()
	eng.Stop() // must not panic or hang
	// After stop, instances are quiescent and readable.
	_ = eng.Instances()
}

func TestRealTimeStopCancelsWork(t *testing.T) {
	// Stopping immediately after start must not leave goroutines delivering.
	d := topology.Line(6)
	eng := New(Config{Dual: d, Seed: 4}, core.NewBMMBFleet(6))
	eng.Start()
	eng.Arrive(0, core.Msg{ID: 0, Origin: 0}.Payload())
	eng.Stop()
	before := len(eng.Instances())
	time.Sleep(50 * time.Millisecond)
	after := len(eng.Instances())
	if after != before {
		t.Fatalf("instances kept appearing after Stop: %d -> %d", before, after)
	}
}

func TestRealTimeConfigValidation(t *testing.T) {
	d := topology.Line(2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad delays did not panic")
		}
	}()
	New(Config{
		Dual:      d,
		Fprog:     10 * time.Millisecond,
		RecvDelay: 20 * time.Millisecond, // >= Fprog: invalid
	}, core.NewBMMBFleet(2))
}
