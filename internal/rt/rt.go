// Package rt is a real-time runtime for abstract MAC layer algorithms: the
// same node automata that run on the deterministic simulator (package mac)
// run here unchanged as one goroutine per node over wall-clock time, with
// message passing over channels — the deployment story the paper's model is
// designed for (algorithms written against the abstract MAC layer keep
// their guarantees over any conforming MAC).
//
// The runtime implements a benign conforming scheduler: reliable neighbors
// receive a broadcast after RecvDelay, selected unreliable neighbors after
// the same delay, and the acknowledgment fires after AckDelay, with
// RecvDelay < Fprog and AckDelay < Fack leaving margin for goroutine
// scheduling jitter. Acknowledgment correctness is enforced by
// construction: the ack path force-completes any reliable delivery whose
// timer lagged. Every instance is recorded in the simulator's own record
// format (times in nanoseconds), so package check validates real
// executions against the model guarantees exactly as it validates
// simulated ones.
//
// Limitations relative to package mac: standard model only (no timers or
// aborts — BMMB needs neither), and the timing bounds are best-effort
// under OS scheduling.
package rt

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"amac/internal/mac"
	"amac/internal/sim"
	"amac/internal/topology"
)

// Config parameterizes a real-time run.
type Config struct {
	// Dual is the network. Required.
	Dual *topology.Dual
	// Fprog and Fack are the declared model bounds (wall-clock).
	// Defaults: 50ms and 500ms.
	Fprog, Fack time.Duration
	// RecvDelay is the actual bcast→rcv latency; must be in (0, Fprog).
	// Default Fprog/5.
	RecvDelay time.Duration
	// AckDelay is the actual bcast→ack latency; must be in
	// [RecvDelay, Fack). Default Fack/5.
	AckDelay time.Duration
	// GreyP is the delivery probability on unreliable links; 0 means no
	// grey-zone traffic.
	GreyP float64
	// Seed drives the per-node random streams.
	Seed int64
	// InboxSize bounds each node's event queue. Default 4096. Senders
	// block (with stop-awareness) when an inbox is full.
	InboxSize int
}

func (c Config) withDefaults() Config {
	if c.Fprog == 0 {
		c.Fprog = 50 * time.Millisecond
	}
	if c.Fack == 0 {
		c.Fack = 500 * time.Millisecond
	}
	if c.RecvDelay == 0 {
		c.RecvDelay = c.Fprog / 5
	}
	if c.AckDelay == 0 {
		c.AckDelay = c.Fack / 5
	}
	if c.InboxSize == 0 {
		c.InboxSize = 4096
	}
	if c.RecvDelay <= 0 || c.RecvDelay >= c.Fprog {
		panic("rt: RecvDelay must be in (0, Fprog)")
	}
	if c.AckDelay < c.RecvDelay || c.AckDelay >= c.Fack {
		panic("rt: AckDelay must be in [RecvDelay, Fack)")
	}
	return c
}

// event is one item in a node's inbox, processed on the node's goroutine.
type event struct {
	kind byte // 'w' wakeup, 'a' arrive, 'r' recv, 'k' ack
	arg  mac.Payload
	msg  mac.Message
}

// Engine runs automata over real time. Create with New, start with Start,
// inject with Arrive, stop with Stop (idempotent), then inspect Instances.
type Engine struct {
	cfg   Config
	nodes []*rtNode

	mu     sync.Mutex
	insts  []*mac.Instance
	nextID mac.InstanceID
	start  time.Time
	timers []*time.Timer

	watchMu  sync.Mutex
	watchers []func(node mac.NodeID, kind string, arg any)

	nodeWG  sync.WaitGroup
	cbWG    sync.WaitGroup
	stopped chan struct{}
	stopOne sync.Once
}

type rtNode struct {
	eng       *Engine
	id        mac.NodeID
	automaton mac.Automaton
	inbox     chan event
	rng       *rand.Rand

	// pending is written only on the node's own goroutine (Bcast and the
	// 'k' event handler), so automaton code sees a consistent view.
	pending *mac.Instance
}

var _ mac.Context = (*rtNode)(nil)

// New builds a real-time engine over the dual with one automaton per node.
func New(cfg Config, automata []mac.Automaton) *Engine {
	cfg = cfg.withDefaults()
	if err := cfg.Dual.Validate(); err != nil {
		panic(fmt.Sprintf("rt: %v", err))
	}
	if len(automata) != cfg.Dual.N() {
		panic(fmt.Sprintf("rt: %d automata for %d nodes", len(automata), cfg.Dual.N()))
	}
	e := &Engine{cfg: cfg, stopped: make(chan struct{})}
	e.nodes = make([]*rtNode, cfg.Dual.N())
	for i := range e.nodes {
		e.nodes[i] = &rtNode{
			eng:       e,
			id:        mac.NodeID(i),
			automaton: automata[i],
			inbox:     make(chan event, cfg.InboxSize),
			rng:       rand.New(rand.NewSource(cfg.Seed ^ (int64(i)+1)*-0x61c8864680b583eb)),
		}
	}
	return e
}

// Watch registers a callback for engine events (Emit calls plus the
// built-in arrive/bcast/rcv/ack kinds). Callbacks run on node goroutines
// and must be thread-safe.
func (e *Engine) Watch(fn func(node mac.NodeID, kind string, arg any)) {
	e.watchMu.Lock()
	defer e.watchMu.Unlock()
	e.watchers = append(e.watchers, fn)
}

func (e *Engine) notify(node mac.NodeID, kind string, arg any) {
	e.watchMu.Lock()
	ws := make([]func(node mac.NodeID, kind string, arg any), len(e.watchers))
	copy(ws, e.watchers)
	e.watchMu.Unlock()
	for _, w := range ws {
		w(node, kind, arg)
	}
}

// Start launches the node goroutines and fires wake-ups.
func (e *Engine) Start() {
	e.mu.Lock()
	e.start = time.Now()
	e.mu.Unlock()
	for _, n := range e.nodes {
		n := n
		e.nodeWG.Add(1)
		go func() {
			defer e.nodeWG.Done()
			n.loop()
		}()
		n.send(event{kind: 'w'})
	}
}

// now returns elapsed wall-clock time in nanosecond ticks.
func (e *Engine) now() sim.Time {
	e.mu.Lock()
	s := e.start
	e.mu.Unlock()
	return sim.Time(time.Since(s))
}

// Arrive injects an environment message at node v, immediately.
func (e *Engine) Arrive(v mac.NodeID, payload mac.Payload) {
	e.nodes[v].send(event{kind: 'a', arg: payload})
}

// Stop cancels outstanding timers, waits for in-flight timer callbacks,
// and terminates all node goroutines. Safe to call multiple times.
func (e *Engine) Stop() {
	e.stopOne.Do(func() {
		close(e.stopped)
		e.mu.Lock()
		timers := e.timers
		e.timers = nil
		e.mu.Unlock()
		for _, t := range timers {
			if t.Stop() {
				e.cbWG.Done() // callback will never run
			}
		}
		e.cbWG.Wait() // let already-started callbacks finish
		e.nodeWG.Wait()
	})
}

// Instances returns the recorded broadcast instances. Call after Stop for
// a quiescent view.
func (e *Engine) Instances() []*mac.Instance {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*mac.Instance(nil), e.insts...)
}

// Quiescent reports, under the engine lock, the instance count and whether
// every recorded instance has terminated. Monitors use it to detect that a
// run has drained without racing on instance fields.
func (e *Engine) Quiescent() (count int, settled bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, b := range e.insts {
		if b.Term == mac.Active {
			return len(e.insts), false
		}
	}
	return len(e.insts), true
}

// Elapsed returns the wall-clock run length so far in sim ticks (ns).
func (e *Engine) Elapsed() sim.Time { return e.now() }

// after schedules fn once the delay elapses, unless the engine stops
// first. The callback is tracked so Stop can wait for it. The stopped
// check and the WaitGroup Add happen under the engine lock, which Stop
// also holds after closing stopped — otherwise a node goroutine
// broadcasting during shutdown races its Add against Stop's Wait.
func (e *Engine) after(d time.Duration, fn func()) {
	e.mu.Lock()
	select {
	case <-e.stopped:
		e.mu.Unlock()
		return
	default:
	}
	e.cbWG.Add(1)
	t := time.AfterFunc(d, func() {
		defer e.cbWG.Done()
		select {
		case <-e.stopped:
			return
		default:
		}
		fn()
	})
	e.timers = append(e.timers, t)
	e.mu.Unlock()
}

// --- node goroutine ---

// send enqueues an event, blocking on a full inbox unless the engine is
// stopping. Only timer goroutines and the environment call send, so
// backpressure cannot deadlock node goroutines.
func (n *rtNode) send(ev event) {
	select {
	case n.inbox <- ev:
	case <-n.eng.stopped:
	}
}

func (n *rtNode) loop() {
	for {
		select {
		case <-n.eng.stopped:
			return
		case ev := <-n.inbox:
			n.handle(ev)
		}
	}
}

func (n *rtNode) handle(ev event) {
	switch ev.kind {
	case 'w':
		n.automaton.Wakeup(n)
	case 'a':
		ar, ok := n.automaton.(mac.Arriver)
		if !ok {
			panic(fmt.Sprintf("rt: node %d cannot accept arrive events", n.id))
		}
		n.eng.notify(n.id, "arrive", ev.arg.Value())
		ar.Arrive(n, ev.arg)
	case 'r':
		n.eng.notify(n.id, "rcv", ev.msg.Instance)
		n.automaton.Recv(n, ev.msg)
	case 'k':
		if n.pending != nil && n.pending.ID == ev.msg.Instance {
			n.pending = nil
		}
		n.eng.notify(n.id, "ack", ev.msg.Instance)
		n.automaton.Acked(n, ev.msg)
	}
}

// --- mac.Context implementation (runs on the node goroutine) ---

// ID returns the node's identifier.
func (n *rtNode) ID() mac.NodeID { return n.id }

// N returns the network size.
func (n *rtNode) N() int { return n.eng.cfg.Dual.N() }

// Pending reports whether a broadcast awaits its acknowledgment.
func (n *rtNode) Pending() bool { return n.pending != nil }

// GNeighbors returns the node's reliable neighbors.
func (n *rtNode) GNeighbors() []mac.NodeID { return n.eng.cfg.Dual.G.Neighbors(n.id) }

// GPrimeNeighbors returns the node's G′ neighbors.
func (n *rtNode) GPrimeNeighbors() []mac.NodeID { return n.eng.cfg.Dual.GPrime.Neighbors(n.id) }

// Rand returns the node's private random stream. Use only from the node's
// own callbacks.
func (n *rtNode) Rand() *rand.Rand { return n.rng }

// Emit publishes an algorithm-level event to watchers, which see the boxed
// payload value (watchers are an any-typed observer interface).
func (n *rtNode) Emit(kind string, arg mac.Payload) { n.eng.notify(n.id, kind, arg.Value()) }

// Bcast initiates an acknowledged local broadcast over the real-time MAC.
func (n *rtNode) Bcast(payload mac.Payload) {
	if n.pending != nil {
		panic(fmt.Sprintf("rt: node %d bcast while pending (user well-formedness)", n.id))
	}
	e := n.eng
	e.mu.Lock()
	b := mac.NewInstance(e.nextID, n.id, payload, sim.Time(time.Since(e.start)),
		e.cfg.Dual.GPrime.Neighbors(n.id), e.cfg.Dual.G.Degree(n.id))
	e.nextID++
	e.insts = append(e.insts, b)
	e.mu.Unlock()
	n.pending = b
	e.notify(n.id, "bcast", b.ID)

	msg := mac.Message{Instance: b.ID, Sender: n.id, Payload: payload}
	targets := append([]mac.NodeID(nil), e.cfg.Dual.G.Neighbors(n.id)...)
	if e.cfg.GreyP > 0 {
		for _, j := range e.cfg.Dual.GPrime.Neighbors(n.id) {
			if e.cfg.Dual.G.HasEdge(n.id, j) {
				continue
			}
			// Drawn on the sender's goroutine: stream access stays
			// single-threaded.
			if n.rng.Float64() < e.cfg.GreyP {
				targets = append(targets, j)
			}
		}
	}
	for _, j := range targets {
		j := j
		e.after(e.cfg.RecvDelay, func() { e.deliver(b, msg, j) })
	}
	e.after(e.cfg.AckDelay, func() { e.ack(n, b, msg) })
}

// deliver records and dispatches one rcv, exactly once per (instance,
// receiver) and never after termination.
func (e *Engine) deliver(b *mac.Instance, msg mac.Message, j mac.NodeID) {
	e.mu.Lock()
	if b.WasDelivered(j) || b.Term != mac.Active {
		e.mu.Unlock()
		return
	}
	b.MarkDelivered(j, e.nowLocked(), e.cfg.Dual.G.HasEdge(b.Sender, j))
	e.mu.Unlock()
	e.nodes[j].send(event{kind: 'r', msg: msg})
}

// ack terminates the instance, force-completing any reliable delivery
// whose timer lagged so acknowledgment correctness holds by construction.
func (e *Engine) ack(n *rtNode, b *mac.Instance, msg mac.Message) {
	var missing []mac.NodeID
	e.mu.Lock()
	if b.Term != mac.Active {
		e.mu.Unlock()
		return
	}
	for _, j := range e.cfg.Dual.G.Neighbors(b.Sender) {
		if !b.WasDelivered(j) {
			b.MarkDelivered(j, e.nowLocked(), true)
			missing = append(missing, j)
		}
	}
	b.Term = mac.Acked
	b.TermAt = e.nowLocked()
	e.mu.Unlock()
	for _, j := range missing {
		e.nodes[j].send(event{kind: 'r', msg: msg})
	}
	n.send(event{kind: 'k', msg: msg})
}

// nowLocked is now() for callers already holding e.mu.
func (e *Engine) nowLocked() sim.Time { return sim.Time(time.Since(e.start)) }
