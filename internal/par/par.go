// Package par provides the bounded deterministic worker pool shared by the
// experiment harness and the scenario runner. It lives below both so
// neither has to import the other.
package par

import (
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n) using up to p concurrent workers and
// returns when all have finished; p <= 1 (or n <= 1) runs inline. Work is
// handed out through an atomic index, so the set of indices executed is
// exactly [0, n) at any parallelism. A panic in any worker is re-raised in
// the caller once the pool drains.
func For(p, n int, fn func(i int)) {
	if p > n {
		p = n
	}
	if p <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
