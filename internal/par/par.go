// Package par provides the bounded deterministic worker pool shared by the
// experiment harness and the scenario runner. It lives below both so
// neither has to import the other.
package par

import (
	"sync"
	"sync/atomic"
)

// Workers reports the number of worker slots For and ForWorker use for a
// pool of p over n tasks: min(p, n), floored at 1 (the inline path counts
// as one worker). Callers sizing worker-local state (e.g. one warm arena
// per worker) allocate exactly this many slots.
func Workers(p, n int) int {
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// For runs fn(i) for every i in [0, n) using up to p concurrent workers and
// returns when all have finished; p <= 1 (or n <= 1) runs inline. Work is
// handed out through an atomic index, so the set of indices executed is
// exactly [0, n) at any parallelism. A panic in any worker is re-raised in
// the caller once the pool drains.
func For(p, n int, fn func(i int)) {
	ForWorker(p, n, func(_, i int) { fn(i) })
}

// ForWorker is For with the worker slot exposed: fn(w, i) runs task i on
// worker w ∈ [0, Workers(p, n)). One worker never runs two tasks
// concurrently, so fn may index worker-local state (arenas, scratch
// buffers) by w without locking; the task-to-worker assignment is
// scheduling-dependent, so results must not depend on w.
func ForWorker(p, n int, fn func(worker, i int)) {
	// Derive the pool size through Workers so the [0, Workers(p, n))
	// worker-index invariant callers size their per-worker state by is
	// structural, not a coincidence of two clamps.
	p = Workers(p, n)
	if p == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
