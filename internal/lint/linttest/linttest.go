// Package linttest runs amacvet analyzers over fixture packages laid out
// GOPATH-style under a testdata/src root and checks every reported
// diagnostic against // want comments, in the spirit of x/tools'
// analysistest (which the offline build environment cannot vendor).
//
// Expectation syntax, as a comment on the line the diagnostic points at:
//
//	// want "regexp"
//	// want analyzer:"regexp"
//	// want:+1 "regexp"
//
// Several quoted items may follow one want. An analyzer tag restricts the
// expectation to runs of that analyzer — the pseudo-analyzer name amacvet
// tags the suppression-hygiene diagnostics, which every run emits — while
// untagged expectations apply to whichever analyzer the test runs. The
// :+N/:-N offset anchors the expectation N lines away from the comment; it
// exists for diagnostics on lines that cannot carry a trailing comment of
// their own, most notably malformed //lint: suppressions, where the whole
// line already is a comment.
package linttest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"amac/internal/lint"
)

// expectation is one parsed want item, pinned to a file and line.
type expectation struct {
	file    string
	line    int
	tag     string // "" matches any analyzer
	re      *regexp.Regexp
	raw     string
	matched bool
}

var (
	wantRe = regexp.MustCompile(`^want(?::([+-]\d+))?\s+`)
	itemRe = regexp.MustCompile("^(?:([a-zA-Z0-9_]+):)?(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")
)

// Run loads the fixture packages named by paths from srcRoot, runs analyzer
// a over them, and reports every mismatch between the diagnostics and the
// fixtures' want comments on t.
func Run(t *testing.T, srcRoot string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	res, err := lint.LoadFixture(srcRoot, paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := lint.RunAnalyzers(res.Roots, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, res.Roots, a.Name)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", d.Pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw)
		}
	}
}

// claim marks and returns the first unmatched expectation covering d.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.tag != "" && w.tag != d.Analyzer {
			continue
		}
		if !w.re.MatchString(d.Message) {
			continue
		}
		w.matched = true
		return true
	}
	return false
}

// collectWants parses the want comments of every root package, keeping the
// expectations that apply to the analyzer under test.
func collectWants(t *testing.T, roots []*lint.Package, analyzer string) []*expectation {
	t.Helper()
	var out []*expectation
	for _, pkg := range roots {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					out = append(out, parseWant(t, pkg, c, analyzer)...)
				}
			}
		}
	}
	return out
}

func parseWant(t *testing.T, pkg *lint.Package, c *ast.Comment, analyzer string) []*expectation {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	m := wantRe.FindStringSubmatch(text)
	if m == nil {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	line := pos.Line
	if m[1] != "" {
		off, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatalf("%s: bad want offset %q", pos, m[1])
		}
		line += off
	}
	rest := strings.TrimSpace(text[len(m[0]):])
	var out []*expectation
	for rest != "" {
		im := itemRe.FindStringSubmatch(rest)
		if im == nil {
			t.Fatalf("%s: malformed want item %q", pos, rest)
		}
		pat, err := unquote(im[2])
		if err != nil {
			t.Fatalf("%s: unquoting %s: %v", pos, im[2], err)
		}
		// An expectation tagged for another analyzer belongs to a different
		// test over the same fixture package; skip it entirely.
		if tag := im[1]; tag == "" || tag == analyzer || tag == "amacvet" {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s: compiling want pattern %s: %v", pos, im[2], err)
			}
			out = append(out, &expectation{file: pos.Filename, line: line, tag: tag, re: re, raw: im[2]})
		}
		rest = strings.TrimSpace(rest[len(im[0]):])
	}
	return out
}

func unquote(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	return strconv.Unquote(s)
}
