package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc guards the warm-trial allocation ceilings (5 allocs pinned /
// ~22 unpinned, PERFORMANCE.md rounds 6–7): functions that opt in with an
//
//	//amac:hotpath
//
// line in their doc comment are checked for constructs known to allocate on
// every execution:
//
//   - closures capturing local variables (each capture materializes a
//     heap-allocated environment);
//   - any call into package fmt, and non-constant string concatenation;
//   - make/new in the body (grow-on-demand paths belong behind a cold
//     function or an annotation);
//   - composite literals escaping into an interface (the conversion boxes);
//   - append to a slice declared in the same function without a capacity
//     hint (growth reallocates under the profiler's nose).
//
// Arguments of panic calls are exempt: an invariant-violation panic is a
// cold branch by definition, and formatting the death message is the one
// place fmt belongs in hot code. The analyzer is deliberately
// intraprocedural: it does not chase calls, so annotate the leaf functions
// the benchmarks actually pin. Remaining justified allocations (lazy grow
// branches and the like) carry //lint:hotalloc <reason>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags known-allocating constructs in functions annotated //amac:hotpath",
	Run:  runHotAlloc,
}

// hotPathMarker is the doc-comment line that opts a function in.
const hotPathMarker = "amac:hotpath"

// isHotPathDoc reports whether the doc comment contains an //amac:hotpath
// line (trailing prose after the marker is allowed).
func isHotPathDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), hotPathMarker) {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPathDoc(fd.Doc) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	panics := panicArgRanges(pass, fd.Body)
	inPanic := func(n ast.Node) bool {
		for _, r := range panics {
			if n.Pos() >= r.from && n.End() <= r.to {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n != nil && inPanic(n) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if name := capturedVar(pass, fd, n); name != "" {
				pass.Reportf(n.Pos(), "closure captures %s in hot path %s; captured variables allocate an environment", name, fd.Name.Name)
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				if tv, ok := info.Types[n]; !ok || tv.Value == nil {
					pass.Reportf(n.OpPos, "string concatenation allocates in hot path %s; use a preallocated buffer or operands", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && len(n.Lhs) == len(n.Rhs) {
					checkCompositeToInterface(pass, fd, rhs, info.TypeOf(n.Lhs[i]))
				}
			}
		case *ast.ReturnStmt:
			results := fd.Type.Results
			if results == nil || len(n.Results) != results.NumFields() {
				return true // multi-value call return or bare return
			}
			i := 0
			for _, field := range results.List {
				k := max(1, len(field.Names))
				for j := 0; j < k && i < len(n.Results); j++ {
					checkCompositeToInterface(pass, fd, n.Results[i], info.TypeOf(field.Type))
					i++
				}
			}
		}
		return true
	})
}

// panicArgRanges collects the source ranges of panic(...) arguments: the
// death-message expression tree is a cold branch and exempt from hot-path
// allocation checks.
func panicArgRanges(pass *Pass, body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "panic" {
			return true
		}
		for _, arg := range call.Args {
			out = append(out, posRange{arg.Pos(), arg.End()})
		}
		return true
	})
	return out
}

// checkHotCall flags fmt calls, make/new, un-hinted append growth, and
// composite-literal arguments boxed into interface parameters.
func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Explicit conversion: any(T{...}) / iface(T{...}).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if isInterfaceType(tv.Type) && len(call.Args) == 1 {
			checkCompositeToInterface(pass, fd, call.Args[0], tv.Type)
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, ok := info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates in hot path %s; format off the hot path or annotate a cold branch", obj.Name(), fd.Name.Name)
			return
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates in hot path %s; preallocate in setup or annotate a cold grow branch", b.Name(), fd.Name.Name)
			case "append":
				checkHotAppend(pass, fd, call)
			}
			return
		}
	}
	// Concrete composite literals passed to interface parameters box.
	sig, ok := typeAsSignature(info.TypeOf(call.Fun))
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call)
		if pt != nil {
			checkCompositeToInterface(pass, fd, arg, pt)
		}
	}
}

// checkHotAppend flags append whose destination slice is declared in this
// function without a capacity hint: every growth step reallocates, and the
// hint is always available at the declaration site.
func checkHotAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || obj.IsField() {
		return
	}
	decl, init := findLocalDecl(pass, fd, obj)
	if !decl {
		return // parameter, receiver or package state: capacity unknown, give it the benefit of the doubt
	}
	if init == nil {
		pass.Reportf(call.Pos(), "append grows %s, declared without a capacity hint, in hot path %s; preallocate with make(len, cap)", id.Name, fd.Name.Name)
		return
	}
	switch e := init.(type) {
	case *ast.CompositeLit:
		pass.Reportf(call.Pos(), "append grows %s, declared as a literal without capacity, in hot path %s; preallocate with make(len, cap)", id.Name, fd.Name.Name)
	case *ast.CallExpr:
		if isBuiltin(pass, e.Fun, "make") && len(e.Args) < 3 {
			pass.Reportf(call.Pos(), "append grows %s, made without a capacity hint, in hot path %s; size the make call for the expected growth", id.Name, fd.Name.Name)
		}
	}
}

// findLocalDecl locates obj's declaration inside fd. It reports whether the
// variable is declared in the function body, and if so its initializer
// expression (nil for `var s []T`).
func findLocalDecl(pass *Pass, fd *ast.FuncDecl, obj *types.Var) (declared bool, init ast.Expr) {
	if obj.Pos() < fd.Body.Pos() || obj.Pos() > fd.Body.End() {
		return false, nil
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					declared = true
					if len(n.Rhs) == len(n.Lhs) {
						init = n.Rhs[i]
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.ObjectOf(name) == obj {
					declared = true
					if i < len(n.Values) {
						init = n.Values[i]
					}
				}
			}
		}
		return true
	})
	return declared, init
}

// capturedVar returns the name of a variable the function literal captures
// from the enclosing function, or "" when it captures nothing (captureless
// literals are static — they do not allocate).
func capturedVar(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared within the enclosing function (body,
		// parameters or receiver) but outside the literal itself.
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			name = v.Name()
		}
		return name == ""
	})
	return name
}

func checkCompositeToInterface(pass *Pass, fd *ast.FuncDecl, expr ast.Expr, target types.Type) {
	if target == nil || !isInterfaceType(target) {
		return
	}
	inner := ast.Unparen(expr)
	if u, ok := inner.(*ast.UnaryExpr); ok && u.Op == token.AND {
		// &T{...} into an interface allocates the struct on the heap.
		inner = ast.Unparen(u.X)
	}
	if _, ok := inner.(*ast.CompositeLit); !ok {
		return
	}
	if t := pass.TypesInfo.TypeOf(expr); t == nil || isInterfaceType(t) {
		return
	}
	pass.Reportf(expr.Pos(), "composite literal escapes into interface %s in hot path %s; boxing allocates — pass a pooled object or typed operands", types.TypeString(target, types.RelativeTo(pass.Pkg)), fd.Name.Name)
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// paramType returns the declared type of argument i, accounting for
// variadics. Calls with ellipsis pass the slice itself, so the last
// parameter keeps its slice type there.
func paramType(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	last := params.Len() - 1
	if sig.Variadic() && i >= last {
		if call.Ellipsis.IsValid() {
			return params.At(last).Type()
		}
		if s, ok := params.At(last).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
