// Package hotallocfix exercises the hotalloc analyzer: functions opt in
// with an //amac:hotpath doc line; each bad case below is one allocating
// construct the analyzer recognizes.
package hotallocfix

import "fmt"

type item struct{ id, score int }

type sink interface{ accept(v any) }

// sum is a clean hot function: indexing, field reads and integer math.
//
//amac:hotpath
func sum(items []item, out []int) int {
	total := 0
	for i, it := range items {
		out[i] = it.score
		total += it.score
	}
	return total
}

// closureCapture is flagged: the literal captures n, so every call
// materializes a heap environment.
//
//amac:hotpath
func closureCapture() func() int {
	n := 0
	return func() int { // want "closure captures n in hot path closureCapture"
		n++
		return n
	}
}

// format is flagged: fmt always allocates.
//
//amac:hotpath
func format(it item) string {
	return fmt.Sprintf("item-%d", it.id) // want "fmt.Sprintf allocates in hot path format"
}

// concat is flagged: non-constant string concatenation allocates the
// result.
//
//amac:hotpath
func concat(name, suffix string) string {
	return name + suffix // want "string concatenation allocates in hot path concat"
}

// grow is flagged twice: make and new both allocate per call.
//
//amac:hotpath
func grow(n int) []int {
	p := new(item) // want "new allocates in hot path grow"
	_ = p
	return make([]int, n) // want "make allocates in hot path grow"
}

// collect is flagged: the slice is declared here without a capacity hint,
// so append reallocates as it grows.
//
//amac:hotpath
func collect(items []item) []int {
	var ids []int
	for _, it := range items {
		ids = append(ids, it.id) // want "append grows ids, declared without a capacity hint, in hot path collect"
	}
	return ids
}

// collectHinted passes: appending into caller-provided scratch is the
// pooled discipline.
//
//amac:hotpath
func collectHinted(items []item, scratch []int) []int {
	ids := scratch[:0]
	for _, it := range items {
		ids = append(ids, it.id)
	}
	return ids
}

// box is flagged: the composite literal converts to the interface
// parameter, which boxes it onto the heap.
//
//amac:hotpath
func box(s sink, id int) {
	s.accept(item{id: id}) // want "composite literal escapes into interface"
}

// guarded passes: panic arguments are cold branches, the one place fmt
// belongs in hot code.
//
//amac:hotpath
func guarded(items []item, i int) item {
	if i >= len(items) {
		panic(fmt.Sprintf("index %d out of range", i))
	}
	return items[i]
}

// lazyGrow passes via the escape hatch: the grow branch runs once per size
// change and carries its reason.
//
//amac:hotpath
func lazyGrow(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n) //lint:hotalloc fixture: lazy grow, runs once per size change
	}
	return buf[:n]
}

// cold is identical to collect but unannotated: no opt-in, no diagnostics.
func cold(items []item) []int {
	var ids []int
	for _, it := range items {
		ids = append(ids, it.id)
	}
	return ids
}
