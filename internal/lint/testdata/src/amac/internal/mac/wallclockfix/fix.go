// Package wallclockfix exercises the wallclock analyzer at an engine
// package path: no ambient time, randomness or environment.
package wallclockfix

import (
	"math/rand"
	"os"
	"time"
)

// stamp is flagged: wall-clock read.
func stamp() int64 {
	t := time.Now() // want "wall-clock read time.Now in engine package"
	return t.UnixNano()
}

// elapsed is flagged: Since reads the wall clock too.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read time.Since in engine package"
}

// debugEnabled is flagged: configuration must not come from the ambient
// environment.
func debugEnabled() bool {
	return os.Getenv("AMAC_DEBUG") != "" // want "environment read os.Getenv in engine package"
}

// draw is flagged: the process-global generator is unseeded shared state.
func draw() int64 {
	return rand.Int63() // want "global math/rand.Int63 draws from process-global state"
}

// seeded passes: constructing and using a locally seeded generator is the
// discipline, not a violation.
func seeded(seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Int63()
}

// plus passes: time.Time arithmetic never reads the clock.
func plus(t time.Time) time.Time { return t.Add(time.Second) }

// bootNote passes via the escape hatch, reason attached.
func bootNote() string {
	return time.Now().Format(time.RFC3339) //lint:wallclock fixture: log preamble, never reaches a trace byte
}
