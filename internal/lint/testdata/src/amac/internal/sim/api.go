// Package sim is a miniature stand-in for the real simulator core: just
// enough API surface (Payload and its boxers, the pooled event queue) for
// the analyzer fixtures to exercise amacvet's package-path matching at the
// exact import paths the real analyzers key on.
package sim

// Time is the virtual clock.
type Time int64

// Payload mirrors the real typed-operand struct: three integer operands, a
// kind tag, and the Ext escape hatch. Boxing happens only in Value.
type Payload struct {
	Kind    int32
	A, B, C int64
	Ext     any
}

// Value re-boxes the payload into the dynamic value it encodes — the one
// legal boxing point, reached post-run.
func (p Payload) Value() any {
	if p.Kind < 0 {
		return p.Ext
	}
	return boxers[p.Kind](p)
}

// TraceEvent is one rendered trace record.
type TraceEvent struct {
	At Time
	P  Payload
}

// Value re-boxes the trace event's payload.
func (t TraceEvent) Value() any { return t.P.Value() }

var boxers []func(Payload) any

// RegisterPayloadKind registers the boxer for one payload kind and returns
// the kind tag.
func RegisterPayloadKind(boxer func(Payload) any) int32 {
	boxers = append(boxers, boxer)
	return int32(len(boxers) - 1)
}

// Ext wraps an arbitrary already-boxed value — the escape hatch for tests
// and bespoke automata.
func Ext(v any) Payload { return Payload{Kind: -1, Ext: v} }
