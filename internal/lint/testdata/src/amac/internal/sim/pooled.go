package sim

// This file is the pooledhandle fixture: each function is one shape of the
// pooled-event tenancy protocol, good or bad.

// useAfterRelease reads a field after the event went back to the pool.
func useAfterRelease(q *eventQueue) Time {
	ev := q.alloc()
	q.release(ev)
	return ev.when // want pooledhandle:"pooled event ev used after release"
}

// copyThenRelease is the engine's Step discipline: copy out, then release.
func copyThenRelease(q *eventQueue) Payload {
	ev := q.alloc()
	p := ev.p
	q.release(ev)
	return p
}

// releaseAndBail releases only on the early-out branch; the branch returns,
// so the kill never reaches the fall-through use.
func releaseAndBail(q *eventQueue, stop bool) Time {
	ev := q.alloc()
	if stop {
		q.release(ev)
		return 0
	}
	return ev.when
}

// killAcrossFallThrough releases on a branch that falls through: every path
// after the if must assume the event is gone.
func killAcrossFallThrough(q *eventQueue, done bool) Time {
	ev := q.alloc()
	if done {
		q.release(ev)
	}
	return ev.when // want pooledhandle:"pooled event ev used after release"
}

// writeAfterRelease stores through the released pointer — scribbling on the
// next tenancy.
func writeAfterRelease(q *eventQueue) {
	ev := q.alloc()
	q.release(ev)
	ev.when = 1 // want pooledhandle:"pooled event ev used after release"
}

// reassignRevives allocates a fresh event into the same variable: the
// assignment target is a revival, not a read.
func reassignRevives(q *eventQueue) Time {
	ev := q.alloc()
	q.release(ev)
	ev = q.alloc()
	return ev.when
}

// suppressedRetention documents a justified retention with its reason.
func suppressedRetention(q *eventQueue) Time {
	ev := q.alloc()
	q.release(ev)
	return ev.when //lint:pooledhandle fixture: exercising the escape hatch, not a real retention
}
