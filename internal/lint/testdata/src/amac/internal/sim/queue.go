package sim

// event is a pooled scheduling record: release hands the struct to the next
// tenancy immediately.
type event struct {
	when Time
	p    Payload
}

// eventQueue pools events on a free list.
type eventQueue struct {
	free []*event
}

func (q *eventQueue) alloc() *event {
	if n := len(q.free); n > 0 {
		ev := q.free[n-1]
		q.free = q.free[:n-1]
		return ev
	}
	return &event{}
}

func (q *eventQueue) release(ev *event) {
	*ev = event{}
	q.free = append(q.free, ev)
}
