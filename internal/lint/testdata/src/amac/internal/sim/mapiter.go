package sim

// latestPending is the mapiter fixture inside the sim package itself,
// pinning the acceptance criterion that a range over an unsorted map in
// amac/internal/sim is flagged.
func latestPending(pending map[int64]Time) Time {
	var latest Time
	for _, t := range pending { // want mapiter:"range over map pending iterates in nondeterministic order"
		if t > latest {
			latest = t
		}
	}
	return latest
}
