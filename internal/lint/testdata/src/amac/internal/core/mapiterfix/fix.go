// Package mapiterfix exercises the mapiter analyzer at an engine package
// path: map ranges must be sorted, order-independent, or annotated.
package mapiterfix

import "sort"

// firstKey is flagged: the loop's effect depends on visit order (the early
// comparisons steer which keys are even considered).
func firstKey(m map[string]int) string {
	best := ""
	for k := range m { // want "range over map m iterates in nondeterministic order"
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// sortedKeys passes: collect-then-sort, the canonical repair.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// accumulate passes: integer accumulation and disjoint per-key writes
// commute across any visit order.
func accumulate(m map[string]int, out map[string]int) int {
	n := 0
	for k, v := range m {
		n += v
		out[k] = v
	}
	return n
}

// count passes: a bare range observes only the iteration count.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// anyKey passes via the escape hatch: the suppression line above the loop
// carries its reason.
func anyKey(m map[string]int) string {
	//lint:mapiter fixture: any key will do, the caller treats them all alike
	for k := range m {
		return k
	}
	return ""
}

// bareSuppression shows a reasonless suppression being rejected: it does
// not take effect (the range is still flagged) and is itself diagnosed.
func bareSuppression(m map[string]int) int {
	s := 0
	// want:+1 amacvet:"suppression requires a reason"
	//lint:mapiter
	for k := range m { // want "range over map m iterates in nondeterministic order"
		s += len(k)
	}
	return s
}

// typoSuppression documents that a misspelled analyzer name is surfaced
// rather than silently ignored.
// want:+1 amacvet:"does not name an amacvet analyzer"
//lint:nosuchcheck the analyzer name is misspelled on purpose
func typoSuppression() {}
