// Package payloadboxfix exercises the payloadbox analyzer: on the per-event
// packages a Payload travels as typed operands, and boxing is legal only
// inside registered boxers (and in package sim itself).
package payloadboxfix

import "amac/internal/sim"

// kindPair's boxer literal may re-box: that is its job, so the conversion
// inside it draws no diagnostic.
var kindPair = sim.RegisterPayloadKind(func(p sim.Payload) any {
	return any(p)
})

// kindSum is registered by name; boxSum's whole body is exempt too.
var kindSum = sim.RegisterPayloadKind(boxSum)

func boxSum(p sim.Payload) any {
	return any(p)
}

// renderEarly is flagged: re-boxing on the event path.
func renderEarly(p sim.Payload) any {
	v := p.Value() // want "Payload.Value re-boxes the payload on the event path"
	return v
}

// traceValue is flagged: the trace record's payload stays unboxed until
// render.
func traceValue(ev sim.TraceEvent) any {
	v := ev.Value() // want "TraceEvent.Value re-boxes the payload on the event path"
	return v
}

// wrap is flagged: the escape hatch boxes its argument.
func wrap(v int) sim.Payload {
	return sim.Ext(v) // want "sim.Ext boxes its argument"
}

// stash is flagged: writing Ext boxes on the event path.
func stash(p *sim.Payload, v any) {
	p.Ext = v // want "writing Payload.Ext boxes on the event path"
}

// toAny is flagged: assigning a Payload into an interface boxes the struct.
func toAny(p sim.Payload) {
	var v any
	v = p // want "sim.Payload converted to interface boxes"
	_ = v
}

// logged is flagged: a Payload flowing into an interface parameter boxes at
// the call site.
func logged(p sim.Payload, emit func(v any)) {
	emit(p) // want "sim.Payload converted to interface boxes"
}

// operands passes: reading the typed operands is the discipline.
func operands(p sim.Payload) int64 { return p.A + p.B + p.C }

// share passes: a *Payload in an interface shares, it does not box the
// struct.
func share(p *sim.Payload) any {
	var v any
	v = p
	return v
}

// debugValue passes via the escape hatch, reason attached.
func debugValue(p sim.Payload) any {
	return p.Value() //lint:payloadbox fixture: test-only dump, off the event path
}
