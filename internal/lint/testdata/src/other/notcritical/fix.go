// Package notcritical sits outside the engine package set: code that would
// be flagged under amac/internal/... draws no diagnostics here, pinning the
// analyzers' package scoping.
package notcritical

import (
	"os"
	"time"
)

// anyKey ranges a map order-dependently — fine outside the engine set.
func anyKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// stamp reads the wall clock and the environment — fine outside the engine
// set.
func stamp() string {
	if os.Getenv("TZ") == "" {
		return time.Now().String()
	}
	return ""
}
