package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, parsed and type-checked package. Dependency
// packages carry Types only (checked with IgnoreFuncBodies — their exported
// API is all the roots need); analysis roots additionally carry Files and a
// fully populated Info.
type Package struct {
	Path     string
	Name     string
	Dir      string
	Standard bool

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Result is a loaded analysis universe: the full dependency closure plus the
// subset the patterns named (the packages analyzers run over).
type Result struct {
	Fset  *token.FileSet
	Pkgs  []*Package // dependency order, closure of Roots
	Roots []*Package
}

// listedPackage is the slice of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList shells out to the go command in dir. CGO is forced off so every
// listed package's GoFiles are a self-contained pure-Go build (cgo files
// would leave undefined references behind for go/types).
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding output: %v", strings.Join(args, " "), err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load loads, parses and type-checks the packages matching patterns (plus
// their dependency closure, type-checked from source) rooted at dir. The
// named packages come back as Result.Roots with full type info; their
// dependencies are checked signatures-only.
func Load(dir string, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	roots, err := goList(dir, append([]string{"-json=ImportPath,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	isRoot := make(map[string]bool, len(roots))
	for _, p := range roots {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		isRoot[p.ImportPath] = true
	}
	deps, err := goList(dir, append([]string{"-deps", "-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	return typecheck(deps, isRoot)
}

// typecheck parses and checks listed packages, which must arrive in
// dependency order (as `go list -deps` guarantees).
func typecheck(listed []listedPackage, isRoot map[string]bool) (*Result, error) {
	fset := token.NewFileSet()
	res := &Result{Fset: fset}
	byPath := make(map[string]*types.Package, len(listed))
	importMaps := make(map[string]map[string]string, len(listed))
	imp := &mapImporter{byPath: byPath, importMaps: importMaps}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.ImportPath == "unsafe" {
			byPath["unsafe"] = types.Unsafe
			continue
		}
		root := isRoot[lp.ImportPath]
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", filepath.Join(lp.Dir, name), err)
			}
			files = append(files, f)
		}
		if len(lp.ImportMap) > 0 {
			importMaps[lp.Dir] = lp.ImportMap
		}
		var info *types.Info
		if root {
			info = newTypeInfo()
		}
		var firstErr error
		conf := types.Config{
			Importer:         imp,
			Sizes:            sizes,
			IgnoreFuncBodies: !root,
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if firstErr == nil {
			firstErr = err
		}
		if firstErr != nil {
			if lp.Standard && tpkg != nil {
				// Best effort on the standard library: a residual error in a
				// dependency (e.g. a build-context corner the pure-Go file
				// list leaves ragged) only matters if it breaks a root.
				tpkg.MarkComplete()
			} else {
				return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, firstErr)
			}
		}
		byPath[lp.ImportPath] = tpkg
		pkg := &Package{
			Path:     lp.ImportPath,
			Name:     lp.Name,
			Dir:      lp.Dir,
			Standard: lp.Standard,
			Fset:     fset,
			Types:    tpkg,
		}
		if root {
			pkg.Files = files
			pkg.Info = info
			res.Roots = append(res.Roots, pkg)
		}
		res.Pkgs = append(res.Pkgs, pkg)
	}
	return res, nil
}

func newTypeInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// mapImporter resolves imports against the already-checked packages. It
// implements types.ImporterFrom so vendored standard-library paths (e.g.
// net/http's golang.org/x/net vendoring) resolve through the importing
// package's ImportMap, keyed by source directory.
type mapImporter struct {
	byPath     map[string]*types.Package
	importMaps map[string]map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *mapImporter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if im := m.importMaps[srcDir]; im != nil {
		if mapped, ok := im[path]; ok {
			path = mapped
		}
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg := m.byPath[path]; pkg != nil {
		return pkg, nil
	}
	return nil, fmt.Errorf("package %q not in load set (imported from %s)", path, srcDir)
}
