package lint_test

import (
	"testing"

	"amac/internal/lint"
	"amac/internal/lint/linttest"
)

// src is the fixture root; packages under it impersonate the real engine
// import paths so each analyzer's package filter is exercised exactly.
const src = "testdata/src"

func TestMapIterFixtures(t *testing.T) {
	linttest.Run(t, src, lint.MapIter,
		"amac/internal/core/mapiterfix",
		"amac/internal/sim",
		"other/notcritical",
	)
}

func TestWallClockFixtures(t *testing.T) {
	linttest.Run(t, src, lint.WallClock,
		"amac/internal/mac/wallclockfix",
		"other/notcritical",
	)
}

func TestHotAllocFixtures(t *testing.T) {
	linttest.Run(t, src, lint.HotAlloc, "amac/internal/sched/hotallocfix")
}

func TestPayloadBoxFixtures(t *testing.T) {
	linttest.Run(t, src, lint.PayloadBox, "amac/internal/core/payloadboxfix")
}

func TestPooledHandleFixtures(t *testing.T) {
	linttest.Run(t, src, lint.PooledHandle, "amac/internal/sim")
}
