package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadFixture loads analyzer test fixtures laid out GOPATH-style under
// srcRoot: the package with import path p lives in directory srcRoot/p.
// Imports resolve against the fixture tree first and the standard library
// second (type-checked from source, exactly like Load). The named paths
// become the analysis roots with full type info; fixture dependencies are
// checked signatures-only.
//
// The layout exists so fixtures can impersonate the real engine import
// paths (amac/internal/sim, amac/internal/mac, ...) that the analyzers'
// package filters key on, without colliding with the real packages — the
// fixture universe never mixes with a Load of the module proper.
func LoadFixture(srcRoot string, paths ...string) (*Result, error) {
	absRoot, err := filepath.Abs(srcRoot)
	if err != nil {
		return nil, err
	}
	var (
		order   []*fixturePkg
		visited = make(map[string]bool)
		stdlib  []string
		stdSeen = make(map[string]bool)
	)
	var visit func(path string) error
	visit = func(path string) error {
		if visited[path] {
			return nil
		}
		visited[path] = true
		p, err := readFixturePkg(absRoot, path)
		if err != nil {
			return err
		}
		for _, imp := range p.imports {
			if fixtureDirExists(absRoot, imp) {
				if err := visit(imp); err != nil {
					return err
				}
			} else if !stdSeen[imp] {
				stdSeen[imp] = true
				stdlib = append(stdlib, imp)
			}
		}
		order = append(order, p) // post-order: dependencies first
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	sort.Strings(stdlib)
	var listed []listedPackage
	if len(stdlib) > 0 {
		listed, err = goList(absRoot, append([]string{"-deps", "-json"}, stdlib...)...)
		if err != nil {
			return nil, err
		}
	}
	for _, p := range order {
		listed = append(listed, listedPackage{ImportPath: p.path, Name: p.name, Dir: p.dir, GoFiles: p.files})
	}
	isRoot := make(map[string]bool, len(paths))
	for _, p := range paths {
		isRoot[p] = true
	}
	return typecheck(listed, isRoot)
}

// fixturePkg is one discovered fixture directory before type checking.
type fixturePkg struct {
	path    string
	name    string
	dir     string
	files   []string // base names, sorted
	imports []string
}

func fixtureDirExists(root, path string) bool {
	st, err := os.Stat(filepath.Join(root, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// readFixturePkg lists and header-parses one fixture package: file set,
// package name, and the union of its imports.
func readFixturePkg(root, path string) (*fixturePkg, error) {
	dir := filepath.Join(root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %s: %v", path, err)
	}
	p := &fixturePkg{path: path, dir: dir}
	seen := make(map[string]bool)
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		p.files = append(p.files, name)
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("fixture package %s: %v", path, err)
		}
		p.name = f.Name.Name
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if !seen[ip] {
				seen[ip] = true
				p.imports = append(p.imports, ip)
			}
		}
	}
	if len(p.files) == 0 {
		return nil, fmt.Errorf("fixture package %s: no Go files in %s", path, dir)
	}
	sort.Strings(p.files)
	sort.Strings(p.imports)
	return p, nil
}
