package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PayloadBox pins PR 6's "boxing only at Value()" invariant: in the
// per-event packages (sim, mac, core, sched) a sim.Payload travels as a
// value struct of typed operands, and the dynamic Go value it stands for is
// reconstructed exactly once, post-run, by Payload.Value. The analyzer
// flags, inside those packages:
//
//   - calls to Payload.Value (or TraceEvent.Value) outside package sim and
//     outside registered boxers — engines, algorithms and schedulers must
//     read the operand fields, never re-box;
//   - calls to sim.Ext and writes to the Ext field outside package sim —
//     Ext is the boxing escape hatch for tests and bespoke automata, not
//     for the event path;
//   - conversions of a sim.Payload value into an interface (fmt verbs,
//     any(...) / interface assignments) outside package sim — the payload
//     must stay unboxed until render.
//
// Function literals passed to sim.RegisterPayloadKind (and same-package
// functions registered by name) are boxers: re-boxing is their job, so the
// checks are suspended inside them. //lint:payloadbox <reason> covers the
// rest.
var PayloadBox = &Analyzer{
	Name: "payloadbox",
	Doc:  "flags payload boxing (Ext, Value, interface conversion) outside registered boxers and trace render",
	Run:  runPayloadBox,
}

func runPayloadBox(pass *Pass) error {
	path := pass.Pkg.Path()
	if !isHotPkg(path) {
		return nil
	}
	inSim := isSimPkg(path)
	exempt := boxerRanges(pass)
	exemptAt := func(pos ast.Node) bool {
		for _, r := range exempt {
			if pos.Pos() >= r.from && pos.Pos() < r.to {
				return true
			}
		}
		return false
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && exemptAt(lit) {
				return false // inside a registered boxer
			}
			switch n := n.(type) {
			case *ast.FuncDecl:
				if exemptAt(n) {
					return false // a boxer registered by name
				}
			case *ast.CallExpr:
				checkPayloadCall(pass, n, inSim)
			case *ast.AssignStmt:
				if !inSim {
					checkExtWrite(pass, n)
					for i, rhs := range n.Rhs {
						if len(n.Lhs) == len(n.Rhs) {
							checkPayloadToInterface(pass, rhs, pass.TypesInfo.TypeOf(n.Lhs[i]))
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// boxerRanges returns the source ranges of registered boxers: function
// literals passed directly to sim.RegisterPayloadKind, and the bodies of
// same-package functions whose name is passed to it.
func boxerRanges(pass *Pass) []posRange {
	var ranges []posRange
	var namedBoxers []types.Object
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if !isSimFunc(pass, call.Fun, "RegisterPayloadKind") {
				return true
			}
			switch arg := ast.Unparen(call.Args[0]).(type) {
			case *ast.FuncLit:
				ranges = append(ranges, posRange{arg.Pos(), arg.End()})
			case *ast.Ident:
				if obj := pass.TypesInfo.ObjectOf(arg); obj != nil {
					namedBoxers = append(namedBoxers, obj)
				}
			}
			return true
		})
	}
	if len(namedBoxers) > 0 {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(fd.Name)
				for _, b := range namedBoxers {
					if obj == b {
						ranges = append(ranges, posRange{fd.Pos(), fd.End()})
					}
				}
			}
		}
	}
	return ranges
}

type posRange struct{ from, to token.Pos }

func checkPayloadCall(pass *Pass, call *ast.CallExpr, inSim bool) {
	info := pass.TypesInfo
	// Conversion any(p) / iface(p).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if !inSim && isInterfaceType(tv.Type) && len(call.Args) == 1 {
			checkPayloadToInterface(pass, call.Args[0], tv.Type)
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			if fn, ok := s.Obj().(*types.Func); ok && fn.Name() == "Value" {
				recv := s.Recv()
				if simNamed(recv, "Payload") || simNamed(recv, "TraceEvent") {
					if !inSim {
						pass.Reportf(call.Pos(), "%s.Value re-boxes the payload on the event path; read the operand fields, or move this to a post-run consumer", typeBase(recv))
					}
					return
				}
			}
		}
	}
	if !inSim && isSimFunc(pass, call.Fun, "Ext") {
		pass.Reportf(call.Pos(), "sim.Ext boxes its argument; register a payload kind and encode into operands instead")
		return
	}
	// Payload values flowing into interface parameters (fmt verbs etc.).
	if inSim {
		return
	}
	sig, ok := typeAsSignature(info.TypeOf(call.Fun))
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if pt := paramType(sig, i, call); pt != nil {
			checkPayloadToInterface(pass, arg, pt)
		}
	}
}

// checkExtWrite flags p.Ext = v outside package sim.
func checkExtWrite(pass *Pass, assign *ast.AssignStmt) {
	for _, lhs := range assign.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Ext" {
			continue
		}
		if simNamed(pass.TypesInfo.TypeOf(sel.X), "Payload") {
			pass.Reportf(lhs.Pos(), "writing Payload.Ext boxes on the event path; register a payload kind and encode into operands instead")
		}
	}
}

// checkPayloadToInterface flags a sim.Payload value converted to an
// interface type.
func checkPayloadToInterface(pass *Pass, expr ast.Expr, target types.Type) {
	if target == nil || !isInterfaceType(target) {
		return
	}
	t := pass.TypesInfo.TypeOf(expr)
	if !simNamed(t, "Payload") {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return // a *Payload in an interface shares, it does not box the struct
	}
	pass.Reportf(expr.Pos(), "sim.Payload converted to interface boxes the 40-byte struct; payloads stay unboxed until trace render")
}

// isSimFunc reports whether fun resolves to the named package-level function
// of the sim package.
func isSimFunc(pass *Pass, fun ast.Expr, name string) bool {
	var obj types.Object
	switch f := ast.Unparen(fun).(type) {
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[f.Sel]
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[f]
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return isSimPkg(fn.Pkg().Path())
}

// typeBase returns the bare name of a (possibly pointer) named type.
func typeBase(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
