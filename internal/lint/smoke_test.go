package lint_test

import (
	"testing"

	"amac/internal/lint"
)

// TestTreeClean pins the repository-wide acceptance gate: running the whole
// amacvet suite over the real tree reports nothing. Any diagnostic here
// means either a fresh violation slipped in or an analyzer grew a false
// positive — both are this test's business.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module and its stdlib closure")
	}
	res, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	diags, err := lint.RunAnalyzers(res.Roots, lint.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
