package lint

import (
	"go/ast"
	"go/types"
)

// WallClock forbids ambient-state reads in engine packages: wall-clock time
// (time.Now/Since/Until), the process-global math/rand generators, and
// environment variables. Engine code must take all time from the simulator's
// virtual clock and all randomness from the engine's seeded streams
// (sim.Engine.Rand / Fork / Reseed) so that a (spec, seed) pair fully
// determines the execution; configuration flows through explicit structs,
// never the environment. Constructing local generators (rand.New,
// rand.NewSource, ...) and calling methods on a *rand.Rand are fine — that
// is exactly the seeded-stream discipline.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now, global math/rand functions and os.Getenv in engine packages",
	Run:  runWallClock,
}

func runWallClock(pass *Pass) error {
	if !isEnginePkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			switch obj.Pkg().Path() {
			case "time":
				switch obj.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(sel.Pos(), "wall-clock read time.%s in engine package; use the simulator's virtual clock", obj.Name())
				}
			case "os":
				switch obj.Name() {
				case "Getenv", "LookupEnv", "Environ":
					pass.Reportf(sel.Pos(), "environment read os.%s in engine package; thread configuration through explicit structs", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				switch obj.Name() {
				case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
					// Constructors of local, seedable generators.
				default:
					pass.Reportf(sel.Pos(), "global %s.%s draws from process-global state; draw from the engine's seeded stream (Engine.Rand/Fork)", obj.Pkg().Path(), obj.Name())
				}
			}
			return true
		})
	}
	return nil
}
