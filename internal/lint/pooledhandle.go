package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PooledHandle guards the pooled-event tenancy protocol inside package sim:
// once a *event goes back to the pool via eventQueue.release, the struct can
// be handed straight out to the next scheduling call, so any further use of
// the released pointer within the function reads (or worse, writes) someone
// else's tenancy. The engine's own Step carefully copies the payload out
// before releasing; this analyzer makes that discipline mechanical.
//
// The dataflow is deliberately simple and intraprocedural: a call
// q.release(ev) kills ev for the rest of its block (and for the enclosing
// blocks when the branch falls through — a branch that ends in
// return/continue/break/panic keeps its kill to itself, which is exactly the
// release-and-bail shape Step and Pending use). Reassigning ev revives it.
// Retention across functions is what the generation-guarded Handle API is
// for, so diagnostics point there; genuinely safe uses carry
// //lint:pooledhandle <reason>.
var PooledHandle = &Analyzer{
	Name: "pooledhandle",
	Doc:  "flags use of a pooled sim event after its release back to the pool",
	Run:  runPooledHandle,
}

func runPooledHandle(pass *Pass) error {
	if !isSimPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		walkFuncs(f, func(fn ast.Node, body *ast.BlockStmt) {
			ph := &pooledState{pass: pass, killed: make(map[*types.Var]token.Pos)}
			ph.block(body.List)
		})
	}
	return nil
}

type pooledState struct {
	pass   *Pass
	killed map[*types.Var]token.Pos // released event var -> release position
}

func (ph *pooledState) clone() *pooledState {
	c := &pooledState{pass: ph.pass, killed: make(map[*types.Var]token.Pos, len(ph.killed))}
	for k, v := range ph.killed { //lint:mapiter analysis-internal state; diagnostics are position-sorted before output
		c.killed[k] = v
	}
	return c
}

// merge adopts kills from a branch that falls through into this state.
func (ph *pooledState) merge(branch *pooledState) {
	for k, v := range branch.killed { //lint:mapiter analysis-internal state; diagnostics are position-sorted before output
		if _, ok := ph.killed[k]; !ok {
			ph.killed[k] = v
		}
	}
}

// block processes a statement list sequentially.
func (ph *pooledState) block(stmts []ast.Stmt) {
	for _, stmt := range stmts {
		ph.stmt(stmt)
	}
}

func (ph *pooledState) stmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		ph.block(s.List)
	case *ast.LabeledStmt:
		ph.stmt(s.Stmt)
	case *ast.IfStmt:
		if s.Init != nil {
			ph.stmt(s.Init)
		}
		ph.checkUses(s.Cond)
		// Then and else run on independent clones of the pre-if state; each
		// branch's kills flow past the if only when that branch can fall
		// through.
		thenBranch := ph.clone()
		thenBranch.block(s.Body.List)
		var elseBranch *pooledState
		elseFalls := false
		if s.Else != nil {
			elseBranch = ph.clone()
			elseBranch.stmt(s.Else)
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				elseFalls = !terminates(blk.List)
			} else {
				elseFalls = true // else-if chain: assume fall-through
			}
		}
		if !terminates(s.Body.List) {
			ph.merge(thenBranch)
		}
		if elseFalls {
			ph.merge(elseBranch)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ph.stmt(s.Init)
		}
		if s.Cond != nil {
			ph.checkUses(s.Cond)
		}
		ph.branch(s.Body)
		if s.Post != nil {
			ph.stmt(s.Post)
		}
	case *ast.RangeStmt:
		ph.checkUses(s.X)
		ph.branch(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ph.stmt(s.Init)
		}
		if s.Tag != nil {
			ph.checkUses(s.Tag)
		}
		ph.caseClauses(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ph.stmt(s.Init)
		}
		ph.caseClauses(s.Body)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := ph.clone()
				if cc.Comm != nil {
					branch.stmt(cc.Comm)
				}
				branch.block(cc.Body)
				if !terminates(cc.Body) {
					ph.merge(branch)
				}
			}
		}
	case *ast.AssignStmt:
		// The direct assignment targets are not reads: `ev = q.alloc()` is
		// the revival, not a use-after-release. Everything else on the
		// statement — the right-hand sides, and target expressions that read
		// through the variable (ev.f = x, m[ev] = x) — is.
		for _, rhs := range s.Rhs {
			ph.checkUses(rhs)
		}
		for _, lhs := range s.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				ph.checkUses(lhs)
			}
		}
		ph.applyKills(s)
		ph.applyRevives(s)
	default:
		// Leaf statement: check uses of already-released events, apply new
		// kills, then account for reassignments.
		ph.checkUses(stmt)
		ph.applyKills(stmt)
		ph.applyRevives(stmt)
	}
}

// branch runs a conditional/loop body on a cloned state and merges its kills
// back when the body can fall through to the code after it.
func (ph *pooledState) branch(body *ast.BlockStmt) {
	b := ph.clone()
	b.block(body.List)
	if !terminates(body.List) {
		ph.merge(b)
	}
}

func (ph *pooledState) caseClauses(body *ast.BlockStmt) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			for _, e := range cc.List {
				ph.checkUses(e)
			}
			branch := ph.clone()
			branch.block(cc.Body)
			if !terminates(cc.Body) {
				ph.merge(branch)
			}
		}
	}
}

// terminates reports whether a statement list always transfers control away
// (return, branch, panic) at its end.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

// checkUses reports any reference to a killed event variable inside n,
// skipping nested function literals (their execution time is unknowable
// here).
func (ph *pooledState) checkUses(n ast.Node) {
	if n == nil || len(ph.killed) == 0 {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		id, ok := c.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := ph.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if pos, dead := ph.killed[v]; dead && id.Pos() > pos {
			ph.pass.Reportf(id.Pos(), "pooled event %s used after release; the struct may already belong to the next tenancy — copy fields out first or retain a generation-guarded Handle", v.Name())
		}
		return true
	})
}

// applyKills marks the argument of any eventQueue release call in n as dead.
func (ph *pooledState) applyKills(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "release" {
			return true
		}
		fn, ok := ph.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !simNamed(sig.Recv().Type(), "eventQueue") {
			return true
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := ph.pass.TypesInfo.Uses[id].(*types.Var); ok && simNamed(v.Type(), "event") {
			ph.killed[v] = call.End()
		}
		return true
	})
}

// applyRevives clears kills for variables reassigned by n.
func (ph *pooledState) applyRevives(n ast.Node) {
	assign, ok := n.(*ast.AssignStmt)
	if !ok {
		return
	}
	for _, lhs := range assign.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		if v, ok := ph.pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
			delete(ph.killed, v)
		}
	}
}
