package lint

import (
	"go/types"
	"strings"
)

// enginePkgs are the determinism-critical packages: everything a seeded
// execution flows through on its way to a trace byte. mapiter and wallclock
// apply here. cmd/, examples/, harness and rt are deliberately outside the
// set — amacbench timestamps its records with wall time and rt is the
// real-time runtime whose whole point is the wall clock.
var enginePkgs = []string{
	"amac/internal/sim",
	"amac/internal/mac",
	"amac/internal/core",
	"amac/internal/sched",
	"amac/internal/graph",
	"amac/internal/topology",
	"amac/internal/geom",
	"amac/internal/scenario",
	"amac/internal/jobs",
}

// hotPkgs are the packages on the per-event path, where payload boxing is
// forbidden outside registered boxers and trace render (payloadbox).
// scenario and jobs are excluded: they consume finished runs, which is where
// Payload.Value belongs.
var hotPkgs = []string{
	"amac/internal/sim",
	"amac/internal/mac",
	"amac/internal/core",
	"amac/internal/sched",
}

func inPkgSet(set []string, path string) bool {
	for _, p := range set {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// isEnginePkg reports whether path is determinism-critical.
func isEnginePkg(path string) bool { return inPkgSet(enginePkgs, path) }

// isHotPkg reports whether path is on the per-event hot path.
func isHotPkg(path string) bool { return inPkgSet(hotPkgs, path) }

// isSimPkg reports whether path is the simulator core package (the owner of
// the pooled event structs and the Payload type).
func isSimPkg(path string) bool { return path == "amac/internal/sim" }

// simNamed reports whether t (after pointer stripping) is the named type
// pkg sim's name refers to, e.g. simNamed(t, "Payload") or simNamed(t,
// "event").
func simNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && isSimPkg(obj.Pkg().Path())
}
