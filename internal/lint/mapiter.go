package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags `range` over a map in determinism-critical packages. Go's
// map iteration order is randomized per run, so any such loop whose effect
// depends on visit order can change trace bytes, report ordering or seed
// consumption between executions — exactly what the golden-trace and
// shards-N gates exist to forbid, except those only catch the paths a test
// happens to drive.
//
// Two shapes are recognized as safe and pass without annotation:
//
//   - collect-then-sort: the body only appends keys/values to one slice,
//     and the same function later sorts that slice (sort.* or slices.Sort*)
//     before it is used;
//   - order-independent bodies: disjoint per-key writes (m2[k] = v,
//     delete(m2, k)), integer counters (n++, n += v), or a bare
//     `for range m` that never binds the key.
//
// Anything else needs `//lint:mapiter <reason>` on the line.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flags nondeterministic map iteration in determinism-critical packages",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) error {
	if !isEnginePkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		walkFuncs(f, func(fn ast.Node, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok && n != fn {
					return false // visited as its own function
				}
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if !bindsIterationVars(rs) {
					return true
				}
				if orderIndependentBody(pass, rs) {
					return true
				}
				if sortedAfterCollect(pass, rs, body) {
					return true
				}
				pass.Reportf(rs.For, "range over map %s iterates in nondeterministic order; sort the keys before use or annotate //lint:mapiter <reason>", types.ExprString(rs.X))
				return true
			})
		})
	}
	return nil
}

// walkFuncs invokes fn for every function body in the file: declarations and
// literals, each exactly once.
func walkFuncs(f *ast.File, visit func(fn ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n, n.Body)
			}
		case *ast.FuncLit:
			visit(n, n.Body)
		}
		return true
	})
}

// bindsIterationVars reports whether the range statement binds the map key
// or value to a non-blank variable. `for range m` and `for _, _ = range m`
// observe only the iteration count, which is deterministic.
func bindsIterationVars(rs *ast.RangeStmt) bool {
	nonBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return e != nil && (!ok || id.Name != "_")
	}
	return nonBlank(rs.Key) || nonBlank(rs.Value)
}

// orderIndependentBody reports whether every statement in the loop body is
// one of the recognized order-independent forms: disjoint per-key writes,
// per-key deletes, and commutative integer accumulation.
func orderIndependentBody(pass *Pass, rs *ast.RangeStmt) bool {
	keyObjs := rangeVarObjs(pass, rs)
	if len(rs.Body.List) == 0 {
		return true
	}
	for _, stmt := range rs.Body.List {
		if !orderIndependentStmt(pass, stmt, keyObjs) {
			return false
		}
	}
	return true
}

// rangeVarObjs returns the objects bound by the range statement's key/value.
func rangeVarObjs(pass *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	objs := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if o := pass.TypesInfo.ObjectOf(id); o != nil {
				objs[o] = true
			}
		}
	}
	return objs
}

func orderIndependentStmt(pass *Pass, stmt ast.Stmt, keyObjs map[types.Object]bool) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		// n++ / n-- on an integer counter commutes.
		return isIntegerType(pass.TypesInfo.TypeOf(s.X))
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative integer accumulation of a loop-local value.
			return isIntegerType(pass.TypesInfo.TypeOf(s.Lhs[0])) && onlySimpleOperand(pass, s.Rhs[0], keyObjs)
		case token.ASSIGN:
			// Disjoint per-key write: target[k] = <simple>, with k the
			// iteration key (distinct per iteration, so writes never alias).
			ix, ok := s.Lhs[0].(*ast.IndexExpr)
			if !ok {
				return false
			}
			id, ok := ix.Index.(*ast.Ident)
			if !ok || !keyObjs[pass.TypesInfo.ObjectOf(id)] {
				return false
			}
			return onlySimpleOperand(pass, s.Rhs[0], keyObjs)
		}
		return false
	case *ast.ExprStmt:
		// delete(target, k): removals at distinct keys commute.
		call, ok := s.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fid, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		if b, ok := pass.TypesInfo.ObjectOf(fid).(*types.Builtin); !ok || b.Name() != "delete" {
			return false
		}
		id, ok := call.Args[1].(*ast.Ident)
		return ok && keyObjs[pass.TypesInfo.ObjectOf(id)]
	}
	return false
}

// onlySimpleOperand reports whether e is an iteration variable, a constant,
// or a selector/unary chain over those — expressions whose evaluation cannot
// observe iteration order.
func onlySimpleOperand(pass *Pass, e ast.Expr, keyObjs map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if keyObjs[pass.TypesInfo.ObjectOf(e)] {
			return true
		}
		tv, ok := pass.TypesInfo.Types[e]
		return ok && tv.Value != nil
	case *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		// v.Field of an iteration variable.
		return onlySimpleOperand(pass, e.X, keyObjs)
	case *ast.UnaryExpr:
		return onlySimpleOperand(pass, e.X, keyObjs)
	case *ast.ParenExpr:
		return onlySimpleOperand(pass, e.X, keyObjs)
	}
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sortedAfterCollect recognizes the collect-then-sort idiom: the loop body
// only appends to a single slice, and that slice is later passed to a
// sort.* / slices.Sort* call in the same function body, before any other
// use.
func sortedAfterCollect(pass *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	target := collectTarget(pass, rs.Body.List, nil)
	if target == nil {
		return false
	}
	// Find the first post-loop mention of target: it must be the argument
	// of a sorting call (possibly through a conversion like sort.Sort(byX(s))
	// or an address-of).
	sorted := false
	decided := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if decided || n == nil || n.End() <= rs.End() {
			return !decided
		}
		if call, ok := n.(*ast.CallExpr); ok && isSortCall(pass, call) && callMentions(pass, call, target) {
			sorted = true
			decided = true
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == target {
			// First use is not a sort: the unsorted collection escaped.
			decided = true
			return false
		}
		return true
	})
	return sorted
}

// collectTarget returns the single slice variable every statement appends
// to, or nil if the body does anything else. Nested if-guards around the
// append are accepted.
func collectTarget(pass *Pass, stmts []ast.Stmt, target types.Object) types.Object {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return nil
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return nil
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call.Fun, "append") {
				return nil
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil || (target != nil && obj != target) {
				return nil
			}
			if len(call.Args) == 0 {
				return nil
			}
			if aid, ok := call.Args[0].(*ast.Ident); !ok || pass.TypesInfo.ObjectOf(aid) != obj {
				return nil
			}
			target = obj
		case *ast.IfStmt:
			if s.Init != nil || s.Else != nil {
				return nil
			}
			target = collectTarget(pass, s.Body.List, target)
			if target == nil {
				return nil
			}
		default:
			return nil
		}
	}
	return target
}

func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == name
}

// isSortCall reports whether call invokes a sorting function: the package
// sort / slices entry points, or a same-module helper whose name starts
// with "sort" (e.g. graph.sortNodeIDs) — naming the helper after what it
// does is the convention that keeps the analyzer readable at call sites.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		if id, ok := call.Fun.(*ast.Ident); ok {
			if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
				lower := strings.ToLower(fn.Name())
				return strings.HasPrefix(lower, "sort")
			}
		}
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort":
		switch obj.Name() {
		case "Strings", "Ints", "Float64s", "Sort", "Stable", "Slice", "SliceStable":
			return true
		}
	case "slices":
		switch obj.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// callMentions reports whether any argument of call references obj, looking
// through conversions, address-of and field selections.
func callMentions(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
			return !found
		})
	}
	return found
}
