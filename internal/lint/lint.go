// Package lint is the project-specific static-analysis suite behind
// cmd/amacvet: five analyzers that enforce, at compile time, the invariants
// every runtime gate in this repo (golden traces, shards-N diffs, warm-vs-cold
// equality, alloc ceilings) can only spot-check — determinism of iteration
// order, seeded randomness, allocation-free hot paths, boxing only at
// Payload.Value, and pooled-event tenancy.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, per-position diagnostics) but is self-contained on the
// standard library: the build environment pins no external modules, so the
// loader drives `go list -json` plus go/types directly instead of depending
// on x/tools. If the module ever grows an x/tools dependency the analyzers
// port over mechanically — each Run takes the same (files, types.Info,
// types.Package) triple a real analysis.Pass carries.
//
// # Suppression
//
// Every analyzer honors a line-scoped escape hatch:
//
//	//lint:<analyzer> <reason>
//
// placed either at the end of the offending line or alone on the line
// directly above it. The reason is mandatory; a bare //lint:<analyzer> is
// itself reported, so every silenced diagnostic carries its justification in
// the source. Hot-path functions opt in to the hotalloc analyzer with an
//
//	//amac:hotpath
//
// line in their doc comment (see hotalloc.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named static check. Run inspects a single type-checked
// package through the Pass and reports diagnostics; analyzers are stateless
// across packages.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:<name>
	// suppression comments. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description `amacvet -list` prints.
	Doc string
	// Run performs the check. It reports findings via pass.Reportf and
	// returns an error only for internal failures (which abort the whole
	// amacvet run, like a crashed vet pass would).
	Run func(pass *Pass) error
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzers is the amacvet suite in the order diagnostics are attributed.
var Analyzers = []*Analyzer{
	MapIter,
	WallClock,
	HotAlloc,
	PayloadBox,
	PooledHandle,
}

// AnalyzerNames returns the suite's names, in suite order.
func AnalyzerNames() []string {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	return names
}

// RunAnalyzers runs each analyzer over each package and returns the
// surviving diagnostics sorted by position: suppressed findings are dropped,
// and malformed suppressions (no reason) are themselves reported. Packages
// are expected to be the analysis roots (loaded with type info), not the
// dependency closure.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Types == nil || pkg.Info == nil {
			return nil, fmt.Errorf("lint: package %s loaded without type info", pkg.Path)
		}
		sup := collectSuppressions(pkg)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		out = append(out, sup.filter(raw)...)
		out = append(out, sup.malformed...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}

// suppressions indexes //lint:<name> comments by (file, line, analyzer).
type suppressions struct {
	// byLine maps filename -> line -> analyzer names suppressed on that line.
	byLine    map[string]map[int]map[string]bool
	malformed []Diagnostic
}

const suppressPrefix = "lint:"

// collectSuppressions scans a package's comments. A suppression covers the
// line it sits on; a comment alone on its line also covers the next line, so
// both trailing and standalone-above placements work.
func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int]map[string]bool)}
	known := make(map[string]bool, len(Analyzers))
	for _, a := range Analyzers {
		known[a.Name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, suppressPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, suppressPrefix)
				name, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				if !known[name] {
					// Unknown analyzer names are reported rather than
					// silently ignored: a typo'd suppression must not look
					// like it worked.
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "amacvet",
						Message:  fmt.Sprintf("//lint:%s does not name an amacvet analyzer (have %s)", name, strings.Join(AnalyzerNames(), ", ")),
					})
					continue
				}
				if strings.TrimSpace(reason) == "" {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "amacvet",
						Message:  fmt.Sprintf("//lint:%s suppression requires a reason", name),
					})
					continue
				}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s.byLine[pos.Filename] = lines
				}
				mark := func(line int) {
					if lines[line] == nil {
						lines[line] = make(map[string]bool)
					}
					lines[line][name] = true
				}
				mark(pos.Line)
				if standsAlone(pkg.Fset, f, c) {
					mark(pos.Line + 1)
				}
			}
		}
	}
	return s
}

// standsAlone reports whether comment c is the first token on its line, i.e.
// not trailing any code.
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	tf := fset.File(c.Pos())
	if tf == nil {
		return false
	}
	lineStart := tf.LineStart(pos.Line)
	// Walk the AST for any node that begins on the same line before the
	// comment. Cheap enough: suppressions are rare.
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if _, isFile := n.(*ast.File); !isFile {
			if n.Pos() >= c.Pos() {
				return false
			}
			if fset.Position(n.Pos()).Line == pos.Line {
				alone = false
				return false
			}
		}
		// Recurse only into nodes that reach the comment's line.
		return n.End() > lineStart
	})
	return alone
}

func (s *suppressions) filter(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if lines := s.byLine[d.Pos.Filename]; lines != nil && lines[d.Pos.Line][d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}
