package core

import (
	"fmt"

	"amac/internal/mac"
	"amac/internal/sim"
)

// Payload kinds for every message this package's algorithms broadcast or
// emit. Each registration pairs the kind with a boxer that reconstructs the
// exact dynamic value the old `any` path carried, so Payload.Value() — and
// therefore every rendered trace — is byte-identical to the boxed
// representation, while the hot path moves plain structs of scalars.
var (
	// msgKind encodes Msg: A = ID, B = Origin.
	msgKind = sim.RegisterPayloadKind(func(p sim.Payload) any {
		return Msg{ID: int(p.A), Origin: mac.NodeID(p.B)}
	})
	// pollKind encodes pollPayload: A = From.
	pollKind = sim.RegisterPayloadKind(func(p sim.Payload) any {
		return pollPayload{From: mac.NodeID(p.A)}
	})
	// gatherMsgKind encodes gatherMsgPayload: A = M.ID, B = M.Origin, C = From.
	gatherMsgKind = sim.RegisterPayloadKind(func(p sim.Payload) any {
		return gatherMsgPayload{M: Msg{ID: int(p.A), Origin: mac.NodeID(p.B)}, From: mac.NodeID(p.C)}
	})
	// gatherAckKind encodes gatherAckPayload: A = M.ID, B = M.Origin, C = From.
	gatherAckKind = sim.RegisterPayloadKind(func(p sim.Payload) any {
		return gatherAckPayload{M: Msg{ID: int(p.A), Origin: mac.NodeID(p.B)}, From: mac.NodeID(p.C)}
	})
	// spreadKind encodes spreadPayload: A = M.ID, B = M.Origin, C = From.
	spreadKind = sim.RegisterPayloadKind(func(p sim.Payload) any {
		return spreadPayload{M: Msg{ID: int(p.A), Origin: mac.NodeID(p.B)}, From: mac.NodeID(p.C)}
	})
	// electKind encodes electPayload: A = Bits (reinterpreted), B = Phase.
	electKind = sim.RegisterPayloadKind(func(p sim.Payload) any {
		return electPayload{Bits: uint64(p.A), Phase: int(p.B)}
	})
	// announceKind encodes announcePayload: A = From.
	announceKind = sim.RegisterPayloadKind(func(p sim.Payload) any {
		return announcePayload{From: mac.NodeID(p.A)}
	})
)

// Payload returns the typed representation of m.
func (m Msg) Payload() mac.Payload {
	return mac.Payload{Kind: msgKind, A: int64(m.ID), B: int64(m.Origin)}
}

// MsgFromPayload decodes a Msg payload, reporting whether p carries one.
func MsgFromPayload(p mac.Payload) (Msg, bool) {
	if p.Kind != msgKind {
		return Msg{}, false
	}
	return Msg{ID: int(p.A), Origin: mac.NodeID(p.B)}, true
}

// mustMsg decodes a Msg payload, panicking on any other kind — the typed
// equivalent of the old payload.(Msg) assertion.
func mustMsg(p mac.Payload) Msg {
	m, ok := MsgFromPayload(p)
	if !ok {
		panic(fmt.Sprintf("core: payload kind %d is not a Msg", p.Kind))
	}
	return m
}

func (p pollPayload) payload() mac.Payload {
	return mac.Payload{Kind: pollKind, A: int64(p.From)}
}

func (p gatherMsgPayload) payload() mac.Payload {
	return mac.Payload{Kind: gatherMsgKind, A: int64(p.M.ID), B: int64(p.M.Origin), C: int64(p.From)}
}

func (p gatherAckPayload) payload() mac.Payload {
	return mac.Payload{Kind: gatherAckKind, A: int64(p.M.ID), B: int64(p.M.Origin), C: int64(p.From)}
}

func (p spreadPayload) payload() mac.Payload {
	return mac.Payload{Kind: spreadKind, A: int64(p.M.ID), B: int64(p.M.Origin), C: int64(p.From)}
}

func (p electPayload) payload() mac.Payload {
	return mac.Payload{Kind: electKind, A: int64(p.Bits), B: int64(p.Phase)}
}

func (p announcePayload) payload() mac.Payload {
	return mac.Payload{Kind: announceKind, A: int64(p.From)}
}
