package core

import (
	"math"

	"amac/internal/mac"
)

// Gather/spread payload types (Sections 4.3, 4.4). Each carries at most one
// MMB message.

// pollPayload is round 1 of a gather period: an active MIS node announcing
// itself.
type pollPayload struct {
	From mac.NodeID
}

// gatherMsgPayload is round 2 of a gather period: a non-MIS node handing a
// message it still owns to a polling MIS neighbor.
type gatherMsgPayload struct {
	M    Msg
	From mac.NodeID
}

// gatherAckPayload is round 3 of a gather period: an MIS node confirming it
// now owns M.
type gatherAckPayload struct {
	M    Msg
	From mac.NodeID
}

// spreadPayload carries one message through the overlay local-broadcast
// procedure: an active MIS node's broadcast in round 1, or a relay in
// rounds 2/3 of a spread period.
type spreadPayload struct {
	M    Msg
	From mac.NodeID
}

// FMMBConfig parameterizes FMMB (Section 4). Nodes know the network size
// n, the grey-zone constant c, a diameter bound D and the message count k:
// the paper's fixed-length subroutine schedules are stated in terms of
// these quantities, so the simulated nodes receive them as inputs (see
// DESIGN.md; the harness never leaks runtime state to nodes).
type FMMBConfig struct {
	// N is the network size.
	N int
	// K is the number of MMB messages.
	K int
	// D is an upper bound on the diameter of G.
	D int
	// C is the grey zone constant (c ≥ 1).
	C float64
	// MIS configures the first stage; its N and C are overwritten from
	// this config.
	MIS MISConfig
	// GatherPeriods is the number of 3-round gather periods; 0 selects
	// ⌈2c²⌉·(k + ⌈log n⌉).
	GatherPeriods int
	// ActiveProb is the MIS-node activation probability in gather and
	// spread periods; 0 selects 1/(2c²) capped at 1/2.
	ActiveProb float64
	// SpreadPeriods is the number of 3-round periods in one run of the
	// overlay local-broadcast procedure; 0 selects ⌈2c²⌉·⌈log n⌉.
	SpreadPeriods int
	// SpreadPhases is the number of local-broadcast phases; 0 selects
	// D + k + 2 (the overlay diameter D_H is at most D).
	SpreadPhases int
}

// withDefaults resolves zero fields.
func (c FMMBConfig) withDefaults() FMMBConfig {
	if c.N < 1 {
		panic("core: FMMBConfig.N must be >= 1")
	}
	if c.C < 1 {
		c.C = 1
	}
	if c.K < 1 {
		c.K = 1
	}
	if c.D < 1 {
		c.D = 1
	}
	c.MIS.N = c.N
	c.MIS.C = c.C
	c.MIS = c.MIS.withDefaults()
	ln := Log2Ceil(c.N)
	if ln < 1 {
		ln = 1
	}
	c2i := int(math.Ceil(2 * c.C * c.C))
	if c.GatherPeriods == 0 {
		c.GatherPeriods = 2 * c2i * (c.K + ln)
	}
	if c.ActiveProb == 0 {
		c.ActiveProb = 1 / (2 * c.C * c.C)
		if c.ActiveProb > 0.25 {
			c.ActiveProb = 0.25
		}
	}
	if c.SpreadPeriods == 0 {
		c.SpreadPeriods = c2i * ln
	}
	if c.SpreadPhases == 0 {
		// D_H + k pipelining phases (Lemma 4.8) plus w.h.p. slack for
		// retried phases (see endPhase).
		c.SpreadPhases = c.D + c.K + 4 + ln
	}
	return c
}

// Resolved returns a copy of the config with every defaulted field filled
// in, so harnesses can compute stage boundaries (MIS end, gather end)
// without duplicating the default formulas.
func (c FMMBConfig) Resolved() FMMBConfig { return c.withDefaults() }

// Rounds returns the total number of Fprog rounds of the FMMB schedule.
func (c FMMBConfig) Rounds() int {
	rc := c.withDefaults()
	return rc.MIS.Rounds() + 3*rc.GatherPeriods + rc.SpreadPhases*rc.SpreadPeriods*3
}

// FMMB is the Fast Multi-Message Broadcast automaton of Section 4. It
// requires the enhanced abstract MAC layer: time is divided into lock-step
// rounds of length Fprog (a broadcast starts at a round's beginning and is
// aborted at its end if not yet acknowledged), which needs timers, abort,
// and knowledge of Fprog. The schedule is:
//
//  1. MIS construction (Section 4.2) — Rounds() of MISConfig.
//  2. Message gathering (Section 4.3) — GatherPeriods periods of 3 rounds:
//     poll, hand-over, acknowledge. Afterwards every message is owned by
//     an MIS node w.h.p.
//  3. Overlay spreading (Section 4.4) — SpreadPhases runs of the overlay
//     local-broadcast procedure; in each phase an MIS node injects one
//     not-yet-sent message and relays carry it three hops, implementing a
//     pipelined BMMB over the overlay graph H.
//
// Every node performs the MMB deliver(m) output the first time it sees m
// in any payload.
type FMMB struct {
	cfg   FMMBConfig
	mis   *misState
	round int
	gSet  map[mac.NodeID]bool

	delivered map[Msg]bool

	// Gather state.
	owned  []Msg // messages this node still owns (non-MIS hand-over list)
	polled bool  // heard a poll from a G-neighbor in round 1 of the period
	ackOut *Msg  // message an MIS node must acknowledge in round 3

	// Spread state.
	have      map[Msg]bool // Mv: messages an MIS node holds
	sent      map[Msg]bool // M'v: messages already injected into a phase
	inbox     []Msg        // received this period, merged at period end
	cur       *Msg         // message injected this phase
	curAcked  bool         // some broadcast of cur was acknowledged
	curActive bool         // active in the current period
	relay     *Msg         // message to relay in the next round
}

var (
	_ mac.Automaton    = (*FMMB)(nil)
	_ mac.Arriver      = (*FMMB)(nil)
	_ mac.TimerHandler = (*FMMB)(nil)
	_ mac.Resettable   = (*FMMB)(nil)
)

// NewFMMB returns a fresh FMMB process.
func NewFMMB(cfg FMMBConfig) *FMMB {
	rc := cfg.withDefaults()
	return &FMMB{
		cfg:       rc,
		mis:       newMISState(rc.MIS),
		delivered: make(map[Msg]bool),
		have:      make(map[Msg]bool),
		sent:      make(map[Msg]bool),
	}
}

// Reset implements mac.Resettable: every stage's state returns to its
// initial value (the resolved config is kept), clearing rather than
// reallocating the maps and slices so reused fleets run allocation-free.
func (f *FMMB) Reset() {
	*f.mis = misState{cfg: f.mis.cfg}
	f.round = 0
	if f.gSet != nil {
		clear(f.gSet)
	}
	clear(f.delivered)
	f.owned = f.owned[:0]
	f.polled = false
	f.ackOut = nil
	clear(f.have)
	clear(f.sent)
	f.inbox = f.inbox[:0]
	f.cur = nil
	f.curAcked = false
	f.curActive = false
	f.relay = nil
}

// Reconfigure rebinds a pooled FMMB process to a new (resolved) config
// without reallocating its state: fleet pools use it to adapt a same-size
// fleet built for an earlier topology draw to the current one. Callers
// Reset() afterwards; the result is observably identical to NewFMMB(cfg).
func (f *FMMB) Reconfigure(cfg FMMBConfig) {
	rc := cfg.withDefaults()
	f.cfg = rc
	f.mis.cfg = rc.MIS
}

// NewFMMBFleet returns one FMMB automaton per node.
func NewFMMBFleet(n int, cfg FMMBConfig) []mac.Automaton {
	out := make([]mac.Automaton, n)
	for i := range out {
		out[i] = NewFMMB(cfg)
	}
	return out
}

// InMIS reports whether the node joined the MIS (valid after stage 1).
func (f *FMMB) InMIS() bool { return f.mis.InMIS }

// Holds reports whether the node holds m in its message set.
func (f *FMMB) Holds(m Msg) bool { return f.have[m] }

// Wakeup implements mac.Automaton. The G-neighbor set map is kept across
// Reset and refilled here, so warm-fleet wakeups allocate nothing.
func (f *FMMB) Wakeup(ctx mac.Context) {
	if f.gSet == nil {
		f.gSet = make(map[mac.NodeID]bool, len(ctx.GNeighbors()))
	}
	for _, v := range ctx.GNeighbors() {
		f.gSet[v] = true
	}
	f.startRound(ctx.(mac.EnhancedContext))
}

// Arrive implements mac.Arriver: the environment injects a message at time
// zero, before any broadcast activity.
func (f *FMMB) Arrive(ctx mac.Context, payload mac.Payload) {
	m := mustMsg(payload)
	f.deliver(ctx, m)
	f.owned = append(f.owned, m)
	f.have[m] = true
}

// Timer implements mac.TimerHandler: each tick is a round boundary.
func (f *FMMB) Timer(ctx mac.EnhancedContext, _ any) {
	ctx.Abort()
	f.round++
	f.startRound(ctx)
}

func (f *FMMB) deliver(ctx mac.Context, m Msg) {
	if f.delivered[m] {
		return
	}
	f.delivered[m] = true
	ctx.Emit(DeliverKind, m.Payload())
}

// stage boundaries in round indices.
func (f *FMMB) misRounds() int    { return f.cfg.MIS.Rounds() }
func (f *FMMB) gatherRounds() int { return 3 * f.cfg.GatherPeriods }

func (f *FMMB) startRound(ctx mac.EnhancedContext) {
	total := f.cfg.Rounds()
	if f.round >= total {
		return
	}
	ctx.SetTimer(ctx.Fprog(), nil)

	switch {
	case f.round < f.misRounds():
		f.mis.startRound(ctx, f.round)
	case f.round < f.misRounds()+f.gatherRounds():
		f.startGatherRound(ctx, f.round-f.misRounds())
	default:
		f.startSpreadRound(ctx, f.round-f.misRounds()-f.gatherRounds())
	}
}

// --- Gather (Section 4.3) ---

func (f *FMMB) startGatherRound(ctx mac.EnhancedContext, g int) {
	switch g % 3 {
	case 0: // Poll: active MIS nodes announce themselves.
		f.polled = false
		f.ackOut = nil
		if f.mis.InMIS && ctx.Rand().Float64() < f.cfg.ActiveProb {
			ctx.Bcast(pollPayload{From: ctx.ID()}.payload())
		}
	case 1: // Hand-over: polled non-MIS owners send one owned message.
		if !f.mis.InMIS && f.polled && len(f.owned) > 0 {
			ctx.Bcast(gatherMsgPayload{M: f.owned[0], From: ctx.ID()}.payload())
		}
	case 2: // Acknowledge: MIS nodes confirm what they took.
		if f.mis.InMIS && f.ackOut != nil {
			ctx.Bcast(gatherAckPayload{M: *f.ackOut, From: ctx.ID()}.payload())
		}
	}
}

func (f *FMMB) onGatherRecv(ctx mac.Context, m mac.Message, g int, fromG bool) {
	switch m.Payload.Kind {
	case pollKind:
		if g%3 == 0 && fromG && !f.mis.InMIS {
			f.polled = true
		}
	case gatherMsgKind:
		mm := Msg{ID: int(m.Payload.A), Origin: mac.NodeID(m.Payload.B)}
		f.deliver(ctx, mm)
		if g%3 == 1 && fromG && f.mis.InMIS {
			if !f.have[mm] {
				f.have[mm] = true
				ctx.Emit("gather-own", mm.Payload())
			}
			f.ackOut = &mm
		}
	case gatherAckKind:
		mm := Msg{ID: int(m.Payload.A), Origin: mac.NodeID(m.Payload.B)}
		f.deliver(ctx, mm)
		if g%3 == 2 && fromG && !f.mis.InMIS {
			f.dropOwned(mm)
		}
	}
}

func (f *FMMB) dropOwned(m Msg) {
	for i, o := range f.owned {
		if o == m {
			f.owned = append(f.owned[:i], f.owned[i+1:]...)
			return
		}
	}
}

// --- Spread (Section 4.4) ---

func (f *FMMB) startSpreadRound(ctx mac.EnhancedContext, s int) {
	perPhase := f.cfg.SpreadPeriods * 3
	within := s % perPhase
	pr := within % 3

	if within == 0 {
		// Phase start: commit the previous phase's injection and select
		// the next unsent message (Lemma 4.8's pipelining).
		f.endPhase()
		f.cur = f.pickUnsent()
		f.curAcked = false
		if f.cur != nil {
			ctx.Emit("spread-inject", f.cur.Payload())
		}
	}
	if pr == 0 {
		// Period start: merge last period's inbox, roll activation.
		f.mergeInbox()
		f.curActive = f.mis.InMIS && ctx.Rand().Float64() < f.cfg.ActiveProb
		f.relay = nil
		if f.curActive && f.cur != nil {
			ctx.Bcast(spreadPayload{M: *f.cur, From: ctx.ID()}.payload())
			return
		}
	}
	if pr > 0 && f.relay != nil {
		m := *f.relay
		f.relay = nil
		ctx.Bcast(spreadPayload{M: m, From: ctx.ID()}.payload())
	}
}

// endPhase commits the injected message to the sent set — but only when at
// least one of its broadcasts this phase was acknowledged, which proves all
// reliable neighbors received it. An unlucky phase (never active, or every
// broadcast collided) is retried, which only strengthens Lemma 4.8's
// pipelining invariant at the cost of slack phases (SpreadPhases includes
// headroom for this).
func (f *FMMB) endPhase() {
	f.mergeInbox()
	if f.cur != nil && f.curAcked {
		f.sent[*f.cur] = true
	}
	f.cur = nil
}

// mergeInbox folds messages received during the finished period into the
// node's message set.
func (f *FMMB) mergeInbox() {
	for _, m := range f.inbox {
		f.have[m] = true
	}
	f.inbox = f.inbox[:0]
}

// pickUnsent returns the smallest-ID held message not yet injected, or nil.
// A single min-scan replaces the old collect-and-sort: one allocation-free
// O(|have|) pass per phase instead of O(|have| log |have|) plus a slice.
func (f *FMMB) pickUnsent() *Msg {
	if !f.mis.InMIS {
		return nil
	}
	var best Msg
	found := false
	//lint:mapiter min-scan under the total (ID, Origin) order — Msg has no other fields, so the result is independent of visit order
	for m := range f.have {
		if f.sent[m] {
			continue
		}
		if !found || m.ID < best.ID || (m.ID == best.ID && m.Origin < best.Origin) {
			best = m
			found = true
		}
	}
	if !found {
		return nil
	}
	return &best
}

func (f *FMMB) onSpreadRecv(ctx mac.Context, m mac.Message, s int, fromG bool) {
	if m.Payload.Kind != spreadKind {
		return
	}
	mm := Msg{ID: int(m.Payload.A), Origin: mac.NodeID(m.Payload.B)}
	f.deliver(ctx, mm)
	pr := (s % (f.cfg.SpreadPeriods * 3)) % 3
	if fromG && pr < 2 {
		// Relay in the next round of this period (rounds 2 and 3 relay
		// what arrived in rounds 1 and 2).
		f.relay = &mm
	}
	if f.mis.InMIS {
		f.inbox = append(f.inbox, mm)
	}
}

// Recv implements mac.Automaton, dispatching on the current stage.
func (f *FMMB) Recv(ctx mac.Context, m mac.Message) {
	fromG := f.gSet[m.Sender]
	switch {
	case f.round < f.misRounds():
		f.mis.onRecv(ctx, m, fromG)
	case f.round < f.misRounds()+f.gatherRounds():
		f.onGatherRecv(ctx, m, f.round-f.misRounds(), fromG)
	default:
		f.onSpreadRecv(ctx, m, f.round-f.misRounds()-f.gatherRounds(), fromG)
	}
}

// Acked implements mac.Automaton: an acknowledged spread broadcast of the
// current phase message confirms reliable-neighborhood delivery.
func (f *FMMB) Acked(_ mac.Context, m mac.Message) {
	if m.Payload.Kind != spreadKind || f.cur == nil {
		return
	}
	if (Msg{ID: int(m.Payload.A), Origin: mac.NodeID(m.Payload.B)}) == *f.cur {
		f.curAcked = true
	}
}
