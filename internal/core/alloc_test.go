package core

import (
	"testing"

	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/topology"
)

// TestBMMBFloodAllocationBudget is the allocation-regression guard for the
// whole simulator stack: a small BMMB flood, including engine construction,
// must stay within a fixed allocation budget. At the time of writing a run
// costs ~490 allocations (nearly all one-time setup: fleet, node states,
// instance records) for ~93 events; the budget below has headroom for
// toolchain drift but fails if the hot path regresses to allocating per
// event again (un-pooled events, trace records, or map traffic per
// delivery would each add hundreds).
func TestBMMBFloodAllocationBudget(t *testing.T) {
	const budget = 700
	d := topology.Line(16)
	run := func() *Result {
		return MustRun(RunConfig{
			Dual:             d,
			Fack:             200,
			Fprog:            10,
			Scheduler:        &sched.Sync{},
			Seed:             7,
			Assignment:       SingleSource(16, 0, 2),
			Automata:         NewBMMBFleet(16),
			HaltOnCompletion: true,
			Options:          RunOptions{Trace: TraceOff},
		})
	}
	if res := run(); !res.Solved {
		t.Fatalf("flood not solved: %d/%d", res.Delivered, res.Required)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if !run().Solved {
			t.Fatal("flood not solved")
		}
	})
	if allocs > budget {
		t.Fatalf("BMMB flood allocates %.0f times per run, budget %d", allocs, budget)
	}
}

// TestWarmArenaTrialAllocations is the warm-path regression guard: the
// second and later trials of a pinned topology on a core.Runner must do
// zero fleet-construction allocations. Fleet reset is asserted exactly
// zero; the full warm run is held to a budget calibrated so that any
// reconstruction — automata (~2n allocs for a BMMB fleet), node states
// (n), instance records or delivery rows (one per broadcast) — blows it
// immediately. Since payloads moved to typed scalars (no per-event
// boxing) and BMMB's queue stopped shrinking its backing array across
// runs, a warm 64-node, k=2 flood costs ~8 allocations — the Result
// record plus per-run workload resolution; a cold run of the same
// configuration costs ~1100.
func TestWarmArenaTrialAllocations(t *testing.T) {
	const (
		n          = 64
		warmBudget = 24
	)
	d := topology.Line(n)
	assignment := SingleSource(n, 0, 2)
	fleet := NewBMMBFleet(n)
	scheduler := &sched.Sync{}
	rn := NewRunner(d)

	warmRun := func() {
		for _, a := range fleet {
			a.(mac.Resettable).Reset()
		}
		res, err := rn.Run(RunConfig{
			Dual:             d,
			Fack:             200,
			Fprog:            10,
			Scheduler:        scheduler,
			Seed:             7,
			Assignment:       assignment,
			Automata:         fleet,
			HaltOnCompletion: true,
			Options:          RunOptions{Trace: TraceOff},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solved {
			t.Fatalf("flood not solved: %d/%d", res.Delivered, res.Required)
		}
	}
	warmRun() // fill the arena pools

	if allocs := testing.AllocsPerRun(20, func() {
		for _, a := range fleet {
			a.(mac.Resettable).Reset()
		}
	}); allocs != 0 {
		t.Fatalf("fleet reset allocates %.0f times, want 0", allocs)
	}

	warm := testing.AllocsPerRun(20, warmRun)
	if warm > warmBudget {
		t.Fatalf("warm-arena trial allocates %.0f times per run, budget %d (fleet or engine construction crept back in)",
			warm, warmBudget)
	}

	cold := testing.AllocsPerRun(20, func() {
		res := MustRun(RunConfig{
			Dual:             d,
			Fack:             200,
			Fprog:            10,
			Scheduler:        &sched.Sync{},
			Seed:             7,
			Assignment:       assignment,
			Automata:         NewBMMBFleet(n),
			HaltOnCompletion: true,
			Options:          RunOptions{Trace: TraceOff},
		})
		if !res.Solved {
			t.Fatal("flood not solved")
		}
	})
	if warm >= cold/2 {
		t.Fatalf("warm trial allocates %.0f times vs %.0f cold — arena reuse is not amortizing construction", warm, cold)
	}
}
