package core

import (
	"testing"

	"amac/internal/sched"
	"amac/internal/topology"
)

// TestBMMBFloodAllocationBudget is the allocation-regression guard for the
// whole simulator stack: a small BMMB flood, including engine construction,
// must stay within a fixed allocation budget. At the time of writing a run
// costs ~490 allocations (nearly all one-time setup: fleet, node states,
// instance records) for ~93 events; the budget below has headroom for
// toolchain drift but fails if the hot path regresses to allocating per
// event again (un-pooled events, trace records, or map traffic per
// delivery would each add hundreds).
func TestBMMBFloodAllocationBudget(t *testing.T) {
	const budget = 700
	d := topology.Line(16)
	run := func() *Result {
		return MustRun(RunConfig{
			Dual:             d,
			Fack:             200,
			Fprog:            10,
			Scheduler:        &sched.Sync{},
			Seed:             7,
			Assignment:       SingleSource(16, 0, 2),
			Automata:         NewBMMBFleet(16),
			HaltOnCompletion: true,
			NoTrace:          true,
		})
	}
	if res := run(); !res.Solved {
		t.Fatalf("flood not solved: %d/%d", res.Delivered, res.Required)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if !run().Solved {
			t.Fatal("flood not solved")
		}
	})
	if allocs > budget {
		t.Fatalf("BMMB flood allocates %.0f times per run, budget %d", allocs, budget)
	}
}
