package core

import (
	"errors"
	"fmt"

	"amac/internal/sim"
)

// TraceMode selects how a run records its execution trace.
type TraceMode int

const (
	// TraceMemory (the default) keeps the full trace in memory on
	// Result.Trace. Required when Check is set: checkers replay the
	// recorded events.
	TraceMemory TraceMode = iota
	// TraceStream appends every event to RunOptions.Sink as it happens and
	// keeps nothing in memory — the path for networks whose trace cannot be
	// held in RAM (pair with a sim.TraceWriter).
	TraceStream
	// TraceOff disables trace recording entirely — the throughput fast
	// path. Watchers attached by the runner still observe events.
	TraceOff
)

// String returns the scenario-JSON spelling of the mode.
func (m TraceMode) String() string {
	switch m {
	case TraceMemory:
		return "memory"
	case TraceStream:
		return "stream"
	case TraceOff:
		return "off"
	default:
		return fmt.Sprintf("TraceMode(%d)", int(m))
	}
}

// ParseTraceMode parses the scenario-JSON spelling of a trace mode.
func ParseTraceMode(s string) (TraceMode, error) {
	switch s {
	case "", "memory":
		return TraceMemory, nil
	case "stream":
		return TraceStream, nil
	case "off":
		return TraceOff, nil
	default:
		return 0, fmt.Errorf("unknown trace mode %q (want memory, stream, or off)", s)
	}
}

// RunOptions is the unified observation/verification/parallelism block of a
// RunConfig. It replaces the former NoTrace/Sink/Check trio whose
// interactions were silent-precedence prose; illegal combinations now fail
// validation with descriptive errors instead of being quietly reinterpreted.
type RunOptions struct {
	// Trace selects memory (default), stream, or off.
	Trace TraceMode
	// Sink receives every trace event when Trace is TraceStream. Required
	// then, forbidden otherwise.
	Sink sim.TraceSink
	// Check verifies the execution against the abstract MAC layer
	// guarantees and the MMB correctness conditions after the run. Requires
	// Trace == TraceMemory (checkers replay the recorded trace).
	Check bool
	// Shards enables the decomposed executor: the network is carved into
	// G′-component shards, each run on its own engine, with at most Shards
	// of them executing concurrently. 0 (the default) keeps the legacy
	// single-engine executor; any value ≥ 1 selects decomposed semantics,
	// whose output is a pure function of the configuration — byte-identical
	// at every shard count. A connected network degenerates to the legacy
	// execution, so for those the two semantics coincide exactly.
	Shards int
	// Regions, when > 1, additionally splits each run into contiguous node
	// regions executed optimistically in Fprog-sized time windows with
	// rollback on cross-region delivery — the path for single-component
	// giants. Requires Shards ≥ 1 and automata that implement
	// mac.Resettable. 0 or 1 disables windowing.
	Regions int
}

// Validate reports the first illegal combination, or nil.
func (o RunOptions) Validate() error {
	if o.Trace < TraceMemory || o.Trace > TraceOff {
		return fmt.Errorf("core: invalid trace mode %d", int(o.Trace))
	}
	if o.Trace == TraceStream && o.Sink == nil {
		return errors.New("core: Trace=stream requires a Sink")
	}
	if o.Trace != TraceStream && o.Sink != nil {
		return fmt.Errorf("core: Sink set but Trace=%s (only Trace=stream streams to a sink)", o.Trace)
	}
	if o.Check && o.Trace != TraceMemory {
		return fmt.Errorf("core: Check requires Trace=memory (checkers replay the in-memory trace), got Trace=%s", o.Trace)
	}
	if o.Shards < 0 {
		return fmt.Errorf("core: negative Shards %d", o.Shards)
	}
	if o.Regions < 0 {
		return fmt.Errorf("core: negative Regions %d", o.Regions)
	}
	if o.Regions > 1 && o.Shards < 1 {
		return errors.New("core: Regions > 1 requires Shards >= 1 (windowed execution is part of the decomposed executor)")
	}
	return nil
}
