package core

import (
	"sort"

	"amac/internal/graph"
	"amac/internal/sim"
)

// Arrival is one timed environment injection for the online (dynamic)
// variant of MMB mentioned in the paper (footnote 4) and studied in [30]:
// messages arrive during the execution rather than all at time zero. BMMB
// handles this regime unchanged — its guarantees are per-message.
type Arrival struct {
	At   sim.Time
	Node graph.NodeID
	Msg  Msg
}

// Workload is a set of timed arrivals. The zero value is empty; build with
// Add or the generators below.
type Workload struct {
	arrivals []Arrival
	// sorted memoizes Arrivals(): workloads are built once and consulted
	// repeatedly (twice per run, once per trial of a warm sweep), so the
	// sort-and-copy happens once per mutation instead of per call.
	sorted []Arrival
}

// Add appends one arrival.
func (w *Workload) Add(at sim.Time, node graph.NodeID, m Msg) {
	w.arrivals = append(w.arrivals, Arrival{At: at, Node: node, Msg: m})
	w.sorted = nil
}

// K returns the number of messages.
func (w *Workload) K() int { return len(w.arrivals) }

// Arrivals returns the arrivals sorted by time (stable on insertion order).
// The returned slice is memoized and owned by the workload; callers must not
// mutate it.
func (w *Workload) Arrivals() []Arrival {
	if w.sorted == nil && len(w.arrivals) > 0 {
		out := append([]Arrival(nil), w.arrivals...)
		sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
		w.sorted = out
	}
	return w.sorted
}

// MaxAt returns the latest arrival time (0 when empty).
func (w *Workload) MaxAt() sim.Time {
	var max sim.Time
	for _, a := range w.arrivals {
		if a.At > max {
			max = a.At
		}
	}
	return max
}

// FromAssignment converts a time-zero assignment into a workload.
func FromAssignment(a Assignment) *Workload {
	w := &Workload{}
	for v, msgs := range a {
		for _, m := range msgs {
			w.Add(0, graph.NodeID(v), m)
		}
	}
	return w
}

// PoissonWorkload spreads k messages over the first `span` ticks at
// uniformly random times and nodes, drawn from rng-like integer hashing of
// the seed so workloads are reproducible without threading a *rand.Rand.
func PoissonWorkload(n, k int, span sim.Time, seed int64) *Workload {
	w := &Workload{}
	state := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < k; i++ {
		at := sim.Time(0)
		if span > 0 {
			at = sim.Time(next() % uint64(span))
		}
		node := graph.NodeID(next() % uint64(n))
		w.Add(at, node, Msg{ID: i, Origin: node})
	}
	return w
}
