package core

import (
	"math/rand"
	"testing"

	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

const (
	testFprog = sim.Time(10)
	testFack  = sim.Time(200)
)

// runBMMB executes BMMB on the dual with the given scheduler and
// assignment, with model checking enabled.
func runBMMB(t *testing.T, d *topology.Dual, s mac.Scheduler, a Assignment, seed int64) *Result {
	t.Helper()
	res := MustRun(RunConfig{
		Dual:             d,
		Fack:             testFack,
		Fprog:            testFprog,
		Scheduler:        s,
		Seed:             seed,
		Assignment:       a,
		Automata:         NewBMMBFleet(d.N()),
		HaltOnCompletion: true,
		Options:          RunOptions{Check: true},
	})
	if len(res.MMBViolations) != 0 {
		t.Fatalf("MMB violations: %v", res.MMBViolations)
	}
	if res.Report != nil && !res.Report.OK() {
		t.Fatalf("model violations: %v", res.Report.Violations[0])
	}
	return res
}

func TestBMMBSingleMessageLineSync(t *testing.T) {
	d := topology.Line(10)
	res := runBMMB(t, d, &sched.Sync{}, SingleSource(10, 0, 1), 1)
	if !res.Solved {
		t.Fatalf("not solved: delivered %d/%d by %v", res.Delivered, res.Required, res.End)
	}
	// One message floods a line: each hop takes Fprog under Sync.
	want := sim.Time(9) * testFprog
	if res.CompletionTime != want {
		t.Fatalf("completion = %v, want %v", res.CompletionTime, want)
	}
}

func TestBMMBMultiMessageLineSync(t *testing.T) {
	n, k := 12, 5
	d := topology.Line(n)
	res := runBMMB(t, d, &sched.Sync{}, SingleSource(n, 0, k), 1)
	if !res.Solved {
		t.Fatal("not solved")
	}
	// Pipeline: source emits one message per Fack; last message then
	// floods D hops at Fprog each. Bound O(D·Fprog + k·Fack).
	bound := sim.Time(n-1)*testFprog + sim.Time(k)*testFack
	if res.CompletionTime > bound {
		t.Fatalf("completion %v exceeds O(DFprog+kFack) = %v", res.CompletionTime, bound)
	}
	// And it should genuinely take about (k-1) acks plus the flood.
	lower := sim.Time(k-1) * testFack
	if res.CompletionTime < lower {
		t.Fatalf("completion %v suspiciously below source serialization %v",
			res.CompletionTime, lower)
	}
}

func TestBMMBSchedulerMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	duals := []*topology.Dual{
		topology.Line(8),
		topology.Ring(9),
		topology.Star(8),
		topology.Grid(3, 4),
		topology.CompleteBinaryTree(15),
		topology.LineRRestricted(12, 3, 0.5, rng),
		topology.ArbitraryNoise(topology.Line(12).G, 6, rng, "noisy-line"),
	}
	makeScheds := func() []mac.Scheduler {
		return []mac.Scheduler{
			&sched.Sync{},
			&sched.Sync{Rel: sched.Always{}},
			&sched.Sync{Rel: sched.Bernoulli{P: 0.5}, AckDelay: testFprog},
			&sched.Random{},
			&sched.Random{Rel: sched.Bernoulli{P: 0.7}},
			&sched.Contention{},
			&sched.Contention{Rel: sched.Bernoulli{P: 0.5}},
		}
	}
	for _, d := range duals {
		for si := range makeScheds() {
			d, si := d, si
			t.Run(d.Name+"/"+makeScheds()[si].Name(), func(t *testing.T) {
				// Multi-source workload: messages at nodes 0 and n/2.
				a := Singleton(d.N(), []graph.NodeID{0, graph.NodeID(d.N() / 2), 0})
				res := runBMMB(t, d, makeScheds()[si], a, int64(si)+11)
				if !res.Solved {
					t.Fatalf("not solved: %d/%d delivered by %v (steps %d)",
						res.Delivered, res.Required, res.End, res.Steps)
				}
			})
		}
	}
}

func TestBMMBDisconnectedComponents(t *testing.T) {
	// Two disjoint lines; message in each component must only cover its
	// own component.
	g := graph.New(8)
	for i := 0; i < 3; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	for i := 4; i < 7; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	d := topology.Reliable(g, "two-lines")
	a := Singleton(8, []graph.NodeID{0, 4})
	res := runBMMB(t, d, &sched.Sync{}, a, 3)
	if !res.Solved {
		t.Fatal("not solved")
	}
	if res.Required != 8 { // each message reaches its 4-node component
		t.Fatalf("required = %d, want 8", res.Required)
	}
}

func TestBMMBDeliversExactlyOnce(t *testing.T) {
	d := topology.LineRRestricted(10, 2, 1.0, rand.New(rand.NewSource(5)))
	res := runBMMB(t, d, &sched.Sync{Rel: sched.Always{}}, SingleSource(10, 5, 4), 5)
	if !res.Solved {
		t.Fatal("not solved")
	}
	// Count deliver events in the trace: exactly one per (node, msg).
	counts := make(map[[2]int]int)
	for _, ev := range res.Trace.Filter(DeliverKind) {
		m := ev.Value().(Msg)
		counts[[2]int{ev.Node, m.ID}]++
	}
	if len(counts) != 40 {
		t.Fatalf("distinct deliveries = %d, want 40", len(counts))
	}
	for key, c := range counts {
		if c != 1 {
			t.Fatalf("node %d delivered m%d %d times", key[0], key[1], c)
		}
	}
}

func TestBMMBDeterministicReplay(t *testing.T) {
	run := func() (sim.Time, int) {
		d := topology.LineRRestricted(14, 3, 0.4, rand.New(rand.NewSource(2)))
		res := MustRun(RunConfig{
			Dual:             d,
			Fack:             testFack,
			Fprog:            testFprog,
			Scheduler:        &sched.Random{Rel: sched.Bernoulli{P: 0.5}},
			Seed:             99,
			Assignment:       SingleSource(14, 0, 3),
			Automata:         NewBMMBFleet(14),
			HaltOnCompletion: true,
		})
		return res.CompletionTime, res.Broadcasts
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Fatalf("replay diverged: (%v,%d) vs (%v,%d)", t1, b1, t2, b2)
	}
}

func TestBMMBQueueIsFIFO(t *testing.T) {
	// Inject 3 messages at one node; its broadcast order must match
	// arrival order.
	d := topology.Line(4)
	res := runBMMB(t, d, &sched.Sync{}, SingleSource(4, 0, 3), 8)
	if !res.Solved {
		t.Fatal("not solved")
	}
	var order []int
	for _, b := range res.Engine.Instances() {
		if b.Sender == 0 {
			order = append(order, mustMsg(b.Payload).ID)
		}
	}
	if len(order) != 3 {
		t.Fatalf("source broadcast %d instances, want 3", len(order))
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("broadcast order %v not FIFO", order)
		}
	}
}

func TestBMMBStarChokeLowerBound(t *testing.T) {
	// Lemma 3.18: k messages through a bridge node take Ω(k·Fack) under a
	// scheduler that stretches every ack to Fack.
	k := 8
	s := topology.NewStarChoke(k)
	a := make(Assignment, s.N())
	for i := 1; i < k; i++ {
		v := s.Source(i)
		a[v] = append(a[v], Msg{ID: i - 1, Origin: v})
	}
	hub := s.Hub()
	a[hub] = append(a[hub], Msg{ID: k - 1, Origin: hub})
	res := runBMMB(t, s.Dual, &sched.Sync{}, a, 4)
	if !res.Solved {
		t.Fatal("not solved")
	}
	// The receiver gets at most one new message per Fack: completion is at
	// least (k-1)·Fack.
	lower := sim.Time(k-1) * testFack
	if res.CompletionTime < lower {
		t.Fatalf("completion %v below the choke-point bound %v", res.CompletionTime, lower)
	}
	upper := sim.Time(2*k) * testFack
	if res.CompletionTime > upper {
		t.Fatalf("completion %v way above expectation %v", res.CompletionTime, upper)
	}
}

func TestBMMBParallelLinesLowerBound(t *testing.T) {
	// Lemmas 3.19/3.20: on network C, the adversarial schedule forces
	// Ω(D·Fack) for k = 2.
	for _, D := range []int{4, 8, 16} {
		c := topology.NewParallelLinesC(D)
		m0 := Msg{ID: 0, Origin: c.A(1)}
		m1 := Msg{ID: 1, Origin: c.B(1)}
		a := make(Assignment, c.N())
		a[c.A(1)] = []Msg{m0}
		a[c.B(1)] = []Msg{m1}
		s := &sched.ParallelLines{
			Net: c,
			M0:  m0.Payload(),
			M1:  m1.Payload(),
		}
		res := runBMMB(t, c.Dual, s, a, 6)
		if !res.Solved {
			t.Fatalf("D=%d: not solved: %d/%d by %v", D, res.Delivered, res.Required, res.End)
		}
		want := sim.Time(D-1) * testFack
		if res.CompletionTime < want {
			t.Fatalf("D=%d: completion %v below the adversarial bound %v",
				D, res.CompletionTime, want)
		}
	}
}
