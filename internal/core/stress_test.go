package core

import (
	"math/rand"
	"testing"

	"amac/internal/graph"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// TestBMMBSpitefulGreyTraffic stresses Theorem 3.1's bound under a
// "spiteful" configuration: unreliable links fire instantly (GreyDelay=1)
// and universally (Rel=Always) over long-range edges, flooding every queue
// with messages from far away as early as possible, while acks take the
// full Fack. This is the mechanism the paper identifies as breaking the
// G'=G analysis — old messages arriving unexpectedly from far away — and
// BMMB must still finish within O((D+k)·Fack).
func TestBMMBSpitefulGreyTraffic(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 24
		d := topology.ArbitraryNoise(topology.Line(n).G, 2*n, rng, "spite-line")
		k := 6
		origins := make([]graph.NodeID, k)
		for i := range origins {
			origins[i] = graph.NodeID(i * n / k)
		}
		res := MustRun(RunConfig{
			Dual:             d,
			Fack:             testFack,
			Fprog:            testFprog,
			Scheduler:        &sched.Sync{GreyDelay: 1, Rel: sched.Always{}},
			Seed:             seed,
			Assignment:       Singleton(n, origins),
			Automata:         NewBMMBFleet(n),
			HaltOnCompletion: true,
			Options:          RunOptions{Check: true},
		})
		if !res.Solved {
			t.Fatalf("seed %d: not solved (%d/%d)", seed, res.Delivered, res.Required)
		}
		if res.Report != nil && !res.Report.OK() {
			t.Fatalf("seed %d: %v", seed, res.Report.Violations[0])
		}
		// Theorem 3.1 with a generous constant.
		bound := 3 * sim.Time(n-1+k) * testFack
		if res.CompletionTime > bound {
			t.Fatalf("seed %d: completion %v exceeds 3·(D+k)·Fack = %v",
				seed, res.CompletionTime, bound)
		}
	}
}

// TestBMMBFlakyLinksEndToEnd runs BMMB over bursty links (the Flaky
// policy): correctness must be unaffected since BMMB never relies on
// unreliable deliveries.
func TestBMMBFlakyLinksEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := topology.LineRRestricted(20, 4, 0.7, rng)
	res := MustRun(RunConfig{
		Dual:             d,
		Fack:             testFack,
		Fprog:            testFprog,
		Scheduler:        &sched.Contention{Rel: &sched.Flaky{MeanUp: 60, MeanDown: 120}},
		Seed:             12,
		Assignment:       Singleton(20, []graph.NodeID{0, 10, 19}),
		Automata:         NewBMMBFleet(20),
		HaltOnCompletion: true,
		Options:          RunOptions{Check: true},
	})
	if !res.Solved {
		t.Fatalf("not solved: %d/%d", res.Delivered, res.Required)
	}
	if res.Report != nil && !res.Report.OK() {
		t.Fatalf("model violation: %v", res.Report.Violations[0])
	}
}

// TestBMMBSingleNodeNetwork is the degenerate boundary: one node, one
// message, no neighbors. The problem is solved at arrival; the lone
// broadcast still terminates.
func TestBMMBSingleNodeNetwork(t *testing.T) {
	g := graph.New(1)
	d := topology.Reliable(g, "singleton")
	res := MustRun(RunConfig{
		Dual:             d,
		Fack:             testFack,
		Fprog:            testFprog,
		Scheduler:        &sched.Contention{},
		Seed:             1,
		Assignment:       SingleSource(1, 0, 1),
		Automata:         NewBMMBFleet(1),
		HaltOnCompletion: false,
		Options:          RunOptions{Check: true},
	})
	if !res.Solved || res.CompletionTime != 0 {
		t.Fatalf("solved=%v at %v", res.Solved, res.CompletionTime)
	}
	if res.Report != nil && !res.Report.OK() {
		t.Fatalf("model violation: %v", res.Report.Violations[0])
	}
}

// TestBMMBLargeScale is a smoke test at a scale an order beyond the other
// tests: 256 nodes, 16 messages, random scheduler with grey traffic.
func TestBMMBLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale run")
	}
	rng := rand.New(rand.NewSource(7))
	d := topology.LineRRestricted(256, 4, 0.1, rng)
	k := 16
	origins := make([]graph.NodeID, k)
	for i := range origins {
		origins[i] = graph.NodeID(i * 256 / k)
	}
	res := MustRun(RunConfig{
		Dual:             d,
		Fack:             testFack,
		Fprog:            testFprog,
		Scheduler:        &sched.Random{Rel: sched.Bernoulli{P: 0.3}},
		Seed:             7,
		Assignment:       Singleton(256, origins),
		Automata:         NewBMMBFleet(256),
		HaltOnCompletion: true,
		Options:          RunOptions{Check: true},
	})
	if !res.Solved {
		t.Fatalf("not solved: %d/%d by %v", res.Delivered, res.Required, res.End)
	}
	if res.Report != nil && !res.Report.OK() {
		t.Fatalf("model violation: %v", res.Report.Violations[0])
	}
	bound := sim.Time(255)*testFprog + 4*sim.Time(k)*testFack
	if res.CompletionTime > 3*bound {
		t.Fatalf("completion %v far above Theorem 3.2 expectation %v", res.CompletionTime, bound)
	}
}
