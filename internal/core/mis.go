package core

import (
	"math"

	"amac/internal/mac"
)

// Payload types used by the FMMB subroutines. All are comparable value
// types so traces and sets can use them directly. Every payload carries at
// most one MMB message, respecting the constant-size broadcast limit.

// electPayload is an election-part broadcast: the sender's random bitstring
// for the current MIS phase (Section 4.2).
type electPayload struct {
	Bits  uint64
	Phase int
}

// announcePayload is an announcement-part broadcast: a fresh MIS member
// announcing its ID (Section 4.2).
type announcePayload struct {
	From mac.NodeID
}

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1 (0 for n ≤ 1).
func Log2Ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// MISConfig parameterizes the MIS subroutine of Section 4.2. The paper's
// schedule is O(c² log² n) phases of 4·log n election rounds plus
// Θ(c² log n) announcement rounds; the zero value selects constants sized
// for simulation scale (the asymptotics are the paper's, the leading
// constants are tuned so runs finish quickly — the subroutine converges far
// earlier than its worst-case bound, which tests verify via MIS validity).
type MISConfig struct {
	// N is the network size (nodes know n).
	N int
	// C is the grey zone constant (c ≥ 1).
	C float64
	// Phases is the number of phases; 0 selects max(12, 3⌈log n⌉).
	Phases int
	// ElectionRounds per phase; 0 selects 4⌈log n⌉.
	ElectionRounds int
	// AnnounceRounds per phase; 0 selects ⌈4c²⌉·⌈log n⌉.
	AnnounceRounds int
	// AnnounceProb is the per-round announcement probability; 0 selects
	// 1/(2c²) capped at 1/2.
	AnnounceProb float64
}

// withDefaults resolves zero fields.
func (c MISConfig) withDefaults() MISConfig {
	if c.N < 1 {
		panic("core: MISConfig.N must be >= 1")
	}
	if c.C < 1 {
		c.C = 1
	}
	ln := Log2Ceil(c.N)
	if ln < 1 {
		ln = 1
	}
	c2 := c.C * c.C
	if c.Phases == 0 {
		c.Phases = 3 * ln
		if c.Phases < 12 {
			c.Phases = 12
		}
	}
	if c.ElectionRounds == 0 {
		c.ElectionRounds = 4 * ln
	}
	if c.AnnounceRounds == 0 {
		c.AnnounceRounds = int(math.Ceil(4*c2)) * ln
	}
	if c.AnnounceProb == 0 {
		c.AnnounceProb = 1 / (2 * c2)
		if c.AnnounceProb > 0.5 {
			c.AnnounceProb = 0.5
		}
	}
	return c
}

// Rounds returns the total number of Fprog rounds the subroutine takes.
func (c MISConfig) Rounds() int {
	rc := c.withDefaults()
	return rc.Phases * (rc.ElectionRounds + rc.AnnounceRounds)
}

// misState is the per-node state machine of the MIS subroutine. It is
// driven round-by-round by its owner (MISNode standalone, or FMMB as its
// first stage): startRound is called at the beginning of each round and
// may broadcast; onRecv is called for every message received.
type misState struct {
	cfg MISConfig

	// InMIS is set once the node joins the MIS.
	InMIS bool
	// Covered is set once the node learns a G-neighbor is in the MIS
	// (permanently inactive in the paper's terms).
	Covered bool

	tempInactive    bool
	joinedThisPhase bool
	bits            uint64
	sentThisRound   bool
	inElection      bool
}

func newMISState(cfg MISConfig) *misState {
	return &misState{cfg: cfg.withDefaults()}
}

// Decided reports whether the node's MIS status is settled.
func (s *misState) Decided() bool { return s.InMIS || s.Covered }

// phaseOf decomposes a round index into (phase, roundInPhase).
func (s *misState) phaseOf(round int) (phase, r int) {
	perPhase := s.cfg.ElectionRounds + s.cfg.AnnounceRounds
	return round / perPhase, round % perPhase
}

// startRound runs the beginning-of-round logic for the given MIS round
// index, broadcasting through ctx when the schedule says so.
func (s *misState) startRound(ctx mac.Context, round int) {
	phase, r := s.phaseOf(round)
	s.sentThisRound = false
	participating := !s.InMIS && !s.Covered

	switch {
	case r == 0:
		// Phase start: temporary inactivity resets; active nodes draw a
		// fresh random bitstring b(v) of ElectionRounds bits.
		s.tempInactive = false
		s.joinedThisPhase = false
		s.inElection = true
		if participating {
			s.bits = uint64(ctx.Rand().Int63())
		}
		fallthrough
	case r < s.cfg.ElectionRounds:
		// Election round r: broadcast iff the r-th bit of b(v) is 1.
		if participating && !s.tempInactive && s.bits&(1<<uint(r%63)) != 0 {
			ctx.Bcast(electPayload{Bits: s.bits, Phase: phase}.payload())
			s.sentThisRound = true
		}
	default:
		if r == s.cfg.ElectionRounds {
			// Election part over: survivors join the MIS.
			s.inElection = false
			if participating && !s.tempInactive {
				s.InMIS = true
				s.joinedThisPhase = true
				ctx.Emit("mis-join", mac.Int(int64(phase)))
			}
		}
		// Announcement round: fresh members announce with probability
		// AnnounceProb.
		if s.joinedThisPhase && ctx.Rand().Float64() < s.cfg.AnnounceProb {
			ctx.Bcast(announcePayload{From: ctx.ID()}.payload())
			s.sentThisRound = true
		}
	}
}

// onRecv processes a message received during an MIS round. fromG reports
// whether the sender is a reliable neighbor of this node.
func (s *misState) onRecv(ctx mac.Context, m mac.Message, fromG bool) {
	if s.InMIS || s.Covered {
		return
	}
	switch m.Payload.Kind {
	case electKind:
		// A node that stays silent in an election round but hears any
		// message — over G or G′ — goes temporarily inactive.
		if s.inElection && !s.sentThisRound {
			s.tempInactive = true
		}
	case announceKind:
		// Announcements count only over reliable links: hearing one from
		// a G-neighbor covers this node permanently.
		if fromG {
			s.Covered = true
			ctx.Emit("mis-covered", mac.Int(int64(m.Sender)))
		} else if s.inElection && !s.sentThisRound {
			s.tempInactive = true
		}
	}
}

// MISNode runs the MIS subroutine standalone on the enhanced abstract MAC
// layer, dividing time into rounds of length Fprog exactly as FMMB does
// (Section 4.1): broadcasts start at the beginning of a round and are
// aborted at its end if not yet completed.
type MISNode struct {
	cfg   MISConfig
	state *misState
	round int
	gSet  map[mac.NodeID]bool
}

var (
	_ mac.Automaton    = (*MISNode)(nil)
	_ mac.TimerHandler = (*MISNode)(nil)
	_ mac.Resettable   = (*MISNode)(nil)
)

// NewMISNode returns a standalone MIS automaton.
func NewMISNode(cfg MISConfig) *MISNode {
	return &MISNode{cfg: cfg.withDefaults(), state: newMISState(cfg)}
}

// Reset implements mac.Resettable: the node returns to its pre-run state
// (the resolved config is kept), so MIS fleets can be reused across trials.
func (mn *MISNode) Reset() {
	*mn.state = misState{cfg: mn.state.cfg}
	mn.round = 0
	if mn.gSet != nil {
		clear(mn.gSet)
	}
}

// NewMISFleet returns one MISNode per node.
func NewMISFleet(n int, cfg MISConfig) []mac.Automaton {
	out := make([]mac.Automaton, n)
	for i := range out {
		out[i] = NewMISNode(cfg)
	}
	return out
}

// InMIS reports whether this node joined the MIS.
func (mn *MISNode) InMIS() bool { return mn.state.InMIS }

// Covered reports whether this node learned of an MIS G-neighbor.
func (mn *MISNode) Covered() bool { return mn.state.Covered }

// Wakeup implements mac.Automaton. The G-neighbor set map is kept across
// Reset and refilled here, so warm-fleet wakeups allocate nothing.
func (mn *MISNode) Wakeup(ctx mac.Context) {
	if mn.gSet == nil {
		mn.gSet = make(map[mac.NodeID]bool, len(ctx.GNeighbors()))
	}
	for _, v := range ctx.GNeighbors() {
		mn.gSet[v] = true
	}
	mn.startRound(ctx.(mac.EnhancedContext))
}

// Timer implements mac.TimerHandler: each tick is a round boundary.
func (mn *MISNode) Timer(ctx mac.EnhancedContext, _ any) {
	ctx.Abort()
	mn.round++
	mn.startRound(ctx)
}

func (mn *MISNode) startRound(ctx mac.EnhancedContext) {
	if mn.round >= mn.cfg.Rounds() {
		return
	}
	ctx.SetTimer(ctx.Fprog(), nil)
	mn.state.startRound(ctx, mn.round)
}

// Recv implements mac.Automaton.
func (mn *MISNode) Recv(ctx mac.Context, m mac.Message) {
	mn.state.onRecv(ctx, m, mn.gSet[m.Sender])
}

// Acked implements mac.Automaton; round-based broadcasts need no reaction.
func (mn *MISNode) Acked(mac.Context, mac.Message) {}
