package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"amac/internal/core"
	"amac/internal/sched"
	"amac/internal/topology"
)

// snapshot renders one execution's observable outcome — scalar results plus
// the full trace text — for byte-for-byte comparison.
func snapshot(res *core.Result) string {
	return fmt.Sprintf("solved=%v t=%d end=%d delivered=%d required=%d bcasts=%d steps=%d ok=%v\n%s",
		res.Solved, res.CompletionTime, res.End, res.Delivered, res.Required,
		res.Broadcasts, res.Steps, res.Report.OK(), res.Engine.Trace().String())
}

// TestRunnerWarmMatchesCold replays the same seeds through fresh core.Run
// calls and through one warm Runner (arena, pooled engine, reused fleet),
// comparing the full execution snapshot — trace text included — byte for
// byte. This is the core-level half of the "byte-identical with arena reuse
// on and off" guarantee; the scenario golden-trace suite pins the other
// half end to end.
func TestRunnerWarmMatchesCold(t *testing.T) {
	d := topology.LineRRestricted(16, 2, 0.7, rand.New(rand.NewSource(9)))
	assignment := core.SingleSource(16, 0, 3)
	seeds := []int64{1, 2, 3, 4}

	cold := make([]string, len(seeds))
	for i, seed := range seeds {
		res, err := core.Run(core.RunConfig{
			Dual:             d,
			Fack:             200,
			Fprog:            10,
			Scheduler:        &sched.Sync{Rel: sched.Bernoulli{P: 0.5}},
			Seed:             seed,
			Assignment:       assignment,
			Automata:         core.NewBMMBFleet(16),
			HaltOnCompletion: true,
			Check:            true,
		})
		if err != nil {
			t.Fatalf("cold run seed %d: %v", seed, err)
		}
		if !res.Solved {
			t.Fatalf("cold run seed %d unsolved", seed)
		}
		cold[i] = snapshot(res)
	}

	rn := core.NewRunner(d)
	fleet := core.NewBMMBFleet(16)
	for i, seed := range seeds {
		for _, a := range fleet {
			a.(interface{ Reset() }).Reset()
		}
		res, err := rn.Run(core.RunConfig{
			Dual:             d,
			Fack:             200,
			Fprog:            10,
			Scheduler:        &sched.Sync{Rel: sched.Bernoulli{P: 0.5}},
			Seed:             seed,
			Assignment:       assignment,
			Automata:         fleet,
			HaltOnCompletion: true,
			Check:            true,
		})
		if err != nil {
			t.Fatalf("warm run seed %d: %v", seed, err)
		}
		// Snapshot before the next Run recycles the pooled engine.
		if got := snapshot(res); got != cold[i] {
			t.Fatalf("warm run seed %d diverged from cold run:\nwarm:\n%.300s\ncold:\n%.300s",
				seed, got, cold[i])
		}
	}
}

// TestRunnerRejectsForeignDual pins the pointer-identity contract: a Runner
// only runs configurations on the exact network it was built for.
func TestRunnerRejectsForeignDual(t *testing.T) {
	rn := core.NewRunner(topology.Line(8))
	other := topology.Line(8)
	_, err := rn.Run(core.RunConfig{
		Dual:       other,
		Fack:       200,
		Fprog:      10,
		Scheduler:  &sched.Sync{},
		Seed:       1,
		Assignment: core.SingleSource(8, 0, 1),
		Automata:   core.NewBMMBFleet(8),
	})
	if err == nil {
		t.Fatal("Runner accepted a structurally equal but distinct dual")
	}
}
