package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"amac/internal/core"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/topology"
)

// snapshot renders one execution's observable outcome — scalar results plus
// the full trace text — for byte-for-byte comparison.
func snapshot(res *core.Result) string {
	return fmt.Sprintf("solved=%v t=%d end=%d delivered=%d required=%d bcasts=%d steps=%d ok=%v\n%s",
		res.Solved, res.CompletionTime, res.End, res.Delivered, res.Required,
		res.Broadcasts, res.Steps, res.Report.OK(), res.Trace.String())
}

// TestRunnerWarmMatchesCold replays the same seeds through fresh core.Run
// calls and through one warm Runner (arena, pooled engine, reused fleet),
// comparing the full execution snapshot — trace text included — byte for
// byte. This is the core-level half of the "byte-identical with arena reuse
// on and off" guarantee; the scenario golden-trace suite pins the other
// half end to end.
func TestRunnerWarmMatchesCold(t *testing.T) {
	d := topology.LineRRestricted(16, 2, 0.7, rand.New(rand.NewSource(9)))
	assignment := core.SingleSource(16, 0, 3)
	seeds := []int64{1, 2, 3, 4}

	cold := make([]string, len(seeds))
	for i, seed := range seeds {
		res, err := core.Run(core.RunConfig{
			Dual:             d,
			Fack:             200,
			Fprog:            10,
			Scheduler:        &sched.Sync{Rel: sched.Bernoulli{P: 0.5}},
			Seed:             seed,
			Assignment:       assignment,
			Automata:         core.NewBMMBFleet(16),
			HaltOnCompletion: true,
			Options:          core.RunOptions{Check: true},
		})
		if err != nil {
			t.Fatalf("cold run seed %d: %v", seed, err)
		}
		if !res.Solved {
			t.Fatalf("cold run seed %d unsolved", seed)
		}
		cold[i] = snapshot(res)
	}

	rn := core.NewRunner(d)
	fleet := core.NewBMMBFleet(16)
	for i, seed := range seeds {
		for _, a := range fleet {
			a.(interface{ Reset() }).Reset()
		}
		res, err := rn.Run(core.RunConfig{
			Dual:             d,
			Fack:             200,
			Fprog:            10,
			Scheduler:        &sched.Sync{Rel: sched.Bernoulli{P: 0.5}},
			Seed:             seed,
			Assignment:       assignment,
			Automata:         fleet,
			HaltOnCompletion: true,
			Options:          core.RunOptions{Check: true},
		})
		if err != nil {
			t.Fatalf("warm run seed %d: %v", seed, err)
		}
		// Snapshot before the next Run recycles the pooled engine.
		if got := snapshot(res); got != cold[i] {
			t.Fatalf("warm run seed %d diverged from cold run:\nwarm:\n%.300s\ncold:\n%.300s",
				seed, got, cold[i])
		}
	}
}

// TestRunnerRejectsForeignDual pins the pointer-identity contract: a Runner
// only runs configurations on the exact network it was built for.
func TestRunnerRejectsForeignDual(t *testing.T) {
	rn := core.NewRunner(topology.Line(8))
	other := topology.Line(8)
	_, err := rn.Run(core.RunConfig{
		Dual:       other,
		Fack:       200,
		Fprog:      10,
		Scheduler:  &sched.Sync{},
		Seed:       1,
		Assignment: core.SingleSource(8, 0, 1),
		Automata:   core.NewBMMBFleet(8),
	})
	if err == nil {
		t.Fatal("Runner accepted a structurally equal but distinct dual")
	}
}

// TestRunnerRebindMatchesCold replays a sequence of different networks —
// sizes, G′ shapes, and a return to an earlier network — through one
// rebound Runner and through fresh core.Run calls, comparing full execution
// snapshots byte for byte. This is the core-level half of the unpinned
// warm-path guarantee; scenario.TestUnpinnedWarmMatchesCold pins the other
// half end to end.
func TestRunnerRebindMatchesCold(t *testing.T) {
	duals := []*topology.Dual{
		topology.LineRRestricted(16, 2, 0.7, rand.New(rand.NewSource(9))),
		topology.Line(24),
		topology.LineRRestricted(10, 3, 0.5, rand.New(rand.NewSource(4))),
		topology.Line(24),
	}
	cfgFor := func(d *topology.Dual, seed int64, fleet []mac.Automaton) core.RunConfig {
		return core.RunConfig{
			Dual:             d,
			Fack:             200,
			Fprog:            10,
			Scheduler:        &sched.Sync{Rel: sched.Bernoulli{P: 0.5}},
			Seed:             seed,
			Assignment:       core.SingleSource(d.N(), 0, 2),
			Automata:         fleet,
			HaltOnCompletion: true,
			Options:          core.RunOptions{Check: true},
		}
	}

	var rn *core.Runner
	for i, d := range duals {
		seed := int64(i + 1)
		cold, err := core.Run(cfgFor(d, seed, core.NewBMMBFleet(d.N())))
		if err != nil {
			t.Fatalf("cold run %d: %v", i, err)
		}
		want := snapshot(cold)

		if rn == nil {
			rn = core.NewRunner(d)
		} else {
			rn.Rebind(d)
		}
		warm, err := rn.Run(cfgFor(d, seed, core.NewBMMBFleet(d.N())))
		if err != nil {
			t.Fatalf("warm run %d: %v", i, err)
		}
		if got := snapshot(warm); got != want {
			t.Fatalf("rebound run %d (%s) diverged from cold run:\nwarm:\n%.300s\ncold:\n%.300s",
				i, d.Name, got, want)
		}
	}
}

// TestRunnerForkRebindIsolation pins that rebinding a forked runner cannot
// corrupt the prototype: Fork shares the component index read-only, so the
// fork must compute its own on Rebind. Before the owned-copy fix, the fork
// resliced the shared arrays in place and the prototype computed Required
// from the wrong component sizes, "solving" after half its deliveries.
func TestRunnerForkRebindIsolation(t *testing.T) {
	d := topology.Line(6)
	proto := core.NewRunner(d)
	run := func(rn *core.Runner) *core.Result {
		res, err := rn.Run(core.RunConfig{
			Dual:             rn.Dual(),
			Fack:             200,
			Fprog:            10,
			Scheduler:        &sched.Sync{},
			Seed:             1,
			Assignment:       core.SingleSource(rn.Dual().N(), 0, 2),
			Automata:         core.NewBMMBFleet(rn.Dual().N()),
			HaltOnCompletion: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	before := run(proto)

	fork := proto.Fork()
	fork.Rebind(topology.Line(3))
	if res := run(fork); res.Required != 6 { // 2 messages × 3 nodes
		t.Fatalf("rebound fork Required = %d, want 6", res.Required)
	}

	after := run(proto)
	if after.Required != before.Required || after.Delivered != before.Delivered ||
		after.CompletionTime != before.CompletionTime {
		t.Fatalf("rebinding a fork corrupted the prototype's component index: before %d/%d@%d, after %d/%d@%d",
			before.Delivered, before.Required, before.CompletionTime,
			after.Delivered, after.Required, after.CompletionTime)
	}
}

// TestRunnerPrototypeRebindIsolation is the mirror of the fork test:
// rebinding the prototype after it has handed out forks must not corrupt
// the component index those forks still read.
func TestRunnerPrototypeRebindIsolation(t *testing.T) {
	d := topology.Line(6)
	proto := core.NewRunner(d)
	run := func(rn *core.Runner) *core.Result {
		res, err := rn.Run(core.RunConfig{
			Dual:             rn.Dual(),
			Fack:             200,
			Fprog:            10,
			Scheduler:        &sched.Sync{},
			Seed:             1,
			Assignment:       core.SingleSource(rn.Dual().N(), 0, 2),
			Automata:         core.NewBMMBFleet(rn.Dual().N()),
			HaltOnCompletion: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fork := proto.Fork()
	before := run(fork)

	proto.Rebind(topology.Line(3))
	if res := run(proto); res.Required != 6 { // 2 messages × 3 nodes
		t.Fatalf("rebound prototype Required = %d, want 6", res.Required)
	}

	after := run(fork)
	if after.Required != before.Required || after.Delivered != before.Delivered ||
		after.CompletionTime != before.CompletionTime {
		t.Fatalf("rebinding the prototype corrupted its fork's component index: before %d/%d@%d, after %d/%d@%d",
			before.Delivered, before.Required, before.CompletionTime,
			after.Delivered, after.Required, after.CompletionTime)
	}
}
