package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"amac/internal/graph"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// Property (Theorem 3.2): for random line networks with random r-restricted
// G′, random workloads and random scheduler timing, BMMB completes within
// O(D·Fprog + r·k·Fack) — checked with leading constant 2 to absorb the
// +Fack tail of the formal statement (Theorem 3.16's t₁ plus the final
// acknowledgment window).
func TestBMMBTheorem32Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(25)
		r := 1 + rng.Intn(4)
		k := 1 + rng.Intn(6)
		d := topology.LineRRestricted(n, r, rng.Float64(), rng)
		origins := make([]graph.NodeID, k)
		for i := range origins {
			origins[i] = graph.NodeID(rng.Intn(n))
		}
		a := make(Assignment, n)
		for i, v := range origins {
			a[v] = append(a[v], Msg{ID: i, Origin: v})
		}
		res := MustRun(RunConfig{
			Dual:             d,
			Fack:             testFack,
			Fprog:            testFprog,
			Scheduler:        &sched.Random{Rel: sched.Bernoulli{P: rng.Float64()}},
			Seed:             seed,
			Assignment:       a,
			Automata:         NewBMMBFleet(n),
			HaltOnCompletion: true,
		})
		if !res.Solved {
			return false
		}
		bound := 2 * (sim.Time(n-1)*testFprog + sim.Time(r*k+1)*testFack)
		return res.CompletionTime <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property (Theorem 3.1): for arbitrary G′ (random long-range noise), BMMB
// completes within O((D+k)·Fack), constant 2.
func TestBMMBTheorem31Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(25)
		k := 1 + rng.Intn(6)
		d := topology.ArbitraryNoise(topology.Line(n).G, rng.Intn(2*n), rng, "prop")
		origins := make([]graph.NodeID, k)
		for i := range origins {
			origins[i] = graph.NodeID(rng.Intn(n))
		}
		a := make(Assignment, n)
		for i, v := range origins {
			a[v] = append(a[v], Msg{ID: i, Origin: v})
		}
		res := MustRun(RunConfig{
			Dual:             d,
			Fack:             testFack,
			Fprog:            testFprog,
			Scheduler:        &sched.Contention{Rel: sched.Bernoulli{P: rng.Float64()}},
			Seed:             seed,
			Assignment:       a,
			Automata:         NewBMMBFleet(n),
			HaltOnCompletion: true,
		})
		if !res.Solved {
			return false
		}
		bound := 2 * sim.Time(n+k) * testFack
		return res.CompletionTime <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: BMMB's completion time is monotone-ish in k on a fixed network
// under the deterministic Sync scheduler — more messages never finish
// sooner (the FIFO pipeline only lengthens).
func TestBMMBMonotoneInK(t *testing.T) {
	d := topology.Line(16)
	prev := sim.Time(0)
	for k := 1; k <= 8; k++ {
		res := MustRun(RunConfig{
			Dual:             d,
			Fack:             testFack,
			Fprog:            testFprog,
			Scheduler:        &sched.Sync{},
			Seed:             1,
			Assignment:       SingleSource(16, 0, k),
			Automata:         NewBMMBFleet(16),
			HaltOnCompletion: true,
		})
		if !res.Solved {
			t.Fatalf("k=%d not solved", k)
		}
		if res.CompletionTime < prev {
			t.Fatalf("completion decreased: k=%d took %v < %v", k, res.CompletionTime, prev)
		}
		prev = res.CompletionTime
	}
}
