package core

import (
	"math/rand"
	"testing"

	"amac/internal/check"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// runMIS executes the standalone MIS subroutine on the dual and returns the
// resulting MIS set along with the engine for inspection.
func runMIS(t *testing.T, d *topology.Dual, c float64, seed int64) ([]graph.NodeID, *mac.Engine) {
	t.Helper()
	cfg := MISConfig{N: d.N(), C: c}
	autos := NewMISFleet(d.N(), cfg)
	eng := mac.NewEngine(mac.Config{
		Dual:      d,
		Fack:      testFack,
		Fprog:     testFprog,
		Scheduler: &sched.Slot{},
		Mode:      mac.Enhanced,
		Seed:      seed,
	}, autos)
	eng.Start()
	eng.Sim().SetHorizon(sim.Time(cfg.Rounds()+2) * testFprog)
	eng.Run()

	var mis []graph.NodeID
	for i, a := range autos {
		if a.(*MISNode).InMIS() {
			mis = append(mis, graph.NodeID(i))
		}
	}
	rep := check.All(d, eng.Instances(), check.Params{
		Fack: testFack, Fprog: testFprog, End: eng.Sim().Now(),
	})
	if !rep.OK() {
		t.Fatalf("model violation during MIS: %v", rep.Violations[0])
	}
	return mis, eng
}

func TestMISOnLine(t *testing.T) {
	d := topology.Line(12)
	mis, _ := runMIS(t, d, 1.0, 42)
	if !d.G.IsMaximalIndependent(mis) {
		t.Fatalf("MIS %v is not a maximal independent set", mis)
	}
	// A line of 12 needs at least 4 MIS members (domination number).
	if len(mis) < 4 {
		t.Fatalf("MIS too small: %v", mis)
	}
}

func TestMISOnGrid(t *testing.T) {
	d := topology.Grid(5, 5)
	mis, _ := runMIS(t, d, 1.0, 7)
	if !d.G.IsMaximalIndependent(mis) {
		t.Fatalf("MIS %v not maximal independent on grid", mis)
	}
}

func TestMISOnGreyZoneGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := 1.6
	d := topology.ConnectedRandomGeometric(50, 5, c, 0.6, rng, 100)
	if d == nil {
		t.Fatal("no connected instance")
	}
	mis, _ := runMIS(t, d, c, 13)
	if !d.G.IsMaximalIndependent(mis) {
		t.Fatalf("MIS %v not maximal independent", mis)
	}
	// Lemma 4.2 flavor: MIS members are 1-separated in the embedding.
	if !d.Embed.IsPacked(mis, 1.0) {
		t.Fatal("MIS not geometrically packed")
	}
}

func TestMISSeedsSweep(t *testing.T) {
	// The w.h.p. guarantee should hold across many seeds on a modest
	// network; a failure here indicates broken subroutine logic, not bad
	// luck.
	d := topology.Grid(4, 6)
	for seed := int64(0); seed < 12; seed++ {
		mis, _ := runMIS(t, d, 1.0, seed)
		if !d.G.IsMaximalIndependent(mis) {
			t.Fatalf("seed %d: MIS %v invalid", seed, mis)
		}
	}
}

func TestMISSingleton(t *testing.T) {
	// A single isolated node must elect itself.
	g := graph.New(1)
	d := topology.Reliable(g, "one")
	mis, _ := runMIS(t, d, 1.0, 1)
	if len(mis) != 1 || mis[0] != 0 {
		t.Fatalf("MIS = %v, want [0]", mis)
	}
}

func TestMISStarElectsQuickly(t *testing.T) {
	d := topology.Star(16)
	mis, _ := runMIS(t, d, 1.0, 3)
	if !d.G.IsMaximalIndependent(mis) {
		t.Fatalf("MIS %v invalid on star", mis)
	}
	// Either the hub alone, or all leaves.
	if len(mis) != 1 && len(mis) != 15 {
		t.Fatalf("star MIS size = %d, want 1 or 15", len(mis))
	}
}

func TestMISRoundsFormula(t *testing.T) {
	cfg := MISConfig{N: 64, C: 2}.withDefaults()
	want := cfg.Phases * (cfg.ElectionRounds + cfg.AnnounceRounds)
	if got := cfg.Rounds(); got != want {
		t.Fatalf("Rounds = %d, want %d", got, want)
	}
	if (MISConfig{N: 1, C: 1}).Rounds() <= 0 {
		t.Fatal("degenerate config has non-positive rounds")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for n, want := range cases {
		if got := Log2Ceil(n); got != want {
			t.Fatalf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}
