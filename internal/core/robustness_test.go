package core

import (
	"math/rand"
	"testing"

	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/topology"
)

// These tests sweep seeds broadly: the algorithms' guarantees are w.h.p.,
// so systematic failures indicate logic bugs rather than bad luck.

func runQuiet(d *topology.Dual, c float64, a Assignment, seed int64) *Result {
	cfg := FMMBConfig{N: d.N(), K: a.K(), D: d.G.Diameter(), C: c}
	return MustRun(RunConfig{
		Dual:             d,
		Fack:             testFack,
		Fprog:            testFprog,
		Scheduler:        &sched.Slot{},
		Mode:             mac.Enhanced,
		Seed:             seed,
		Assignment:       a,
		Automata:         NewFMMBFleet(d.N(), cfg),
		StepLimit:        1 << 62,
		HaltOnCompletion: true,
	})
}

func TestFMMBWideSeedSweepGrid(t *testing.T) {
	fails := 0
	for seed := int64(0); seed < 40; seed++ {
		d := topology.Grid(3, 4)
		a := Singleton(12, []graph.NodeID{0, 11})
		if res := runQuiet(d, 1.0, a, seed); !res.Solved {
			fails++
			t.Logf("seed %d: %d/%d delivered", seed, res.Delivered, res.Required)
		}
	}
	if fails != 0 {
		t.Fatalf("%d/40 grid runs failed", fails)
	}
}

func TestFMMBWideSeedSweepGeometric(t *testing.T) {
	fails, runs := 0, 0
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := topology.ConnectedRandomGeometric(36, 4.2, 1.6, 0.5, rng, 100)
		if d == nil {
			continue
		}
		runs++
		a := Singleton(d.N(), []graph.NodeID{0, graph.NodeID(d.N() / 2), graph.NodeID(d.N() - 1)})
		if res := runQuiet(d, 1.6, a, seed); !res.Solved {
			fails++
			t.Logf("seed %d: %d/%d delivered", seed, res.Delivered, res.Required)
		}
	}
	if runs == 0 {
		t.Fatal("no connected instances generated")
	}
	if fails != 0 {
		t.Fatalf("%d/%d geometric runs failed", fails, runs)
	}
}

func TestBMMBWideSeedSweepContention(t *testing.T) {
	// BMMB is deterministic, but the contention scheduler draws random
	// tie-breaks; the protocol must solve MMB under every draw.
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := topology.LineRRestricted(16, 3, 0.5, rng)
		a := Singleton(16, []graph.NodeID{0, 8, 15})
		res := MustRun(RunConfig{
			Dual:             d,
			Fack:             testFack,
			Fprog:            testFprog,
			Scheduler:        &sched.Contention{Rel: sched.Bernoulli{P: 0.5}},
			Seed:             seed,
			Assignment:       a,
			Automata:         NewBMMBFleet(16),
			HaltOnCompletion: true,
			Options:          RunOptions{Check: true},
		})
		if !res.Solved {
			t.Fatalf("seed %d: not solved (%d/%d)", seed, res.Delivered, res.Required)
		}
		if res.Report != nil && !res.Report.OK() {
			t.Fatalf("seed %d: model violation: %v", seed, res.Report.Violations[0])
		}
	}
}
