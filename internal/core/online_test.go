package core

import (
	"strings"
	"testing"

	"amac/internal/graph"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

func TestWorkloadBasics(t *testing.T) {
	w := &Workload{}
	w.Add(50, 2, Msg{ID: 1, Origin: 2})
	w.Add(10, 0, Msg{ID: 0, Origin: 0})
	if w.K() != 2 {
		t.Fatalf("K = %d", w.K())
	}
	ars := w.Arrivals()
	if ars[0].At != 10 || ars[1].At != 50 {
		t.Fatalf("arrivals not time-sorted: %v", ars)
	}
	if w.MaxAt() != 50 {
		t.Fatalf("MaxAt = %v", w.MaxAt())
	}
}

func TestFromAssignmentMatchesAssignmentRun(t *testing.T) {
	d := topology.Line(8)
	a := SingleSource(8, 0, 3)
	viaAssign := MustRun(RunConfig{
		Dual: d, Fack: testFack, Fprog: testFprog,
		Scheduler: &sched.Sync{}, Seed: 1,
		Assignment: a, Automata: NewBMMBFleet(8),
		HaltOnCompletion: true,
	})
	viaWorkload := MustRun(RunConfig{
		Dual: d, Fack: testFack, Fprog: testFprog,
		Scheduler: &sched.Sync{}, Seed: 1,
		Assignment: make(Assignment, 8), Workload: FromAssignment(a),
		Automata:         NewBMMBFleet(8),
		HaltOnCompletion: true,
	})
	if viaAssign.CompletionTime != viaWorkload.CompletionTime {
		t.Fatalf("assignment %v != workload %v",
			viaAssign.CompletionTime, viaWorkload.CompletionTime)
	}
}

func TestOnlineBMMBStaggeredArrivals(t *testing.T) {
	// Messages arrive while earlier ones are still in flight; BMMB must
	// deliver all of them (the online MMB variant, paper footnote 4).
	d := topology.Line(12)
	w := &Workload{}
	w.Add(0, 0, Msg{ID: 0, Origin: 0})
	w.Add(150, 11, Msg{ID: 1, Origin: 11})
	w.Add(400, 5, Msg{ID: 2, Origin: 5})
	w.Add(401, 5, Msg{ID: 3, Origin: 5})
	res := MustRun(RunConfig{
		Dual: d, Fack: testFack, Fprog: testFprog,
		Scheduler: &sched.Contention{}, Seed: 9,
		Workload: w, Automata: NewBMMBFleet(12),
		HaltOnCompletion: true, Options: RunOptions{Check: true},
	})
	if !res.Solved {
		t.Fatalf("online run unsolved: %d/%d", res.Delivered, res.Required)
	}
	if res.Report != nil && !res.Report.OK() {
		t.Fatalf("model violation: %v", res.Report.Violations[0])
	}
	if len(res.MMBViolations) != 0 {
		t.Fatalf("MMB violations: %v", res.MMBViolations)
	}
	// A message injected at t cannot complete before t.
	if res.CompletionTime < 401 {
		t.Fatalf("completion %v before the last arrival", res.CompletionTime)
	}
}

func TestOnlinePoissonWorkload(t *testing.T) {
	w := PoissonWorkload(20, 10, 1000, 7)
	if w.K() != 10 {
		t.Fatalf("K = %d", w.K())
	}
	for _, ar := range w.Arrivals() {
		if ar.At < 0 || ar.At >= 1000 {
			t.Fatalf("arrival time %v outside span", ar.At)
		}
		if int(ar.Node) < 0 || int(ar.Node) >= 20 {
			t.Fatalf("arrival node %v out of range", ar.Node)
		}
		if ar.Msg.Origin != ar.Node {
			t.Fatal("origin mismatch")
		}
	}
	// Reproducible.
	w2 := PoissonWorkload(20, 10, 1000, 7)
	for i, ar := range w.Arrivals() {
		if w2.Arrivals()[i] != ar {
			t.Fatal("PoissonWorkload not reproducible")
		}
	}
	// Different seeds differ.
	w3 := PoissonWorkload(20, 10, 1000, 8)
	same := true
	for i, ar := range w.Arrivals() {
		if w3.Arrivals()[i] != ar {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical workloads")
	}
}

func TestOnlineBMMBPoissonEndToEnd(t *testing.T) {
	d := topology.Grid(4, 5)
	w := PoissonWorkload(d.N(), 8, 2000, 3)
	res := MustRun(RunConfig{
		Dual: d, Fack: testFack, Fprog: testFprog,
		Scheduler: &sched.Contention{Rel: sched.Bernoulli{P: 0.5}}, Seed: 3,
		Workload: w, Automata: NewBMMBFleet(d.N()),
		HaltOnCompletion: true, Options: RunOptions{Check: true},
	})
	if !res.Solved {
		t.Fatalf("unsolved: %d/%d by %v", res.Delivered, res.Required, res.End)
	}
	if res.Report != nil && !res.Report.OK() {
		t.Fatalf("model violation: %v", res.Report.Violations[0])
	}
}

func TestOnlineArrivalValidation(t *testing.T) {
	d := topology.Line(4)
	w := &Workload{}
	w.Add(0, 1, Msg{ID: 0, Origin: 2}) // origin mismatch
	_, err := Run(RunConfig{
		Dual: d, Fack: testFack, Fprog: testFprog,
		Scheduler: &sched.Sync{}, Workload: w,
		Automata: NewBMMBFleet(4),
	})
	if err == nil {
		t.Fatal("origin mismatch did not error")
	}
	if !strings.Contains(err.Error(), "contradicts its origin") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestSingletonAndSingleSource(t *testing.T) {
	a := SingleSource(5, 2, 3)
	if a.K() != 3 || len(a[2]) != 3 {
		t.Fatalf("SingleSource wrong: %v", a)
	}
	for i, m := range a[2] {
		if m.ID != i || m.Origin != 2 {
			t.Fatalf("msg %v", m)
		}
	}
	s := Singleton(5, []graph.NodeID{4, 0})
	if s.K() != 2 || len(s[4]) != 1 || len(s[0]) != 1 {
		t.Fatalf("Singleton wrong: %v", s)
	}
	msgs := s.Messages()
	if len(msgs) != 2 {
		t.Fatalf("Messages = %v", msgs)
	}
	_ = sim.Time(0)
}
