package core

import (
	"math/rand"
	"testing"

	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// runFMMB executes FMMB on the dual in the enhanced model with the slot
// scheduler, with model checking enabled.
func runFMMB(t *testing.T, d *topology.Dual, c float64, a Assignment, seed int64) *Result {
	t.Helper()
	cfg := FMMBConfig{N: d.N(), K: a.K(), D: d.G.Diameter(), C: c}
	res := MustRun(RunConfig{
		Dual:             d,
		Fack:             testFack,
		Fprog:            testFprog,
		Scheduler:        &sched.Slot{},
		Mode:             mac.Enhanced,
		Seed:             seed,
		Assignment:       a,
		Automata:         NewFMMBFleet(d.N(), cfg),
		Horizon:          sim.Time(cfg.Rounds()+2) * testFprog,
		StepLimit:        1 << 62,
		HaltOnCompletion: true,
		Options:          RunOptions{Check: true},
	})
	if len(res.MMBViolations) != 0 {
		t.Fatalf("MMB violations: %v", res.MMBViolations)
	}
	if res.Report != nil && !res.Report.OK() {
		t.Fatalf("model violation: %v", res.Report.Violations[0])
	}
	return res
}

func TestFMMBSingleMessageLine(t *testing.T) {
	d := topology.Line(10)
	res := runFMMB(t, d, 1.0, SingleSource(10, 0, 1), 21)
	if !res.Solved {
		t.Fatalf("not solved: %d/%d delivered by %v", res.Delivered, res.Required, res.End)
	}
}

func TestFMMBMultiMessageGrid(t *testing.T) {
	d := topology.Grid(4, 4)
	a := Singleton(16, []graph.NodeID{0, 5, 10, 15})
	res := runFMMB(t, d, 1.0, a, 22)
	if !res.Solved {
		t.Fatalf("not solved: %d/%d delivered by %v", res.Delivered, res.Required, res.End)
	}
}

func TestFMMBGreyZoneGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := 1.6
	d := topology.ConnectedRandomGeometric(40, 4.5, c, 0.5, rng, 100)
	if d == nil {
		t.Fatal("no connected instance")
	}
	a := Singleton(d.N(), []graph.NodeID{0, graph.NodeID(d.N() / 2)})
	res := runFMMB(t, d, c, a, 23)
	if !res.Solved {
		t.Fatalf("not solved: %d/%d delivered by %v", res.Delivered, res.Required, res.End)
	}
}

func TestFMMBManyMessagesOneSource(t *testing.T) {
	d := topology.Grid(3, 5)
	res := runFMMB(t, d, 1.0, SingleSource(15, 7, 6), 24)
	if !res.Solved {
		t.Fatalf("not solved: %d/%d delivered by %v", res.Delivered, res.Required, res.End)
	}
}

func TestFMMBSeedSweep(t *testing.T) {
	// The w.h.p. guarantee across seeds on a small network.
	d := topology.Grid(3, 4)
	for seed := int64(0); seed < 8; seed++ {
		a := Singleton(12, []graph.NodeID{0, 11})
		res := runFMMB(t, d, 1.0, a, seed)
		if !res.Solved {
			t.Fatalf("seed %d: not solved: %d/%d by %v",
				seed, res.Delivered, res.Required, res.End)
		}
	}
}

func TestFMMBNoFackDependence(t *testing.T) {
	// FMMB's completion time is measured in Fprog rounds and must not
	// change when Fack grows: the algorithm aborts every broadcast at
	// round boundaries and never waits for acknowledgments.
	d := topology.Grid(3, 4)
	a := Singleton(12, []graph.NodeID{0, 6})
	run := func(fack sim.Time) sim.Time {
		cfg := FMMBConfig{N: d.N(), K: a.K(), D: d.G.Diameter(), C: 1.0}
		res := MustRun(RunConfig{
			Dual:             d,
			Fack:             fack,
			Fprog:            testFprog,
			Scheduler:        &sched.Slot{},
			Mode:             mac.Enhanced,
			Seed:             77,
			Assignment:       a,
			Automata:         NewFMMBFleet(d.N(), cfg),
			Horizon:          sim.Time(cfg.Rounds()+2) * testFprog,
			StepLimit:        1 << 62,
			HaltOnCompletion: true,
		})
		if !res.Solved {
			t.Fatalf("Fack=%v: not solved", fack)
		}
		return res.CompletionTime
	}
	base := run(2 * testFprog)
	for _, fack := range []sim.Time{8 * testFprog, 64 * testFprog, 512 * testFprog} {
		if got := run(fack); got != base {
			t.Fatalf("completion depends on Fack: %v at Fack=%v vs %v", got, fack, base)
		}
	}
}

func TestFMMBGatherHandsMessagesToMIS(t *testing.T) {
	// After the gather stage, every message must be held by some MIS node
	// (Lemma 4.6). Observe by running to completion and inspecting
	// automata state.
	d := topology.Grid(4, 4)
	a := Singleton(16, []graph.NodeID{1, 6, 12})
	cfg := FMMBConfig{N: 16, K: 3, D: d.G.Diameter(), C: 1.0}
	autos := NewFMMBFleet(16, cfg)
	res := MustRun(RunConfig{
		Dual:             d,
		Fack:             testFack,
		Fprog:            testFprog,
		Scheduler:        &sched.Slot{},
		Mode:             mac.Enhanced,
		Seed:             55,
		Assignment:       a,
		Automata:         autos,
		Horizon:          sim.Time(cfg.Rounds()+2) * testFprog,
		StepLimit:        1 << 62,
		HaltOnCompletion: false, // run the full schedule
	})
	if !res.Solved {
		t.Fatalf("not solved: %d/%d", res.Delivered, res.Required)
	}
	for _, m := range a.Messages() {
		held := false
		for _, auto := range autos {
			f := auto.(*FMMB)
			if f.InMIS() && f.Holds(m) {
				held = true
				break
			}
		}
		if !held {
			t.Fatalf("message %v not held by any MIS node", m)
		}
	}
}

func TestFMMBOverlayDiameterBound(t *testing.T) {
	// Section 4.4 relies on D_H ≤ D for the overlay H over the MIS with
	// 3-hop edges; verify on the MIS the subroutine actually constructs.
	rng := rand.New(rand.NewSource(77))
	d := topology.ConnectedRandomGeometric(45, 4.6, 1.6, 0.5, rng, 100)
	if d == nil {
		t.Fatal("no connected instance")
	}
	mis, _ := runMIS(t, d, 1.6, 5)
	if !d.G.IsMaximalIndependent(mis) {
		t.Fatal("invalid MIS")
	}
	h, _ := d.G.Overlay(mis, 3)
	if !h.IsConnected() {
		t.Fatal("overlay H disconnected for a connected G")
	}
	if dh, dg := h.Diameter(), d.G.Diameter(); dh > dg {
		t.Fatalf("D_H = %d exceeds D = %d", dh, dg)
	}
}

func TestFMMBConfigRounds(t *testing.T) {
	cfg := FMMBConfig{N: 32, K: 4, D: 8, C: 1.5}.withDefaults()
	want := cfg.MIS.Rounds() + 3*cfg.GatherPeriods + cfg.SpreadPhases*cfg.SpreadPeriods*3
	if got := cfg.Rounds(); got != want {
		t.Fatalf("Rounds = %d, want %d", got, want)
	}
}
