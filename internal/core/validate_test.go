package core

import (
	"strings"
	"testing"

	"amac/internal/graph"
	"amac/internal/sched"
	"amac/internal/topology"
)

// validRunConfig is a minimal valid configuration the rejection cases
// mutate one field at a time.
func validRunConfig() RunConfig {
	n := 4
	return RunConfig{
		Dual:       topology.Line(n),
		Fack:       200,
		Fprog:      10,
		Scheduler:  &sched.Sync{},
		Assignment: SingleSource(n, 0, 1),
		Automata:   NewBMMBFleet(n),
	}
}

// TestRunConfigValidateRejections covers every condition that used to panic
// inside Run (and the engine constructor beneath it): each malformed field
// must produce a descriptive error from Validate and an error — not a panic
// — from Run.
func TestRunConfigValidateRejections(t *testing.T) {
	base := validRunConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("baseline config invalid: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*RunConfig)
		wantSub string
	}{
		{"nil dual", func(c *RunConfig) { c.Dual = nil }, "Dual is required"},
		{"invalid dual", func(c *RunConfig) {
			c.Dual = &topology.Dual{G: graph.New(4), GPrime: graph.New(3), Name: "broken"}
		}, "invalid dual"},
		{"nil scheduler", func(c *RunConfig) { c.Scheduler = nil }, "Scheduler is required"},
		{"fprog too small", func(c *RunConfig) { c.Fprog = 1 }, "Fprog must be >= 2"},
		{"fack below fprog", func(c *RunConfig) { c.Fack = 5 }, "must be >= Fprog"},
		{"negative eps abort", func(c *RunConfig) { c.EpsAbort = -1 }, "EpsAbort must be >= 0"},
		{"short assignment", func(c *RunConfig) { c.Assignment = c.Assignment[:2] }, "assignment covers 2 of 4 nodes"},
		{"wrong automata count", func(c *RunConfig) { c.Automata = c.Automata[:3] }, "3 automata for 4 nodes"},
		{"nil automaton", func(c *RunConfig) { c.Automata[2] = nil }, "nil automaton for node 2"},
		{"empty workload", func(c *RunConfig) { c.Assignment = make(Assignment, 4) }, "empty workload"},
		{"arrival out of range", func(c *RunConfig) {
			w := &Workload{}
			w.Add(0, 9, Msg{ID: 0, Origin: 9})
			c.Workload = w
		}, "outside [0,4)"},
		{"origin mismatch", func(c *RunConfig) {
			w := &Workload{}
			w.Add(0, 1, Msg{ID: 0, Origin: 2})
			c.Workload = w
		}, "contradicts its origin"},
	}
	for _, tc := range cases {
		cfg := validRunConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
		res, runErr := Run(cfg)
		if runErr == nil || res != nil {
			t.Errorf("%s: Run did not propagate the validation error", tc.name)
		}
	}
}

// TestMustRunPanicsOnInvalid pins the fail-fast wrapper contract.
func TestMustRunPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun did not panic on an invalid config")
		}
	}()
	cfg := validRunConfig()
	cfg.Dual = nil
	MustRun(cfg)
}

// TestRunValidConfigSolves asserts the error-returning Run still executes
// valid configurations end to end.
func TestRunValidConfigSolves(t *testing.T) {
	res, err := Run(validRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("valid config unsolved: %d/%d", res.Delivered, res.Required)
	}
}
