package core

import (
	"fmt"

	"amac/internal/check"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sim"
	"amac/internal/topology"
)

// RunConfig describes one MMB execution.
type RunConfig struct {
	// Dual is the network. Required.
	Dual *topology.Dual
	// Fack and Fprog are the model constants in ticks.
	Fack, Fprog sim.Time
	// Scheduler supplies the model's non-determinism. Required.
	Scheduler mac.Scheduler
	// Mode selects Standard (default) or Enhanced.
	Mode mac.Mode
	// Seed drives all randomness.
	Seed int64
	// Assignment maps nodes to their time-zero injected messages. Either
	// Assignment (length N) or Workload must be set.
	Assignment Assignment
	// Workload optionally supplies timed arrivals for the online MMB
	// variant (paper footnote 4). When set, Assignment is ignored.
	Workload *Workload
	// Automata supplies one node program per node. Required, length N.
	Automata []mac.Automaton
	// Horizon bounds the execution length; 0 selects a generous default
	// derived from the trivial O(D·k·Fack) upper bound.
	Horizon sim.Time
	// StepLimit bounds the number of simulation events; 0 selects a
	// default proportional to the horizon and network size.
	StepLimit uint64
	// HaltOnCompletion stops the run at the moment the last required
	// delivery happens (the runner observes completion; the algorithms
	// themselves never learn k, matching the problem statement).
	HaltOnCompletion bool
	// Check runs the model-guarantee checkers after the run.
	Check bool
	// NoTrace disables trace recording for throughput-oriented runs. The
	// runner's own completion watcher still observes every event, so
	// Result is unaffected. Ignored when Check is set: the MMB checker
	// re-derives the problem conditions from the full trace.
	NoTrace bool
	// EpsAbort forwards to the engine.
	EpsAbort sim.Time
}

// Result reports one MMB execution.
type Result struct {
	// Solved is true when every message reached every node of its
	// origin's connected component in G.
	Solved bool
	// CompletionTime is the time of the last required delivery (valid
	// only when Solved).
	CompletionTime sim.Time
	// End is the time the simulation stopped.
	End sim.Time
	// Delivered counts deliver events observed (unique per node/message).
	Delivered int
	// Required counts the deliveries needed for completion.
	Required int
	// Broadcasts counts MAC broadcast instances used.
	Broadcasts int
	// Steps counts simulation events processed.
	Steps uint64
	// Report holds the model-compliance report (nil unless Check).
	Report *check.Report
	// MMBViolations lists violations of the MMB problem's own
	// correctness conditions (duplicate or unsolicited delivers).
	MMBViolations []string
	// Engine exposes the underlying engine for post-run inspection.
	Engine *mac.Engine
}

// Validate checks the configuration and returns a descriptive error for the
// first violation. It covers every condition Run (and the engine underneath)
// requires, so a config that validates cleanly cannot fail to start.
func (cfg *RunConfig) Validate() error {
	_, err := cfg.resolve()
	return err
}

// resolve validates the configuration and returns the resolved workload
// (building it from the assignment when needed), so Run validates and
// resolves in one pass.
func (cfg *RunConfig) resolve() (*Workload, error) {
	if cfg.Dual == nil {
		return nil, fmt.Errorf("core: RunConfig.Dual is required")
	}
	if err := cfg.Dual.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid dual: %w", err)
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("core: RunConfig.Scheduler is required")
	}
	if cfg.Fprog < 2 {
		return nil, fmt.Errorf("core: Fprog must be >= 2 ticks, got %d (schedulers need at least one tick of slack inside a progress window)", cfg.Fprog)
	}
	if cfg.Fack < cfg.Fprog {
		return nil, fmt.Errorf("core: Fack (%d) must be >= Fprog (%d)", cfg.Fack, cfg.Fprog)
	}
	if cfg.EpsAbort < 0 {
		return nil, fmt.Errorf("core: EpsAbort must be >= 0, got %d", cfg.EpsAbort)
	}
	n := cfg.Dual.N()
	workload := cfg.Workload
	if workload == nil {
		if len(cfg.Assignment) != n {
			return nil, fmt.Errorf("core: assignment covers %d of %d nodes (set Assignment with length N or Workload)", len(cfg.Assignment), n)
		}
		workload = FromAssignment(cfg.Assignment)
	}
	if len(cfg.Automata) != n {
		return nil, fmt.Errorf("core: %d automata for %d nodes", len(cfg.Automata), n)
	}
	for i, a := range cfg.Automata {
		if a == nil {
			return nil, fmt.Errorf("core: nil automaton for node %d", i)
		}
	}
	if workload.K() == 0 {
		return nil, fmt.Errorf("core: empty workload (MMB requires k >= 1)")
	}
	for _, ar := range workload.Arrivals() {
		if int(ar.Node) < 0 || int(ar.Node) >= n {
			return nil, fmt.Errorf("core: arrival at node %d outside [0,%d)", ar.Node, n)
		}
		if ar.Msg.Origin != ar.Node {
			return nil, fmt.Errorf("core: arrival of %v at node %d contradicts its origin", ar.Msg, ar.Node)
		}
	}
	return workload, nil
}

// Run executes the configured MMB instance to completion (or horizon) and
// returns the result. Invalid configurations return a descriptive error
// (see Validate) rather than panicking; fail-fast callers use MustRun.
func Run(cfg RunConfig) (*Result, error) {
	workload, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	cfg.Workload = workload
	n := cfg.Dual.N()
	k := cfg.Workload.K()
	d := cfg.Dual.G.Diameter()
	if cfg.Horizon == 0 {
		// Trivial upper bound O(D·k·Fack) with headroom, plus slack for
		// FMMB's polylog terms on small networks, shifted by the last
		// arrival for online workloads.
		cfg.Horizon = cfg.Workload.MaxAt() +
			sim.Time(4*(d+1)*(k+1))*cfg.Fack + 4096*cfg.Fprog
	}
	if cfg.StepLimit == 0 {
		cfg.StepLimit = uint64(n+1) * uint64(cfg.Horizon/cfg.Fprog+1) * 64
	}

	eng := mac.NewEngine(mac.Config{
		Dual:      cfg.Dual,
		Fack:      cfg.Fack,
		Fprog:     cfg.Fprog,
		Scheduler: cfg.Scheduler,
		Mode:      cfg.Mode,
		Seed:      cfg.Seed,
		EpsAbort:  cfg.EpsAbort,
		NoTrace:   cfg.NoTrace && !cfg.Check,
	}, cfg.Automata)

	// Required deliveries: every message must reach every node in its
	// origin's G-component.
	compOf := make([]int, n)
	for ci, comp := range cfg.Dual.G.Components() {
		for _, v := range comp {
			compOf[v] = ci
		}
	}
	compSize := make(map[int]int)
	for _, ci := range compOf {
		compSize[ci]++
	}
	required := 0
	for _, ar := range cfg.Workload.Arrivals() {
		required += compSize[compOf[ar.Msg.Origin]]
	}

	res := &Result{Required: required, Engine: eng}
	seen := make(map[deliverKey]bool, required)
	arrived := make(map[Msg]bool, k)
	eng.Watch(func(ev sim.TraceEvent) {
		switch ev.Kind {
		case "arrive":
			arrived[ev.Arg.(Msg)] = true
		case DeliverKind:
			m, ok := ev.Arg.(Msg)
			if !ok {
				return
			}
			key := deliverKey{node: mac.NodeID(ev.Node), msg: m}
			if seen[key] {
				res.MMBViolations = append(res.MMBViolations,
					fmt.Sprintf("duplicate deliver of %v at node %d", m, ev.Node))
				return
			}
			if !arrived[m] {
				res.MMBViolations = append(res.MMBViolations,
					fmt.Sprintf("deliver of %v at node %d before any arrive", m, ev.Node))
			}
			seen[key] = true
			// Count only deliveries required by the problem (same
			// component as the origin); cross-component leakage through
			// G'-edges is legal but not required.
			if compOf[key.node] == compOf[m.Origin] {
				res.Delivered++
				if res.Delivered == required {
					res.Solved = true
					res.CompletionTime = ev.At
					if cfg.HaltOnCompletion {
						eng.Halt()
					}
				}
			}
		}
	})

	eng.Start()
	for _, ar := range cfg.Workload.Arrivals() {
		eng.Arrive(ar.Node, ar.Msg, ar.At)
	}
	eng.Sim().SetHorizon(cfg.Horizon)
	eng.Sim().SetStepLimit(cfg.StepLimit)
	eng.Run()

	res.End = eng.Sim().Now()
	res.Steps = eng.Sim().Steps()
	res.Broadcasts = len(eng.Instances())
	if cfg.Check {
		res.Report = check.All(cfg.Dual, eng.Instances(), check.Params{
			Fack:     cfg.Fack,
			Fprog:    cfg.Fprog,
			EpsAbort: cfg.EpsAbort,
			End:      res.End,
		})
		// Defense in depth: re-derive the MMB problem conditions from the
		// trace with the generic checker (the watcher above catches them
		// online; this validates the full recorded history).
		check.MMB(res.Report, eng.Trace().Events(), check.MMBParams{
			DeliverKind: DeliverKind,
		})
	}
	return res, nil
}

// MustRun is Run with the pre-redesign fail-fast contract: it panics on an
// invalid configuration. Harnesses and tests whose configurations are
// calibrated to be valid by construction use it; anything accepting
// external input should call Run and handle the error.
func MustRun(cfg RunConfig) *Result {
	res, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return res
}

type deliverKey struct {
	node mac.NodeID
	msg  Msg
}

// SingleSource builds an assignment with k messages all injected at origin.
func SingleSource(n int, origin graph.NodeID, k int) Assignment {
	a := make(Assignment, n)
	for i := 0; i < k; i++ {
		a[origin] = append(a[origin], Msg{ID: i, Origin: origin})
	}
	return a
}

// Singleton builds a singleton assignment (no node starts with more than
// one message) over the given origins, in order.
func Singleton(n int, origins []graph.NodeID) Assignment {
	a := make(Assignment, n)
	for i, v := range origins {
		a[v] = append(a[v], Msg{ID: i, Origin: v})
	}
	return a
}
