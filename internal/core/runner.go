package core

import (
	"fmt"

	"amac/internal/check"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sim"
	"amac/internal/topology"
)

// RunConfig describes one MMB execution.
type RunConfig struct {
	// Dual is the network. Required.
	Dual *topology.Dual
	// Fack and Fprog are the model constants in ticks.
	Fack, Fprog sim.Time
	// Scheduler supplies the model's non-determinism. Required.
	Scheduler mac.Scheduler
	// Mode selects Standard (default) or Enhanced.
	Mode mac.Mode
	// Seed drives all randomness.
	Seed int64
	// Assignment maps nodes to their time-zero injected messages. Either
	// Assignment (length N) or Workload must be set.
	Assignment Assignment
	// Workload optionally supplies timed arrivals for the online MMB
	// variant (paper footnote 4). When set, Assignment is ignored.
	Workload *Workload
	// Automata supplies one node program per node. Required, length N.
	Automata []mac.Automaton
	// Horizon bounds the execution length; 0 selects a generous default
	// derived from the trivial O(D·k·Fack) upper bound.
	Horizon sim.Time
	// StepLimit bounds the number of simulation events; 0 selects a
	// default proportional to the horizon and network size.
	StepLimit uint64
	// HaltOnCompletion stops the run at the moment the last required
	// delivery happens (the runner observes completion; the algorithms
	// themselves never learn k, matching the problem statement).
	HaltOnCompletion bool
	// Check runs the model-guarantee checkers after the run.
	Check bool
	// NoTrace disables trace recording for throughput-oriented runs. The
	// runner's own completion watcher still observes every event, so
	// Result is unaffected. Ignored when Check is set: the MMB checker
	// re-derives the problem conditions from the full trace.
	NoTrace bool
	// EpsAbort forwards to the engine.
	EpsAbort sim.Time
}

// Result reports one MMB execution.
type Result struct {
	// Solved is true when every message reached every node of its
	// origin's connected component in G.
	Solved bool
	// CompletionTime is the time of the last required delivery (valid
	// only when Solved).
	CompletionTime sim.Time
	// End is the time the simulation stopped.
	End sim.Time
	// Delivered counts deliver events observed (unique per node/message).
	Delivered int
	// Required counts the deliveries needed for completion.
	Required int
	// Broadcasts counts MAC broadcast instances used.
	Broadcasts int
	// Steps counts simulation events processed.
	Steps uint64
	// Report holds the model-compliance report (nil unless Check).
	Report *check.Report
	// MMBViolations lists violations of the MMB problem's own
	// correctness conditions (duplicate or unsolicited delivers).
	MMBViolations []string
	// Engine exposes the underlying engine for post-run inspection.
	Engine *mac.Engine
}

// Run executes the configured MMB instance to completion (or horizon) and
// returns the result.
func Run(cfg RunConfig) *Result {
	if cfg.Dual == nil {
		panic("core: nil dual")
	}
	n := cfg.Dual.N()
	if cfg.Workload == nil {
		if len(cfg.Assignment) != n {
			panic(fmt.Sprintf("core: assignment covers %d of %d nodes", len(cfg.Assignment), n))
		}
		cfg.Workload = FromAssignment(cfg.Assignment)
	}
	if len(cfg.Automata) != n {
		panic(fmt.Sprintf("core: %d automata for %d nodes", len(cfg.Automata), n))
	}
	k := cfg.Workload.K()
	if k == 0 {
		panic("core: empty workload (MMB requires k >= 1)")
	}
	for _, ar := range cfg.Workload.Arrivals() {
		if int(ar.Node) < 0 || int(ar.Node) >= n {
			panic(fmt.Sprintf("core: arrival at node %d outside [0,%d)", ar.Node, n))
		}
		if ar.Msg.Origin != ar.Node {
			panic(fmt.Sprintf("core: arrival of %v at node %d contradicts its origin", ar.Msg, ar.Node))
		}
	}
	d := cfg.Dual.G.Diameter()
	if cfg.Horizon == 0 {
		// Trivial upper bound O(D·k·Fack) with headroom, plus slack for
		// FMMB's polylog terms on small networks, shifted by the last
		// arrival for online workloads.
		cfg.Horizon = cfg.Workload.MaxAt() +
			sim.Time(4*(d+1)*(k+1))*cfg.Fack + 4096*cfg.Fprog
	}
	if cfg.StepLimit == 0 {
		cfg.StepLimit = uint64(n+1) * uint64(cfg.Horizon/cfg.Fprog+1) * 64
	}

	eng := mac.NewEngine(mac.Config{
		Dual:      cfg.Dual,
		Fack:      cfg.Fack,
		Fprog:     cfg.Fprog,
		Scheduler: cfg.Scheduler,
		Mode:      cfg.Mode,
		Seed:      cfg.Seed,
		EpsAbort:  cfg.EpsAbort,
		NoTrace:   cfg.NoTrace && !cfg.Check,
	}, cfg.Automata)

	// Required deliveries: every message must reach every node in its
	// origin's G-component.
	compOf := make([]int, n)
	for ci, comp := range cfg.Dual.G.Components() {
		for _, v := range comp {
			compOf[v] = ci
		}
	}
	compSize := make(map[int]int)
	for _, ci := range compOf {
		compSize[ci]++
	}
	required := 0
	for _, ar := range cfg.Workload.Arrivals() {
		required += compSize[compOf[ar.Msg.Origin]]
	}

	res := &Result{Required: required, Engine: eng}
	seen := make(map[deliverKey]bool, required)
	arrived := make(map[Msg]bool, k)
	eng.Watch(func(ev sim.TraceEvent) {
		switch ev.Kind {
		case "arrive":
			arrived[ev.Arg.(Msg)] = true
		case DeliverKind:
			m, ok := ev.Arg.(Msg)
			if !ok {
				return
			}
			key := deliverKey{node: mac.NodeID(ev.Node), msg: m}
			if seen[key] {
				res.MMBViolations = append(res.MMBViolations,
					fmt.Sprintf("duplicate deliver of %v at node %d", m, ev.Node))
				return
			}
			if !arrived[m] {
				res.MMBViolations = append(res.MMBViolations,
					fmt.Sprintf("deliver of %v at node %d before any arrive", m, ev.Node))
			}
			seen[key] = true
			// Count only deliveries required by the problem (same
			// component as the origin); cross-component leakage through
			// G'-edges is legal but not required.
			if compOf[key.node] == compOf[m.Origin] {
				res.Delivered++
				if res.Delivered == required {
					res.Solved = true
					res.CompletionTime = ev.At
					if cfg.HaltOnCompletion {
						eng.Halt()
					}
				}
			}
		}
	})

	eng.Start()
	for _, ar := range cfg.Workload.Arrivals() {
		eng.Arrive(ar.Node, ar.Msg, ar.At)
	}
	eng.Sim().SetHorizon(cfg.Horizon)
	eng.Sim().SetStepLimit(cfg.StepLimit)
	eng.Run()

	res.End = eng.Sim().Now()
	res.Steps = eng.Sim().Steps()
	res.Broadcasts = len(eng.Instances())
	if cfg.Check {
		res.Report = check.All(cfg.Dual, eng.Instances(), check.Params{
			Fack:     cfg.Fack,
			Fprog:    cfg.Fprog,
			EpsAbort: cfg.EpsAbort,
			End:      res.End,
		})
		// Defense in depth: re-derive the MMB problem conditions from the
		// trace with the generic checker (the watcher above catches them
		// online; this validates the full recorded history).
		check.MMB(res.Report, eng.Trace().Events(), check.MMBParams{
			DeliverKind: DeliverKind,
		})
	}
	return res
}

type deliverKey struct {
	node mac.NodeID
	msg  Msg
}

// SingleSource builds an assignment with k messages all injected at origin.
func SingleSource(n int, origin graph.NodeID, k int) Assignment {
	a := make(Assignment, n)
	for i := 0; i < k; i++ {
		a[origin] = append(a[origin], Msg{ID: i, Origin: origin})
	}
	return a
}

// Singleton builds a singleton assignment (no node starts with more than
// one message) over the given origins, in order.
func Singleton(n int, origins []graph.NodeID) Assignment {
	a := make(Assignment, n)
	for i, v := range origins {
		a[v] = append(a[v], Msg{ID: i, Origin: v})
	}
	return a
}
