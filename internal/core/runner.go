package core

import (
	"fmt"
	"sync/atomic"

	"amac/internal/check"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sim"
	"amac/internal/topology"
)

// RunConfig describes one MMB execution.
type RunConfig struct {
	// Dual is the network. Required.
	Dual *topology.Dual
	// Fack and Fprog are the model constants in ticks.
	Fack, Fprog sim.Time
	// Scheduler supplies the model's non-determinism. Required; it serves
	// every single-engine execution (the legacy path, and decomposed runs
	// that degenerate to one engine).
	Scheduler mac.Scheduler
	// NewScheduler constructs a fresh scheduler instance. Required when
	// Options.Shards >= 1 (each component shard / region engine gets its
	// own instance; sharing one would entangle their random streams) and
	// forbidden otherwise. Instances must be built deterministically —
	// equal calls, equal schedulers — and the function must be safe to call
	// from concurrent shard workers.
	NewScheduler func() mac.Scheduler
	// Mode selects Standard (default) or Enhanced.
	Mode mac.Mode
	// Seed drives all randomness.
	Seed int64
	// Assignment maps nodes to their time-zero injected messages. Either
	// Assignment (length N) or Workload must be set.
	Assignment Assignment
	// Workload optionally supplies timed arrivals for the online MMB
	// variant (paper footnote 4). When set, Assignment is ignored.
	Workload *Workload
	// Automata supplies one node program per node. Required, length N.
	Automata []mac.Automaton
	// Horizon bounds the execution length; 0 selects a generous default
	// derived from the trivial O(D·k·Fack) upper bound.
	Horizon sim.Time
	// StepLimit bounds the number of simulation events; 0 selects a
	// default proportional to the horizon and network size.
	StepLimit uint64
	// HaltOnCompletion stops the run at the moment the last required
	// delivery happens (the runner observes completion; the algorithms
	// themselves never learn k, matching the problem statement).
	HaltOnCompletion bool
	// Options is the unified observation/verification/parallelism block:
	// trace mode, sink, checking, and the decomposed-executor knobs. The
	// zero value (trace to memory, no check, legacy executor) matches the
	// old defaults; illegal combinations fail Validate.
	Options RunOptions
	// EpsAbort forwards to the engine.
	EpsAbort sim.Time
}

// Result reports one MMB execution.
type Result struct {
	// Solved is true when every message reached every node of its
	// origin's connected component in G.
	Solved bool
	// CompletionTime is the time of the last required delivery (valid
	// only when Solved).
	CompletionTime sim.Time
	// End is the time the simulation stopped.
	End sim.Time
	// Delivered counts deliver events observed (unique per node/message).
	Delivered int
	// Required counts the deliveries needed for completion.
	Required int
	// Broadcasts counts MAC broadcast instances used.
	Broadcasts int
	// Steps counts simulation events processed.
	Steps uint64
	// Report holds the model-compliance report (nil unless Check).
	Report *check.Report
	// MMBViolations lists violations of the MMB problem's own
	// correctness conditions (duplicate or unsolicited delivers).
	MMBViolations []string
	// Trace holds the recorded execution trace when Options.Trace is
	// TraceMemory, nil otherwise. On the legacy executor it aliases the
	// engine's trace (pooled on a warm Runner: valid until the next Run);
	// on the decomposed executor it is a freshly merged trace the caller
	// owns.
	Trace *sim.Trace
	// Engine exposes the underlying engine for post-run inspection. For
	// executions on a warm Runner the engine is pooled: it stays valid
	// only until the Runner's next Run recycles it, so inspect (or copy
	// out of) it before starting another trial. Plain core.Run results
	// keep their engine indefinitely. Decomposed executions (Options.Shards
	// >= 1 on a multi-component network, or Options.Regions > 1) run many
	// engines and leave Engine nil.
	Engine *mac.Engine
}

// Validate checks the configuration and returns a descriptive error for the
// first violation. It covers every condition Run (and the engine underneath)
// requires, so a config that validates cleanly cannot fail to start.
func (cfg *RunConfig) Validate() error {
	_, err := cfg.resolve()
	return err
}

// resolve validates the configuration and returns the resolved workload
// (building it from the assignment when needed), so Run validates and
// resolves in one pass.
func (cfg *RunConfig) resolve() (*Workload, error) {
	if cfg.Dual == nil {
		return nil, fmt.Errorf("core: RunConfig.Dual is required")
	}
	if err := cfg.Dual.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid dual: %w", err)
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("core: RunConfig.Scheduler is required")
	}
	if cfg.Fprog < 2 {
		return nil, fmt.Errorf("core: Fprog must be >= 2 ticks, got %d (schedulers need at least one tick of slack inside a progress window)", cfg.Fprog)
	}
	if cfg.Fack < cfg.Fprog {
		return nil, fmt.Errorf("core: Fack (%d) must be >= Fprog (%d)", cfg.Fack, cfg.Fprog)
	}
	if cfg.EpsAbort < 0 {
		return nil, fmt.Errorf("core: EpsAbort must be >= 0, got %d", cfg.EpsAbort)
	}
	if err := cfg.Options.Validate(); err != nil {
		return nil, err
	}
	if cfg.Options.Shards >= 1 && cfg.NewScheduler == nil {
		return nil, fmt.Errorf("core: Options.Shards=%d requires NewScheduler (each shard engine needs its own scheduler instance)", cfg.Options.Shards)
	}
	if cfg.Options.Shards == 0 && cfg.NewScheduler != nil {
		return nil, fmt.Errorf("core: NewScheduler set but Options.Shards=0 selects the single-engine executor (set Shards >= 1 or drop NewScheduler)")
	}
	n := cfg.Dual.N()
	workload := cfg.Workload
	if workload == nil {
		if len(cfg.Assignment) != n {
			return nil, fmt.Errorf("core: assignment covers %d of %d nodes (set Assignment with length N or Workload)", len(cfg.Assignment), n)
		}
		workload = FromAssignment(cfg.Assignment)
	}
	if len(cfg.Automata) != n {
		return nil, fmt.Errorf("core: %d automata for %d nodes", len(cfg.Automata), n)
	}
	for i, a := range cfg.Automata {
		if a == nil {
			return nil, fmt.Errorf("core: nil automaton for node %d", i)
		}
		if cfg.Options.Regions > 1 {
			if _, ok := a.(mac.Resettable); !ok {
				return nil, fmt.Errorf("core: Options.Regions=%d requires resettable automata (node %d's %T does not implement mac.Resettable; windowed execution replays regions from time zero)",
					cfg.Options.Regions, i, a)
			}
		}
	}
	if workload.K() == 0 {
		return nil, fmt.Errorf("core: empty workload (MMB requires k >= 1)")
	}
	for _, ar := range workload.Arrivals() {
		if int(ar.Node) < 0 || int(ar.Node) >= n {
			return nil, fmt.Errorf("core: arrival at node %d outside [0,%d)", ar.Node, n)
		}
		if ar.Msg.Origin != ar.Node {
			return nil, fmt.Errorf("core: arrival of %v at node %d contradicts its origin", ar.Msg, ar.Node)
		}
	}
	return workload, nil
}

// horizonDiameterSamples and horizonDiameterSeed fix the sampling
// parameters of the default-horizon diameter estimate, so equal
// configurations always resolve to equal horizons.
const (
	horizonDiameterSamples = 8
	horizonDiameterSeed    = 1
)

// Run executes the configured MMB instance to completion (or horizon) and
// returns the result. Invalid configurations return a descriptive error
// (see Validate) rather than panicking; fail-fast callers use MustRun.
func Run(cfg RunConfig) (*Result, error) {
	return runWith(cfg, nil)
}

// Runner executes repeated MMB configurations on one pinned network with
// warm state: a mac.Arena (pooled engine, node states, flat CSR delivery
// rows, warm event pool), the component index of G, and the runner's own
// completion-tracking maps, all reused across Run calls. The first Run is a
// normal cold execution that fills the pools; subsequent runs skip engine
// and fleet-scaffolding allocation entirely. Executions are byte-identical
// to core.Run at equal configuration — the golden-trace suite and
// TestRunnerWarmMatchesCold pin that.
//
// A Runner serves one execution at a time and is not safe for concurrent
// use; parallel trial pools hold one Runner per worker. Each Run recycles
// the previous Result's Engine (see Result.Engine).
type Runner struct {
	dual      *topology.Dual
	arena     *mac.Arena
	compOf    []int
	compSizes []int
	// compShared marks a component index inherited from Fork: read-only
	// for this runner, so Rebind must compute into fresh slices instead of
	// overwriting the prototype's. forked marks the other direction — this
	// runner has handed its index to forks — with the same copy-on-rebind
	// consequence; atomic only so Fork keeps its concurrent-call guarantee.
	compShared bool
	forked     atomic.Bool
	// compQueue is the BFS scratch componentIndexInto recycles per Rebind.
	compQueue []graph.NodeID
	st        runState
	watch     func(sim.TraceEvent)
	// The G′ component index drives the sharded executor's carve-up. It is
	// computed lazily on the first sharded Run (legacy runs never pay for
	// it) and keyed by the dual it was computed for, so Rebind invalidates
	// it for free. Forks recompute their own rather than sharing.
	gpFor      *topology.Dual
	gpCompOf   []int
	gpCompSize []int
	gpQueue    []graph.NodeID
}

// NewRunner returns a warm runner for the given network. It panics on an
// invalid dual, exactly like mac.NewEngine: runners are constructed from
// already-built topologies, so this is a programming error.
func NewRunner(d *topology.Dual) *Runner {
	r := &Runner{dual: d, arena: mac.NewArena(d)}
	r.compOf, r.compSizes = componentIndex(d.G)
	r.watch = r.st.onEvent
	return r
}

// Fork returns a sibling runner on the same network: it shares the
// immutable topology-derived state — the arena's CSR position index and
// the component index of G — but owns its own warm storage and watcher
// maps. Parallel trial pools fork one prototype runner per topology so the
// indexes are derived once; Fork only reads immutable state and is safe to
// call from multiple goroutines.
func (r *Runner) Fork() *Runner {
	r.forked.Store(true)
	nr := &Runner{
		dual:       r.dual,
		arena:      r.arena.Fork(),
		compOf:     r.compOf,
		compSizes:  r.compSizes,
		compShared: true,
	}
	nr.watch = nr.st.onEvent
	return nr
}

// Dual returns the network the runner was built for.
func (r *Runner) Dual() *topology.Dual { return r.dual }

// Rebind re-targets the runner at a new dual network: the arena is rebound
// (CSR index refilled, delivery block kept when capacity fits) and the
// cached component index of G is recomputed into its existing slices. The
// watcher maps are per-run state and reset on the next Run as always.
// Unpinned trial sweeps rebind one runner per worker to each per-trial
// network draw; executions stay byte-identical to cold core.Run calls.
// Rebinding to the runner's current dual is a no-op.
func (r *Runner) Rebind(d *topology.Dual) {
	if d == r.dual {
		return
	}
	r.arena.Rebind(d)
	r.dual = d
	if r.compShared || r.forked.Load() {
		// The slices are aliased across a Fork relationship (either
		// direction); compute into fresh ones and own them from here on.
		r.compOf, r.compSizes = nil, nil
		r.compShared = false
		r.forked.Store(false)
	}
	r.compOf, r.compSizes, r.compQueue = componentIndexInto(d.G, r.compOf, r.compSizes, r.compQueue)
}

// Run executes cfg against the runner's warm arena. cfg.Dual must be the
// exact network the runner was built for (pointer identity — a structurally
// equal copy would invalidate the precomputed CSR index anyway).
func (r *Runner) Run(cfg RunConfig) (*Result, error) {
	return runWith(cfg, r)
}

// gprimeIndex returns the component index of G′, computed on first use and
// recycled across runs until a Rebind re-targets the runner.
func (r *Runner) gprimeIndex() (compOf, compSizes []int) {
	if r.gpFor != r.dual {
		r.gpCompOf, r.gpCompSize, r.gpQueue =
			componentIndexInto(r.dual.GPrime, r.gpCompOf, r.gpCompSize, r.gpQueue)
		r.gpFor = r.dual
	}
	return r.gpCompOf, r.gpCompSize
}

// componentIndex maps each node to its G-component index and each component
// index to its size. Components are numbered by smallest member, matching
// graph.Components ordering.
func componentIndex(g *graph.Graph) (compOf, compSizes []int) {
	compOf, compSizes, _ = componentIndexInto(g, nil, nil, nil)
	return compOf, compSizes
}

// componentIndexInto is componentIndex computing into the given slices
// (index storage and BFS queue scratch), grown only when capacity is short,
// so a Runner's rebind recycles all of them.
func componentIndexInto(g *graph.Graph, compOf, compSizes []int, queue []graph.NodeID) ([]int, []int, []graph.NodeID) {
	n := g.N()
	if cap(compOf) >= n {
		compOf = compOf[:n]
	} else {
		compOf = make([]int, n)
	}
	for i := range compOf {
		compOf[i] = -1
	}
	compSizes = compSizes[:0]
	if cap(queue) < n {
		queue = make([]graph.NodeID, 0, n)
	}
	for s := 0; s < n; s++ {
		if compOf[s] >= 0 {
			continue
		}
		ci := len(compSizes)
		size := 1
		compOf[s] = ci
		queue = append(queue[:0], graph.NodeID(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if compOf[v] < 0 {
					compOf[v] = ci
					size++
					queue = append(queue, v)
				}
			}
		}
		compSizes = append(compSizes, size)
	}
	return compOf, compSizes, queue
}

// runState is the completion-watcher state of one execution: it counts
// required deliveries, flags MMB violations and halts on completion. Cold
// runs allocate one per execution; a Runner owns one and recycles its maps.
type runState struct {
	res      *Result
	eng      *mac.Engine
	compOf   []int
	required int
	halt     bool
	seen     map[deliverKey]bool
	arrived  map[Msg]bool
}

// onEvent observes every trace event of the execution. It decodes message
// arguments from the typed payload directly — no boxing — because it runs on
// the event hot path of every trial.
func (st *runState) onEvent(ev sim.TraceEvent) {
	switch ev.Kind {
	case "arrive":
		st.arrived[mustMsg(ev.P)] = true
	case DeliverKind:
		m, ok := MsgFromPayload(ev.P)
		if !ok {
			return
		}
		key := deliverKey{node: mac.NodeID(ev.Node), msg: m}
		if st.seen[key] {
			st.res.MMBViolations = append(st.res.MMBViolations,
				fmt.Sprintf("duplicate deliver of %v at node %d", m, ev.Node))
			return
		}
		if !st.arrived[m] {
			st.res.MMBViolations = append(st.res.MMBViolations,
				fmt.Sprintf("deliver of %v at node %d before any arrive", m, ev.Node))
		}
		st.seen[key] = true
		// Count only deliveries required by the problem (same component
		// as the origin); cross-component leakage through G'-edges is
		// legal but not required.
		if st.compOf[key.node] == st.compOf[m.Origin] {
			st.res.Delivered++
			if st.res.Delivered == st.required {
				st.res.Solved = true
				st.res.CompletionTime = ev.At
				if st.halt {
					st.eng.Halt()
				}
			}
		}
	}
}

// runWith is the shared implementation of Run (rn == nil, everything
// allocated fresh) and Runner.Run (rn's arena, component index and watcher
// state recycled).
func runWith(cfg RunConfig, rn *Runner) (*Result, error) {
	workload, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	if rn != nil && cfg.Dual != rn.dual {
		return nil, fmt.Errorf("core: Runner was built for dual %q, not %q (pass the identical built topology)",
			rn.dual.Name, cfg.Dual.Name)
	}
	cfg.Workload = workload
	n := cfg.Dual.N()
	k := cfg.Workload.K()
	if cfg.Horizon == 0 {
		// Trivial upper bound O(D·k·Fack) with headroom, plus slack for
		// FMMB's polylog terms on small networks, shifted by the last
		// arrival for online workloads. The diameter is sampled above
		// graph.ExactDiameterCutoff (exact — and identical — below it):
		// the all-sources exact computation is quadratic and would
		// dominate setup on 10^5-node networks, and the double-sweep
		// estimate is a lower bound whose slack the 4x headroom absorbs.
		d := cfg.Dual.G.ApproxDiameter(horizonDiameterSamples, horizonDiameterSeed)
		cfg.Horizon = cfg.Workload.MaxAt() +
			sim.Time(4*(d+1)*(k+1))*cfg.Fack + 4096*cfg.Fprog
	}
	if cfg.StepLimit == 0 {
		cfg.StepLimit = uint64(n+1) * uint64(cfg.Horizon/cfg.Fprog+1) * 64
	}

	// Decomposed executors. Their output is a pure function of the
	// configuration — independent of Shards beyond the >= 1 switch, and of
	// how many workers actually run — but it is a different function from
	// the legacy single-engine execution whenever the network genuinely
	// decomposes (per-shard scheduler streams replace the one global one).
	if cfg.Options.Regions > 1 {
		return runWindowed(cfg, rn)
	}
	if cfg.Options.Shards >= 1 {
		var gpOf, gpSizes []int
		if rn != nil {
			gpOf, gpSizes = rn.gprimeIndex()
		} else {
			gpOf, gpSizes = componentIndex(cfg.Dual.GPrime)
		}
		if len(gpSizes) > 1 {
			return runSharded(cfg, rn, gpOf, gpSizes)
		}
		// Connected in G′: the only shard is the whole network, and the
		// decomposed semantics coincide exactly with the single-engine
		// execution below (same scheduler, same streams, same trace).
	}

	mcfg := mac.Config{
		Dual:      cfg.Dual,
		Fack:      cfg.Fack,
		Fprog:     cfg.Fprog,
		Scheduler: cfg.Scheduler,
		Mode:      cfg.Mode,
		Seed:      cfg.Seed,
		EpsAbort:  cfg.EpsAbort,
		NoTrace:   cfg.Options.Trace == TraceOff,
	}
	if cfg.Options.Trace == TraceStream {
		mcfg.Sink = cfg.Options.Sink
	}
	if rn != nil {
		mcfg.Arena = rn.arena
	}
	eng := mac.NewEngine(mcfg, cfg.Automata)

	// Required deliveries: every message must reach every node in its
	// origin's G-component.
	var compOf, compSizes []int
	if rn != nil {
		compOf, compSizes = rn.compOf, rn.compSizes
	} else {
		compOf, compSizes = componentIndex(cfg.Dual.G)
	}
	arrivals := cfg.Workload.Arrivals()
	required := 0
	for _, ar := range arrivals {
		required += compSizes[compOf[ar.Msg.Origin]]
	}

	res := &Result{Required: required, Engine: eng}
	var st *runState
	if rn != nil {
		st = &rn.st
		if st.seen == nil {
			st.seen = make(map[deliverKey]bool, required)
			st.arrived = make(map[Msg]bool, k)
		} else {
			clear(st.seen)
			clear(st.arrived)
		}
	} else {
		st = &runState{
			seen:    make(map[deliverKey]bool, required),
			arrived: make(map[Msg]bool, k),
		}
	}
	st.res, st.eng, st.compOf = res, eng, compOf
	st.required, st.halt = required, cfg.HaltOnCompletion
	if rn != nil {
		eng.Watch(rn.watch)
	} else {
		eng.Watch(st.onEvent)
	}

	eng.Start()
	for _, ar := range arrivals {
		eng.Arrive(ar.Node, ar.Msg.Payload(), ar.At)
	}
	eng.Sim().SetHorizon(cfg.Horizon)
	eng.Sim().SetStepLimit(cfg.StepLimit)
	eng.Run()

	res.End = eng.Sim().Now()
	res.Steps = eng.Sim().Steps()
	res.Broadcasts = len(eng.Instances())
	if cfg.Options.Trace == TraceMemory {
		res.Trace = eng.Trace()
	}
	if cfg.Options.Check {
		res.Report = check.All(cfg.Dual, eng.Instances(), check.Params{
			Fack:     cfg.Fack,
			Fprog:    cfg.Fprog,
			EpsAbort: cfg.EpsAbort,
			End:      res.End,
		})
		// Defense in depth: re-derive the MMB problem conditions from the
		// trace with the generic checker (the watcher above catches them
		// online; this validates the full recorded history).
		check.MMB(res.Report, eng.Trace().Events(), check.MMBParams{
			DeliverKind: DeliverKind,
		})
	}
	return res, nil
}

// MustRun is Run with the pre-redesign fail-fast contract: it panics on an
// invalid configuration. Harnesses and tests whose configurations are
// calibrated to be valid by construction use it; anything accepting
// external input should call Run and handle the error.
func MustRun(cfg RunConfig) *Result {
	res, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return res
}

type deliverKey struct {
	node mac.NodeID
	msg  Msg
}

// SingleSource builds an assignment with k messages all injected at origin.
func SingleSource(n int, origin graph.NodeID, k int) Assignment {
	a := make(Assignment, n)
	for i := 0; i < k; i++ {
		a[origin] = append(a[origin], Msg{ID: i, Origin: origin})
	}
	return a
}

// Singleton builds a singleton assignment (no node starts with more than
// one message) over the given origins, in order.
func Singleton(n int, origins []graph.NodeID) Assignment {
	a := make(Assignment, n)
	for i, v := range origins {
		a[v] = append(a[v], Msg{ID: i, Origin: v})
	}
	return a
}
