package core

import (
	"sort"

	"amac/internal/check"
	"amac/internal/mac"
	"amac/internal/par"
	"amac/internal/sim"
)

// The windowed executor: Options.Regions > 1, the first rung of the
// optimistic time-window scheme for single-component giants. The network is
// partitioned into contiguous node regions, each on its own engine that
// owns its nodes (mac.Config.Owns); deliveries crossing a region boundary
// are exported by the sending engine and injected into the receiving one
// (mac.Engine.InjectRecv). Regions execute one Fprog-sized window at a time
// in parallel, then exchange exports at a barrier:
//
//   - an export landing at or after the receiver's clock is injected into
//     the live engine, which re-runs to the window edge;
//   - an export landing before the receiver's clock — or the retraction of
//     one it already applied — rolls the region back: the pooled engine is
//     re-acquired (recycled events, reset trace), its automata reset, and
//     the region replays from time zero with the full accumulated inbox.
//
// The exchange repeats until no region's inbox changes (a synchronous
// fixpoint, so the committed executions are independent of how many workers
// ran the regions), then the window advances. A window whose fixpoint fails
// to settle within windowFixpointCap iterations falls back — again
// deterministically — to a serial single-engine execution.
//
// The committed semantics is a pure function of the configuration (for a
// fixed Regions value): TestWindowedDeterminism pins that traces are
// byte-identical across Shards values and repeated runs. It is a different
// interleaving from the legacy serial execution — cross-region ties order
// by injection instead of global scheduling order — but every model
// guarantee still holds, which Options.Check verifies per region and across
// the merged trace.

// windowFixpointCap bounds fixpoint iterations per window. A cap hit (an
// oscillating cross-region schedule) abandons windowing for the run and
// re-executes serially, so the result is still deterministic.
const windowFixpointCap = 64

// extEvent is one exported cross-region delivery. (src, idx) — the
// exporting region and the position in its export order — make the sort
// and the applied-inbox comparison total and deterministic.
type extEvent struct {
	at      sim.Time
	to      mac.NodeID
	inst    mac.InstanceID
	sender  mac.NodeID
	payload mac.Payload
	src     int
	idx     int
}

func extLess(a, b extEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.idx < b.idx
}

// region is the per-region execution state the window loop drives.
type region struct {
	lo, hi  mac.NodeID // owned nodes: [lo, hi)
	nodes   []mac.NodeID
	arrs    []Arrival
	arena   *mac.Arena
	eng     *mac.Engine
	outbox  []extEvent // exports of the current execution prefix, in order
	applied []extEvent // the inbox the current execution has incorporated
	inbox   []extEvent // the inbox the last exchange computed
	replay  bool       // rebuild from time zero before the next run
	run     bool       // participate in the next run round
}

func (rg *region) owns(v mac.NodeID) bool { return v >= rg.lo && v < rg.hi }

func runWindowed(cfg RunConfig, rn *Runner) (*Result, error) {
	n := cfg.Dual.N()
	nRegions := cfg.Options.Regions
	if nRegions > n {
		nRegions = n
	}

	var baseArena *mac.Arena
	if rn != nil {
		baseArena = rn.arena
	} else {
		baseArena = mac.NewArena(cfg.Dual)
	}

	arrivals := cfg.Workload.Arrivals()
	regions := make([]region, nRegions)
	for r := range regions {
		lo := mac.NodeID(r * n / nRegions)
		hi := mac.NodeID((r + 1) * n / nRegions)
		rg := &regions[r]
		rg.lo, rg.hi = lo, hi
		rg.nodes = make([]mac.NodeID, 0, hi-lo)
		for v := lo; v < hi; v++ {
			rg.nodes = append(rg.nodes, v)
		}
		for _, ar := range arrivals {
			if rg.owns(ar.Node) {
				rg.arrs = append(rg.arrs, ar)
			}
		}
		// Forks share the CSR position index; each region keeps its own
		// pooled engine alive across windows.
		rg.arena = baseArena.Fork()
		rg.replay, rg.run = true, true
	}

	workers := par.Workers(cfg.Options.Shards, nRegions)
	runRound := func(windowEnd sim.Time) {
		work := make([]int, 0, nRegions)
		for r := range regions {
			if regions[r].run {
				work = append(work, r)
			}
		}
		par.For(workers, len(work), func(i int) {
			runRegionTo(cfg, &regions[work[i]], work[i], windowEnd)
		})
	}

	// exchange recomputes every region's inbox from the current outboxes
	// and marks the regions whose next round must run (and how). It
	// returns whether any inbox changed.
	inboxes := make([][]extEvent, nRegions)
	exchange := func() bool {
		for r := range inboxes {
			inboxes[r] = inboxes[r][:0]
		}
		for s := range regions {
			for _, ev := range regions[s].outbox {
				r := regionIndexOf(regions, ev.to)
				inboxes[r] = append(inboxes[r], ev)
			}
		}
		changed := false
		for r := range regions {
			rg := &regions[r]
			sort.Slice(inboxes[r], func(a, b int) bool { return extLess(inboxes[r][a], inboxes[r][b]) })
			rg.inbox = append(rg.inbox[:0], inboxes[r]...)
			rg.run, rg.replay = false, false
			if extEqual(rg.inbox, rg.applied) {
				continue
			}
			changed = true
			rg.run = true
			rg.replay = !extIncremental(rg.applied, rg.inbox, rg.eng.Sim().Now())
		}
		return changed
	}

	horizon := cfg.Horizon
	windowEnd := cfg.Fprog
	if windowEnd > horizon {
		windowEnd = horizon
	}
	fellBack := false
	for {
		converged := false
		for iter := 0; iter < windowFixpointCap; iter++ {
			runRound(windowEnd)
			if !exchange() {
				converged = true
				break
			}
		}
		if !converged {
			fellBack = true
			break
		}
		// Window committed. Done when every region is quiescent or the
		// horizon is reached; under HaltOnCompletion also when all
		// required deliveries have happened (the runner may overshoot by
		// at most one window — completion is detected at the barrier).
		if windowEnd >= horizon {
			break
		}
		idle := true
		for r := range regions {
			if regions[r].eng.Sim().Pending() {
				idle = false
				break
			}
		}
		if idle {
			break
		}
		if cfg.HaltOnCompletion && windowedComplete(cfg, regions) {
			break
		}
		windowEnd += cfg.Fprog
		if windowEnd > horizon {
			windowEnd = horizon
		}
		for r := range regions {
			rg := &regions[r]
			rg.run = rg.eng.Sim().Pending() && rg.eng.Sim().NextTime() <= windowEnd
			rg.replay = false
		}
	}

	if fellBack {
		// Deterministic escape hatch: the automata have been mutated by
		// the abandoned optimistic executions, so reset them all and run
		// the whole network serially on a fresh scheduler instance.
		for _, a := range cfg.Automata {
			a.(mac.Resettable).Reset()
		}
		fcfg := cfg
		fcfg.Options.Shards = 0
		fcfg.Options.Regions = 0
		fcfg.Scheduler = cfg.NewScheduler()
		fcfg.NewScheduler = nil
		return runWith(fcfg, rn)
	}

	return mergeWindowed(cfg, regions)
}

// regionIndexOf locates the region owning v. Regions partition [0, n) into
// contiguous ranges, so a binary search over the lower bounds suffices.
func regionIndexOf(regions []region, v mac.NodeID) int {
	lo, hi := 0, len(regions)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if regions[mid].lo <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// extEqual reports whether two sorted export lists are identical.
func extEqual(a, b []extEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// extIncremental reports whether newInbox extends applied only with events
// at or after clock — the case a live engine can absorb by injection,
// without rolling back. applied and newInbox are sorted by extLess.
func extIncremental(applied, newInbox []extEvent, clock sim.Time) bool {
	i := 0
	for _, ev := range newInbox {
		if i < len(applied) && applied[i] == ev {
			i++
			continue
		}
		if ev.at < clock {
			return false
		}
	}
	return i == len(applied) // every applied event survived
}

// runRegionTo brings one region's execution to the window edge: a full
// replay from time zero when rg.replay is set, otherwise injection of the
// not-yet-applied inbox suffix into the live engine and a re-run.
func runRegionTo(cfg RunConfig, rg *region, ri int, windowEnd sim.Time) {
	if rg.replay || rg.eng == nil {
		for _, v := range rg.nodes {
			if res, ok := cfg.Automata[v].(mac.Resettable); ok {
				res.Reset()
			}
		}
		mcfg := mac.Config{
			Dual:      cfg.Dual,
			Fack:      cfg.Fack,
			Fprog:     cfg.Fprog,
			Scheduler: cfg.NewScheduler(),
			Mode:      cfg.Mode,
			Seed:      cfg.Seed,
			EpsAbort:  cfg.EpsAbort,
			NoTrace:   cfg.Options.Trace == TraceOff,
			Owns:      rg.owns,
			Export: func(at sim.Time, to mac.NodeID, inst mac.InstanceID, sender mac.NodeID, payload mac.Payload) {
				rg.outbox = append(rg.outbox, extEvent{
					at: at, to: to, inst: inst, sender: sender, payload: payload,
					src: ri, idx: len(rg.outbox),
				})
			},
			Arena: rg.arena,
		}
		rg.eng = mac.NewEngine(mcfg, cfg.Automata)
		rg.eng.Sim().SetHorizon(cfg.Horizon)
		rg.eng.Sim().SetStepLimit(cfg.StepLimit)
		rg.eng.StartNodes(rg.nodes)
		for _, ar := range rg.arrs {
			rg.eng.Arrive(ar.Node, ar.Msg.Payload(), ar.At)
		}
		rg.outbox = rg.outbox[:0]
		for _, ev := range rg.inbox {
			rg.eng.InjectRecv(ev.at, ev.to, ev.inst, ev.sender, ev.payload)
		}
		rg.applied = append(rg.applied[:0], rg.inbox...)
	} else {
		// Inject the new suffix (extIncremental guaranteed every event is
		// at or after the engine's clock) and absorb it below.
		i := 0
		for _, ev := range rg.inbox {
			if i < len(rg.applied) && rg.applied[i] == ev {
				i++
				continue
			}
			rg.eng.InjectRecv(ev.at, ev.to, ev.inst, ev.sender, ev.payload)
		}
		rg.applied = append(rg.applied[:0], rg.inbox...)
	}
	rg.eng.Sim().RunUntil(windowEnd)
}

// windowedComplete reports whether every required delivery appears in the
// committed traces — the HaltOnCompletion barrier test. It re-derives the
// count offline each barrier (traces are replayed wholesale on rollback, so
// no incremental counter survives).
func windowedComplete(cfg RunConfig, regions []region) bool {
	res, _ := windowedAccount(cfg, regions, nil)
	return res.Solved
}

// windowedAccount runs the runner's completion accounting over the merged
// committed trace: Delivered/Solved/CompletionTime and the online MMB
// violations, exactly as the single-engine watcher observes them.
func windowedAccount(cfg RunConfig, regions []region, sink sim.TraceSink) (*Result, []int) {
	compOf, compSizes := componentIndex(cfg.Dual.G)
	required := 0
	for _, ar := range cfg.Workload.Arrivals() {
		required += compSizes[compOf[ar.Msg.Origin]]
	}
	res := &Result{Required: required}
	st := runState{
		res:      res,
		compOf:   compOf,
		required: required,
		seen:     make(map[deliverKey]bool, required),
		arrived:  make(map[Msg]bool, cfg.Workload.K()),
	}
	results := make([]compResult, len(regions))
	for r := range regions {
		results[r].events = regions[r].eng.Trace().Events()
	}
	mergeTraces(results, traceFunc(func(ev sim.TraceEvent) {
		st.onEvent(ev)
		if sink != nil {
			sink.Append(ev)
		}
	}))
	return res, compOf
}

// traceFunc adapts a function to sim.TraceSink.
type traceFunc func(sim.TraceEvent)

func (f traceFunc) Append(ev sim.TraceEvent) { f(ev) }

// mergeWindowed assembles the final Result from the committed regions.
func mergeWindowed(cfg RunConfig, regions []region) (*Result, error) {
	var res *Result
	switch cfg.Options.Trace {
	case TraceMemory:
		tr := &sim.Trace{}
		res, _ = windowedAccount(cfg, regions, tr)
		res.Trace = tr
	case TraceStream:
		res, _ = windowedAccount(cfg, regions, cfg.Options.Sink)
	default:
		res, _ = windowedAccount(cfg, regions, nil)
	}
	for r := range regions {
		rg := &regions[r]
		res.Steps += rg.eng.Sim().Steps()
		res.Broadcasts += len(rg.eng.Instances())
		if end := rg.eng.Sim().Now(); end > res.End {
			res.End = end
		}
	}
	if cfg.Options.Check {
		// One checker pass over the concatenated instances: the progress
		// bound is a cross-instance property (a window at receiver j may be
		// covered by a rcv from any region's instance), so per-region
		// reports would fabricate violations.
		var insts []*mac.Instance
		for r := range regions {
			insts = append(insts, regions[r].eng.Instances()...)
		}
		res.Report = check.All(cfg.Dual, insts, check.Params{
			Fack:     cfg.Fack,
			Fprog:    cfg.Fprog,
			EpsAbort: cfg.EpsAbort,
			End:      res.End,
		})
		if res.Trace != nil {
			check.MMB(res.Report, res.Trace.Events(), check.MMBParams{DeliverKind: DeliverKind})
		}
	}
	return res, nil
}
