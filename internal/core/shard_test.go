package core_test

import (
	"fmt"
	"strings"
	"testing"

	. "amac/internal/core"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// disjointLines builds one reliable dual holding `lines` disjoint line
// graphs of `per` nodes each — a multi-component network for the sharded
// executor.
func disjointLines(lines, per int) *topology.Dual {
	g := graph.New(lines * per)
	for l := 0; l < lines; l++ {
		base := l * per
		for i := 0; i < per-1; i++ {
			g.AddEdge(graph.NodeID(base+i), graph.NodeID(base+i+1))
		}
	}
	return topology.Reliable(g, fmt.Sprintf("%d-disjoint-lines", lines))
}

func newSync() mac.Scheduler { return &sched.Sync{Rel: sched.Bernoulli{P: 0.5}} }

// shardedConfig is the shared multi-component configuration of the sharded
// executor tests: three disjoint lines, one message per line.
func shardedConfig(shards int) RunConfig {
	d := disjointLines(3, 8)
	return RunConfig{
		Dual:             d,
		Fack:             200,
		Fprog:            10,
		Scheduler:        newSync(),
		NewScheduler:     newSync,
		Seed:             5,
		Assignment:       Singleton(d.N(), []graph.NodeID{0, 8, 16}),
		Automata:         NewBMMBFleet(d.N()),
		HaltOnCompletion: true,
		Options:          RunOptions{Check: true, Shards: shards},
	}
}

func runSharded(t *testing.T, cfg RunConfig) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Solved {
		t.Fatalf("unsolved: %d/%d deliveries", res.Delivered, res.Required)
	}
	if res.Report != nil && !res.Report.OK() {
		t.Fatalf("model violation: %v", res.Report.Violations[0])
	}
	if len(res.MMBViolations) > 0 {
		t.Fatalf("MMB violations: %v", res.MMBViolations)
	}
	return res
}

// TestShardedDeterminism pins the tentpole guarantee: on a multi-component
// network the decomposed executor's merged trace and result are identical
// at every shard count and across repeated runs.
func TestShardedDeterminism(t *testing.T) {
	ref := runSharded(t, shardedConfig(1))
	refTrace := ref.Trace.String()
	if ref.Engine != nil {
		t.Fatal("decomposed run should leave Result.Engine nil")
	}
	if refTrace == "" {
		t.Fatal("empty merged trace")
	}
	for _, shards := range []int{1, 2, 4, 16} {
		res := runSharded(t, shardedConfig(shards))
		if got := res.Trace.String(); got != refTrace {
			t.Fatalf("shards=%d trace differs from shards=1", shards)
		}
		if res.Delivered != ref.Delivered || res.Steps != ref.Steps ||
			res.Broadcasts != ref.Broadcasts || res.CompletionTime != ref.CompletionTime ||
			res.End != ref.End {
			t.Fatalf("shards=%d result differs: %+v vs %+v", shards, res, ref)
		}
	}
}

// TestShardedWarmMatchesCold pins that a warm Runner's sharded execution is
// byte-identical to the cold core.Run path, across repeated runs on the
// same runner.
func TestShardedWarmMatchesCold(t *testing.T) {
	cold := runSharded(t, shardedConfig(4))
	coldTrace := cold.Trace.String()

	cfg := shardedConfig(4)
	rn := NewRunner(cfg.Dual)
	for trial := 0; trial < 3; trial++ {
		cfg.Automata = NewBMMBFleet(cfg.Dual.N())
		res, err := rn.Run(cfg)
		if err != nil {
			t.Fatalf("warm run %d: %v", trial, err)
		}
		if got := res.Trace.String(); got != coldTrace {
			t.Fatalf("warm trial %d trace differs from cold", trial)
		}
	}
}

// TestShardedStreamMatchesMemory pins that stream mode observes exactly the
// merged in-memory trace.
func TestShardedStreamMatchesMemory(t *testing.T) {
	mem := runSharded(t, shardedConfig(2))

	cfg := shardedConfig(2)
	cfg.Automata = NewBMMBFleet(cfg.Dual.N())
	var sink sim.Trace
	cfg.Options = RunOptions{Trace: TraceStream, Sink: &sink, Shards: 2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("stream run: %v", err)
	}
	if res.Trace != nil {
		t.Fatal("stream mode should not retain an in-memory trace on the result")
	}
	if got, want := sink.String(), mem.Trace.String(); got != want {
		t.Fatal("streamed trace differs from memory-mode trace")
	}
}

// TestShardedConnectedMatchesLegacy pins the degenerate case: on a
// connected network the decomposed executor coincides exactly with the
// legacy single-engine execution.
func TestShardedConnectedMatchesLegacy(t *testing.T) {
	d := topology.Line(12)
	mk := func(shards int) RunConfig {
		cfg := RunConfig{
			Dual:             d,
			Fack:             200,
			Fprog:            10,
			Scheduler:        newSync(),
			Seed:             3,
			Assignment:       SingleSource(12, 0, 2),
			Automata:         NewBMMBFleet(12),
			HaltOnCompletion: true,
			Options:          RunOptions{Check: true, Shards: shards},
		}
		if shards >= 1 {
			cfg.NewScheduler = newSync
		}
		return cfg
	}
	legacy := runSharded(t, mk(0))
	decomposed := runSharded(t, mk(4))
	if legacy.Trace.String() != decomposed.Trace.String() {
		t.Fatal("connected-network sharded trace differs from legacy")
	}
	if decomposed.Engine == nil {
		t.Fatal("connected-network decomposed run degenerates to one engine and keeps it on the result")
	}
}

// TestRunOptionsValidate walks the illegal-combination table the redesign
// replaced silent precedence with.
func TestRunOptionsValidate(t *testing.T) {
	var sink sim.Trace
	cases := []struct {
		name string
		opts RunOptions
		want string // substring of the error, "" = valid
	}{
		{"zero value", RunOptions{}, ""},
		{"memory+check", RunOptions{Check: true}, ""},
		{"stream", RunOptions{Trace: TraceStream, Sink: &sink}, ""},
		{"off", RunOptions{Trace: TraceOff}, ""},
		{"sharded", RunOptions{Shards: 4}, ""},
		{"windowed", RunOptions{Shards: 2, Regions: 8}, ""},
		{"stream without sink", RunOptions{Trace: TraceStream}, "requires a Sink"},
		{"sink without stream", RunOptions{Sink: &sink}, "only Trace=stream"},
		{"check+stream", RunOptions{Trace: TraceStream, Sink: &sink, Check: true}, "Check requires Trace=memory"},
		{"check+off", RunOptions{Trace: TraceOff, Check: true}, "Check requires Trace=memory"},
		{"negative shards", RunOptions{Shards: -1}, "negative Shards"},
		{"negative regions", RunOptions{Regions: -1}, "negative Regions"},
		{"regions without shards", RunOptions{Regions: 4}, "requires Shards >= 1"},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

// TestRunConfigSchedulerRules pins the NewScheduler pairing rules on the
// config surface.
func TestRunConfigSchedulerRules(t *testing.T) {
	d := topology.Line(8)
	base := RunConfig{
		Dual:       d,
		Fack:       200,
		Fprog:      10,
		Scheduler:  newSync(),
		Assignment: SingleSource(8, 0, 1),
		Automata:   NewBMMBFleet(8),
	}

	sharded := base
	sharded.Options.Shards = 2
	if err := sharded.Validate(); err == nil || !strings.Contains(err.Error(), "requires NewScheduler") {
		t.Errorf("Shards without NewScheduler: got %v", err)
	}

	legacy := base
	legacy.NewScheduler = newSync
	if err := legacy.Validate(); err == nil || !strings.Contains(err.Error(), "Shards=0") {
		t.Errorf("NewScheduler without Shards: got %v", err)
	}
}
