// Package core implements the paper's contribution: the multi-message
// broadcast (MMB) problem (Section 2), the BMMB algorithm for the standard
// abstract MAC layer (Section 3), and the FMMB algorithm with its MIS,
// gather and spread subroutines for the enhanced layer (Section 4), plus a
// runner that executes an MMB instance end-to-end and reports completion
// metrics and model-compliance checks.
//
// Run validates its configuration and returns an error for anything
// malformed — RunConfig.Validate documents every condition. (Earlier
// versions panicked on invalid configs; MustRun preserves that fail-fast
// contract for calibrated harnesses and tests.) Algorithms are also
// registered by name (RegisterAlgorithm) so the scenario layer can resolve
// them declaratively.
package core

import (
	"fmt"

	"amac/internal/mac"
)

// Msg is one MMB broadcast message. Messages are black boxes that cannot be
// combined (no network coding); only a constant number fit in one local
// broadcast — the algorithms here send exactly one per broadcast. Msg is
// comparable so it can key sets and maps.
type Msg struct {
	// ID uniquely identifies the message within an execution.
	ID int
	// Origin is the node the environment injected the message at.
	Origin mac.NodeID
}

// String renders the message compactly.
func (m Msg) String() string { return fmt.Sprintf("m%d@%d", m.ID, m.Origin) }

// Assignment maps each node to the messages the environment injects there
// at time zero. Index is the node ID.
type Assignment [][]Msg

// K returns the total number of messages in the assignment.
func (a Assignment) K() int {
	k := 0
	for _, ms := range a {
		k += len(ms)
	}
	return k
}

// Messages returns all messages in node order.
func (a Assignment) Messages() []Msg {
	out := make([]Msg, 0, a.K())
	for _, ms := range a {
		out = append(out, ms...)
	}
	return out
}

// DeliverKind is the trace event kind emitted by MMB algorithms when a node
// performs the deliver(m) output of the MMB problem definition.
const DeliverKind = "deliver"
