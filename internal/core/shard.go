package core

import (
	"amac/internal/check"
	"amac/internal/mac"
	"amac/internal/par"
	"amac/internal/sim"
)

// The component-sharded executor: Options.Shards >= 1 on a network whose G′
// decomposes. Deliveries travel only over G′ edges, so the executions of
// distinct G′ components share no events at all — each component runs on
// its own engine (full-network node-state arrays, so node v's per-node
// random stream is Fork(v) exactly as in a single-engine run), at most
// Options.Shards of them concurrently, and the per-component traces and
// results are merged in component order afterwards. The merged output is a
// pure function of the configuration: identical at every shard count and at
// every worker schedule, pinned by TestShardedDeterminism and the golden
// suite.

// compResult is what one component shard's execution leaves behind after
// its pooled engine has been recycled for the worker's next component.
type compResult struct {
	delivered  int
	solved     bool
	completion sim.Time
	end        sim.Time
	steps      uint64
	broadcasts int
	violations []string
	report     *check.Report
	// events is the component's trace, copied out of the pooled engine
	// (empty under TraceOff). Within a component events are time-ordered.
	events []sim.TraceEvent
}

func runSharded(cfg RunConfig, rn *Runner, gpOf, gpSizes []int) (*Result, error) {
	n := cfg.Dual.N()
	nComps := len(gpSizes)

	// Required-delivery accounting runs on G components (each lies inside
	// exactly one G′ component, since G ⊆ G′).
	var compOf, compSizes []int
	if rn != nil {
		compOf, compSizes = rn.compOf, rn.compSizes
	} else {
		compOf, compSizes = componentIndex(cfg.Dual.G)
	}

	// Bucket nodes by G′ component, ascending id within each — the wake-up
	// order each shard engine starts its nodes in.
	off := make([]int, nComps+1)
	for _, c := range gpOf {
		off[c+1]++
	}
	for c := 0; c < nComps; c++ {
		off[c+1] += off[c]
	}
	nodesByComp := make([]mac.NodeID, n)
	cursor := append([]int(nil), off[:nComps]...)
	for v := 0; v < n; v++ {
		c := gpOf[v]
		nodesByComp[cursor[c]] = mac.NodeID(v)
		cursor[c]++
	}

	// Bucket arrivals (workload order preserved) and required-delivery
	// counts by component.
	arrivals := cfg.Workload.Arrivals()
	arrByComp := make([][]Arrival, nComps)
	reqByComp := make([]int, nComps)
	required := 0
	for _, ar := range arrivals {
		c := gpOf[ar.Msg.Origin]
		arrByComp[c] = append(arrByComp[c], ar)
		req := compSizes[compOf[ar.Msg.Origin]]
		reqByComp[c] += req
		required += req
	}

	// One warm arena per worker, all sharing the network's CSR position
	// index; a worker's arena serves its components one after another.
	workers := par.Workers(cfg.Options.Shards, nComps)
	arenas := make([]*mac.Arena, workers)
	if rn != nil {
		for w := range arenas {
			arenas[w] = rn.arena.Fork()
		}
	} else {
		arenas[0] = mac.NewArena(cfg.Dual)
		for w := 1; w < workers; w++ {
			arenas[w] = arenas[0].Fork()
		}
	}

	results := make([]compResult, nComps)
	par.ForWorker(workers, nComps, func(w, c int) {
		if reqByComp[c] == 0 && cfg.HaltOnCompletion {
			// A component with no required deliveries is complete before
			// its first event; under HaltOnCompletion the execution halts
			// at that moment, i.e. contributes nothing. Without the halt
			// flag it runs to quiescence like every other component.
			return
		}
		results[c] = runComponent(cfg, arenas[w],
			nodesByComp[off[c]:off[c+1]], arrByComp[c], reqByComp[c], compOf)
	})

	// Merge in component order.
	res := &Result{Required: required}
	solved := required > 0
	for c := range results {
		cr := &results[c]
		res.Delivered += cr.delivered
		res.Steps += cr.steps
		res.Broadcasts += cr.broadcasts
		res.MMBViolations = append(res.MMBViolations, cr.violations...)
		if cr.end > res.End {
			res.End = cr.end
		}
		if reqByComp[c] > 0 {
			solved = solved && cr.solved
			if cr.completion > res.CompletionTime {
				res.CompletionTime = cr.completion
			}
		}
	}
	res.Solved = solved
	if !solved {
		res.CompletionTime = 0
	}
	if cfg.Options.Check {
		res.Report = &check.Report{}
		for c := range results {
			if r := results[c].report; r != nil {
				res.Report.Violations = append(res.Report.Violations, r.Violations...)
			}
		}
	}

	// Merge the per-component traces by (time, component): concurrent
	// events order by component index, events within a component keep
	// their execution order.
	switch cfg.Options.Trace {
	case TraceMemory:
		res.Trace = &sim.Trace{}
		mergeTraces(results, res.Trace)
	case TraceStream:
		// Per-component traces are buffered in memory during the run (the
		// merge needs every component's stream); the sink observes the
		// merged order, exactly as a memory-mode run would record it.
		mergeTraces(results, cfg.Options.Sink)
	}
	return res, nil
}

// runComponent executes the nodes of one G′ component on a fresh engine
// acquisition from the worker's arena and copies everything the merge needs
// out of the pooled state.
func runComponent(cfg RunConfig, arena *mac.Arena, nodes []mac.NodeID, arrivals []Arrival, required int, compOf []int) compResult {
	mcfg := mac.Config{
		Dual:      cfg.Dual,
		Fack:      cfg.Fack,
		Fprog:     cfg.Fprog,
		Scheduler: cfg.NewScheduler(),
		Mode:      cfg.Mode,
		Seed:      cfg.Seed,
		EpsAbort:  cfg.EpsAbort,
		NoTrace:   cfg.Options.Trace == TraceOff,
		Arena:     arena,
	}
	eng := mac.NewEngine(mcfg, cfg.Automata)

	res := &Result{Required: required}
	st := runState{
		res:      res,
		eng:      eng,
		compOf:   compOf,
		required: required,
		halt:     cfg.HaltOnCompletion,
		seen:     make(map[deliverKey]bool, required),
		arrived:  make(map[Msg]bool, len(arrivals)),
	}
	eng.Watch(st.onEvent)

	eng.StartNodes(nodes)
	for _, ar := range arrivals {
		eng.Arrive(ar.Node, ar.Msg.Payload(), ar.At)
	}
	eng.Sim().SetHorizon(cfg.Horizon)
	eng.Sim().SetStepLimit(cfg.StepLimit)
	eng.Run()

	cr := compResult{
		delivered:  res.Delivered,
		solved:     res.Solved,
		completion: res.CompletionTime,
		end:        eng.Sim().Now(),
		steps:      eng.Sim().Steps(),
		broadcasts: len(eng.Instances()),
		violations: res.MMBViolations,
	}
	if cfg.Options.Trace != TraceOff {
		cr.events = append(cr.events, eng.Trace().Events()...)
	}
	if cfg.Options.Check {
		cr.report = check.All(cfg.Dual, eng.Instances(), check.Params{
			Fack:     cfg.Fack,
			Fprog:    cfg.Fprog,
			EpsAbort: cfg.EpsAbort,
			End:      cr.end,
		})
		check.MMB(cr.report, cr.events, check.MMBParams{DeliverKind: DeliverKind})
	}
	return cr
}

// mergeTraces k-way merges the per-component event streams into sink,
// ordered by (At, component index) — a deterministic total order because
// each component's stream is already time-ordered.
func mergeTraces(results []compResult, sink sim.TraceSink) {
	// Binary min-heap of stream heads, keyed (At, comp).
	type head struct {
		at   sim.Time
		comp int
		idx  int
	}
	less := func(a, b head) bool {
		if a.at != b.at {
			return a.at < b.at
		}
		return a.comp < b.comp
	}
	heap := make([]head, 0, len(results))
	push := func(h head) {
		heap = append(heap, h)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	siftDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && less(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && less(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for c := range results {
		if evs := results[c].events; len(evs) > 0 {
			push(head{at: evs[0].At, comp: c, idx: 0})
		}
	}
	for len(heap) > 0 {
		h := heap[0]
		evs := results[h.comp].events
		sink.Append(evs[h.idx])
		if h.idx+1 < len(evs) {
			heap[0] = head{at: evs[h.idx+1].At, comp: h.comp, idx: h.idx + 1}
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown()
	}
}
