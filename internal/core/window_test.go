package core_test

import (
	"math/rand"
	"testing"

	. "amac/internal/core"
	"amac/internal/mac"
	"amac/internal/topology"
)

// fixedAutomaton is a deliberately non-Resettable automaton used to probe
// the Regions>1 validation path.
type fixedAutomaton struct{}

func (fixedAutomaton) Wakeup(mac.Context)             {}
func (fixedAutomaton) Recv(mac.Context, mac.Message)  {}
func (fixedAutomaton) Acked(mac.Context, mac.Message) {}

// windowedConfig is the shared configuration of the windowed-executor
// tests: a connected r-restricted line (grey edges reach across region
// boundaries) split into contiguous time-window regions.
func windowedConfig(shards, regions int, seed int64) RunConfig {
	d := topology.LineRRestricted(24, 2, 0.7, rand.New(rand.NewSource(11)))
	return RunConfig{
		Dual:             d,
		Fack:             200,
		Fprog:            10,
		Scheduler:        newSync(),
		NewScheduler:     newSync,
		Seed:             seed,
		Assignment:       SingleSource(24, 0, 3),
		Automata:         NewBMMBFleet(24),
		HaltOnCompletion: true,
		Options:          RunOptions{Check: true, Shards: shards, Regions: regions},
	}
}

// TestWindowedDeterminism pins the optimistic time-window executor's core
// guarantee: the merged trace and scalar results are a pure function of the
// configuration — independent of the worker count driving the regions.
func TestWindowedDeterminism(t *testing.T) {
	ref := runSharded(t, windowedConfig(1, 4, 5))
	refTrace := ref.Trace.String()
	if refTrace == "" {
		t.Fatal("empty merged trace")
	}
	if ref.Engine != nil {
		t.Fatal("windowed run should leave Result.Engine nil")
	}
	for _, shards := range []int{1, 2, 4, 8} {
		res := runSharded(t, windowedConfig(shards, 4, 5))
		if got := res.Trace.String(); got != refTrace {
			t.Fatalf("shards=%d windowed trace differs from shards=1", shards)
		}
		if res.Delivered != ref.Delivered || res.Steps != ref.Steps ||
			res.Broadcasts != ref.Broadcasts || res.End != ref.End {
			t.Fatalf("shards=%d windowed result differs: %+v vs %+v", shards, res, ref)
		}
	}
}

// TestWindowedMatchesLegacyOutcome pins that the windowed decomposition
// reaches the same solution as the legacy single-engine run: every required
// delivery happens and the checkers hold. (Traces are not byte-compared —
// the windowed executor assigns instance IDs per region, so its trace is
// its own deterministic artifact, validated by the checkers instead.)
func TestWindowedMatchesLegacyOutcome(t *testing.T) {
	legacy := windowedConfig(0, 0, 5)
	legacy.NewScheduler = nil
	lres := runSharded(t, legacy)

	wres := runSharded(t, windowedConfig(2, 4, 5))
	if wres.Delivered != lres.Delivered || wres.Required != lres.Required {
		t.Fatalf("windowed delivered %d/%d, legacy %d/%d",
			wres.Delivered, wres.Required, lres.Delivered, lres.Required)
	}
}

// TestWindowedDeterminismProperty sweeps seeds and region counts, asserting
// for each configuration that two independent executions at different
// worker counts agree byte-for-byte and satisfy the MMB checkers.
func TestWindowedDeterminismProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for _, regions := range []int{2, 3, 6} {
			a := runSharded(t, windowedConfig(1, regions, seed))
			b := runSharded(t, windowedConfig(4, regions, seed))
			if a.Trace.String() != b.Trace.String() {
				t.Fatalf("seed=%d regions=%d: trace depends on worker count", seed, regions)
			}
			if a.Delivered != b.Delivered || a.End != b.End {
				t.Fatalf("seed=%d regions=%d: results differ: %+v vs %+v", seed, regions, a, b)
			}
		}
	}
}

// TestWindowedRequiresResettable pins the config-surface rule: region
// replay needs Reset, so Regions>1 rejects fleets that cannot rewind.
func TestWindowedRequiresResettable(t *testing.T) {
	cfg := windowedConfig(2, 4, 5)
	cfg.Automata[3] = fixedAutomaton{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected an error for a non-Resettable automaton under Regions>1")
	}
}
