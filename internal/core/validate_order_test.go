package core

import (
	"strings"
	"testing"

	"amac/internal/sched"
	"amac/internal/topology"
)

// TestValidateReportsFirstUnknownParam is the regression test for the
// amacvet mapiter sweep: spec validation used to range the parameter map
// directly, so with two unknown parameters the reported one depended on
// Go's randomized map order — validation errors land in job records and
// test expectations, where the bytes must not flip between runs. All three
// registries (algorithm, scheduler, topology) now sort the keys, so the
// lexicographically first unknown parameter is always the one named.
func TestValidateReportsFirstUnknownParam(t *testing.T) {
	p := topology.Params{"zzz-bogus": 1, "aaa-bogus": 2}
	cases := []struct {
		name     string
		validate func() error
	}{
		{"core", func() error { return ValidateAlgorithmSpec("bmmb", p) }},
		{"sched", func() error { return sched.ValidateSpec("sync", p) }},
		{"topology", func() error { return topology.ValidateSpec("rgg", p) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A handful of repetitions would catch a regression to map order
			// with high probability; the loop is cheap.
			for i := 0; i < 32; i++ {
				err := tc.validate()
				if err == nil {
					t.Fatal("expected an unknown-parameter error")
				}
				if !strings.Contains(err.Error(), `"aaa-bogus"`) {
					t.Fatalf("error names %v; want the lexicographically first unknown parameter %q", err, "aaa-bogus")
				}
			}
		})
	}
}
