package core

import (
	"fmt"
	"sort"

	"amac/internal/mac"
	"amac/internal/sim"
	"amac/internal/topology"
)

// Algorithm is one registered MMB algorithm: a fleet factory plus the model
// variant it requires and its scheduling defaults. Registering an algorithm
// makes it addressable by name from scenario specs and command-line tools.
type Algorithm struct {
	// Name keys the registry.
	Name string
	// Mode is the abstract MAC layer variant the algorithm requires.
	Mode mac.Mode
	// DefaultScheduler names the scheduler used when a spec leaves the
	// choice open.
	DefaultScheduler string
	// Params lists the parameter names NewFleet accepts.
	Params []string
	// NewFleet builds one automaton per node for a k-message workload on d.
	// Automata are stateful: a fresh fleet is built per execution, or a
	// pooled one is adapted via Refit and mac.Resettable.
	NewFleet func(d *topology.Dual, k int, p topology.Params) ([]mac.Automaton, error)
	// Refit, when non-nil, adapts a pooled fleet previously built by
	// NewFleet for a same-size network to a new draw (d, k, p): it rebinds
	// whatever per-run configuration NewFleet derived from its arguments
	// (e.g. FMMB's diameter-dependent schedule) without reallocating the
	// automata, and reports whether the fleet could be adapted. The caller
	// resets each automaton afterwards; Refit + Reset must be observably
	// identical to a fresh NewFleet. A nil Refit means fleets of this
	// algorithm carry no per-run configuration, so Reset alone suffices.
	Refit func(fleet []mac.Automaton, d *topology.Dual, k int, p topology.Params) bool
	// Horizon returns the execution horizon for a k-message workload, or 0
	// to select the runner's generic default.
	Horizon func(d *topology.Dual, k int, fprog sim.Time, p topology.Params) sim.Time
	// StepLimit returns the simulation step limit, or 0 for the runner's
	// generic default.
	StepLimit uint64
}

// fmmbDiameterSamples and fmmbDiameterSeed fix the sampling parameters of
// FMMB's default diameter input, so equal specs resolve to equal schedules.
const (
	fmmbDiameterSamples = 8
	fmmbDiameterSeed    = 1
)

var algRegistry = map[string]Algorithm{}

// RegisterAlgorithm adds an algorithm to the registry. It panics on a
// duplicate or unnamed registration (a wiring bug, caught at init).
func RegisterAlgorithm(a Algorithm) {
	if a.Name == "" || a.NewFleet == nil {
		panic("core: algorithm registration needs Name and NewFleet")
	}
	if _, dup := algRegistry[a.Name]; dup {
		panic(fmt.Sprintf("core: duplicate registration of algorithm %q", a.Name))
	}
	algRegistry[a.Name] = a
}

// LookupAlgorithm returns the named algorithm.
func LookupAlgorithm(name string) (Algorithm, bool) {
	a, ok := algRegistry[name]
	return a, ok
}

// AlgorithmNames returns the registered algorithm names, sorted.
func AlgorithmNames() []string {
	out := make([]string, 0, len(algRegistry))
	for n := range algRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ValidateAlgorithmSpec checks that name is registered and every parameter
// is one the algorithm accepts.
func ValidateAlgorithmSpec(name string, p topology.Params) error {
	a, ok := algRegistry[name]
	if !ok {
		return fmt.Errorf("core: unknown algorithm %q (registered: %v)", name, AlgorithmNames())
	}
	accepted := make(map[string]bool, len(a.Params))
	for _, k := range a.Params {
		accepted[k] = true
	}
	// Sorted so the reported parameter is the same on every run: which key a
	// map range sees first is randomized, and validation errors end up in
	// job records and test expectations.
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !accepted[k] {
			return fmt.Errorf("core: algorithm %q does not accept parameter %q", name, k)
		}
	}
	return nil
}

// fmmbConfigFromParams resolves an FMMBConfig for a k-message workload on d.
// The diameter bound defaults to the diameter of G — exact below
// graph.ExactDiameterCutoff (simulated nodes receive it as an input,
// matching the paper's assumption), sampled above it, where the exact
// all-sources computation would dwarf the run itself. Pass the "d"
// parameter to pin the bound on large networks whose sampled estimate
// proves too tight.
func fmmbConfigFromParams(d *topology.Dual, k int, p topology.Params) FMMBConfig {
	return FMMBConfig{
		N:             d.N(),
		K:             k,
		D:             p.Int("d", d.G.ApproxDiameter(fmmbDiameterSamples, fmmbDiameterSeed)),
		C:             p.Float("c", 1.6),
		GatherPeriods: p.Int("gather-periods", 0),
		ActiveProb:    p.Float("active-prob", 0),
		SpreadPeriods: p.Int("spread-periods", 0),
		SpreadPhases:  p.Int("spread-phases", 0),
	}
}

func init() {
	RegisterAlgorithm(Algorithm{
		Name:             "bmmb",
		Mode:             mac.Standard,
		DefaultScheduler: "sync",
		NewFleet: func(d *topology.Dual, k int, p topology.Params) ([]mac.Automaton, error) {
			return NewBMMBFleet(d.N()), nil
		},
	})
	RegisterAlgorithm(Algorithm{
		Name:             "fmmb",
		Mode:             mac.Enhanced,
		DefaultScheduler: "slot",
		Params:           []string{"c", "d", "gather-periods", "active-prob", "spread-periods", "spread-phases"},
		NewFleet: func(d *topology.Dual, k int, p topology.Params) ([]mac.Automaton, error) {
			if k < 1 {
				return nil, fmt.Errorf("core: fmmb needs k >= 1 messages, got %d", k)
			}
			return NewFMMBFleet(d.N(), fmmbConfigFromParams(d, k, p)), nil
		},
		Refit: func(fleet []mac.Automaton, d *topology.Dual, k int, p topology.Params) bool {
			if k < 1 {
				return false
			}
			cfg := fmmbConfigFromParams(d, k, p)
			for _, a := range fleet {
				f, ok := a.(*FMMB)
				if !ok {
					return false
				}
				f.Reconfigure(cfg)
			}
			return true
		},
		Horizon: func(d *topology.Dual, k int, fprog sim.Time, p topology.Params) sim.Time {
			return sim.Time(fmmbConfigFromParams(d, k, p).Rounds()+2) * fprog
		},
		StepLimit: 1 << 62,
	})
}
