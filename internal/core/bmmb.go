package core

import (
	"amac/internal/mac"
)

// BMMB is the Basic Multi-Message Broadcast protocol of Section 3: every
// process keeps a FIFO queue bcastq and a set rcvd, both initially empty.
// On first learning a message — from the environment (arrive) or the MAC
// layer (rcv) — the process delivers it, appends it to bcastq and records
// it in rcvd; duplicates are discarded. Whenever the process is not waiting
// for an acknowledgment and bcastq is non-empty, it immediately broadcasts
// the head of the queue; the head is removed when its ack returns.
//
// BMMB runs unchanged in the standard abstract MAC layer: it uses no
// timers, no aborts and no knowledge of Fack/Fprog.
type BMMB struct {
	bcastq []Msg
	head   int // index of the queue head; popped entries stay until Reset
	rcvd   map[Msg]bool
}

var (
	_ mac.Automaton  = (*BMMB)(nil)
	_ mac.Arriver    = (*BMMB)(nil)
	_ mac.Resettable = (*BMMB)(nil)
)

// NewBMMB returns a fresh BMMB process.
func NewBMMB() *BMMB {
	return &BMMB{rcvd: make(map[Msg]bool)}
}

// Reset implements mac.Resettable: the process returns to its initial
// state (empty queue, empty rcvd set), keeping map buckets and queue
// capacity so reused fleets run allocation-free.
func (b *BMMB) Reset() {
	b.bcastq = b.bcastq[:0]
	b.head = 0
	clear(b.rcvd)
}

// Queue returns the current queue contents (a copy), for tests and debug
// inspection.
func (b *BMMB) Queue() []Msg { return append([]Msg(nil), b.bcastq[b.head:]...) }

// Received reports whether m has been received (the rcvd set).
func (b *BMMB) Received(m Msg) bool { return b.rcvd[m] }

// Wakeup implements mac.Automaton. BMMB is purely message-driven.
func (b *BMMB) Wakeup(ctx mac.Context) {}

// Arrive implements mac.Arriver: the environment injects a message.
func (b *BMMB) Arrive(ctx mac.Context, payload mac.Payload) {
	b.learn(ctx, mustMsg(payload))
}

// Recv implements mac.Automaton.
func (b *BMMB) Recv(ctx mac.Context, m mac.Message) {
	b.learn(ctx, mustMsg(m.Payload))
}

// learn processes the first sighting of a message: deliver, record, queue,
// and start broadcasting if idle.
func (b *BMMB) learn(ctx mac.Context, m Msg) {
	if b.rcvd[m] {
		return
	}
	b.rcvd[m] = true
	ctx.Emit(DeliverKind, m.Payload())
	b.bcastq = append(b.bcastq, m)
	b.maybeSend(ctx)
}

// Acked implements mac.Automaton: the head of the queue completed.
func (b *BMMB) Acked(ctx mac.Context, m mac.Message) {
	if b.head >= len(b.bcastq) || b.bcastq[b.head] != mustMsg(m.Payload) {
		panic("core: BMMB ack does not match queue head")
	}
	b.head++
	b.maybeSend(ctx)
}

func (b *BMMB) maybeSend(ctx mac.Context) {
	if !ctx.Pending() && b.head < len(b.bcastq) {
		ctx.Bcast(b.bcastq[b.head].Payload())
	}
}

// NewBMMBFleet returns one BMMB automaton per node, as the runner expects.
func NewBMMBFleet(n int) []mac.Automaton {
	out := make([]mac.Automaton, n)
	for i := range out {
		out[i] = NewBMMB()
	}
	return out
}
