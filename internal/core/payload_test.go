package core

import (
	"math/rand"
	"testing"

	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// TestPayloadRoundTripAllKinds is the property test behind the typed-payload
// encoding: for every payload kind this package registers, random values
// must (a) encode to a non-Ext kind — the scalar fast path, no boxing — and
// (b) box back via Payload.Value() to exactly the dynamic value the old
// `any` path carried, so rendered traces and watcher callbacks are
// byte-identical to the boxed representation. A new payload kind that
// silently falls back to sim.Ext fails (a); an encoder/boxer mismatch
// (dropped field, swapped operand) fails (b).
func TestPayloadRoundTripAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		m := Msg{ID: rng.Intn(1 << 30), Origin: mac.NodeID(rng.Intn(1 << 20))}
		from := mac.NodeID(rng.Intn(1 << 20))
		cases := []struct {
			name  string
			p     mac.Payload
			boxed any
		}{
			{"msg", m.Payload(), m},
			{"poll", pollPayload{From: from}.payload(), pollPayload{From: from}},
			{"gather-msg", gatherMsgPayload{M: m, From: from}.payload(), gatherMsgPayload{M: m, From: from}},
			{"gather-ack", gatherAckPayload{M: m, From: from}.payload(), gatherAckPayload{M: m, From: from}},
			{"spread", spreadPayload{M: m, From: from}.payload(), spreadPayload{M: m, From: from}},
			{"elect", electPayload{Bits: rng.Uint64(), Phase: rng.Intn(64)}.payload(),
				electPayload{}},
			{"announce", announcePayload{From: from}.payload(), announcePayload{From: from}},
		}
		// elect carries a uint64 through an int64 operand; rebuild the
		// expected value from the encoded payload to keep the case table
		// simple while still checking the reinterpretation is lossless.
		cases[5].boxed = electPayload{Bits: uint64(cases[5].p.A), Phase: int(cases[5].p.B)}
		if bits := rng.Uint64() | 1<<63; true {
			e := electPayload{Bits: bits, Phase: 3}
			if got := e.payload().Value().(electPayload); got != e {
				t.Fatalf("elect with the high bit set did not round-trip: %+v -> %+v", e, got)
			}
		}
		for _, tc := range cases {
			if tc.p.Kind == sim.PayloadExt || tc.p.Kind == sim.PayloadNone {
				t.Fatalf("%s: encoded to kind %d — boxed fallback, not a registered kind", tc.name, tc.p.Kind)
			}
			if tc.p.Ext != nil {
				t.Fatalf("%s: typed payload carries Ext %v", tc.name, tc.p.Ext)
			}
			if got := tc.p.Value(); got != tc.boxed {
				t.Fatalf("%s: Value() = %#v, want %#v", tc.name, got, tc.boxed)
			}
		}
	}
}

// FuzzMsgPayloadRoundTrip fuzzes the Msg encoding end to end: encode, decode
// via both the checked and the panicking decoder, and box back. Msg is the
// one payload that crosses the public API (Arrive, adversary matching), so
// its encoding is load-bearing for everything downstream.
func FuzzMsgPayloadRoundTrip(f *testing.F) {
	f.Add(0, int64(0))
	f.Add(17, int64(3))
	f.Add(-1, int64(1<<31))
	f.Fuzz(func(t *testing.T, id int, origin int64) {
		m := Msg{ID: id, Origin: mac.NodeID(origin)}
		p := m.Payload()
		got, ok := MsgFromPayload(p)
		if !ok || got != m {
			t.Fatalf("MsgFromPayload(%v.Payload()) = %v, %v", m, got, ok)
		}
		if mustMsg(p) != m {
			t.Fatalf("mustMsg round-trip lost %v", m)
		}
		if v := p.Value(); v != any(m) {
			t.Fatalf("Value() = %#v, want %#v", v, m)
		}
		if _, ok := MsgFromPayload(pollPayload{From: 1}.payload()); ok {
			t.Fatal("MsgFromPayload accepted a poll payload")
		}
	})
}

// TestAlgorithmTracesNeverBox executes every registered algorithm and scans
// the full trace: no event may carry a PayloadExt payload. This is the
// tripwire for future payload kinds — an algorithm that starts broadcasting
// or emitting through mac.Ext boxes per event again and fails here before
// any allocation benchmark notices.
func TestAlgorithmTracesNeverBox(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := topology.LineRRestricted(10, 2, 0.6, rng)
	for _, name := range AlgorithmNames() {
		alg, ok := LookupAlgorithm(name)
		if !ok {
			t.Fatalf("registered algorithm %q not found", name)
		}
		t.Run(name, func(t *testing.T) {
			k := 2
			automata, err := alg.NewFleet(d, k, nil)
			if err != nil {
				t.Fatal(err)
			}
			var scheduler mac.Scheduler
			env := sched.Env{Dual: d, Fprog: 10, Fack: 200}
			if scheduler, err = sched.Build(alg.DefaultScheduler, env, nil); err != nil {
				t.Fatal(err)
			}
			cfg := RunConfig{
				Dual:             d,
				Fack:             200,
				Fprog:            10,
				Scheduler:        scheduler,
				Mode:             alg.Mode,
				Seed:             4,
				Assignment:       SingleSource(10, 0, k),
				Automata:         automata,
				HaltOnCompletion: true,
			}
			if alg.Horizon != nil {
				cfg.Horizon = alg.Horizon(d, k, 10, nil)
				cfg.StepLimit = alg.StepLimit
			}
			res := MustRun(cfg)
			if !res.Solved {
				t.Fatalf("%s not solved: %d/%d", name, res.Delivered, res.Required)
			}
			events := res.Trace.Events()
			if len(events) == 0 {
				t.Fatal("empty trace")
			}
			for _, ev := range events {
				if ev.P.Kind == sim.PayloadExt {
					t.Fatalf("event %v at %d carries a boxed payload %v — a payload kind regressed to mac.Ext",
						ev.Kind, ev.At, ev.P.Ext)
				}
			}
		})
	}
}
