package sim

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrHalted is returned by Run when the simulation is stopped early via Halt.
var ErrHalted = errors.New("sim: halted")

// EventKind tags a typed event payload. Kind zero (KindFunc) is the closure
// escape hatch; every other kind is owned by the engine's Dispatcher, which
// defines the vocabulary (the abstract MAC engine registers one dispatcher
// covering deliveries, acks, wakeups and scheduler timers).
type EventKind uint8

// KindFunc marks an event carrying a plain closure. It exists as an escape
// hatch for tests and one-shot setup; the steady-state scheduling path posts
// typed events only.
const KindFunc EventKind = 0

// Op is the operand set of a typed event: one object handle (always a
// pointer in practice, so boxing it into the interface allocates nothing),
// two small scalars whose meaning the kind defines — a receiver id, a
// slot boundary, a delay class — and one typed message payload for events
// that carry algorithm data (environment arrivals), which travels unboxed.
type Op struct {
	Obj  any
	A, B int64
	P    Payload
}

// Dispatcher executes typed events. The engine calls Dispatch once per
// popped typed event with the event's kind and operands; implementations
// switch on the kind. A single dispatcher serves the whole engine.
type Dispatcher interface {
	Dispatch(kind EventKind, op Op)
}

// Engine is a single-threaded discrete-event simulator. Callbacks scheduled
// with At/After run in non-decreasing virtual-time order; ties fire in
// scheduling order. The Engine is not safe for concurrent use: the intended
// pattern is that all state lives inside callbacks, exactly like a timed
// automaton execution.
type Engine struct {
	now      Time
	queue    eventQueue
	seq      uint64
	rng      *rand.Rand
	rngStale bool // rng predates the last Reset; re-seed before next draw
	seed     int64
	halted   bool
	stepped  uint64
	limit    uint64 // safety valve: max events processed, 0 = unlimited
	horizon  Time   // events strictly after the horizon are not executed
	dispatch Dispatcher
}

// NewEngine returns an engine whose random stream is seeded with seed.
// Identical seeds and identical scheduling sequences yield identical
// executions.
func NewEngine(seed int64) *Engine {
	return &Engine{
		seed:    seed,
		horizon: Infinity,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns the engine's deterministic random stream. Algorithms and
// schedulers must draw all randomness from here (or from streams derived via
// Fork) so executions replay exactly. The stream is created (or, after a
// Reset, re-seeded in place) on first use: seeding a math/rand source is
// expensive, and throughput-oriented runs never draw from it.
func (e *Engine) Rand() *rand.Rand {
	if e.rng == nil {
		e.rng = rand.New(rand.NewSource(e.seed))
	} else if e.rngStale {
		e.rng.Seed(e.seed)
	}
	e.rngStale = false
	return e.rng
}

// forkSeed mixes (seed, id) into the derived stream seed Fork and Reseed
// share (SplitMix-style).
func (e *Engine) forkSeed(id int64) int64 {
	z := uint64(e.seed) ^ (uint64(id)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Fork derives an independent deterministic random stream, keyed by id, from
// the engine seed. Per-node streams keep executions reproducible even when
// the set or order of nodes' random draws changes.
func (e *Engine) Fork(id int64) *rand.Rand {
	return rand.New(rand.NewSource(e.forkSeed(id)))
}

// Reseed re-seeds r in place with the same derived stream Fork(id) would
// return: math/rand's Seed restores the generator to exactly the
// freshly-constructed state, so a pooled stream object reseeded this way is
// indistinguishable from a new Fork. Warm engines reuse their per-node and
// scheduler streams across runs through this instead of reallocating the
// ~5KB generator state per trial.
func (e *Engine) Reseed(r *rand.Rand, id int64) {
	r.Seed(e.forkSeed(id))
}

// Steps reports how many events have been executed so far.
func (e *Engine) Steps() uint64 { return e.stepped }

// SetStepLimit bounds the number of events Run will execute; 0 means
// unlimited. It is a safety valve for tests of potentially divergent
// protocols.
func (e *Engine) SetStepLimit(n uint64) { e.limit = n }

// SetHorizon stops Run once the next event is strictly after t. Events at
// exactly t still run.
func (e *Engine) SetHorizon(t Time) { e.horizon = t }

// Handle identifies a scheduled event and allows cancelling it. Handles
// carry the event's pool generation: once the event fires (or its dead husk
// is collected) the struct is recycled, and stale handles become no-ops.
type Handle struct {
	ev  *event
	gen uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil && h.ev.gen == h.gen {
		h.ev.dead = true
	}
}

// Active reports whether the event is still pending.
func (h Handle) Active() bool { return h.ev != nil && h.ev.gen == h.gen && !h.ev.dead }

// SetDispatcher installs the typed-event dispatcher. It must be set before
// the first Post and not changed afterwards (the MAC engine installs itself
// at construction time).
func (e *Engine) SetDispatcher(d Dispatcher) { e.dispatch = d }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would violate causality and always indicates a bug in a scheduler.
//
// At is the KindFunc escape hatch: each call carries a closure. Hot paths
// post typed events via Post instead, which schedules nothing but pooled
// plain-data structs.
func (e *Engine) At(t Time, fn func()) Handle {
	ev := e.schedule(t)
	ev.fn = fn
	e.queue.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Duration, fn func()) Handle {
	return e.At(e.now+d, fn)
}

// Post schedules a typed event at absolute time t: kind selects the
// dispatcher's handler, (obj, a, b) are its operands. Scheduling in the past
// panics, exactly like At. Posting KindFunc or posting without a dispatcher
// installed panics at dispatch time.
//amac:hotpath
func (e *Engine) Post(t Time, kind EventKind, obj any, a, b int64) Handle {
	ev := e.schedule(t)
	ev.kind, ev.obj, ev.a, ev.b = kind, obj, a, b
	e.queue.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// PostPayload schedules a typed event like Post, carrying a typed message
// payload in place of the object operand. The payload travels unboxed
// through the pooled event struct, so posting algorithm data (environment
// arrivals) allocates nothing.
//amac:hotpath
func (e *Engine) PostPayload(t Time, kind EventKind, p Payload, a, b int64) Handle {
	ev := e.schedule(t)
	ev.kind, ev.p, ev.a, ev.b = kind, p, a, b
	e.queue.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// schedule allocates a pooled event for time t with the next sequence
// number; the caller fills the payload and pushes it.
//amac:hotpath
func (e *Engine) schedule(t Time) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	ev := e.queue.alloc(t, e.seq)
	e.seq++
	return ev
}

// Reset restores the engine to its initial state with a new seed, keeping
// the event pool warm: still-queued events (a halted run leaves them behind)
// are recycled into the free list, so the next execution schedules against
// pre-allocated structs. The dispatcher is kept; the random stream object is
// also kept and re-seeded lazily from the new seed on the next draw, which
// is indistinguishable from the fresh stream NewEngine would derive. Arenas
// use this to make repeated executions on a pinned topology allocation-free.
func (e *Engine) Reset(seed int64) {
	e.queue.recycleAll()
	e.now = 0
	e.seq = 0
	e.stepped = 0
	e.halted = false
	e.limit = 0
	e.horizon = Infinity
	e.rngStale = e.rng != nil
	e.seed = seed
}

// Halt stops the run loop after the current event completes.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt has been called.
func (e *Engine) Halted() bool { return e.halted }

// Pending reports whether any live events remain in the queue.
func (e *Engine) Pending() bool {
	for {
		top := e.queue.peek()
		if top == nil {
			return false
		}
		if top.dead {
			e.queue.release(e.queue.pop())
			continue
		}
		return true
	}
}

// NextTime returns the time of the next live event, or Infinity when none.
func (e *Engine) NextTime() Time {
	if !e.Pending() {
		return Infinity
	}
	return e.queue.peek().at
}

// Step executes the next live event, advancing virtual time. It returns
// false when no live events remain or the horizon/limit is reached.
//amac:hotpath
func (e *Engine) Step() bool {
	if e.halted {
		return false
	}
	if e.limit != 0 && e.stepped >= e.limit {
		return false
	}
	for {
		ev := e.queue.pop()
		if ev == nil {
			return false
		}
		if ev.dead {
			e.queue.release(ev)
			continue
		}
		if ev.at > e.horizon {
			// Leave the horizon-crossing event consumed; the run is over.
			e.queue.release(ev)
			return false
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.stepped++
		// Recycle before running: the callback may schedule (and the pool
		// hand the struct straight back out), which is safe because the
		// generation bump in release has already invalidated this tenancy's
		// handles. The payload is copied out first.
		if ev.kind == KindFunc {
			fn := ev.fn
			e.queue.release(ev)
			fn()
		} else {
			kind, op := ev.kind, Op{Obj: ev.obj, A: ev.a, B: ev.b, P: ev.p}
			e.queue.release(ev)
			e.dispatch.Dispatch(kind, op)
		}
		return true
	}
}

// Run executes events until the queue drains, Halt is called, or the
// step limit / horizon is hit. It returns ErrHalted iff stopped via Halt.
func (e *Engine) Run() error {
	for e.Step() {
	}
	if e.halted {
		return ErrHalted
	}
	return nil
}

// RunUntil executes events up to and including time t, then returns. The
// clock is left at min(t, time of last executed event).
func (e *Engine) RunUntil(t Time) {
	for {
		if e.halted {
			return
		}
		next := e.NextTime()
		if next > t {
			return
		}
		if !e.Step() {
			return
		}
	}
}
