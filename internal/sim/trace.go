package sim

import (
	"fmt"
	"strings"
)

// TraceEvent is one record in an execution trace. Kind is a small string
// vocabulary owned by the layer that emits the event (the MAC engine emits
// "bcast", "rcv", "ack", "abort"; algorithms may emit their own kinds).
// The argument travels as a typed Payload so recording an event allocates
// nothing; Value recovers the dynamic value for consumers that want the old
// boxed form.
type TraceEvent struct {
	At   Time
	Kind string
	Node int
	P    Payload
}

// Value boxes the event's argument back into its dynamic Go value. It
// allocates; post-run consumers only.
func (ev TraceEvent) Value() any { return ev.P.Value() }

// String renders the event compactly for debugging output.
func (ev TraceEvent) String() string {
	return fmt.Sprintf("%v %s@%d %v", ev.At, ev.Kind, ev.Node, ev.Value())
}

// TraceSink consumes trace events in execution order as a layer emits them.
// The in-memory Trace is one implementation; TraceWriter streams events to
// disk in a compact binary form for networks whose full trace cannot be
// held in memory (a 10^6-node flood emits tens of millions of events).
// Sinks are called from the single-threaded engine loop and need no
// internal synchronization.
type TraceSink interface {
	Append(ev TraceEvent)
}

// Trace accumulates TraceEvents in execution order. The zero value is ready
// to use and unbounded; SetCap bounds memory for long soak runs by keeping
// only the most recent events (the checkers that need full traces disable
// the cap).
type Trace struct {
	events   []TraceEvent
	cap      int
	dropped  uint64
	disabled bool
}

// SetCap bounds the trace to the most recent n events; n <= 0 removes the
// bound.
func (tr *Trace) SetCap(n int) { tr.cap = n }

// Disable turns the trace off: Append becomes a no-op. Throughput-oriented
// runs use this to keep the event hot path free of trace bookkeeping.
func (tr *Trace) Disable() { tr.disabled = true }

// Disabled reports whether the trace is off.
func (tr *Trace) Disabled() bool { return tr.disabled }

// Reset restores the zero-value configuration (enabled, no cap, nothing
// dropped) and discards the recorded events while keeping the buffer
// capacity, so a reused trace appends without reallocating. Retained payload
// references are zeroed for the collector.
func (tr *Trace) Reset() {
	clear(tr.events)
	tr.events = tr.events[:0]
	tr.cap = 0
	tr.dropped = 0
	tr.disabled = false
}

// Append records an event.
func (tr *Trace) Append(ev TraceEvent) {
	if tr.disabled {
		return
	}
	if tr.cap > 0 && len(tr.events) >= tr.cap {
		// Drop the oldest half in one shot to amortize the copy.
		half := len(tr.events) / 2
		tr.dropped += uint64(half)
		tr.events = append(tr.events[:0], tr.events[half:]...)
	}
	tr.events = append(tr.events, ev)
}

// Events returns the recorded events in order. The returned slice is owned
// by the trace; callers must not mutate it.
func (tr *Trace) Events() []TraceEvent { return tr.events }

// Len reports the number of retained events.
func (tr *Trace) Len() int { return len(tr.events) }

// Dropped reports how many events were evicted due to the cap.
func (tr *Trace) Dropped() uint64 { return tr.dropped }

// Filter returns the retained events with the given kind.
func (tr *Trace) Filter(kind string) []TraceEvent {
	var out []TraceEvent
	for _, ev := range tr.events {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// String renders the whole trace, one event per line.
func (tr *Trace) String() string {
	var b strings.Builder
	for _, ev := range tr.events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}
