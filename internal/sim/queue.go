package sim

// event is a scheduled callback in virtual time. Events with equal times fire
// in insertion order (seq), which makes executions fully deterministic.
//
// Events are pooled: once popped and executed (or skipped as dead), the
// engine recycles the struct through a free list, so steady-state scheduling
// performs no heap allocation. gen guards recycled structs against stale
// Handles: every release increments it, invalidating any Handle issued for a
// previous tenancy.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	gen  uint32
	dead bool // set by cancel; dead events are skipped when popped
}

// eventQueue is a binary min-heap of events ordered by (at, seq). It is a
// hand-rolled heap rather than container/heap to keep the hot path free of
// interface conversions; the simulator spends most of its time here.
type eventQueue struct {
	items []*event
	free  []*event // recycled events ready for reuse
}

// Len reports the number of events still queued, including cancelled ones
// that have not yet been popped.
func (q *eventQueue) Len() int { return len(q.items) }

// alloc returns a recycled event or a fresh one when the pool is empty.
func (q *eventQueue) alloc(at Time, seq uint64, fn func()) *event {
	if n := len(q.free); n > 0 {
		ev := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.dead = at, seq, fn, false
		return ev
	}
	return &event{at: at, seq: seq, fn: fn}
}

// release returns a popped event to the pool. Bumping gen invalidates every
// outstanding Handle for this tenancy; dropping fn releases the closure.
func (q *eventQueue) release(ev *event) {
	ev.fn = nil
	ev.dead = false
	ev.gen++
	q.free = append(q.free, ev)
}

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
}

func (q *eventQueue) push(e *event) {
	q.items = append(q.items, e)
	q.up(len(q.items) - 1)
}

func (q *eventQueue) pop() *event {
	n := len(q.items)
	if n == 0 {
		return nil
	}
	top := q.items[0]
	q.swap(0, n-1)
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	if len(q.items) > 0 {
		q.down(0)
	}
	return top
}

// peek returns the earliest event without removing it, or nil when empty.
func (q *eventQueue) peek() *event {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(left, smallest) {
			smallest = left
		}
		if right < n && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
