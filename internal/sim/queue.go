package sim

// event is a scheduled callback in virtual time. Events with equal times fire
// in insertion order (seq), which makes executions fully deterministic.
//
// An event is either typed — kind plus the small fixed operand set (obj, a,
// b), executed by the engine's Dispatcher — or the KindFunc escape hatch
// carrying an arbitrary closure. The steady-state scheduling path of the
// simulator uses only typed events, so it allocates no closures at all;
// KindFunc remains for tests and one-shot setup work.
//
// Events are pooled: once popped and executed (or skipped as dead), the
// engine recycles the struct through a free list, so steady-state scheduling
// performs no heap allocation. gen guards recycled structs against stale
// Handles: every release increments it, invalidating any Handle issued for a
// previous tenancy.
type event struct {
	at   Time
	seq  uint64
	fn   func()  // KindFunc payload
	obj  any     // typed payload: object operand (a pointer; boxing is free)
	a, b int64   // typed payload: scalar operands
	p    Payload // typed payload: message operand (carried unboxed)
	kind EventKind
	gen  uint32
	dead bool // set by cancel; dead events are skipped when popped
}

// freeFloor is the minimum free-list length the shrink rule never cuts
// below, so small engines keep a warm pool across bursts.
const freeFloor = 64

// eventQueue is a binary min-heap of events ordered by (at, seq). It is a
// hand-rolled heap rather than container/heap to keep the hot path free of
// interface conversions; the simulator spends most of its time here.
type eventQueue struct {
	items []*event
	free  []*event // recycled events ready for reuse
}

// Len reports the number of events still queued, including cancelled ones
// that have not yet been popped.
func (q *eventQueue) Len() int { return len(q.items) }

// alloc returns a recycled event or a fresh one when the pool is empty. The
// caller fills in the payload (kind + operands, or fn).
//amac:hotpath
func (q *eventQueue) alloc(at Time, seq uint64) *event {
	if n := len(q.free); n > 0 {
		ev := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		ev.at, ev.seq, ev.dead = at, seq, false
		return ev
	}
	return &event{at: at, seq: seq}
}

// release returns a popped event to the pool. Bumping gen invalidates every
// outstanding Handle for this tenancy; dropping fn/obj releases the payload
// references. The pool is bounded: a delivery burst must not pin its peak
// event count for the rest of the run, so whenever the free list exceeds
// twice the live queue (plus a small floor), the excess structs are dropped
// for the collector.
//amac:hotpath
func (q *eventQueue) release(ev *event) {
	ev.fn = nil
	ev.obj = nil
	ev.p = Payload{}
	ev.kind = KindFunc
	ev.dead = false
	ev.gen++
	q.free = append(q.free, ev)
	if limit := 2*len(q.items) + freeFloor; len(q.free) > limit {
		for i := limit; i < len(q.free); i++ {
			q.free[i] = nil
		}
		q.free = q.free[:limit]
	}
}

// recycleAll moves every still-queued event into the free list, emptying the
// queue. Unlike release it skips the shrink rule: it runs between executions
// on a warm arena, where the point is to keep the pool sized for the next
// run's burst rather than for the (now empty) live queue. The list stays
// bounded because every in-run release re-applies the 2×live+floor rule.
func (q *eventQueue) recycleAll() {
	for i, ev := range q.items {
		ev.fn = nil
		ev.obj = nil
		ev.p = Payload{}
		ev.kind = KindFunc
		ev.dead = false
		ev.gen++
		q.free = append(q.free, ev)
		q.items[i] = nil
	}
	q.items = q.items[:0]
}

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
}

//amac:hotpath
func (q *eventQueue) push(e *event) {
	q.items = append(q.items, e)
	q.up(len(q.items) - 1)
}

//amac:hotpath
func (q *eventQueue) pop() *event {
	n := len(q.items)
	if n == 0 {
		return nil
	}
	top := q.items[0]
	q.swap(0, n-1)
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	if len(q.items) > 0 {
		q.down(0)
	}
	return top
}

// peek returns the earliest event without removing it, or nil when empty.
func (q *eventQueue) peek() *event {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(left, smallest) {
			smallest = left
		}
		if right < n && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
