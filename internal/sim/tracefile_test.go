package sim

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// traceFixture returns events covering the encoder's cases: interned kind
// reuse, negative times and operands, every built-in payload kind, and a
// boxed Ext value that the writer demotes to its rendered string.
func traceFixture() []TraceEvent {
	return []TraceEvent{
		{At: 0, Kind: "bcast", Node: 0, P: Int(7)},
		{At: 3, Kind: "rcv", Node: 1, P: Payload{Kind: PayloadInt, A: -42}},
		{At: 3, Kind: "rcv", Node: 2, P: Int(7)},
		{At: -5, Kind: "ack", Node: -1, P: Payload{}},
		{At: 1 << 40, Kind: "bcast", Node: 999999, P: Payload{Kind: PayloadNone, A: 1, B: -2, C: 3}},
		{At: 9, Kind: "deliver", Node: 4, P: Ext("boxed message")},
		{At: 10, Kind: "deliver", Node: 5, P: Ext(struct{ X, Y int }{3, 4})},
		{At: 11, Kind: "rcv", Node: 6, P: Int(0)},
	}
}

// TestTraceFileRoundTrip writes the fixture and reads it back, comparing
// field-for-field. Ext payloads come back as their rendered string — the
// documented demotion — so for those the contract is rendering equality.
func TestTraceFileRoundTrip(t *testing.T) {
	events := traceFixture()
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for _, ev := range events {
		tw.Append(ev)
	}
	if tw.Len() != len(events) {
		t.Fatalf("writer Len = %d, want %d", tw.Len(), len(events))
	}
	if err := tw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i, want := range events {
		got, err := tr.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got.String() != want.String() {
			t.Fatalf("event %d renders %q, want %q", i, got.String(), want.String())
		}
		if got.At != want.At || got.Kind != want.Kind || got.Node != want.Node {
			t.Fatalf("event %d header = %+v, want %+v", i, got, want)
		}
		if want.P.Ext == nil {
			if got.P != want.P {
				t.Fatalf("event %d payload = %+v, want %+v", i, got.P, want.P)
			}
		} else if got.P.Kind != PayloadExt {
			t.Fatalf("event %d: boxed payload read back as kind %d, want PayloadExt", i, got.P.Kind)
		}
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("after last event: err = %v, want io.EOF", err)
	}
}

// TestTraceReadAllMatchesTrace checks the drain helper against an in-memory
// trace fed the same events.
func TestTraceReadAllMatchesTrace(t *testing.T) {
	var mem Trace
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for _, ev := range traceFixture() {
		mem.Append(ev)
		tw.Append(ev)
	}
	if err := tw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	got, err := tr.ReadAll()
	if err != nil {
		t.Fatalf("read all: %v", err)
	}
	if got.String() != mem.String() {
		t.Fatalf("decoded trace renders differently:\n%s\nwant:\n%s", got, &mem)
	}
}

func TestTraceReaderRejectsCorruptStreams(t *testing.T) {
	if _, err := NewTraceReader(strings.NewReader("NOTATRACE")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewTraceReader(strings.NewReader("AM")); err == nil {
		t.Fatal("truncated header accepted")
	}

	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Append(TraceEvent{At: 1, Kind: "bcast", Node: 2, P: Int(3)})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-event: the reader must surface an error, not EOF.
	trunc := buf.Bytes()[:buf.Len()-2]
	tr, err := NewTraceReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated event: err = %v, want a decode error", err)
	}

	// A kind id past the intern table is a corrupt stream.
	bad := append([]byte{}, traceMagic[:]...)
	bad = append(bad, 2, 9) // at = 1 zigzagged, kind id 9 with no announcements
	tr, err = NewTraceReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Next(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("rogue kind id: err = %v, want out-of-range error", err)
	}
}

// failAfterWriter fails every Write once n bytes have passed through.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

// TestTraceWriterLatchesErrors: after the sink fails, Append must become a
// no-op (the engine's emit path never sees the error) and Err/Flush must
// report the first failure.
func TestTraceWriterLatchesErrors(t *testing.T) {
	sinkErr := io.ErrClosedPipe
	tw := NewTraceWriter(&failAfterWriter{n: 1 << 10, err: sinkErr})
	// The buffer is 64 KiB, so spill it to surface the failure.
	big := TraceEvent{Kind: strings.Repeat("k", 1<<12), P: Int(1)}
	for i := 0; i < 32 && tw.Err() == nil; i++ {
		big.At = Time(i)
		big.Kind = strings.Repeat("k", 1<<12) + string(rune('a'+i)) // force re-interning
		tw.Append(big)
	}
	if tw.Err() != sinkErr {
		t.Fatalf("Err = %v, want %v", tw.Err(), sinkErr)
	}
	before := tw.Len()
	tw.Append(TraceEvent{Kind: "bcast"})
	if tw.Len() != before {
		t.Fatal("Append accepted an event after the sink failed")
	}
	if err := tw.Flush(); err != sinkErr {
		t.Fatalf("Flush = %v, want latched %v", err, sinkErr)
	}
}

// TestTraceWriterAppendAllocationFree pins the streaming contract that lets
// the engine emit straight to disk at million-node scale: once kinds are
// interned, Append with scalar payloads must not allocate.
func TestTraceWriterAppendAllocationFree(t *testing.T) {
	tw := NewTraceWriter(io.Discard)
	kinds := []string{"bcast", "rcv", "ack", "deliver"}
	for _, k := range kinds {
		tw.Append(TraceEvent{Kind: k, P: Int(1)}) // intern every kind
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		for _, k := range kinds {
			i++
			tw.Append(TraceEvent{At: Time(i), Kind: k, Node: i, P: Int(int64(i))})
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Append allocates %.1f times per 4-event burst, want 0", allocs)
	}
	if tw.Err() != nil {
		t.Fatal(tw.Err())
	}
}
