package sim

import "fmt"

// PayloadKind tags the representation of a typed Payload value. Kinds above
// the built-ins are handed out by RegisterPayloadKind, which pairs each kind
// with a boxing function that reconstructs the dynamic Go value the payload
// stands for.
type PayloadKind uint8

const (
	// PayloadNone is the zero payload: no argument at all. Its Value is nil,
	// matching the untyped events that used to carry a nil interface.
	PayloadNone PayloadKind = iota
	// PayloadExt carries an arbitrary boxed value in Ext. It is the escape
	// hatch for tests, examples and bespoke automata whose payloads have no
	// registered kind; constructing one boxes exactly like the old any path.
	PayloadExt
	// PayloadInt carries a bare integer in A: instance identifiers, phase
	// numbers, node ids. Rendering matches the old boxed integer (`%v` of
	// any integer type prints the same digits).
	PayloadInt

	// payloadKindsReserved is the first kind available to RegisterPayloadKind.
	payloadKindsReserved
)

// Payload is the typed message representation threaded through broadcasts,
// arrivals and trace events: a kind tag plus three small scalar operands and
// one reference slot. It replaces the boxed `any` payload path — constructing
// and copying a Payload allocates nothing, which is what makes warm trials
// allocation-free — while Value() recovers the exact dynamic value the old
// path carried, so rendered traces are byte-identical.
//
// The operand fields are free-form per kind: a registered kind's boxer and
// its encoder agree on the layout (e.g. a message payload stores its id in A
// and its origin in B). Payloads of comparable kinds compare with ==, which
// the adversarial scheduler relies on to track its two tagged messages.
type Payload struct {
	Kind    PayloadKind
	A, B, C int64
	Ext     any
}

// payloadBoxers maps registered kinds to their boxing functions. Index 0..2
// (the built-ins) stay nil; Value handles them inline.
var payloadBoxers [1 << 8]func(Payload) any

// nextPayloadKind is the next kind RegisterPayloadKind hands out.
var nextPayloadKind = payloadKindsReserved

// RegisterPayloadKind allocates a new payload kind and installs box as its
// boxing function: box reconstructs the dynamic Go value a payload of this
// kind stands for (Value calls it). Registration happens in package init
// functions and is not synchronized; registering more kinds than the tag
// byte can hold panics.
func RegisterPayloadKind(box func(Payload) any) PayloadKind {
	if box == nil {
		panic("sim: RegisterPayloadKind with nil boxer")
	}
	if int(nextPayloadKind) >= len(payloadBoxers) {
		panic("sim: payload kind space exhausted")
	}
	k := nextPayloadKind
	nextPayloadKind++
	payloadBoxers[k] = box
	return k
}

// Ext wraps an arbitrary value as a PayloadExt payload. It boxes v exactly
// like the old `any` path did; hot paths use registered kinds instead.
func Ext(v any) Payload { return Payload{Kind: PayloadExt, Ext: v} }

// Int wraps a bare integer as a PayloadInt payload.
func Int(v int64) Payload { return Payload{Kind: PayloadInt, A: v} }

// IsZero reports whether p is the zero (PayloadNone) payload with no
// operands set.
func (p Payload) IsZero() bool { return p == Payload{} }

// Value boxes the payload back into the dynamic Go value it stands for:
// nil for PayloadNone, the wrapped value for PayloadExt, an int64 for
// PayloadInt, and the registered boxer's result otherwise. It allocates (it
// un-does the typed representation), so it belongs in post-run consumers —
// renderers, checkers, tests — never on the event hot path.
func (p Payload) Value() any {
	switch p.Kind {
	case PayloadNone:
		return nil
	case PayloadExt:
		return p.Ext
	case PayloadInt:
		return p.A
	default:
		if box := payloadBoxers[p.Kind]; box != nil {
			return box(p)
		}
		panic(fmt.Sprintf("sim: payload kind %d has no registered boxer", p.Kind))
	}
}
