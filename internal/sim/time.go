// Package sim provides a deterministic discrete-event simulation kernel:
// virtual time, a stable event queue, seeded random streams and a bounded
// trace. All higher layers (the abstract MAC engine, the schedulers, the
// algorithms) run on top of this kernel, which guarantees that an execution
// is a pure function of (configuration, seed).
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in integer ticks. Tick zero is
// the beginning of the execution. The paper's model constants Fack and Fprog
// are expressed in ticks, so all timing guarantees are exact (no float
// drift) and adversarial schedulers can hit bounds precisely.
type Time int64

// Duration is a span of virtual time in ticks.
type Duration = Time

// Infinity is a sentinel time later than any event the kernel will process.
const Infinity Time = 1<<62 - 1

// String renders the time as a plain tick count.
func (t Time) String() string {
	if t == Infinity {
		return "inf"
	}
	return fmt.Sprintf("t%d", int64(t))
}

// Real converts a virtual duration to a time.Duration assuming one tick is
// one microsecond. It is used only for human-readable reporting; the kernel
// itself never consults wall-clock time.
func (t Time) Real() time.Duration {
	return time.Duration(int64(t)) * time.Microsecond
}
