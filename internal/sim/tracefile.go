package sim

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// traceMagic opens every binary trace stream; the trailing byte is the
// format version.
var traceMagic = [5]byte{'A', 'M', 'T', 'R', 1}

// TraceWriter is a TraceSink that streams events to an io.Writer in a
// compact binary encoding: varint-coded times and operands with kind
// strings interned on first use, a few bytes per event instead of an
// in-memory TraceEvent (40+ bytes) — the backend that lets million-node
// floods trace to disk instead of RAM. Appends are buffered and
// allocation-free in steady state; errors are latched (Append becomes a
// no-op after the first failure) and reported by Err and Flush, keeping
// error handling off the engine's emit path.
//
// Payloads are encoded by kind tag and scalar operands, reconstructed on
// read through the same registered boxers. A payload carrying a boxed Ext
// value is encoded as its rendered string, so re-rendering a read trace is
// textually identical even for escape-hatch payloads.
type TraceWriter struct {
	w       *bufio.Writer
	kinds   map[string]uint64
	scratch []byte
	n       int
	err     error
}

// NewTraceWriter returns a writer streaming to w. Call Flush before
// consuming the underlying stream.
func NewTraceWriter(w io.Writer) *TraceWriter {
	tw := &TraceWriter{
		w:       bufio.NewWriterSize(w, 1<<16),
		kinds:   make(map[string]uint64),
		scratch: make([]byte, 0, 64),
	}
	_, err := tw.w.Write(traceMagic[:])
	tw.err = err
	return tw
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Append implements TraceSink.
func (tw *TraceWriter) Append(ev TraceEvent) {
	if tw.err != nil {
		return
	}
	b := tw.scratch[:0]
	b = binary.AppendUvarint(b, zigzag(int64(ev.At)))
	id, ok := tw.kinds[ev.Kind]
	if !ok {
		// A kind id equal to the intern-table size announces a new string.
		id = uint64(len(tw.kinds))
		tw.kinds[ev.Kind] = id
		b = binary.AppendUvarint(b, id)
		b = binary.AppendUvarint(b, uint64(len(ev.Kind)))
		b = append(b, ev.Kind...)
	} else {
		b = binary.AppendUvarint(b, id)
	}
	b = binary.AppendUvarint(b, zigzag(int64(ev.Node)))
	pk := ev.P.Kind
	if ev.P.Ext != nil {
		// Boxed payloads cannot be reconstructed structurally; they are
		// demoted to a rendered-string Ext payload, which re-renders
		// identically (%v of the string is the string).
		pk = PayloadExt
	}
	b = append(b, byte(pk))
	b = binary.AppendUvarint(b, zigzag(ev.P.A))
	b = binary.AppendUvarint(b, zigzag(ev.P.B))
	b = binary.AppendUvarint(b, zigzag(ev.P.C))
	if ev.P.Ext == nil {
		b = append(b, 0)
	} else {
		s := fmt.Sprint(ev.P.Value())
		b = append(b, 1)
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	tw.scratch = b[:0]
	if _, err := tw.w.Write(b); err != nil {
		tw.err = err
		return
	}
	tw.n++
}

// Len reports how many events were accepted.
func (tw *TraceWriter) Len() int { return tw.n }

// Err returns the first write error, if any.
func (tw *TraceWriter) Err() error { return tw.err }

// Flush drains the buffer to the underlying writer and returns the first
// error encountered over the writer's lifetime.
func (tw *TraceWriter) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	tw.err = tw.w.Flush()
	return tw.err
}

// TraceReader decodes a stream produced by TraceWriter.
type TraceReader struct {
	r     *bufio.Reader
	kinds []string
}

// NewTraceReader wraps r, validating the stream header.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	tr := &TraceReader{r: bufio.NewReaderSize(r, 1<<16)}
	var magic [5]byte
	if _, err := io.ReadFull(tr.r, magic[:]); err != nil {
		return nil, fmt.Errorf("sim: trace header: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("sim: not a binary trace (bad magic %q)", magic[:])
	}
	return tr, nil
}

// Next returns the next event, or io.EOF at a clean end of stream.
func (tr *TraceReader) Next() (TraceEvent, error) {
	at, err := binary.ReadUvarint(tr.r)
	if err != nil {
		if err == io.EOF {
			return TraceEvent{}, io.EOF
		}
		return TraceEvent{}, fmt.Errorf("sim: trace event time: %w", err)
	}
	var ev TraceEvent
	ev.At = Time(unzigzag(at))
	id, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return TraceEvent{}, fmt.Errorf("sim: trace kind id: %w", err)
	}
	switch {
	case id < uint64(len(tr.kinds)):
		ev.Kind = tr.kinds[id]
	case id == uint64(len(tr.kinds)):
		s, err := tr.readString()
		if err != nil {
			return TraceEvent{}, fmt.Errorf("sim: trace kind string: %w", err)
		}
		tr.kinds = append(tr.kinds, s)
		ev.Kind = s
	default:
		return TraceEvent{}, fmt.Errorf("sim: trace kind id %d out of range", id)
	}
	node, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return TraceEvent{}, fmt.Errorf("sim: trace node: %w", err)
	}
	ev.Node = int(unzigzag(node))
	pk, err := tr.r.ReadByte()
	if err != nil {
		return TraceEvent{}, fmt.Errorf("sim: trace payload kind: %w", err)
	}
	ev.P.Kind = PayloadKind(pk)
	for _, dst := range []*int64{&ev.P.A, &ev.P.B, &ev.P.C} {
		u, err := binary.ReadUvarint(tr.r)
		if err != nil {
			return TraceEvent{}, fmt.Errorf("sim: trace payload operand: %w", err)
		}
		*dst = unzigzag(u)
	}
	extFlag, err := tr.r.ReadByte()
	if err != nil {
		return TraceEvent{}, fmt.Errorf("sim: trace ext flag: %w", err)
	}
	if extFlag != 0 {
		s, err := tr.readString()
		if err != nil {
			return TraceEvent{}, fmt.Errorf("sim: trace ext value: %w", err)
		}
		ev.P.Ext = s
	}
	return ev, nil
}

func (tr *TraceReader) readString() (string, error) {
	n, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(tr.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// ReadAll drains the stream into an in-memory Trace (golden-suite
// verification and small post-hoc analyses; large traces should be
// consumed through Next).
func (tr *TraceReader) ReadAll() (*Trace, error) {
	out := &Trace{}
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Append(ev)
	}
}
