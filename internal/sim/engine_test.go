package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(10, func() { got = append(got, 2) })
	e.At(5, func() { got = append(got, 1) })
	e.At(10, func() { got = append(got, 3) }) // same time: insertion order
	e.At(20, func() { got = append(got, 4) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(1, func() {
		fired = append(fired, e.Now())
		e.After(3, func() { fired = append(fired, e.Now()) })
		e.After(1, func() { fired = append(fired, e.Now()) })
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{1, 2, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	_ = e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	h := e.At(10, func() { ran = true })
	if !h.Active() {
		t.Fatal("handle should be active before firing")
	}
	h.Cancel()
	if h.Active() {
		t.Fatal("handle should be inactive after cancel")
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	if err := e.Run(); err != ErrHalted {
		t.Fatalf("Run err = %v, want ErrHalted", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for i := 1; i <= 10; i++ {
		tt := Time(i * 10)
		e.At(tt, func() { fired = append(fired, tt) })
	}
	e.SetHorizon(50)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 5 || fired[len(fired)-1] != 50 {
		t.Fatalf("fired = %v, want events through t=50", fired)
	}
}

func TestEngineStepLimit(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		e.After(1, reschedule)
	}
	e.At(0, reschedule)
	e.SetStepLimit(100)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired int
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() { fired++ })
	}
	e.RunUntil(4)
	if fired != 4 {
		t.Fatalf("fired = %d, want 4", fired)
	}
	e.RunUntil(100)
	if fired != 10 {
		t.Fatalf("fired = %d, want 10", fired)
	}
}

func TestEngineDeterministicReplay(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var draws []int64
		var tick func()
		n := 0
		tick = func() {
			draws = append(draws, e.Rand().Int63n(1000))
			n++
			if n < 50 {
				e.After(Duration(1+e.Rand().Int63n(5)), tick)
			}
		}
		e.At(0, tick)
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return draws
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("len %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %d != %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical executions")
	}
}

func TestForkIndependence(t *testing.T) {
	e := NewEngine(7)
	r1, r2 := e.Fork(1), e.Fork(2)
	r1b := e.Fork(1)
	a, b := r1.Int63(), r2.Int63()
	if a == b {
		t.Fatal("forked streams with different ids produced equal first draw")
	}
	if got := r1b.Int63(); got != a {
		t.Fatalf("fork with same id not reproducible: %d vs %d", got, a)
	}
}

// Property: the event queue pops events in non-decreasing (time, seq) order
// for arbitrary insertion sequences.
func TestQueueHeapProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var q eventQueue
		for i, tt := range times {
			q.push(&event{at: Time(tt), seq: uint64(i)})
		}
		prevAt, prevSeq := Time(-1), uint64(0)
		for q.Len() > 0 {
			ev := q.pop()
			if ev.at < prevAt {
				return false
			}
			if ev.at == prevAt && ev.seq < prevSeq {
				return false
			}
			prevAt, prevSeq = ev.at, ev.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved push/pop maintains heap order.
func TestQueueInterleavedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var q eventQueue
	seq := uint64(0)
	lastPopped := Time(-1)
	for i := 0; i < 10000; i++ {
		if q.Len() == 0 || rng.Intn(2) == 0 {
			// Push at a time not before the last popped event (causality).
			at := lastPopped + Time(rng.Intn(100))
			if at < 0 {
				at = 0
			}
			q.push(&event{at: at, seq: seq})
			seq++
		} else {
			ev := q.pop()
			if ev.at < lastPopped {
				t.Fatalf("popped %v after %v", ev.at, lastPopped)
			}
			lastPopped = ev.at
		}
	}
}

func TestTraceCap(t *testing.T) {
	var tr Trace
	tr.SetCap(100)
	for i := 0; i < 1000; i++ {
		tr.Append(TraceEvent{At: Time(i), Kind: "x", Node: i})
	}
	if tr.Len() > 100 {
		t.Fatalf("trace len %d exceeds cap", tr.Len())
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected drops")
	}
	evs := tr.Events()
	if evs[len(evs)-1].At != 999 {
		t.Fatalf("lost most recent event, last = %v", evs[len(evs)-1])
	}
}

func TestTraceFilter(t *testing.T) {
	var tr Trace
	tr.Append(TraceEvent{Kind: "a", Node: 1})
	tr.Append(TraceEvent{Kind: "b", Node: 2})
	tr.Append(TraceEvent{Kind: "a", Node: 3})
	got := tr.Filter("a")
	if len(got) != 2 || got[0].Node != 1 || got[1].Node != 3 {
		t.Fatalf("Filter = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	if Infinity.String() != "inf" {
		t.Fatalf("Infinity.String() = %q", Infinity.String())
	}
	if Time(42).String() != "t42" {
		t.Fatalf("Time(42).String() = %q", Time(42).String())
	}
}
