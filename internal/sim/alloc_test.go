package sim

import "testing"

// TestScheduleStepAllocationFree pins down the event pool: once the queue
// and free list are warm, scheduling and executing events must not allocate
// at all. A regression here means the hot path went back to one heap event
// per At/After.
func TestScheduleStepAllocationFree(t *testing.T) {
	e := NewEngine(1)
	var tick func()
	n := 0
	tick = func() {
		if n < 100 {
			n++
			e.After(1, tick)
		}
	}
	// Warm the pool and the heap's backing array.
	e.At(e.Now(), tick)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(100, func() {
		n = 0
		e.At(e.Now(), tick)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+run allocates %.1f times per 100-event burst, want 0", allocs)
	}
}

// countingDispatcher re-posts a chain of typed events, mimicking a
// scheduler's steady state: every dispatched event schedules the next.
type countingDispatcher struct {
	e *Engine
	n int
}

func (d *countingDispatcher) Dispatch(kind EventKind, op Op) {
	if kind != EventKind(1) {
		panic("unexpected kind")
	}
	if d.n < 100 {
		d.n++
		d.e.Post(d.e.Now()+1, 1, op.Obj, op.A+1, op.B)
	}
}

// TestTypedPostStepAllocationFree pins the typed steady-state path: posting
// and dispatching typed events — the path every shipped scheduler runs on —
// must not allocate at all once the pool is warm. Unlike the closure path,
// this holds even when each event carries a fresh payload (kind + operands
// are plain fields; the obj pointer boxes for free).
func TestTypedPostStepAllocationFree(t *testing.T) {
	e := NewEngine(1)
	d := &countingDispatcher{e: e}
	e.SetDispatcher(d)
	payload := &struct{ x int }{42}
	run := func() {
		d.n = 0
		e.Post(e.Now(), 1, payload, 0, 0)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pool and the heap's backing array
	allocs := testing.AllocsPerRun(100, run)
	if allocs != 0 {
		t.Fatalf("steady-state typed post+dispatch allocates %.1f times per 100-event burst, want 0", allocs)
	}
}

// TestEventPoolBounded pins the free-list cap: a delivery burst must not pin
// its peak event count for the rest of the run. After draining a large
// burst, the pool must have shrunk back to the 2×live+floor bound instead
// of retaining all burst events.
func TestEventPoolBounded(t *testing.T) {
	e := NewEngine(1)
	const burst = 10_000
	for i := 0; i < burst; i++ {
		e.At(Time(i%97), func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got, limit := len(e.queue.free), 2*len(e.queue.items)+freeFloor; got > limit {
		t.Fatalf("after a %d-event burst the free list holds %d events, bound is %d", burst, got, limit)
	}
	// The bound tracks the live queue: with events in flight the pool may
	// keep proportionally more.
	for i := 0; i < 50; i++ {
		e.At(e.Now()+Time(i+1), func() {})
	}
	if got, limit := len(e.queue.free), 2*e.queue.Len()+freeFloor; got > limit {
		t.Fatalf("free list %d exceeds bound %d with %d live events", got, limit, e.queue.Len())
	}
}

// TestHandleStaleAfterReuse verifies the pool's generation guard: a handle
// for a fired event must not cancel the recycled event that now occupies
// the same struct.
func TestHandleStaleAfterReuse(t *testing.T) {
	e := NewEngine(1)
	ran := false
	h1 := e.At(0, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// h1's event struct is now in the free list; the next At reuses it.
	h2 := e.At(e.Now()+1, func() { ran = true })
	if h1.ev != h2.ev {
		t.Skip("pool did not hand back the same struct; nothing to test")
	}
	if h1.Active() {
		t.Fatal("stale handle reports active")
	}
	h1.Cancel() // must be a no-op on the recycled event
	if !h2.Active() {
		t.Fatal("stale Cancel killed the recycled event")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("recycled event did not run")
	}
}
