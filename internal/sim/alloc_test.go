package sim

import "testing"

// TestScheduleStepAllocationFree pins down the event pool: once the queue
// and free list are warm, scheduling and executing events must not allocate
// at all. A regression here means the hot path went back to one heap event
// per At/After.
func TestScheduleStepAllocationFree(t *testing.T) {
	e := NewEngine(1)
	var tick func()
	n := 0
	tick = func() {
		if n < 100 {
			n++
			e.After(1, tick)
		}
	}
	// Warm the pool and the heap's backing array.
	e.At(e.Now(), tick)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(100, func() {
		n = 0
		e.At(e.Now(), tick)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+run allocates %.1f times per 100-event burst, want 0", allocs)
	}
}

// TestHandleStaleAfterReuse verifies the pool's generation guard: a handle
// for a fired event must not cancel the recycled event that now occupies
// the same struct.
func TestHandleStaleAfterReuse(t *testing.T) {
	e := NewEngine(1)
	ran := false
	h1 := e.At(0, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// h1's event struct is now in the free list; the next At reuses it.
	h2 := e.At(e.Now()+1, func() { ran = true })
	if h1.ev != h2.ev {
		t.Skip("pool did not hand back the same struct; nothing to test")
	}
	if h1.Active() {
		t.Fatal("stale handle reports active")
	}
	h1.Cancel() // must be a no-op on the recycled event
	if !h2.Active() {
		t.Fatal("stale Cancel killed the recycled event")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("recycled event did not run")
	}
}
