package sched

import (
	"amac/internal/mac"
	"amac/internal/sim"
)

// Slot is the globally slot-synchronous scheduler for the enhanced abstract
// MAC layer: virtual time is divided into slots of length Fprog and, one
// tick before each slot ends, every receiver with at least one contending
// broadcast obtains exactly one message:
//
//   - If some contender comes from a reliable (G) neighbor, a delivery is
//     mandatory (the progress bound) and the winner is chosen uniformly at
//     random among all contenders — so a grey-zone interferer can displace
//     the reliable message, which is exactly the collision behavior FMMB's
//     analysis defends against.
//   - If all contenders come from unreliable (G′\G) neighbors, the delivery
//     happens with probability GreyP (unreliability).
//
// Instances whose reliable neighborhood is fully served are acked in the
// same tick; anything else is expected to be aborted by its sender at the
// slot boundary (FMMB does exactly that). Instances that linger anyway are
// carried into following slots and force-completed before their Fack
// deadline, keeping the scheduler model-compliant for arbitrary automata.
type Slot struct {
	// GreyP is the delivery probability when only unreliable senders
	// contend. The zero value selects the default 0.5; negative values
	// select 0 (grey links never fire without reliable contention).
	GreyP float64

	// greyP is GreyP with defaults resolved; Attach recomputes it without
	// mutating the configured field, so re-attachment is idempotent.
	greyP float64

	api        mac.API
	live       []*mac.Instance
	armed      map[sim.Time]bool
	contenders [][]*mac.Instance
}

var (
	_ mac.Scheduler      = (*Slot)(nil)
	_ mac.TimerScheduler = (*Slot)(nil)
	_ Resettable         = (*Slot)(nil)
)

// Name implements mac.Scheduler.
func (s *Slot) Name() string { return "slot" }

// Reset implements Resettable: all per-run state is re-initialized by
// Attach, which reuses its capacity.
func (s *Slot) Reset(Env) bool { return true }

// Attach implements mac.Scheduler. The live set, slot map and contender
// scratch keep their capacity across attachments.
func (s *Slot) Attach(api mac.API) {
	s.api = api
	if s.armed == nil {
		s.armed = make(map[sim.Time]bool)
	} else {
		clear(s.armed)
	}
	for i := range s.live {
		s.live[i] = nil
	}
	s.live = s.live[:0]
	switch {
	case s.GreyP < 0:
		s.greyP = 0
	case s.GreyP == 0:
		s.greyP = 0.5
	default:
		s.greyP = s.GreyP
	}
}

// OnBcast implements mac.Scheduler.
//amac:hotpath
func (s *Slot) OnBcast(b *mac.Instance) {
	s.live = append(s.live, b)
	s.armSlot()
}

// OnAbort implements mac.Scheduler. Aborted instances drop out of the live
// set lazily at the next slot handler.
func (s *Slot) OnAbort(*mac.Instance) {}

// armSlot schedules the end-of-slot handler for the current slot if not
// already armed.
//amac:hotpath
func (s *Slot) armSlot() {
	fprog := s.api.Fprog()
	now := s.api.Now()
	slot := now / fprog
	fire := (slot+1)*fprog - 1
	if fire < now {
		// We are exactly at the last tick of a slot; serve next slot.
		fire += fprog
	}
	if s.armed[fire] {
		return
	}
	s.armed[fire] = true
	s.api.ScheduleTimer(fire, nil, int64(fire), 0)
}

// OnTimer implements mac.TimerScheduler: the end-of-slot handler.
func (s *Slot) OnTimer(_ any, a, _ int64) {
	fire := sim.Time(a)
	delete(s.armed, fire)
	s.handleSlot(fire)
}

// handleSlot performs all deliveries and acks for the slot ending just
// after fire.
//amac:hotpath
func (s *Slot) handleSlot(fire sim.Time) {
	api := s.api
	d := api.Dual()
	rng := api.Rand()

	// Compact the live set, dropping terminated instances.
	live := s.live[:0]
	for _, b := range s.live {
		if b.Term == mac.Active {
			live = append(live, b)
		}
	}
	s.live = live

	// Per-receiver contender sets, drawn from the pooled scratch so a warm
	// slot allocates nothing once the per-receiver slices have grown.
	n := d.N()
	if cap(s.contenders) < n {
		s.contenders = make([][]*mac.Instance, n) //lint:hotalloc lazy grow: sized once per network size, then reused slot after slot
	}
	contenders := s.contenders[:n]
	for j := range contenders {
		contenders[j] = contenders[j][:0]
	}
	for _, b := range s.live {
		for _, j := range d.GPrime.Neighbors(b.Sender) {
			if b.WasDelivered(j) {
				continue
			}
			contenders[j] = append(contenders[j], b)
		}
	}

	for j := 0; j < n; j++ {
		cs := contenders[j]
		if len(cs) == 0 {
			continue
		}
		reliable := false
		for _, b := range cs {
			if d.G.HasEdge(b.Sender, mac.NodeID(j)) {
				reliable = true
				break
			}
		}
		if !reliable && rng.Float64() >= s.greyP {
			continue
		}
		pick := cs[rng.Intn(len(cs))]
		api.Deliver(pick, mac.NodeID(j))

		// Deadline enforcement for lingering instances: force-complete any
		// contender that cannot survive another slot.
		for _, b := range cs {
			if b == pick {
				continue
			}
			if d.G.HasEdge(b.Sender, mac.NodeID(j)) && b.Start+api.Fack() < fire+api.Fprog() {
				api.Deliver(b, mac.NodeID(j))
			}
		}
	}

	// Ack every live instance whose reliable neighborhood is served.
	for _, b := range s.live {
		if b.Term == mac.Active && b.AllReliableDelivered() {
			api.Ack(b)
		}
	}

	// Keep the cadence while anything lives on.
	hasActive := false
	for _, b := range s.live {
		if b.Term == mac.Active {
			hasActive = true
			break
		}
	}
	if hasActive {
		next := fire + api.Fprog()
		if !s.armed[next] {
			s.armed[next] = true
			s.api.ScheduleTimer(next, nil, int64(next), 0)
		}
	}
}
