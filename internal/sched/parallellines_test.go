package sched_test

import (
	"testing"

	"amac/internal/check"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// floodNode is a minimal BMMB-like node for driving the ParallelLines
// adversary without importing core: FIFO queue + duplicate filter over
// string payloads.
type floodNode struct {
	queue []mac.Payload
	seen  map[mac.Payload]bool
}

func newFloodNode() *floodNode { return &floodNode{seen: map[mac.Payload]bool{}} }

func (f *floodNode) learn(ctx mac.Context, m mac.Payload) {
	if f.seen[m] {
		return
	}
	f.seen[m] = true
	ctx.Emit("deliver", m)
	f.queue = append(f.queue, m)
	if !ctx.Pending() {
		ctx.Bcast(f.queue[0])
	}
}

func (f *floodNode) Wakeup(mac.Context) {}
func (f *floodNode) Recv(ctx mac.Context, m mac.Message) {
	f.learn(ctx, m.Payload)
}
func (f *floodNode) Acked(ctx mac.Context, m mac.Message) {
	f.queue = f.queue[1:]
	if len(f.queue) > 0 {
		ctx.Bcast(f.queue[0])
	}
}
func (f *floodNode) Arrive(ctx mac.Context, p mac.Payload) { f.learn(ctx, p) }

func TestParallelLinesForcesOneHopPerFack(t *testing.T) {
	const D = 6
	net := topology.NewParallelLinesC(D)
	s := &sched.ParallelLines{
		Net:  net,
		IsM0: func(p mac.Payload) bool { return p == mac.Ext("m0") },
		IsM1: func(p mac.Payload) bool { return p == mac.Ext("m1") },
	}
	autos := make([]mac.Automaton, net.N())
	for i := range autos {
		autos[i] = newFloodNode()
	}
	eng := mac.NewEngine(mac.Config{
		Dual:      net.Dual,
		Fack:      fack,
		Fprog:     fprog,
		Scheduler: s,
		Seed:      1,
	}, autos)

	// Record when each line-A node first delivers m0.
	firstM0 := make(map[int]sim.Time)
	eng.Watch(func(ev sim.TraceEvent) {
		if ev.Kind == "deliver" && ev.Value() == "m0" && ev.Node < D {
			if _, ok := firstM0[ev.Node]; !ok {
				firstM0[ev.Node] = ev.At
			}
		}
	})
	eng.Start()
	eng.Arrive(net.A(1), mac.Ext("m0"), 0)
	eng.Arrive(net.B(1), mac.Ext("m1"), 0)
	eng.Sim().SetStepLimit(1_000_000)
	eng.Run()

	// Frontier law: a_{i} delivers m0 exactly at (i-1)·Fack.
	for i := 1; i <= D; i++ {
		at, ok := firstM0[int(net.A(i))]
		if !ok {
			t.Fatalf("a%d never delivered m0", i)
		}
		want := sim.Time(i-1) * fack
		if at != want {
			t.Fatalf("a%d delivered m0 at %v, want exactly %v", i, at, want)
		}
	}
	// And the adversary played by the rules.
	rep := check.All(net.Dual, eng.Instances(), check.Params{
		Fack: fack, Fprog: fprog, End: eng.Sim().Now(),
	})
	if !rep.OK() {
		t.Fatalf("adversary violated the model: %v", rep.Violations[0])
	}
}

func TestParallelLinesRequiresWiring(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing config did not panic")
		}
	}()
	net := topology.NewParallelLinesC(4)
	autos := make([]mac.Automaton, net.N())
	for i := range autos {
		autos[i] = newFloodNode()
	}
	mac.NewEngine(mac.Config{
		Dual:      net.Dual,
		Fack:      fack,
		Fprog:     fprog,
		Scheduler: &sched.ParallelLines{Net: net}, // IsM0/IsM1 missing
		Seed:      1,
	}, autos)
}

func TestParallelLinesCrossDeliveriesExist(t *testing.T) {
	// The adversary's progress-bound cover: during each stretch, the
	// diagonal node on the opposite line receives the frontier instance at
	// +Fprog over a G'-only edge.
	const D = 5
	net := topology.NewParallelLinesC(D)
	s := &sched.ParallelLines{
		Net:  net,
		IsM0: func(p mac.Payload) bool { return p == mac.Ext("m0") },
		IsM1: func(p mac.Payload) bool { return p == mac.Ext("m1") },
	}
	autos := make([]mac.Automaton, net.N())
	for i := range autos {
		autos[i] = newFloodNode()
	}
	eng := mac.NewEngine(mac.Config{
		Dual: net.Dual, Fack: fack, Fprog: fprog, Scheduler: s, Seed: 2,
	}, autos)
	eng.Start()
	eng.Arrive(net.A(1), mac.Ext("m0"), 0)
	eng.Arrive(net.B(1), mac.Ext("m1"), 0)
	eng.Sim().SetStepLimit(1_000_000)
	eng.Run()

	cross := 0
	for _, b := range eng.Instances() {
		for _, to := range b.Receivers() {
			if !net.G.HasEdge(b.Sender, to) {
				cross++
			}
		}
	}
	// One cross delivery per stretched instance per line: 2·(D-1) total.
	if cross != 2*(D-1) {
		t.Fatalf("cross deliveries = %d, want %d", cross, 2*(D-1))
	}
}
