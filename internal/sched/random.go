package sched

import (
	"math/rand"

	"amac/internal/mac"
	"amac/internal/sim"
)

// Random draws all timing uniformly inside the model bounds: each
// G-neighbor receives after a uniform delay in [1, Fprog], each selected
// unreliable neighbor after a uniform delay in [1, ackDelay], and the ack
// fires after a uniform delay in [maxReceiveDelay, Fack]. It exercises the
// model's timing freedom; upper-bound experiments must hold under it.
type Random struct {
	// Rel selects which unreliable links fire; nil means Never.
	Rel Reliability

	api mac.API
}

var (
	_ mac.Scheduler = (*Random)(nil)
	_ Resettable    = (*Random)(nil)
)

// Name implements mac.Scheduler.
func (r *Random) Name() string {
	rel := "never"
	if r.Rel != nil {
		rel = r.Rel.Name()
	}
	return "random(rel=" + rel + ")"
}

// Reset implements Resettable: Random keeps no cross-run state of its own.
func (r *Random) Reset(Env) bool {
	resetRel(r.Rel)
	return true
}

// Attach implements mac.Scheduler.
func (r *Random) Attach(api mac.API) { r.api = api }

// OnBcast implements mac.Scheduler.
//amac:hotpath
func (r *Random) OnBcast(b *mac.Instance) {
	api := r.api
	rng := api.Rand()
	now := api.Now()

	maxRecv := sim.Time(1)
	for _, j := range api.Dual().G.Neighbors(b.Sender) {
		d := uniformTime(rng, 1, api.Fprog())
		if d > maxRecv {
			maxRecv = d
		}
		api.ScheduleDeliver(now+d, b, j)
	}
	ackDelay := uniformTime(rng, maxRecv, api.Fack())
	for _, j := range greyTargets(api, b, r.Rel) {
		api.ScheduleDeliver(now+uniformTime(rng, 1, ackDelay), b, j)
	}
	api.ScheduleAck(now+ackDelay, b)
}

// uniformTime draws a uniform delay in [lo, hi], collapsing to lo when the
// interval is empty.
func uniformTime(rng *rand.Rand, lo, hi sim.Time) sim.Time {
	if hi <= lo {
		return lo
	}
	return lo + sim.Time(rng.Int63n(int64(hi-lo+1)))
}

// OnAbort implements mac.Scheduler.
func (r *Random) OnAbort(*mac.Instance) {}
