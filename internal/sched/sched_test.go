package sched_test

import (
	"math/rand"
	"testing"

	"amac/internal/check"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

const (
	fprog = sim.Time(10)
	fack  = sim.Time(200)
)

// chattyNode broadcasts `count` payloads back to back (waiting for each
// ack), which exercises scheduler pipelines under sustained load.
type chattyNode struct {
	count int
	sent  int
	recvd int
}

func (c *chattyNode) Wakeup(ctx mac.Context) { c.next(ctx) }
func (c *chattyNode) next(ctx mac.Context) {
	if c.sent < c.count && !ctx.Pending() {
		c.sent++
		ctx.Bcast(sim.Payload{Kind: sim.PayloadInt, A: int64(ctx.ID()), B: int64(c.sent)})
	}
}
func (c *chattyNode) Recv(_ mac.Context, _ mac.Message)    { c.recvd++ }
func (c *chattyNode) Acked(ctx mac.Context, _ mac.Message) { c.next(ctx) }

func chattyFleet(n, count int) []mac.Automaton {
	out := make([]mac.Automaton, n)
	for i := range out {
		out[i] = &chattyNode{count: count}
	}
	return out
}

// runChecked runs the fleet on the dual with the scheduler and fails the
// test on any model violation.
func runChecked(t *testing.T, d *topology.Dual, s mac.Scheduler, autos []mac.Automaton, seed int64) *mac.Engine {
	t.Helper()
	eng := mac.NewEngine(mac.Config{
		Dual:      d,
		Fack:      fack,
		Fprog:     fprog,
		Scheduler: s,
		Seed:      seed,
	}, autos)
	eng.Start()
	eng.Sim().SetStepLimit(5_000_000)
	eng.Run()
	rep := check.All(d, eng.Instances(), check.Params{
		Fack: fack, Fprog: fprog, End: eng.Sim().Now(),
	})
	if !rep.OK() {
		t.Fatalf("%s violates the model: %v", s.Name(), rep.Violations[0])
	}
	return eng
}

// TestSchedulersModelCompliance stresses every general-purpose scheduler on
// several topologies under sustained load and verifies all five model
// guarantees on the recorded execution.
func TestSchedulersModelCompliance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	duals := []*topology.Dual{
		topology.Line(6),
		topology.Star(10),
		topology.Grid(3, 3),
		topology.LineRRestricted(10, 3, 1.0, rng),
		topology.ArbitraryNoise(topology.Line(10).G, 8, rng, "noise"),
	}
	builders := []func() mac.Scheduler{
		func() mac.Scheduler { return &sched.Sync{} },
		func() mac.Scheduler { return &sched.Sync{Rel: sched.Always{}} },
		func() mac.Scheduler { return &sched.Sync{RecvDelay: 1, AckDelay: 1, Rel: sched.Bernoulli{P: 0.4}} },
		func() mac.Scheduler { return &sched.Random{} },
		func() mac.Scheduler { return &sched.Random{Rel: sched.Always{}} },
		func() mac.Scheduler { return &sched.Contention{} },
		func() mac.Scheduler { return &sched.Contention{Rel: sched.Bernoulli{P: 0.6}} },
	}
	for _, d := range duals {
		for _, mk := range builders {
			s := mk()
			t.Run(d.Name+"/"+s.Name(), func(t *testing.T) {
				eng := runChecked(t, d, s, chattyFleet(d.N(), 4), 7)
				// Every broadcast must eventually have terminated.
				for _, b := range eng.Instances() {
					if !b.Terminated() {
						t.Fatalf("instance %d never terminated", b.ID)
					}
				}
			})
		}
	}
}

func TestSyncDeliversToAllGNeighbors(t *testing.T) {
	d := topology.Star(8)
	eng := runChecked(t, d, &sched.Sync{}, chattyFleet(8, 1), 3)
	for _, b := range eng.Instances() {
		for _, j := range d.G.Neighbors(b.Sender) {
			if !b.WasDelivered(j) {
				t.Fatalf("instance %d missed G-neighbor %d", b.ID, j)
			}
		}
	}
}

func TestSyncGreyDeliveries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := topology.LineRRestricted(8, 3, 1.0, rng)
	eng := runChecked(t, d, &sched.Sync{Rel: sched.Always{}}, chattyFleet(8, 1), 3)
	// With Always, every G' neighbor receives every instance.
	for _, b := range eng.Instances() {
		for _, j := range d.GPrime.Neighbors(b.Sender) {
			if !b.WasDelivered(j) {
				t.Fatalf("instance %d missed G' neighbor %d under Always", b.ID, j)
			}
		}
	}
	// With Never, only G neighbors receive.
	eng = runChecked(t, d, &sched.Sync{Rel: sched.Never{}}, chattyFleet(8, 1), 3)
	for _, b := range eng.Instances() {
		for _, to := range b.Receivers() {
			if !d.G.HasEdge(b.Sender, to) {
				t.Fatalf("instance %d leaked to non-G neighbor %d under Never", b.ID, to)
			}
		}
	}
}

func TestSyncAckTiming(t *testing.T) {
	d := topology.Line(3)
	eng := runChecked(t, d, &sched.Sync{}, chattyFleet(3, 2), 3)
	for _, b := range eng.Instances() {
		if b.Term != mac.Acked {
			t.Fatalf("instance %d not acked", b.ID)
		}
		if got := b.TermAt - b.Start; got != fack {
			t.Fatalf("instance %d acked after %v, want exactly Fack=%v", b.ID, got, fack)
		}
	}
}

func TestContentionRespectsSlotCapacity(t *testing.T) {
	// On a star, the hub faces maximal contention; it must still receive
	// roughly one message per Fprog, and never two in the same tick unless
	// deadline-forced.
	d := topology.Star(12)
	eng := runChecked(t, d, &sched.Contention{}, chattyFleet(12, 3), 9)
	var hubRecvs []sim.Time
	for _, b := range eng.Instances() {
		if at, ok := b.DeliveredAt(0); ok {
			hubRecvs = append(hubRecvs, at)
		}
	}
	if len(hubRecvs) != 11*3 {
		t.Fatalf("hub receives = %d, want 33", len(hubRecvs))
	}
}

func TestContentionStarFprogVsFack(t *testing.T) {
	// The paper's footnote-2 example: in a star where all leaves
	// broadcast, the hub receives *some* message quickly (≤ Fprog) while
	// the last leaf waits much longer for its ack (contention).
	d := topology.Star(20)
	autos := chattyFleet(20, 1)
	eng := runChecked(t, d, &sched.Contention{}, autos, 11)
	firstHubRecv := sim.Infinity
	lastLeafAck := sim.Time(0)
	for _, b := range eng.Instances() {
		if b.Sender != 0 {
			if at, ok := b.DeliveredAt(0); ok && at < firstHubRecv {
				firstHubRecv = at
			}
			if b.Term == mac.Acked && b.TermAt > lastLeafAck {
				lastLeafAck = b.TermAt
			}
		}
	}
	if firstHubRecv > fprog {
		t.Fatalf("first hub receive at %v, want <= Fprog=%v", firstHubRecv, fprog)
	}
	if lastLeafAck < 5*fprog {
		t.Fatalf("last leaf ack at %v: contention should stretch acks well past Fprog", lastLeafAck)
	}
}

func TestReliabilityPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := &mac.Instance{}
	if !(sched.Always{}).Deliver(rng, b, 0) {
		t.Fatal("Always returned false")
	}
	if (sched.Never{}).Deliver(rng, b, 0) {
		t.Fatal("Never returned true")
	}
	hits := 0
	const trials = 10_000
	pol := sched.Bernoulli{P: 0.3}
	for i := 0; i < trials; i++ {
		if pol.Deliver(rng, b, 0) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.25 || got > 0.35 {
		t.Fatalf("Bernoulli(0.3) hit rate = %v", got)
	}
	if pol.Name() == "" || (sched.Always{}).Name() == "" || (sched.Never{}).Name() == "" {
		t.Fatal("empty policy name")
	}
}
