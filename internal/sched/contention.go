package sched

import (
	"amac/internal/mac"
	"amac/internal/sim"
)

// Contention models a congested MAC: each receiver accepts at most one
// message per Fprog window (a "slot"), choosing among pending candidates by
// earliest deadline first. Reliable deliveries carry a hard deadline of
// bcast + Fack and are force-delivered when a slot can no longer wait, so
// the acknowledgment bound always holds; unreliable deliveries are
// best-effort and dropped when their instance terminates first.
//
// This scheduler makes the Fprog ≪ Fack separation emerge organically: a
// node surrounded by many concurrent broadcasters receives *something*
// every Fprog (progress bound) while any *specific* message may take the
// full Fack (acknowledgment bound) — the star example from the paper's
// introduction, footnote 2.
//
// Per receiver the candidates live in two min-heaps keyed by (deadline,
// enqueue order) — one for required (G-edge) and one for best-effort
// deliveries — so each slot picks its EDF winner and drains its overdue
// required candidates in O(log d) per operation instead of rescanning the
// whole pending set.
type Contention struct {
	// Rel selects which unreliable links fire; nil means Never.
	Rel Reliability

	api mac.API
	rcv []receiverState
}

type candidate struct {
	inst     *mac.Instance
	deadline sim.Time
	seq      uint64
	required bool
}

// candHeap is a slice-backed binary min-heap of candidates ordered by
// (deadline, seq). seq is the receiver-local enqueue counter, which makes
// heap order — and therefore the whole execution — deterministic.
type candHeap []candidate

func (h candHeap) less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}

func (h *candHeap) push(c candidate) {
	*h = append(*h, c)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *candHeap) pop() candidate {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = candidate{}
	*h = s[:n]
	s = *h
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && s.less(left, smallest) {
			smallest = left
		}
		if right < n && s.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

type receiverState struct {
	required  candHeap // candidates over G edges (deadline-guaranteed)
	optional  candHeap // best-effort candidates over G'\G edges
	seq       uint64   // enqueue counter feeding the heap tie-break
	scheduled bool
	nextAt    sim.Time // when the scheduled processing fires
}

// dropDead pops candidates of terminated instances off the heap top.
// Buried dead candidates are collected when they surface.
func dropDead(h *candHeap) {
	for len(*h) > 0 && (*h)[0].inst.Terminated() {
		h.pop()
	}
}

// peekLive returns the live heap top, purging dead candidates first.
func (rs *receiverState) peekLive(h *candHeap) (candidate, bool) {
	dropDead(h)
	if len(*h) == 0 {
		return candidate{}, false
	}
	return (*h)[0], true
}

var (
	_ mac.Scheduler      = (*Contention)(nil)
	_ mac.TimerScheduler = (*Contention)(nil)
	_ Resettable         = (*Contention)(nil)
)

// Reset implements Resettable: per-run receiver state is re-initialized by
// Attach (which reuses its capacity), so re-arming only resets the
// reliability policy.
func (c *Contention) Reset(Env) bool {
	resetRel(c.Rel)
	return true
}

// Name implements mac.Scheduler.
func (c *Contention) Name() string {
	rel := "never"
	if c.Rel != nil {
		rel = c.Rel.Name()
	}
	return "contention(rel=" + rel + ")"
}

// Attach implements mac.Scheduler. Receiver state — including the heap
// backing arrays — is reused across attachments when the network size
// allows, so warm re-runs allocate nothing here.
func (c *Contention) Attach(api mac.API) {
	c.api = api
	n := api.Dual().N()
	if cap(c.rcv) < n {
		c.rcv = make([]receiverState, n)
		return
	}
	c.rcv = c.rcv[:n]
	for i := range c.rcv {
		rs := &c.rcv[i]
		clearHeap(&rs.required)
		clearHeap(&rs.optional)
		rs.seq = 0
		rs.scheduled = false
		rs.nextAt = 0
	}
}

// clearHeap empties a heap, zeroing the retained backing array so recycled
// candidates do not pin instances.
func clearHeap(h *candHeap) {
	s := *h
	for i := range s {
		s[i] = candidate{}
	}
	*h = s[:0]
}

// OnBcast implements mac.Scheduler.
//amac:hotpath
func (c *Contention) OnBcast(b *mac.Instance) {
	deadline := b.Start + c.api.Fack()
	for _, j := range c.api.Dual().G.Neighbors(b.Sender) {
		c.enqueue(j, candidate{inst: b, deadline: deadline, required: true})
	}
	for _, j := range greyTargets(c.api, b, c.Rel) {
		c.enqueue(j, candidate{inst: b, deadline: deadline, required: false})
	}
	if c.api.Dual().G.Degree(b.Sender) == 0 {
		// No reliable neighbors to wait for: ack after one progress window.
		c.api.ScheduleAck(b.Start+c.api.Fprog(), b)
	}
}

// OnAbort implements mac.Scheduler. Terminated instances are dropped lazily
// at processing time.
func (c *Contention) OnAbort(*mac.Instance) {}

//amac:hotpath
func (c *Contention) enqueue(j mac.NodeID, cand candidate) {
	rs := &c.rcv[j]
	cand.seq = rs.seq
	rs.seq++
	if cand.required {
		rs.required.push(cand)
	} else {
		rs.optional.push(cand)
	}
	now := c.api.Now()
	// A fresh delivery takes one progress window; if the receiver already
	// has a processing slot booked sooner, the cadence serves everyone.
	want := now + c.api.Fprog()
	if !rs.scheduled || rs.nextAt > want {
		c.schedule(j, want)
	}
}

//amac:hotpath
func (c *Contention) schedule(j mac.NodeID, at sim.Time) {
	rs := &c.rcv[j]
	rs.scheduled = true
	rs.nextAt = at
	c.api.ScheduleTimer(at, nil, int64(j), int64(at))
}

// OnTimer implements mac.TimerScheduler: a receiver's processing slot. Only
// the most recently booked slot fires; superseded bookings (a sooner slot
// was scheduled after this one) are recognized by the nextAt mismatch and
// dropped.
//amac:hotpath
func (c *Contention) OnTimer(_ any, a, b int64) {
	j, at := mac.NodeID(a), sim.Time(b)
	rs := &c.rcv[j]
	if rs.nextAt == at && rs.scheduled {
		rs.scheduled = false
		c.process(j)
	}
}

// process runs one receive slot for j: deliver the earliest-deadline live
// candidate (required wins deadline ties), then force-deliver any required
// candidate that cannot survive another slot.
//amac:hotpath
func (c *Contention) process(j mac.NodeID) {
	rs := &c.rcv[j]
	now := c.api.Now()

	req, hasReq := rs.peekLive(&rs.required)
	opt, hasOpt := rs.peekLive(&rs.optional)
	switch {
	case hasReq && (!hasOpt || req.deadline <= opt.deadline):
		c.deliver(j, rs.required.pop())
	case hasOpt:
		c.deliver(j, rs.optional.pop())
	default:
		return
	}

	// Force-deliver reliable candidates that would miss their deadline if
	// they waited one more slot (deadline enforcement beats slot capacity:
	// the model's Fack bound is unconditional). They sit at the heap front
	// because deadlines are enqueue-monotone (deadline = bcast + Fack).
	for {
		top, ok := rs.peekLive(&rs.required)
		if !ok || top.deadline > now+c.api.Fprog() {
			break
		}
		c.deliver(j, rs.required.pop())
	}

	_, hasReq = rs.peekLive(&rs.required)
	_, hasOpt = rs.peekLive(&rs.optional)
	if hasReq || hasOpt {
		c.schedule(j, now+c.api.Fprog())
	}
}

// deliver performs the rcv for cand, acking the instance when its last
// reliable delivery completes.
//amac:hotpath
func (c *Contention) deliver(j mac.NodeID, cand candidate) {
	c.api.Deliver(cand.inst, j)
	if cand.required && cand.inst.AllReliableDelivered() {
		c.api.Ack(cand.inst)
	}
}
