package sched

import (
	"amac/internal/mac"
	"amac/internal/sim"
)

// Contention models a congested MAC: each receiver accepts at most one
// message per Fprog window (a "slot"), choosing among pending candidates by
// earliest deadline first. Reliable deliveries carry a hard deadline of
// bcast + Fack and are force-delivered when a slot can no longer wait, so
// the acknowledgment bound always holds; unreliable deliveries are
// best-effort and dropped when their instance terminates first.
//
// This scheduler makes the Fprog ≪ Fack separation emerge organically: a
// node surrounded by many concurrent broadcasters receives *something*
// every Fprog (progress bound) while any *specific* message may take the
// full Fack (acknowledgment bound) — the star example from the paper's
// introduction, footnote 2.
type Contention struct {
	// Rel selects which unreliable links fire; nil means Never.
	Rel Reliability

	api mac.API
	rcv []receiverState
}

type candidate struct {
	inst     *mac.Instance
	deadline sim.Time
	required bool
}

type receiverState struct {
	pending   []candidate
	scheduled bool
	nextAt    sim.Time // when the scheduled processing fires
}

var _ mac.Scheduler = (*Contention)(nil)

// Name implements mac.Scheduler.
func (c *Contention) Name() string {
	rel := "never"
	if c.Rel != nil {
		rel = c.Rel.Name()
	}
	return "contention(rel=" + rel + ")"
}

// Attach implements mac.Scheduler.
func (c *Contention) Attach(api mac.API) {
	c.api = api
	c.rcv = make([]receiverState, api.Dual().N())
}

// OnBcast implements mac.Scheduler.
func (c *Contention) OnBcast(b *mac.Instance) {
	deadline := b.Start + c.api.Fack()
	for _, j := range c.api.Dual().G.Neighbors(b.Sender) {
		c.enqueue(j, candidate{inst: b, deadline: deadline, required: true})
	}
	for _, j := range greyTargets(c.api, b, c.Rel) {
		c.enqueue(j, candidate{inst: b, deadline: deadline, required: false})
	}
	if c.api.Dual().G.Degree(b.Sender) == 0 {
		// No reliable neighbors to wait for: ack after one progress window.
		c.api.At(b.Start+c.api.Fprog(), func() {
			if b.Term == mac.Active {
				c.api.Ack(b)
			}
		})
	}
}

// OnAbort implements mac.Scheduler. Terminated instances are dropped lazily
// at processing time.
func (c *Contention) OnAbort(*mac.Instance) {}

func (c *Contention) enqueue(j mac.NodeID, cand candidate) {
	rs := &c.rcv[j]
	rs.pending = append(rs.pending, cand)
	now := c.api.Now()
	// A fresh delivery takes one progress window; if the receiver already
	// has a processing slot booked sooner, the cadence serves everyone.
	want := now + c.api.Fprog()
	if !rs.scheduled || rs.nextAt > want {
		c.schedule(j, want)
	}
}

func (c *Contention) schedule(j mac.NodeID, at sim.Time) {
	rs := &c.rcv[j]
	rs.scheduled = true
	rs.nextAt = at
	c.api.At(at, func() {
		if rs.nextAt == at && rs.scheduled {
			rs.scheduled = false
			c.process(j)
		}
	})
}

// process runs one receive slot for j: drop dead candidates, deliver the
// earliest-deadline candidate, then force-deliver any required candidate
// that cannot survive another slot.
func (c *Contention) process(j mac.NodeID) {
	rs := &c.rcv[j]
	now := c.api.Now()

	live := rs.pending[:0]
	for _, cand := range rs.pending {
		if cand.inst.Terminated() {
			continue // unreliable candidate whose instance finished; drop
		}
		live = append(live, cand)
	}
	rs.pending = live
	if len(rs.pending) == 0 {
		return
	}

	best := 0
	for i, cand := range rs.pending {
		if cand.deadline < rs.pending[best].deadline ||
			(cand.deadline == rs.pending[best].deadline && cand.required && !rs.pending[best].required) {
			best = i
		}
	}
	c.deliver(j, best)

	// Force-deliver reliable candidates that would miss their deadline if
	// they waited one more slot (deadline enforcement beats slot capacity:
	// the model's Fack bound is unconditional).
	for i := 0; i < len(rs.pending); {
		cand := rs.pending[i]
		if cand.required && cand.deadline <= now+c.api.Fprog() {
			c.deliver(j, i)
			continue
		}
		i++
	}

	if len(rs.pending) > 0 {
		c.schedule(j, now+c.api.Fprog())
	}
}

// deliver performs the rcv for pending[i] and removes it, acking the
// instance when its last reliable delivery completes.
func (c *Contention) deliver(j mac.NodeID, i int) {
	rs := &c.rcv[j]
	cand := rs.pending[i]
	rs.pending = append(rs.pending[:i], rs.pending[i+1:]...)
	c.api.Deliver(cand.inst, j)
	if cand.required && c.allReliableDelivered(cand.inst) {
		c.api.Ack(cand.inst)
	}
}

func (c *Contention) allReliableDelivered(b *mac.Instance) bool {
	for _, v := range c.api.Dual().G.Neighbors(b.Sender) {
		if _, ok := b.Delivered[v]; !ok {
			return false
		}
	}
	return true
}
