// Package sched provides concrete message schedulers for the abstract MAC
// layer engine. The model (Section 2 of the paper) leaves the choice of
// which G′\G neighbors receive each message, the order of receive events,
// and all timing — within the Fack/Fprog bounds — to an arbitrary
// scheduler. Upper-bound claims are quantified over all schedulers, so this
// package supplies a spectrum:
//
//   - Sync: deterministic benign timing (receives at Fprog, acks at Fack by
//     default). With full ack delay it realizes the worst case of the
//     reliable-network bound and the Lemma 3.18 star-choke bound.
//   - Random: timing drawn uniformly inside the bounds.
//   - Contention: a receiver-slot model (one delivery per receiver per
//     Fprog) with earliest-deadline-first selection, realizing Fprog ≪ Fack
//     behavior organically.
//   - Slot: globally slot-synchronous delivery for the enhanced model;
//     FMMB's lock-step rounds run on it.
//   - ParallelLines: the adversarial schedule of Lemmas 3.19/3.20 against
//     BMMB on the Figure 2 network.
//
// Every shipped scheduler satisfies the model guarantees; package check
// re-verifies that on each test run.
package sched

import (
	"fmt"
	"math/rand"

	"amac/internal/mac"
)

// Reliability decides whether a given G′\G neighbor receives a given
// broadcast instance. It is consulted once per (instance, receiver) pair.
type Reliability interface {
	// Name identifies the policy in reports.
	Name() string
	// Deliver reports whether the unreliable link fires for this pair.
	Deliver(rng *rand.Rand, b *mac.Instance, to mac.NodeID) bool
}

// Always delivers on every unreliable link (G′ behaves like G).
type Always struct{}

// Name implements Reliability.
func (Always) Name() string { return "always" }

// Deliver implements Reliability.
func (Always) Deliver(*rand.Rand, *mac.Instance, mac.NodeID) bool { return true }

// Never suppresses every unreliable link (only reliable edges carry
// messages).
type Never struct{}

// Name implements Reliability.
func (Never) Name() string { return "never" }

// Deliver implements Reliability.
func (Never) Deliver(*rand.Rand, *mac.Instance, mac.NodeID) bool { return false }

// Bernoulli delivers on each unreliable link independently with
// probability P.
type Bernoulli struct{ P float64 }

// Name implements Reliability.
func (r Bernoulli) Name() string { return fmt.Sprintf("bernoulli(%.2f)", r.P) }

// Deliver implements Reliability.
func (r Bernoulli) Deliver(rng *rand.Rand, _ *mac.Instance, _ mac.NodeID) bool {
	return rng.Float64() < r.P
}

// Resettable is implemented by schedulers that can be re-armed for a new
// execution without rebuilding: Reset rebinds whatever the registry factory
// derived from the environment (tracked payloads, topology artifacts) and
// clears cross-run reliability state. It reports whether the scheduler could
// be adapted to env; false means the caller must Build a fresh one. Per-run
// working state is re-initialized by Attach, which the engine invokes at the
// start of every execution, so Reset + Attach is observably identical to a
// fresh factory build + Attach.
type Resettable interface {
	Reset(env Env) bool
}

// resetRel re-arms a stateful reliability policy (e.g. *Flaky) for a new
// execution. Stateless policies need nothing.
func resetRel(rel Reliability) {
	if r, ok := rel.(interface{ Reset() }); ok {
		r.Reset()
	}
}

// greyTargets returns the G′\G neighbors of b's sender selected by rel. The
// result is backed by the instance's grey scratch buffer, so steady-state
// draws allocate nothing; it is valid until b's next broadcast.
func greyTargets(api mac.API, b *mac.Instance, rel Reliability) []mac.NodeID {
	if rel == nil {
		return nil
	}
	d := api.Dual()
	out := b.GreyBuf()
	for _, j := range d.GPrime.Neighbors(b.Sender) {
		if d.G.HasEdge(b.Sender, j) {
			continue
		}
		if rel.Deliver(api.Rand(), b, j) {
			out = append(out, j)
		}
	}
	b.SetGreyBuf(out)
	return out
}
