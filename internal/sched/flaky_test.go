package sched_test

import (
	"math/rand"
	"testing"

	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// TestFlakyInitialPhaseHonorsDraw is the regression test for the
// initial-phase bug: the randomly drawn time-zero state used to be toggled
// by the first advance-loop iteration (until started at 0 ≤ Start), so the
// draw meant the opposite phase. A probe at Start=0 must now report exactly
// what a same-seeded stream draws first.
func TestFlakyInitialPhaseHonorsDraw(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		want := rand.New(rand.NewSource(seed)).Intn(2) == 0
		f := &sched.Flaky{MeanUp: 25, MeanDown: 25}
		got := f.Deliver(rand.New(rand.NewSource(seed)), &mac.Instance{Sender: 0, Start: 0}, 1)
		if got != want {
			t.Errorf("seed %d: phase at t=0 is %v, initial draw was %v", seed, got, want)
		}
	}
}

// TestFlakyPhaseSequencePinned pins the whole phase chain at a fixed seed
// against an independently advanced twin: the phase at time t is the drawn
// initial phase extended by lengths drawn for each phase as it is entered.
func TestFlakyPhaseSequencePinned(t *testing.T) {
	const meanUp, meanDown = 8, 4
	mean := func(up bool) int64 {
		if up {
			return meanUp
		}
		return meanDown
	}
	f := &sched.Flaky{MeanUp: meanUp, MeanDown: meanDown}
	rng := rand.New(rand.NewSource(42))
	twin := rand.New(rand.NewSource(42))
	up := twin.Intn(2) == 0
	until := sim.Time(1 + twin.Int63n(2*mean(up)))
	transitions := 0
	for start := sim.Time(0); start < 500; start++ {
		for until <= start {
			up = !up
			until += sim.Time(1 + twin.Int63n(2*mean(up)))
			transitions++
		}
		if got := f.Deliver(rng, &mac.Instance{Sender: 0, Start: start}, 1); got != up {
			t.Fatalf("phase at t=%d: Deliver says up=%v, chain says up=%v", start, got, up)
		}
	}
	if transitions < 10 {
		t.Fatalf("only %d phase transitions in 500 ticks; chain not advancing", transitions)
	}
}

func TestFlakyAlternates(t *testing.T) {
	f := &sched.Flaky{MeanUp: 20, MeanDown: 20}
	rng := rand.New(rand.NewSource(1))
	up, down := 0, 0
	for start := sim.Time(0); start < 4000; start += 10 {
		b := &mac.Instance{Sender: 0, Start: start}
		if f.Deliver(rng, b, 1) {
			up++
		} else {
			down++
		}
	}
	// Symmetric means: both phases must be visited substantially.
	if up < 100 || down < 100 {
		t.Fatalf("up=%d down=%d: phases not alternating", up, down)
	}
}

func TestFlakyAsymmetricMeans(t *testing.T) {
	f := &sched.Flaky{MeanUp: 90, MeanDown: 10}
	rng := rand.New(rand.NewSource(2))
	up := 0
	const probes = 1000
	for i := 0; i < probes; i++ {
		b := &mac.Instance{Sender: 0, Start: sim.Time(i * 10)}
		if f.Deliver(rng, b, 1) {
			up++
		}
	}
	frac := float64(up) / probes
	if frac < 0.7 {
		t.Fatalf("up fraction %.2f, want ~0.9 for 90/10 means", frac)
	}
}

func TestFlakyPerEdgeIndependence(t *testing.T) {
	f := &sched.Flaky{MeanUp: 30, MeanDown: 30}
	rng := rand.New(rand.NewSource(3))
	same := 0
	const probes = 500
	for i := 0; i < probes; i++ {
		b := &mac.Instance{Sender: 0, Start: sim.Time(i * 10)}
		a := f.Deliver(rng, b, 1)
		c := f.Deliver(rng, b, 2)
		if a == c {
			same++
		}
	}
	if same == probes {
		t.Fatal("edges (0,1) and (0,2) perfectly correlated — per-edge state broken")
	}
}

func TestFlakyUndirectedEdgeState(t *testing.T) {
	// The edge (u,v) and (v,u) must share one state.
	f := &sched.Flaky{MeanUp: 1000000, MeanDown: 1}
	rng := rand.New(rand.NewSource(4))
	b1 := &mac.Instance{Sender: 0, Start: 100}
	b2 := &mac.Instance{Sender: 1, Start: 100}
	if f.Deliver(rng, b1, 1) != f.Deliver(rng, b2, 0) {
		t.Fatal("(0,1) and (1,0) report different states at the same time")
	}
}

func TestFlakyInsideSyncSchedulerModelCompliance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := topology.LineRRestricted(10, 3, 1.0, rng)
	eng := runChecked(t, d,
		&sched.Sync{Rel: &sched.Flaky{MeanUp: 40, MeanDown: 40}},
		chattyFleet(10, 4), 6)
	grey := 0
	for _, b := range eng.Instances() {
		for _, to := range b.Receivers() {
			if !d.G.HasEdge(b.Sender, to) {
				grey++
			}
		}
	}
	if grey == 0 {
		t.Fatal("flaky links never fired across the whole run")
	}
}
