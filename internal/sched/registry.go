package sched

import (
	"fmt"
	"sort"

	"amac/internal/mac"
	"amac/internal/sim"
	"amac/internal/topology"
)

// Env is the execution context a scheduler factory may consult: the network,
// the topology construction artifact (for adversarial schedules that are
// defined against a specific construction, e.g. *topology.ParallelLinesC),
// the workload's broadcast payloads in arrival order (for schedules that
// track specific messages), and the model constants (so factories can
// range-check timing parameters up front instead of panicking in Attach).
// Zero model constants skip those checks.
type Env struct {
	Dual     *topology.Dual
	Artifact any
	Payloads []sim.Payload
	Fprog    sim.Time
	Fack     sim.Time
}

// Factory builds a fresh scheduler instance for one execution. Schedulers
// are stateful, so a new one must be built per run.
type Factory func(env Env, p topology.Params) (mac.Scheduler, error)

type schedRegistration struct {
	params  map[string]bool
	factory Factory
}

var schedRegistry = map[string]schedRegistration{}

// Register adds a named scheduler family to the registry, declaring the
// parameter names it accepts. It panics on duplicate names.
func Register(name string, params []string, f Factory) {
	if _, dup := schedRegistry[name]; dup {
		panic(fmt.Sprintf("sched: duplicate registration of %q", name))
	}
	ps := make(map[string]bool, len(params))
	for _, p := range params {
		ps[p] = true
	}
	schedRegistry[name] = schedRegistration{params: ps, factory: f}
}

// Names returns the registered scheduler names, sorted.
func Names() []string {
	out := make([]string, 0, len(schedRegistry))
	for n := range schedRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ValidateSpec checks that name is registered and every parameter is one the
// scheduler accepts, without building anything.
func ValidateSpec(name string, p topology.Params) error {
	reg, ok := schedRegistry[name]
	if !ok {
		return fmt.Errorf("sched: unknown scheduler %q (registered: %v)", name, Names())
	}
	// Sorted so the reported parameter is the same on every run: which key a
	// map range sees first is randomized, and validation errors end up in
	// job records and test expectations.
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !reg.params[k] {
			return fmt.Errorf("sched: %q does not accept parameter %q", name, k)
		}
	}
	return nil
}

// Build constructs a fresh scheduler of the named family.
func Build(name string, env Env, p topology.Params) (mac.Scheduler, error) {
	if err := ValidateSpec(name, p); err != nil {
		return nil, err
	}
	return schedRegistry[name].factory(env, p)
}

// relParams are the reliability-policy parameters shared by the schedulers
// that consult a Reliability: "rel" selects Bernoulli(rel) on the G′\G
// links; "flaky-up"/"flaky-down" select the bursty Flaky policy instead.
// Absent, unreliable links never fire.
var relParams = []string{"rel", "flaky-up", "flaky-down"}

// relFromParams resolves the shared reliability parameters.
func relFromParams(p topology.Params) (Reliability, error) {
	flaky := p.Has("flaky-up") || p.Has("flaky-down")
	if flaky && p.Has("rel") {
		return nil, fmt.Errorf("sched: rel and flaky-up/flaky-down are mutually exclusive")
	}
	if flaky {
		return &Flaky{
			MeanUp:   sim.Time(p.Int64("flaky-up", 0)),
			MeanDown: sim.Time(p.Int64("flaky-down", 0)),
		}, nil
	}
	if !p.Has("rel") {
		return nil, nil
	}
	prob := p.Float("rel", 0)
	if prob < 0 || prob > 1 {
		return nil, fmt.Errorf("sched: rel must be a probability in [0, 1], got %v", prob)
	}
	return Bernoulli{P: prob}, nil
}

func init() {
	Register("sync", append([]string{"recv-delay", "grey-delay", "ack-delay"}, relParams...),
		func(env Env, p topology.Params) (mac.Scheduler, error) {
			rel, err := relFromParams(p)
			if err != nil {
				return nil, err
			}
			s := &Sync{
				RecvDelay: sim.Time(p.Int64("recv-delay", 0)),
				GreyDelay: sim.Time(p.Int64("grey-delay", 0)),
				AckDelay:  sim.Time(p.Int64("ack-delay", 0)),
				Rel:       rel,
			}
			if env.Fprog > 0 && env.Fack > 0 {
				// Run Attach's own range checks up front so a bad scenario
				// file errors here instead of panicking there.
				if _, _, _, err := s.resolveDelays(env.Fprog, env.Fack); err != nil {
					return nil, err
				}
			}
			return s, nil
		})
	Register("random", relParams, func(env Env, p topology.Params) (mac.Scheduler, error) {
		rel, err := relFromParams(p)
		if err != nil {
			return nil, err
		}
		return &Random{Rel: rel}, nil
	})
	Register("contention", relParams, func(env Env, p topology.Params) (mac.Scheduler, error) {
		rel, err := relFromParams(p)
		if err != nil {
			return nil, err
		}
		return &Contention{Rel: rel}, nil
	})
	Register("slot", []string{"grey-p"}, func(env Env, p topology.Params) (mac.Scheduler, error) {
		return &Slot{GreyP: p.Float("grey-p", 0)}, nil
	})
	Register("adversary", nil, func(env Env, p topology.Params) (mac.Scheduler, error) {
		net, ok := env.Artifact.(*topology.ParallelLinesC)
		if !ok {
			return nil, fmt.Errorf("sched: adversary requires the parallel-lines topology (artifact is %T)", env.Artifact)
		}
		if len(env.Payloads) != 2 {
			return nil, fmt.Errorf("sched: adversary tracks exactly 2 messages, workload has %d", len(env.Payloads))
		}
		return &ParallelLines{
			Net: net,
			M0:  env.Payloads[0],
			M1:  env.Payloads[1],
		}, nil
	})
}
