package sched

import (
	"amac/internal/mac"
	"amac/internal/topology"
)

// ParallelLines is the adversarial schedule of Lemmas 3.19/3.20, specialized
// to BMMB-style flooding on the Figure 2 network C: message m0 starts at a₁,
// message m1 at b₁, and the scheduler forces each message's progress down
// its own line to cost a full Fack per hop, for a total of Ω(D·Fack).
//
// Strategy, per the paper: the broadcast of the frontier node aᵢ carrying m0
// is stretched to the full acknowledgment bound. During the stretch, the
// only delivery that satisfies the progress bound for the next node aᵢ₊₁ is
// the *cross* delivery of m1 from the opposite frontier bᵢ over the G′ edge
// (bᵢ, aᵢ₊₁) — so aᵢ₊₁ stays busy with m1 while m0 is withheld until the
// last legal moment. Every non-frontier broadcast is delivered to its
// reliable neighbors and acknowledged instantaneously, which floods the
// *other* line's message for free but never advances a message down its own
// line faster than one hop per Fack. The two frontiers stay in lock-step by
// construction, so each stretch is covered by its twin.
//
// The scheduler recognizes the tracked messages by payload equality against
// M0/M1 (or via the optional IsM0/IsM1 predicates), keeping it independent
// of the algorithm's payload encoding.
type ParallelLines struct {
	// Net is the Figure 2 network the execution runs on. Required.
	Net *topology.ParallelLinesC
	// M0 is the payload of the message that starts on line A; M1 the one
	// that starts on line B. They are matched by equality, which costs no
	// per-build closures.
	M0, M1 mac.Payload
	// IsM0/IsM1, when set, override the equality matching.
	IsM0 func(payload mac.Payload) bool
	// IsM1 recognizes payloads carrying the message that starts on line B.
	IsM1 func(payload mac.Payload) bool

	api    mac.API
	aFront int // highest 1-based index on line A that has received m0
	bFront int // highest 1-based index on line B that has received m1
}

var (
	_ mac.Scheduler      = (*ParallelLines)(nil)
	_ mac.TimerScheduler = (*ParallelLines)(nil)
	_ Resettable         = (*ParallelLines)(nil)
)

// Name implements mac.Scheduler.
func (p *ParallelLines) Name() string { return "parallel-lines-adversary" }

// Reset implements Resettable: the network artifact and tracked payloads are
// rebound from the new environment (custom predicates, when set, are kept).
// Frontier state is re-initialized by Attach.
func (p *ParallelLines) Reset(env Env) bool {
	net, ok := env.Artifact.(*topology.ParallelLinesC)
	if !ok {
		return false
	}
	if p.IsM0 == nil || p.IsM1 == nil {
		if len(env.Payloads) != 2 {
			return false
		}
		p.M0, p.M1 = env.Payloads[0], env.Payloads[1]
	}
	p.Net = net
	return true
}

// isM0 reports whether payload carries the line-A message.
func (p *ParallelLines) isM0(payload mac.Payload) bool {
	if p.IsM0 != nil {
		return p.IsM0(payload)
	}
	return payload == p.M0
}

// isM1 reports whether payload carries the line-B message.
func (p *ParallelLines) isM1(payload mac.Payload) bool {
	if p.IsM1 != nil {
		return p.IsM1(payload)
	}
	return payload == p.M1
}

// Attach implements mac.Scheduler.
func (p *ParallelLines) Attach(api mac.API) {
	if p.Net == nil {
		panic("sched: ParallelLines requires Net")
	}
	if (p.IsM0 == nil || p.IsM1 == nil) && p.M0.IsZero() && p.M1.IsZero() {
		panic("sched: ParallelLines requires M0/M1 payloads or IsM0/IsM1 predicates")
	}
	p.api = api
	p.aFront = 1
	p.bFront = 1
}

// lineIndex classifies a node: line 'a' or 'b' plus the 1-based index.
func (p *ParallelLines) lineIndex(v mac.NodeID) (line byte, idx int) {
	d := p.Net.D
	if int(v) < d {
		return 'a', int(v) + 1
	}
	return 'b', int(v) - d + 1
}

// OnBcast implements mac.Scheduler.
func (p *ParallelLines) OnBcast(b *mac.Instance) {
	line, idx := p.lineIndex(b.Sender)
	switch {
	case p.isM0(b.Payload) && line == 'a' && idx == p.aFront && idx < p.Net.D:
		p.stretch(b, line, idx)
	case p.isM1(b.Payload) && line == 'b' && idx == p.bFront && idx < p.Net.D:
		p.stretch(b, line, idx)
	default:
		p.instant(b)
	}
}

// OnAbort implements mac.Scheduler. BMMB never aborts; stretched deliveries
// self-cancel through the Term checks.
func (p *ParallelLines) OnAbort(*mac.Instance) {}

// instant delivers to all reliable neighbors and acks, with no time
// passing — the round-robin "everything else is free" rule of Lemma 3.19.
func (p *ParallelLines) instant(b *mac.Instance) {
	for _, j := range p.api.Dual().G.Neighbors(b.Sender) {
		p.api.Deliver(b, j)
	}
	p.api.Ack(b)
}

// stretch runs the frontier schedule for instance b at line position idx:
// the previous node on the line and the diagonal node on the opposite line
// receive after Fprog; the next node on the line receives only at the Fack
// deadline, immediately followed by the ack. Advancing the frontier index
// before that final delivery lets the receiver's immediate re-broadcast be
// classified as the new frontier.
func (p *ParallelLines) stretch(b *mac.Instance, line byte, idx int) {
	api := p.api
	now := api.Now()
	var prev, diag mac.NodeID
	havePrev := idx > 1
	if line == 'a' {
		if havePrev {
			prev = p.Net.A(idx - 1)
		}
		diag = p.Net.B(idx + 1)
	} else {
		if havePrev {
			prev = p.Net.B(idx - 1)
		}
		diag = p.Net.A(idx + 1)
	}

	if havePrev {
		api.ScheduleDeliver(now+api.Fprog(), b, prev)
	}
	api.ScheduleDeliver(now+api.Fprog(), b, diag)
	api.ScheduleTimer(now+api.Fack(), b, int64(idx), int64(line))
}

// OnTimer implements mac.TimerScheduler: the Fack-deadline finale of a
// stretched frontier broadcast. The frontier index advances before the
// final delivery so the receiver's immediate re-broadcast is classified as
// the new frontier.
func (p *ParallelLines) OnTimer(obj any, a, c int64) {
	b := obj.(*mac.Instance)
	idx, line := int(a), byte(c)
	if b.Term != mac.Active {
		return
	}
	var next mac.NodeID
	if line == 'a' {
		p.aFront = idx + 1
		next = p.Net.A(idx + 1)
	} else {
		p.bFront = idx + 1
		next = p.Net.B(idx + 1)
	}
	if !b.WasDelivered(next) {
		p.api.Deliver(b, next)
	}
	p.api.Ack(b)
}
