package sched

import (
	"fmt"
	"math/rand"

	"amac/internal/mac"
	"amac/internal/sim"
)

// Flaky is a stateful reliability policy modeling bursty interference: each
// unreliable edge alternates between an "up" phase, during which it behaves
// reliably, and a "down" phase, during which it drops everything. Phase
// lengths are geometric with the configured means, and each edge evolves
// independently — so a message can find a link up that was down moments
// earlier, exactly the temporal unreliability the dual-graph model
// abstracts (cf. the "dynamic fault model" of Clementi et al. the paper
// cites as the low-level ancestor of dual graphs).
//
// Flaky consults virtual time through the instances it sees; it must be
// used within a single execution.
type Flaky struct {
	// MeanUp and MeanDown are the expected phase lengths in ticks.
	// Zero values select 5·Fprog-ish defaults of 50 and 50.
	MeanUp, MeanDown sim.Time

	edges map[[2]mac.NodeID]*edgeState
	// epoch versions the edge states: Reset bumps it, and Deliver re-draws
	// any edge whose state is from an older epoch. That re-arms the policy
	// for a new execution while keeping every edgeState allocation.
	epoch uint32
}

type edgeState struct {
	up    bool
	drawn uint32 // epoch this state was drawn in
	until sim.Time
}

var _ Reliability = (*Flaky)(nil)

// Reset re-arms the policy for a new execution: every edge re-draws its
// phase chain from scratch on next use, without discarding the per-edge
// allocations.
func (f *Flaky) Reset() {
	f.epoch++
	if f.epoch == 0 {
		f.epoch = 1
	}
}

// Name implements Reliability.
func (f *Flaky) Name() string {
	return fmt.Sprintf("flaky(up=%d,down=%d)", f.meanUp(), f.meanDown())
}

func (f *Flaky) meanUp() sim.Time {
	if f.MeanUp <= 0 {
		return 50
	}
	return f.MeanUp
}

func (f *Flaky) meanDown() sim.Time {
	if f.MeanDown <= 0 {
		return 50
	}
	return f.MeanDown
}

// Deliver implements Reliability: the link fires iff the edge is in an up
// phase at the instance's start time.
func (f *Flaky) Deliver(rng *rand.Rand, b *mac.Instance, to mac.NodeID) bool {
	if f.edges == nil {
		f.edges = make(map[[2]mac.NodeID]*edgeState)
	}
	if f.epoch == 0 {
		f.epoch = 1
	}
	key := [2]mac.NodeID{b.Sender, to}
	if key[0] > key[1] {
		key[0], key[1] = key[1], key[0]
	}
	es, ok := f.edges[key]
	if !ok {
		es = &edgeState{}
		f.edges[key] = es
	}
	if es.drawn != f.epoch {
		// Draw the edge's phase at time zero and that phase's end. The end
		// draw must happen here, not in the advance loop below: the loop
		// toggles before extending, so entering it with until = 0 would flip
		// the freshly drawn phase and the draw would mean its opposite.
		es.drawn = f.epoch
		es.up = rng.Intn(2) == 0
		es.until = 1 + sim.Time(rng.Int63n(int64(2*f.mean(es.up))))
	}
	// Advance the phase chain to the instance's start time.
	for es.until <= b.Start {
		es.up = !es.up
		// Geometric-ish phase length: uniform in [1, 2·mean].
		es.until += 1 + sim.Time(rng.Int63n(int64(2*f.mean(es.up))))
	}
	return es.up
}

// mean returns the configured mean length of an up or down phase.
func (f *Flaky) mean(up bool) sim.Time {
	if up {
		return f.meanUp()
	}
	return f.meanDown()
}
