package sched_test

import (
	"testing"

	"amac/internal/check"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// roundNode broadcasts a payload at the start of each of its first `rounds`
// Fprog-rounds and aborts at round end, mimicking FMMB's lock-step use of
// the enhanced layer.
type roundNode struct {
	rounds int
	round  int
	acked  int
	recvd  []mac.Message
	quiet  bool // if true, never broadcasts (pure receiver)
}

func (r *roundNode) Wakeup(ctx mac.Context) {
	r.start(ctx.(mac.EnhancedContext))
}

func (r *roundNode) start(ec mac.EnhancedContext) {
	if r.round >= r.rounds {
		return
	}
	ec.SetTimer(ec.Fprog(), nil)
	if !r.quiet {
		ec.Bcast(sim.Payload{Kind: sim.PayloadInt, A: int64(ec.ID()), B: int64(r.round)})
	}
}

func (r *roundNode) Timer(ec mac.EnhancedContext, _ any) {
	ec.Abort()
	r.round++
	r.start(ec)
}

func (r *roundNode) Recv(_ mac.Context, m mac.Message)  { r.recvd = append(r.recvd, m) }
func (r *roundNode) Acked(_ mac.Context, _ mac.Message) { r.acked++ }

func runSlot(t *testing.T, d *topology.Dual, autos []mac.Automaton, greyP float64, seed int64) *mac.Engine {
	t.Helper()
	eng := mac.NewEngine(mac.Config{
		Dual:      d,
		Fack:      fack,
		Fprog:     fprog,
		Scheduler: &sched.Slot{GreyP: greyP},
		Mode:      mac.Enhanced,
		Seed:      seed,
	}, autos)
	eng.Start()
	eng.Sim().SetStepLimit(1_000_000)
	eng.Run()
	rep := check.All(d, eng.Instances(), check.Params{
		Fack: fack, Fprog: fprog, End: eng.Sim().Now(),
	})
	if !rep.OK() {
		t.Fatalf("slot scheduler violates the model: %v", rep.Violations[0])
	}
	return eng
}

func TestSlotSoloBroadcasterReachesAllNeighbors(t *testing.T) {
	// One broadcaster, everyone else quiet: every G-neighbor must receive
	// within the slot and the instance must be acked (no collision).
	d := topology.Star(6)
	autos := make([]mac.Automaton, 6)
	autos[0] = &roundNode{rounds: 3}
	for i := 1; i < 6; i++ {
		autos[i] = &roundNode{quiet: true, rounds: 3}
	}
	eng := runSlot(t, d, autos, 0, 1)
	insts := eng.Instances()
	if len(insts) != 3 {
		t.Fatalf("instances = %d, want 3", len(insts))
	}
	for _, b := range insts {
		if b.Term != mac.Acked {
			t.Fatalf("solo instance %d not acked (%v)", b.ID, b.Term)
		}
		if b.NumDelivered() != 5 {
			t.Fatalf("solo instance %d delivered to %d, want 5", b.ID, b.NumDelivered())
		}
		// Delivery happens within the slot the broadcast started in.
		slotEnd := (b.Start/fprog+1)*fprog - 1
		for _, to := range b.Receivers() {
			at, _ := b.DeliveredAt(to)
			if at > slotEnd {
				t.Fatalf("delivery to %d at %v after slot end %v", to, at, slotEnd)
			}
		}
	}
}

func TestSlotCollisionDeliversExactlyOne(t *testing.T) {
	// Two broadcasters adjacent to the same receiver: the receiver gets
	// exactly one message per slot (progress bound satisfied, collision
	// modeled).
	d := topology.Line(3) // 1 hears both 0 and 2
	autos := []mac.Automaton{
		&roundNode{rounds: 4},
		&roundNode{quiet: true, rounds: 4},
		&roundNode{rounds: 4},
	}
	runSlot(t, d, autos, 0, 2)
	mid := autos[1].(*roundNode)
	if len(mid.recvd) != 4 {
		t.Fatalf("middle node received %d messages over 4 rounds, want exactly 4", len(mid.recvd))
	}
	perSlot := map[sim.Time]int{}
	for _, b := range runSlot(t, d, autos2(), 0, 2).Instances() {
		if at, ok := b.DeliveredAt(1); ok {
			perSlot[at/fprog]++
		}
	}
	for slot, n := range perSlot {
		if n > 1 {
			t.Fatalf("slot %d delivered %d messages to the middle node", slot, n)
		}
	}
}

func autos2() []mac.Automaton {
	return []mac.Automaton{
		&roundNode{rounds: 4},
		&roundNode{quiet: true, rounds: 4},
		&roundNode{rounds: 4},
	}
}

func TestSlotCollidedBroadcastsNotAcked(t *testing.T) {
	// When both endpoints of a 3-line broadcast every round, the middle
	// receiver gets only one of the two: the loser cannot be acked in that
	// slot and is aborted by its sender.
	d := topology.Line(3)
	autos := autos2()
	eng := runSlot(t, d, autos, 0, 3)
	acked, aborted := 0, 0
	for _, b := range eng.Instances() {
		switch b.Term {
		case mac.Acked:
			acked++
		case mac.Aborted:
			aborted++
		default:
			t.Fatalf("instance %d left active", b.ID)
		}
	}
	if acked+aborted != 8 {
		t.Fatalf("acked+aborted = %d, want 8", acked+aborted)
	}
	if aborted == 0 {
		t.Fatal("collisions should abort at least one broadcast")
	}
}

func TestSlotGreyZoneDelivery(t *testing.T) {
	// Two nodes connected only in G′: with GreyP≈1 deliveries happen; with
	// GreyP negative (never), nothing crosses the grey edge.
	dual := greyPair()
	autosA := []mac.Automaton{&roundNode{rounds: 6}, &roundNode{quiet: true, rounds: 6}}
	eng := runSlot(t, dual, autosA, 0.999, 5)
	got := 0
	for _, b := range eng.Instances() {
		got += b.NumDelivered()
	}
	if got == 0 {
		t.Fatal("GreyP≈1 delivered nothing over a grey edge")
	}
	autosB := []mac.Automaton{&roundNode{rounds: 6}, &roundNode{quiet: true, rounds: 6}}
	eng = runSlot(t, greyPair(), autosB, -1, 5)
	for _, b := range eng.Instances() {
		if b.NumDelivered() != 0 {
			t.Fatal("GreyP=never delivered over a grey edge")
		}
	}
}

// greyPair builds two nodes joined only by an unreliable edge.
func greyPair() *topology.Dual {
	g := graph.New(2)
	gp := graph.New(2)
	gp.AddEdge(0, 1)
	return &topology.Dual{G: g, GPrime: gp, Name: "grey-pair"}
}
