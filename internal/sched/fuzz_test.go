package sched_test

import (
	"math/rand"
	"testing"

	"amac/internal/check"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// fuzzNode is a randomized automaton: at wakeup and after each ack it
// decides randomly whether to broadcast again, and on receive it sometimes
// queues an extra broadcast. It produces irregular traffic patterns that
// the shipped schedulers must survive while honoring every model
// guarantee.
type fuzzNode struct {
	budget  int
	pending bool
	wantOne bool
}

func (f *fuzzNode) maybeSend(ctx mac.Context) {
	if f.budget <= 0 || ctx.Pending() {
		return
	}
	if f.wantOne || ctx.Rand().Float64() < 0.6 {
		f.wantOne = false
		f.budget--
		ctx.Bcast(sim.Payload{Kind: sim.PayloadInt, A: int64(ctx.ID()), B: ctx.Rand().Int63()})
	}
}

func (f *fuzzNode) Wakeup(ctx mac.Context) { f.maybeSend(ctx) }
func (f *fuzzNode) Recv(ctx mac.Context, _ mac.Message) {
	if ctx.Rand().Float64() < 0.3 {
		f.wantOne = true
	}
	f.maybeSend(ctx)
}
func (f *fuzzNode) Acked(ctx mac.Context, _ mac.Message) { f.maybeSend(ctx) }

// TestSchedulerFuzz runs randomized traffic through every general-purpose
// scheduler on randomized dual graphs across many seeds, model-checking
// each execution. This is the repository's failure-injection net: any
// scheduler timing bug (missed deadline, double delivery, starved
// receiver) surfaces as a checker violation.
func TestSchedulerFuzz(t *testing.T) {
	builders := []func() mac.Scheduler{
		func() mac.Scheduler { return &sched.Sync{} },
		func() mac.Scheduler { return &sched.Sync{Rel: sched.Bernoulli{P: 0.5}, GreyDelay: 1} },
		func() mac.Scheduler { return &sched.Random{Rel: sched.Bernoulli{P: 0.5}} },
		func() mac.Scheduler { return &sched.Contention{Rel: sched.Bernoulli{P: 0.5}} },
		func() mac.Scheduler { return &sched.Contention{Rel: &sched.Flaky{MeanUp: 30, MeanDown: 30}} },
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Random connected base graph: a line plus random chords, with a
		// random r-restricted G'.
		n := 5 + rng.Intn(15)
		base := topology.Line(n).G
		for e := 0; e < n/2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				base.AddEdge(mac.NodeID(u), mac.NodeID(v))
			}
		}
		r := 1 + rng.Intn(4)
		d := topology.RRestricted(base, r, rng.Float64(), rng, "fuzz")
		for bi, mk := range builders {
			s := mk()
			autos := make([]mac.Automaton, n)
			for i := range autos {
				autos[i] = &fuzzNode{budget: 1 + rng.Intn(5)}
			}
			eng := mac.NewEngine(mac.Config{
				Dual:      d,
				Fack:      fack,
				Fprog:     fprog,
				Scheduler: s,
				Seed:      seed*31 + int64(bi),
			}, autos)
			eng.Start()
			eng.Sim().SetStepLimit(2_000_000)
			eng.Run()
			rep := check.All(d, eng.Instances(), check.Params{
				Fack: fack, Fprog: fprog, End: eng.Sim().Now(),
			})
			if !rep.OK() {
				t.Fatalf("seed %d, %s on n=%d r=%d: %v",
					seed, s.Name(), n, r, rep.Violations[0])
			}
		}
	}
}

// TestSlotFuzz does the same for the enhanced-model slot scheduler with
// round-driven random broadcasters.
func TestSlotFuzz(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		n := 4 + rng.Intn(12)
		base := topology.Line(n).G
		for e := 0; e < n/2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				base.AddEdge(mac.NodeID(u), mac.NodeID(v))
			}
		}
		d := topology.RRestricted(base, 2, 0.5, rng, "slot-fuzz")
		autos := make([]mac.Automaton, n)
		for i := range autos {
			autos[i] = &roundNode{rounds: 6, quiet: rng.Intn(3) == 0}
		}
		eng := mac.NewEngine(mac.Config{
			Dual:      d,
			Fack:      fack,
			Fprog:     fprog,
			Scheduler: &sched.Slot{GreyP: rng.Float64()},
			Mode:      mac.Enhanced,
			Seed:      seed,
		}, autos)
		eng.Start()
		eng.Sim().SetStepLimit(2_000_000)
		eng.Run()
		rep := check.All(d, eng.Instances(), check.Params{
			Fack: fack, Fprog: fprog, End: eng.Sim().Now(),
		})
		if !rep.OK() {
			t.Fatalf("seed %d on n=%d: %v", seed, n, rep.Violations[0])
		}
	}
}
