package sched

import (
	"amac/internal/mac"
	"amac/internal/sim"
)

// Sync is the deterministic benign scheduler: every G-neighbor receives a
// broadcast exactly RecvDelay after it starts, selected unreliable
// neighbors receive it GreyDelay after it starts, and the ack fires
// AckDelay after it starts. Defaults (zero values) are RecvDelay = Fprog,
// GreyDelay = RecvDelay, AckDelay = Fack — i.e. receives as late as the
// progress bound allows and acks as late as the acknowledgment bound
// allows, which is the worst legal behavior for pipelined flooding and
// exactly the regime the paper's upper bounds are stated against.
type Sync struct {
	// RecvDelay is the bcast→rcv latency on reliable edges. Must be in
	// [1, Fprog]; 0 selects Fprog.
	RecvDelay sim.Time
	// GreyDelay is the bcast→rcv latency on unreliable edges. Must be in
	// [1, AckDelay]; 0 selects RecvDelay.
	GreyDelay sim.Time
	// AckDelay is the bcast→ack latency. Must be in [RecvDelay, Fack];
	// 0 selects Fack.
	AckDelay sim.Time
	// Rel selects which unreliable links fire; nil means Never.
	Rel Reliability

	api mac.API
}

var _ mac.Scheduler = (*Sync)(nil)

// Name implements mac.Scheduler.
func (s *Sync) Name() string {
	rel := "never"
	if s.Rel != nil {
		rel = s.Rel.Name()
	}
	return "sync(rel=" + rel + ")"
}

// Attach implements mac.Scheduler, resolving defaulted delays.
func (s *Sync) Attach(api mac.API) {
	s.api = api
	if s.RecvDelay == 0 {
		s.RecvDelay = api.Fprog()
	}
	if s.AckDelay == 0 {
		s.AckDelay = api.Fack()
	}
	if s.GreyDelay == 0 {
		s.GreyDelay = s.RecvDelay
	}
	switch {
	case s.RecvDelay < 1 || s.RecvDelay > api.Fprog():
		panic("sched: Sync.RecvDelay outside [1, Fprog]")
	case s.AckDelay < s.RecvDelay || s.AckDelay > api.Fack():
		panic("sched: Sync.AckDelay outside [RecvDelay, Fack]")
	case s.GreyDelay < 1 || s.GreyDelay > s.AckDelay:
		panic("sched: Sync.GreyDelay outside [1, AckDelay]")
	}
}

// OnBcast implements mac.Scheduler.
func (s *Sync) OnBcast(b *mac.Instance) {
	api := s.api
	now := api.Now()
	deliver := func(to mac.NodeID) func() {
		return func() {
			if b.Term == mac.Active {
				api.Deliver(b, to)
			}
		}
	}
	for _, j := range api.Dual().G.Neighbors(b.Sender) {
		api.At(now+s.RecvDelay, deliver(j))
	}
	for _, j := range greyTargets(api, b, s.Rel) {
		api.At(now+s.GreyDelay, deliver(j))
	}
	api.At(now+s.AckDelay, func() {
		if b.Term == mac.Active {
			api.Ack(b)
		}
	})
}

// OnAbort implements mac.Scheduler. Pending deliveries self-cancel via the
// Term check.
func (s *Sync) OnAbort(*mac.Instance) {}
