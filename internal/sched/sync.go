package sched

import (
	"fmt"

	"amac/internal/mac"
	"amac/internal/sim"
)

// Sync is the deterministic benign scheduler: every G-neighbor receives a
// broadcast exactly RecvDelay after it starts, selected unreliable
// neighbors receive it GreyDelay after it starts, and the ack fires
// AckDelay after it starts. Defaults (zero values) are RecvDelay = Fprog,
// GreyDelay = RecvDelay, AckDelay = Fack — i.e. receives as late as the
// progress bound allows and acks as late as the acknowledgment bound
// allows, which is the worst legal behavior for pipelined flooding and
// exactly the regime the paper's upper bounds are stated against.
type Sync struct {
	// RecvDelay is the bcast→rcv latency on reliable edges. Must be in
	// [1, Fprog]; 0 selects Fprog.
	RecvDelay sim.Time
	// GreyDelay is the bcast→rcv latency on unreliable edges. Must be in
	// [1, AckDelay]; 0 selects RecvDelay.
	GreyDelay sim.Time
	// AckDelay is the bcast→ack latency. Must be in [RecvDelay, Fack];
	// 0 selects Fack.
	AckDelay sim.Time
	// Rel selects which unreliable links fire; nil means Never.
	Rel Reliability

	api mac.API
}

var (
	_ mac.Scheduler = (*Sync)(nil)
	_ Resettable    = (*Sync)(nil)
)

// Name implements mac.Scheduler.
func (s *Sync) Name() string {
	rel := "never"
	if s.Rel != nil {
		rel = s.Rel.Name()
	}
	return "sync(rel=" + rel + ")"
}

// resolveDelays returns the delays with defaults filled from the model
// constants, or an error when a configured delay is out of range. It is the
// single source of truth for both Attach (panic on violation) and the
// registry factory (error on violation).
func (s *Sync) resolveDelays(fprog, fack sim.Time) (recv, grey, ack sim.Time, err error) {
	recv, grey, ack = s.RecvDelay, s.GreyDelay, s.AckDelay
	if recv == 0 {
		recv = fprog
	}
	if ack == 0 {
		ack = fack
	}
	if grey == 0 {
		grey = recv
	}
	switch {
	case recv < 1 || recv > fprog:
		return 0, 0, 0, fmt.Errorf("sched: sync recv-delay %d outside [1, fprog=%d]", recv, fprog)
	case ack < recv || ack > fack:
		return 0, 0, 0, fmt.Errorf("sched: sync ack-delay %d outside [recv-delay=%d, fack=%d]", ack, recv, fack)
	case grey < 1 || grey > ack:
		return 0, 0, 0, fmt.Errorf("sched: sync grey-delay %d outside [1, ack-delay=%d]", grey, ack)
	}
	return recv, grey, ack, nil
}

// Reset implements Resettable: Sync keeps no cross-run state of its own
// (Attach re-resolves the delays idempotently), so re-arming only validates
// the delays against the new model constants and resets the reliability
// policy.
func (s *Sync) Reset(env Env) bool {
	if env.Fprog > 0 && env.Fack > 0 {
		if _, _, _, err := s.resolveDelays(env.Fprog, env.Fack); err != nil {
			return false
		}
	}
	resetRel(s.Rel)
	return true
}

// Attach implements mac.Scheduler, resolving defaulted delays.
func (s *Sync) Attach(api mac.API) {
	recv, grey, ack, err := s.resolveDelays(api.Fprog(), api.Fack())
	if err != nil {
		panic(err)
	}
	s.api = api
	s.RecvDelay, s.GreyDelay, s.AckDelay = recv, grey, ack
}

// OnBcast implements mac.Scheduler. Scheduling cost is O(1) typed events
// and zero closures per broadcast: one batched delivery event covers the
// whole reliable neighborhood, one the selected grey targets, and one the
// ack. Per-neighbor delivery order within a batch matches the per-neighbor
// events the scheduler originally enqueued (neighbor order, then
// grey-selection order), so executions are unchanged.
//amac:hotpath
func (s *Sync) OnBcast(b *mac.Instance) {
	api := s.api
	now := api.Now()
	api.ScheduleReliableDeliveries(now+s.RecvDelay, b)
	// Grey targets are drawn now (one Rel consultation per candidate at
	// broadcast time, preserving the random stream) but delivered at
	// GreyDelay.
	if grey := greyTargets(api, b, s.Rel); len(grey) > 0 {
		api.ScheduleGreyDeliveries(now+s.GreyDelay, b, grey)
	}
	api.ScheduleAck(now+s.AckDelay, b)
}

// OnAbort implements mac.Scheduler. Pending deliveries self-cancel via the
// Term check.
func (s *Sync) OnAbort(*mac.Instance) {}
