package topology

import (
	"math/rand"

	"amac/internal/geom"
	"amac/internal/graph"
)

// Workspace is reusable construction scratch for the registry's builders:
// a pool of resettable graphs, a point-embedding buffer and a reseedable
// random stream. BuildInto threads one through a builder so repeated builds
// — the per-trial topology draws of an unpinned scenario sweep — emit into
// recycled storage instead of fresh allocations.
//
// Networks built into a workspace alias its storage: the next BuildInto on
// the same workspace recycles the graphs and embedding of the previous one.
// Callers therefore finish (or copy out of) one built network before
// building the next, exactly the discipline mac.Arena imposes on pooled
// engines. A nil *Workspace is valid everywhere and allocates fresh, so
// builders are written once against the workspace surface.
type Workspace struct {
	graphs []*graph.Graph
	next   int
	points geom.Embedding
	rng    *rand.Rand
}

// NewWorkspace returns an empty workspace; storage is grown on first use and
// recycled thereafter.
func NewWorkspace() *Workspace { return &Workspace{} }

// begin rewinds the graph pool for the next build.
func (ws *Workspace) begin() {
	if ws != nil {
		ws.next = 0
	}
}

// Graph hands out a reset n-node graph from the pool (see graph.Reset),
// growing the pool on first use. With a nil receiver it allocates fresh.
func (ws *Workspace) Graph(n int) *graph.Graph {
	if ws == nil {
		return graph.New(n)
	}
	if ws.next < len(ws.graphs) {
		g := ws.graphs[ws.next]
		ws.next++
		g.Reset(n)
		return g
	}
	g := graph.New(n)
	ws.graphs = append(ws.graphs, g)
	ws.next++
	return g
}

// Mark returns the current graph-pool cursor; Rewind(mark) hands the graphs
// taken since back to the pool. Builders that retry a rejected draw (e.g.
// the connected-RGG loop) rewind between attempts so retries reuse one set
// of graphs instead of growing the pool per attempt.
func (ws *Workspace) Mark() int {
	if ws == nil {
		return 0
	}
	return ws.next
}

// Rewind restores the graph-pool cursor to a previous Mark.
func (ws *Workspace) Rewind(mark int) {
	if ws != nil {
		ws.next = mark
	}
}

// Points hands out the n-point embedding buffer, grown only when capacity is
// short. With a nil receiver it allocates fresh.
func (ws *Workspace) Points(n int) geom.Embedding {
	if ws == nil {
		return make(geom.Embedding, n)
	}
	if cap(ws.points) < n {
		ws.points = make(geom.Embedding, n)
	} else {
		ws.points = ws.points[:n]
	}
	return ws.points
}

// Rand returns the workspace's random stream reseeded to seed — the exact
// stream rand.New(rand.NewSource(seed)) yields, with the *rand.Rand itself
// recycled across builds. With a nil receiver it allocates fresh.
func (ws *Workspace) Rand(seed int64) *rand.Rand {
	if ws == nil {
		return rand.New(rand.NewSource(seed))
	}
	if ws.rng == nil {
		ws.rng = rand.New(rand.NewSource(seed))
	} else {
		ws.rng.Seed(seed)
	}
	return ws.rng
}
