// Package topology builds the dual-graph networks (G, G′) the paper's model
// runs on: G carries the reliable links, G′ ⊇ G adds the unreliable ones
// (Section 2). It provides generators for every G′ regime the paper studies
// — G′ = G, r-restricted, grey-zone and arbitrary — plus the two
// lower-bound constructions: the star choke network of Lemma 3.18 and the
// parallel-lines network C of Figure 2.
package topology

import (
	"fmt"
	"math/rand"

	"amac/internal/geom"
	"amac/internal/graph"
)

// Dual is a dual-graph network: reliable graph G and unreliable graph
// GPrime with G ⊆ G′ over the same node set. An optional plane embedding is
// attached when the network was built geometrically (grey zone networks),
// and Name records the generator for reporting.
type Dual struct {
	G      *graph.Graph
	GPrime *graph.Graph
	Embed  geom.Embedding // nil unless geometrically constructed
	Name   string
}

// N returns the number of nodes.
func (d *Dual) N() int { return d.G.N() }

// Validate checks the structural invariant of the model: same node count
// and E ⊆ E′. It returns an error describing the first violation.
func (d *Dual) Validate() error {
	if d.G == nil || d.GPrime == nil {
		return fmt.Errorf("topology: nil graph in dual %q", d.Name)
	}
	if d.G.N() != d.GPrime.N() {
		return fmt.Errorf("topology: dual %q has |V(G)|=%d but |V(G')|=%d",
			d.Name, d.G.N(), d.GPrime.N())
	}
	if !d.G.IsSubgraphOf(d.GPrime) {
		return fmt.Errorf("topology: dual %q violates E ⊆ E'", d.Name)
	}
	return nil
}

// UnreliableEdges returns the E′ \ E edges (pairs with u < v).
func (d *Dual) UnreliableEdges() [][2]graph.NodeID {
	var out [][2]graph.NodeID
	for u, v := range d.GPrime.EdgeSeq() {
		if !d.G.HasEdge(u, v) {
			out = append(out, [2]graph.NodeID{u, v})
		}
	}
	return out
}

// IsRRestricted reports whether every G′ edge connects nodes within r hops
// in G (the r-restricted constraint of Section 2).
func (d *Dual) IsRRestricted(r int) bool {
	for u := 0; u < d.G.N(); u++ {
		dist := d.G.BFS(graph.NodeID(u))
		for _, v := range d.GPrime.Neighbors(graph.NodeID(u)) {
			if v < graph.NodeID(u) {
				continue
			}
			if dist[v] == graph.Unreachable || dist[v] > r {
				return false
			}
		}
	}
	return true
}

// Restriction returns the smallest r for which the dual is r-restricted, or
// -1 if some G′ edge joins nodes disconnected in G (so no r suffices).
func (d *Dual) Restriction() int {
	r := 0
	for u := 0; u < d.G.N(); u++ {
		dist := d.G.BFS(graph.NodeID(u))
		for _, v := range d.GPrime.Neighbors(graph.NodeID(u)) {
			if dist[v] == graph.Unreachable {
				return -1
			}
			if dist[v] > r {
				r = dist[v]
			}
		}
	}
	return r
}

// Diameter returns the diameter D of the reliable graph G.
func (d *Dual) Diameter() int { return d.G.Diameter() }

// Reliable wraps a graph as the dual with G′ = G (the no-unreliability
// regime of [30]).
func Reliable(g *graph.Graph, name string) *Dual {
	return &Dual{G: g, GPrime: g.Clone(), Name: name}
}

// Line returns a path of n nodes with G′ = G. Its diameter is n−1.
func Line(n int) *Dual {
	return Reliable(lineInto(nil, n), fmt.Sprintf("line(n=%d)", n))
}

// lineInto builds the n-node path graph into ws storage — the one source of
// truth for every line-shaped G (Line, LineRRestrictedInto, noisy-line).
func lineInto(ws *Workspace, n int) *graph.Graph {
	g := ws.Graph(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return g
}

// Ring returns a cycle of n ≥ 3 nodes with G′ = G.
func Ring(n int) *Dual {
	if n < 3 {
		panic("topology: ring needs at least 3 nodes")
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return Reliable(g, fmt.Sprintf("ring(n=%d)", n))
}

// Star returns a star with center node 0 and n−1 leaves, G′ = G.
func Star(n int) *Dual {
	if n < 2 {
		panic("topology: star needs at least 2 nodes")
	}
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, graph.NodeID(i))
	}
	return Reliable(g, fmt.Sprintf("star(n=%d)", n))
}

// Grid returns a rows×cols 4-neighbor grid with G′ = G, embedded at unit
// spacing.
func Grid(rows, cols int) *Dual {
	e := geom.GridPoints(rows, cols, 1.0)
	g := e.UnitDisk(1.0)
	return &Dual{
		G:      g,
		GPrime: g.Clone(),
		Embed:  e,
		Name:   fmt.Sprintf("grid(%dx%d)", rows, cols),
	}
}

// CompleteBinaryTree returns a complete binary tree with n nodes (node i's
// children are 2i+1 and 2i+2), G′ = G.
func CompleteBinaryTree(n int) *Dual {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i-1)/2))
	}
	return Reliable(g, fmt.Sprintf("tree(n=%d)", n))
}

// RRestricted builds an r-restricted dual from g: G′ starts as a copy of G
// and gains each Gʳ \ G candidate edge independently with probability p.
// The result is r-restricted by construction (Section 2).
func RRestricted(g *graph.Graph, r int, p float64, rng *rand.Rand, name string) *Dual {
	return RRestrictedInto(nil, g, r, p, rng, name)
}

// RRestrictedInto is RRestricted emitting G′ (and the Gʳ scratch) into ws
// storage; a nil ws allocates fresh. The candidate edges are streamed off
// the Gʳ scratch's CSR rows (graph.EdgeSeq) in the same lexicographic
// order the materialized Edges slice was walked in, so the rng is drawn
// exactly as RRestricted always has and equal seeds yield equal duals on
// both paths — without the [][2]NodeID intermediate, which at n=10⁵ was
// the largest single allocation of a build.
func RRestrictedInto(ws *Workspace, g *graph.Graph, r int, p float64, rng *rand.Rand, name string) *Dual {
	gp := g.CloneInto(ws.Graph(g.N()))
	power := g.PowerInto(r, ws.Graph(g.N()))
	for u, v := range power.EdgeSeq() {
		if g.HasEdge(u, v) {
			continue
		}
		if p >= 1 || rng.Float64() < p {
			gp.AddEdge(u, v)
		}
	}
	return &Dual{G: g, GPrime: gp, Name: name}
}

// PodsRRestrictedInto builds the multi-component sharding workload: G is k
// disjoint line "pods" covering n nodes (pod i owns the contiguous range
// [i·n/k, (i+1)·n/k)), and G′ adds r-restricted noise with probability p.
// Gʳ never crosses a component, so every G′ edge stays inside its pod and
// the dual decomposes into exactly k G′-components — the regime where
// component-sharded execution parallelizes with no cross-shard events.
func PodsRRestrictedInto(ws *Workspace, n, k, r int, p float64, rng *rand.Rand) *Dual {
	if k < 1 || k > n {
		panic("topology: pods needs 1 <= k <= n")
	}
	g := ws.Graph(n)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		for v := lo; v < hi-1; v++ {
			g.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
		}
	}
	return RRestrictedInto(ws, g, r, p, rng,
		fmt.Sprintf("pods(n=%d,k=%d,r=%d,p=%.2f)", n, k, r, p))
}

// LineRRestricted is the workload used for the Theorem 3.2 experiments: a
// line G with an r-restricted G′ carrying a p fraction of the legal noise
// edges.
func LineRRestricted(n, r int, p float64, rng *rand.Rand) *Dual {
	return LineRRestrictedInto(nil, n, r, p, rng)
}

// LineRRestrictedInto is LineRRestricted built from ws storage.
func LineRRestrictedInto(ws *Workspace, n, r int, p float64, rng *rand.Rand) *Dual {
	return RRestrictedInto(ws, lineInto(ws, n), r, p, rng,
		fmt.Sprintf("line-rrestricted(n=%d,r=%d,p=%.2f)", n, r, p))
}

// ArbitraryNoise builds the arbitrary-G′ workload of Theorem 3.1: G′ is G
// plus extra long-range edges drawn uniformly over all non-adjacent pairs.
// No restriction constrains how far these edges reach in G.
func ArbitraryNoise(g *graph.Graph, extra int, rng *rand.Rand, name string) *Dual {
	return ArbitraryNoiseInto(nil, g, extra, rng, name)
}

// ArbitraryNoiseInto is ArbitraryNoise emitting G′ into ws storage.
func ArbitraryNoiseInto(ws *Workspace, g *graph.Graph, extra int, rng *rand.Rand, name string) *Dual {
	gp := g.CloneInto(ws.Graph(g.N()))
	n := g.N()
	added := 0
	for tries := 0; added < extra && tries < 50*extra+100; tries++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || gp.HasEdge(u, v) {
			continue
		}
		gp.AddEdge(u, v)
		added++
	}
	return &Dual{G: g, GPrime: gp, Name: name}
}

// RandomGeometric builds a grey-zone dual: n nodes uniform in a side×side
// square, G the unit-disk graph, G′ adding each grey-zone candidate
// (distance in (1, c]) with probability p. The embedding is attached. The
// caller should check connectivity of G for experiments that need it.
func RandomGeometric(n int, side, c, p float64, rng *rand.Rand) *Dual {
	return RandomGeometricInto(nil, n, side, c, p, rng)
}

// RandomGeometricInto is RandomGeometric emitting the embedding and both
// graphs into ws storage; a nil ws allocates fresh. The rng stream is drawn
// exactly as RandomGeometric draws it.
func RandomGeometricInto(ws *Workspace, n int, side, c, p float64, rng *rand.Rand) *Dual {
	e := geom.RandomUniformInto(ws.Points(n), n, side, rng)
	g := e.UnitDiskInto(ws.Graph(n), 1.0)
	gp := e.GreyZoneInto(ws.Graph(n), c, p, rng)
	return &Dual{
		G:      g,
		GPrime: gp,
		Embed:  e,
		Name:   fmt.Sprintf("rgg(n=%d,side=%.1f,c=%.1f,p=%.2f)", n, side, c, p),
	}
}

// ConnectedRandomGeometric retries RandomGeometric until G is connected,
// up to maxTries attempts. It returns nil if no connected instance is found,
// which signals the density is too low for the parameters.
func ConnectedRandomGeometric(n int, side, c, p float64, rng *rand.Rand, maxTries int) *Dual {
	return ConnectedRandomGeometricInto(nil, n, side, c, p, rng, maxTries)
}

// ConnectedRandomGeometricInto is ConnectedRandomGeometric built from ws
// storage; rejected draws rewind the workspace so every attempt reuses one
// set of graphs.
func ConnectedRandomGeometricInto(ws *Workspace, n int, side, c, p float64, rng *rand.Rand, maxTries int) *Dual {
	mark := ws.Mark()
	for i := 0; i < maxTries; i++ {
		ws.Rewind(mark)
		d := RandomGeometricInto(ws, n, side, c, p, rng)
		if d.G.IsConnected() {
			return d
		}
	}
	return nil
}
