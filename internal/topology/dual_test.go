package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"amac/internal/graph"
)

func TestLineDual(t *testing.T) {
	d := Line(10)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Diameter() != 9 {
		t.Fatalf("Diameter = %d, want 9", d.Diameter())
	}
	if len(d.UnreliableEdges()) != 0 {
		t.Fatal("reliable dual has unreliable edges")
	}
	if !d.IsRRestricted(1) {
		t.Fatal("G'=G dual must be 1-restricted")
	}
	if d.Restriction() != 1 {
		t.Fatalf("Restriction = %d, want 1", d.Restriction())
	}
}

func TestRingStarTreeGrid(t *testing.T) {
	if d := Ring(8); d.Diameter() != 4 || d.Validate() != nil {
		t.Fatalf("ring: D=%d err=%v", d.Diameter(), d.Validate())
	}
	if d := Star(9); d.Diameter() != 2 || d.G.Degree(0) != 8 {
		t.Fatalf("star: D=%d deg=%d", d.Diameter(), d.G.Degree(0))
	}
	if d := CompleteBinaryTree(15); !d.G.IsConnected() || d.G.M() != 14 {
		t.Fatalf("tree: connected=%v M=%d", d.G.IsConnected(), d.G.M())
	}
	g := Grid(4, 5)
	if g.N() != 20 || g.Diameter() != 3+4 {
		t.Fatalf("grid: n=%d D=%d", g.N(), g.Diameter())
	}
	if g.Embed == nil {
		t.Fatal("grid should carry its embedding")
	}
}

func TestRRestrictedConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, r := range []int{1, 2, 3, 5} {
		d := LineRRestricted(30, r, 1.0, rng)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if !d.IsRRestricted(r) {
			t.Fatalf("r=%d construction is not r-restricted", r)
		}
		if got := d.Restriction(); got != r {
			t.Fatalf("Restriction = %d, want %d (p=1 should realize the max)", got, r)
		}
		if r > 1 && d.IsRRestricted(r-1) {
			t.Fatalf("p=1 construction should not be (r-1)-restricted for r=%d", r)
		}
	}
}

func TestRRestrictedProbabilistic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := LineRRestricted(40, 4, 0.3, rng)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.IsRRestricted(4) {
		t.Fatal("not 4-restricted")
	}
	if len(d.UnreliableEdges()) == 0 {
		t.Fatal("expected some unreliable edges at p=0.3 on n=40")
	}
}

func TestArbitraryNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := Line(50)
	d := ArbitraryNoise(base.G, 20, rng, "test")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.UnreliableEdges()); got != 20 {
		t.Fatalf("unreliable edges = %d, want 20", got)
	}
}

func TestRandomGeometricGreyZone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := ConnectedRandomGeometric(60, 5, 2.0, 0.5, rng, 50)
	if d == nil {
		t.Fatal("no connected instance found")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.Embed.VerifyGreyZone(d.G, d.GPrime, 2.0) {
		t.Fatal("grey zone constraint violated")
	}
}

func TestParallelLinesC(t *testing.T) {
	c := NewParallelLinesC(10)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.N() != 20 {
		t.Fatalf("N = %d, want 20", c.N())
	}
	// Line A is 0..9, line B is 10..19.
	if c.A(1) != 0 || c.A(10) != 9 || c.B(1) != 10 || c.B(10) != 19 {
		t.Fatal("node numbering wrong")
	}
	// Reliable edges only along the lines: a1-a2 yes, a1-b1 no.
	if !c.G.HasEdge(c.A(1), c.A(2)) || c.G.HasEdge(c.A(1), c.B(1)) {
		t.Fatal("reliable edges wrong")
	}
	// Cross edges a_i–b_{i+1} and b_i–a_{i+1} are unreliable.
	if !c.GPrime.HasEdge(c.A(3), c.B(4)) || !c.GPrime.HasEdge(c.B(3), c.A(4)) {
		t.Fatal("missing cross edges")
	}
	if c.G.HasEdge(c.A(3), c.B(4)) {
		t.Fatal("cross edge should be unreliable")
	}
	// Grey-zone legality: every G' edge at most the declared constant, and
	// that constant is modest (the paper: "sufficiently large c").
	cc := c.GreyZoneConstant()
	if cc < 1.4 || cc > 1.5 {
		t.Fatalf("grey zone constant = %v, want ~1.45", cc)
	}
	if !c.Embed.VerifyGreyZone(c.G, c.GPrime, cc) {
		t.Fatal("network C violates its own grey zone constant")
	}
	// The two lines are disconnected in G.
	if c.G.Dist(c.A(1), c.B(1)) != graph.Unreachable {
		t.Fatal("lines should be disconnected in G")
	}
	// G' connects everything.
	if !c.GPrime.IsConnected() {
		t.Fatal("G' should be connected")
	}
}

func TestParallelLinesNotRRestricted(t *testing.T) {
	// The cross edges join nodes in different G components, so no r works:
	// this is exactly the structural gap between r-restricted and grey zone
	// the paper highlights.
	c := NewParallelLinesC(8)
	if got := c.Restriction(); got != -1 {
		t.Fatalf("Restriction = %d, want -1 (cross-component G' edges)", got)
	}
	if c.IsRRestricted(100) {
		t.Fatal("network C must not be r-restricted for any r")
	}
}

func TestStarChoke(t *testing.T) {
	s := NewStarChoke(6)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.N() != 7 {
		t.Fatalf("N = %d, want 7", s.N())
	}
	hub, recv := s.Hub(), s.Receiver()
	if s.G.Degree(hub) != 6 { // 5 leaves + receiver
		t.Fatalf("hub degree = %d, want 6", s.G.Degree(hub))
	}
	if s.G.Degree(recv) != 1 {
		t.Fatalf("receiver degree = %d, want 1", s.G.Degree(recv))
	}
	for i := 1; i < 6; i++ {
		if !s.G.HasEdge(s.Source(i), hub) {
			t.Fatalf("source %d not attached to hub", i)
		}
		if s.G.HasEdge(s.Source(i), recv) {
			t.Fatalf("source %d bypasses the choke point", i)
		}
	}
}

// Property: for random r and n, the r-restricted builder always produces a
// valid dual that is r-restricted.
func TestRRestrictedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		r := 1 + rng.Intn(5)
		p := rng.Float64()
		d := LineRRestricted(n, r, p, rng)
		return d.Validate() == nil && d.IsRRestricted(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ParallelLinesC has exactly 2(D-1) reliable and 2(D-1)
// unreliable edges for any D.
func TestParallelLinesEdgeCount(t *testing.T) {
	for _, d := range []int{2, 3, 5, 17, 64} {
		c := NewParallelLinesC(d)
		if got := c.G.M(); got != 2*(d-1) {
			t.Fatalf("D=%d: reliable edges = %d, want %d", d, got, 2*(d-1))
		}
		if got := len(c.UnreliableEdges()); got != 2*(d-1) {
			t.Fatalf("D=%d: unreliable edges = %d, want %d", d, got, 2*(d-1))
		}
	}
}

// TestPodsDecomposition pins the property the sharded executor exploits:
// a pods dual splits into exactly k G′-components, each a contiguous node
// range, with every G′ edge inside its pod.
func TestPodsDecomposition(t *testing.T) {
	for _, k := range []int{1, 3, 7} {
		d := PodsRRestrictedInto(nil, 40, k, 2, 0.7, rand.New(rand.NewSource(3)))
		if err := d.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		comps := d.GPrime.Components()
		if len(comps) != k {
			t.Fatalf("k=%d: G′ has %d components", k, len(comps))
		}
		pod := make([]int, 40)
		for i := 0; i < k; i++ {
			for v := i * 40 / k; v < (i+1)*40/k; v++ {
				pod[v] = i
			}
		}
		for u, v := range d.GPrime.EdgeSeq() {
			if pod[u] != pod[v] {
				t.Fatalf("k=%d: G′ edge (%d,%d) crosses a pod boundary", k, u, v)
			}
		}
	}
}
