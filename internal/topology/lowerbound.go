package topology

import (
	"fmt"
	"math"

	"amac/internal/geom"
	"amac/internal/graph"
)

// ParallelLinesC is the lower-bound network C of Figure 2 (Section 3.3):
// two disjoint reliable lines A = a₁..a_D and B = b₁..b_D, with unreliable
// cross edges (aᵢ, bᵢ₊₁) and (bᵢ, aᵢ₊₁) for i < D. It exposes the node
// numbering the proof uses.
type ParallelLinesC struct {
	*Dual
	D int
}

// A returns the node ID of aᵢ, 1-indexed as in the paper (i ∈ [1, D]).
func (c *ParallelLinesC) A(i int) graph.NodeID {
	if i < 1 || i > c.D {
		panic(fmt.Sprintf("topology: a_%d out of range [1,%d]", i, c.D))
	}
	return graph.NodeID(i - 1)
}

// B returns the node ID of bᵢ, 1-indexed as in the paper (i ∈ [1, D]).
func (c *ParallelLinesC) B(i int) graph.NodeID {
	if i < 1 || i > c.D {
		panic(fmt.Sprintf("topology: b_%d out of range [1,%d]", i, c.D))
	}
	return graph.NodeID(c.D + i - 1)
}

// NewParallelLinesC builds network C with line length d ≥ 2. The embedding
// places the lines at unit spacing with vertical offset 1.05, so vertical
// pairs (aᵢ, bᵢ) sit just outside the unit disk (G has only the two lines)
// and each cross diagonal has length √(1 + 1.1025) ≈ 1.45: strictly greater
// than 1 (not reliable) and at most c for any grey-zone constant c ≥ 1.45,
// matching the paper's observation that C is grey-zone restricted for a
// sufficiently large constant c.
func NewParallelLinesC(d int) *ParallelLinesC {
	return NewParallelLinesCInto(nil, d)
}

// NewParallelLinesCInto is NewParallelLinesC emitting both graphs into ws
// storage (see Workspace); a nil ws allocates fresh.
func NewParallelLinesCInto(ws *Workspace, d int) *ParallelLinesC {
	if d < 2 {
		panic("topology: parallel lines need d >= 2")
	}
	const dy = 1.05
	embed := geom.TwoLines(d, 1.0, dy)
	g := ws.Graph(2 * d)
	for i := 0; i < d-1; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))     // line A
		g.AddEdge(graph.NodeID(d+i), graph.NodeID(d+i+1)) // line B
	}
	gp := g.CloneInto(ws.Graph(2 * d))
	for i := 0; i < d-1; i++ {
		gp.AddEdge(graph.NodeID(i), graph.NodeID(d+i+1)) // a_i — b_{i+1}
		gp.AddEdge(graph.NodeID(d+i), graph.NodeID(i+1)) // b_i — a_{i+1}
	}
	return &ParallelLinesC{
		Dual: &Dual{
			G:      g,
			GPrime: gp,
			Embed:  embed,
			Name:   fmt.Sprintf("parallel-lines-C(D=%d)", d),
		},
		D: d,
	}
}

// GreyZoneConstant returns the smallest grey-zone constant c for which the
// network's G′ edges are all within length c under its embedding.
func (c *ParallelLinesC) GreyZoneConstant() float64 {
	max := 1.0
	for u, v := range c.GPrime.EdgeSeq() {
		if l := c.Embed.Dist(u, v); l > max {
			max = l
		}
	}
	return math.Ceil(max*100) / 100
}

// StarChoke is the Lemma 3.18 network: k source nodes u₁..u_{k-1} all
// adjacent to the hub u_k, which is the only bridge to the receiver v.
// G′ = G. Every message must funnel through the hub, inducing Ω(k·Fack).
type StarChoke struct {
	*Dual
	K int
}

// Source returns the node ID of uᵢ for i ∈ [1, k−1].
func (s *StarChoke) Source(i int) graph.NodeID {
	if i < 1 || i >= s.K {
		panic(fmt.Sprintf("topology: source u_%d out of range [1,%d)", i, s.K))
	}
	return graph.NodeID(i - 1)
}

// Hub returns the node ID of u_k, the choke point.
func (s *StarChoke) Hub() graph.NodeID { return graph.NodeID(s.K - 1) }

// Receiver returns the node ID of v, the node behind the choke point.
func (s *StarChoke) Receiver() graph.NodeID { return graph.NodeID(s.K) }

// NewStarChoke builds the Lemma 3.18 network for k ≥ 2 messages: nodes
// 0..k-2 are the leaf sources, node k-1 is the hub u_k (also a source), and
// node k is the receiver v. Total k+1 nodes.
func NewStarChoke(k int) *StarChoke {
	if k < 2 {
		panic("topology: star choke needs k >= 2")
	}
	g := graph.New(k + 1)
	hub := graph.NodeID(k - 1)
	for i := 0; i < k-1; i++ {
		g.AddEdge(graph.NodeID(i), hub)
	}
	g.AddEdge(hub, graph.NodeID(k))
	return &StarChoke{
		Dual: &Dual{
			G:      g,
			GPrime: g.Clone(),
			Name:   fmt.Sprintf("star-choke(k=%d)", k),
		},
		K: k,
	}
}
