package topology

import (
	"fmt"
	"testing"
)

// dualFingerprint renders everything observable about a built network.
func dualFingerprint(b *Built) string {
	d := b.Dual
	return fmt.Sprintf("%s n=%d G=%v G'=%v embed=%v", d.Name, d.N(), d.G.Edges(), d.GPrime.Edges(), d.Embed)
}

// buildCases maps every registered family to small parameters for the
// structure-sharing tests.
var buildCases = map[string]Params{
	"line":           {"n": 9},
	"ring":           {"n": 8},
	"star":           {"n": 7},
	"tree":           {"n": 10},
	"grid":           {"rows": 3, "cols": 4},
	"rgg":            {"n": 14, "side": 2.4, "c": 1.6, "p": 0.5},
	"rline":          {"n": 12, "r": 2, "p": 0.6},
	"pods":           {"n": 18, "k": 3, "r": 2, "p": 0.6},
	"noisy-line":     {"n": 12, "extra": 6},
	"grid-crosstalk": {"rows": 3, "cols": 4, "r": 2, "p": 0.5},
	"parallel-lines": {"d": 5},
	"star-choke":     {"k": 4},
}

// TestBuildIntoMatchesBuild is the structure-sharing contract: for every
// registered family and several seeds, building into one shared workspace
// yields networks byte-identical to fresh Build calls — interleaved across
// families, so recycled graphs from one family cannot leak into the next.
func TestBuildIntoMatchesBuild(t *testing.T) {
	ws := NewWorkspace()
	for _, name := range Names() {
		p, ok := buildCases[name]
		if !ok {
			t.Fatalf("no build case for registered family %q — extend buildCases", name)
		}
		for seed := int64(1); seed <= 4; seed++ {
			cold, err := BuildSeeded(name, p, seed)
			if err != nil {
				t.Fatalf("%s seed %d: cold: %v", name, seed, err)
			}
			want := dualFingerprint(cold)
			warm, err := BuildInto(name, p, seed, ws)
			if err != nil {
				t.Fatalf("%s seed %d: warm: %v", name, seed, err)
			}
			if got := dualFingerprint(warm); got != want {
				t.Fatalf("%s seed %d: BuildInto diverged from Build:\nwarm: %s\ncold: %s", name, seed, got, want)
			}
			if err := warm.Dual.Validate(); err != nil {
				t.Fatalf("%s seed %d: workspace-built dual invalid: %v", name, seed, err)
			}
		}
	}
}

// TestBuildIntoReusesStorage pins the point of the workspace: repeated
// builds of one randomized family recycle the graph pool (same *Graph
// handed back) and allocate well under a cold build.
func TestBuildIntoReusesStorage(t *testing.T) {
	p := Params{"n": 24, "r": 2, "p": 0.6}
	ws := NewWorkspace()
	first, err := BuildInto("rline", p, 1, ws)
	if err != nil {
		t.Fatal(err)
	}
	second, err := BuildInto("rline", p, 2, ws)
	if err != nil {
		t.Fatal(err)
	}
	if first.Dual.G != second.Dual.G || first.Dual.GPrime != second.Dual.GPrime {
		t.Fatal("workspace did not recycle the graph pool across builds")
	}

	warm := testing.AllocsPerRun(20, func() {
		if _, err := BuildInto("rline", p, 3, ws); err != nil {
			t.Fatal(err)
		}
	})
	cold := testing.AllocsPerRun(20, func() {
		if _, err := BuildSeeded("rline", p, 3); err != nil {
			t.Fatal(err)
		}
	})
	if warm >= cold/2 {
		t.Fatalf("workspace build allocates %.0f times vs %.0f cold — structure sharing is not amortizing construction", warm, cold)
	}
}

// TestDeterministicFlags pins which families declare seed-independence: the
// flag is what lets scenario.Run treat every trial of a ring sweep as one
// pinned instance instead of rebuilding an identical network per trial.
func TestDeterministicFlags(t *testing.T) {
	want := map[string]bool{
		"line": true, "ring": true, "star": true, "tree": true, "grid": true,
		"parallel-lines": true, "star-choke": true,
		"rgg": false, "rline": false, "noisy-line": false, "grid-crosstalk": false,
		"pods": false,
	}
	for _, name := range Names() {
		w, ok := want[name]
		if !ok {
			t.Fatalf("no determinism expectation for registered family %q — extend this test", name)
		}
		if Deterministic(name) != w {
			t.Errorf("Deterministic(%q) = %v, want %v", name, Deterministic(name), w)
		}
	}
	if Deterministic("no-such-family") {
		t.Error("unknown family reported deterministic")
	}
}

// TestBuildSeededExactLargeSeeds is the regression test for the lossy
// seed plumbing: seeds above 2^53 are not exactly representable as float64,
// so threading them through the parameter map collapsed adjacent seeds onto
// one network. BuildSeeded must keep them distinct.
func TestBuildSeededExactLargeSeeds(t *testing.T) {
	p := Params{"n": 16, "side": 2.6, "c": 1.6, "p": 0.5}
	const big = int64(1) << 53 // float64(big) == float64(big+1)
	a, err := BuildSeeded("rgg", p, big)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSeeded("rgg", p, big+1)
	if err != nil {
		t.Fatal(err)
	}
	if dualFingerprint(a) == dualFingerprint(b) {
		t.Fatalf("seeds %d and %d built the same network — the seed is being rounded through a float64", big, big+1)
	}
}

// TestBuildSeededParamPrecedence pins that an explicit "seed" parameter
// still wins over the threaded seed, matching Build's behavior.
func TestBuildSeededParamPrecedence(t *testing.T) {
	p := Params{"n": 12, "r": 2, "p": 0.6, "seed": 5}
	pinned, err := Build("rline", p)
	if err != nil {
		t.Fatal(err)
	}
	threaded, err := BuildSeeded("rline", p, 99)
	if err != nil {
		t.Fatal(err)
	}
	if dualFingerprint(pinned) != dualFingerprint(threaded) {
		t.Fatal("explicit seed parameter did not take precedence over the threaded seed")
	}
}

// TestParamsRoundToNearest pins the Int/Int64 boundary behavior: JSON
// round-tripped near-integers round to the intended value instead of
// truncating a node away.
func TestParamsRoundToNearest(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{100, 100},
		{99.99999999999999, 100},
		{100.00000000000001, 100},
		{2.4, 2},
		{2.5, 3},
		{-2.5, -3},
		{-2.4, -2},
		{0, 0},
	}
	for _, tc := range cases {
		p := Params{"n": tc.v}
		if got := p.Int("n", -1); got != tc.want {
			t.Errorf("Int(%v) = %d, want %d", tc.v, got, tc.want)
		}
		if got := p.Int64("n", -1); got != int64(tc.want) {
			t.Errorf("Int64(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if got := (Params{}).Int("n", 7); got != 7 {
		t.Errorf("absent Int default = %d, want 7", got)
	}
	if got := (Params{}).Int64("n", 7); got != 7 {
		t.Errorf("absent Int64 default = %d, want 7", got)
	}
}
