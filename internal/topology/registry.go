package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Params carries the named numeric parameters of a registry-built artifact.
// All values are float64 so parameter sets round-trip through JSON without a
// schema; integral parameters are truncated with Int. Missing keys select
// the builder's documented default.
type Params map[string]float64

// Has reports whether the parameter is present.
func (p Params) Has(name string) bool { _, ok := p[name]; return ok }

// Float returns the parameter, or def when absent.
func (p Params) Float(name string, def float64) float64 {
	if v, ok := p[name]; ok {
		return v
	}
	return def
}

// Int returns the parameter truncated to int, or def when absent.
func (p Params) Int(name string, def int) int {
	if v, ok := p[name]; ok {
		return int(v)
	}
	return def
}

// Int64 returns the parameter truncated to int64, or def when absent.
func (p Params) Int64(name string, def int64) int64 {
	if v, ok := p[name]; ok {
		return int64(v)
	}
	return def
}

// Clone returns a copy of the parameter set (nil-safe).
func (p Params) Clone() Params {
	out := make(Params, len(p)+1)
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Built is the product of a registered topology builder: the dual network
// plus, for the structured lower-bound constructions, the generator-specific
// artifact (e.g. *ParallelLinesC or *StarChoke) that downstream consumers —
// canonical workloads, the adversarial scheduler — key off.
type Built struct {
	Dual *Dual
	// Artifact optionally exposes the construction behind the dual.
	Artifact any
}

// Builder constructs a network family member from its parameters. Builders
// must be deterministic: equal parameter sets (including "seed" for
// randomized families) yield equal networks.
type Builder func(p Params) (*Built, error)

type registration struct {
	params  map[string]bool
	builder Builder
}

var registry = map[string]registration{}

// Register adds a named topology family to the registry, declaring the
// parameter names it accepts; Build rejects parameters outside that set.
// Every family implicitly accepts "seed" (deterministic families ignore it),
// so callers can thread per-trial seeds uniformly. Register panics on
// duplicate names (a wiring bug, caught at init).
func Register(name string, params []string, b Builder) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("topology: duplicate registration of %q", name))
	}
	ps := make(map[string]bool, len(params)+1)
	for _, p := range params {
		ps[p] = true
	}
	ps["seed"] = true
	registry[name] = registration{params: ps, builder: b}
}

// Names returns the registered topology names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ValidateSpec checks that name is registered and every parameter is one the
// family accepts, without building anything.
func ValidateSpec(name string, p Params) error {
	reg, ok := registry[name]
	if !ok {
		return fmt.Errorf("topology: unknown topology %q (registered: %v)", name, Names())
	}
	for k := range p {
		if !reg.params[k] {
			return fmt.Errorf("topology: %q does not accept parameter %q (accepted: %v)",
				name, k, sortedKeys(reg.params))
		}
	}
	return nil
}

// Build constructs the named topology from its parameters, validating the
// parameter names first.
func Build(name string, p Params) (*Built, error) {
	if err := ValidateSpec(name, p); err != nil {
		return nil, err
	}
	return registry[name].builder(p)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// seededRand builds the deterministic random stream of a randomized family
// from the "seed" parameter (default 1).
func seededRand(p Params) *rand.Rand {
	return rand.New(rand.NewSource(p.Int64("seed", 1)))
}

// gridDims resolves the shared grid sizing parameters: explicit rows/cols,
// or the largest square that fits in "n" (amacsim's historical heuristic).
func gridDims(p Params) (rows, cols int, err error) {
	rows, cols = p.Int("rows", 0), p.Int("cols", 0)
	if rows == 0 && cols == 0 {
		n := p.Int("n", 32)
		if n < 1 {
			return 0, 0, fmt.Errorf("topology: grid needs n >= 1, got %d", n)
		}
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		rows, cols = side, side
	}
	if cols == 0 {
		cols = rows
	}
	if rows < 1 || cols < 1 {
		return 0, 0, fmt.Errorf("topology: grid needs rows, cols >= 1, got %dx%d", rows, cols)
	}
	return rows, cols, nil
}

func init() {
	Register("line", []string{"n"}, func(p Params) (*Built, error) {
		n := p.Int("n", 32)
		if n < 1 {
			return nil, fmt.Errorf("topology: line needs n >= 1, got %d", n)
		}
		return &Built{Dual: Line(n)}, nil
	})
	Register("ring", []string{"n"}, func(p Params) (*Built, error) {
		n := p.Int("n", 32)
		if n < 3 {
			return nil, fmt.Errorf("topology: ring needs n >= 3, got %d", n)
		}
		return &Built{Dual: Ring(n)}, nil
	})
	Register("star", []string{"n"}, func(p Params) (*Built, error) {
		n := p.Int("n", 32)
		if n < 2 {
			return nil, fmt.Errorf("topology: star needs n >= 2, got %d", n)
		}
		return &Built{Dual: Star(n)}, nil
	})
	Register("tree", []string{"n"}, func(p Params) (*Built, error) {
		n := p.Int("n", 32)
		if n < 1 {
			return nil, fmt.Errorf("topology: tree needs n >= 1, got %d", n)
		}
		return &Built{Dual: CompleteBinaryTree(n)}, nil
	})
	Register("grid", []string{"rows", "cols", "n"}, func(p Params) (*Built, error) {
		rows, cols, err := gridDims(p)
		if err != nil {
			return nil, err
		}
		return &Built{Dual: Grid(rows, cols)}, nil
	})
	Register("rgg", []string{"n", "side", "c", "p", "seed", "max-tries"}, func(p Params) (*Built, error) {
		n := p.Int("n", 32)
		if n < 1 {
			return nil, fmt.Errorf("topology: rgg needs n >= 1, got %d", n)
		}
		side := p.Float("side", 0)
		if side == 0 {
			side = DefaultRGGSide(n)
		}
		c := p.Float("c", 1.6)
		prob := p.Float("p", 0.5)
		tries := p.Int("max-tries", 200)
		d := ConnectedRandomGeometric(n, side, c, prob, seededRand(p), tries)
		if d == nil {
			return nil, fmt.Errorf("topology: no connected rgg instance for n=%d side=%.2f in %d tries (density too low)",
				n, side, tries)
		}
		return &Built{Dual: d}, nil
	})
	Register("rline", []string{"n", "r", "p", "seed"}, func(p Params) (*Built, error) {
		n, r := p.Int("n", 32), p.Int("r", 2)
		if n < 1 || r < 1 {
			return nil, fmt.Errorf("topology: rline needs n, r >= 1, got n=%d r=%d", n, r)
		}
		return &Built{Dual: LineRRestricted(n, r, p.Float("p", 0.6), seededRand(p))}, nil
	})
	Register("noisy-line", []string{"n", "extra", "seed"}, func(p Params) (*Built, error) {
		n := p.Int("n", 32)
		if n < 1 {
			return nil, fmt.Errorf("topology: noisy-line needs n >= 1, got %d", n)
		}
		extra := p.Int("extra", n)
		return &Built{Dual: ArbitraryNoise(Line(n).G, extra, seededRand(p),
			fmt.Sprintf("line+%d-wild-edges", extra))}, nil
	})
	Register("grid-crosstalk", []string{"rows", "cols", "n", "r", "p", "seed"}, func(p Params) (*Built, error) {
		rows, cols, err := gridDims(p)
		if err != nil {
			return nil, err
		}
		r := p.Int("r", 2)
		if r < 1 {
			return nil, fmt.Errorf("topology: grid-crosstalk needs r >= 1, got %d", r)
		}
		base := Grid(rows, cols)
		d := RRestricted(base.G, r, p.Float("p", 0.5), seededRand(p),
			fmt.Sprintf("grid-crosstalk(%dx%d,r=%d)", rows, cols, r))
		d.Embed = base.Embed
		return &Built{Dual: d}, nil
	})
	Register("parallel-lines", []string{"d", "n"}, func(p Params) (*Built, error) {
		d := p.Int("d", 0)
		if d == 0 {
			d = p.Int("n", 16) / 2
		}
		if d < 2 {
			return nil, fmt.Errorf("topology: parallel-lines needs line length d >= 2, got %d", d)
		}
		c := NewParallelLinesC(d)
		return &Built{Dual: c.Dual, Artifact: c}, nil
	})
	Register("star-choke", []string{"k"}, func(p Params) (*Built, error) {
		k := p.Int("k", 2)
		if k < 2 {
			return nil, fmt.Errorf("topology: star-choke needs k >= 2, got %d", k)
		}
		s := NewStarChoke(k)
		return &Built{Dual: s.Dual, Artifact: s}, nil
	})
}

// DefaultRGGSide is the square-side heuristic amacsim has always used for
// connected random geometric networks: roomy enough to be interesting,
// dense enough that connected instances exist.
func DefaultRGGSide(n int) float64 {
	l := log2i(n)
	side := 0.72 * float64(n) / float64(l*l+1)
	if side < 2 {
		side = 2
	}
	return side
}

// log2i returns ⌈log₂ n⌉ with a floor of 1.
func log2i(n int) int {
	l, v := 0, 1
	for v < n {
		v <<= 1
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}
