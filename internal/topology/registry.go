package topology

import (
	"fmt"
	"math"
	"sort"

	"amac/internal/geom"
)

// Params carries the named numeric parameters of a registry-built artifact.
// All values are float64 so parameter sets round-trip through JSON without a
// schema; integral parameters are read with Int, which rounds to the nearest
// integer so float noise from a JSON round trip (99.99999999999999 for 100)
// cannot shift a parameter. Missing keys select the builder's documented
// default.
type Params map[string]float64

// Has reports whether the parameter is present.
func (p Params) Has(name string) bool { _, ok := p[name]; return ok }

// Float returns the parameter, or def when absent.
func (p Params) Float(name string, def float64) float64 {
	if v, ok := p[name]; ok {
		return v
	}
	return def
}

// Int returns the parameter rounded to the nearest int (halves away from
// zero, like math.Round), or def when absent. Truncation would silently
// drop a node from near-integer values that JSON round trips and float
// arithmetic routinely produce.
func (p Params) Int(name string, def int) int {
	if v, ok := p[name]; ok {
		return int(math.Round(v))
	}
	return def
}

// Int64 returns the parameter rounded to the nearest int64 (see Int), or def
// when absent.
func (p Params) Int64(name string, def int64) int64 {
	if v, ok := p[name]; ok {
		return int64(math.Round(v))
	}
	return def
}

// Clone returns a copy of the parameter set (nil-safe).
func (p Params) Clone() Params {
	out := make(Params, len(p)+1)
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Built is the product of a registered topology builder: the dual network
// plus, for the structured lower-bound constructions, the generator-specific
// artifact (e.g. *ParallelLinesC or *StarChoke) that downstream consumers —
// canonical workloads, the adversarial scheduler — key off.
type Built struct {
	Dual *Dual
	// Artifact optionally exposes the construction behind the dual.
	Artifact any
}

// Builder constructs a network family member from its parameters, the
// family's random-stream seed, and optional workspace scratch. Builders
// must be deterministic — equal (parameters, seed) yield equal networks —
// and must produce byte-identical networks with and without a workspace:
// the workspace only changes where the memory comes from. The seed arrives
// as an exact int64 (never through a float64 parameter, which is lossy
// above 2^53); deterministic families ignore it. ws may be nil (allocate
// fresh); the Workspace surface is nil-receiver safe, so builders are
// written once against it.
type Builder func(p Params, seed int64, ws *Workspace) (*Built, error)

type registration struct {
	params        map[string]bool
	builder       Builder
	deterministic bool
}

var registry = map[string]registration{}

// Register adds a named randomized topology family to the registry,
// declaring the parameter names it accepts; Build rejects parameters
// outside that set. Every family implicitly accepts "seed" (deterministic
// families ignore it), so callers can thread per-trial seeds uniformly.
// Register panics on duplicate names (a wiring bug, caught at init).
func Register(name string, params []string, b Builder) {
	register(name, params, b, false)
}

// RegisterDeterministic is Register for families whose builder ignores the
// seed: equal parameter sets alone yield equal networks. Consumers use
// Deterministic to treat every trial of such a family as the same pinned
// instance (scenario.Run builds it once and reuses the warm run arena)
// instead of rebuilding an identical network per trial.
func RegisterDeterministic(name string, params []string, b Builder) {
	register(name, params, b, true)
}

func register(name string, params []string, b Builder, deterministic bool) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("topology: duplicate registration of %q", name))
	}
	ps := make(map[string]bool, len(params)+1)
	for _, p := range params {
		ps[p] = true
	}
	ps["seed"] = true
	registry[name] = registration{params: ps, builder: b, deterministic: deterministic}
}

// Deterministic reports whether the named family was registered as
// seed-independent (false for unknown names).
func Deterministic(name string) bool {
	return registry[name].deterministic
}

// Names returns the registered topology names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ValidateSpec checks that name is registered and every parameter is one the
// family accepts, without building anything.
func ValidateSpec(name string, p Params) error {
	reg, ok := registry[name]
	if !ok {
		return fmt.Errorf("topology: unknown topology %q (registered: %v)", name, Names())
	}
	// Sorted so the reported parameter is the same on every run: which key a
	// map range sees first is randomized, and validation errors end up in
	// job records and test expectations.
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !reg.params[k] {
			return fmt.Errorf("topology: %q does not accept parameter %q (accepted: %v)",
				name, k, sortedKeys(reg.params))
		}
	}
	return nil
}

// Build constructs the named topology from its parameters, validating the
// parameter names first. The random stream of a randomized family is seeded
// from the "seed" parameter (default 1); to thread a seed that a float64
// cannot represent exactly, use BuildSeeded.
func Build(name string, p Params) (*Built, error) {
	return BuildInto(name, p, p.Int64("seed", 1), nil)
}

// BuildSeeded is Build with the family seed threaded as an exact int64
// instead of through the float64 parameter map, which is lossy above 2^53
// and would silently collide distinct large seeds onto the same network. An
// explicit "seed" parameter still wins, matching Build's precedence.
func BuildSeeded(name string, p Params, seed int64) (*Built, error) {
	return BuildInto(name, p, seed, nil)
}

// BuildInto is BuildSeeded emitting into ws scratch (see Workspace): graphs
// and embeddings of the previous build on the same workspace are recycled,
// so per-trial topology draws of a sweep stop paying construction
// allocations. A nil ws allocates fresh; the built network is byte-identical
// either way.
func BuildInto(name string, p Params, seed int64, ws *Workspace) (*Built, error) {
	if err := ValidateSpec(name, p); err != nil {
		return nil, err
	}
	if p.Has("seed") {
		seed = p.Int64("seed", 1)
	}
	ws.begin()
	b, err := registry[name].builder(p, seed, ws)
	if b != nil && b.Dual != nil {
		// Compact any pending arcs into the CSR blocks before the network
		// escapes the builder: built graphs are shared read-only across
		// parallel trial workers, which must never race a lazy compaction.
		b.Dual.G.Finalize()
		b.Dual.GPrime.Finalize()
	}
	return b, err
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// gridDims resolves the shared grid sizing parameters: explicit rows/cols,
// or the largest square that fits in "n" (amacsim's historical heuristic).
func gridDims(p Params) (rows, cols int, err error) {
	rows, cols = p.Int("rows", 0), p.Int("cols", 0)
	if rows == 0 && cols == 0 {
		n := p.Int("n", 32)
		if n < 1 {
			return 0, 0, fmt.Errorf("topology: grid needs n >= 1, got %d", n)
		}
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		rows, cols = side, side
	}
	if cols == 0 {
		cols = rows
	}
	if rows < 1 || cols < 1 {
		return 0, 0, fmt.Errorf("topology: grid needs rows, cols >= 1, got %dx%d", rows, cols)
	}
	return rows, cols, nil
}

func init() {
	RegisterDeterministic("line", []string{"n"}, func(p Params, _ int64, _ *Workspace) (*Built, error) {
		n := p.Int("n", 32)
		if n < 1 {
			return nil, fmt.Errorf("topology: line needs n >= 1, got %d", n)
		}
		return &Built{Dual: Line(n)}, nil
	})
	RegisterDeterministic("ring", []string{"n"}, func(p Params, _ int64, _ *Workspace) (*Built, error) {
		n := p.Int("n", 32)
		if n < 3 {
			return nil, fmt.Errorf("topology: ring needs n >= 3, got %d", n)
		}
		return &Built{Dual: Ring(n)}, nil
	})
	RegisterDeterministic("star", []string{"n"}, func(p Params, _ int64, _ *Workspace) (*Built, error) {
		n := p.Int("n", 32)
		if n < 2 {
			return nil, fmt.Errorf("topology: star needs n >= 2, got %d", n)
		}
		return &Built{Dual: Star(n)}, nil
	})
	RegisterDeterministic("tree", []string{"n"}, func(p Params, _ int64, _ *Workspace) (*Built, error) {
		n := p.Int("n", 32)
		if n < 1 {
			return nil, fmt.Errorf("topology: tree needs n >= 1, got %d", n)
		}
		return &Built{Dual: CompleteBinaryTree(n)}, nil
	})
	RegisterDeterministic("grid", []string{"rows", "cols", "n"}, func(p Params, _ int64, _ *Workspace) (*Built, error) {
		rows, cols, err := gridDims(p)
		if err != nil {
			return nil, err
		}
		return &Built{Dual: Grid(rows, cols)}, nil
	})
	Register("rgg", []string{"n", "side", "c", "p", "seed", "max-tries"}, func(p Params, seed int64, ws *Workspace) (*Built, error) {
		n := p.Int("n", 32)
		if n < 1 {
			return nil, fmt.Errorf("topology: rgg needs n >= 1, got %d", n)
		}
		side := p.Float("side", 0)
		if side == 0 {
			side = DefaultRGGSide(n)
		}
		c := p.Float("c", 1.6)
		prob := p.Float("p", 0.5)
		tries := p.Int("max-tries", 200)
		d := ConnectedRandomGeometricInto(ws, n, side, c, prob, ws.Rand(seed), tries)
		if d == nil {
			return nil, fmt.Errorf("topology: no connected rgg instance for n=%d side=%.2f in %d tries (density too low)",
				n, side, tries)
		}
		return &Built{Dual: d}, nil
	})
	Register("rline", []string{"n", "r", "p", "seed"}, func(p Params, seed int64, ws *Workspace) (*Built, error) {
		n, r := p.Int("n", 32), p.Int("r", 2)
		if n < 1 || r < 1 {
			return nil, fmt.Errorf("topology: rline needs n, r >= 1, got n=%d r=%d", n, r)
		}
		return &Built{Dual: LineRRestrictedInto(ws, n, r, p.Float("p", 0.6), ws.Rand(seed))}, nil
	})
	Register("pods", []string{"n", "k", "r", "p", "seed"}, func(p Params, seed int64, ws *Workspace) (*Built, error) {
		n, k, r := p.Int("n", 64), p.Int("k", 4), p.Int("r", 2)
		if n < 1 || k < 1 || k > n || r < 1 {
			return nil, fmt.Errorf("topology: pods needs n >= 1, 1 <= k <= n, r >= 1, got n=%d k=%d r=%d", n, k, r)
		}
		return &Built{Dual: PodsRRestrictedInto(ws, n, k, r, p.Float("p", 0.6), ws.Rand(seed))}, nil
	})
	Register("noisy-line", []string{"n", "extra", "seed"}, func(p Params, seed int64, ws *Workspace) (*Built, error) {
		n := p.Int("n", 32)
		if n < 1 {
			return nil, fmt.Errorf("topology: noisy-line needs n >= 1, got %d", n)
		}
		extra := p.Int("extra", n)
		return &Built{Dual: ArbitraryNoiseInto(ws, lineInto(ws, n), extra, ws.Rand(seed),
			fmt.Sprintf("line+%d-wild-edges", extra))}, nil
	})
	Register("grid-crosstalk", []string{"rows", "cols", "n", "r", "p", "seed"}, func(p Params, seed int64, ws *Workspace) (*Built, error) {
		rows, cols, err := gridDims(p)
		if err != nil {
			return nil, err
		}
		r := p.Int("r", 2)
		if r < 1 {
			return nil, fmt.Errorf("topology: grid-crosstalk needs r >= 1, got %d", r)
		}
		e := geom.GridPoints(rows, cols, 1.0)
		base := e.UnitDiskInto(ws.Graph(rows*cols), 1.0)
		d := RRestrictedInto(ws, base, r, p.Float("p", 0.5), ws.Rand(seed),
			fmt.Sprintf("grid-crosstalk(%dx%d,r=%d)", rows, cols, r))
		d.Embed = e
		return &Built{Dual: d}, nil
	})
	RegisterDeterministic("parallel-lines", []string{"d", "n"}, func(p Params, _ int64, ws *Workspace) (*Built, error) {
		d := p.Int("d", 0)
		if d == 0 {
			d = p.Int("n", 16) / 2
		}
		if d < 2 {
			return nil, fmt.Errorf("topology: parallel-lines needs line length d >= 2, got %d", d)
		}
		c := NewParallelLinesCInto(ws, d)
		return &Built{Dual: c.Dual, Artifact: c}, nil
	})
	RegisterDeterministic("star-choke", []string{"k"}, func(p Params, _ int64, _ *Workspace) (*Built, error) {
		k := p.Int("k", 2)
		if k < 2 {
			return nil, fmt.Errorf("topology: star-choke needs k >= 2, got %d", k)
		}
		s := NewStarChoke(k)
		return &Built{Dual: s.Dual, Artifact: s}, nil
	})
}

// DefaultRGGSide is the square-side heuristic amacsim has always used for
// connected random geometric networks: roomy enough to be interesting,
// dense enough that connected instances exist.
func DefaultRGGSide(n int) float64 {
	l := log2i(n)
	side := 0.72 * float64(n) / float64(l*l+1)
	if side < 2 {
		side = 2
	}
	return side
}

// log2i returns ⌈log₂ n⌉ with a floor of 1.
func log2i(n int) int {
	l, v := 0, 1
	for v < n {
		v <<= 1
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}
