package mac_test

import (
	"testing"

	"amac/internal/graph"
	"amac/internal/mac"
)

// TestMarkDeliveredNegativeTime is the regression test for the overflow
// bias bug: checker-built histories may deliver at time −1, which the +1
// bias stores as 0 — the old `overflow[to] != 0` lookup conflated that with
// "never delivered", so WasDelivered lied and duplicate marks slipped
// through. Lookups are existence-based now, and row neighbors marked at
// negative times route through the overflow map uniformly, so both domains
// report the delivery and its exact time.
func TestMarkDeliveredNegativeTime(t *testing.T) {
	row := []graph.NodeID{1, 3, 5}
	for _, tc := range []struct {
		name string
		to   mac.NodeID
	}{
		{"row-neighbor", 3},
		{"outside-row", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := mac.NewInstance(7, 0, mac.Payload{}, 0, row, 0)
			b.MarkDelivered(tc.to, -1, false)
			if !b.WasDelivered(tc.to) {
				t.Fatalf("WasDelivered(%d) = false after a delivery at time -1", tc.to)
			}
			at, ok := b.DeliveredAt(tc.to)
			if !ok || at != -1 {
				t.Fatalf("DeliveredAt(%d) = (%d, %v), want (-1, true)", tc.to, at, ok)
			}
			if n := b.NumDelivered(); n != 1 {
				t.Fatalf("NumDelivered = %d, want 1", n)
			}
			defer func() {
				if recover() == nil {
					t.Fatal("duplicate MarkDelivered at time -1 did not panic")
				}
			}()
			b.MarkDelivered(tc.to, 4, false)
		})
	}
}

// TestMarkDeliveredRowAndOverflowDisjoint pins that a node marked through
// the overflow domain (negative time) cannot be re-marked through its row
// slot and vice versa — the duplicate check spans both domains.
func TestMarkDeliveredRowAndOverflowDisjoint(t *testing.T) {
	row := []graph.NodeID{1, 2}
	b := mac.NewInstance(1, 0, mac.Payload{}, 0, row, 0)
	b.MarkDelivered(1, 5, false) // row domain, real time
	b.MarkDelivered(2, -3, false)
	if at, ok := b.DeliveredAt(1); !ok || at != 5 {
		t.Fatalf("DeliveredAt(1) = (%d, %v), want (5, true)", at, ok)
	}
	if at, ok := b.DeliveredAt(2); !ok || at != -3 {
		t.Fatalf("DeliveredAt(2) = (%d, %v), want (-3, true)", at, ok)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-marking an overflow-delivered node via its row did not panic")
		}
	}()
	b.MarkDelivered(2, 6, false)
}
