package mac

import (
	"fmt"
	"math/rand"

	"amac/internal/sim"
	"amac/internal/topology"
)

// Config parameterizes an Engine.
type Config struct {
	// Dual is the network (G, G′). Required.
	Dual *topology.Dual
	// Fack is the acknowledgment bound in ticks. Must be ≥ Fprog.
	Fack sim.Time
	// Fprog is the progress bound in ticks. Must be ≥ 2 (schedulers need
	// at least one tick of slack inside a progress window).
	Fprog sim.Time
	// Scheduler supplies the model's non-determinism. Required.
	Scheduler Scheduler
	// Mode selects Standard or Enhanced. Defaults to Standard.
	Mode Mode
	// Seed drives all randomness (engine, per-node streams, scheduler).
	Seed int64
	// EpsAbort bounds how long after an abort a rcv caused by the aborted
	// instance may still occur (the paper's ε_abort). Defaults to 0.
	EpsAbort sim.Time
	// TraceCap bounds trace memory; 0 keeps everything.
	TraceCap int
	// Sink, when set, receives every trace event instead of the in-memory
	// trace — the streaming path for networks whose full trace cannot be
	// held in RAM (pair with a sim.TraceWriter). Watchers still observe
	// every event; NoTrace still disables recording entirely. Checkers
	// need the in-memory trace, so Check-enabled runs leave Sink unset.
	Sink sim.TraceSink
	// NoTrace disables trace recording entirely. Watchers still observe
	// every event; when none are registered either, the engine skips event
	// construction altogether — the throughput fast path.
	NoTrace bool
	// Owns, when set, restricts the engine to a subset of the network's
	// nodes: a delivery to a node for which Owns reports false keeps all
	// sender-side bookkeeping (delivery slots, reliability accounting, the
	// ack precondition) but skips the receiver's rcv event and automaton
	// callback, handing the delivery to Export instead. The windowed
	// parallel executor runs one engine per node region this way; nil (the
	// default) owns every node.
	Owns func(NodeID) bool
	// Export receives every delivery intercepted by Owns: the delivery
	// time, the receiver, and the instance identity and payload the owning
	// engine needs to replay the rcv via InjectRecv. Required when Owns is
	// set.
	Export func(at sim.Time, to NodeID, inst InstanceID, sender NodeID, payload Payload)
	// Arena, when set, must have been built for Dual (pointer identity)
	// and makes construction reuse the arena's warm storage: pooled engine
	// and node states, flat CSR delivery rows with O(1) position lookups,
	// recycled instance records and a warm event pool. Executions are
	// byte-identical with and without an arena; the arena only changes
	// where the memory comes from. Acquiring an engine recycles the
	// previous execution's state, including the engine reachable through
	// earlier results.
	Arena *Arena
}

// Scheduler is the source of the model's non-determinism: it decides when
// each G-neighbor receives a broadcast, whether and when each G′\G
// neighbor receives it, and when the acknowledgment fires — subject to the
// model guarantees, which the engine enforces at delivery time and package
// check re-verifies from the recorded instances.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Attach binds the scheduler to an engine before the run starts.
	Attach(api API)
	// OnBcast is invoked at the instant a node initiates a broadcast.
	OnBcast(b *Instance)
	// OnAbort is invoked when a sender aborts an instance (enhanced mode).
	OnAbort(b *Instance)
}

// API is the engine surface exposed to schedulers.
//
// The Schedule* family posts typed, pooled events on the simulation queue —
// the closure-free steady-state path every shipped scheduler runs on. At
// remains as the closure escape hatch for tests and bespoke schedulers.
type API interface {
	// Now returns current virtual time.
	Now() sim.Time
	// Fack returns the acknowledgment bound.
	Fack() sim.Time
	// Fprog returns the progress bound.
	Fprog() sim.Time
	// Dual returns the network.
	Dual() *topology.Dual
	// Rand returns the scheduler's deterministic random stream.
	Rand() *rand.Rand
	// At schedules fn at absolute virtual time t. It allocates one closure
	// per call; hot paths use the typed Schedule* methods instead.
	At(t sim.Time, fn func()) sim.Handle
	// ScheduleDeliver posts a guarded delivery of b to a single receiver at
	// time t: it fires only if b is still active and to has not received.
	ScheduleDeliver(t sim.Time, b *Instance, to NodeID)
	// ScheduleReliableDeliveries posts one batched event at time t that
	// delivers b to every G-neighbor of its sender in neighbor order,
	// stopping if the instance terminates mid-batch.
	ScheduleReliableDeliveries(t sim.Time, b *Instance)
	// ScheduleGreyDeliveries posts one batched event at time t delivering b
	// to targets in order (same mid-batch termination guard). The slice is
	// retained by the instance until the batch fires; at most one grey
	// batch may be pending per instance.
	ScheduleGreyDeliveries(t sim.Time, b *Instance, targets []NodeID)
	// ScheduleAck posts the acknowledgment of b at time t, skipped if the
	// instance has terminated by then.
	ScheduleAck(t sim.Time, b *Instance)
	// ScheduleTimer posts a typed callback at time t that is routed to the
	// scheduler's OnTimer method with the given operands. The scheduler
	// must implement TimerScheduler; the first ScheduleTimer call panics
	// otherwise.
	ScheduleTimer(t sim.Time, obj any, a, b int64) sim.Handle
	// Deliver performs a rcv event for instance b at node to, now.
	// It enforces receive correctness and panics on violations (a
	// scheduler bug, not a model behavior).
	Deliver(b *Instance, to NodeID)
	// Ack performs the ack event for instance b, now. It enforces
	// acknowledgment correctness (all G-neighbors already received) and
	// the acknowledgment bound.
	Ack(b *Instance)
}

// TimerScheduler is implemented by schedulers that use API.ScheduleTimer:
// OnTimer receives the posted operands when the timer fires.
type TimerScheduler interface {
	OnTimer(obj any, a, b int64)
}

// Engine composes a dual network, one automaton per node, and a scheduler
// into an executable abstract MAC layer system.
type Engine struct {
	cfg        Config
	sim        *sim.Engine
	arena      *Arena // nil unless constructed through Config.Arena
	nodes      []nodeState
	trace      sim.Trace
	insts      []*Instance
	nextID     InstanceID
	schedRand  *rand.Rand
	watchers   []func(sim.TraceEvent)
	timerSched TimerScheduler // cfg.Scheduler, when it implements OnTimer
	// rngEpoch counts engine acquisitions on a warm arena. Pooled random
	// streams (schedRand, per-node rng) record the epoch they were last
	// seeded in and lazily re-seed on mismatch, so streams survive across
	// trials without allocating and without eager re-seeding cost when a
	// trial never draws.
	rngEpoch      uint32
	schedRandSeen uint32 // epoch schedRand was last (re-)seeded in
}

// Typed event kinds the MAC engine registers on the simulation queue.
// Everything the shipped schedulers and the engine itself schedule in steady
// state is one of these — plain pooled structs, no closures.
const (
	// evWakeup fires Automaton.Wakeup at node A.
	evWakeup sim.EventKind = iota + 1
	// evArrive delivers the environment input Obj to node A.
	evArrive
	// evDeliverOne delivers instance Obj to node A if still active and
	// undelivered there.
	evDeliverOne
	// evDeliverReliable delivers instance Obj to every G-neighbor of its
	// sender, in neighbor order, stopping on termination.
	evDeliverReliable
	// evDeliverGrey delivers instance Obj to its drawn grey targets, in
	// draw order, stopping on termination.
	evDeliverGrey
	// evAck acknowledges instance Obj if still active.
	evAck
	// evTimer fires TimerHandler.Timer at node A with tag Obj.
	evTimer
	// evSchedTimer routes (Obj, A, B) to the scheduler's OnTimer.
	evSchedTimer
	// evExtRecv replays a delivery exported by another engine shard: a rcv
	// at node A of instance (B>>32) from sender uint32(B), payload P. The
	// sender-side instance lives in the exporting engine, so the event
	// carries the identity by value instead of an *Instance.
	evExtRecv
)

type nodeState struct {
	eng       *Engine
	id        NodeID
	automaton Automaton
	pending   *Instance
	rng       *rand.Rand
	rngSeen   uint32 // epoch rng was last (re-)seeded in
}

var _ EnhancedContext = (*nodeState)(nil)

// NewEngine validates cfg, instantiates per-node state with the given
// automata (one per node of the dual, in node order) and returns the ready
// engine. It panics on configuration errors: these are programming
// mistakes, not runtime conditions.
func NewEngine(cfg Config, automata []Automaton) *Engine {
	if cfg.Dual == nil {
		panic("mac: nil dual")
	}
	if cfg.Arena == nil {
		if err := cfg.Dual.Validate(); err != nil {
			panic(fmt.Sprintf("mac: invalid dual: %v", err))
		}
	} else if cfg.Arena.dual != cfg.Dual {
		// The arena's CSR index is derived from its own dual; running a
		// different network against it would silently corrupt deliveries.
		panic("mac: Config.Arena was built for a different dual")
	}
	if cfg.Scheduler == nil {
		panic("mac: nil scheduler")
	}
	if cfg.Fprog < 2 {
		panic("mac: Fprog must be >= 2 ticks")
	}
	if cfg.Fack < cfg.Fprog {
		panic("mac: Fack must be >= Fprog")
	}
	if cfg.Mode == 0 {
		cfg.Mode = Standard
	}
	if cfg.Owns != nil && cfg.Export == nil {
		panic("mac: Config.Owns set without Config.Export")
	}
	if len(automata) != cfg.Dual.N() {
		panic(fmt.Sprintf("mac: %d automata for %d nodes", len(automata), cfg.Dual.N()))
	}
	if cfg.Arena != nil {
		return cfg.Arena.engineFor(cfg, automata)
	}
	e := &Engine{
		cfg: cfg,
		sim: sim.NewEngine(cfg.Seed),
	}
	e.sim.SetDispatcher(e)
	e.timerSched, _ = cfg.Scheduler.(TimerScheduler)
	if cfg.TraceCap > 0 {
		e.trace.SetCap(cfg.TraceCap)
	}
	if cfg.NoTrace {
		e.trace.Disable()
	}
	// Per-node and scheduler random streams are forked lazily on first
	// draw: seeding a math/rand stream costs more than most nodes' entire
	// event work, and deterministic automata never draw at all. Fork is
	// keyed by id alone, so creation order does not change the streams.
	e.nodes = make([]nodeState, cfg.Dual.N())
	for i := range e.nodes {
		e.nodes[i] = nodeState{
			eng:       e,
			id:        NodeID(i),
			automaton: automata[i],
		}
	}
	cfg.Scheduler.Attach(e)
	return e
}

// Sim exposes the underlying simulation engine (tests and runners use it
// for horizons and step limits).
func (e *Engine) Sim() *sim.Engine { return e.sim }

// Mode returns the configured model variant.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// Trace returns the execution trace.
func (e *Engine) Trace() *sim.Trace { return &e.trace }

// Instances returns every broadcast instance recorded so far, in creation
// order. The slice and records are owned by the engine.
func (e *Engine) Instances() []*Instance { return e.insts }

// Watch registers fn to observe every trace event as it is appended.
func (e *Engine) Watch(fn func(sim.TraceEvent)) {
	e.watchers = append(e.watchers, fn)
}

// recording reports whether anyone observes trace events. When false, emit
// call sites skip event construction (and the interface boxing of the
// argument) entirely — the no-trace fast path.
func (e *Engine) recording() bool {
	return !e.cfg.NoTrace || len(e.watchers) > 0
}

//amac:hotpath
func (e *Engine) emit(kind string, node NodeID, arg Payload) {
	if !e.recording() {
		return
	}
	ev := sim.TraceEvent{At: e.sim.Now(), Kind: kind, Node: int(node), P: arg}
	if e.cfg.Sink != nil {
		e.cfg.Sink.Append(ev)
	} else {
		e.trace.Append(ev)
	}
	for _, w := range e.watchers {
		w(ev)
	}
}

// Start schedules the wake-up event for every node at time zero. It must be
// called exactly once, before Run.
func (e *Engine) Start() {
	for i := range e.nodes {
		e.sim.Post(0, evWakeup, nil, int64(i), 0)
	}
}

// StartNodes schedules the wake-up event at time zero for the given nodes
// only, in slice order. Engine shards that own a subset of the network use
// it in place of Start; the two must not be mixed in one run.
func (e *Engine) StartNodes(ids []NodeID) {
	for _, v := range ids {
		e.sim.Post(0, evWakeup, nil, int64(v), 0)
	}
}

// InjectRecv schedules the replay of a delivery exported by another engine
// shard: at time t, node to observes the rcv of instance inst from sender
// with the given payload, exactly as if the owning engine had delivered it.
// The sender-side instance state stays with the exporting engine.
func (e *Engine) InjectRecv(t sim.Time, to NodeID, inst InstanceID, sender NodeID, payload Payload) {
	e.sim.PostPayload(t, evExtRecv, payload, int64(to), int64(inst)<<32|int64(uint32(sender)))
}

// Arrive schedules an environment input (the MMB arrive event) for node v
// at time t. The automaton must implement Arriver.
func (e *Engine) Arrive(v NodeID, payload Payload, t sim.Time) {
	ns := e.node(v)
	if _, ok := ns.automaton.(Arriver); !ok {
		panic(fmt.Sprintf("mac: node %d automaton does not accept arrive events", v))
	}
	e.sim.PostPayload(t, evArrive, payload, int64(v), 0)
}

// Dispatch implements sim.Dispatcher: the typed-event switch at the bottom
// of the run loop. Each case mirrors exactly the closure the corresponding
// call site used to schedule, so executions are unchanged event for event.
//amac:hotpath
func (e *Engine) Dispatch(kind sim.EventKind, op sim.Op) {
	switch kind {
	case evWakeup:
		ns := &e.nodes[op.A]
		ns.automaton.Wakeup(ns)
	case evArrive:
		ns := &e.nodes[op.A]
		e.emit("arrive", ns.id, op.P)
		ns.automaton.(Arriver).Arrive(ns, op.P)
	case evDeliverOne:
		b := op.Obj.(*Instance)
		if to := NodeID(op.A); b.Term == Active && !b.WasDelivered(to) {
			e.Deliver(b, to)
		}
	case evDeliverReliable:
		b := op.Obj.(*Instance)
		for _, j := range e.cfg.Dual.G.Neighbors(b.Sender) {
			if b.Term != Active {
				return
			}
			e.Deliver(b, j)
		}
	case evDeliverGrey:
		b := op.Obj.(*Instance)
		grey := b.grey
		b.grey = nil
		for _, j := range grey {
			if b.Term != Active {
				return
			}
			e.Deliver(b, j)
		}
	case evAck:
		b := op.Obj.(*Instance)
		if b.Term == Active {
			e.Ack(b)
		}
	case evTimer:
		ns := &e.nodes[op.A]
		ns.automaton.(TimerHandler).Timer(ns, op.Obj)
	case evSchedTimer:
		e.timerSched.OnTimer(op.Obj, op.A, op.B)
	case evExtRecv:
		ns := &e.nodes[op.A]
		inst := InstanceID(op.B >> 32)
		sender := NodeID(uint32(op.B))
		if e.recording() {
			e.emit("rcv", ns.id, Int(int64(inst)))
		}
		ns.automaton.Recv(ns, Message{Instance: inst, Sender: sender, Payload: op.P})
	default:
		panic(fmt.Sprintf("mac: dispatch of unknown event kind %d", kind))
	}
}

// Run executes the system until the event queue drains, the horizon is
// reached, or Halt is called.
func (e *Engine) Run() { _ = e.sim.Run() }

// Halt stops the run after the current event.
func (e *Engine) Halt() { e.sim.Halt() }

func (e *Engine) node(v NodeID) *nodeState {
	if int(v) < 0 || int(v) >= len(e.nodes) {
		panic(fmt.Sprintf("mac: node %d out of range", v))
	}
	return &e.nodes[v]
}

// --- API (scheduler surface) ---

// Now returns the current virtual time.
func (e *Engine) Now() sim.Time { return e.sim.Now() }

// Fack returns the acknowledgment bound.
func (e *Engine) Fack() sim.Time { return e.cfg.Fack }

// Fprog returns the progress bound.
func (e *Engine) Fprog() sim.Time { return e.cfg.Fprog }

// Dual returns the network.
func (e *Engine) Dual() *topology.Dual { return e.cfg.Dual }

// Rand returns the scheduler's random stream (forked on first use; on a
// warm arena, re-seeded in place on first use after each acquisition).
func (e *Engine) Rand() *rand.Rand {
	if e.schedRand == nil {
		e.schedRand = e.sim.Fork(-1)
	} else if e.schedRandSeen != e.rngEpoch {
		e.sim.Reseed(e.schedRand, -1)
	}
	e.schedRandSeen = e.rngEpoch
	return e.schedRand
}

// At schedules fn at absolute time t on the simulation clock.
func (e *Engine) At(t sim.Time, fn func()) sim.Handle { return e.sim.At(t, fn) }

// ScheduleDeliver posts a guarded single delivery (see API).
//amac:hotpath
func (e *Engine) ScheduleDeliver(t sim.Time, b *Instance, to NodeID) {
	e.sim.Post(t, evDeliverOne, b, int64(to), 0)
}

// ScheduleReliableDeliveries posts the batched reliable delivery (see API).
//amac:hotpath
func (e *Engine) ScheduleReliableDeliveries(t sim.Time, b *Instance) {
	e.sim.Post(t, evDeliverReliable, b, 0, 0)
}

// ScheduleGreyDeliveries posts the batched grey delivery (see API). The
// targets slice is parked on the instance until the batch fires, and is
// retained afterwards as the instance's grey scratch buffer (GreyBuf), so
// recycled instances redraw into warm storage.
//amac:hotpath
func (e *Engine) ScheduleGreyDeliveries(t sim.Time, b *Instance, targets []NodeID) {
	if b.grey != nil {
		panic(fmt.Sprintf("mac: instance %d already has a grey batch pending", b.ID))
	}
	b.grey = targets
	b.greybuf = targets
	e.sim.Post(t, evDeliverGrey, b, 0, 0)
}

// ScheduleAck posts the guarded acknowledgment (see API).
//amac:hotpath
func (e *Engine) ScheduleAck(t sim.Time, b *Instance) {
	e.sim.Post(t, evAck, b, 0, 0)
}

// ScheduleTimer posts a typed scheduler timer (see API). The configured
// scheduler must implement TimerScheduler.
func (e *Engine) ScheduleTimer(t sim.Time, obj any, a, b int64) sim.Handle {
	if e.timerSched == nil {
		panic(fmt.Sprintf("mac: scheduler %s uses ScheduleTimer but does not implement TimerScheduler",
			e.cfg.Scheduler.Name()))
	}
	return e.sim.Post(t, evSchedTimer, obj, a, b)
}

// Deliver performs the rcv event for b at node to. The engine enforces
// receive correctness (Section 3.2.1): the receiver must be a G′ neighbor
// of the sender, must not have received this instance already, the
// instance must not be acked, and deliveries after an abort must fall
// within EpsAbort.
//amac:hotpath
func (e *Engine) Deliver(b *Instance, to NodeID) {
	if to == b.Sender {
		panic(fmt.Sprintf("mac: delivery of instance %d to its own sender", b.ID))
	}
	now := e.sim.Now()
	if b.csr != nil {
		// Arena fast path: the instance's row IS the graph's CSR row, so
		// one binary search over it yields the G′ membership check, the
		// delivery slot and (via the global arc position base+slot) the
		// reliability bit — every check and its failure order unchanged.
		slot := b.slot(to)
		if slot < 0 {
			panic(fmt.Sprintf("mac: delivery %d→%d without a G' edge", b.Sender, to))
		}
		if b.deliveredAt[slot] != 0 {
			panic(fmt.Sprintf("mac: duplicate delivery of instance %d to %d", b.ID, to))
		}
		e.checkDeliveryTerm(b, now)
		b.deliveredAt[slot] = now + 1
		b.receivers = append(b.receivers, to)
		if b.csr.isReliable(b.base + int32(slot)) {
			b.remainingReliable--
		}
	} else {
		if !e.cfg.Dual.GPrime.HasEdge(b.Sender, to) {
			panic(fmt.Sprintf("mac: delivery %d→%d without a G' edge", b.Sender, to))
		}
		if b.WasDelivered(to) {
			panic(fmt.Sprintf("mac: duplicate delivery of instance %d to %d", b.ID, to))
		}
		e.checkDeliveryTerm(b, now)
		b.MarkDelivered(to, now, e.cfg.Dual.G.HasEdge(b.Sender, to))
	}
	if e.cfg.Owns != nil && !e.cfg.Owns(to) {
		// The receiver belongs to another engine shard: the sender-side
		// bookkeeping above (delivery slot, reliability accounting) stays —
		// it is what the ack precondition checks — but the rcv itself is
		// exported for the owning engine to replay via InjectRecv.
		e.cfg.Export(now, to, b.ID, b.Sender, b.Payload)
		return
	}
	if e.recording() {
		e.emit("rcv", to, Int(int64(b.ID)))
	}
	ns := e.node(to)
	ns.automaton.Recv(ns, Message{Instance: b.ID, Sender: b.Sender, Payload: b.Payload})
}

// checkDeliveryTerm enforces the termination-related receive-correctness
// conditions shared by both Deliver paths.
//amac:hotpath
func (e *Engine) checkDeliveryTerm(b *Instance, now sim.Time) {
	switch b.Term {
	case Acked:
		panic(fmt.Sprintf("mac: delivery of instance %d after its ack", b.ID))
	case Aborted:
		if now > b.TermAt+e.cfg.EpsAbort {
			panic(fmt.Sprintf("mac: delivery of instance %d %v after abort (eps=%v)",
				b.ID, now-b.TermAt, e.cfg.EpsAbort))
		}
	}
}

// Ack performs the acknowledgment for b. The engine enforces
// acknowledgment correctness (every G-neighbor of the sender has received
// b) and the acknowledgment bound (now ≤ start + Fack).
//amac:hotpath
func (e *Engine) Ack(b *Instance) {
	if b.Term != Active {
		panic(fmt.Sprintf("mac: double termination of instance %d", b.ID))
	}
	now := e.sim.Now()
	if now > b.Start+e.cfg.Fack {
		panic(fmt.Sprintf("mac: ack of instance %d at %v violates Fack bound (start %v, Fack %v)",
			b.ID, now, b.Start, e.cfg.Fack))
	}
	if !b.AllReliableDelivered() {
		for _, v := range e.cfg.Dual.G.Neighbors(b.Sender) {
			if !b.WasDelivered(v) {
				panic(fmt.Sprintf("mac: ack of instance %d before G-neighbor %d received", b.ID, v))
			}
		}
	}
	b.Term = Acked
	b.TermAt = now
	ns := e.node(b.Sender)
	if ns.pending != b {
		panic(fmt.Sprintf("mac: ack for instance %d which is not pending at %d", b.ID, b.Sender))
	}
	ns.pending = nil
	if e.recording() {
		e.emit("ack", b.Sender, Int(int64(b.ID)))
	}
	ns.automaton.Acked(ns, Message{Instance: b.ID, Sender: b.Sender, Payload: b.Payload})
}

// --- nodeState: the Context / EnhancedContext implementation ---

// ID returns the node's identifier.
func (ns *nodeState) ID() NodeID { return ns.id }

// N returns the network size.
func (ns *nodeState) N() int { return ns.eng.cfg.Dual.N() }

// Bcast initiates an acknowledged local broadcast of payload.
func (ns *nodeState) Bcast(payload Payload) {
	if ns.pending != nil {
		panic(fmt.Sprintf("mac: node %d bcast while instance %d pending (user well-formedness)",
			ns.id, ns.pending.ID))
	}
	e := ns.eng
	var b *Instance
	if e.arena != nil {
		b = e.arena.instance(e.nextID, ns.id, payload, e.sim.Now())
	} else {
		b = NewInstance(e.nextID, ns.id, payload, e.sim.Now(),
			e.cfg.Dual.GPrime.Neighbors(ns.id), e.cfg.Dual.G.Degree(ns.id))
	}
	e.nextID++
	e.insts = append(e.insts, b)
	ns.pending = b
	if e.recording() {
		e.emit("bcast", ns.id, Int(int64(b.ID)))
	}
	e.cfg.Scheduler.OnBcast(b)
}

// Pending reports whether a broadcast awaits termination.
func (ns *nodeState) Pending() bool { return ns.pending != nil }

// GNeighbors returns the node's reliable neighbors.
func (ns *nodeState) GNeighbors() []NodeID {
	return ns.eng.cfg.Dual.G.Neighbors(ns.id)
}

// GPrimeNeighbors returns the node's G′ neighbors.
func (ns *nodeState) GPrimeNeighbors() []NodeID {
	return ns.eng.cfg.Dual.GPrime.Neighbors(ns.id)
}

// Rand returns the node's private random stream (forked on first use; on a
// warm arena, re-seeded in place on first use after each acquisition).
func (ns *nodeState) Rand() *rand.Rand {
	if ns.rng == nil {
		ns.rng = ns.eng.sim.Fork(int64(ns.id))
	} else if ns.rngSeen != ns.eng.rngEpoch {
		ns.eng.sim.Reseed(ns.rng, int64(ns.id))
	}
	ns.rngSeen = ns.eng.rngEpoch
	return ns.rng
}

// Emit appends an algorithm-level trace event attributed to this node.
func (ns *nodeState) Emit(kind string, arg Payload) { ns.eng.emit(kind, ns.id, arg) }

func (ns *nodeState) requireEnhanced(op string) {
	if ns.eng.cfg.Mode != Enhanced {
		panic(fmt.Sprintf("mac: %s requires the enhanced abstract MAC layer", op))
	}
}

// Now returns the current time (enhanced mode only).
func (ns *nodeState) Now() sim.Time {
	ns.requireEnhanced("Now")
	return ns.eng.sim.Now()
}

// Fack returns the acknowledgment bound (enhanced mode only).
func (ns *nodeState) Fack() sim.Time {
	ns.requireEnhanced("Fack")
	return ns.eng.cfg.Fack
}

// Fprog returns the progress bound (enhanced mode only).
func (ns *nodeState) Fprog() sim.Time {
	ns.requireEnhanced("Fprog")
	return ns.eng.cfg.Fprog
}

// SetTimer schedules a Timer callback (enhanced mode only).
func (ns *nodeState) SetTimer(d sim.Duration, tag any) sim.Handle {
	ns.requireEnhanced("SetTimer")
	if _, ok := ns.automaton.(TimerHandler); !ok {
		panic(fmt.Sprintf("mac: node %d sets a timer but does not implement TimerHandler", ns.id))
	}
	e := ns.eng
	return e.sim.Post(e.sim.Now()+d, evTimer, tag, int64(ns.id), 0)
}

// Abort aborts the pending broadcast (enhanced mode only); no-op if none.
func (ns *nodeState) Abort() {
	ns.requireEnhanced("Abort")
	b := ns.pending
	if b == nil {
		return
	}
	b.Term = Aborted
	b.TermAt = ns.eng.sim.Now()
	ns.pending = nil
	ns.eng.emit("abort", ns.id, Int(int64(b.ID)))
	ns.eng.cfg.Scheduler.OnAbort(b)
}
