package mac_test

import (
	"testing"

	"amac/internal/mac"
	"amac/internal/sim"
	"amac/internal/topology"
)

// echoAutomaton broadcasts one payload at wakeup and records what it sees.
type echoAutomaton struct {
	payload  mac.Payload
	recvs    []mac.Message
	acks     int
	arriveds []mac.Payload
}

func (e *echoAutomaton) Wakeup(ctx mac.Context) {
	if !e.payload.IsZero() {
		ctx.Bcast(e.payload)
	}
}
func (e *echoAutomaton) Recv(_ mac.Context, m mac.Message)   { e.recvs = append(e.recvs, m) }
func (e *echoAutomaton) Acked(_ mac.Context, _ mac.Message)  { e.acks++ }
func (e *echoAutomaton) Arrive(_ mac.Context, p mac.Payload) { e.arriveds = append(e.arriveds, p) }

// directScheduler delivers to all G-neighbors after one tick and acks after
// two; unreliable edges never fire.
type directScheduler struct{ api mac.API }

func (d *directScheduler) Name() string          { return "direct" }
func (d *directScheduler) Attach(api mac.API)    { d.api = api }
func (d *directScheduler) OnAbort(*mac.Instance) {}
func (d *directScheduler) OnBcast(b *mac.Instance) {
	api := d.api
	now := api.Now()
	for _, j := range api.Dual().G.Neighbors(b.Sender) {
		j := j
		api.At(now+1, func() { api.Deliver(b, j) })
	}
	api.At(now+2, func() {
		if b.Term == mac.Active {
			api.Ack(b)
		}
	})
}

func newTestEngine(t *testing.T, d *topology.Dual, mode mac.Mode, autos []mac.Automaton) *mac.Engine {
	t.Helper()
	return mac.NewEngine(mac.Config{
		Dual:      d,
		Fack:      100,
		Fprog:     10,
		Scheduler: &directScheduler{},
		Mode:      mode,
		Seed:      1,
	}, autos)
}

func TestEngineBroadcastDeliveryAndAck(t *testing.T) {
	d := topology.Line(3)
	a0 := &echoAutomaton{payload: mac.Ext("hello")}
	a1 := &echoAutomaton{}
	a2 := &echoAutomaton{}
	eng := newTestEngine(t, d, mac.Standard, []mac.Automaton{a0, a1, a2})
	eng.Start()
	eng.Run()

	if len(a1.recvs) != 1 || a1.recvs[0].Payload != mac.Ext("hello") {
		t.Fatalf("node 1 recvs = %v", a1.recvs)
	}
	if len(a2.recvs) != 0 {
		t.Fatalf("node 2 should not receive (not a neighbor): %v", a2.recvs)
	}
	if a0.acks != 1 {
		t.Fatalf("sender acks = %d, want 1", a0.acks)
	}
	insts := eng.Instances()
	if len(insts) != 1 || insts[0].Term != mac.Acked {
		t.Fatalf("instances = %+v", insts)
	}
}

func TestEngineWellFormednessPanic(t *testing.T) {
	// A node broadcasting while pending must panic (user well-formedness).
	d := topology.Line(2)
	bad := &doubleBcast{}
	eng := newTestEngine(t, d, mac.Standard, []mac.Automaton{bad, &echoAutomaton{}})
	defer func() {
		if recover() == nil {
			t.Fatal("double bcast did not panic")
		}
	}()
	eng.Start()
	eng.Run()
}

type doubleBcast struct{}

func (d *doubleBcast) Wakeup(ctx mac.Context) {
	ctx.Bcast(mac.Ext("a"))
	ctx.Bcast(mac.Ext("b"))
}
func (d *doubleBcast) Recv(mac.Context, mac.Message)  {}
func (d *doubleBcast) Acked(mac.Context, mac.Message) {}

func TestEngineStandardModeRejectsEnhancedOps(t *testing.T) {
	d := topology.Line(2)
	sneaky := &clockPeeker{}
	eng := newTestEngine(t, d, mac.Standard, []mac.Automaton{sneaky, &echoAutomaton{}})
	defer func() {
		if recover() == nil {
			t.Fatal("standard-mode Now() did not panic")
		}
	}()
	eng.Start()
	eng.Run()
}

type clockPeeker struct{}

func (c *clockPeeker) Wakeup(ctx mac.Context) {
	_ = ctx.(mac.EnhancedContext).Now()
}
func (c *clockPeeker) Recv(mac.Context, mac.Message)  {}
func (c *clockPeeker) Acked(mac.Context, mac.Message) {}

// timerAutomaton exercises enhanced features: timers and abort.
type timerAutomaton struct {
	fired   []any
	aborted bool
}

func (ta *timerAutomaton) Wakeup(ctx mac.Context) {
	ec := ctx.(mac.EnhancedContext)
	ec.SetTimer(5, "five")
	ec.SetTimer(9, "nine")
	ctx.Bcast(mac.Ext("slow"))
}
func (ta *timerAutomaton) Recv(mac.Context, mac.Message)  {}
func (ta *timerAutomaton) Acked(mac.Context, mac.Message) {}
func (ta *timerAutomaton) Timer(ctx mac.EnhancedContext, tag any) {
	ta.fired = append(ta.fired, tag)
	if tag == "five" && ctx.Pending() {
		ctx.Abort()
		ta.aborted = true
	}
}

// slowScheduler never delivers or acks on its own, so only an abort can
// terminate an instance.
type slowScheduler struct{ api mac.API }

func (s *slowScheduler) Name() string          { return "slow" }
func (s *slowScheduler) Attach(api mac.API)    { s.api = api }
func (s *slowScheduler) OnBcast(*mac.Instance) {}
func (s *slowScheduler) OnAbort(*mac.Instance) {}

func TestEngineEnhancedTimersAndAbort(t *testing.T) {
	d := topology.Line(2)
	ta := &timerAutomaton{}
	eng := mac.NewEngine(mac.Config{
		Dual:      d,
		Fack:      100,
		Fprog:     10,
		Scheduler: &slowScheduler{},
		Mode:      mac.Enhanced,
		Seed:      1,
	}, []mac.Automaton{ta, &echoAutomaton{}})
	eng.Start()
	eng.Run()

	if !ta.aborted {
		t.Fatal("abort did not happen")
	}
	if len(ta.fired) != 2 || ta.fired[0] != "five" || ta.fired[1] != "nine" {
		t.Fatalf("timers fired = %v", ta.fired)
	}
	insts := eng.Instances()
	if len(insts) != 1 || insts[0].Term != mac.Aborted || insts[0].TermAt != 5 {
		t.Fatalf("instance = %+v", insts[0])
	}
}

func TestEngineArrive(t *testing.T) {
	d := topology.Line(2)
	a0 := &echoAutomaton{}
	eng := newTestEngine(t, d, mac.Standard, []mac.Automaton{a0, &echoAutomaton{}})
	eng.Start()
	eng.Arrive(0, mac.Ext("env-input"), 3)
	eng.Run()
	if len(a0.arriveds) != 1 || a0.arriveds[0] != mac.Ext("env-input") {
		t.Fatalf("arriveds = %v", a0.arriveds)
	}
}

func TestEngineDeliveryValidation(t *testing.T) {
	// A scheduler delivering over a non-edge must panic.
	d := topology.Line(3) // 0-1-2: no edge 0-2
	bad := &rogueScheduler{}
	eng := mac.NewEngine(mac.Config{
		Dual: d, Fack: 100, Fprog: 10, Scheduler: bad, Seed: 1,
	}, []mac.Automaton{&echoAutomaton{payload: mac.Ext("x")}, &echoAutomaton{}, &echoAutomaton{}})
	defer func() {
		if recover() == nil {
			t.Fatal("non-edge delivery did not panic")
		}
	}()
	eng.Start()
	eng.Run()
}

type rogueScheduler struct{ api mac.API }

func (r *rogueScheduler) Name() string       { return "rogue" }
func (r *rogueScheduler) Attach(api mac.API) { r.api = api }
func (r *rogueScheduler) OnBcast(b *mac.Instance) {
	r.api.Deliver(b, 2) // not a G' neighbor of node 0
}
func (r *rogueScheduler) OnAbort(*mac.Instance) {}

func TestEngineAckBeforeDeliveryPanics(t *testing.T) {
	d := topology.Line(2)
	bad := &eagerAcker{}
	eng := mac.NewEngine(mac.Config{
		Dual: d, Fack: 100, Fprog: 10, Scheduler: bad, Seed: 1,
	}, []mac.Automaton{&echoAutomaton{payload: mac.Ext("x")}, &echoAutomaton{}})
	defer func() {
		if recover() == nil {
			t.Fatal("premature ack did not panic")
		}
	}()
	eng.Start()
	eng.Run()
}

type eagerAcker struct{ api mac.API }

func (r *eagerAcker) Name() string            { return "eager" }
func (r *eagerAcker) Attach(api mac.API)      { r.api = api }
func (r *eagerAcker) OnBcast(b *mac.Instance) { r.api.Ack(b) }
func (r *eagerAcker) OnAbort(*mac.Instance)   {}

func TestEngineWatch(t *testing.T) {
	d := topology.Line(2)
	var kinds []string
	eng := newTestEngine(t, d, mac.Standard,
		[]mac.Automaton{&echoAutomaton{payload: mac.Ext("w")}, &echoAutomaton{}})
	eng.Watch(func(ev sim.TraceEvent) { kinds = append(kinds, ev.Kind) })
	eng.Start()
	eng.Run()
	want := []string{"bcast", "rcv", "ack"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestModeString(t *testing.T) {
	if mac.Standard.String() != "standard" || mac.Enhanced.String() != "enhanced" {
		t.Fatal("mode names wrong")
	}
}
