package mac_test

import (
	"testing"

	"amac/internal/check"
	"amac/internal/mac"
	"amac/internal/topology"
)

// lingerScheduler delivers a broadcast to G-neighbors shortly *after* the
// sender aborts it, exercising the ε_abort allowance of Section 3.2.1.
type lingerScheduler struct {
	api   mac.API
	delay int64 // ticks after bcast at which delivery happens
}

func (s *lingerScheduler) Name() string          { return "linger" }
func (s *lingerScheduler) Attach(api mac.API)    { s.api = api }
func (s *lingerScheduler) OnAbort(*mac.Instance) {}
func (s *lingerScheduler) OnBcast(b *mac.Instance) {
	api := s.api
	for _, j := range api.Dual().G.Neighbors(b.Sender) {
		j := j
		api.At(b.Start+4, func() { api.Deliver(b, j) })
	}
}

// abortEarly broadcasts at wakeup and aborts after 2 ticks — before the
// linger scheduler's delivery at +4.
type abortEarly struct{ recvd int }

func (a *abortEarly) Wakeup(ctx mac.Context) {
	ec := ctx.(mac.EnhancedContext)
	ctx.Bcast(mac.Ext("x"))
	ec.SetTimer(2, nil)
}
func (a *abortEarly) Recv(mac.Context, mac.Message)  { a.recvd++ }
func (a *abortEarly) Acked(mac.Context, mac.Message) {}
func (a *abortEarly) Timer(ctx mac.EnhancedContext, _ any) {
	ctx.Abort()
}

func TestEpsAbortAllowsLateDelivery(t *testing.T) {
	d := topology.Line(2)
	recv := &abortEarly{}
	eng := mac.NewEngine(mac.Config{
		Dual:      d,
		Fack:      100,
		Fprog:     10,
		Scheduler: &lingerScheduler{},
		Mode:      mac.Enhanced,
		Seed:      1,
		EpsAbort:  5, // delivery at +4 is 2 ticks after the abort at +2: within eps
	}, []mac.Automaton{&abortEarly{}, recv})
	eng.Start()
	eng.Run()

	insts := eng.Instances()
	if len(insts) != 2 {
		t.Fatalf("instances = %d", len(insts))
	}
	for _, b := range insts {
		if b.Term != mac.Aborted {
			t.Fatalf("instance %d should be aborted", b.ID)
		}
		if b.NumDelivered() != 1 {
			t.Fatalf("instance %d delivered to %d nodes, want 1 (within eps)", b.ID, b.NumDelivered())
		}
	}
	rep := check.All(d, insts, check.Params{Fack: 100, Fprog: 10, EpsAbort: 5, End: eng.Sim().Now()})
	if !rep.OK() {
		t.Fatalf("eps-abort execution flagged: %v", rep.Violations[0])
	}
}

func TestEpsAbortZeroRejectsLateDelivery(t *testing.T) {
	d := topology.Line(2)
	eng := mac.NewEngine(mac.Config{
		Dual:      d,
		Fack:      100,
		Fprog:     10,
		Scheduler: &lingerScheduler{},
		Mode:      mac.Enhanced,
		Seed:      1,
		// EpsAbort zero: the +4 delivery lands 2 ticks after the abort and
		// must be rejected by the engine.
	}, []mac.Automaton{&abortEarly{}, &abortEarly{}})
	defer func() {
		if recover() == nil {
			t.Fatal("late post-abort delivery did not panic with eps=0")
		}
	}()
	eng.Start()
	eng.Run()
}
