package mac_test

import (
	"testing"

	"amac/internal/mac"
	"amac/internal/topology"
)

// typedScheduler is a closure-free scheduler exercising the typed API the
// shipped schedulers use: reliable batch after one tick, ack after two.
type typedScheduler struct{ api mac.API }

func (s *typedScheduler) Name() string       { return "typed" }
func (s *typedScheduler) Attach(api mac.API) { s.api = api }
func (s *typedScheduler) OnAbort(*mac.Instance) {}
func (s *typedScheduler) OnBcast(b *mac.Instance) {
	now := s.api.Now()
	s.api.ScheduleReliableDeliveries(now+1, b)
	s.api.ScheduleAck(now+2, b)
}

// arenaConfig returns an engine config for the dual, optionally backed by
// the arena.
func arenaConfig(d *topology.Dual, a *mac.Arena, seed int64) mac.Config {
	return mac.Config{
		Dual:      d,
		Fack:      100,
		Fprog:     10,
		Scheduler: &typedScheduler{},
		Seed:      seed,
		Arena:     a,
	}
}

// floodFleet returns one broadcasting echo automaton per node.
func floodFleet(n int) []mac.Automaton {
	autos := make([]mac.Automaton, n)
	for i := range autos {
		autos[i] = &echoAutomaton{payload: i}
	}
	return autos
}

// runFlood executes one flood and renders its observable state: the trace
// plus every instance's delivery times over all nodes (exercising both
// WasDelivered and DeliveredAt on the arena's O(1) CSR path and the cold
// binary-search path alike).
func runFlood(d *topology.Dual, a *mac.Arena, seed int64) (trace string, deliveries [][]int64) {
	eng := mac.NewEngine(arenaConfig(d, a, seed), floodFleet(d.N()))
	eng.Start()
	eng.Run()
	trace = eng.Trace().String()
	for _, b := range eng.Instances() {
		row := make([]int64, d.N())
		for v := 0; v < d.N(); v++ {
			at, ok := b.DeliveredAt(mac.NodeID(v))
			if ok != b.WasDelivered(mac.NodeID(v)) {
				panic("WasDelivered and DeliveredAt disagree")
			}
			if ok {
				row[v] = int64(at) + 1
			}
		}
		deliveries = append(deliveries, row)
	}
	return trace, deliveries
}

// TestArenaEngineMatchesCold pins that executions on a warm arena are
// byte-identical to cold constructions: same trace, same per-instance
// delivery state, across repeated acquisitions of the same arena.
func TestArenaEngineMatchesCold(t *testing.T) {
	d := topology.LineRRestricted(12, 2, 1.0, nil) // p=1: deterministic G′ ⊃ G
	coldTrace, coldDel := runFlood(d, nil, 3)

	a := mac.NewArena(d)
	for round := 0; round < 3; round++ {
		trace, del := runFlood(d, a, 3)
		if trace != coldTrace {
			t.Fatalf("round %d: arena trace diverged from cold run", round)
		}
		if len(del) != len(coldDel) {
			t.Fatalf("round %d: %d instances, cold had %d", round, len(del), len(coldDel))
		}
		for i := range del {
			for v := range del[i] {
				if del[i][v] != coldDel[i][v] {
					t.Fatalf("round %d: instance %d delivery at node %d = %d, cold %d",
						round, i, v, del[i][v], coldDel[i][v])
				}
			}
		}
	}
}

// TestArenaWarmEngineConstructionAllocFree is the tentpole's construction
// guarantee: after the first execution has filled the pools, acquiring an
// engine from the arena — node states, trace, simulation engine, event
// pool — allocates nothing.
func TestArenaWarmEngineConstructionAllocFree(t *testing.T) {
	d := topology.Line(32)
	a := mac.NewArena(d)
	autos := floodFleet(d.N())

	// Warm the pools with one full execution. The scheduler is hoisted so
	// the measurement below counts only the engine's own allocations.
	cfg := arenaConfig(d, a, 1)
	eng := mac.NewEngine(cfg, autos)
	eng.Start()
	eng.Run()

	cfg.Seed = 2
	allocs := testing.AllocsPerRun(50, func() {
		mac.NewEngine(cfg, autos)
	})
	if allocs != 0 {
		t.Fatalf("warm arena engine construction allocates %.0f times, want 0", allocs)
	}
}

// TestArenaWrongDual pins the guard against running a different network on
// an arena's precomputed index.
func TestArenaWrongDual(t *testing.T) {
	a := mac.NewArena(topology.Line(8))
	other := topology.Line(8)
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine accepted an arena built for a different dual")
		}
	}()
	mac.NewEngine(arenaConfig(other, a, 1), floodFleet(8))
}

// TestArenaDeliveryValidation pins that the CSR fast path enforces the same
// receive-correctness panics as the cold path: a delivery without a G′ edge
// must still be rejected.
func TestArenaDeliveryValidation(t *testing.T) {
	d := topology.Line(4)
	a := mac.NewArena(d)
	var b *mac.Instance
	s := &hookScheduler{onBcast: func(inst *mac.Instance) { b = inst }}
	eng := mac.NewEngine(mac.Config{
		Dual: d, Fack: 100, Fprog: 10, Scheduler: s, Seed: 1, Arena: a,
	}, floodFleet(4))
	_ = eng
	eng.Start()
	eng.Sim().RunUntil(0)
	if b == nil {
		t.Fatal("no broadcast observed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arena Deliver accepted a non-G′ receiver")
		}
	}()
	eng.Deliver(b, 3) // node 0's row on a line is {1}; 3 is not a G′ neighbor
}

// hookScheduler exposes OnBcast to the test.
type hookScheduler struct {
	api     mac.API
	onBcast func(*mac.Instance)
}

func (s *hookScheduler) Name() string            { return "hook" }
func (s *hookScheduler) Attach(api mac.API)      { s.api = api }
func (s *hookScheduler) OnAbort(*mac.Instance)   {}
func (s *hookScheduler) OnBcast(b *mac.Instance) { s.onBcast(b) }
