package mac_test

import (
	"testing"

	"amac/internal/mac"
	"amac/internal/topology"
)

// typedScheduler is a closure-free scheduler exercising the typed API the
// shipped schedulers use: reliable batch after one tick, ack after two.
type typedScheduler struct{ api mac.API }

func (s *typedScheduler) Name() string       { return "typed" }
func (s *typedScheduler) Attach(api mac.API) { s.api = api }
func (s *typedScheduler) OnAbort(*mac.Instance) {}
func (s *typedScheduler) OnBcast(b *mac.Instance) {
	now := s.api.Now()
	s.api.ScheduleReliableDeliveries(now+1, b)
	s.api.ScheduleAck(now+2, b)
}

// arenaConfig returns an engine config for the dual, optionally backed by
// the arena.
func arenaConfig(d *topology.Dual, a *mac.Arena, seed int64) mac.Config {
	return mac.Config{
		Dual:      d,
		Fack:      100,
		Fprog:     10,
		Scheduler: &typedScheduler{},
		Seed:      seed,
		Arena:     a,
	}
}

// floodFleet returns one broadcasting echo automaton per node.
func floodFleet(n int) []mac.Automaton {
	autos := make([]mac.Automaton, n)
	for i := range autos {
		autos[i] = &echoAutomaton{payload: mac.Int(int64(i))}
	}
	return autos
}

// runFlood executes one flood and renders its observable state: the trace
// plus every instance's delivery times over all nodes (exercising both
// WasDelivered and DeliveredAt on the arena's O(1) CSR path and the cold
// binary-search path alike).
func runFlood(d *topology.Dual, a *mac.Arena, seed int64) (trace string, deliveries [][]int64) {
	eng := mac.NewEngine(arenaConfig(d, a, seed), floodFleet(d.N()))
	eng.Start()
	eng.Run()
	trace = eng.Trace().String()
	for _, b := range eng.Instances() {
		row := make([]int64, d.N())
		for v := 0; v < d.N(); v++ {
			at, ok := b.DeliveredAt(mac.NodeID(v))
			if ok != b.WasDelivered(mac.NodeID(v)) {
				panic("WasDelivered and DeliveredAt disagree")
			}
			if ok {
				row[v] = int64(at) + 1
			}
		}
		deliveries = append(deliveries, row)
	}
	return trace, deliveries
}

// TestArenaEngineMatchesCold pins that executions on a warm arena are
// byte-identical to cold constructions: same trace, same per-instance
// delivery state, across repeated acquisitions of the same arena.
func TestArenaEngineMatchesCold(t *testing.T) {
	d := topology.LineRRestricted(12, 2, 1.0, nil) // p=1: deterministic G′ ⊃ G
	coldTrace, coldDel := runFlood(d, nil, 3)

	a := mac.NewArena(d)
	for round := 0; round < 3; round++ {
		trace, del := runFlood(d, a, 3)
		if trace != coldTrace {
			t.Fatalf("round %d: arena trace diverged from cold run", round)
		}
		if len(del) != len(coldDel) {
			t.Fatalf("round %d: %d instances, cold had %d", round, len(del), len(coldDel))
		}
		for i := range del {
			for v := range del[i] {
				if del[i][v] != coldDel[i][v] {
					t.Fatalf("round %d: instance %d delivery at node %d = %d, cold %d",
						round, i, v, del[i][v], coldDel[i][v])
				}
			}
		}
	}
}

// TestArenaWarmEngineConstructionAllocFree is the tentpole's construction
// guarantee: after the first execution has filled the pools, acquiring an
// engine from the arena — node states, trace, simulation engine, event
// pool — allocates nothing.
func TestArenaWarmEngineConstructionAllocFree(t *testing.T) {
	d := topology.Line(32)
	a := mac.NewArena(d)
	autos := floodFleet(d.N())

	// Warm the pools with one full execution. The scheduler is hoisted so
	// the measurement below counts only the engine's own allocations.
	cfg := arenaConfig(d, a, 1)
	eng := mac.NewEngine(cfg, autos)
	eng.Start()
	eng.Run()

	cfg.Seed = 2
	allocs := testing.AllocsPerRun(50, func() {
		mac.NewEngine(cfg, autos)
	})
	if allocs != 0 {
		t.Fatalf("warm arena engine construction allocates %.0f times, want 0", allocs)
	}
}

// TestArenaWrongDual pins the guard against running a different network on
// an arena's precomputed index.
func TestArenaWrongDual(t *testing.T) {
	a := mac.NewArena(topology.Line(8))
	other := topology.Line(8)
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine accepted an arena built for a different dual")
		}
	}()
	mac.NewEngine(arenaConfig(other, a, 1), floodFleet(8))
}

// TestArenaDeliveryValidation pins that the CSR fast path enforces the same
// receive-correctness panics as the cold path: a delivery without a G′ edge
// must still be rejected.
func TestArenaDeliveryValidation(t *testing.T) {
	d := topology.Line(4)
	a := mac.NewArena(d)
	var b *mac.Instance
	s := &hookScheduler{onBcast: func(inst *mac.Instance) { b = inst }}
	eng := mac.NewEngine(mac.Config{
		Dual: d, Fack: 100, Fprog: 10, Scheduler: s, Seed: 1, Arena: a,
	}, floodFleet(4))
	_ = eng
	eng.Start()
	eng.Sim().RunUntil(0)
	if b == nil {
		t.Fatal("no broadcast observed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arena Deliver accepted a non-G′ receiver")
		}
	}()
	eng.Deliver(b, 3) // node 0's row on a line is {1}; 3 is not a G′ neighbor
}

// hookScheduler exposes OnBcast to the test.
type hookScheduler struct {
	api     mac.API
	onBcast func(*mac.Instance)
}

func (s *hookScheduler) Name() string            { return "hook" }
func (s *hookScheduler) Attach(api mac.API)      { s.api = api }
func (s *hookScheduler) OnAbort(*mac.Instance)   {}
func (s *hookScheduler) OnBcast(b *mac.Instance) { s.onBcast(b) }

// TestArenaRebindMatchesCold pins the unpinned-sweep contract: one arena
// rebound across different networks (sizes and G′ shapes) replays each
// network's cold execution byte for byte, including a rebind back to an
// earlier network.
func TestArenaRebindMatchesCold(t *testing.T) {
	duals := []*topology.Dual{
		topology.LineRRestricted(12, 2, 1.0, nil),
		topology.Line(20),
		topology.LineRRestricted(7, 3, 1.0, nil),
		topology.LineRRestricted(12, 2, 1.0, nil),
	}
	a := mac.NewArena(duals[0])
	for i, d := range duals {
		coldTrace, coldDel := runFlood(d, nil, int64(i+3))
		a.Rebind(d)
		trace, del := runFlood(d, a, int64(i+3))
		if trace != coldTrace {
			t.Fatalf("dual %d (%s): rebound arena trace diverged from cold run", i, d.Name)
		}
		for bi := range del {
			for v := range del[bi] {
				if del[bi][v] != coldDel[bi][v] {
					t.Fatalf("dual %d: instance %d delivery at node %d = %d, cold %d",
						i, bi, v, del[bi][v], coldDel[bi][v])
				}
			}
		}
	}
}

// TestArenaRebindCapacityFitAllocFree pins satellite coverage of the reuse
// path: rebinding between two same-shaped networks, once warm, allocates no
// CSR storage at all — the position map is refilled into its buckets and
// the delivery block is kept.
func TestArenaRebindCapacityFitAllocFree(t *testing.T) {
	d1 := topology.Line(24)
	d2 := topology.Line(24)
	a := mac.NewArena(d1)
	runFlood(d1, a, 1)
	a.Rebind(d2)
	runFlood(d2, a, 1)
	allocs := testing.AllocsPerRun(20, func() {
		a.Rebind(d1)
		a.Rebind(d2)
	})
	if allocs != 0 {
		t.Fatalf("capacity-fit Rebind allocates %.0f times, want 0", allocs)
	}
	if a.Cap() == 0 {
		t.Fatal("delivery block was dropped by Rebind")
	}
}

// TestArenaRebindGrowsGeometrically pins the block growth policy: a rebind
// whose degree sum exceeds the block doubles it (at least), so alternating
// between network sizes settles instead of reallocating every trial; a
// rebind that fits keeps the block.
func TestArenaRebindGrowsGeometrically(t *testing.T) {
	seed := topology.Line(8)
	a := mac.NewArena(seed)
	runFlood(seed, a, 1) // block warms to the 8-line's 14 arcs
	cap0 := a.Cap()
	if cap0 == 0 {
		t.Fatal("flood did not warm the delivery block")
	}

	small := topology.Line(5)
	a.Rebind(small)
	if a.Cap() != cap0 {
		t.Fatalf("fitting rebind resized the block: %d -> %d", cap0, a.Cap())
	}

	big := topology.Line(cap0) // 2(cap0-1) arcs: exceeds cap0, under 2×
	a.Rebind(big)
	if a.Cap() < 2*cap0 {
		t.Fatalf("growth is not geometric: cap %d -> %d, want >= %d", cap0, a.Cap(), 2*cap0)
	}

	huge := topology.Line(4 * cap0) // demand beyond 2×: grows to exact need
	a.Rebind(huge)
	if want := 2 * (4*cap0 - 1); a.Cap() != want {
		t.Fatalf("oversized rebind cap = %d, want the exact demand %d", a.Cap(), want)
	}
}

// TestArenaRebindClearsOverflow pins that checker-injected overflow marks on
// a pooled instance record never leak into the instances of a later run on
// a rebound arena.
func TestArenaRebindClearsOverflow(t *testing.T) {
	d1 := topology.Line(4)
	a := mac.NewArena(d1)
	var captured *mac.Instance
	s := &hookScheduler{onBcast: func(inst *mac.Instance) {
		if captured == nil {
			captured = inst
		}
	}}
	eng := mac.NewEngine(mac.Config{Dual: d1, Fack: 100, Fprog: 10, Scheduler: s, Seed: 1, Arena: a}, floodFleet(4))
	eng.Start()
	eng.Sim().RunUntil(0)
	if captured == nil {
		t.Fatal("no broadcast observed")
	}
	// Poison the pooled record through both overflow routes: a non-neighbor
	// mark and a negative-time mark.
	captured.MarkDelivered(3, 5, false)
	captured.MarkDelivered(1, -5, true)
	if !captured.WasDelivered(3) || !captured.WasDelivered(1) {
		t.Fatal("overflow marks not recorded")
	}

	d2 := topology.Line(4)
	a.Rebind(d2)
	var fresh *mac.Instance
	s2 := &hookScheduler{onBcast: func(inst *mac.Instance) {
		if fresh == nil {
			fresh = inst
		}
	}}
	eng = mac.NewEngine(mac.Config{Dual: d2, Fack: 100, Fprog: 10, Scheduler: s2, Seed: 1, Arena: a}, floodFleet(4))
	eng.Start()
	eng.Sim().RunUntil(0)
	if fresh == nil {
		t.Fatal("no broadcast observed after rebind")
	}
	if fresh != captured {
		t.Fatal("instance record was not recycled — the leak path is untested")
	}
	for v := 0; v < 4; v++ {
		if fresh.WasDelivered(mac.NodeID(v)) {
			t.Fatalf("overflow state leaked across Rebind: node %d reads delivered", v)
		}
	}
	if fresh.NumDelivered() != 0 {
		t.Fatalf("recycled instance reports %d deliveries", fresh.NumDelivered())
	}
}

// TestArenaRebindFork pins that rebinding a forked arena does not corrupt
// the prototype's shared CSR index: the fork re-derives its own.
func TestArenaRebindFork(t *testing.T) {
	d1 := topology.LineRRestricted(10, 2, 1.0, nil)
	proto := mac.NewArena(d1)
	protoTrace, _ := runFlood(d1, proto, 2)

	fork := proto.Fork()
	d2 := topology.Line(6)
	fork.Rebind(d2)
	coldTrace, _ := runFlood(d2, nil, 2)
	if trace, _ := runFlood(d2, fork, 2); trace != coldTrace {
		t.Fatal("rebound fork diverged from cold run")
	}
	// The prototype must still replay its own network untouched.
	if trace, _ := runFlood(d1, proto, 2); trace != protoTrace {
		t.Fatal("rebinding a fork corrupted the prototype's shared CSR index")
	}
}

// TestArenaPrototypeRebindFork is the mirror of TestArenaRebindFork:
// rebinding the prototype after forking must not refill the CSR index its
// forks still read.
func TestArenaPrototypeRebindFork(t *testing.T) {
	d1 := topology.LineRRestricted(10, 2, 1.0, nil)
	proto := mac.NewArena(d1)
	forkWant, _ := runFlood(d1, nil, 2)

	fork := proto.Fork()
	d2 := topology.Line(6)
	proto.Rebind(d2)
	coldTrace, _ := runFlood(d2, nil, 2)
	if trace, _ := runFlood(d2, proto, 2); trace != coldTrace {
		t.Fatal("rebound prototype diverged from cold run")
	}
	// The fork must still replay the original network untouched.
	if trace, _ := runFlood(d1, fork, 2); trace != forkWant {
		t.Fatal("rebinding the prototype corrupted the fork's shared CSR index")
	}
}
