// Package mac implements the paper's abstract MAC layer models (Section 2):
// an acknowledged local broadcast service over a dual graph (G, G′) with
// per-execution timing constants Fack and Fprog, in both the standard
// variant (event-driven automata with no clock access) and the enhanced
// variant (timers, knowledge of Fack/Fprog, and an abort interface).
//
// Non-determinism — which G′\G neighbors receive each message, the order of
// receive events, and all timing within the bounds — is delegated to a
// pluggable Scheduler (package sched provides benign, contention-based and
// adversarial implementations). The engine records every broadcast instance
// so package check can verify the model guarantees (receive correctness,
// acknowledgment correctness, termination, and both time bounds) after a
// run.
package mac

import (
	"fmt"
	"math/rand"

	"amac/internal/graph"
	"amac/internal/sim"
)

// NodeID aliases graph.NodeID; nodes are dense integers in [0, n).
type NodeID = graph.NodeID

// InstanceID uniquely identifies one broadcast instance (one bcast event
// and all rcv/ack/abort events caused by it). The paper assumes all local
// broadcast messages are unique; instance IDs realize that assumption.
type InstanceID int64

// Payload aliases sim.Payload: the typed message representation broadcasts,
// arrivals and trace events carry. Algorithms register their own kinds via
// sim.RegisterPayloadKind; Ext wraps arbitrary values for tests and bespoke
// automata.
type Payload = sim.Payload

// Ext wraps an arbitrary value as an escape-hatch payload (boxes like the
// old any path; hot paths use registered kinds).
func Ext(v any) Payload { return sim.Ext(v) } //lint:payloadbox re-export of the documented escape hatch for tests and bespoke automata

// Int wraps a bare integer payload.
func Int(v int64) Payload { return sim.Int(v) }

// Message is what a receiver sees: the payload together with the sending
// node and the instance that carried it.
type Message struct {
	Instance InstanceID
	Sender   NodeID
	Payload  Payload
}

// Mode selects which abstract MAC layer variant the engine exposes.
type Mode int

const (
	// Standard is the standard abstract MAC layer: event-driven automata,
	// no clock access, no abort.
	Standard Mode = iota + 1
	// Enhanced adds time (timers), knowledge of Fack and Fprog, and the
	// abort interface (Section 4).
	Enhanced
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Standard:
		return "standard"
	case Enhanced:
		return "enhanced"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Context is the interface the standard abstract MAC layer presents to a
// node automaton. All methods must be called only from within automaton
// callbacks (the engine is single-threaded).
type Context interface {
	// ID returns the node's unique identifier.
	ID() NodeID
	// N returns the network size n (nodes know n, as required by the
	// paper's w.h.p. guarantees).
	N() int
	// Bcast initiates an acknowledged local broadcast. User
	// well-formedness (Section 3.2.1) requires no broadcast be pending;
	// violating that panics.
	Bcast(payload Payload)
	// Pending reports whether a broadcast awaits its ack/abort.
	Pending() bool
	// GNeighbors returns the node's reliable neighbors (sorted). Nodes can
	// distinguish G from G′ neighbors, as justified in Section 2.
	GNeighbors() []NodeID
	// GPrimeNeighbors returns the node's G′ neighbors (sorted).
	GPrimeNeighbors() []NodeID
	// Rand returns this node's deterministic private random stream.
	Rand() *rand.Rand
	// Emit appends an algorithm-level event to the execution trace.
	Emit(kind string, arg Payload)
}

// EnhancedContext extends Context with the extra powers of the enhanced
// abstract MAC layer. Calling these in Standard mode panics.
type EnhancedContext interface {
	Context
	// Now returns the current virtual time.
	Now() sim.Time
	// Fack returns the execution's acknowledgment bound.
	Fack() sim.Time
	// Fprog returns the execution's progress bound.
	Fprog() sim.Time
	// SetTimer schedules a Timer callback d ticks from now carrying tag.
	SetTimer(d sim.Duration, tag any) sim.Handle
	// Abort aborts the pending broadcast; no-op if none is pending.
	Abort()
}

// Automaton is a node program for the standard layer. Implementations
// receive an EnhancedContext when the engine runs in Enhanced mode (the
// static type is Context; type-assert or use the helpers in this package).
type Automaton interface {
	// Wakeup fires once per node at time zero, before any other event.
	Wakeup(ctx Context)
	// Recv delivers a message from the MAC layer.
	Recv(ctx Context, m Message)
	// Acked reports completion of the node's current broadcast.
	Acked(ctx Context, m Message)
}

// Arriver is implemented by automata that accept environment inputs
// (the MMB arrive(m) event).
type Arriver interface {
	Arrive(ctx Context, payload Payload)
}

// Resettable is implemented by automata that can restore themselves to
// their initial, pre-Wakeup state. Fleets of resettable automata are reused
// across repeated executions on a warm Arena instead of being rebuilt per
// trial; Reset must leave the automaton observably indistinguishable from a
// freshly constructed one, so executions are identical either way.
type Resettable interface {
	Reset()
}

// TimerHandler is implemented by enhanced-model automata that set timers.
type TimerHandler interface {
	Timer(ctx EnhancedContext, tag any)
}

// Status classifies a broadcast instance's terminating event.
type Status int

const (
	// Active means the instance has not yet been acked or aborted.
	Active Status = iota
	// Acked means the instance terminated with an acknowledgment.
	Acked
	// Aborted means the sender aborted the instance.
	Aborted
)

// Instance records one broadcast instance: the bcast event and everything
// the cause function maps to it. Checkers consume these records.
//
// Delivery state is degree-indexed, CSR style: the instance shares the
// sender's sorted G′ adjacency row with the topology and keeps one rcv time
// per neighbor slot, so per-instance memory is O(deg′(sender)) — O(m) over
// any workload — instead of the dense O(n) slice that dominated memory on
// large sparse networks. Lookups binary-search the row (O(log d)); the
// remaining-reliable counter keeps the ack-readiness check O(1). Marks
// addressed outside the row (checkers deliberately build invalid histories)
// spill into a lazily allocated overflow map that real executions never
// touch. Construct instances with NewInstance and record deliveries with
// MarkDelivered.
type Instance struct {
	ID      InstanceID
	Sender  NodeID
	Payload Payload
	Start   sim.Time
	// TermAt is the time of the terminating event (ack or abort);
	// meaningful only when Term != Active.
	TermAt sim.Time
	Term   Status

	// nbrs is the sender's sorted G′ neighbor row — for arena-built
	// instances, a zero-copy subslice of the graph's flat CSR arc array.
	nbrs []NodeID
	// deliveredAt[i] is the rcv time at nbrs[i] plus one; zero means not
	// delivered. The +1 bias lets the slice start as plain zeroed memory
	// (real rcv times are ≥ 0), so NewInstance is a single make with no
	// fill; arena-built instances carve the row out of one flat pre-zeroed
	// block instead.
	deliveredAt []sim.Time
	// csr, when non-nil, is the arena's shared delivery index; base is the
	// sender's row offset into its global arc array, so slot s of this
	// instance is global arc base+s — where the reliability bit lives.
	csr  *csrIndex
	base int32
	// overflow records marks outside the row's domain — nodes that are not
	// G′ neighbors, or negative rcv times, both only constructible by
	// checker tests building invalid histories; nil in every real
	// execution. Values carry the same +1 bias as the row, but lookups are
	// existence-based so a delivery at time −1 (biased to 0) is still
	// distinguishable from "never delivered".
	overflow map[NodeID]sim.Time
	// grey holds the drawn unreliable targets of a pending batch delivery
	// (see API.ScheduleGreyDeliveries).
	grey []NodeID
	// greybuf is the reusable backing store schedulers draw grey targets
	// into (GreyBuf). Its capacity survives the batch firing and arena
	// instance recycling, so steady-state grey draws allocate nothing.
	greybuf []NodeID
	// receivers lists delivered nodes in delivery order.
	receivers []NodeID
	// remainingReliable counts the sender's G-neighbors yet to receive.
	remainingReliable int
}

// NewInstance returns an instance record for a sender whose sorted G′
// adjacency row is gPrimeNbrs (shared, not copied) and who has reliableDeg
// G-neighbors. A nil row is legal and routes every mark through the
// overflow map — checker tests building histories without a topology use
// that.
func NewInstance(id InstanceID, sender NodeID, payload Payload, start sim.Time, gPrimeNbrs []NodeID, reliableDeg int) *Instance {
	return &Instance{
		ID:                id,
		Sender:            sender,
		Payload:           payload,
		Start:             start,
		nbrs:              gPrimeNbrs,
		deliveredAt:       make([]sim.Time, len(gPrimeNbrs)),
		remainingReliable: reliableDeg,
	}
}

// slot returns the index of to in the sender's sorted neighbor row, or -1,
// by binary search — with or without an arena, since arena instances share
// the graph's own row and need no separate position table. Rows are node
// degrees, so the search is a handful of comparisons on the sparse
// networks the model studies.
func (b *Instance) slot(to NodeID) int {
	lo, hi := 0, len(b.nbrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.nbrs[mid] < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(b.nbrs) && b.nbrs[lo] == to {
		return lo
	}
	return -1
}

// MarkDelivered records the rcv of the instance at node to at time at.
// reliable marks a delivery to a G-neighbor of the sender, decrementing the
// counter AllReliableDelivered consults. It performs no model validation
// (mac.Engine.Deliver does; checkers deliberately build invalid histories)
// but panics on duplicates, which every caller is expected to screen out.
// Negative times — constructible only by checkers, since the engine's clock
// never goes below zero — are routed through the overflow map, whose
// existence-based lookups survive the +1 bias collapsing at+1 to zero.
func (b *Instance) MarkDelivered(to NodeID, at sim.Time, reliable bool) {
	s := b.slot(to)
	// The duplicate check spans both domains with the one slot lookup
	// above: a node may have been marked through either its row (real
	// time) or the overflow map (negative time or no row slot).
	if delivered := s >= 0 && b.deliveredAt[s] != 0; delivered || b.inOverflow(to) {
		panic(fmt.Sprintf("mac: duplicate MarkDelivered of instance %d at %d", b.ID, to))
	}
	if s >= 0 && at >= 0 {
		b.deliveredAt[s] = at + 1
	} else {
		if b.overflow == nil {
			b.overflow = make(map[NodeID]sim.Time)
		}
		b.overflow[to] = at + 1
	}
	b.receivers = append(b.receivers, to)
	if reliable {
		b.remainingReliable--
	}
}

// GreyBuf returns the instance's reusable grey-target scratch buffer,
// emptied. Schedulers append their drawn unreliable targets into it and hand
// the result to API.ScheduleGreyDeliveries (which stores the possibly-grown
// slice back); the capacity survives across arena instance recycling, so a
// warm run's grey draws allocate nothing. The buffer must not be used while
// a grey batch is pending (at most one may be, and an instance broadcasts
// once, so the window cannot arise in a well-formed execution).
func (b *Instance) GreyBuf() []NodeID { return b.greybuf[:0] }

// SetGreyBuf stores a possibly-grown scratch slice back on the instance, so
// growth during a draw is retained even when the scheduler delivers the
// targets itself instead of handing them to ScheduleGreyDeliveries.
func (b *Instance) SetGreyBuf(s []NodeID) { b.greybuf = s }

// inOverflow reports whether to was marked through the overflow map.
func (b *Instance) inOverflow(to NodeID) bool {
	_, ok := b.overflow[to]
	return ok
}

// WasDelivered reports whether node to has received the instance.
func (b *Instance) WasDelivered(to NodeID) bool {
	if s := b.slot(to); s >= 0 && b.deliveredAt[s] != 0 {
		return true
	}
	return b.inOverflow(to)
}

// DeliveredAt returns the rcv time at node to, and whether it received.
func (b *Instance) DeliveredAt(to NodeID) (sim.Time, bool) {
	if s := b.slot(to); s >= 0 && b.deliveredAt[s] != 0 {
		return b.deliveredAt[s] - 1, true
	}
	if biased, ok := b.overflow[to]; ok {
		return biased - 1, true
	}
	return 0, false
}

// Receivers returns the nodes that received the instance, in delivery
// order. The slice is owned by the instance; callers must not mutate it.
func (b *Instance) Receivers() []NodeID { return b.receivers }

// NumDelivered reports how many nodes have received the instance.
func (b *Instance) NumDelivered() int { return len(b.receivers) }

// AllReliableDelivered reports whether every G-neighbor of the sender has
// received the instance — the ack-readiness condition, in O(1).
func (b *Instance) AllReliableDelivered() bool { return b.remainingReliable == 0 }

// Terminated reports whether the instance has been acked or aborted.
func (b *Instance) Terminated() bool { return b.Term != Active }
