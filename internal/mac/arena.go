package mac

import (
	"fmt"
	"sync/atomic"

	"amac/internal/sim"
	"amac/internal/topology"
)

// csrIndex is the per-topology delivery index an Arena derives from the
// dual once and shares, read-only, with every instance of every execution
// on that topology. It no longer stores positions at all: off and arcs
// alias G′'s own flat CSR adjacency (graph.Graph stores one arc array for
// the whole graph), so a sender's delivery row and its slot numbering are
// literally the graph's — the only derived state is one reliability bit
// per directed arc (is the arc also a G edge), packed into a bitset
// indexed by global arc position. Rebind refreshes the aliases and
// recomputes the bitset with one merge walk of the G and G′ rows, O(m+m′),
// instead of refilling a 2m′-entry hash map — at million-node scale the
// map alone was hundreds of megabytes.
type csrIndex struct {
	// off/arcs alias G′'s CSR storage (graph.CSR); row u is
	// arcs[off[u]:off[u+1]], sorted. Invalidated if the graph mutates —
	// the arena rebinds before any such graph is run again.
	off  []int32
	arcs []NodeID
	// reliable bit i is set when directed arc i (global position in arcs)
	// is also a G edge.
	reliable []uint64
	// arcCount is the total directed-arc count 2m′ — the delivery block's
	// growth floor (one row per node's first broadcast is exactly one
	// full arc space).
	arcCount int
}

func newCSRIndex(d *topology.Dual) *csrIndex {
	idx := &csrIndex{}
	idx.fill(d)
	return idx
}

// fill derives the index from d into existing storage: the adjacency
// aliases are reassigned and the reliability bitset is rebuilt in place
// (reallocated only when the arc count grew), so rebinding to a network of
// similar size allocates nothing.
func (idx *csrIndex) fill(d *topology.Dual) {
	gOff, gArcs := d.G.CSR()
	pOff, pArcs := d.GPrime.CSR()
	idx.off, idx.arcs = pOff, pArcs
	idx.arcCount = len(pArcs)
	words := (len(pArcs) + 63) / 64
	if cap(idx.reliable) < words {
		idx.reliable = make([]uint64, words)
	} else {
		idx.reliable = idx.reliable[:words]
		clear(idx.reliable)
	}
	for u := 0; u < d.N(); u++ {
		gi, ge := int(gOff[u]), int(gOff[u+1])
		pi, pe := int(pOff[u]), int(pOff[u+1])
		for gi < ge && pi < pe {
			switch {
			case gArcs[gi] == pArcs[pi]:
				idx.reliable[pi>>6] |= 1 << (uint(pi) & 63)
				gi++
				pi++
			case gArcs[gi] < pArcs[pi]:
				gi++ // G arc missing from G′: Validate rejects such duals
			default:
				pi++
			}
		}
	}
}

// isReliable reports whether global arc position i is a G edge.
func (idx *csrIndex) isReliable(i int32) bool {
	return idx.reliable[i>>6]&(1<<(uint(i)&63)) != 0
}

// Arena owns the reusable run state for repeated executions on one pinned
// dual network: the precomputed CSR position index, a single flat backing
// block that all instance delivery rows are carved from, the pooled
// broadcast-instance records, the per-node engine state and the simulation
// engine itself (whose event pool stays warm across runs). Passing an Arena
// through Config makes the second and later engines on the same topology
// allocation-free to construct and run trials against warm storage.
//
// An Arena serves one execution at a time: acquiring a new engine (via
// NewEngine with Config.Arena set) recycles everything the previous
// execution allocated, including the engine exposed through its results. It
// is not safe for concurrent use — parallel trial pools hold one Arena per
// worker.
type Arena struct {
	dual *topology.Dual
	csr  *csrIndex
	// csrShared marks a position index inherited from Fork: read-only for
	// this arena, so Rebind must replace it instead of refilling in place.
	// forked marks the other direction — this arena has handed its index to
	// forks — with the same copy-on-rebind consequence. It is atomic only
	// so Fork keeps its concurrent-call guarantee.
	csrShared bool
	forked    atomic.Bool
	eng       *Engine

	// block is the flat CSR delivery storage: every instance's deliveredAt
	// row is block[used:used+deg]. Reset zeroes the used prefix instead of
	// reallocating, so warm runs write into recycled memory.
	block []sim.Time
	used  int

	// insts pools the instance records of past runs (pointers are stable;
	// the structs are recycled field-by-field, keeping their receivers
	// capacity). next is the reuse cursor of the current run.
	insts []*Instance
	next  int
}

// NewArena builds the reusable run state for the given dual network. It
// panics on an invalid dual, exactly like NewEngine (which then skips
// re-validation for arena-backed configurations).
func NewArena(d *topology.Dual) *Arena {
	if d == nil {
		panic("mac: nil dual")
	}
	if err := d.Validate(); err != nil {
		panic(fmt.Sprintf("mac: invalid dual: %v", err))
	}
	return &Arena{dual: d, csr: newCSRIndex(d)}
}

// Dual returns the network the arena was built for.
func (a *Arena) Dual() *topology.Dual { return a.dual }

// Fork returns a sibling arena for the same dual: it shares the read-only
// CSR position index — built once, O(m′) — but owns fresh run storage.
// Parallel trial pools fork one prototype arena per topology instead of
// re-deriving the index per worker. Fork only reads immutable state, so it
// is safe to call from multiple goroutines.
func (a *Arena) Fork() *Arena {
	a.forked.Store(true)
	return &Arena{dual: a.dual, csr: a.csr, csrShared: true}
}

// Rebind re-targets the arena at a new dual network, recycling its warm
// storage: the CSR position index is refilled into its existing map
// buckets (replaced only when shared with forks), the flat delivery block
// is kept whenever the new degree sum fits its capacity and grown
// geometrically otherwise, and the pooled engine, instance records and
// event pool all carry over. Unpinned trial sweeps rebind one arena per
// worker to each per-trial network draw instead of building cold engines.
// Like NewArena, it panics on an invalid dual. Rebinding to the arena's
// current dual is a no-op.
func (a *Arena) Rebind(d *topology.Dual) {
	if d == a.dual {
		return
	}
	if d == nil {
		panic("mac: nil dual")
	}
	if err := d.Validate(); err != nil {
		panic(fmt.Sprintf("mac: invalid dual: %v", err))
	}
	if a.csrShared || a.forked.Load() {
		// The index is aliased across a Fork relationship (either
		// direction): refilling it in place would corrupt the other side,
		// so replace it and own the copy from here on.
		a.csr = &csrIndex{}
		a.csrShared = false
		a.forked.Store(false)
	}
	a.csr.fill(d)
	if a.csr.arcCount > len(a.block) {
		// Same growth policy as row() below — double with an arc-space
		// floor; keep the two in sync. Growing here (rather than leaving it
		// to row's lazy path) keeps used and the block consistent across
		// the network switch.
		newLen := 2 * len(a.block)
		if newLen < a.csr.arcCount {
			newLen = a.csr.arcCount
		}
		a.block = make([]sim.Time, newLen)
		a.used = 0
	}
	a.dual = d
}

// Cap returns the capacity of the flat delivery block in slots (tests use
// it to pin Rebind's geometric-growth policy).
func (a *Arena) Cap() int { return len(a.block) }

// reset recycles the storage of the previous execution: the delivery block
// is zeroed up to its high-water mark (rows are handed out pre-zeroed, like
// a fresh make) and the instance cursor rewinds.
func (a *Arena) reset() {
	clear(a.block[:a.used])
	a.used = 0
	a.next = 0
}

// row carves the next deg slots out of the flat delivery block. Growth
// doubles (with a floor of one full arc space — the exact demand of a
// single flood where every node broadcasts once), so steady state performs
// no allocation. The old contents are not copied: previously handed-out
// rows keep aliasing their original backing for the rest of the run, and
// the fresh block arrives pre-zeroed.
//amac:hotpath
func (a *Arena) row(deg int) []sim.Time {
	if need := a.used + deg; need > len(a.block) {
		newLen := 2 * len(a.block)
		if newLen < a.csr.arcCount {
			newLen = a.csr.arcCount
		}
		if newLen < need {
			newLen = need
		}
		a.block = make([]sim.Time, newLen) //lint:hotalloc doubling grow: amortized O(1) and absent entirely in warm trials, where the block is sized from the first run
	}
	r := a.block[a.used : a.used+deg : a.used+deg]
	a.used += deg
	return r
}

// instance returns a broadcast-instance record backed by arena storage: the
// delivery row comes from the flat block, the struct from the pool, and the
// neighbor row plus its base offset come straight off the graph's shared
// arc array, giving Deliver its slot and reliability bit with one binary
// search over the row.
//amac:hotpath
func (a *Arena) instance(id InstanceID, sender NodeID, payload Payload, start sim.Time) *Instance {
	base := a.csr.off[sender]
	row := a.csr.arcs[base:a.csr.off[sender+1]:a.csr.off[sender+1]]
	fresh := Instance{
		ID:                id,
		Sender:            sender,
		Payload:           payload,
		Start:             start,
		nbrs:              row,
		deliveredAt:       a.row(len(row)),
		csr:               a.csr,
		base:              base,
		remainingReliable: a.dual.G.Degree(sender),
	}
	if a.next < len(a.insts) {
		b := a.insts[a.next]
		a.next++
		fresh.receivers = b.receivers[:0]
		fresh.greybuf = b.greybuf[:0]
		*b = fresh
		return b
	}
	// new + copy rather than &fresh: taking fresh's address would force it
	// to the heap on every call, including the pooled path above.
	b := new(Instance) //lint:hotalloc pool miss: only the first run of a fleet reaches this; warm trials always hit the pooled path above
	*b = fresh
	a.insts = append(a.insts, b)
	a.next++
	return b
}

// engineFor returns the arena's engine configured for cfg: built once on
// first use, then recycled — simulation clock and event pool reset, trace
// truncated in place, node states and instance storage rewound — so warm
// acquisition allocates nothing. The caller (NewEngine) has already
// validated cfg.
func (a *Arena) engineFor(cfg Config, automata []Automaton) *Engine {
	a.reset()
	e := a.eng
	if e == nil {
		e = &Engine{
			cfg:   cfg,
			sim:   sim.NewEngine(cfg.Seed),
			arena: a,
			nodes: make([]nodeState, cfg.Dual.N()),
		}
		e.sim.SetDispatcher(e)
		a.eng = e
	} else {
		e.cfg = cfg
		e.sim.Reset(cfg.Seed)
		e.trace.Reset()
		e.insts = e.insts[:0]
		e.nextID = 0
		// Bumping the epoch marks every pooled random stream (scheduler and
		// per-node) stale: the next draw re-seeds it in place from the new
		// engine seed, so streams carry over with zero allocation and zero
		// cost when a trial never draws.
		e.rngEpoch++
		e.watchers = e.watchers[:0]
		// A rebound arena may carry a different node count; reuse the node
		// slice's capacity where it covers the new network.
		if n := cfg.Dual.N(); cap(e.nodes) >= n {
			e.nodes = e.nodes[:n]
		} else {
			e.nodes = make([]nodeState, n)
		}
	}
	e.timerSched, _ = cfg.Scheduler.(TimerScheduler)
	if cfg.TraceCap > 0 {
		e.trace.SetCap(cfg.TraceCap)
	}
	if cfg.NoTrace {
		e.trace.Disable()
	}
	for i := range e.nodes {
		ns := &e.nodes[i]
		// rng and rngSeen persist across acquisitions (the epoch bump above
		// forces a lazy re-seed); everything else is rebuilt.
		ns.eng = e
		ns.id = NodeID(i)
		ns.automaton = automata[i]
		ns.pending = nil
	}
	cfg.Scheduler.Attach(e)
	return e
}
