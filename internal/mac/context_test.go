package mac_test

import (
	"testing"

	"amac/internal/mac"
	"amac/internal/sim"
	"amac/internal/topology"
)

// introspector records everything the Context interface exposes.
type introspector struct {
	id      mac.NodeID
	n       int
	gN, gpN []mac.NodeID
	draw    int64
	emitted bool
	now     sim.Time
	fack    sim.Time
	fprog   sim.Time
}

func (in *introspector) Wakeup(ctx mac.Context) {
	in.id = ctx.ID()
	in.n = ctx.N()
	in.gN = append([]mac.NodeID(nil), ctx.GNeighbors()...)
	in.gpN = append([]mac.NodeID(nil), ctx.GPrimeNeighbors()...)
	in.draw = ctx.Rand().Int63()
	ctx.Emit("custom", mac.Ext("payload"))
	in.emitted = true
	ec := ctx.(mac.EnhancedContext)
	in.now = ec.Now()
	in.fack = ec.Fack()
	in.fprog = ec.Fprog()
}
func (in *introspector) Recv(mac.Context, mac.Message)  {}
func (in *introspector) Acked(mac.Context, mac.Message) {}

func TestContextSurface(t *testing.T) {
	d := topology.LineRRestricted(4, 2, 1.0, nil)
	in := &introspector{}
	others := []mac.Automaton{&echoAutomaton{}, &echoAutomaton{}, &echoAutomaton{}}
	eng := mac.NewEngine(mac.Config{
		Dual:      d,
		Fack:      300,
		Fprog:     30,
		Scheduler: &directScheduler{},
		Mode:      mac.Enhanced,
		Seed:      9,
	}, []mac.Automaton{others[0], in, others[1], others[2]})
	if eng.Mode() != mac.Enhanced {
		t.Fatalf("Mode = %v", eng.Mode())
	}
	eng.Start()
	eng.Run()

	if in.id != 1 || in.n != 4 {
		t.Fatalf("id=%d n=%d", in.id, in.n)
	}
	if len(in.gN) != 2 { // line neighbors 0 and 2
		t.Fatalf("GNeighbors = %v", in.gN)
	}
	if len(in.gpN) < 3 { // 2-restricted with p=1: also node 3
		t.Fatalf("GPrimeNeighbors = %v", in.gpN)
	}
	if in.now != 0 || in.fack != 300 || in.fprog != 30 {
		t.Fatalf("now=%v fack=%v fprog=%v", in.now, in.fack, in.fprog)
	}
	// The Emit landed in the trace.
	if got := eng.Trace().Filter("custom"); len(got) != 1 || got[0].Node != 1 {
		t.Fatalf("custom trace events = %v", got)
	}
}

func TestEngineHaltStopsRun(t *testing.T) {
	d := topology.Line(2)
	a := &echoAutomaton{payload: mac.Ext("x")}
	eng := newTestEngine(t, d, mac.Standard, []mac.Automaton{a, &echoAutomaton{}})
	eng.Watch(func(ev sim.TraceEvent) {
		if ev.Kind == "bcast" {
			eng.Halt()
		}
	})
	eng.Start()
	eng.Run()
	// Halted right after the bcast: no deliveries processed.
	insts := eng.Instances()
	if len(insts) != 1 || insts[0].NumDelivered() != 0 {
		t.Fatalf("run did not halt promptly: %+v", insts)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	d := topology.Line(2)
	cases := []struct {
		name string
		cfg  mac.Config
		n    int
	}{
		{"nil dual", mac.Config{Fack: 100, Fprog: 10, Scheduler: &directScheduler{}}, 2},
		{"nil scheduler", mac.Config{Dual: d, Fack: 100, Fprog: 10}, 2},
		{"tiny fprog", mac.Config{Dual: d, Fack: 100, Fprog: 1, Scheduler: &directScheduler{}}, 2},
		{"fack < fprog", mac.Config{Dual: d, Fack: 5, Fprog: 10, Scheduler: &directScheduler{}}, 2},
		{"automata mismatch", mac.Config{Dual: d, Fack: 100, Fprog: 10, Scheduler: &directScheduler{}}, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			autos := make([]mac.Automaton, tc.n)
			for i := range autos {
				autos[i] = &echoAutomaton{}
			}
			mac.NewEngine(tc.cfg, autos)
		})
	}
}

func TestInstanceAccessors(t *testing.T) {
	b := &mac.Instance{}
	if b.Terminated() {
		t.Fatal("fresh instance terminated")
	}
	b.Term = mac.Acked
	if !b.Terminated() {
		t.Fatal("acked instance not terminated")
	}
	if mac.Mode(99).String() == "" {
		t.Fatal("unknown mode renders empty")
	}
}
