package jobs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// maxJobBytes bounds a POST /jobs body; a job spec is a JSON grid of
// scenario specs, far below this.
const maxJobBytes = 8 << 20

// NewHandler returns the daemon's HTTP API over a store:
//
//	POST   /jobs             submit a job spec or bare scenario spec (JSON);
//	                         returns {"id": ...} with 202 (accepted) or 200
//	                         when the identical job already exists
//	GET    /jobs             list known job IDs
//	GET    /jobs/{id}        status + per-shard progress
//	GET    /jobs/{id}/result the merged result (409 until the job is done)
//	DELETE /jobs/{id}        delete a finished job and its checkpoints
func NewHandler(s *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxJobBytes))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		job, err := Parse(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		known := false
		if id, err := job.ID(); err == nil {
			_, known = s.Status(id)
		}
		id, err := s.Submit(job)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		code := http.StatusAccepted
		if known {
			code = http.StatusOK
		}
		writeJSON(w, code, map[string]string{"id": id})
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"jobs": s.Jobs()})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Status(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, errors.New("jobs: unknown job"))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		data, ok, err := s.Result(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, errors.New("jobs: unknown job"))
			return
		}
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Delete(r.PathValue("id")); err != nil {
			code := http.StatusConflict
			if _, ok := s.Status(r.PathValue("id")); !ok {
				code = http.StatusNotFound
			}
			httpError(w, code, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
