package jobs

import "amac/internal/scenario"

// Shard is one unit of checkpointed work: a consecutive slice [Lo, Hi) of
// the sweep's flattened task space (the scenario.SweepOffsets coordinate
// system) that stays within one spec, so a shard's trials land in exactly
// one SpecResult on merge.
type Shard struct {
	// Index is the shard's position in plan order; checkpoints are named
	// by it and merges concatenate by it.
	Index int `json:"index"`
	// Spec is the index into the job's sweep of the spec this shard runs.
	Spec int `json:"spec"`
	// Lo and Hi bound the shard's tasks in sweep task-space coordinates.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// SeedLo and SeedHi are the derived trial seeds of the boundary
	// tasks, recorded for observability: a stuck shard names the exact
	// seeds to replay.
	SeedLo int64 `json:"seed_lo"`
	SeedHi int64 `json:"seed_hi"`
}

// Shards splits the job's task space into execution shards: each spec's
// trial range is cut into runs of at most ShardTrials tasks, in task order.
// The plan is a pure function of the job, so a restarted daemon re-derives
// the identical shard list and its checkpoints stay addressable.
func Shards(job Spec) []Shard {
	job = job.WithDefaults()
	offsets := scenario.SweepOffsets(job.Sweep)
	var shards []Shard
	for si, s := range job.Sweep {
		for lo := offsets[si]; lo < offsets[si+1]; lo += job.ShardTrials {
			hi := min(lo+job.ShardTrials, offsets[si+1])
			shards = append(shards, Shard{
				Index:  len(shards),
				Spec:   si,
				Lo:     lo,
				Hi:     hi,
				SeedLo: s.Run.Seed + int64(lo-offsets[si]),
				SeedHi: s.Run.Seed + int64(hi-1-offsets[si]),
			})
		}
	}
	return shards
}
