package jobs

import (
	"fmt"

	"amac/internal/scenario"
)

// Execute runs the job in-process on a single machine — no shards, no
// checkpoints — and returns its result. This is the reference the sharded
// daemon is held to: for any job, Store/amacd must produce Canonical()
// bytes identical to Execute's.
func Execute(job Spec, parallelism int) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	id, err := job.ID()
	if err != nil {
		return nil, err
	}
	reports, err := scenario.SweepWithOptions(job.Sweep, scenario.SweepOptions{Parallelism: parallelism})
	if err != nil {
		return nil, err
	}
	return ResultFromReports(job, id, reports), nil
}

// Reports reconstructs per-spec scenario reports from a wire result, so
// report consumers (amacsim's renderer, harness bound formulas) work
// identically on remote results. Network instances and workloads never
// cross the wire; they are pure functions of (spec, seed) and are rebuilt
// here exactly as the executing worker built them: pinned specs get one
// instance at the run seed shared by every trial, unpinned specs get fresh
// builds for their first and last trials — the only ones the warm sweep
// path guarantees stable instances for (see scenario.TrialResult.Built) —
// with middle trials sharing the first build, mirroring that contract.
func Reports(res *Result) ([]*scenario.Report, error) {
	out := make([]*scenario.Report, len(res.Specs))
	for i, sr := range res.Specs {
		spec := sr.Spec
		rep := &scenario.Report{Spec: spec, Trials: make([]*scenario.TrialResult, len(sr.Trials))}
		pinned := scenario.TopologyPinned(spec)
		var first *scenario.TrialResult
		for t, rec := range sr.Trials {
			tr := &scenario.TrialResult{
				Seed:          rec.Seed,
				SchedulerName: rec.Scheduler,
				Result:        rec.result(),
			}
			rebuild := t == 0 || (!pinned && t == len(sr.Trials)-1)
			if rebuild {
				seed := rec.Seed
				if pinned {
					seed = spec.Run.Seed
				}
				built, err := scenario.BuildTopology(spec, seed)
				if err != nil {
					return nil, fmt.Errorf("jobs: rebuild spec %d (%s) trial %d: %w", i, spec.Name, t, err)
				}
				workload, err := scenario.ResolveWorkload(spec, built)
				if err != nil {
					return nil, fmt.Errorf("jobs: rebuild spec %d (%s) trial %d: %w", i, spec.Name, t, err)
				}
				tr.Built, tr.Workload = built, workload
			} else {
				tr.Built, tr.Workload = first.Built, first.Workload
			}
			if t == 0 {
				first = tr
			}
			rep.Trials[t] = tr
		}
		out[i] = rep
	}
	return out, nil
}
