package jobs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"amac/internal/scenario"
)

// TestServerEndToEnd drives the full HTTP surface through the Client
// against a real store: submit → status → result → delete, plus the
// sharded result matching the single-machine reference byte-for-byte.
func TestServerEndToEnd(t *testing.T) {
	store, err := Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()
	client := &Client{Base: srv.URL}

	job := testJob()
	ref, err := Execute(job, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalOrFatal(t, ref)

	id, err := client.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	wantID, err := job.ID()
	if err != nil {
		t.Fatal(err)
	}
	if id != wantID {
		t.Fatalf("server assigned id %s, content hash is %s", id, wantID)
	}

	st, err := client.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job finished in state %s: %s", st.State, st.Error)
	}
	if st.DoneTrials != st.TotalTrials || st.TotalTrials == 0 {
		t.Fatalf("done job reports %d/%d trials", st.DoneTrials, st.TotalTrials)
	}
	for _, sh := range st.Shards {
		if !sh.Done {
			t.Fatalf("done job reports shard %d unfinished", sh.Index)
		}
	}

	got, err := client.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("server result diverges from the single-machine reference")
	}

	// Resubmitting the finished job is idempotent: same ID, still done.
	again, err := client.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if again != id {
		t.Fatalf("resubmission changed the id: %s != %s", again, id)
	}

	// RunSpecs reconstructs reports usable by the CLI render path.
	reports, err := client.RunSpecs("e2e", job.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(job.Sweep) {
		t.Fatalf("RunSpecs returned %d reports, want %d", len(reports), len(job.Sweep))
	}
	direct, err := scenario.Sweep(job.WithDefaults().Sweep, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reports {
		if len(reports[i].Trials) != len(direct[i].Trials) {
			t.Fatalf("report %d: %d trials, want %d", i, len(reports[i].Trials), len(direct[i].Trials))
		}
		for ti := range reports[i].Trials {
			if reports[i].Trials[ti].Result.CompletionTime != direct[i].Trials[ti].Result.CompletionTime {
				t.Fatalf("report %d trial %d diverges from in-process sweep", i, ti)
			}
		}
	}

	if err := client.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Status(id); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("status after delete: %v, want unknown-job error", err)
	}
}

// TestServerErrorPaths pins the HTTP status codes of every failure mode the
// CI smoke job and clients rely on.
func TestServerErrorPaths(t *testing.T) {
	store, err := Open(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(NewHandler(store))
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := get("/jobs/deadbeef"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status: %d, want 404", resp.StatusCode)
	}
	if resp := get("/jobs/deadbeef/result"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job result: %d, want 404", resp.StatusCode)
	}

	// Malformed and invalid submissions are 400s with an error body.
	for _, body := range []string{
		`{not json`,
		`{"sweep": []}`,                           // no specs
		`{"sweep": [{}], "shard_trials": -1}`,     // invalid job field
		`{"topology": {"name": "moebius-strip"}}`, // invalid bare scenario
	} {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Fatalf("submit %q: error body missing (%v)", body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("submit %q: %d, want 400", body, resp.StatusCode)
		}
	}

	// A bare scenario posts as a one-spec job (the curl quickstart path).
	data, err := os.ReadFile("../../scenarios/quickstart.json")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("bare scenario submit: %d", resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.ID == "" {
		t.Fatalf("bare scenario submit: no id (%v)", err)
	}
	client := &Client{Base: srv.URL}
	if st, err := client.Wait(out.ID); err != nil || st.State != StateDone {
		t.Fatalf("bare scenario job: %+v, %v", st, err)
	}

	// Listing shows the finished job.
	listResp := get("/jobs")
	var list struct {
		Jobs []string `json:"jobs"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range list.Jobs {
		found = found || id == out.ID
	}
	if !found {
		t.Fatalf("GET /jobs %v does not list %s", list.Jobs, out.ID)
	}
}
