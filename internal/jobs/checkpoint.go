package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The checkpoint layout under the store directory, per job:
//
//	<dir>/<jobID>/job.json        the submitted job spec (resolved form)
//	<dir>/<jobID>/shard-0007.json one completed shard's trial records
//	<dir>/<jobID>/result.json     the merged result; its presence marks done
//
// Every file is written atomically (temp file + rename in the same
// directory), so a daemon killed mid-write leaves either the old state or
// the new state, never a torn file. Resume scans job directories that have
// a job.json but no result.json, validates each shard checkpoint against
// the re-derived shard plan, and reruns only what is missing or invalid.

// shardRecord is the on-disk form of one completed shard.
type shardRecord struct {
	// Job is the owning job's ID; a checkpoint copied into the wrong
	// directory fails validation instead of corrupting a merge.
	Job string `json:"job"`
	// Index, Spec, Lo and Hi echo the planned shard; resume validates
	// them against the re-derived plan.
	Index int `json:"index"`
	Spec  int `json:"spec"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	// Trials are the shard's results in task order.
	Trials []TrialRecord `json:"trials"`
}

// writeFileAtomic writes data to path via a temp file and rename, fsyncing
// the file so a checkpoint that exists after a crash is complete.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func shardPath(jobDir string, index int) string {
	return filepath.Join(jobDir, fmt.Sprintf("shard-%04d.json", index))
}

// writeShard checkpoints one completed shard.
func writeShard(jobDir, jobID string, sh Shard, trials []TrialRecord) error {
	rec := shardRecord{Job: jobID, Index: sh.Index, Spec: sh.Spec, Lo: sh.Lo, Hi: sh.Hi, Trials: trials}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encode shard %d: %w", sh.Index, err)
	}
	return writeFileAtomic(shardPath(jobDir, sh.Index), append(data, '\n'))
}

// readShard loads shard sh's checkpoint and validates it against the plan.
// It returns (nil, nil) when no valid checkpoint exists — the shard must
// run — and the records when one does.
func readShard(jobDir, jobID string, sh Shard) ([]TrialRecord, error) {
	data, err := os.ReadFile(shardPath(jobDir, sh.Index))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var rec shardRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		// A torn or foreign file is "not checkpointed", not fatal: the
		// shard reruns and the rewrite replaces it.
		return nil, nil
	}
	if rec.Job != jobID || rec.Index != sh.Index || rec.Spec != sh.Spec ||
		rec.Lo != sh.Lo || rec.Hi != sh.Hi || len(rec.Trials) != sh.Hi-sh.Lo {
		return nil, nil
	}
	return rec.Trials, nil
}
