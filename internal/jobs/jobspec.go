// Package jobs is the sharded, resumable execution layer behind cmd/amacd:
// it turns a sweep's flattened (spec, trial) task space — deterministic at
// any parallelism since trial seeds are exact int64s — into shards that run
// independently, checkpoint to disk as they complete, and merge back in
// index order to a result byte-identical to a single-machine
// scenario.Sweep. The HTTP server and client in this package make the CLI
// tools thin clients of a long-running daemon.
package jobs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"amac/internal/scenario"
)

// DefaultShardTrials is the checkpoint granularity when a job does not set
// one: every shard covers at most this many (spec, trial) tasks.
const DefaultShardTrials = 16

// Spec is the wire format of a job: a sweep over one or more scenario
// specs, plus sharding and execution knobs. POST /jobs also accepts a bare
// scenario.Spec, which wraps into a one-spec job (see Parse).
type Spec struct {
	// Name labels the job in listings; it does not affect execution.
	Name string `json:"name,omitempty"`
	// Description is free-form documentation carried with the job.
	Description string `json:"description,omitempty"`
	// Sweep is the spec grid, executed exactly like scenario.Sweep over
	// the same slice.
	Sweep []scenario.Spec `json:"sweep"`
	// ShardTrials caps the (spec, trial) tasks per shard; 0 selects
	// DefaultShardTrials. Shards never span spec boundaries, so a spec
	// with fewer trials than this still gets its own shard tail.
	ShardTrials int `json:"shard_trials,omitempty"`
	// Parallelism bounds concurrent trials within a shard; 0 lets the
	// daemon choose (its -workers flag). Results are byte-identical at
	// any value.
	Parallelism int `json:"parallelism,omitempty"`
}

// WithDefaults returns the spec with zero values resolved, mirroring
// scenario.Spec.WithDefaults: the resolved form is what executes, and what
// the job ID hashes.
func (j Spec) WithDefaults() Spec {
	if j.ShardTrials == 0 {
		j.ShardTrials = DefaultShardTrials
	}
	resolved := make([]scenario.Spec, len(j.Sweep))
	for i, s := range j.Sweep {
		resolved[i] = s.WithDefaults()
	}
	j.Sweep = resolved
	return j
}

// Validate checks the job and every spec of its sweep.
func (j Spec) Validate() error {
	if len(j.Sweep) == 0 {
		return fmt.Errorf("jobs: job has no sweep specs")
	}
	if j.ShardTrials < 0 {
		return fmt.Errorf("jobs: negative shard_trials %d", j.ShardTrials)
	}
	if j.Parallelism < 0 {
		return fmt.Errorf("jobs: negative parallelism %d", j.Parallelism)
	}
	for i, s := range j.Sweep {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("jobs: sweep spec %d (%s): %w", i, s.Name, err)
		}
	}
	return nil
}

// Parse decodes a job spec from JSON. A document with a top-level "sweep"
// key parses strictly as a job; anything else must parse strictly as a
// scenario.Spec and wraps into a one-spec job named after the scenario.
// Both forms reject unknown fields, so typos fail loudly instead of
// silently running a default.
func Parse(data []byte) (Spec, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return Spec{}, fmt.Errorf("jobs: parse job: %w", err)
	}
	if _, ok := probe["sweep"]; !ok {
		s, err := scenario.Parse(data)
		if err != nil {
			return Spec{}, fmt.Errorf("jobs: not a job spec (no \"sweep\" key) and %w", err)
		}
		return Spec{Name: s.Name, Sweep: []scenario.Spec{s}}, nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var j Spec
	if err := dec.Decode(&j); err != nil {
		return Spec{}, fmt.Errorf("jobs: parse job: %w", err)
	}
	return j, nil
}

// Load reads and parses a job spec file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("jobs: %w", err)
	}
	j, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("jobs: %s: %w", path, err)
	}
	return j, nil
}

// JSON renders the job spec as indented JSON that Parse round-trips.
func (j Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(j, "", "  ")
}

// ID returns the job's content-addressed identity: a hex digest of the
// resolved spec's canonical JSON. Submitting the same job twice therefore
// lands on the same checkpoint directory and resumes instead of rerunning,
// and a daemon restart re-derives the same ID from the job.json it wrote.
func (j Spec) ID() (string, error) {
	canon, err := json.Marshal(j.WithDefaults())
	if err != nil {
		return "", fmt.Errorf("jobs: hash job: %w", err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:8]), nil
}
