package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"amac/internal/scenario"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// ShardStatus is one shard's progress entry in a job status.
type ShardStatus struct {
	Shard
	Done bool `json:"done"`
	// DoneTrials counts completed trials within the shard: Hi-Lo once
	// the shard's checkpoint has landed, a live count streamed from the
	// worker pool while the shard is running, 0 before it starts.
	DoneTrials int `json:"done_trials"`
}

// JobStatus is the wire form of GET /jobs/{id}.
type JobStatus struct {
	ID          string        `json:"id"`
	Name        string        `json:"name,omitempty"`
	State       JobState      `json:"state"`
	Error       string        `json:"error,omitempty"`
	TotalTrials int           `json:"total_trials"`
	DoneTrials  int           `json:"done_trials"`
	Shards      []ShardStatus `json:"shards"`
}

// Store owns a checkpoint directory and executes submitted jobs one at a
// time: shards run in plan order, each on a worker pool that reuses the
// per-worker warm state inside scenario.SweepShard, and checkpoint to disk
// as they complete. Opening a store over an existing directory resumes any
// job that has a job.json but no result.json, replaying valid shard
// checkpoints instead of rerunning them.
type Store struct {
	dir     string
	workers int

	mu   sync.Mutex
	jobs map[string]*jobEntry

	pending chan *jobEntry
	stop    chan struct{}
	loop    sync.WaitGroup

	// afterShard (set via SetAfterShard) runs after every executed (not
	// replayed) shard checkpoint lands on disk; returning an error aborts
	// the job mid-run with its partial checkpoints intact.
	afterShard func(jobID string, sh Shard) error
}

type jobEntry struct {
	job    Spec // resolved
	id     string
	shards []Shard
	state  JobState
	err    string
	done   []bool        // per shard
	finish chan struct{} // closed on done/failed
	// running/partial track per-trial progress within the shard currently
	// executing: running is its index (-1 when none) and partial the
	// number of its trials completed so far, streamed from the sweep
	// worker pool via scenario.SweepOptions.Progress.
	running int
	partial int
}

// Open creates (or reopens) a store over dir and starts its run loop.
// workers bounds in-shard parallelism for jobs that do not set their own.
// Unfinished jobs found in the directory are re-queued in ID order.
func Open(dir string, workers int) (*Store, error) {
	if workers < 1 {
		workers = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: open store: %w", err)
	}
	s := &Store{
		dir:     dir,
		workers: workers,
		jobs:    make(map[string]*jobEntry),
		pending: make(chan *jobEntry, 256),
		stop:    make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.loop.Add(1)
	go s.run()
	return s, nil
}

// recover scans the checkpoint directory and rebuilds the job table:
// finished jobs become queryable, unfinished ones re-queue.
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("jobs: scan store: %w", err)
	}
	var resume []*jobEntry
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		jobDir := filepath.Join(s.dir, ent.Name())
		data, err := os.ReadFile(filepath.Join(jobDir, "job.json"))
		if err != nil {
			continue // not a job directory
		}
		job, err := Parse(data)
		if err != nil {
			return fmt.Errorf("jobs: %s: corrupt job.json: %w", ent.Name(), err)
		}
		id, err := job.ID()
		if err != nil {
			return err
		}
		if id != ent.Name() {
			return fmt.Errorf("jobs: job directory %s holds job %s", ent.Name(), id)
		}
		e := s.newEntry(job, id)
		if _, err := os.Stat(filepath.Join(jobDir, "result.json")); err == nil {
			e.state = StateDone
			for i := range e.done {
				e.done[i] = true
			}
			close(e.finish)
		} else {
			resume = append(resume, e)
		}
		s.jobs[id] = e
	}
	sort.Slice(resume, func(i, j int) bool { return resume[i].id < resume[j].id })
	for _, e := range resume {
		s.pending <- e
	}
	return nil
}

func (s *Store) newEntry(job Spec, id string) *jobEntry {
	resolved := job.WithDefaults()
	shards := Shards(resolved)
	return &jobEntry{
		job:     resolved,
		id:      id,
		shards:  shards,
		state:   StateQueued,
		done:    make([]bool, len(shards)),
		finish:  make(chan struct{}),
		running: -1,
	}
}

// Submit validates and enqueues a job, returning its content-addressed ID.
// Resubmitting a job that is already queued, running, or done is a no-op
// returning the same ID — the result is a pure function of the spec, so
// there is nothing new to run.
func (s *Store) Submit(job Spec) (string, error) {
	if err := job.Validate(); err != nil {
		return "", err
	}
	id, err := job.ID()
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; ok {
		return id, nil
	}
	jobDir := filepath.Join(s.dir, id)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		return "", fmt.Errorf("jobs: create job dir: %w", err)
	}
	spec, err := job.JSON()
	if err != nil {
		return "", err
	}
	if err := writeFileAtomic(filepath.Join(jobDir, "job.json"), append(spec, '\n')); err != nil {
		return "", fmt.Errorf("jobs: persist job spec: %w", err)
	}
	e := s.newEntry(job, id)
	s.jobs[id] = e
	select {
	case s.pending <- e:
	default:
		delete(s.jobs, id)
		return "", fmt.Errorf("jobs: queue full")
	}
	return id, nil
}

// SetAfterShard installs a hook invoked after every executed (not
// replayed) shard checkpoint lands on disk. A non-nil error abandons the
// job mid-run with its checkpoints intact, to be resumed by the next Open
// over the directory — the crash-injection point used by the resume tests
// and by amacd -exit-after-shards for the CI kill/restart smoke.
func (s *Store) SetAfterShard(hook func(jobID string, sh Shard) error) {
	s.mu.Lock()
	s.afterShard = hook
	s.mu.Unlock()
}

// run is the store's single execution loop: jobs run one at a time so a
// host's worker pool serves one job's shards at full parallelism instead of
// thrashing between jobs.
func (s *Store) run() {
	defer s.loop.Done()
	for {
		select {
		case <-s.stop:
			return
		case e := <-s.pending:
			s.mu.Lock()
			e.state = StateRunning
			s.mu.Unlock()
			err := s.runJob(e)
			s.mu.Lock()
			switch {
			case err == errAborted:
				// Test-hook kill: leave the entry running; the "restart"
				// is a fresh Open over the same directory.
			case err != nil:
				e.state, e.err = StateFailed, err.Error()
				close(e.finish)
			default:
				e.state = StateDone
				close(e.finish)
			}
			s.mu.Unlock()
		}
	}
}

// errAborted is the afterShard hook's kill signal.
var errAborted = fmt.Errorf("jobs: aborted by afterShard hook")

// runJob executes the job's shards in plan order, replaying valid
// checkpoints, then merges and persists the result.
func (s *Store) runJob(e *jobEntry) error {
	jobDir := filepath.Join(s.dir, e.id)
	par := e.job.Parallelism
	if par == 0 {
		par = s.workers
	}
	records := make([][]TrialRecord, len(e.shards))
	for i, sh := range e.shards {
		replayed, err := readShard(jobDir, e.id, sh)
		if err != nil {
			return err
		}
		if replayed != nil {
			records[i] = replayed
			s.markDone(e, i)
			continue
		}
		s.mu.Lock()
		e.running, e.partial = i, 0
		s.mu.Unlock()
		trials, err := scenario.SweepShard(e.job.Sweep, sh.Lo, sh.Hi, scenario.SweepOptions{
			Parallelism: par,
			Progress: func(done int) {
				s.mu.Lock()
				if e.running == i && done > e.partial {
					e.partial = done
				}
				s.mu.Unlock()
			},
		})
		if err != nil {
			return fmt.Errorf("jobs: shard %d [%d, %d): %w", sh.Index, sh.Lo, sh.Hi, err)
		}
		recs := make([]TrialRecord, len(trials))
		for t, tr := range trials {
			recs[t] = RecordTrial(tr)
		}
		if err := writeShard(jobDir, e.id, sh, recs); err != nil {
			return err
		}
		records[i] = recs
		s.markDone(e, i)
		s.mu.Lock()
		hook := s.afterShard
		s.mu.Unlock()
		if hook != nil {
			if err := hook(e.id, sh); err != nil {
				return errAborted
			}
		}
	}
	res, err := mergeShards(e.job, e.id, e.shards, records)
	if err != nil {
		return err
	}
	data, err := res.Canonical()
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(jobDir, "result.json"), data)
}

func (s *Store) markDone(e *jobEntry, shard int) {
	s.mu.Lock()
	e.done[shard] = true
	if e.running == shard {
		e.running, e.partial = -1, 0
	}
	s.mu.Unlock()
}

// Status returns the job's progress, or false when the ID is unknown.
func (s *Store) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	st := JobStatus{ID: e.id, Name: e.job.Name, State: e.state, Error: e.err}
	for i, sh := range e.shards {
		st.TotalTrials += sh.Hi - sh.Lo
		dt := 0
		switch {
		case e.done[i]:
			dt = sh.Hi - sh.Lo
		case e.running == i:
			dt = e.partial
		}
		st.DoneTrials += dt
		st.Shards = append(st.Shards, ShardStatus{Shard: sh, Done: e.done[i], DoneTrials: dt})
	}
	return st, true
}

// Result returns the canonical result bytes of a finished job. ok reports
// whether the job exists; err is non-nil when it exists but has no result
// yet (still running) or failed.
func (s *Store) Result(id string) (data []byte, ok bool, err error) {
	s.mu.Lock()
	e, exists := s.jobs[id]
	var state JobState
	var jobErr string
	if exists {
		state, jobErr = e.state, e.err
	}
	s.mu.Unlock()
	if !exists {
		return nil, false, nil
	}
	switch state {
	case StateDone:
		data, err := os.ReadFile(filepath.Join(s.dir, id, "result.json"))
		if err != nil {
			return nil, true, fmt.Errorf("jobs: read result: %w", err)
		}
		return data, true, nil
	case StateFailed:
		return nil, true, fmt.Errorf("jobs: job failed: %s", jobErr)
	default:
		return nil, true, fmt.Errorf("jobs: job is %s", state)
	}
}

// Wait blocks until the job finishes (done or failed), returning its final
// status; ok is false for unknown IDs.
func (s *Store) Wait(id string) (JobStatus, bool) {
	s.mu.Lock()
	e, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	<-e.finish
	return s.Status(id)
}

// Delete removes a finished or failed job and its checkpoint directory.
// Running or queued jobs are refused: the run loop owns their directory.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("jobs: unknown job %s", id)
	}
	if e.state == StateQueued || e.state == StateRunning {
		return fmt.Errorf("jobs: job %s is %s; wait for it to finish", id, e.state)
	}
	if err := os.RemoveAll(filepath.Join(s.dir, id)); err != nil {
		return fmt.Errorf("jobs: delete job: %w", err)
	}
	delete(s.jobs, id)
	return nil
}

// Jobs lists known job IDs in sorted order.
func (s *Store) Jobs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Close stops the run loop after the current shard's job finishes its
// in-flight work. It does not wait for queued jobs; their checkpoints
// resume on the next Open.
func (s *Store) Close() {
	close(s.stop)
	s.loop.Wait()
}
