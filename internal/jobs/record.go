package jobs

import (
	"encoding/json"
	"fmt"

	"amac/internal/check"
	"amac/internal/core"
	"amac/internal/scenario"
	"amac/internal/sim"
)

// TrialRecord is the serialized form of one executed trial: exactly the
// scalar outcome of the simulation, nothing derived. Everything else a
// report consumer needs — the network instance, the workload — is a pure
// function of (spec, seed) and is rebuilt on the reading side (see
// Reports), so shards ship kilobytes, not object graphs.
type TrialRecord struct {
	Seed          int64          `json:"seed"`
	Scheduler     string         `json:"scheduler"`
	Solved        bool           `json:"solved"`
	Completion    int64          `json:"completion"`
	End           int64          `json:"end"`
	Delivered     int            `json:"delivered"`
	Required      int            `json:"required"`
	Broadcasts    int            `json:"broadcasts"`
	Steps         uint64         `json:"steps"`
	Checked       bool           `json:"checked,omitempty"`
	CheckFailures []CheckFailure `json:"check_failures,omitempty"`
	MMBViolations []string       `json:"mmb_violations,omitempty"`
}

// CheckFailure mirrors check.Violation field-for-field so compliance
// reports survive the wire intact.
type CheckFailure struct {
	Property string `json:"property"`
	Detail   string `json:"detail"`
}

// RecordTrial projects a trial result onto its wire record.
func RecordTrial(t *scenario.TrialResult) TrialRecord {
	r := TrialRecord{
		Seed:          t.Seed,
		Scheduler:     t.SchedulerName,
		Solved:        t.Result.Solved,
		Completion:    int64(t.Result.CompletionTime),
		End:           int64(t.Result.End),
		Delivered:     t.Result.Delivered,
		Required:      t.Result.Required,
		Broadcasts:    t.Result.Broadcasts,
		Steps:         t.Result.Steps,
		MMBViolations: t.Result.MMBViolations,
	}
	if t.Result.Report != nil {
		r.Checked = true
		for _, v := range t.Result.Report.Violations {
			r.CheckFailures = append(r.CheckFailures, CheckFailure{Property: v.Property, Detail: v.Detail})
		}
	}
	return r
}

// result reconstructs the core.Result the record was projected from. The
// engine is gone — it never crosses the wire — but every scalar, the
// compliance report, and the MMB violations round-trip exactly.
func (r TrialRecord) result() *core.Result {
	res := &core.Result{
		Solved:         r.Solved,
		CompletionTime: sim.Time(r.Completion),
		End:            sim.Time(r.End),
		Delivered:      r.Delivered,
		Required:       r.Required,
		Broadcasts:     r.Broadcasts,
		Steps:          r.Steps,
		MMBViolations:  r.MMBViolations,
	}
	if r.Checked {
		rep := &check.Report{}
		for _, f := range r.CheckFailures {
			rep.Violations = append(rep.Violations, check.Violation{Property: f.Property, Detail: f.Detail})
		}
		res.Report = rep
	}
	return res
}

// SpecResult is one sweep spec's merged outcome: the resolved spec plus its
// trial records in seed order.
type SpecResult struct {
	Spec   scenario.Spec `json:"spec"`
	Trials []TrialRecord `json:"trials"`
}

// Result is a completed job: the job identity plus one SpecResult per sweep
// spec, in input order. Canonical() is the byte-identity artifact the
// resume and distribution tests pin.
type Result struct {
	ID    string       `json:"id"`
	Job   Spec         `json:"job"`
	Specs []SpecResult `json:"specs"`
}

// ResultFromReports assembles a job result from in-process sweep reports —
// the single-machine reference path the sharded daemon must match
// byte-for-byte.
func ResultFromReports(job Spec, id string, reports []*scenario.Report) *Result {
	res := &Result{ID: id, Job: job.WithDefaults()}
	for _, rep := range reports {
		sr := SpecResult{Spec: rep.Spec, Trials: make([]TrialRecord, len(rep.Trials))}
		for i, t := range rep.Trials {
			sr.Trials[i] = RecordTrial(t)
		}
		res.Specs = append(res.Specs, sr)
	}
	return res
}

// mergeShards assembles a job result from completed shard records, which
// must cover the job's full task space and be passed in shard-index order.
func mergeShards(job Spec, id string, shards []Shard, records [][]TrialRecord) (*Result, error) {
	job = job.WithDefaults()
	res := &Result{ID: id, Job: job}
	for i := range job.Sweep {
		res.Specs = append(res.Specs, SpecResult{Spec: job.Sweep[i]})
	}
	for i, sh := range shards {
		if len(records[i]) != sh.Hi-sh.Lo {
			return nil, fmt.Errorf("jobs: shard %d holds %d trials, want %d", sh.Index, len(records[i]), sh.Hi-sh.Lo)
		}
		res.Specs[sh.Spec].Trials = append(res.Specs[sh.Spec].Trials, records[i]...)
	}
	for i, sr := range res.Specs {
		if want := job.Sweep[i].Run.Trials; len(sr.Trials) != want {
			return nil, fmt.Errorf("jobs: spec %d (%s) merged %d trials, want %d", i, sr.Spec.Name, len(sr.Trials), want)
		}
	}
	return res, nil
}

// Canonical renders the result as indented JSON with a trailing newline —
// the exact bytes GET /jobs/{id}/result serves and result.json stores. The
// distribution contract is on these bytes: any shard partition, any
// parallelism, any number of daemon restarts must produce them identically.
func (r *Result) Canonical() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("jobs: encode result: %w", err)
	}
	return append(data, '\n'), nil
}
