package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"amac/internal/scenario"
)

// Client talks to an amacd daemon. The zero HTTPClient uses
// http.DefaultClient; jobs can run for a long time, so polling requests
// are short and the client never holds a connection across a job.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://localhost:7437".
	Base string
	// HTTPClient overrides the transport; nil uses http.DefaultClient.
	HTTPClient *http.Client
	// Poll is the status polling interval of Wait; 0 selects 100ms.
	Poll time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// decodeError turns a non-2xx API response into an error carrying the
// server's message.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("amacd: %s", e.Error)
	}
	return fmt.Errorf("amacd: %s: %s", resp.Status, strings.TrimSpace(string(body)))
}

// Submit posts a job and returns its ID.
func (c *Client) Submit(job Spec) (string, error) {
	body, err := json.Marshal(job)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Post(c.url("/jobs"), "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("amacd: decode submit response: %w", err)
	}
	return out.ID, nil
}

// Status fetches a job's progress.
func (c *Client) Status(id string) (JobStatus, error) {
	resp, err := c.http().Get(c.url("/jobs/" + id))
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, decodeError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, fmt.Errorf("amacd: decode status: %w", err)
	}
	return st, nil
}

// Result fetches a finished job's canonical result bytes.
func (c *Client) Result(id string) ([]byte, error) {
	resp, err := c.http().Get(c.url("/jobs/" + id + "/result"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Delete removes a finished job from the daemon.
func (c *Client) Delete(id string) error {
	req, err := http.NewRequest(http.MethodDelete, c.url("/jobs/"+id), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeError(resp)
	}
	return nil
}

// Wait polls until the job leaves the queued/running states and returns its
// final status.
func (c *Client) Wait(id string) (JobStatus, error) {
	poll := c.Poll
	if poll == 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State == StateDone || st.State == StateFailed {
			return st, nil
		}
		time.Sleep(poll)
	}
}

// RunJob submits a job, waits for it, and returns the decoded result.
func (c *Client) RunJob(job Spec) (*Result, error) {
	id, err := c.Submit(job)
	if err != nil {
		return nil, err
	}
	st, err := c.Wait(id)
	if err != nil {
		return nil, err
	}
	if st.State == StateFailed {
		return nil, fmt.Errorf("amacd: job %s failed: %s", id, st.Error)
	}
	data, err := c.Result(id)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("amacd: decode result: %w", err)
	}
	return &res, nil
}

// RunSpecs executes a spec grid on the daemon and reconstructs per-spec
// reports — a drop-in remote counterpart of scenario.Sweep used by the
// amacsim/amacbench -server modes. The daemon picks its own shard plan and
// parallelism; results are byte-identical regardless.
func (c *Client) RunSpecs(name string, specs []scenario.Spec) ([]*scenario.Report, error) {
	res, err := c.RunJob(Spec{Name: name, Sweep: specs})
	if err != nil {
		return nil, err
	}
	return Reports(res)
}
