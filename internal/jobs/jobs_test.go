package jobs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"amac/internal/scenario"
	"amac/internal/topology"
)

// testJob is a small mixed job: a pinned spec (warm arena path) and an
// unpinned one (workspace path), with shard_trials 3 so both specs split
// into several shards and the unpinned spec's shard boundaries fall inside
// its trial range.
func testJob() Spec {
	return Spec{
		Name:        "test-job",
		ShardTrials: 3,
		Sweep: []scenario.Spec{
			{
				Name:      "pinned",
				Topology:  TopologySpecOf("rline", topology.Params{"n": 24, "r": 2, "p": 0.6}, 7),
				Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: 3},
				Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
				Scheduler: scenario.SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
				Run:       scenario.RunSpec{Seed: 1, Trials: 5, Check: true},
			},
			{
				Name:      "unpinned",
				Topology:  TopologySpecOf("rgg", topology.Params{"n": 20, "side": 3.4, "c": 1.6, "p": 0.5}, 0),
				Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: 2},
				Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
				Scheduler: scenario.SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.6}},
				Run:       scenario.RunSpec{Seed: 3, Trials: 7},
			},
		},
	}
}

// TopologySpecOf is a test shorthand.
func TopologySpecOf(name string, p topology.Params, seed int64) scenario.TopologySpec {
	return scenario.TopologySpec{Name: name, Params: p, Seed: seed}
}

func canonicalOrFatal(t *testing.T, r *Result) []byte {
	t.Helper()
	data, err := r.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestShardPlan pins the planner contract: shards tile each spec's trial
// range in order without spanning specs, and the plan is a pure function of
// the job.
func TestShardPlan(t *testing.T) {
	job := testJob()
	shards := Shards(job)
	offsets := scenario.SweepOffsets(job.WithDefaults().Sweep)
	next := 0
	for i, sh := range shards {
		if sh.Index != i {
			t.Fatalf("shard %d carries index %d", i, sh.Index)
		}
		if sh.Lo != next {
			t.Fatalf("shard %d starts at %d, want %d", i, sh.Lo, next)
		}
		if sh.Hi-sh.Lo > job.ShardTrials || sh.Hi <= sh.Lo {
			t.Fatalf("shard %d spans [%d, %d)", i, sh.Lo, sh.Hi)
		}
		if sh.Lo < offsets[sh.Spec] || sh.Hi > offsets[sh.Spec+1] {
			t.Fatalf("shard %d crosses spec %d's range", i, sh.Spec)
		}
		next = sh.Hi
	}
	if next != offsets[len(offsets)-1] {
		t.Fatalf("shards cover %d tasks, want %d", next, offsets[len(offsets)-1])
	}
	if !reflect.DeepEqual(shards, Shards(job)) {
		t.Fatal("shard plan not deterministic")
	}
}

// TestStoreMatchesExecute is the tentpole's byte-identity property: the
// sharded, checkpointed store produces result bytes identical to the
// single-machine reference path, across several shard sizes and
// parallelisms.
func TestStoreMatchesExecute(t *testing.T) {
	base := testJob()
	ref, err := Execute(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalOrFatal(t, ref)
	// The result must not depend on how the reference itself was
	// parallelized either.
	ref4, err := Execute(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonicalOrFatal(t, ref4), want) {
		t.Fatal("Execute diverges across parallelism")
	}

	for _, cfg := range []struct{ shardTrials, workers int }{
		{1, 1}, {3, 2}, {5, 3}, {100, 4},
	} {
		job := base
		job.ShardTrials = cfg.shardTrials
		s, err := Open(t.TempDir(), cfg.workers)
		if err != nil {
			t.Fatal(err)
		}
		id, err := s.Submit(job)
		if err != nil {
			t.Fatal(err)
		}
		if st, ok := s.Wait(id); !ok || st.State != StateDone {
			t.Fatalf("shard_trials=%d: job ended %+v", cfg.shardTrials, st)
		}
		got, ok, err := s.Result(id)
		if !ok || err != nil {
			t.Fatalf("shard_trials=%d: result: ok=%v err=%v", cfg.shardTrials, ok, err)
		}
		// IDs differ when ShardTrials differ (it is part of the job);
		// compare the execution payload, not the identity header.
		var gr, wr Result
		if err := json.Unmarshal(got, &gr); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(want, &wr); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gr.Specs, wr.Specs) {
			t.Fatalf("shard_trials=%d workers=%d: sharded result diverges from Execute", cfg.shardTrials, cfg.workers)
		}
		s.Close()
	}
}

// TestStoreResumeAfterKill is the resume property: a store killed between
// shards (simulated via the afterShard hook) and reopened over the same
// directory finishes the job without rerunning checkpointed shards, and its
// result file is byte-identical to an uninterrupted run.
func TestStoreResumeAfterKill(t *testing.T) {
	job := testJob()
	ref, err := Execute(job, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalOrFatal(t, ref)

	dir := t.TempDir()
	s1, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Kill after the second completed shard.
	killed := make(chan struct{})
	ran1 := 0
	s1.SetAfterShard(func(string, Shard) error {
		ran1++
		if ran1 == 2 {
			close(killed)
			return errAborted
		}
		return nil
	})
	id, err := s1.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	s1.Close()

	if _, err := os.Stat(filepath.Join(dir, id, "result.json")); !os.IsNotExist(err) {
		t.Fatal("killed job left a result.json")
	}

	// "Restart the daemon": a fresh store over the same directory must
	// pick the job up, replay shards 0-1 from checkpoints, and execute
	// only the rest.
	s2, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ran2 := 0
	var rerun []int
	s2.SetAfterShard(func(_ string, sh Shard) error {
		ran2++
		rerun = append(rerun, sh.Index)
		return nil
	})
	st, ok := s2.Wait(id)
	if !ok || st.State != StateDone {
		t.Fatalf("resumed job ended %+v", st)
	}
	total := len(Shards(job))
	if ran2 != total-2 {
		t.Fatalf("resume executed %d shards %v, want %d (shards 0-1 were checkpointed)", ran2, rerun, total-2)
	}
	for _, idx := range rerun {
		if idx < 2 {
			t.Fatalf("resume re-executed checkpointed shard %d", idx)
		}
	}
	got, err := os.ReadFile(filepath.Join(dir, id, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed result diverges from the single-machine reference")
	}

	// A full reopen over the finished directory serves the same bytes
	// without re-execution.
	s3, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	again, ok, err := s3.Result(id)
	if !ok || err != nil {
		t.Fatalf("reopened result: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("reopened result diverges")
	}
}

// TestTornCheckpointReruns ensures a truncated shard file (daemon killed
// mid-write without the atomic rename, or disk corruption) is treated as
// absent, not fatal.
func TestTornCheckpointReruns(t *testing.T) {
	job := testJob()
	ref, err := Execute(job, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalOrFatal(t, ref)

	dir := t.TempDir()
	id, err := job.ID()
	if err != nil {
		t.Fatal(err)
	}
	jobDir := filepath.Join(dir, id)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	spec, err := job.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, "job.json"), append(spec, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shardPath(jobDir, 0), []byte(`{"job":"`+id+`","index":0,"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, ok := s.Wait(id)
	if !ok || st.State != StateDone {
		t.Fatalf("job with torn checkpoint ended %+v", st)
	}
	got, _, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("result after torn checkpoint diverges")
	}
}

// TestSubmitIdempotent pins content-addressed identity: resubmitting the
// same job returns the same ID without queueing new work, and a different
// job gets a different ID.
func TestSubmitIdempotent(t *testing.T) {
	s, err := Open(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	job := testJob()
	id1, err := s.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("identical jobs got IDs %s and %s", id1, id2)
	}
	other := job
	other.Sweep = job.Sweep[:1]
	id3, err := s.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 {
		t.Fatal("different jobs share an ID")
	}
	if len(s.Jobs()) != 2 {
		t.Fatalf("store lists %v, want 2 jobs", s.Jobs())
	}
}

// TestJobSpecRoundTrip is the job-level counterpart of the scenario
// package's Spec round-trip property test: random jobs survive
// JSON-marshal-parse exactly.
func TestJobSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	randScenario := func() scenario.Spec {
		str := func(opts ...string) string { return opts[rng.Intn(len(opts))] }
		var params topology.Params
		if rng.Intn(2) == 0 {
			params = topology.Params{"n": float64(8 + rng.Intn(32))}
		}
		return scenario.Spec{
			Name:      str("", "a", "β"),
			Topology:  scenario.TopologySpec{Name: str("line", "rgg"), Params: params, Seed: rng.Int63n(1 << 30)},
			Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: rng.Intn(8)},
			Algorithm: scenario.AlgorithmSpec{Name: str("bmmb", "fmmb")},
			Run:       scenario.RunSpec{Seed: rng.Int63n(1 << 30), Trials: rng.Intn(20)},
		}
	}
	for i := 0; i < 200; i++ {
		job := Spec{
			Name:        "job",
			Description: "round trip",
			ShardTrials: rng.Intn(40),
			Parallelism: rng.Intn(8),
			Sweep:       []scenario.Spec{randScenario()},
		}
		for extra := rng.Intn(3); extra > 0; extra-- {
			job.Sweep = append(job.Sweep, randScenario())
		}
		buf, err := job.JSON()
		if err != nil {
			t.Fatalf("job %d: marshal: %v", i, err)
		}
		back, err := Parse(buf)
		if err != nil {
			t.Fatalf("job %d: parse: %v\n%s", i, err, buf)
		}
		if !reflect.DeepEqual(job, back) {
			t.Fatalf("job %d did not round-trip:\nbefore: %+v\nafter:  %+v\njson:\n%s", i, job, back, buf)
		}
	}
}

// TestParseBareScenario pins the POST /jobs convenience: a bare scenario
// spec wraps into a one-spec job, and typos in either form still error.
func TestParseBareScenario(t *testing.T) {
	data, err := os.ReadFile("../../scenarios/quickstart.json")
	if err != nil {
		t.Fatal(err)
	}
	job, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Sweep) != 1 || job.Name != "quickstart" {
		t.Fatalf("bare scenario wrapped as %+v", job)
	}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse([]byte(`{"sweep": [], "shard_trails": 3}`)); err == nil {
		t.Fatal("job-spec typo accepted")
	}
	if _, err := Parse([]byte(`{"topolgy": {"name": "line"}}`)); err == nil {
		t.Fatal("scenario typo accepted")
	}
}

// TestCheckedInJobFiles parses and validates every job-spec file under
// scenarios/ (the ones with a "sweep" grid; plain scenario files are
// covered by the scenario package's own test).
func TestCheckedInJobFiles(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	jobFiles := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(data, &probe); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, isJob := probe["sweep"]; !isJob {
			continue
		}
		jobFiles++
		job, err := Parse(data)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if err := job.Validate(); err != nil {
			t.Errorf("%s: %v", path, err)
		}
		if job.Name == "" || job.Description == "" {
			t.Errorf("%s: checked-in jobs must carry name and description", path)
		}
	}
	if jobFiles == 0 {
		t.Fatal("no checked-in job-spec files found (expected scenarios/sweep-quickstart.json)")
	}
}

// TestReportsReconstruction pins the client-side report rebuild: scalars,
// check reports and MMB violations round-trip exactly, and the
// reconstructed instances match what the executing sweep used — the pinned
// spec's single instance and the unpinned spec's first/last draws.
func TestReportsReconstruction(t *testing.T) {
	job := testJob()
	reports, err := scenario.Sweep(job.WithDefaults().Sweep, 1)
	if err != nil {
		t.Fatal(err)
	}
	id, err := job.ID()
	if err != nil {
		t.Fatal(err)
	}
	res := ResultFromReports(job, id, reports)
	back, err := Reports(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reports) {
		t.Fatalf("reconstructed %d reports, want %d", len(back), len(reports))
	}
	for i, rep := range reports {
		got := back[i]
		if !reflect.DeepEqual(got.Spec, rep.Spec) {
			t.Fatalf("report %d: spec diverged", i)
		}
		for ti, tr := range rep.Trials {
			gt := got.Trials[ti]
			if gt.Seed != tr.Seed || gt.SchedulerName != tr.SchedulerName {
				t.Fatalf("report %d trial %d: identity diverged", i, ti)
			}
			if gt.Result.Solved != tr.Result.Solved ||
				gt.Result.CompletionTime != tr.Result.CompletionTime ||
				gt.Result.End != tr.Result.End ||
				gt.Result.Delivered != tr.Result.Delivered ||
				gt.Result.Required != tr.Result.Required ||
				gt.Result.Broadcasts != tr.Result.Broadcasts ||
				gt.Result.Steps != tr.Result.Steps {
				t.Fatalf("report %d trial %d: scalars diverged", i, ti)
			}
			if (gt.Result.Report == nil) != (tr.Result.Report == nil) {
				t.Fatalf("report %d trial %d: check report presence diverged", i, ti)
			}
			if tr.Result.Report != nil && !reflect.DeepEqual(gt.Result.Report.Violations, tr.Result.Report.Violations) {
				t.Fatalf("report %d trial %d: check violations diverged", i, ti)
			}
		}
		// Boundary instances: the header consumers read the first trial's
		// network, bound formulas the last trial's.
		for _, ti := range []int{0, len(rep.Trials) - 1} {
			wantD, gotD := rep.Trials[ti].Built.Dual, got.Trials[ti].Built.Dual
			if gotD.N() != wantD.N() || gotD.G.M() != wantD.G.M() || gotD.G.Diameter() != wantD.G.Diameter() {
				t.Fatalf("report %d trial %d: reconstructed instance diverged (n=%d/%d m=%d/%d)",
					i, ti, gotD.N(), wantD.N(), gotD.G.M(), wantD.G.M())
			}
			if got.Trials[ti].Workload.K() != rep.Trials[ti].Workload.K() {
				t.Fatalf("report %d trial %d: reconstructed workload diverged", i, ti)
			}
		}
	}
}

// TestStatusDoneTrials pins the per-trial progress surface: at every
// afterShard checkpoint the aggregate DoneTrials equals the number of
// trials whose shards have completed, the per-shard counts sum to the
// aggregate, and a finished job reports every trial done. (The intra-shard
// partial counts come from scenario.SweepOptions.Progress, whose exactness
// is covered by the scenario package's own tests.)
func TestStatusDoneTrials(t *testing.T) {
	job := testJob()
	s, err := Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	type snapshot struct {
		shardHi int
		status  JobStatus
	}
	var snaps []snapshot
	s.SetAfterShard(func(id string, sh Shard) error {
		if st, ok := s.Status(id); ok {
			snaps = append(snaps, snapshot{sh.Hi, st})
		}
		return nil
	})

	id, err := s.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := s.Wait(id)
	if !ok || st.State != StateDone {
		t.Fatalf("job ended %+v", st)
	}

	total := 0
	for _, spec := range job.WithDefaults().Sweep {
		total += spec.Run.Trials
	}
	if st.TotalTrials != total || st.DoneTrials != total {
		t.Fatalf("final progress %d/%d, want %d/%d", st.DoneTrials, st.TotalTrials, total, total)
	}

	if len(snaps) == 0 {
		t.Fatal("afterShard hook observed no status")
	}
	for _, snap := range snaps {
		if snap.status.DoneTrials != snap.shardHi {
			t.Fatalf("after shard ending at %d: DoneTrials = %d", snap.shardHi, snap.status.DoneTrials)
		}
		sum := 0
		for _, shSt := range snap.status.Shards {
			if shSt.Done && shSt.DoneTrials != shSt.Hi-shSt.Lo {
				t.Fatalf("done shard [%d,%d) reports %d trials", shSt.Lo, shSt.Hi, shSt.DoneTrials)
			}
			sum += shSt.DoneTrials
		}
		if sum != snap.status.DoneTrials {
			t.Fatalf("per-shard counts sum to %d, aggregate says %d", sum, snap.status.DoneTrials)
		}
	}
}
