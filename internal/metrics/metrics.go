// Package metrics derives per-node and per-message statistics from a
// recorded execution: broadcast/receive counts, acknowledgment latencies,
// message dissemination latencies, and grey-zone link usage. The harness
// and cmd/amacsim use it for reporting; tests use it to assert behavioral
// properties that raw completion times cannot express.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"amac/internal/mac"
	"amac/internal/sim"
	"amac/internal/topology"
)

// NodeStats aggregates one node's activity.
type NodeStats struct {
	Broadcasts int
	Receives   int
	Acks       int
	Aborts     int
}

// MsgStats aggregates one MMB message's dissemination.
type MsgStats struct {
	ArriveAt     sim.Time
	FirstDeliver sim.Time
	LastDeliver  sim.Time
	Deliveries   int
}

// Latency returns the arrival-to-full-dissemination latency.
func (m MsgStats) Latency() sim.Time { return m.LastDeliver - m.ArriveAt }

// Report is the full metrics bundle for one execution.
type Report struct {
	Nodes []NodeStats
	// Msgs keys by the algorithm-level message value (core.Msg in the MMB
	// runners).
	Msgs map[any]*MsgStats
	// AckLatencies collects bcast→ack times across all acked instances.
	AckLatencies []sim.Time
	// GreyDeliveries counts receives that crossed a G′\G edge;
	// ReliableDeliveries counts the rest.
	GreyDeliveries     int
	ReliableDeliveries int
	// TotalInstances counts broadcast instances; Aborted counts aborted
	// ones.
	TotalInstances int
	Aborted        int
}

// Collect builds a Report from a finished engine's instances and trace.
func Collect(d *topology.Dual, insts []*mac.Instance, trace *sim.Trace) *Report {
	r := &Report{
		Nodes: make([]NodeStats, d.N()),
		Msgs:  make(map[any]*MsgStats),
	}
	for _, b := range insts {
		r.TotalInstances++
		r.Nodes[b.Sender].Broadcasts++
		switch b.Term {
		case mac.Acked:
			r.Nodes[b.Sender].Acks++
			r.AckLatencies = append(r.AckLatencies, b.TermAt-b.Start)
		case mac.Aborted:
			r.Aborted++
			r.Nodes[b.Sender].Aborts++
		}
		for _, to := range b.Receivers() {
			r.Nodes[to].Receives++
			if d.G.HasEdge(b.Sender, to) {
				r.ReliableDeliveries++
			} else {
				r.GreyDeliveries++
			}
		}
	}
	for _, ev := range trace.Events() {
		switch ev.Kind {
		case "arrive":
			ms := r.msg(ev.Value())
			ms.ArriveAt = ev.At
		case "deliver":
			ms := r.msg(ev.Value())
			if ms.Deliveries == 0 || ev.At < ms.FirstDeliver {
				ms.FirstDeliver = ev.At
			}
			if ev.At > ms.LastDeliver {
				ms.LastDeliver = ev.At
			}
			ms.Deliveries++
		}
	}
	sort.Slice(r.AckLatencies, func(i, j int) bool { return r.AckLatencies[i] < r.AckLatencies[j] })
	return r
}

func (r *Report) msg(key any) *MsgStats {
	ms, ok := r.Msgs[key]
	if !ok {
		ms = &MsgStats{}
		r.Msgs[key] = ms
	}
	return ms
}

// MaxAckLatency returns the worst bcast→ack time (0 when none acked).
func (r *Report) MaxAckLatency() sim.Time {
	if len(r.AckLatencies) == 0 {
		return 0
	}
	return r.AckLatencies[len(r.AckLatencies)-1]
}

// MedianAckLatency returns the median bcast→ack time (0 when none acked).
func (r *Report) MedianAckLatency() sim.Time {
	if len(r.AckLatencies) == 0 {
		return 0
	}
	return r.AckLatencies[len(r.AckLatencies)/2]
}

// TotalBroadcasts sums broadcasts over all nodes.
func (r *Report) TotalBroadcasts() int {
	total := 0
	for _, ns := range r.Nodes {
		total += ns.Broadcasts
	}
	return total
}

// MaxNodeBroadcasts returns the busiest node's broadcast count and ID.
func (r *Report) MaxNodeBroadcasts() (node int, count int) {
	for i, ns := range r.Nodes {
		if ns.Broadcasts > count {
			node, count = i, ns.Broadcasts
		}
	}
	return node, count
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instances: %d (%d aborted)\n", r.TotalInstances, r.Aborted)
	fmt.Fprintf(&b, "deliveries: %d reliable, %d grey-zone\n",
		r.ReliableDeliveries, r.GreyDeliveries)
	fmt.Fprintf(&b, "ack latency: median %v, max %v\n",
		r.MedianAckLatency(), r.MaxAckLatency())
	busiest, count := r.MaxNodeBroadcasts()
	fmt.Fprintf(&b, "busiest node: %d with %d broadcasts\n", busiest, count)
	if len(r.Msgs) > 0 {
		var worst sim.Time
		for _, ms := range r.Msgs {
			if ms.Latency() > worst {
				worst = ms.Latency()
			}
		}
		fmt.Fprintf(&b, "worst message latency: %v over %d messages\n", worst, len(r.Msgs))
	}
	return b.String()
}
