package metrics

import (
	"strings"
	"testing"

	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

func runSample(t *testing.T) (*core.Result, *topology.Dual) {
	t.Helper()
	d := topology.LineRRestricted(10, 2, 1.0, nil)
	res := core.MustRun(core.RunConfig{
		Dual:             d,
		Fack:             200,
		Fprog:            10,
		Scheduler:        &sched.Sync{Rel: sched.Always{}},
		Seed:             1,
		Assignment:       core.SingleSource(10, 0, 3),
		Automata:         core.NewBMMBFleet(10),
		HaltOnCompletion: false, // run to quiescence so every instance acks
	})
	if !res.Solved {
		t.Fatal("sample run unsolved")
	}
	return res, d
}

func TestCollectCounts(t *testing.T) {
	res, d := runSample(t)
	rep := Collect(d, res.Engine.Instances(), res.Trace)

	if rep.TotalInstances != res.Broadcasts {
		t.Fatalf("instances %d != broadcasts %d", rep.TotalInstances, res.Broadcasts)
	}
	if rep.TotalBroadcasts() != rep.TotalInstances {
		t.Fatalf("per-node sum %d != total %d", rep.TotalBroadcasts(), rep.TotalInstances)
	}
	// BMMB on a connected reliable-ish network: every node broadcasts each
	// of the 3 messages exactly once.
	for i, ns := range rep.Nodes {
		if ns.Broadcasts != 3 {
			t.Fatalf("node %d broadcast %d times, want 3", i, ns.Broadcasts)
		}
		if ns.Acks != 3 || ns.Aborts != 0 {
			t.Fatalf("node %d acks=%d aborts=%d", i, ns.Acks, ns.Aborts)
		}
	}
	if rep.Aborted != 0 {
		t.Fatalf("aborted = %d", rep.Aborted)
	}
	// With Rel=Always over a 2-restricted line, grey deliveries must
	// appear.
	if rep.GreyDeliveries == 0 {
		t.Fatal("no grey-zone deliveries recorded")
	}
	if rep.ReliableDeliveries == 0 {
		t.Fatal("no reliable deliveries recorded")
	}
}

func TestCollectAckLatencies(t *testing.T) {
	res, d := runSample(t)
	rep := Collect(d, res.Engine.Instances(), res.Trace)
	// Sync scheduler acks at exactly Fack.
	if rep.MaxAckLatency() != 200 || rep.MedianAckLatency() != 200 {
		t.Fatalf("ack latencies: median %v max %v, want 200",
			rep.MedianAckLatency(), rep.MaxAckLatency())
	}
}

func TestCollectMessageLatencies(t *testing.T) {
	res, d := runSample(t)
	rep := Collect(d, res.Engine.Instances(), res.Trace)
	if len(rep.Msgs) != 3 {
		t.Fatalf("msgs = %d, want 3", len(rep.Msgs))
	}
	for key, ms := range rep.Msgs {
		m := key.(core.Msg)
		if ms.Deliveries != 10 {
			t.Fatalf("%v delivered %d times, want 10", m, ms.Deliveries)
		}
		if ms.ArriveAt != 0 {
			t.Fatalf("%v arrived at %v", m, ms.ArriveAt)
		}
		if ms.Latency() <= 0 {
			t.Fatalf("%v latency %v", m, ms.Latency())
		}
		if ms.FirstDeliver > ms.LastDeliver {
			t.Fatalf("%v first %v after last %v", m, ms.FirstDeliver, ms.LastDeliver)
		}
	}
}

func TestCollectAborts(t *testing.T) {
	// FMMB aborts collided broadcasts; the report must count them.
	d := topology.Grid(3, 3)
	cfg := core.FMMBConfig{N: 9, K: 2, D: d.G.Diameter(), C: 1.0}
	res := core.MustRun(core.RunConfig{
		Dual:             d,
		Fack:             200,
		Fprog:            10,
		Scheduler:        &sched.Slot{},
		Mode:             mac.Enhanced,
		Seed:             4,
		Assignment:       core.Singleton(9, []graph.NodeID{0, 8}),
		Automata:         core.NewFMMBFleet(9, cfg),
		Horizon:          sim.Time(cfg.Rounds()+2) * 10,
		StepLimit:        1 << 62,
		HaltOnCompletion: true,
	})
	if !res.Solved {
		t.Fatal("FMMB run unsolved")
	}
	rep := Collect(d, res.Engine.Instances(), res.Trace)
	if rep.Aborted == 0 {
		t.Fatal("FMMB run recorded no aborts — collisions must abort")
	}
	if rep.Aborted >= rep.TotalInstances {
		t.Fatal("everything aborted — nothing succeeded")
	}
}

func TestReportString(t *testing.T) {
	res, d := runSample(t)
	rep := Collect(d, res.Engine.Instances(), res.Trace)
	s := rep.String()
	for _, want := range []string{"instances:", "deliveries:", "ack latency:", "busiest node:", "worst message latency:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestBusiestNode(t *testing.T) {
	// On a star choke, the hub relays everything: it must be among the
	// busiest broadcast counts... every node broadcasts k messages under
	// BMMB, so instead check receives: the hub receives from all leaves.
	s := topology.NewStarChoke(6)
	a := make(core.Assignment, s.N())
	for i := 1; i < 6; i++ {
		v := s.Source(i)
		a[v] = []core.Msg{{ID: i - 1, Origin: v}}
	}
	a[s.Hub()] = []core.Msg{{ID: 5, Origin: s.Hub()}}
	res := core.MustRun(core.RunConfig{
		Dual: s.Dual, Fack: 200, Fprog: 10,
		Scheduler: &sched.Sync{}, Seed: 2,
		Assignment: a, Automata: core.NewBMMBFleet(s.N()),
	})
	if !res.Solved {
		t.Fatal("unsolved")
	}
	rep := Collect(s.Dual, res.Engine.Instances(), res.Trace)
	hub := int(s.Hub())
	for i, ns := range rep.Nodes {
		if i != hub && ns.Receives > rep.Nodes[hub].Receives {
			t.Fatalf("node %d received more (%d) than the hub (%d)",
				i, ns.Receives, rep.Nodes[hub].Receives)
		}
	}
}
