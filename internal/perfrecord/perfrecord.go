// Package perfrecord defines the machine-readable perf record amacbench
// writes (BENCH.json) and the comparison logic cmd/benchdiff and the CI
// regression gate run over two such records. It lives below both commands
// so the schema has exactly one definition.
package perfrecord

import (
	"encoding/json"
	"fmt"
	"os"
)

// Record is one experiment's perf sample.
type Record struct {
	ID           string  `json:"id"`
	WallSeconds  float64 `json:"wall_seconds"`
	SimEvents    uint64  `json:"sim_events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Allocs       uint64  `json:"allocs"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	// AllocsPerOp and BytesPerOp normalize the totals per simulation event
	// — the experiment's "op" — so the allocation gate is insensitive to
	// how long an experiment happens to run. Zero in records written before
	// the fields existed; Compare treats a zero baseline as ungated.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
}

// Normalize fills the per-op allocation fields from the totals. Records
// with no events are left at zero.
func (r *Record) Normalize() {
	if r.SimEvents == 0 {
		return
	}
	r.AllocsPerOp = float64(r.Allocs) / float64(r.SimEvents)
	r.BytesPerOp = float64(r.AllocBytes) / float64(r.SimEvents)
}

// File is the BENCH.json document: the options the record was taken under
// plus one Record per experiment.
type File struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	Parallelism int      `json:"parallelism"`
	Quick       bool     `json:"quick"`
	Trials      int      `json:"trials"`
	Seed        int64    `json:"seed"`
	NoArena     bool     `json:"no_arena,omitempty"`
	Experiments []Record `json:"experiments"`
}

// Load reads and decodes a perf record.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perfrecord: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("perfrecord: parse %s: %w", path, err)
	}
	return &f, nil
}

// WriteFile encodes the record as indented JSON with a trailing newline.
func (f *File) WriteFile(path string) error {
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("perfrecord: marshal: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("perfrecord: %w", err)
	}
	return nil
}

// Delta is the throughput comparison of one experiment across two records.
type Delta struct {
	ID string
	// BaseEventsPerSec and NewEventsPerSec are the two samples; Ratio is
	// new/base (1.0 = unchanged, below 1 = slower).
	BaseEventsPerSec float64
	NewEventsPerSec  float64
	Ratio            float64
	// BaseWallSeconds and NewWallSeconds carry the sample durations so
	// gates can refuse to judge millisecond-scale experiments, whose
	// events/sec is dominated by scheduler noise.
	BaseWallSeconds float64
	NewWallSeconds  float64
	// BaseAllocsPerOp and NewAllocsPerOp are the per-event allocation
	// samples; AllocRatio is new/base (1.0 = unchanged, above 1 = more
	// allocation per event). Zero baselines — records written before the
	// per-op fields existed, or experiments with no events — leave
	// AllocRatio at 1 so old baselines never gate on allocations.
	BaseAllocsPerOp float64
	NewAllocsPerOp  float64
	AllocRatio      float64
	// Missing marks an experiment present in the baseline but absent from
	// the new record — a gate failure regardless of threshold, since a
	// silently dropped experiment would otherwise launder a regression.
	Missing bool
}

// Noisy reports whether either sample ran shorter than minWall seconds —
// too fast for its events/sec to mean anything. Gates report such deltas
// without judging them.
func (d Delta) Noisy(minWall float64) bool {
	return !d.Missing && (d.BaseWallSeconds < minWall || d.NewWallSeconds < minWall)
}

// Regressed reports whether the delta violates the gate at the given
// threshold: throughput fell by more than threshold (e.g. 0.15 for 15%), or
// the experiment vanished.
func (d Delta) Regressed(threshold float64) bool {
	return d.Missing || d.Ratio < 1-threshold
}

// AllocRegressed reports whether per-event allocations grew by more than
// threshold (e.g. 0.15 for 15%). Unlike throughput, a missing experiment is
// not re-reported here — Regressed already fails it.
func (d Delta) AllocRegressed(threshold float64) bool {
	return !d.Missing && d.AllocRatio > 1+threshold
}

// Compare matches experiments by ID and returns one Delta per baseline
// experiment, in baseline order. Experiments only present in the new record
// are ignored (new benchmarks cannot regress).
func Compare(base, cur *File) []Delta {
	byID := make(map[string]Record, len(cur.Experiments))
	for _, r := range cur.Experiments {
		byID[r.ID] = r
	}
	out := make([]Delta, 0, len(base.Experiments))
	for _, b := range base.Experiments {
		d := Delta{
			ID:               b.ID,
			BaseEventsPerSec: b.EventsPerSec,
			BaseWallSeconds:  b.WallSeconds,
			BaseAllocsPerOp:  b.AllocsPerOp,
			AllocRatio:       1,
		}
		if n, ok := byID[b.ID]; ok {
			d.NewEventsPerSec = n.EventsPerSec
			d.NewWallSeconds = n.WallSeconds
			d.NewAllocsPerOp = n.AllocsPerOp
			if b.EventsPerSec > 0 {
				d.Ratio = n.EventsPerSec / b.EventsPerSec
			} else {
				d.Ratio = 1
			}
			if b.AllocsPerOp > 0 {
				d.AllocRatio = n.AllocsPerOp / b.AllocsPerOp
			}
		} else {
			d.Missing = true
		}
		out = append(out, d)
	}
	return out
}
