package perfrecord

import (
	"path/filepath"
	"testing"
)

func sample(ids []string, evps []float64) *File {
	f := &File{GoVersion: "go1.24", Trials: 1, Seed: 1, Quick: true}
	for i, id := range ids {
		f.Experiments = append(f.Experiments, Record{ID: id, EventsPerSec: evps[i], WallSeconds: 1})
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	f := sample([]string{"fig1", "fig2"}, []float64{1e6, 2e6})
	f.GeneratedAt = "2026-07-28T00:00:00Z"
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Experiments) != 2 || got.Experiments[1].EventsPerSec != 2e6 ||
		got.GeneratedAt != f.GeneratedAt || !got.Quick {
		t.Fatalf("round trip mangled the record: %+v", got)
	}
}

func TestCompareGate(t *testing.T) {
	base := sample([]string{"a", "b", "c", "d"}, []float64{1000, 1000, 1000, 1000})
	cur := sample([]string{"a", "b", "c", "new"}, []float64{900, 840, 1100, 1})
	deltas := Compare(base, cur)
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4 (one per baseline experiment)", len(deltas))
	}
	// a: −10% — within a 15% gate. b: −16% — regression. c: faster — fine.
	// d: missing from the new record — always a gate failure.
	wantRegressed := map[string]bool{"a": false, "b": true, "c": false, "d": true}
	for _, d := range deltas {
		if got := d.Regressed(0.15); got != wantRegressed[d.ID] {
			t.Errorf("experiment %s: Regressed(0.15) = %v (ratio %.3f, missing %v), want %v",
				d.ID, got, d.Ratio, d.Missing, wantRegressed[d.ID])
		}
	}
	if !deltas[3].Missing {
		t.Error("experiment d should be flagged missing")
	}
	// A tighter gate catches the 10% drop too.
	if !deltas[0].Regressed(0.05) {
		t.Error("experiment a should regress a 5% gate")
	}
}

func TestNoisyGuard(t *testing.T) {
	base := sample([]string{"a", "b"}, []float64{1000, 1000})
	cur := sample([]string{"a", "b"}, []float64{500, 500})
	base.Experiments[0].WallSeconds = 0.002 // ms-scale: events/sec is noise
	deltas := Compare(base, cur)
	if !deltas[0].Noisy(0.05) || deltas[1].Noisy(0.05) {
		t.Fatalf("Noisy(0.05) = (%v, %v), want (true, false)", deltas[0].Noisy(0.05), deltas[1].Noisy(0.05))
	}
	// A missing experiment is a hard failure, never excused as noise.
	cur2 := sample([]string{"b"}, []float64{1000})
	if d := Compare(base, cur2)[0]; d.Noisy(0.05) || !d.Regressed(0.15) {
		t.Fatalf("missing experiment must gate regardless of wall time: %+v", d)
	}
}

func TestNormalize(t *testing.T) {
	r := Record{Allocs: 1000, AllocBytes: 64000, SimEvents: 500}
	r.Normalize()
	if r.AllocsPerOp != 2 || r.BytesPerOp != 128 {
		t.Fatalf("Normalize: allocs/op=%v bytes/op=%v, want 2 and 128", r.AllocsPerOp, r.BytesPerOp)
	}
	var empty Record
	empty.Normalize()
	if empty.AllocsPerOp != 0 || empty.BytesPerOp != 0 {
		t.Fatalf("Normalize with no events must stay zero: %+v", empty)
	}
}

func TestCompareAllocGate(t *testing.T) {
	base := sample([]string{"a", "b", "c", "d"}, []float64{1000, 1000, 1000, 1000})
	cur := sample([]string{"a", "b", "c", "d"}, []float64{1000, 1000, 1000, 1000})
	// a: +10% allocs/event — within a 15% gate. b: +30% — regression.
	// c: improved — fine. d: zero baseline (pre-field record) — ungated
	// even though the new record allocates.
	for i, per := range []float64{10, 10, 10, 0} {
		base.Experiments[i].AllocsPerOp = per
	}
	for i, per := range []float64{11, 13, 5, 40} {
		cur.Experiments[i].AllocsPerOp = per
	}
	deltas := Compare(base, cur)
	want := map[string]bool{"a": false, "b": true, "c": false, "d": false}
	for _, d := range deltas {
		if got := d.AllocRegressed(0.15); got != want[d.ID] {
			t.Errorf("experiment %s: AllocRegressed(0.15) = %v (ratio %.3f), want %v",
				d.ID, got, d.AllocRatio, want[d.ID])
		}
		if d.Regressed(0.15) {
			t.Errorf("experiment %s: allocation growth must not trip the throughput gate", d.ID)
		}
	}
	// A missing experiment fails via Regressed, not the alloc gate.
	cur2 := sample([]string{"b", "c", "d"}, []float64{1000, 1000, 1000})
	if d := Compare(base, cur2)[0]; d.AllocRegressed(0.15) || !d.Regressed(0.15) {
		t.Fatalf("missing experiment should gate via Regressed only: %+v", d)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := sample([]string{"a"}, []float64{0})
	cur := sample([]string{"a"}, []float64{0})
	if d := Compare(base, cur)[0]; d.Regressed(0.15) {
		t.Fatalf("zero-throughput baseline must not divide by zero into a regression: %+v", d)
	}
}
