package harness

import (
	"fmt"
	"math"
	"math/rand"

	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/stats"
	"amac/internal/topology"
)

// shapeThreshold is the maximum relative growth of the measured/bound ratio
// across a sweep before the harness declares the bound's shape violated.
const shapeThreshold = 0.75

// looseBound is the measured/bound ratio below which the bound is
// comfortably loose: ratio-trend analysis is then meaningless (relative
// growth of near-zero ratios) and the upper bound trivially holds.
const looseBound = 0.5

func verdict(t *Table, sweep, measured, bound []float64) {
	trend := stats.GrowthTrend(sweep, measured, bound)
	maxRatio := 0.0
	for _, r := range stats.Ratios(measured, bound) {
		if r > maxRatio {
			maxRatio = r
		}
	}
	ok := "HOLDS"
	switch {
	case maxRatio <= looseBound:
		t.AddNote("shape %s: measured stays within %.0f%% of the bound everywhere (bound comfortably loose)",
			ok, maxRatio*100)
		return
	case trend > shapeThreshold:
		ok = "VIOLATED"
	}
	t.AddNote("shape %s: measured/bound ratio trend %+.3f across the sweep (threshold %.2f)",
		ok, trend, shapeThreshold)
}

// Fig1StdReliable reproduces the G′ = G cell of Figure 1 (bound from [30]):
// BMMB solves MMB in O(D·Fprog + k·Fack). Two sweeps on reliable lines
// under the Sync scheduler (receives at Fprog, acks at the full Fack — the
// worst legal timing).
func Fig1StdReliable(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "fig1-std-reliable",
		Title:      "BMMB, standard model, G' = G",
		PaperClaim: "O(D·Fprog + k·Fack)  [Figure 1; bound from KLN'11]",
		Columns:    []string{"sweep", "n", "D", "k", "time", "bound", "ratio"},
	}
	bound := func(d, k int) float64 {
		return float64(sim.Time(d)*o.Fprog + sim.Time(k)*o.Fack)
	}
	sizes := []int{8, 16, 32, 64}
	if o.Quick {
		sizes = []int{8, 16, 32}
	}
	const kD = 4
	var sweep, meas, bnd []float64
	ms := pointMeans(o, len(sizes), func(pi int, seed int64) float64 {
		n := sizes[pi]
		return float64(bmmbRun(o, topology.Line(n), &sched.Sync{},
			core.SingleSource(n, 0, kD), seed).CompletionTime)
	})
	for i, n := range sizes {
		m := ms[i]
		b := bound(n-1, kD)
		t.AddRow("D", fmt.Sprint(n), fmt.Sprint(n-1), fmt.Sprint(kD),
			ticksStr(m), ticksStr(b), ratioStr(m, b))
		sweep = append(sweep, float64(n-1))
		meas = append(meas, m)
		bnd = append(bnd, b)
	}
	verdict(t, sweep, meas, bnd)
	ks := []int{1, 2, 4, 8, 16}
	if o.Quick {
		ks = []int{1, 4, 8}
	}
	const nK = 32
	sweep, meas, bnd = nil, nil, nil
	ms = pointMeans(o, len(ks), func(pi int, seed int64) float64 {
		k := ks[pi]
		return float64(bmmbRun(o, topology.Line(nK), &sched.Sync{},
			core.SingleSource(nK, 0, k), seed).CompletionTime)
	})
	for i, k := range ks {
		m := ms[i]
		b := bound(nK-1, k)
		t.AddRow("k", fmt.Sprint(nK), fmt.Sprint(nK-1), fmt.Sprint(k),
			ticksStr(m), ticksStr(b), ratioStr(m, b))
		sweep = append(sweep, float64(k))
		meas = append(meas, m)
		bnd = append(bnd, b)
	}
	verdict(t, sweep, meas, bnd)
	return t
}

// Fig1StdRRestricted reproduces the r-restricted cell of Figure 1 (Theorem
// 3.2): BMMB solves MMB in O(D·Fprog + r·k·Fack) when every G′ edge spans
// at most r hops of G. The sweep varies r on a line with a dense
// r-restricted G′ under both benign and contention schedulers.
func Fig1StdRRestricted(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "fig1-std-rrestricted",
		Title:      "BMMB, standard model, r-restricted G'",
		PaperClaim: "O(D·Fprog + r·k·Fack)  [Theorem 3.2]",
		Columns:    []string{"sched", "n", "r", "k", "time", "bound", "ratio"},
	}
	n, k := 33, 6
	rs := []int{1, 2, 4, 8}
	if o.Quick {
		n, k = 17, 4
		rs = []int{1, 2, 4}
	}
	bound := func(r int) float64 {
		return float64(sim.Time(n-1)*o.Fprog + sim.Time(r*k)*o.Fack)
	}
	for _, schedName := range []string{"sync", "contention"} {
		var sweep, meas, bnd []float64
		ms := pointMeans(o, len(rs), func(pi int, seed int64) float64 {
			r := rs[pi]
			rng := rand.New(rand.NewSource(seed))
			d := topology.LineRRestricted(n, r, 0.6, rng)
			var s mac.Scheduler
			if schedName == "sync" {
				s = &sched.Sync{Rel: sched.Bernoulli{P: 0.5}}
			} else {
				s = &sched.Contention{Rel: sched.Bernoulli{P: 0.5}}
			}
			a := core.Singleton(n, sources(n, k))
			return float64(bmmbRun(o, d, s, a, seed).CompletionTime)
		})
		for i, r := range rs {
			m := ms[i]
			b := bound(r)
			t.AddRow(schedName, fmt.Sprint(n), fmt.Sprint(r), fmt.Sprint(k),
				ticksStr(m), ticksStr(b), ratioStr(m, b))
			sweep = append(sweep, float64(r))
			meas = append(meas, m)
			bnd = append(bnd, b)
		}
		verdict(t, sweep, meas, bnd)
	}
	return t
}

// Fig1StdArbitrary reproduces the arbitrary-G′ cell of Figure 1 (Theorem
// 3.1): BMMB solves MMB in O((D + k)·Fack) with no constraint on G′.
func Fig1StdArbitrary(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "fig1-std-arbitrary",
		Title:      "BMMB, standard model, arbitrary G'",
		PaperClaim: "O((D + k)·Fack)  [Theorem 3.1]",
		Columns:    []string{"n", "extra-G'", "k", "time", "bound", "ratio"},
	}
	n := 33
	ks := []int{2, 4, 8, 16}
	if o.Quick {
		n = 17
		ks = []int{2, 4, 8}
	}
	extra := n
	var sweep, meas, bnd []float64
	ms := pointMeans(o, len(ks), func(pi int, seed int64) float64 {
		k := ks[pi]
		rng := rand.New(rand.NewSource(seed))
		d := topology.ArbitraryNoise(topology.Line(n).G, extra, rng,
			fmt.Sprintf("line+%d-wild-edges", extra))
		a := core.Singleton(n, sources(n, k))
		return float64(bmmbRun(o, d, &sched.Contention{Rel: sched.Bernoulli{P: 0.5}}, a, seed).CompletionTime)
	})
	for i, k := range ks {
		m := ms[i]
		b := float64(sim.Time(n-1+k) * o.Fack)
		t.AddRow(fmt.Sprint(n), fmt.Sprint(extra), fmt.Sprint(k),
			ticksStr(m), ticksStr(b), ratioStr(m, b))
		sweep = append(sweep, float64(k))
		meas = append(meas, m)
		bnd = append(bnd, b)
	}
	verdict(t, sweep, meas, bnd)
	return t
}

// sources spreads k message origins evenly over the n nodes.
func sources(n, k int) []graph.NodeID {
	out := make([]graph.NodeID, k)
	for i := range out {
		out[i] = graph.NodeID(i * n / k)
	}
	return out
}

// Fig2LowerBound reproduces the grey-zone lower bound (Theorem 3.17) by
// executing its two adversarial constructions: the Lemma 3.18 star choke
// (Ω(k·Fack)) and the Lemma 3.19/3.20 parallel-lines schedule on the
// Figure 2 network (Ω(D·Fack)). The measured completion must meet or
// exceed the formula — these are lower bounds, so ratio ≥ 1 is the verdict.
func Fig2LowerBound(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "fig1-std-greyzone-lb",
		Title:      "Lower bound executions, standard model, grey zone G'",
		PaperClaim: "Ω((D + k)·Fack)  [Theorem 3.17; Figure 2 network]",
		Columns:    []string{"construction", "param", "time", "formula", "ratio"},
	}
	ds := []int{4, 8, 16, 32}
	ks := []int{2, 4, 8, 16}
	if o.Quick {
		ds = []int{4, 8, 16}
		ks = []int{2, 4, 8}
	}
	allOK := true
	dMeans := pointMeans(o, len(ds), func(pi int, seed int64) float64 {
		d := ds[pi]
		c := topology.NewParallelLinesC(d)
		m0 := core.Msg{ID: 0, Origin: c.A(1)}
		m1 := core.Msg{ID: 1, Origin: c.B(1)}
		a := make(core.Assignment, c.N())
		a[c.A(1)] = []core.Msg{m0}
		a[c.B(1)] = []core.Msg{m1}
		s := &sched.ParallelLines{
			Net:  c,
			IsM0: func(p any) bool { return p == m0 },
			IsM1: func(p any) bool { return p == m1 },
		}
		return float64(bmmbRun(o, c.Dual, s, a, seed).CompletionTime)
	})
	for i, d := range ds {
		m := dMeans[i]
		f := float64(sim.Time(d-1) * o.Fack)
		if m < f {
			allOK = false
		}
		t.AddRow("parallel-lines (Fig 2)", fmt.Sprintf("D=%d", d),
			ticksStr(m), ticksStr(f), ratioStr(m, f))
	}
	kMeans := pointMeans(o, len(ks), func(pi int, seed int64) float64 {
		k := ks[pi]
		s := topology.NewStarChoke(k)
		a := make(core.Assignment, s.N())
		for i := 1; i < k; i++ {
			v := s.Source(i)
			a[v] = []core.Msg{{ID: i - 1, Origin: v}}
		}
		a[s.Hub()] = []core.Msg{{ID: k - 1, Origin: s.Hub()}}
		return float64(bmmbRun(o, s.Dual, &sched.Sync{}, a, seed).CompletionTime)
	})
	for i, k := range ks {
		m := kMeans[i]
		f := float64(sim.Time(k-1) * o.Fack)
		if m < f {
			allOK = false
		}
		t.AddRow("star-choke (Lemma 3.18)", fmt.Sprintf("k=%d", k),
			ticksStr(m), ticksStr(f), ratioStr(m, f))
	}
	if allOK {
		t.AddNote("lower bound HOLDS: every adversarial execution takes at least its formula")
	} else {
		t.AddNote("lower bound VIOLATED: some execution beat the adversarial schedule")
	}
	return t
}

// Fig1EnhGreyZone reproduces the enhanced-model cell of Figure 1 (Theorem
// 4.1): FMMB solves MMB in O((D·log n + k·log n + log³n)·Fprog) w.h.p. on
// grey-zone networks, with no Fack term at all.
func Fig1EnhGreyZone(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "fig1-enh-greyzone",
		Title:      "FMMB, enhanced model, grey zone G'",
		PaperClaim: "O((D·log n + k·log n + log³n)·Fprog), w.h.p.  [Theorem 4.1]",
		Columns:    []string{"sweep", "n", "D", "k", "rounds", "bound-rounds", "ratio"},
	}
	const c = 1.6
	bound := func(d, k, n int) float64 {
		ln := float64(core.Log2Ceil(n))
		if ln < 1 {
			ln = 1
		}
		return (float64(d)*ln + float64(k)*ln + ln*ln*ln)
	}
	type point struct {
		n    int
		side float64
		k    int
	}
	npoints := []point{{16, 2.6, 3}, {25, 3.3, 3}, {36, 4.2, 3}, {49, 5.0, 3}}
	kpoints := []point{{36, 4.2, 1}, {36, 4.2, 2}, {36, 4.2, 4}, {36, 4.2, 8}}
	if o.Quick {
		npoints = npoints[:3]
		kpoints = kpoints[:3]
	}
	type trial struct {
		completion, diam float64
	}
	run := func(sweepName string, pts []point, sweepOf func(point, int) float64) {
		res := collectTrials(o, len(pts), func(pi int, seed int64) trial {
			p := pts[pi]
			rng := rand.New(rand.NewSource(seed * 1237))
			d := topology.ConnectedRandomGeometric(p.n, p.side, c, 0.5, rng, 200)
			if d == nil {
				panic("harness: no connected geometric instance")
			}
			diam := float64(d.G.Diameter())
			a := core.Singleton(d.N(), sources(d.N(), p.k))
			r, _ := fmmbRun(o, d, c, a, seed, true)
			return trial{completion: float64(r.CompletionTime), diam: diam}
		})
		var sweep, meas, bnd []float64
		for pi, p := range pts {
			var sum float64
			for _, tr := range res[pi] {
				sum += tr.completion
			}
			m := sum / float64(o.Trials)
			// The instance topology (and so the diameter) is seed-keyed;
			// report the last trial's, matching the sequential harness.
			diam := res[pi][o.Trials-1].diam
			rounds := m / float64(o.Fprog)
			b := bound(int(diam), p.k, p.n)
			t.AddRow(sweepName, fmt.Sprint(p.n), fmt.Sprintf("%.0f", diam), fmt.Sprint(p.k),
				ticksStr(rounds), ticksStr(b), ratioStr(rounds, b))
			sweep = append(sweep, sweepOf(p, int(diam)))
			meas = append(meas, rounds)
			bnd = append(bnd, b)
		}
		verdict(t, sweep, meas, bnd)
	}
	run("n", npoints, func(p point, _ int) float64 { return float64(p.n) })
	run("k", kpoints, func(p point, _ int) float64 { return float64(p.k) })
	t.AddNote("completion has no Fack term: see ablation-bmmb-vs-fmmb for the Fack sweep")
	return t
}

// AblationFackRatio reproduces the headline comparison implied by Figure 1:
// as Fack/Fprog grows (the realistic regime, Fprog ≪ Fack), BMMB's
// completion time on the standard layer grows with Fack while FMMB on the
// enhanced layer is Fack-independent — the paper's argument for the abort
// interface.
func AblationFackRatio(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "ablation-bmmb-vs-fmmb",
		Title:      "BMMB (standard) vs FMMB (enhanced) as Fack/Fprog grows",
		PaperClaim: "FMMB has no Fack term (Theorem 4.1); BMMB pays k·Fack (Theorem 3.2)",
		Columns:    []string{"Fack/Fprog", "BMMB-time", "FMMB-time", "winner"},
	}
	ratios := []int{2, 8, 32, 128}
	if o.Quick {
		ratios = []int{2, 8, 32}
	}
	rng := rand.New(rand.NewSource(424242))
	const c = 1.6
	d := topology.ConnectedRandomGeometric(30, 3.8, c, 0.5, rng, 200)
	if d == nil {
		panic("harness: no connected geometric instance")
	}
	k := 4
	a := core.Singleton(d.N(), sources(d.N(), k))
	type trial struct {
		bmmb, fmmb float64
	}
	res := collectTrials(o, len(ratios), func(pi int, seed int64) trial {
		oo := o
		oo.Fack = oo.Fprog * sim.Time(ratios[pi])
		bm := float64(bmmbRun(oo, d, &sched.Sync{Rel: sched.Bernoulli{P: 0.5}}, a, seed).CompletionTime)
		fres, _ := fmmbRun(oo, d, c, a, seed, true)
		return trial{bmmb: bm, fmmb: float64(fres.CompletionTime)}
	})
	var bs, fs []float64
	for pi, r := range ratios {
		var bm, fm float64
		for _, tr := range res[pi] {
			bm += tr.bmmb
			fm += tr.fmmb
		}
		bm /= float64(o.Trials)
		fm /= float64(o.Trials)
		w := "BMMB"
		if fm < bm {
			w = "FMMB"
		}
		t.AddRow(fmt.Sprint(r), ticksStr(bm), ticksStr(fm), w)
		bs = append(bs, bm)
		fs = append(fs, fm)
	}
	bGrowth := bs[len(bs)-1] / bs[0]
	fGrowth := fs[len(fs)-1] / fs[0]
	t.AddNote("BMMB grew %.1f×, FMMB grew %.2f× across the Fack sweep", bGrowth, fGrowth)
	if fGrowth < 1.05 && bGrowth > 2 {
		t.AddNote("shape HOLDS: crossover where k·Fack exceeds FMMB's polylog rounds")
	} else {
		t.AddNote("shape VIOLATED: expected Fack-linear BMMB vs Fack-flat FMMB")
	}
	return t
}

// MISExperiment measures the MIS subroutine (Section 4.2) standalone:
// validity of the constructed set and rounds until the last node decides,
// against the paper's O(c⁴·log³ n) schedule.
func MISExperiment(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "mis-subroutine",
		Title:      "MIS subroutine on grey-zone geometric networks",
		PaperClaim: "valid MIS w.h.p. in O(c⁴·log³ n) rounds  [Section 4.2]",
		Columns:    []string{"n", "|MIS|", "|greedy|", "valid", "decide-rounds", "schedule-rounds"},
	}
	const c = 1.6
	sizes := []int{16, 25, 36, 49}
	if o.Quick {
		sizes = []int{16, 25, 36}
	}
	type trial struct {
		misSize, greedySize, decideRounds, schedRounds float64
		valid                                          bool
	}
	res := collectTrials(o, len(sizes), func(pi int, seed int64) trial {
		n := sizes[pi]
		rng := rand.New(rand.NewSource(seed * 7717))
		side := math.Sqrt(float64(n)) * 0.72
		d := topology.ConnectedRandomGeometric(n, side, c, 0.5, rng, 200)
		if d == nil {
			panic("harness: no connected geometric instance")
		}
		set, decideAt, total := runMIS(o, d, c, seed)
		return trial{
			misSize:      float64(len(set)),
			greedySize:   float64(len(d.G.GreedyMIS())),
			decideRounds: float64(decideAt) / float64(o.Fprog),
			schedRounds:  float64(total),
			valid:        d.G.IsMaximalIndependent(set),
		}
	})
	for pi, n := range sizes {
		valid := true
		var misSize, greedySize, decideRounds, schedRounds float64
		for _, tr := range res[pi] {
			if !tr.valid {
				valid = false
			}
			misSize += tr.misSize
			greedySize += tr.greedySize
			decideRounds += tr.decideRounds
			schedRounds = tr.schedRounds
		}
		misSize /= float64(o.Trials)
		greedySize /= float64(o.Trials)
		decideRounds /= float64(o.Trials)
		t.AddRow(fmt.Sprint(n), fmt.Sprintf("%.1f", misSize), fmt.Sprintf("%.1f", greedySize),
			fmt.Sprint(valid), ticksStr(decideRounds), ticksStr(schedRounds))
		if !valid {
			t.AddNote("VIOLATED: invalid MIS at n=%d", n)
		}
	}
	t.AddNote("decide-rounds ≪ schedule-rounds: the subroutine converges far before its worst-case budget")
	t.AddNote("|greedy| is the centralized sequential baseline (graph.GreedyMIS) on the same instances")
	return t
}

// SubroutineExperiment measures the gather (Lemma 4.6) and spread (Lemma
// 4.8) stages inside full FMMB runs: time for every message to be owned by
// an MIS node, and time from spread start to full dissemination.
func SubroutineExperiment(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "gather-spread-subroutines",
		Title:      "Gather and spread stages inside FMMB",
		PaperClaim: "gather O(c²(k+log n)) periods [Lemma 4.6]; spread O((D+k)·log n) rounds [Lemma 4.8]",
		Columns:    []string{"k", "gather-periods-used", "gather-budget", "spread-rounds-used", "spread-budget"},
	}
	const c = 1.6
	ks := []int{1, 2, 4, 8}
	if o.Quick {
		ks = []int{1, 2, 4}
	}
	type trial struct {
		gUsed, gBudget, sUsed, sBudget float64
	}
	res := collectTrials(o, len(ks), func(pi int, seed int64) trial {
		k := ks[pi]
		rng := rand.New(rand.NewSource(seed * 31337))
		d := topology.ConnectedRandomGeometric(36, 4.2, c, 0.5, rng, 200)
		if d == nil {
			panic("harness: no connected geometric instance")
		}
		a := core.Singleton(d.N(), sources(d.N(), k))
		gu, gb, su, sb := runStages(o, d, c, a, seed)
		return trial{gUsed: gu, gBudget: gb, sUsed: su, sBudget: sb}
	})
	for pi, k := range ks {
		var gUsed, gBudget, sUsed, sBudget float64
		for _, tr := range res[pi] {
			gUsed += tr.gUsed
			gBudget = tr.gBudget
			sUsed += tr.sUsed
			sBudget = tr.sBudget
		}
		gUsed /= float64(o.Trials)
		sUsed /= float64(o.Trials)
		t.AddRow(fmt.Sprint(k), ticksStr(gUsed), ticksStr(gBudget), ticksStr(sUsed), ticksStr(sBudget))
	}
	t.AddNote("used ≤ budget in every row confirms the lemmas' schedules suffice")
	return t
}
