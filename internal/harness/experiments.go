package harness

import (
	"fmt"
	"math"

	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/scenario"
	"amac/internal/sim"
	"amac/internal/stats"
	"amac/internal/topology"
)

// The Fig1*/Fig2* experiments below are declarative sweep definitions: each
// data point is a scenario.Spec (topology, workload, algorithm and scheduler
// all resolved by name through the registries) plus its display cells and
// bound formula, executed by the generic RunSweep. Adding a sweep point is a
// data change.

// shapeThreshold is the maximum relative growth of the measured/bound ratio
// across a sweep before the harness declares the bound's shape violated.
const shapeThreshold = 0.75

// looseBound is the measured/bound ratio below which the bound is
// comfortably loose: ratio-trend analysis is then meaningless (relative
// growth of near-zero ratios) and the upper bound trivially holds.
const looseBound = 0.5

func verdict(t *Table, sweep, measured, bound []float64) {
	trend := stats.GrowthTrend(sweep, measured, bound)
	maxRatio := 0.0
	for _, r := range stats.Ratios(measured, bound) {
		if r > maxRatio {
			maxRatio = r
		}
	}
	ok := "HOLDS"
	switch {
	case maxRatio <= looseBound:
		t.AddNote("shape %s: measured stays within %.0f%% of the bound everywhere (bound comfortably loose)",
			ok, maxRatio*100)
		return
	case trend > shapeThreshold:
		ok = "VIOLATED"
	}
	t.AddNote("shape %s: measured/bound ratio trend %+.3f across the sweep (threshold %.2f)",
		ok, trend, shapeThreshold)
}

// bmmbSpec is the common BMMB scenario skeleton of the Figure 1 sweeps.
func bmmbSpec(topo scenario.TopologySpec, w scenario.WorkloadSpec, s scenario.SchedulerSpec) scenario.Spec {
	return scenario.Spec{
		Topology:  topo,
		Workload:  w,
		Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
		Scheduler: s,
	}
}

// Fig1StdReliable reproduces the G′ = G cell of Figure 1 (bound from [30]):
// BMMB solves MMB in O(D·Fprog + k·Fack). Two sweeps on reliable lines
// under the Sync scheduler (receives at Fprog, acks at the full Fack — the
// worst legal timing).
func Fig1StdReliable(o Options) *Table {
	o = o.withDefaults()
	bound := func(d, k int) float64 {
		return float64(sim.Time(d)*o.Fprog + sim.Time(k)*o.Fack)
	}
	sizes := []int{8, 16, 32, 64}
	if o.Quick {
		sizes = []int{8, 16, 32}
	}
	const kD = 4
	var dPoints []SweepPoint
	for _, n := range sizes {
		dPoints = append(dPoints, SweepPoint{
			Spec: bmmbSpec(
				scenario.TopologySpec{Name: "line", Params: topology.Params{"n": float64(n)}},
				scenario.WorkloadSpec{Kind: scenario.WorkloadSingleSource, K: kD, Origin: 0},
				scenario.SchedulerSpec{Name: "sync"},
			),
			X:     float64(n - 1),
			Cells: cells("D", fmt.Sprint(n), fmt.Sprint(n-1), fmt.Sprint(kD)),
			Bound: staticBound(bound(n-1, kD)),
		})
	}
	ks := []int{1, 2, 4, 8, 16}
	if o.Quick {
		ks = []int{1, 4, 8}
	}
	const nK = 32
	var kPoints []SweepPoint
	for _, k := range ks {
		kPoints = append(kPoints, SweepPoint{
			Spec: bmmbSpec(
				scenario.TopologySpec{Name: "line", Params: topology.Params{"n": float64(nK)}},
				scenario.WorkloadSpec{Kind: scenario.WorkloadSingleSource, K: k, Origin: 0},
				scenario.SchedulerSpec{Name: "sync"},
			),
			X:     float64(k),
			Cells: cells("k", fmt.Sprint(nK), fmt.Sprint(nK-1), fmt.Sprint(k)),
			Bound: staticBound(bound(nK-1, k)),
		})
	}
	return RunSweep(o, SweepDef{
		ID:         "fig1-std-reliable",
		Title:      "BMMB, standard model, G' = G",
		PaperClaim: "O(D·Fprog + k·Fack)  [Figure 1; bound from KLN'11]",
		Columns:    []string{"sweep", "n", "D", "k", "time", "bound", "ratio"},
		Segments:   []SweepSegment{{Points: dPoints}, {Points: kPoints}},
		Verdict:    VerdictUpper,
	})
}

// Fig1StdRRestricted reproduces the r-restricted cell of Figure 1 (Theorem
// 3.2): BMMB solves MMB in O(D·Fprog + r·k·Fack) when every G′ edge spans
// at most r hops of G. The sweep varies r on a line with a dense
// r-restricted G′ under both benign and contention schedulers.
func Fig1StdRRestricted(o Options) *Table {
	o = o.withDefaults()
	n, k := 33, 6
	rs := []int{1, 2, 4, 8}
	if o.Quick {
		n, k = 17, 4
		rs = []int{1, 2, 4}
	}
	bound := func(r int) float64 {
		return float64(sim.Time(n-1)*o.Fprog + sim.Time(r*k)*o.Fack)
	}
	var segments []SweepSegment
	for _, schedName := range []string{"sync", "contention"} {
		var points []SweepPoint
		for _, r := range rs {
			points = append(points, SweepPoint{
				Spec: bmmbSpec(
					scenario.TopologySpec{Name: "rline",
						Params: topology.Params{"n": float64(n), "r": float64(r), "p": 0.6}},
					scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: k},
					scenario.SchedulerSpec{Name: schedName, Params: topology.Params{"rel": 0.5}},
				),
				X:     float64(r),
				Cells: cells(schedName, fmt.Sprint(n), fmt.Sprint(r), fmt.Sprint(k)),
				Bound: staticBound(bound(r)),
			})
		}
		segments = append(segments, SweepSegment{Points: points})
	}
	return RunSweep(o, SweepDef{
		ID:         "fig1-std-rrestricted",
		Title:      "BMMB, standard model, r-restricted G'",
		PaperClaim: "O(D·Fprog + r·k·Fack)  [Theorem 3.2]",
		Columns:    []string{"sched", "n", "r", "k", "time", "bound", "ratio"},
		Segments:   segments,
		Verdict:    VerdictUpper,
	})
}

// Fig1StdArbitrary reproduces the arbitrary-G′ cell of Figure 1 (Theorem
// 3.1): BMMB solves MMB in O((D + k)·Fack) with no constraint on G′.
func Fig1StdArbitrary(o Options) *Table {
	o = o.withDefaults()
	n := 33
	ks := []int{2, 4, 8, 16}
	if o.Quick {
		n = 17
		ks = []int{2, 4, 8}
	}
	extra := n
	var points []SweepPoint
	for _, k := range ks {
		points = append(points, SweepPoint{
			Spec: bmmbSpec(
				scenario.TopologySpec{Name: "noisy-line",
					Params: topology.Params{"n": float64(n), "extra": float64(extra)}},
				scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: k},
				scenario.SchedulerSpec{Name: "contention", Params: topology.Params{"rel": 0.5}},
			),
			X:     float64(k),
			Cells: cells(fmt.Sprint(n), fmt.Sprint(extra), fmt.Sprint(k)),
			Bound: staticBound(float64(sim.Time(n-1+k) * o.Fack)),
		})
	}
	return RunSweep(o, SweepDef{
		ID:         "fig1-std-arbitrary",
		Title:      "BMMB, standard model, arbitrary G'",
		PaperClaim: "O((D + k)·Fack)  [Theorem 3.1]",
		Columns:    []string{"n", "extra-G'", "k", "time", "bound", "ratio"},
		Segments:   []SweepSegment{{Points: points}},
		Verdict:    VerdictUpper,
	})
}

// Fig2LowerBound reproduces the grey-zone lower bound (Theorem 3.17) by
// executing its two adversarial constructions: the Lemma 3.18 star choke
// (Ω(k·Fack)) and the Lemma 3.19/3.20 parallel-lines schedule on the
// Figure 2 network (Ω(D·Fack)). The measured completion must meet or
// exceed the formula — these are lower bounds, so ratio ≥ 1 is the verdict.
func Fig2LowerBound(o Options) *Table {
	o = o.withDefaults()
	ds := []int{4, 8, 16, 32}
	ks := []int{2, 4, 8, 16}
	if o.Quick {
		ds = []int{4, 8, 16}
		ks = []int{2, 4, 8}
	}
	var dPoints []SweepPoint
	for _, d := range ds {
		dPoints = append(dPoints, SweepPoint{
			Spec: bmmbSpec(
				scenario.TopologySpec{Name: "parallel-lines", Params: topology.Params{"d": float64(d)}},
				scenario.WorkloadSpec{Kind: scenario.WorkloadConstruction},
				scenario.SchedulerSpec{Name: "adversary"},
			),
			X:     float64(d),
			Cells: cells("parallel-lines (Fig 2)", fmt.Sprintf("D=%d", d)),
			Bound: staticBound(float64(sim.Time(d-1) * o.Fack)),
		})
	}
	var kPoints []SweepPoint
	for _, k := range ks {
		kPoints = append(kPoints, SweepPoint{
			Spec: bmmbSpec(
				scenario.TopologySpec{Name: "star-choke", Params: topology.Params{"k": float64(k)}},
				scenario.WorkloadSpec{Kind: scenario.WorkloadConstruction},
				scenario.SchedulerSpec{Name: "sync"},
			),
			X:     float64(k),
			Cells: cells("star-choke (Lemma 3.18)", fmt.Sprintf("k=%d", k)),
			Bound: staticBound(float64(sim.Time(k-1) * o.Fack)),
		})
	}
	return RunSweep(o, SweepDef{
		ID:         "fig1-std-greyzone-lb",
		Title:      "Lower bound executions, standard model, grey zone G'",
		PaperClaim: "Ω((D + k)·Fack)  [Theorem 3.17; Figure 2 network]",
		Columns:    []string{"construction", "param", "time", "formula", "ratio"},
		Segments:   []SweepSegment{{Points: dPoints}, {Points: kPoints}},
		Verdict:    VerdictLower,
	})
}

// Fig1EnhGreyZone reproduces the enhanced-model cell of Figure 1 (Theorem
// 4.1): FMMB solves MMB in O((D·log n + k·log n + log³n)·Fprog) w.h.p. on
// grey-zone networks, with no Fack term at all.
func Fig1EnhGreyZone(o Options) *Table {
	o = o.withDefaults()
	const c = 1.6
	bound := func(d, k, n int) float64 {
		ln := float64(core.Log2Ceil(n))
		if ln < 1 {
			ln = 1
		}
		return (float64(d)*ln + float64(k)*ln + ln*ln*ln)
	}
	type point struct {
		n    int
		side float64
		k    int
	}
	npoints := []point{{16, 2.6, 3}, {25, 3.3, 3}, {36, 4.2, 3}, {49, 5.0, 3}}
	kpoints := []point{{36, 4.2, 1}, {36, 4.2, 2}, {36, 4.2, 4}, {36, 4.2, 8}}
	if o.Quick {
		npoints = npoints[:3]
		kpoints = kpoints[:3]
	}
	segment := func(sweepName string, pts []point, sweepOf func(point) float64) SweepSegment {
		var points []SweepPoint
		for _, p := range pts {
			p := p
			points = append(points, SweepPoint{
				Spec: scenario.Spec{
					Topology: scenario.TopologySpec{Name: "rgg",
						Params:     topology.Params{"n": float64(p.n), "side": p.side, "c": c, "p": 0.5},
						SeedFactor: 1237},
					Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: p.k},
					Algorithm: scenario.AlgorithmSpec{Name: "fmmb", Params: topology.Params{"c": c}},
				},
				X: sweepOf(p),
				Cells: func(r *scenario.Report) []string {
					// The instance topology (and so the diameter) is
					// seed-keyed; report the last trial's, matching the
					// sequential harness.
					return []string{sweepName, fmt.Sprint(p.n),
						fmt.Sprintf("%.0f", lastDiameter(r)), fmt.Sprint(p.k)}
				},
				Measure: meanRounds(o.Fprog),
				Bound: func(r *scenario.Report) float64 {
					return bound(int(lastDiameter(r)), p.k, p.n)
				},
			})
		}
		return SweepSegment{Points: points}
	}
	return RunSweep(o, SweepDef{
		ID:         "fig1-enh-greyzone",
		Title:      "FMMB, enhanced model, grey zone G'",
		PaperClaim: "O((D·log n + k·log n + log³n)·Fprog), w.h.p.  [Theorem 4.1]",
		Columns:    []string{"sweep", "n", "D", "k", "rounds", "bound-rounds", "ratio"},
		Segments: []SweepSegment{
			segment("n", npoints, func(p point) float64 { return float64(p.n) }),
			segment("k", kpoints, func(p point) float64 { return float64(p.k) }),
		},
		Verdict:    VerdictUpper,
		FinalNotes: []string{"completion has no Fack term: see ablation-bmmb-vs-fmmb for the Fack sweep"},
	})
}

// Fig1StdGreyZoneRand measures BMMB on *per-trial random* grey-zone
// geometric networks: no pinned topology seed, so every trial draws a fresh
// instance (seed-keyed through SeedFactor). Its role is twofold: the
// arbitrary-G′ bound of Theorem 3.1 is checked on the grey-zone regime the
// paper motivates, and the sweep exercises the unpinned warm path
// (workspace-built topologies, rebound run arenas) at full size, so the
// benchdiff gate watches its events/sec like every other experiment.
func Fig1StdGreyZoneRand(o Options) *Table {
	o = o.withDefaults()
	const c = 1.6
	const k = 3
	type point struct {
		n    int
		side float64
	}
	pts := []point{{16, 2.6}, {25, 3.3}, {36, 4.2}, {49, 5.0}}
	if o.Quick {
		pts = pts[:3]
	}
	var points []SweepPoint
	for _, p := range pts {
		p := p
		points = append(points, SweepPoint{
			Spec: bmmbSpec(
				scenario.TopologySpec{Name: "rgg",
					Params:     topology.Params{"n": float64(p.n), "side": p.side, "c": c, "p": 0.5},
					SeedFactor: 1237},
				scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: k},
				scenario.SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
			),
			X: float64(p.n),
			Cells: func(r *scenario.Report) []string {
				// The instance topology is seed-keyed; report the last
				// trial's diameter, matching the other randomized sweeps.
				return []string{fmt.Sprint(p.n), fmt.Sprintf("%.0f", lastDiameter(r)), fmt.Sprint(k)}
			},
			Bound: func(r *scenario.Report) float64 {
				return float64((sim.Time(lastDiameter(r)) + k) * o.Fack)
			},
		})
	}
	return RunSweep(o, SweepDef{
		ID:         "fig1-std-greyzone-rand",
		Title:      "BMMB, standard model, random grey zone instances (fresh topology per trial)",
		PaperClaim: "O((D + k)·Fack)  [Theorem 3.1 applied to the grey zone regime]",
		Columns:    []string{"n", "D", "k", "time", "bound", "ratio"},
		Segments:   []SweepSegment{{Points: points}},
		Verdict:    VerdictUpper,
	})
}

// AblationFackRatio reproduces the headline comparison implied by Figure 1:
// as Fack/Fprog grows (the realistic regime, Fprog ≪ Fack), BMMB's
// completion time on the standard layer grows with Fack while FMMB on the
// enhanced layer is Fack-independent — the paper's argument for the abort
// interface. Both sides of each point are scenario specs sharing one pinned
// grey-zone instance.
func AblationFackRatio(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "ablation-bmmb-vs-fmmb",
		Title:      "BMMB (standard) vs FMMB (enhanced) as Fack/Fprog grows",
		PaperClaim: "FMMB has no Fack term (Theorem 4.1); BMMB pays k·Fack (Theorem 3.2)",
		Columns:    []string{"Fack/Fprog", "BMMB-time", "FMMB-time", "winner"},
	}
	ratios := []int{2, 8, 32, 128}
	if o.Quick {
		ratios = []int{2, 8, 32}
	}
	const c = 1.6
	const k = 4
	topo := scenario.TopologySpec{Name: "rgg",
		Params: topology.Params{"n": 30, "side": 3.8, "c": c, "p": 0.5},
		Seed:   424242}
	workload := scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: k}
	type trial struct {
		bmmb, fmmb float64
	}
	// The topology is pinned by its seed: one instance serves every trial.
	built, err := scenario.BuildTopology(scenario.Spec{Topology: topo}, o.Seed)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	res := collectTrials(o, len(ratios), func(pi int, seed int64) trial {
		model := scenario.ModelSpec{Fprog: int64(o.Fprog), Fack: int64(o.Fprog) * int64(ratios[pi])}
		bm := mustTrialOn(scenario.Spec{
			Topology:  topo,
			Workload:  workload,
			Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
			Scheduler: scenario.SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
			Model:     model,
			Run:       scenario.RunSpec{Check: o.Check},
		}, seed, built)
		fm := mustTrialOn(scenario.Spec{
			Topology:  topo,
			Workload:  workload,
			Algorithm: scenario.AlgorithmSpec{Name: "fmmb", Params: topology.Params{"c": c}},
			Model:     model,
			Run:       scenario.RunSpec{Check: o.Check},
		}, seed, built)
		return trial{
			bmmb: float64(bm.Result.CompletionTime),
			fmmb: float64(fm.Result.CompletionTime),
		}
	})
	var bs, fs []float64
	for pi, r := range ratios {
		var bm, fm float64
		for _, tr := range res[pi] {
			bm += tr.bmmb
			fm += tr.fmmb
		}
		bm /= float64(o.Trials)
		fm /= float64(o.Trials)
		w := "BMMB"
		if fm < bm {
			w = "FMMB"
		}
		t.AddRow(fmt.Sprint(r), ticksStr(bm), ticksStr(fm), w)
		bs = append(bs, bm)
		fs = append(fs, fm)
	}
	bGrowth := bs[len(bs)-1] / bs[0]
	fGrowth := fs[len(fs)-1] / fs[0]
	t.AddNote("BMMB grew %.1f×, FMMB grew %.2f× across the Fack sweep", bGrowth, fGrowth)
	if fGrowth < 1.05 && bGrowth > 2 {
		t.AddNote("shape HOLDS: crossover where k·Fack exceeds FMMB's polylog rounds")
	} else {
		t.AddNote("shape VIOLATED: expected Fack-linear BMMB vs Fack-flat FMMB")
	}
	return t
}

// mustTrialOn executes one scenario trial on a pre-built network instance
// with the harness's fail-fast contract: spec errors, unsolved runs and
// model violations all panic.
func mustTrialOn(s scenario.Spec, seed int64, built *topology.Built) *scenario.TrialResult {
	tr, err := scenario.TrialOn(s, seed, built)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	countSimEvents(tr.Result.Steps)
	if !tr.Result.Solved {
		panic(fmt.Sprintf("harness: %s failed on %s seed %d (%d/%d delivered by %v)",
			s.Algorithm.Name, tr.Built.Dual.Name, seed,
			tr.Result.Delivered, tr.Result.Required, tr.Result.End))
	}
	if tr.Result.Report != nil && !tr.Result.Report.OK() {
		panic(fmt.Sprintf("harness: model violation on %s: %v",
			tr.Built.Dual.Name, tr.Result.Report.Violations[0]))
	}
	return tr
}

// MISExperiment measures the MIS subroutine (Section 4.2) standalone:
// validity of the constructed set and rounds until the last node decides,
// against the paper's O(c⁴·log³ n) schedule.
func MISExperiment(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "mis-subroutine",
		Title:      "MIS subroutine on grey-zone geometric networks",
		PaperClaim: "valid MIS w.h.p. in O(c⁴·log³ n) rounds  [Section 4.2]",
		Columns:    []string{"n", "|MIS|", "|greedy|", "valid", "decide-rounds", "schedule-rounds"},
	}
	const c = 1.6
	sizes := []int{16, 25, 36, 49}
	if o.Quick {
		sizes = []int{16, 25, 36}
	}
	type trial struct {
		misSize, greedySize, decideRounds, schedRounds float64
		valid                                          bool
	}
	res := collectTrials(o, len(sizes), func(pi int, seed int64) trial {
		n := sizes[pi]
		side := math.Sqrt(float64(n)) * 0.72
		built, err := topology.Build("rgg", topology.Params{
			"n": float64(n), "side": side, "c": c, "p": 0.5, "seed": float64(seed * 7717)})
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		d := built.Dual
		set, decideAt, total := runMIS(o, d, c, seed)
		return trial{
			misSize:      float64(len(set)),
			greedySize:   float64(len(d.G.GreedyMIS())),
			decideRounds: float64(decideAt) / float64(o.Fprog),
			schedRounds:  float64(total),
			valid:        d.G.IsMaximalIndependent(set),
		}
	})
	for pi, n := range sizes {
		valid := true
		var misSize, greedySize, decideRounds, schedRounds float64
		for _, tr := range res[pi] {
			if !tr.valid {
				valid = false
			}
			misSize += tr.misSize
			greedySize += tr.greedySize
			decideRounds += tr.decideRounds
			schedRounds = tr.schedRounds
		}
		misSize /= float64(o.Trials)
		greedySize /= float64(o.Trials)
		decideRounds /= float64(o.Trials)
		t.AddRow(fmt.Sprint(n), fmt.Sprintf("%.1f", misSize), fmt.Sprintf("%.1f", greedySize),
			fmt.Sprint(valid), ticksStr(decideRounds), ticksStr(schedRounds))
		if !valid {
			t.AddNote("VIOLATED: invalid MIS at n=%d", n)
		}
	}
	t.AddNote("decide-rounds ≪ schedule-rounds: the subroutine converges far before its worst-case budget")
	t.AddNote("|greedy| is the centralized sequential baseline (graph.GreedyMIS) on the same instances")
	return t
}

// SubroutineExperiment measures the gather (Lemma 4.6) and spread (Lemma
// 4.8) stages inside full FMMB runs: time for every message to be owned by
// an MIS node, and time from spread start to full dissemination.
func SubroutineExperiment(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "gather-spread-subroutines",
		Title:      "Gather and spread stages inside FMMB",
		PaperClaim: "gather O(c²(k+log n)) periods [Lemma 4.6]; spread O((D+k)·log n) rounds [Lemma 4.8]",
		Columns:    []string{"k", "gather-periods-used", "gather-budget", "spread-rounds-used", "spread-budget"},
	}
	const c = 1.6
	ks := []int{1, 2, 4, 8}
	if o.Quick {
		ks = []int{1, 2, 4}
	}
	type trial struct {
		gUsed, gBudget, sUsed, sBudget float64
	}
	res := collectTrials(o, len(ks), func(pi int, seed int64) trial {
		k := ks[pi]
		built, err := topology.Build("rgg", topology.Params{
			"n": 36, "side": 4.2, "c": c, "p": 0.5, "seed": float64(seed * 31337)})
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		a := core.Singleton(built.Dual.N(), sources(built.Dual.N(), k))
		gu, gb, su, sb := runStages(o, built.Dual, c, a, seed)
		return trial{gUsed: gu, gBudget: gb, sUsed: su, sBudget: sb}
	})
	for pi, k := range ks {
		var gUsed, gBudget, sUsed, sBudget float64
		for _, tr := range res[pi] {
			gUsed += tr.gUsed
			gBudget = tr.gBudget
			sUsed += tr.sUsed
			sBudget = tr.sBudget
		}
		gUsed /= float64(o.Trials)
		sUsed /= float64(o.Trials)
		t.AddRow(fmt.Sprint(k), ticksStr(gUsed), ticksStr(gBudget), ticksStr(sUsed), ticksStr(sBudget))
	}
	t.AddNote("used ≤ budget in every row confirms the lemmas' schedules suffice")
	return t
}

// sources spreads k message origins evenly over the n nodes.
func sources(n, k int) []graph.NodeID {
	out := make([]graph.NodeID, k)
	for i := range out {
		out[i] = graph.NodeID(i * n / k)
	}
	return out
}
