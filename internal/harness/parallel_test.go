package harness

import (
	"sync/atomic"
	"testing"
)

// TestParallelForCoversAllIndices checks the pool executes every index
// exactly once at various widths.
func TestParallelForCoversAllIndices(t *testing.T) {
	for _, p := range []int{0, 1, 2, 7, 64} {
		const n = 37
		var counts [n]atomic.Int32
		ParallelFor(p, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("p=%d: index %d ran %d times", p, i, got)
			}
		}
	}
}

// TestParallelForPropagatesPanic checks a worker panic resurfaces in the
// caller instead of crashing the process from a goroutine.
func TestParallelForPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate")
		}
	}()
	ParallelFor(4, 16, func(i int) {
		if i == 11 {
			panic("boom")
		}
	})
}

// TestParallelHarnessDeterminism is the contract of Options.Parallelism:
// every experiment table must be byte-identical at Parallelism 1 and 8.
// Experiments cover both sweep styles (pointMeans and collectTrials with
// auxiliary per-trial state such as the instance diameter).
func TestParallelHarnessDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	experiments := []struct {
		name string
		run  func(Options) *Table
	}{
		{"fig1-std-reliable", Fig1StdReliable},
		{"fig1-std-greyzone-lb", Fig2LowerBound},
		{"fig1-enh-greyzone", Fig1EnhGreyZone},
		{"mis-subroutine", MISExperiment},
	}
	for _, e := range experiments {
		opts := Options{Quick: true, Trials: 2, Seed: 5}
		opts.Parallelism = 1
		seq := e.run(opts).String()
		opts.Parallelism = 8
		par := e.run(opts).String()
		if seq != par {
			t.Errorf("%s: tables differ between Parallelism 1 and 8\n--- sequential ---\n%s--- parallel ---\n%s",
				e.name, seq, par)
		}
	}
}
