package harness

import (
	"fmt"

	"amac/internal/scenario"
	"amac/internal/sim"
)

// Options configures the experiment harness.
type Options struct {
	// Fprog and Fack are the model constants; zero selects 10 and 200
	// ticks (ratio 20, honoring Fprog ≪ Fack).
	Fprog, Fack sim.Time
	// Seed is the base random seed; trial t of an experiment uses
	// Seed + t.
	Seed int64
	// Trials is the number of repetitions averaged per data point; zero
	// selects 3.
	Trials int
	// Quick shrinks sweeps for use inside testing.B benchmarks.
	Quick bool
	// Check verifies model guarantees on every run (slower).
	Check bool
	// Parallelism bounds how many (sweep point, trial) simulations run
	// concurrently; zero or one selects sequential execution. Every run is
	// an independent deterministic simulation keyed by its seed and results
	// are reduced in index order, so rendered tables are byte-identical at
	// any Parallelism.
	Parallelism int
	// NoArena disables cross-trial run-arena and fleet reuse for pinned
	// topologies (amacbench -no-arena). Executions and rendered tables
	// are byte-identical either way; this is the debugging escape hatch.
	NoArena bool
	// Shards is the worker count experiments with a sharded leg pass to
	// the decomposed executor (amacbench -shards); zero selects
	// runtime.NumCPU(). Decomposed executions are pure functions of their
	// configuration, so every measured column is identical at any value;
	// only the informational shards column (which worker count ran)
	// reflects the setting.
	Shards int
	// Sweeper overrides how RunSweep executes an experiment's spec grid:
	// nil runs in-process via scenario.SweepWithOptions; amacbench
	// -server installs a jobs client here so experiments run on an amacd
	// daemon. Executions are pure functions of (spec, seed), so rendered
	// tables are byte-identical either way. The id is the experiment's,
	// for job naming.
	Sweeper func(id string, specs []scenario.Spec, o scenario.SweepOptions) ([]*scenario.Report, error)
}

func (o Options) withDefaults() Options {
	if o.Fprog == 0 {
		o.Fprog = 10
	}
	if o.Fack == 0 {
		o.Fack = 200
	}
	if o.Trials == 0 {
		o.Trials = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallelism == 0 {
		o.Parallelism = 1
	}
	return o
}

// ticksStr formats a tick count.
func ticksStr(v float64) string { return fmt.Sprintf("%.0f", v) }

// ratioStr formats a measured/bound ratio.
func ratioStr(measured, bound float64) string {
	return fmt.Sprintf("%.3f", measured/bound)
}
