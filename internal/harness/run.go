package harness

import (
	"fmt"

	"amac/internal/core"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// Options configures the experiment harness.
type Options struct {
	// Fprog and Fack are the model constants; zero selects 10 and 200
	// ticks (ratio 20, honoring Fprog ≪ Fack).
	Fprog, Fack sim.Time
	// Seed is the base random seed; trial t of an experiment uses
	// Seed + t.
	Seed int64
	// Trials is the number of repetitions averaged per data point; zero
	// selects 3.
	Trials int
	// Quick shrinks sweeps for use inside testing.B benchmarks.
	Quick bool
	// Check verifies model guarantees on every run (slower).
	Check bool
	// Parallelism bounds how many (sweep point, trial) simulations run
	// concurrently; zero or one selects sequential execution. Every run is
	// an independent deterministic simulation keyed by its seed and results
	// are reduced in index order, so rendered tables are byte-identical at
	// any Parallelism.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Fprog == 0 {
		o.Fprog = 10
	}
	if o.Fack == 0 {
		o.Fack = 200
	}
	if o.Trials == 0 {
		o.Trials = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallelism == 0 {
		o.Parallelism = 1
	}
	return o
}

// bmmbRun executes BMMB once and returns the result, panicking on a failed
// run: experiments are calibrated so every run must solve the instance.
func bmmbRun(o Options, d *topology.Dual, s mac.Scheduler, a core.Assignment, seed int64) *core.Result {
	res := core.Run(core.RunConfig{
		Dual:             d,
		Fack:             o.Fack,
		Fprog:            o.Fprog,
		Scheduler:        s,
		Seed:             seed,
		Assignment:       a,
		Automata:         core.NewBMMBFleet(d.N()),
		HaltOnCompletion: true,
		Check:            o.Check,
	})
	countSimEvents(res.Steps)
	if !res.Solved {
		panic(fmt.Sprintf("harness: BMMB failed on %s (%d/%d delivered by %v)",
			d.Name, res.Delivered, res.Required, res.End))
	}
	if res.Report != nil && !res.Report.OK() {
		panic(fmt.Sprintf("harness: model violation on %s: %v", d.Name, res.Report.Violations[0]))
	}
	return res
}

// fmmbRun executes FMMB once in the enhanced model.
func fmmbRun(o Options, d *topology.Dual, c float64, a core.Assignment, seed int64, halt bool) (*core.Result, core.FMMBConfig) {
	cfg := core.FMMBConfig{N: d.N(), K: a.K(), D: d.G.Diameter(), C: c}
	res := core.Run(core.RunConfig{
		Dual:             d,
		Fack:             o.Fack,
		Fprog:            o.Fprog,
		Scheduler:        &sched.Slot{},
		Mode:             mac.Enhanced,
		Seed:             seed,
		Assignment:       a,
		Automata:         core.NewFMMBFleet(d.N(), cfg),
		Horizon:          sim.Time(cfg.Rounds()+2) * o.Fprog,
		StepLimit:        1 << 62,
		HaltOnCompletion: halt,
		Check:            o.Check,
	})
	countSimEvents(res.Steps)
	if !res.Solved {
		panic(fmt.Sprintf("harness: FMMB failed on %s seed %d (%d/%d delivered by %v)",
			d.Name, seed, res.Delivered, res.Required, res.End))
	}
	if res.Report != nil && !res.Report.OK() {
		panic(fmt.Sprintf("harness: model violation on %s: %v", d.Name, res.Report.Violations[0]))
	}
	return res, cfg
}

// meanCompletion averages completion time over trials, varying the seed.
// Trials run on the options' worker pool; the reduction is in trial order.
func meanCompletion(o Options, run func(seed int64) sim.Time) float64 {
	return pointMeans(o, 1, func(_ int, seed int64) float64 {
		return float64(run(seed))
	})[0]
}

// ticksStr formats a tick count.
func ticksStr(v float64) string { return fmt.Sprintf("%.0f", v) }

// ratioStr formats a measured/bound ratio.
func ratioStr(measured, bound float64) string {
	return fmt.Sprintf("%.3f", measured/bound)
}
