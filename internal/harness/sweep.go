package harness

import (
	"fmt"

	"amac/internal/scenario"
	"amac/internal/sim"
)

// SweepPoint is one data point of a declarative experiment: the scenario
// spec to execute plus how to present and judge its result. Specs are the
// data; the hooks only read the executed trials.
type SweepPoint struct {
	// Spec is the scenario; RunSweep fills the model constants, seed,
	// trials and check flag from the harness options.
	Spec scenario.Spec
	// X is the sweep coordinate used for ratio-trend analysis.
	X float64
	// Cells returns the leading display cells of the row (everything
	// before the measured/bound/ratio triple).
	Cells func(r *scenario.Report) []string
	// Measure extracts the measured quantity; nil selects the mean
	// completion time over the trials.
	Measure func(r *scenario.Report) float64
	// Bound computes the paper's formula for this point; it may consult
	// the executed trials (e.g. the seed-keyed instance diameter).
	Bound func(r *scenario.Report) float64
}

// VerdictKind selects how RunSweep judges a segment's measured-vs-bound
// series.
type VerdictKind int

const (
	// VerdictUpper appends the ratio-trend shape verdict per segment (the
	// paper's upper bounds).
	VerdictUpper VerdictKind = iota
	// VerdictLower checks measured >= bound on every row of every segment
	// and appends one table-level note (the adversarial lower bounds).
	VerdictLower
	// VerdictNone appends no automatic notes.
	VerdictNone
)

// SweepSegment is a run of points sharing one verdict series.
type SweepSegment struct {
	Points []SweepPoint
}

// SweepDef is a declarative experiment: table metadata plus segments of
// scenario-spec points. RunSweep executes every (point, trial) simulation on
// the options' worker pool and renders the table; rendered output is
// byte-identical at any parallelism.
type SweepDef struct {
	ID         string
	Title      string
	PaperClaim string
	Columns    []string
	Segments   []SweepSegment
	Verdict    VerdictKind
	// FinalNotes are appended after the verdict notes.
	FinalNotes []string
}

// RunSweep executes the definition under the options and renders its table.
// Experiments are calibrated so every run must solve its instance; RunSweep
// keeps the harness's fail-fast contract by panicking on unsolved runs,
// model violations, or spec errors.
func RunSweep(o Options, def SweepDef) *Table {
	o = o.withDefaults()
	t := &Table{ID: def.ID, Title: def.Title, PaperClaim: def.PaperClaim, Columns: def.Columns}

	var specs []scenario.Spec
	for _, seg := range def.Segments {
		for _, pt := range seg.Points {
			specs = append(specs, withOptions(pt.Spec, o))
		}
	}
	sweeper := o.Sweeper
	if sweeper == nil {
		sweeper = func(_ string, specs []scenario.Spec, so scenario.SweepOptions) ([]*scenario.Report, error) {
			return scenario.SweepWithOptions(specs, so)
		}
	}
	reports, err := sweeper(def.ID, specs, scenario.SweepOptions{
		Parallelism: o.Parallelism,
		NoArena:     o.NoArena,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: %s: %v", def.ID, err))
	}
	for _, r := range reports {
		for _, tr := range r.Trials {
			countSimEvents(tr.Result.Steps)
			if !tr.Result.Solved {
				panic(fmt.Sprintf("harness: %s failed on %s (%d/%d delivered by %v)",
					r.Spec.Algorithm.Name, tr.Built.Dual.Name,
					tr.Result.Delivered, tr.Result.Required, tr.Result.End))
			}
			if tr.Result.Report != nil && !tr.Result.Report.OK() {
				panic(fmt.Sprintf("harness: model violation on %s: %v",
					tr.Built.Dual.Name, tr.Result.Report.Violations[0]))
			}
		}
	}

	lowerOK := true
	ri := 0
	for _, seg := range def.Segments {
		var sweep, meas, bnd []float64
		for _, pt := range seg.Points {
			r := reports[ri]
			ri++
			m := r.MeanCompletion()
			if pt.Measure != nil {
				m = pt.Measure(r)
			}
			b := pt.Bound(r)
			cells := pt.Cells(r)
			t.AddRow(append(cells, ticksStr(m), ticksStr(b), ratioStr(m, b))...)
			if m < b {
				lowerOK = false
			}
			sweep = append(sweep, pt.X)
			meas = append(meas, m)
			bnd = append(bnd, b)
		}
		if def.Verdict == VerdictUpper {
			verdict(t, sweep, meas, bnd)
		}
	}
	if def.Verdict == VerdictLower {
		if lowerOK {
			t.AddNote("lower bound HOLDS: every adversarial execution takes at least its formula")
		} else {
			t.AddNote("lower bound VIOLATED: some execution beat the adversarial schedule")
		}
	}
	for _, n := range def.FinalNotes {
		t.AddNote("%s", n)
	}
	return t
}

// withOptions projects the harness options into a point's spec: model
// constants, base seed, trial count and the check flag come from the
// options so one definition serves quick runs, benchmarks and full sweeps.
func withOptions(s scenario.Spec, o Options) scenario.Spec {
	s.Model.Fprog = int64(o.Fprog)
	s.Model.Fack = int64(o.Fack)
	s.Run.Seed = o.Seed
	s.Run.Trials = o.Trials
	s.Run.Check = o.Check
	return s
}

// cells returns a constant leading-cell hook.
func cells(vals ...string) func(*scenario.Report) []string {
	return func(*scenario.Report) []string { return vals }
}

// staticBound returns a constant bound hook.
func staticBound(v float64) func(*scenario.Report) float64 {
	return func(*scenario.Report) float64 { return v }
}

// meanRounds measures mean completion in Fprog rounds.
func meanRounds(fprog sim.Time) func(*scenario.Report) float64 {
	return func(r *scenario.Report) float64 {
		return r.MeanCompletion() / float64(fprog)
	}
}

// lastDiameter returns the G-diameter of the last trial's instance,
// matching the sequential harness's seed-keyed topology reporting.
func lastDiameter(r *scenario.Report) float64 {
	return float64(r.Trials[len(r.Trials)-1].Built.Dual.G.Diameter())
}
