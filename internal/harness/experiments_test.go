package harness

import (
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Quick: true, Trials: 2, Seed: 3}
}

// requireHolds fails unless every shape verdict in the table says HOLDS and
// none says VIOLATED.
func requireHolds(t *testing.T, tab *Table) {
	t.Helper()
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: empty table", tab.ID)
	}
	sawVerdict := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "VIOLATED") {
			t.Fatalf("%s: %s\n%s", tab.ID, n, tab.String())
		}
		if strings.Contains(n, "HOLDS") {
			sawVerdict = true
		}
	}
	if !sawVerdict {
		t.Fatalf("%s: no verdict note\n%s", tab.ID, tab.String())
	}
}

func TestFig1StdReliable(t *testing.T) {
	requireHolds(t, Fig1StdReliable(quickOpts()))
}

func TestFig1StdRRestricted(t *testing.T) {
	requireHolds(t, Fig1StdRRestricted(quickOpts()))
}

func TestFig1StdArbitrary(t *testing.T) {
	requireHolds(t, Fig1StdArbitrary(quickOpts()))
}

func TestFig2LowerBound(t *testing.T) {
	requireHolds(t, Fig2LowerBound(quickOpts()))
}

func TestFig1EnhGreyZone(t *testing.T) {
	requireHolds(t, Fig1EnhGreyZone(quickOpts()))
}

func TestAblationFackRatio(t *testing.T) {
	requireHolds(t, AblationFackRatio(quickOpts()))
}

func TestMISExperiment(t *testing.T) {
	tab := MISExperiment(quickOpts())
	if len(tab.Rows) == 0 {
		t.Fatal("empty MIS table")
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "VIOLATED") {
			t.Fatalf("MIS experiment: %s", n)
		}
	}
	for _, row := range tab.Rows {
		if row[3] != "true" {
			t.Fatalf("invalid MIS at n=%s", row[0])
		}
	}
}

func TestSubroutineExperiment(t *testing.T) {
	tab := SubroutineExperiment(quickOpts())
	if len(tab.Rows) == 0 {
		t.Fatal("empty subroutine table")
	}
}

func TestMessageComplexity(t *testing.T) {
	tab := MessageComplexity(quickOpts())
	if len(tab.Rows) == 0 {
		t.Fatal("empty complexity table")
	}
	for _, row := range tab.Rows {
		// The flooding invariant: BMMB broadcasts = n·k exactly.
		if row[3] != "1.00" {
			t.Fatalf("BMMB broadcast ratio %s != 1.00 (row %v)", row[3], row)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:         "x",
		Title:      "demo",
		PaperClaim: "O(1)",
		Columns:    []string{"a", "bb"},
	}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 5)
	s := tab.String()
	for _, want := range []string{"## x — demo", "paper: O(1)", "a", "bb", "note: hello 5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("row/column mismatch did not panic")
		}
	}()
	tab := &Table{Columns: []string{"a"}}
	tab.AddRow("1", "2")
}
