package harness

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"

	"amac/internal/core"
	"amac/internal/scenario"
	"amac/internal/sim"
	"amac/internal/topology"
)

// The large-n experiments are gated behind amacbench -experiments large-n:
// they push the simulator to n = 10^5 — two orders of magnitude past the
// Figure 1 sweeps — which is minutes of wall time (the FMMB run schedules
// ~n events per round over tens of thousands of rounds) and therefore has
// no place in default runs, benchmarks or the CI bench gate. They exist
// because the paper's separation only becomes visually dramatic on sparse
// networks at this scale; the flat-CSR graph core, sampled diameters and
// the streaming trace backend are what make the runs feasible at all.

// largeNDiamSamples/Seed fix the sampled-diameter parameters the large-n
// tables report — the same estimate FMMB's default schedule consumes.
const (
	largeNDiamSamples = 8
	largeNDiamSeed    = 1
)

// largeNSide returns the square side giving an n-node unit-disk rgg a
// target average degree of 4·ln n: dense enough for w.h.p. connectivity
// and a small diameter, sparse enough that m stays O(n·log n). (The
// registry's DefaultRGGSide targets log⁴n/n density, which disconnects
// at these sizes.)
func largeNSide(n int) float64 {
	deg := 4 * math.Log(float64(n))
	return math.Sqrt(math.Pi * float64(n) / deg)
}

// LargeNRGG produces the BMMB-vs-FMMB separation table on sparse random
// geometric networks up to n = 10^5 (gated: amacbench -experiments
// large-n). Both algorithms run on the same pinned draw per size; the
// crossover column reports the Fack/Fprog ratio above which BMMB's k·Fack
// term exceeds FMMB's Fack-free polylog schedule — the paper's argument
// for the enhanced model, at pod scale. BMMB rows stream their traces to
// disk through run.trace_file (the in-memory Trace is never materialized);
// the FMMB rows run no_trace, as their ~10^9 events would be gigabytes.
func LargeNRGG(o Options) *Table {
	o = o.withDefaults()
	const c = 1.6
	const k = 2
	sizes := []int{1000, 10000, 100000}
	if o.Quick {
		sizes = sizes[:2]
	}

	dir, err := os.MkdirTemp("", "amac-large-n-")
	if err != nil {
		panic(fmt.Sprintf("harness: large-n-rgg: %v", err))
	}
	defer os.RemoveAll(dir)

	var specs []scenario.Spec
	for pi, n := range sizes {
		topo := scenario.TopologySpec{Name: "rgg",
			Params: topology.Params{"n": float64(n), "side": largeNSide(n), "c": c, "p": 0.5},
			// Pin the draw per size so both algorithms see one instance.
			Seed: int64(424200 + pi)}
		workload := scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: k}
		model := scenario.ModelSpec{Fprog: int64(o.Fprog), Fack: int64(o.Fack)}
		specs = append(specs,
			scenario.Spec{
				Topology:  topo,
				Workload:  workload,
				Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
				Scheduler: scenario.SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
				Model:     model,
				Run: scenario.RunSpec{Seed: o.Seed, Trials: 1,
					TraceFile: filepath.Join(dir, fmt.Sprintf("bmmb-rgg-%d.amtr", n))},
			},
			scenario.Spec{
				Topology:  topo,
				Workload:  workload,
				Algorithm: scenario.AlgorithmSpec{Name: "fmmb", Params: topology.Params{"c": c}},
				Model:     model,
				Run:       scenario.RunSpec{Seed: o.Seed, Trials: 1, NoTrace: true},
			})
	}

	sweeper := o.Sweeper
	if sweeper == nil {
		sweeper = func(_ string, specs []scenario.Spec, so scenario.SweepOptions) ([]*scenario.Report, error) {
			return scenario.SweepWithOptions(specs, so)
		}
	}
	reports, err := sweeper("large-n-rgg", specs, scenario.SweepOptions{
		Parallelism: o.Parallelism,
		NoArena:     o.NoArena,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: large-n-rgg: %v", err))
	}

	t := &Table{
		ID:         "large-n-rgg",
		Title:      "BMMB vs FMMB separation on sparse geometric networks at scale",
		PaperClaim: "BMMB O(D·Fprog + k·Fack) vs FMMB O((D·log n + k·log n + log³n)·Fprog), Fack-free  [Figure 1]",
		Columns:    []string{"n", "D~", "edges", "bmmb-ticks", "bmmb-events", "fmmb-ticks", "fmmb-events", "crossover-Fack/Fprog"},
	}
	for pi, n := range sizes {
		bm := reports[2*pi]
		fm := reports[2*pi+1]
		var bmT, fmT sim.Time
		var bmEv, fmEv uint64
		for _, r := range []*scenario.Report{bm, fm} {
			for _, tr := range r.Trials {
				countSimEvents(tr.Result.Steps)
				if !tr.Result.Solved {
					panic(fmt.Sprintf("harness: %s failed on %s (%d/%d delivered by %v)",
						r.Spec.Algorithm.Name, tr.Built.Dual.Name,
						tr.Result.Delivered, tr.Result.Required, tr.Result.End))
				}
			}
		}
		bmT, bmEv = bm.Trials[0].Result.CompletionTime, bm.Trials[0].Result.Steps
		fmT, fmEv = fm.Trials[0].Result.CompletionTime, fm.Trials[0].Result.Steps
		g := bm.Trials[0].Built.Dual.G
		d := g.ApproxDiameter(largeNDiamSamples, largeNDiamSeed)
		// BMMB(Fack) ≈ D·Fprog + k·Fack meets FMMB's Fack-free completion
		// at Fack* = (fmmb - D·Fprog)/k; report Fack*/Fprog.
		crossover := (float64(fmT) - float64(d)*float64(o.Fprog)) / float64(k) / float64(o.Fprog)
		t.AddRow(fmt.Sprint(n), fmt.Sprint(d), fmt.Sprint(g.M()),
			fmt.Sprint(bmT), fmt.Sprint(bmEv), fmt.Sprint(fmT), fmt.Sprint(fmEv),
			fmt.Sprintf("%.0f", crossover))
	}
	t.AddNote("one trial per point on a pinned draw; both algorithms share the instance")
	t.AddNote("D~ is the sampled diameter estimate (k-source double sweep), the same input FMMB's schedule consumes")
	t.AddNote("bmmb rows stream their trace to a binary file (run.trace_file); fmmb rows run no_trace")
	t.AddNote("fmmb completion has no Fack term (pinned by ablation-bmmb-vs-fmmb): past the crossover ratio, BMMB's k·Fack term loses to FMMB's polylog schedule")
	return t
}

// LargeNGrid checks BMMB's O(D·Fprog + k·Fack) bound on reliable grids up
// to n ≈ 10^5 (gated: amacbench -experiments large-n) — the
// deterministic-topology counterpart of large-n-rgg, where the diameter is
// exact by construction (D = 2(s-1) on an s×s grid) so the bound needs no
// sampled estimate.
func LargeNGrid(o Options) *Table {
	o = o.withDefaults()
	const k = 2
	sides := []int{50, 100, 316}
	if o.Quick {
		sides = sides[:2]
	}
	var points []SweepPoint
	for _, s := range sides {
		n := s * s
		d := 2 * (s - 1)
		points = append(points, SweepPoint{
			Spec: bmmbSpec(
				scenario.TopologySpec{Name: "grid", Params: topology.Params{"n": float64(n)}},
				scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: k},
				scenario.SchedulerSpec{Name: "sync"},
			),
			X:     float64(d),
			Cells: cells(fmt.Sprint(n), fmt.Sprint(d), fmt.Sprint(k)),
			Bound: staticBound(float64(sim.Time(d)*o.Fprog + sim.Time(k)*o.Fack)),
		})
	}
	return RunSweep(o, SweepDef{
		ID:         "large-n-grid",
		Title:      "BMMB, standard model, reliable grids at scale",
		PaperClaim: "O(D·Fprog + k·Fack)  [Figure 1; bound from KLN'11]",
		Columns:    []string{"n", "D", "k", "time", "bound", "ratio"},
		Segments:   []SweepSegment{{Points: points}},
		Verdict:    VerdictUpper,
	})
}

// LargeNSharded exercises the component-sharded executor end to end on
// multi-component pods networks, serial engine versus decomposed engines.
// Unlike the gated large-n tables it is ungated and modestly sized: its
// wall time and events/sec land in the BENCH.json perf record on every
// amacbench run, so the benchdiff gate catches sharded-path throughput and
// allocation regressions exactly like serial ones. The "1==P" column is
// the correctness half: the decomposed execution must be byte-identical
// between one worker and Options.Shards workers (it is a pure function of
// the configuration), and a mismatch renders VIOLATED.
func LargeNSharded(o Options) *Table {
	o = o.withDefaults()
	shards := o.Shards
	if shards == 0 {
		shards = runtime.NumCPU()
	}
	const pods = 8
	sizes := []int{2000, 8000}
	if o.Quick {
		sizes = sizes[:1]
	}

	var specs []scenario.Spec
	for pi, n := range sizes {
		topo := scenario.TopologySpec{Name: "pods",
			Params: topology.Params{"n": float64(n), "k": float64(pods), "r": 2, "p": 0.5},
			// Pin the draw per size so all three legs see one instance.
			Seed: int64(535300 + pi)}
		workload := scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: pods}
		model := scenario.ModelSpec{Fprog: int64(o.Fprog), Fack: int64(o.Fack)}
		for _, sh := range []int{0, 1, shards} {
			specs = append(specs, scenario.Spec{
				Topology:  topo,
				Workload:  workload,
				Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
				Scheduler: scenario.SchedulerSpec{Name: "sync", Params: topology.Params{"rel": 0.5}},
				Model:     model,
				Run:       scenario.RunSpec{Seed: o.Seed, Trials: 1, Shards: sh},
			})
		}
	}

	sweeper := o.Sweeper
	if sweeper == nil {
		sweeper = func(_ string, specs []scenario.Spec, so scenario.SweepOptions) ([]*scenario.Report, error) {
			return scenario.SweepWithOptions(specs, so)
		}
	}
	reports, err := sweeper("large-n-sharded", specs, scenario.SweepOptions{
		Parallelism: o.Parallelism,
		NoArena:     o.NoArena,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: large-n-sharded: %v", err))
	}

	t := &Table{
		ID:         "large-n-sharded",
		Title:      "Component-sharded execution on multi-component pods networks",
		PaperClaim: "disconnected duals have no cross-component events: per-component executions compose exactly  [Section 2 locality]",
		Columns:    []string{"n", "pods", "serial-ticks", "sharded-ticks", "sharded-events", "shards", "1==P"},
	}
	violated := false
	for pi, n := range sizes {
		serial := reports[3*pi].Trials[0].Result
		one := reports[3*pi+1].Trials[0].Result
		many := reports[3*pi+2].Trials[0].Result
		for _, r := range []*core.Result{serial, one, many} {
			countSimEvents(r.Steps)
			if !r.Solved {
				panic(fmt.Sprintf("harness: large-n-sharded: unsolved at n=%d (%d/%d delivered)",
					n, r.Delivered, r.Required))
			}
		}
		identical := one.CompletionTime == many.CompletionTime && one.End == many.End &&
			one.Steps == many.Steps && one.Broadcasts == many.Broadcasts &&
			one.Delivered == many.Delivered
		if !identical {
			violated = true
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(pods),
			fmt.Sprint(serial.CompletionTime), fmt.Sprint(many.CompletionTime),
			fmt.Sprint(many.Steps), fmt.Sprint(shards), fmt.Sprint(identical))
	}
	if violated {
		t.AddNote("VIOLATED: decomposed execution differs between 1 worker and the sharded pool — determinism broken")
	} else {
		t.AddNote("decomposed runs are byte-identical at any worker count; serial and sharded ticks differ legitimately (per-component scheduler streams)")
	}
	note := fmt.Sprintf("sharded legs ran with shards=%d on %d CPU(s); wall time (in the perf record) is what benchdiff gates", shards, runtime.NumCPU())
	t.AddNote("%s", note)
	return t
}
