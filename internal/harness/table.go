// Package harness regenerates the paper's evaluation: each experiment in
// this package corresponds to one cell of the results table (Figure 1), one
// lower-bound construction (Figure 2), or one subroutine lemma, and prints
// the measured series next to the paper's bound formula. The harness
// verifies *shape* — bounded measured/bound ratios for upper bounds,
// measured ≥ formula for lower bounds — never absolute constants, since the
// substrate is a simulator rather than the authors' testbed.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (e.g.
	// "fig1-std-rrestricted").
	ID string
	// Title describes the experiment.
	Title string
	// PaperClaim is the bound or theorem being reproduced.
	PaperClaim string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows, one cell per column.
	Rows [][]string
	// Notes carries verdicts and fit summaries.
	Notes []string
}

// AddRow appends a data row; the cell count must match the columns.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("harness: row with %d cells for %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned ASCII plus its notes.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(w, "paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
