package harness

import (
	"sync/atomic"

	"amac/internal/par"
)

// ParallelFor runs fn(i) for every i in [0, n) using up to p concurrent
// workers and returns when all have finished; p <= 1 (or n <= 1) runs
// inline. Work is handed out through an atomic index, so the set of indices
// executed is exactly [0, n) at any parallelism. A panic in any worker is
// re-raised in the caller once the pool drains. The implementation lives in
// package par, shared with the scenario runner.
func ParallelFor(p, n int, fn func(i int)) { par.For(p, n, fn) }

// collectTrials evaluates run for every (point, trial) pair of a sweep on
// the options' worker pool and returns results[point][trial]. Each task is
// an independent deterministic simulation keyed by its seed, so the matrix
// is a pure function of (Options, run) regardless of Parallelism; callers
// must reduce it in index order to keep rendered tables byte-identical to a
// sequential run.
func collectTrials[T any](o Options, points int, run func(point int, seed int64) T) [][]T {
	out := make([][]T, points)
	for p := range out {
		out[p] = make([]T, o.Trials)
	}
	ParallelFor(o.Parallelism, points*o.Trials, func(i int) {
		p, tr := i/o.Trials, i%o.Trials
		out[p][tr] = run(p, o.Seed+int64(tr))
	})
	return out
}

// pointMeans evaluates run across the sweep and returns the per-point trial
// means, reduced in deterministic index order.
func pointMeans(o Options, points int, run func(point int, seed int64) float64) []float64 {
	vals := collectTrials(o, points, run)
	means := make([]float64, points)
	for p := range vals {
		var sum float64
		for _, v := range vals[p] {
			sum += v
		}
		means[p] = sum / float64(o.Trials)
	}
	return means
}

// simEvents accumulates simulation steps across all runs the harness
// performs, for machine-readable throughput reporting (cmd/amacbench).
var simEvents atomic.Uint64

// countSimEvents is called by the run helpers with each finished
// execution's step count.
func countSimEvents(steps uint64) { simEvents.Add(steps) }

// SimEvents returns the total number of simulation events processed by
// harness-driven runs since process start (or the last ResetSimEvents).
func SimEvents() uint64 { return simEvents.Load() }

// ResetSimEvents zeroes the SimEvents counter.
func ResetSimEvents() { simEvents.Store(0) }
