package harness

import (
	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/mac"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

// runMIS executes the standalone MIS subroutine and returns the resulting
// set, the time of the last membership decision, and the schedule length in
// rounds.
func runMIS(o Options, d *topology.Dual, c float64, seed int64) (set []graph.NodeID, decideAt sim.Time, totalRounds int) {
	cfg := core.MISConfig{N: d.N(), C: c}
	autos := core.NewMISFleet(d.N(), cfg)
	eng := mac.NewEngine(mac.Config{
		Dual:      d,
		Fack:      o.Fack,
		Fprog:     o.Fprog,
		Scheduler: &sched.Slot{},
		Mode:      mac.Enhanced,
		Seed:      seed,
	}, autos)
	eng.Watch(func(ev sim.TraceEvent) {
		if ev.Kind == "mis-join" || ev.Kind == "mis-covered" {
			decideAt = ev.At
		}
	})
	eng.Start()
	eng.Sim().SetHorizon(sim.Time(cfg.Rounds()+2) * o.Fprog)
	eng.Run()
	countSimEvents(eng.Sim().Steps())
	for i, a := range autos {
		if a.(*core.MISNode).InMIS() {
			set = append(set, graph.NodeID(i))
		}
	}
	return set, decideAt, cfg.Rounds()
}

// runStages executes a full FMMB run and reports per-stage usage:
// gather periods until every message is MIS-owned vs. the gather budget,
// and spread rounds until full dissemination vs. the spread budget.
func runStages(o Options, d *topology.Dual, c float64, a core.Assignment, seed int64) (gatherUsed, gatherBudget, spreadUsed, spreadBudget float64) {
	cfg := core.FMMBConfig{N: d.N(), K: a.K(), D: d.G.Diameter(), C: c}
	rc := cfg.Resolved()
	autos := core.NewFMMBFleet(d.N(), cfg)

	gatherStart := sim.Time(rc.MIS.Rounds()) * o.Fprog
	spreadStart := gatherStart + sim.Time(3*rc.GatherPeriods)*o.Fprog

	var lastOwn, lastDeliver sim.Time
	ownCount := make(map[core.Msg]bool, a.K())
	eng := mac.NewEngine(mac.Config{
		Dual:      d,
		Fack:      o.Fack,
		Fprog:     o.Fprog,
		Scheduler: &sched.Slot{},
		Mode:      mac.Enhanced,
		Seed:      seed,
	}, autos)
	eng.Watch(func(ev sim.TraceEvent) {
		switch ev.Kind {
		case "gather-own":
			m := ev.Value().(core.Msg)
			if !ownCount[m] {
				ownCount[m] = true
				lastOwn = ev.At
			}
		case core.DeliverKind:
			lastDeliver = ev.At
		}
	})
	eng.Start()
	for v, msgs := range a {
		for _, m := range msgs {
			eng.Arrive(mac.NodeID(v), m.Payload(), 0)
		}
	}
	eng.Sim().SetHorizon(sim.Time(rc.Rounds()+2) * o.Fprog)
	eng.Sim().SetStepLimit(1 << 62)
	eng.Run()
	countSimEvents(eng.Sim().Steps())

	// Messages injected directly at MIS nodes are owned from the start;
	// only gather hand-overs move lastOwn.
	if lastOwn > gatherStart {
		gatherUsed = float64(lastOwn-gatherStart) / float64(3*o.Fprog)
	}
	gatherBudget = float64(rc.GatherPeriods)
	if lastDeliver > spreadStart {
		spreadUsed = float64(lastDeliver-spreadStart) / float64(o.Fprog)
	}
	spreadBudget = float64(rc.SpreadPhases * rc.SpreadPeriods * 3)
	return gatherUsed, gatherBudget, spreadUsed, spreadBudget
}
