package harness

import (
	"fmt"
	"math/rand"

	"amac/internal/core"
	"amac/internal/metrics"
	"amac/internal/sched"
	"amac/internal/topology"
)

// MessageComplexity compares the broadcast economy of the two algorithms on
// the same grey-zone instances: BMMB performs exactly n broadcasts per
// message (every node forwards once), while FMMB concentrates traffic on
// the MIS backbone but pays for its randomized schedule in control
// broadcasts (election, announcements, polls, relays). The paper optimizes
// time, not messages; this ablation quantifies the trade so downstream
// users can see what FMMB's speed costs in traffic.
func MessageComplexity(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "ablation-message-complexity",
		Title:      "Broadcast counts: BMMB vs FMMB on the same instances",
		PaperClaim: "not bounded in the paper — FMMB trades control traffic for Fack-free time",
		Columns: []string{"n", "k", "BMMB-bcasts", "BMMB/n·k", "FMMB-bcasts",
			"FMMB-aborted", "FMMB-grey-rcv"},
	}
	const c = 1.6
	type pt struct {
		n    int
		side float64
		k    int
	}
	pts := []pt{{16, 2.6, 2}, {25, 3.3, 3}, {36, 4.2, 4}}
	if o.Quick {
		pts = pts[:2]
	}
	type trial struct {
		bB, fB, fAbort, fGrey float64
	}
	res := collectTrials(o, len(pts), func(pi int, seed int64) trial {
		p := pts[pi]
		rng := rand.New(rand.NewSource(seed * 7907))
		d := topology.ConnectedRandomGeometric(p.n, p.side, c, 0.5, rng, 200)
		if d == nil {
			panic("harness: no connected geometric instance")
		}
		a := core.Singleton(d.N(), sources(d.N(), p.k))

		// Run BMMB to quiescence (not just completion) so trailing
		// re-broadcasts are counted: the flooding invariant is about
		// the whole execution.
		bres := core.Run(core.RunConfig{
			Dual:       d,
			Fack:       o.Fack,
			Fprog:      o.Fprog,
			Scheduler:  &sched.Contention{Rel: sched.Bernoulli{P: 0.5}},
			Seed:       seed,
			Assignment: a,
			Automata:   core.NewBMMBFleet(d.N()),
			Check:      o.Check,
		})
		countSimEvents(bres.Steps)
		if !bres.Solved {
			panic("harness: BMMB failed in complexity experiment")
		}

		fres, _ := fmmbRun(o, d, c, a, seed, true)
		fm := metrics.Collect(d, fres.Engine.Instances(), fres.Engine.Trace())
		return trial{
			bB:     float64(bres.Broadcasts),
			fB:     float64(fm.TotalInstances),
			fAbort: float64(fm.Aborted),
			fGrey:  float64(fm.GreyDeliveries),
		}
	})
	for pi, p := range pts {
		var bB, fB, fAbort, fGrey float64
		for _, tr := range res[pi] {
			bB += tr.bB
			fB += tr.fB
			fAbort += tr.fAbort
			fGrey += tr.fGrey
		}
		tr := float64(o.Trials)
		bB, fB, fAbort, fGrey = bB/tr, fB/tr, fAbort/tr, fGrey/tr
		t.AddRow(fmt.Sprint(p.n), fmt.Sprint(p.k),
			ticksStr(bB), fmt.Sprintf("%.2f", bB/float64(p.n*p.k)),
			ticksStr(fB), ticksStr(fAbort), ticksStr(fGrey))
	}
	t.AddNote("BMMB/n·k = 1.00 confirms the flooding invariant: every node forwards every message exactly once")
	t.AddNote("FMMB's broadcast count is dominated by its randomized control schedule, the price of Fack-free time")
	return t
}
