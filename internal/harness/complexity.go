package harness

import (
	"fmt"

	"amac/internal/metrics"
	"amac/internal/scenario"
	"amac/internal/topology"
)

// MessageComplexity compares the broadcast economy of the two algorithms on
// the same grey-zone instances: BMMB performs exactly n broadcasts per
// message (every node forwards once), while FMMB concentrates traffic on
// the MIS backbone but pays for its randomized schedule in control
// broadcasts (election, announcements, polls, relays). The paper optimizes
// time, not messages; this ablation quantifies the trade so downstream
// users can see what FMMB's speed costs in traffic.
func MessageComplexity(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "ablation-message-complexity",
		Title:      "Broadcast counts: BMMB vs FMMB on the same instances",
		PaperClaim: "not bounded in the paper — FMMB trades control traffic for Fack-free time",
		Columns: []string{"n", "k", "BMMB-bcasts", "BMMB/n·k", "FMMB-bcasts",
			"FMMB-aborted", "FMMB-grey-rcv"},
	}
	const c = 1.6
	type pt struct {
		n    int
		side float64
		k    int
	}
	pts := []pt{{16, 2.6, 2}, {25, 3.3, 3}, {36, 4.2, 4}}
	if o.Quick {
		pts = pts[:2]
	}
	type trial struct {
		bB, fB, fAbort, fGrey float64
	}
	model := scenario.ModelSpec{Fprog: int64(o.Fprog), Fack: int64(o.Fack)}
	res := collectTrials(o, len(pts), func(pi int, seed int64) trial {
		p := pts[pi]
		topo := scenario.TopologySpec{Name: "rgg",
			Params:     topology.Params{"n": float64(p.n), "side": p.side, "c": c, "p": 0.5},
			SeedFactor: 7907}
		workload := scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: p.k}
		// Both algorithms run on the same seed-keyed instance.
		built, err := scenario.BuildTopology(scenario.Spec{Topology: topo}, seed)
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}

		// Run BMMB to quiescence (not just completion) so trailing
		// re-broadcasts are counted: the flooding invariant is about
		// the whole execution.
		bm := mustTrialOn(scenario.Spec{
			Topology:  topo,
			Workload:  workload,
			Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
			Scheduler: scenario.SchedulerSpec{Name: "contention", Params: topology.Params{"rel": 0.5}},
			Model:     model,
			Run:       scenario.RunSpec{Check: o.Check, ToQuiescence: true},
		}, seed, built)

		fm := mustTrialOn(scenario.Spec{
			Topology:  topo,
			Workload:  workload,
			Algorithm: scenario.AlgorithmSpec{Name: "fmmb", Params: topology.Params{"c": c}},
			Model:     model,
			Run:       scenario.RunSpec{Check: o.Check},
		}, seed, built)
		fmm := metrics.Collect(fm.Built.Dual, fm.Result.Engine.Instances(), fm.Result.Trace)
		return trial{
			bB:     float64(bm.Result.Broadcasts),
			fB:     float64(fmm.TotalInstances),
			fAbort: float64(fmm.Aborted),
			fGrey:  float64(fmm.GreyDeliveries),
		}
	})
	for pi, p := range pts {
		var bB, fB, fAbort, fGrey float64
		for _, tr := range res[pi] {
			bB += tr.bB
			fB += tr.fB
			fAbort += tr.fAbort
			fGrey += tr.fGrey
		}
		tr := float64(o.Trials)
		bB, fB, fAbort, fGrey = bB/tr, fB/tr, fAbort/tr, fGrey/tr
		t.AddRow(fmt.Sprint(p.n), fmt.Sprint(p.k),
			ticksStr(bB), fmt.Sprintf("%.2f", bB/float64(p.n*p.k)),
			ticksStr(fB), ticksStr(fAbort), ticksStr(fGrey))
	}
	t.AddNote("BMMB/n·k = 1.00 confirms the flooding invariant: every node forwards every message exactly once")
	t.AddNote("FMMB's broadcast count is dominated by its randomized control schedule, the price of Fack-free time")
	return t
}
