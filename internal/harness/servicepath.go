package harness

import (
	"fmt"
	"net/http/httptest"
	"os"

	"amac/internal/jobs"
	"amac/internal/scenario"
	"amac/internal/topology"
)

// ServicePath measures the amacd service path end to end: a loopback
// daemon (jobs.Store + HTTP handler) receives a small sweep, shards and
// executes it, and the client polls the result back — the same
// submit-to-result round trip amacsim/amacbench -server users pay. The
// experiment's wall time lands in the BENCH.json perf record, so benchdiff
// gates service-layer regressions (job hashing, checkpoint I/O, HTTP
// marshalling, report reconstruction) exactly like engine ones. The table
// itself verifies the merged remote reports are byte-equivalent to the
// in-process sweep — the correctness half of the service contract.
func ServicePath(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		ID:         "amacd-service-path",
		Title:      "amacd submit-to-result service path on a loopback daemon",
		PaperClaim: "",
		Columns:    []string{"sweep", "specs", "trials", "remote==local"},
	}

	// The sweep is deliberately small: the point is the service overhead
	// around the simulations, not the simulations themselves.
	var specs []scenario.Spec
	sizes := []int{8, 16, 32}
	if o.Quick {
		sizes = sizes[:2]
	}
	for _, n := range sizes {
		specs = append(specs, scenario.Spec{
			Name:      fmt.Sprintf("svc-line-%d", n),
			Topology:  scenario.TopologySpec{Name: "line", Params: topology.Params{"n": float64(n)}},
			Workload:  scenario.WorkloadSpec{Kind: scenario.WorkloadSingleSource, K: 2, Origin: 0},
			Algorithm: scenario.AlgorithmSpec{Name: "bmmb"},
			Scheduler: scenario.SchedulerSpec{Name: "sync"},
			Model:     scenario.ModelSpec{Fprog: int64(o.Fprog), Fack: int64(o.Fack)},
			Run:       scenario.RunSpec{Seed: o.Seed, Trials: o.Trials},
		})
	}

	dir, err := os.MkdirTemp("", "amac-service-path-")
	if err != nil {
		panic(fmt.Sprintf("harness: amacd-service-path: %v", err))
	}
	defer os.RemoveAll(dir)
	store, err := jobs.Open(dir, o.Parallelism)
	if err != nil {
		panic(fmt.Sprintf("harness: amacd-service-path: %v", err))
	}
	defer store.Close()
	srv := httptest.NewServer(jobs.NewHandler(store))
	defer srv.Close()
	client := &jobs.Client{Base: srv.URL}

	remote, err := client.RunSpecs("amacd-service-path", specs)
	if err != nil {
		panic(fmt.Sprintf("harness: amacd-service-path: %v", err))
	}
	local, err := scenario.SweepWithOptions(specs, scenario.SweepOptions{Parallelism: o.Parallelism})
	if err != nil {
		panic(fmt.Sprintf("harness: amacd-service-path: %v", err))
	}

	match := true
	trials := 0
	for i := range specs {
		if len(remote[i].Trials) != len(local[i].Trials) {
			match = false
			continue
		}
		for j, rt := range remote[i].Trials {
			lt := local[i].Trials[j]
			countSimEvents(rt.Result.Steps)
			trials++
			if rt.Result.Solved != lt.Result.Solved ||
				rt.Result.CompletionTime != lt.Result.CompletionTime ||
				rt.Result.Steps != lt.Result.Steps ||
				rt.Seed != lt.Seed {
				match = false
			}
		}
	}
	t.AddRow("line/bmmb", fmt.Sprint(len(specs)), fmt.Sprint(trials), fmt.Sprint(match))
	if !match {
		t.AddNote("VIOLATED: remote reports diverge from the in-process sweep")
	} else {
		t.AddNote("remote reports reconstruct byte-equivalently; wall time (in the perf record) is the service overhead benchdiff gates")
	}
	return t
}
