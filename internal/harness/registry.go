package harness

// Experiment is one registered evaluation experiment: a stable identifier
// and a runner from harness options to a rendered table.
type Experiment struct {
	ID string
	// Gate names the opt-in group of a gated experiment. Ungated
	// experiments ("") run by default; gated ones run only when the
	// caller enables their group (amacbench -experiments large-n),
	// keeping minute-to-hour-scale sweeps out of default runs and CI.
	Gate string
	Run  func(Options) *Table
}

// Experiments returns every registered experiment in canonical order — the
// order cmd/amacbench prints and EXPERIMENTS.md records.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1-std-reliable", "", Fig1StdReliable},
		{"fig1-std-rrestricted", "", Fig1StdRRestricted},
		{"fig1-std-arbitrary", "", Fig1StdArbitrary},
		{"fig1-std-greyzone-lb", "", Fig2LowerBound},
		{"fig1-std-greyzone-rand", "", Fig1StdGreyZoneRand},
		{"fig1-enh-greyzone", "", Fig1EnhGreyZone},
		{"ablation-bmmb-vs-fmmb", "", AblationFackRatio},
		{"mis-subroutine", "", MISExperiment},
		{"gather-spread-subroutines", "", SubroutineExperiment},
		{"ablation-message-complexity", "", MessageComplexity},
		{"amacd-service-path", "", ServicePath},
		{"large-n-sharded", "", LargeNSharded},
		{"large-n-rgg", "large-n", LargeNRGG},
		{"large-n-grid", "large-n", LargeNGrid},
	}
}
