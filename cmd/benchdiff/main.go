// Command benchdiff compares two amacbench perf records (BENCH.json) and
// fails when any experiment's throughput or per-event allocation regressed
// past the threshold — the CI regression gate. It matches experiments by
// id, reports events/sec and allocs/event side by side, and exits non-zero
// on a regression or on an experiment that disappeared from the new record.
//
// Usage:
//
//	benchdiff -base old/BENCH.json -new BENCH.json [-threshold 0.15] [-min-wall 0.05]
//
// Experiments whose wall time fell below -min-wall seconds in either record
// have their events/sec reported but not gated: at millisecond scale,
// events/sec measures the scheduler, not the simulator. Allocations per
// event are deterministic at any speed and are gated regardless (baselines
// recorded before the per-op fields existed carry zeros there and are not
// alloc-gated). An experiment missing from the new record fails the gate
// regardless.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"amac/internal/perfrecord"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its process edges injected, so tests can drive the gate
// end-to-end: 0 = within threshold, 1 = regression or unreadable record,
// 2 = usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	base := fs.String("base", "", "baseline perf record (required)")
	next := fs.String("new", "", "candidate perf record (required)")
	threshold := fs.Float64("threshold", 0.15, "maximum tolerated events/sec drop or allocs/event growth as a fraction (0.15 = 15%)")
	minWall := fs.Float64("min-wall", 0.05, "minimum wall seconds (in both records) for an experiment to be gated rather than just reported")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *base == "" || *next == "" {
		fmt.Fprintln(stderr, "benchdiff: both -base and -new are required")
		fs.Usage()
		return 2
	}
	if *threshold < 0 || *threshold >= 1 {
		fmt.Fprintf(stderr, "benchdiff: -threshold must be in [0, 1), got %g\n", *threshold)
		return 2
	}

	bf, err := perfrecord.Load(*base)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 1
	}
	nf, err := perfrecord.Load(*next)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 1
	}
	if bf.Quick != nf.Quick || bf.Trials != nf.Trials || bf.Seed != nf.Seed ||
		bf.Parallelism != nf.Parallelism || bf.NoArena != nf.NoArena {
		fmt.Fprintf(stdout, "note: records were taken under different options — throughput deltas may reflect configuration, not code\n"+
			"  base: quick=%v trials=%d seed=%d parallel=%d no-arena=%v\n"+
			"  new:  quick=%v trials=%d seed=%d parallel=%d no-arena=%v\n",
			bf.Quick, bf.Trials, bf.Seed, bf.Parallelism, bf.NoArena,
			nf.Quick, nf.Trials, nf.Seed, nf.Parallelism, nf.NoArena)
	}

	deltas := perfrecord.Compare(bf, nf)
	if len(deltas) == 0 {
		fmt.Fprintf(stderr, "benchdiff: baseline %s contains no experiments\n", *base)
		return 1
	}
	fmt.Fprintf(stdout, "%-28s %14s %14s %8s %12s %12s %8s\n",
		"experiment", "base ev/s", "new ev/s", "ratio", "base alloc/op", "new alloc/op", "ratio")
	regressed := 0
	for _, d := range deltas {
		switch {
		case d.Missing:
			fmt.Fprintf(stdout, "%-28s %14.0f %14s %8s %12s %12s %8s  MISSING from new record\n",
				d.ID, d.BaseEventsPerSec, "-", "-", "-", "-", "-")
			regressed++
			continue
		case d.Noisy(*minWall):
			// Wall time too short to judge events/sec; per-event allocation
			// is deterministic at any speed, so it is still gated below.
			fmt.Fprintf(stdout, "%-28s %14.0f %14.0f %8.3f %12.2f %12.2f %8.3f  ev/s not gated (ran < %.0fms)\n",
				d.ID, d.BaseEventsPerSec, d.NewEventsPerSec, d.Ratio,
				d.BaseAllocsPerOp, d.NewAllocsPerOp, d.AllocRatio, *minWall*1000)
		case d.Regressed(*threshold):
			fmt.Fprintf(stdout, "%-28s %14.0f %14.0f %8.3f %12.2f %12.2f %8.3f  REGRESSION (> %.0f%% ev/s drop)\n",
				d.ID, d.BaseEventsPerSec, d.NewEventsPerSec, d.Ratio,
				d.BaseAllocsPerOp, d.NewAllocsPerOp, d.AllocRatio, *threshold*100)
			regressed++
		default:
			fmt.Fprintf(stdout, "%-28s %14.0f %14.0f %8.3f %12.2f %12.2f %8.3f  ok\n",
				d.ID, d.BaseEventsPerSec, d.NewEventsPerSec, d.Ratio,
				d.BaseAllocsPerOp, d.NewAllocsPerOp, d.AllocRatio)
		}
		if d.AllocRegressed(*threshold) {
			fmt.Fprintf(stdout, "%-28s %14s %14s %8s %12.2f %12.2f %8.3f  ALLOC REGRESSION (> %.0f%% more allocs/event)\n",
				d.ID, "", "", "", d.BaseAllocsPerOp, d.NewAllocsPerOp, d.AllocRatio, *threshold*100)
			regressed++
		}
	}
	if regressed > 0 {
		fmt.Fprintf(stdout, "\nbenchdiff: %d of %d experiments regressed past the %.0f%% threshold\n",
			regressed, len(deltas), *threshold*100)
		return 1
	}
	fmt.Fprintf(stdout, "\nbenchdiff: all %d experiments within the %.0f%% threshold\n",
		len(deltas), *threshold*100)
	return 0
}
