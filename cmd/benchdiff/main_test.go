package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"amac/internal/perfrecord"
)

// writeRecord marshals a perf record into dir and returns its path.
func writeRecord(t *testing.T, dir, name string, f perfrecord.File) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// rec builds an experiment sample from its gate-relevant axes. SimEvents is
// fixed so allocs translate to allocs/op directly.
func rec(id string, evPerSec, wall, allocsPerOp float64) perfrecord.Record {
	r := perfrecord.Record{
		ID:           id,
		WallSeconds:  wall,
		SimEvents:    1000,
		EventsPerSec: evPerSec,
		Allocs:       uint64(allocsPerOp * 1000),
		AllocBytes:   uint64(allocsPerOp * 16000),
	}
	r.Normalize()
	return r
}

// runDiff invokes the gate over two records and returns (exit code, stdout).
func runDiff(t *testing.T, base, next perfrecord.File, extra ...string) (int, string) {
	t.Helper()
	dir := t.TempDir()
	args := append([]string{
		"-base", writeRecord(t, dir, "base.json", base),
		"-new", writeRecord(t, dir, "new.json", next),
	}, extra...)
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String() + stderr.String()
}

func file(recs ...perfrecord.Record) perfrecord.File {
	return perfrecord.File{Trials: 3, Seed: 1, Parallelism: 4, Experiments: recs}
}

// TestThresholdEdges pins the gate boundary: Regressed uses a strict
// ratio < 1-threshold, so a drop of exactly the threshold passes and any
// drop beyond it fails.
func TestThresholdEdges(t *testing.T) {
	base := file(rec("exp", 1000, 1.0, 50))
	cases := []struct {
		name     string
		newEvSec float64
		want     int
	}{
		{"unchanged", 1000, 0},
		{"improved", 1400, 0},
		{"exactly at threshold", 850, 0}, // ratio 0.85 == 1-0.15: not < , passes
		{"just past threshold", 849, 1},
		{"halved", 500, 1},
	}
	for _, tc := range cases {
		code, out := runDiff(t, base, file(rec("exp", tc.newEvSec, 1.0, 50)))
		if code != tc.want {
			t.Errorf("%s: exit %d, want %d\n%s", tc.name, code, tc.want, out)
		}
		if tc.want == 1 && !strings.Contains(out, "REGRESSION") {
			t.Errorf("%s: regression not reported:\n%s", tc.name, out)
		}
	}

	// A custom -threshold moves the edge.
	if code, out := runDiff(t, base, file(rec("exp", 849, 1.0, 50)), "-threshold", "0.30"); code != 0 {
		t.Errorf("15%% drop failed a 30%% gate (exit %d):\n%s", code, out)
	}
	if code, _ := runDiff(t, base, file(rec("exp", 950, 1.0, 50)), "-threshold", "0.01"); code != 1 {
		t.Error("5% drop passed a 1% gate")
	}
}

// TestMissingExperimentFails pins that a silently dropped experiment fails
// the gate regardless of threshold.
func TestMissingExperimentFails(t *testing.T) {
	base := file(rec("kept", 1000, 1.0, 50), rec("dropped", 1000, 1.0, 50))
	code, out := runDiff(t, base, file(rec("kept", 1000, 1.0, 50)), "-threshold", "0.99")
	if code != 1 {
		t.Fatalf("missing experiment exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "MISSING from new record") {
		t.Fatalf("missing experiment not reported:\n%s", out)
	}
	// New-only experiments cannot regress and are ignored.
	code, out = runDiff(t, file(rec("kept", 1000, 1.0, 50)), base)
	if code != 0 {
		t.Fatalf("extra new experiment exited %d, want 0\n%s", code, out)
	}
}

// TestAllocRegressionGate pins the allocation gate: allocs/event growth past
// the threshold fails even when throughput held, and zero-alloc baselines
// (records predating the per-op fields) never alloc-gate.
func TestAllocRegressionGate(t *testing.T) {
	base := file(rec("exp", 1000, 1.0, 50))
	code, out := runDiff(t, base, file(rec("exp", 1000, 1.0, 60)))
	if code != 1 || !strings.Contains(out, "ALLOC REGRESSION") {
		t.Fatalf("20%% alloc growth: exit %d\n%s", code, out)
	}
	// Exactly at 1+threshold passes (strict >).
	if code, out := runDiff(t, base, file(rec("exp", 1000, 1.0, 57.5))); code != 0 {
		t.Fatalf("alloc growth exactly at threshold: exit %d\n%s", code, out)
	}
	// Fewer allocations pass.
	if code, _ := runDiff(t, base, file(rec("exp", 1000, 1.0, 10))); code != 0 {
		t.Error("alloc improvement failed the gate")
	}
	// Legacy baseline without per-op fields: alloc growth is ungated.
	legacy := perfrecord.Record{ID: "exp", WallSeconds: 1.0, SimEvents: 1000, EventsPerSec: 1000}
	if code, out := runDiff(t, file(legacy), file(rec("exp", 1000, 1.0, 500))); code != 0 {
		t.Fatalf("legacy baseline alloc-gated: exit %d\n%s", code, out)
	}
}

// TestNoiseFloor pins -min-wall: millisecond-scale runs report throughput
// without gating it, but their allocation gate still applies.
func TestNoiseFloor(t *testing.T) {
	base := file(rec("fast", 1000, 0.002, 50))
	code, out := runDiff(t, base, file(rec("fast", 100, 0.002, 50)))
	if code != 0 {
		t.Fatalf("millisecond-scale throughput drop gated: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "ev/s not gated") {
		t.Fatalf("noise floor not reported:\n%s", out)
	}
	// Either side below the floor suffices.
	if code, _ := runDiff(t, file(rec("fast", 1000, 1.0, 50)), file(rec("fast", 100, 0.002, 50))); code != 0 {
		t.Error("new-side noise gated")
	}
	// Allocations stay gated below the noise floor.
	if code, out := runDiff(t, base, file(rec("fast", 1000, 0.002, 90))); code != 1 || !strings.Contains(out, "ALLOC REGRESSION") {
		t.Fatalf("alloc regression under noise floor: exit %d\n%s", code, out)
	}
	// -min-wall 0 gates everything.
	if code, _ := runDiff(t, base, file(rec("fast", 100, 0.002, 50)), "-min-wall", "0"); code != 1 {
		t.Error("-min-wall 0 did not gate a millisecond-scale drop")
	}
}

// TestUsageAndLoadErrors pins the exit-code contract: 2 for usage errors,
// 1 for unreadable or empty records.
func TestUsageAndLoadErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-base", "only.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("missing -new exited %d, want 2", code)
	}
	if code := run([]string{"-nonsense"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
	dir := t.TempDir()
	good := writeRecord(t, dir, "good.json", file(rec("exp", 1000, 1.0, 50)))
	if code := run([]string{"-base", good, "-new", good, "-threshold", "1.5"}, &stdout, &stderr); code != 2 {
		t.Errorf("out-of-range threshold exited %d, want 2", code)
	}
	if code := run([]string{"-base", filepath.Join(dir, "absent.json"), "-new", good}, &stdout, &stderr); code != 1 {
		t.Errorf("unreadable baseline exited %d, want 1", code)
	}
	empty := writeRecord(t, dir, "empty.json", perfrecord.File{})
	if code := run([]string{"-base", empty, "-new", good}, &stdout, &stderr); code != 1 {
		t.Errorf("empty baseline exited %d, want 1", code)
	}
}
