package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// writeScenario dumps the flag-assembled ring scenario to a temp file, the
// same way a user graduates a flag invocation into a scenario file.
func writeScenario(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(append(args, "-dump"), &buf); err != nil {
		t.Fatalf("dump: %v", err)
	}
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScenarioFileRuns(t *testing.T) {
	path := writeScenario(t, "-topology", "ring", "-n", "12", "-k", "2")
	var out bytes.Buffer
	if err := run([]string{"-scenario", path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "solved     : true") {
		t.Fatalf("report missing solved line:\n%s", out.String())
	}
}

// TestScenarioContentFlagConflicts pins the conflict contract: a scenario
// *content* flag given alongside -scenario must error instead of being
// silently ignored (the file, not the flag, owns the scenario contents).
func TestScenarioContentFlagConflicts(t *testing.T) {
	path := writeScenario(t, "-topology", "ring", "-n", "12", "-k", "2")
	for _, args := range [][]string{
		{"-scenario", path, "-topology", "line"},
		{"-scenario", path, "-n", "64"},
		{"-scenario", path, "-alg", "fmmb"},
		{"-scenario", path, "-sched", "random"},
		{"-scenario", path, "-rel", "0.9"},
		{"-scenario", path, "-fprog", "20"},
		{"-scenario", path, "-fack", "400"},
	} {
		var out bytes.Buffer
		err := run(args, &out)
		if err == nil {
			t.Errorf("args %v: want conflict error, got success", args[2:])
			continue
		}
		if !strings.Contains(err.Error(), "conflicts with -scenario") {
			t.Errorf("args %v: error %q does not name the conflict", args[2:], err)
		}
	}
}

// TestScenarioRunOptionFlagsMerge pins the documented precedence: run-option
// flags (seed, trials, parallel, check) override the file, so one saved
// scenario serves quick looks and Monte-Carlo runs.
func TestScenarioRunOptionFlagsMerge(t *testing.T) {
	path := writeScenario(t, "-topology", "ring", "-n", "12", "-k", "2")
	var out bytes.Buffer
	if err := run([]string{"-scenario", path, "-trials", "3", "-seed", "9", "-parallel", "2"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	rep := out.String()
	if !strings.Contains(rep, "trials     : 3 seeds starting at 9") {
		t.Fatalf("run options not merged over the file:\n%s", rep)
	}
}

func TestScenarioExplicitZeroSeedRejected(t *testing.T) {
	path := writeScenario(t, "-topology", "ring", "-n", "12", "-k", "2")
	var out bytes.Buffer
	err := run([]string{"-scenario", path, "-seed", "0"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-seed must be non-zero") {
		t.Fatalf("want explicit-zero-seed error, got %v", err)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	var first bytes.Buffer
	if err := run([]string{"-topology", "ring", "-n", "12", "-k", "2", "-dump"}, &first); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rt.json")
	if err := os.WriteFile(path, first.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := run([]string{"-scenario", path, "-dump"}, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("dump of a loaded scenario diverged:\n%s\nvs\n%s", first.String(), second.String())
	}
}

// TestReadTraceDecodesStreamedRun drives the full streaming loop a large-n
// user runs: a scenario with run.trace_file, then -read-trace over the file
// it produced. The summary must report the events of that execution, and
// the flag must refuse to combine with -scenario.
func TestReadTraceDecodesStreamedRun(t *testing.T) {
	dir := t.TempDir()
	path := writeScenario(t, "-topology", "ring", "-n", "12", "-k", "2", "-check=false")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pattern := filepath.Join(dir, "ring.amtr")
	patched := strings.Replace(string(raw), `"run": {`,
		`"run": {"trace_file": `+strconv.Quote(pattern)+`, `, 1)
	if err := os.WriteFile(path, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-scenario", path}, &out); err != nil {
		t.Fatalf("streamed run: %v\n%s", err, out.String())
	}

	out.Reset()
	traceFile := filepath.Join(dir, "ring.s1.amtr")
	if err := run([]string{"-read-trace", traceFile}, &out); err != nil {
		t.Fatalf("read-trace: %v\n%s", err, out.String())
	}
	for _, want := range []string{"events     : ", "bcast", "deliver"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, out.String())
		}
	}

	if err := run([]string{"-read-trace", traceFile, "-scenario", path}, &out); err == nil {
		t.Fatal("-read-trace with -scenario accepted")
	}
}
