// Command amacsim runs a single multi-message broadcast scenario on a
// chosen network, algorithm and scheduler, and reports completion metrics
// and (optionally) the model-compliance report and the event trace.
//
// Scenarios are declarative: the flags assemble a scenario.Spec resolved
// through the topology/scheduler/algorithm registries, and -scenario runs an
// arbitrary saved spec from a JSON file (see the scenarios/ directory),
// including combinations no flag set expresses. -dump prints the assembled
// spec instead of running it, which is how a flag invocation graduates into
// a scenario file.
//
// Examples:
//
//	amacsim -topology line -n 32 -k 4 -alg bmmb -sched sync
//	amacsim -topology rgg -n 50 -k 3 -alg fmmb
//	amacsim -topology parallel-lines -n 16 -alg bmmb -sched adversary -trace
//	amacsim -topology line -n 64 -alg bmmb -trials 16 -parallel 8
//	amacsim -scenario scenarios/grid-online-flaky.json
//	amacsim -scenario scenarios/quickstart.json -server http://localhost:7437
//	amacsim -topology ring -n 48 -k 3 -dump > scenarios/my-ring.json
//	amacsim -scenario scenarios/large-n-rgg.json && amacsim -read-trace large-n-rgg.s1.amtr
//
// A scenario with run.trace_file streams each trial's trace to a binary
// file instead of RAM (the large-n path); -read-trace decodes such a file,
// printing a per-kind summary, or the full rendered trace with -trace.
//
// -server submits the scenario as a job to a running amacd daemon and
// renders the merged result; the report is byte-identical to the in-process
// run because executions are pure functions of (spec, seed).
//
// With -trials > 1 the same configuration is replayed across consecutive
// seeds on a worker pool (-parallel), reporting per-seed completions in
// seed order plus the aggregate — a quick Monte-Carlo mode.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"amac/internal/check"
	"amac/internal/core"
	"amac/internal/jobs"
	"amac/internal/metrics"
	"amac/internal/scenario"
	"amac/internal/sim"
	"amac/internal/topology"
)

// errUsage signals a flag-parse failure whose message the FlagSet already
// printed; main must not print it again.
var errUsage = errors.New("usage")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "amacsim: %v\n", err)
		os.Exit(1)
	}
}

// run parses args, resolves the scenario and executes it, writing the report
// to out. It is main minus the process boundary, so tests drive it directly
// with a fresh flag set per call.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("amacsim", flag.ContinueOnError)
	var (
		scenarioPath = fs.String("scenario", "", "run a saved scenario spec (JSON file) instead of assembling one from flags")
		dump         = fs.Bool("dump", false, "print the assembled scenario spec as JSON and exit")
		topo         = fs.String("topology", "line", "registered topology: line | ring | star | grid | tree | rgg | rline | pods | noisy-line | grid-crosstalk | parallel-lines | star-choke")
		n            = fs.Int("n", 32, "number of nodes (grid uses the nearest square)")
		k            = fs.Int("k", 2, "number of MMB messages")
		r            = fs.Int("r", 2, "restriction radius for -topology rline")
		algName      = fs.String("alg", "bmmb", "registered algorithm: bmmb | fmmb")
		sname        = fs.String("sched", "", "registered scheduler: sync | random | contention | slot | adversary (default: the algorithm's)")
		rel          = fs.Float64("rel", 0.5, "unreliable-link delivery probability for sync/random/contention")
		span         = fs.Int64("span", 0, "online mode: spread arrivals over the first span ticks (bmmb only)")
		fprog        = fs.Int64("fprog", 10, "progress bound in ticks")
		fack         = fs.Int64("fack", 200, "acknowledgment bound in ticks")
		seed         = fs.Int64("seed", 1, "random seed")
		trials       = fs.Int("trials", 1, "replay the run across this many consecutive seeds")
		par          = fs.Int("parallel", runtime.NumCPU(), "worker pool size for -trials > 1")
		doCheck      = fs.Bool("check", true, "verify the abstract MAC layer guarantees")
		shards       = fs.Int("shards", 0, "worker count for the component-sharded executor (0 = legacy serial engine)")
		stats        = fs.Bool("stats", false, "print per-node and per-message metrics")
		trace        = fs.Bool("trace", false, "dump the event trace")
		cGrey        = fs.Float64("c", 1.6, "grey zone constant for -topology rgg")
		server       = fs.String("server", "", "submit the scenario to an amacd daemon at this base URL instead of running in-process")
		readTrace    = fs.String("read-trace", "", "decode a binary trace file (written via a scenario's trace_file) and print a summary; -trace dumps every event")
	)
	switch err := fs.Parse(args); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		// Usage was already printed; -h is a successful invocation.
		return nil
	default:
		// The FlagSet printed the error and usage; just set the exit code.
		return errUsage
	}

	if *readTrace != "" {
		if *scenarioPath != "" || *server != "" {
			return fmt.Errorf("-read-trace decodes an existing file and cannot combine with -scenario or -server")
		}
		return readTraceFile(*readTrace, out, *trace)
	}

	var spec scenario.Spec
	if *scenarioPath != "" {
		loaded, err := scenario.Load(*scenarioPath)
		if err != nil {
			return err
		}
		spec = loaded
		// Explicitly set run-option flags override the file, so one saved
		// scenario serves quick looks and long Monte-Carlo runs. Scenario
		// *content* flags conflict with the file and error rather than
		// being silently ignored.
		var conflict error
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed":
				if *seed == 0 && conflict == nil {
					conflict = fmt.Errorf("-seed must be non-zero (0 is the spec-level \"use the default\" sentinel)")
				}
				spec.Run.Seed = *seed
			case "trials":
				spec.Run.Trials = *trials
			case "parallel":
				spec.Run.Parallelism = *par
			case "check":
				spec.Run.Check = *doCheck
			case "shards":
				spec.Run.Shards = *shards
			case "scenario", "dump", "stats", "trace", "server":
				// Orthogonal to the spec contents.
			default:
				if conflict == nil {
					conflict = fmt.Errorf("-%s conflicts with -scenario: edit the file (or -dump a fresh one) instead", f.Name)
				}
			}
		})
		if conflict != nil {
			return conflict
		}
	} else {
		var err error
		spec, err = specFromFlags(*topo, *n, *k, *r, *algName, *sname, *rel, *span,
			*fprog, *fack, *seed, *trials, *doCheck, *cGrey)
		if err != nil {
			return err
		}
		spec.Run.Shards = *shards
	}

	if *dump {
		buf, err := spec.JSON()
		if err != nil {
			return err
		}
		out.Write(buf)
		return nil
	}
	if spec.Run.Parallelism == 0 {
		spec.Run.Parallelism = *par
	}

	if *server != "" {
		// Remote execution ships scalar trial records; the engine (and with
		// it the trace and per-node metrics) stays on the daemon.
		if *stats || *trace {
			return fmt.Errorf("-stats and -trace need the in-process engine and cannot combine with -server")
		}
		client := &jobs.Client{Base: *server}
		reports, err := client.RunSpecs(spec.Name, []scenario.Spec{spec})
		if err != nil {
			return err
		}
		return printReport(out, reports[0], false, false)
	}

	report, err := scenario.Run(spec)
	if err != nil {
		return err
	}
	return printReport(out, report, *stats, *trace)
}

// readTraceFile streams a binary trace from disk (never holding it in
// memory — large-n traces outgrow RAM by design) and prints either every
// rendered event (dump) or a per-kind summary with the covered time span.
func readTraceFile(path string, out io.Writer, dump bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := sim.NewTraceReader(f)
	if err != nil {
		return err
	}
	kinds := map[string]int{}
	var order []string
	total := 0
	var last sim.Time
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("%s: event %d: %w", path, total, err)
		}
		if dump {
			fmt.Fprintln(out, ev.String())
		}
		if kinds[ev.Kind] == 0 {
			order = append(order, ev.Kind) // first-seen order, matching the interning
		}
		kinds[ev.Kind]++
		total++
		last = ev.At
	}
	fmt.Fprintf(out, "trace      : %s\n", path)
	fmt.Fprintf(out, "events     : %d spanning [0, %d] ticks\n", total, int64(last))
	for _, k := range order {
		fmt.Fprintf(out, "  %-8s : %d\n", k, kinds[k])
	}
	return nil
}

// specFromFlags assembles the declarative scenario the legacy flag set
// describes.
func specFromFlags(topo string, n, k, r int, algName, sname string, rel float64,
	span, fprog, fack, seed int64, trials int, doCheck bool, cGrey float64) (scenario.Spec, error) {

	if seed == 0 {
		return scenario.Spec{}, fmt.Errorf("-seed must be non-zero (0 is the spec-level \"use the default\" sentinel)")
	}
	spec := scenario.Spec{
		Algorithm: scenario.AlgorithmSpec{Name: algName},
		Model:     scenario.ModelSpec{Fprog: fprog, Fack: fack},
		// Parallelism is set by the caller at run time, not here: dumped
		// scenario files must not bake in this machine's core count.
		Run: scenario.RunSpec{
			Seed:      seed,
			Trials:    trials,
			Check:     doCheck,
			StepLimit: 1 << 62,
		},
	}

	// Topology: the network is pinned by the base seed (trials vary only
	// the execution randomness), matching amacsim's historical behavior.
	spec.Topology = scenario.TopologySpec{Name: topo, Seed: seed}
	workload := scenario.WorkloadSpec{Kind: scenario.WorkloadSingleton, K: k}
	switch topo {
	case "line", "ring", "star", "tree", "grid":
		spec.Topology.Params = topology.Params{"n": float64(n)}
	case "rgg":
		spec.Topology.Params = topology.Params{
			"n": float64(n), "side": topology.DefaultRGGSide(n), "c": cGrey, "p": 0.5,
			"max-tries": 500,
		}
	case "rline":
		spec.Topology.Params = topology.Params{"n": float64(n), "r": float64(r), "p": 0.6}
	case "pods":
		// One pod per message: k disjoint r-restricted lines, the
		// component-sharded executor's native workload.
		spec.Topology.Params = topology.Params{"n": float64(n), "k": float64(k), "r": float64(r), "p": 0.6}
	case "noisy-line":
		spec.Topology.Params = topology.Params{"n": float64(n), "extra": float64(n)}
	case "grid-crosstalk":
		spec.Topology.Params = topology.Params{"n": float64(n), "r": float64(r), "p": 0.5}
	case "parallel-lines":
		spec.Topology.Params = topology.Params{"d": float64(n / 2)}
		workload = scenario.WorkloadSpec{Kind: scenario.WorkloadConstruction}
	case "star-choke":
		spec.Topology.Params = topology.Params{"k": float64(k)}
		workload = scenario.WorkloadSpec{Kind: scenario.WorkloadConstruction}
	default:
		return scenario.Spec{}, fmt.Errorf("unknown topology %q (registered: %v)", topo, topology.Names())
	}

	if algName == "fmmb" {
		spec.Algorithm.Params = topology.Params{"c": cGrey}
	}

	if span > 0 {
		if algName != "bmmb" {
			return scenario.Spec{}, fmt.Errorf("-span (online arrivals) requires -alg bmmb: FMMB's staged schedule expects time-zero arrivals")
		}
		workload = scenario.WorkloadSpec{Kind: scenario.WorkloadPoisson, K: k, Span: span}
	}
	spec.Workload = workload

	if sname != "" {
		spec.Scheduler = scenario.SchedulerSpec{Name: sname}
		switch sname {
		case "sync", "random", "contention":
			spec.Scheduler.Params = topology.Params{"rel": rel}
		}
	} else if algName == "bmmb" {
		// The flag default has always been Sync with Bernoulli(rel).
		spec.Scheduler = scenario.SchedulerSpec{Name: "sync", Params: topology.Params{"rel": rel}}
	}
	return spec, nil
}

// printReport renders the scenario outcome in amacsim's report format.
func printReport(out io.Writer, rep *scenario.Report, stats, trace bool) error {
	spec := rep.Spec
	first := rep.Trials[0]
	d := first.Built.Dual
	alg, _ := core.LookupAlgorithm(spec.Algorithm.Name)

	fmt.Fprintf(out, "network    : %s (n=%d, D=%d, |E|=%d, |E'\\E|=%d)\n",
		d.Name, d.N(), d.G.Diameter(), d.G.M(), len(d.UnreliableEdges()))
	if spec.Workload.Kind == scenario.WorkloadPoisson {
		fmt.Fprintf(out, "workload   : k=%d messages arriving online over the first %d ticks\n",
			first.Workload.K(), spec.Workload.Span)
	} else {
		fmt.Fprintf(out, "workload   : k=%d messages at time zero\n", first.Workload.K())
	}
	fmt.Fprintf(out, "algorithm  : %s (%s model)\n", spec.Algorithm.Name, alg.Mode)
	fmt.Fprintf(out, "scheduler  : %s\n", first.SchedulerName)
	fmt.Fprintf(out, "bounds     : Fprog=%d Fack=%d ticks\n", spec.Model.Fprog, spec.Model.Fack)

	if len(rep.Trials) > 1 {
		return printTrials(out, rep)
	}

	res := first.Result
	fprog, fack := float64(spec.Model.Fprog), float64(spec.Model.Fack)
	fmt.Fprintf(out, "solved     : %v (%d/%d deliveries)\n", res.Solved, res.Delivered, res.Required)
	if res.Solved {
		fmt.Fprintf(out, "completion : %d ticks (= %.1f Fprog, %.2f Fack)\n",
			int64(res.CompletionTime),
			float64(res.CompletionTime)/fprog,
			float64(res.CompletionTime)/fack)
	}
	fmt.Fprintf(out, "broadcasts : %d instances over %d simulation events\n", res.Broadcasts, res.Steps)
	if res.Report != nil {
		printCheckReport(out, res.Report)
	}
	if len(res.MMBViolations) > 0 {
		fmt.Fprintf(out, "MMB violations: %v\n", res.MMBViolations)
	}
	if stats {
		if res.Engine == nil {
			return fmt.Errorf("-stats needs the per-instance records the decomposed executor does not retain (drop -shards)")
		}
		m := metrics.Collect(d, res.Engine.Instances(), res.Trace)
		fmt.Fprint(out, m.String())
	}
	if trace {
		if res.Trace == nil {
			return fmt.Errorf("-trace needs the in-memory trace (run with trace mode %q)", core.TraceMemory)
		}
		fmt.Fprint(out, res.Trace.String())
	}
	if !res.Solved {
		return fmt.Errorf("MMB not solved within the horizon")
	}
	return nil
}

// printTrials renders the Monte-Carlo report: per-seed summaries in seed
// order plus the aggregate. Each run is an independent deterministic
// simulation, so the report is identical at any parallelism.
func printTrials(out io.Writer, rep *scenario.Report) error {
	spec := rep.Spec
	fmt.Fprintf(out, "trials     : %d seeds starting at %d, %d workers\n",
		spec.Run.Trials, spec.Run.Seed, spec.Run.Parallelism)
	solved := 0
	var sum, worst float64
	var steps uint64
	for _, tr := range rep.Trials {
		res := tr.Result
		status := "solved"
		if !res.Solved {
			status = "UNSOLVED"
		}
		fmt.Fprintf(out, "  seed %-5d: %s in %d ticks (%d/%d deliveries, %d events)\n",
			tr.Seed, status, int64(res.CompletionTime), res.Delivered, res.Required, res.Steps)
		if res.Solved {
			solved++
			sum += float64(res.CompletionTime)
			if float64(res.CompletionTime) > worst {
				worst = float64(res.CompletionTime)
			}
		}
		steps += res.Steps
		if res.Report != nil && !res.Report.OK() {
			return fmt.Errorf("seed %d: model violation: %v", tr.Seed, res.Report.Violations[0])
		}
	}
	if solved == 0 {
		fmt.Fprintf(out, "aggregate  : 0/%d solved, %d events total\n", spec.Run.Trials, steps)
		return fmt.Errorf("all %d trials unsolved", spec.Run.Trials)
	}
	fack := float64(spec.Model.Fack)
	fmt.Fprintf(out, "aggregate  : %d/%d solved, mean completion %.1f ticks (%.2f Fack), worst %.0f, %d events total\n",
		solved, spec.Run.Trials, sum/float64(solved), sum/float64(solved)/fack, worst, steps)
	if solved != spec.Run.Trials {
		return fmt.Errorf("%d of %d trials unsolved", spec.Run.Trials-solved, spec.Run.Trials)
	}
	return nil
}

func printCheckReport(out io.Writer, rep *check.Report) {
	if rep.OK() {
		fmt.Fprintln(out, "model check: all guarantees hold (receive/ack correctness, termination, Fack bound, Fprog bound)")
		return
	}
	fmt.Fprintf(out, "model check: %d violations\n", len(rep.Violations))
	for i, v := range rep.Violations {
		if i == 5 {
			fmt.Fprintf(out, "  ... and %d more\n", len(rep.Violations)-5)
			break
		}
		fmt.Fprintf(out, "  %s\n", v.Error())
	}
}
