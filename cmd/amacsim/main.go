// Command amacsim runs a single multi-message broadcast execution on a
// chosen network, algorithm and scheduler, and reports completion metrics
// and (optionally) the model-compliance report and the event trace.
//
// Examples:
//
//	amacsim -topology line -n 32 -k 4 -alg bmmb -sched sync
//	amacsim -topology rgg -n 50 -k 3 -alg fmmb
//	amacsim -topology parallel-lines -n 16 -alg bmmb -sched adversary -trace
//	amacsim -topology line -n 64 -alg bmmb -trials 16 -parallel 8
//
// With -trials > 1 the same configuration is replayed across consecutive
// seeds on a worker pool (-parallel), reporting per-seed completions in
// seed order plus the aggregate — a quick Monte-Carlo mode.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"amac/internal/check"
	"amac/internal/core"
	"amac/internal/graph"
	"amac/internal/harness"
	"amac/internal/mac"
	"amac/internal/metrics"
	"amac/internal/sched"
	"amac/internal/sim"
	"amac/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "amacsim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topo    = flag.String("topology", "line", "line | ring | star | grid | tree | rgg | rline | noisy-line | parallel-lines | star-choke")
		n       = flag.Int("n", 32, "number of nodes (grid uses the nearest square)")
		k       = flag.Int("k", 2, "number of MMB messages")
		r       = flag.Int("r", 2, "restriction radius for -topology rline")
		algName = flag.String("alg", "bmmb", "bmmb | fmmb")
		sname   = flag.String("sched", "", "sync | random | contention | slot | adversary (default: sync for bmmb, slot for fmmb)")
		rel     = flag.Float64("rel", 0.5, "unreliable-link delivery probability for sync/random/contention")
		span    = flag.Int64("span", 0, "online mode: spread arrivals over the first span ticks (bmmb only)")
		fprog   = flag.Int64("fprog", 10, "progress bound in ticks")
		fack    = flag.Int64("fack", 200, "acknowledgment bound in ticks")
		seed    = flag.Int64("seed", 1, "random seed")
		trials  = flag.Int("trials", 1, "replay the run across this many consecutive seeds")
		par     = flag.Int("parallel", runtime.NumCPU(), "worker pool size for -trials > 1")
		doCheck = flag.Bool("check", true, "verify the abstract MAC layer guarantees")
		stats   = flag.Bool("stats", false, "print per-node and per-message metrics")
		trace   = flag.Bool("trace", false, "dump the event trace")
		cGrey   = flag.Float64("c", 1.6, "grey zone constant for -topology rgg")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var d *topology.Dual
	var plc *topology.ParallelLinesC
	switch *topo {
	case "line":
		d = topology.Line(*n)
	case "ring":
		d = topology.Ring(*n)
	case "star":
		d = topology.Star(*n)
	case "grid":
		side := 1
		for (side+1)*(side+1) <= *n {
			side++
		}
		d = topology.Grid(side, side)
	case "tree":
		d = topology.CompleteBinaryTree(*n)
	case "rgg":
		side := 0.72 * float64(*n) / float64(Log2i(*n)*Log2i(*n)+1)
		if side < 2 {
			side = 2
		}
		d = topology.ConnectedRandomGeometric(*n, side, *cGrey, 0.5, rng, 500)
		if d == nil {
			return fmt.Errorf("no connected random geometric instance for n=%d", *n)
		}
	case "rline":
		d = topology.LineRRestricted(*n, *r, 0.6, rng)
	case "noisy-line":
		d = topology.ArbitraryNoise(topology.Line(*n).G, *n, rng, "noisy-line")
	case "parallel-lines":
		plc = topology.NewParallelLinesC(*n / 2)
		d = plc.Dual
	case "star-choke":
		sc := topology.NewStarChoke(*k)
		d = sc.Dual
	default:
		return fmt.Errorf("unknown topology %q", *topo)
	}

	// Workload.
	var a core.Assignment
	switch *topo {
	case "parallel-lines":
		a = make(core.Assignment, d.N())
		a[plc.A(1)] = []core.Msg{{ID: 0, Origin: plc.A(1)}}
		a[plc.B(1)] = []core.Msg{{ID: 1, Origin: plc.B(1)}}
		*k = 2
	case "star-choke":
		sc := topology.NewStarChoke(*k)
		a = make(core.Assignment, d.N())
		for i := 1; i < *k; i++ {
			v := sc.Source(i)
			a[v] = []core.Msg{{ID: i - 1, Origin: v}}
		}
		a[sc.Hub()] = []core.Msg{{ID: *k - 1, Origin: sc.Hub()}}
	default:
		origins := make([]graph.NodeID, *k)
		for i := range origins {
			origins[i] = graph.NodeID(i * d.N() / *k)
		}
		a = core.Singleton(d.N(), origins)
	}

	// Algorithm + scheduler. Automata and schedulers are stateful, so the
	// builders below construct a fresh set per execution (the Monte-Carlo
	// mode replays the configuration across seeds on a worker pool).
	mode := mac.Standard
	var newAutomata func() []mac.Automaton
	var horizon sim.Time
	switch *algName {
	case "bmmb":
		newAutomata = func() []mac.Automaton { return core.NewBMMBFleet(d.N()) }
		if *sname == "" {
			*sname = "sync"
		}
	case "fmmb":
		cfg := core.FMMBConfig{N: d.N(), K: *k, D: d.G.Diameter(), C: *cGrey}
		newAutomata = func() []mac.Automaton { return core.NewFMMBFleet(d.N(), cfg) }
		mode = mac.Enhanced
		horizon = sim.Time(cfg.Rounds()+2) * sim.Time(*fprog)
		if *sname == "" {
			*sname = "slot"
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *algName)
	}

	var newSched func() mac.Scheduler
	switch *sname {
	case "sync":
		newSched = func() mac.Scheduler { return &sched.Sync{Rel: sched.Bernoulli{P: *rel}} }
	case "random":
		newSched = func() mac.Scheduler { return &sched.Random{Rel: sched.Bernoulli{P: *rel}} }
	case "contention":
		newSched = func() mac.Scheduler { return &sched.Contention{Rel: sched.Bernoulli{P: *rel}} }
	case "slot":
		newSched = func() mac.Scheduler { return &sched.Slot{} }
	case "adversary":
		if plc == nil {
			return fmt.Errorf("-sched adversary requires -topology parallel-lines")
		}
		m0 := core.Msg{ID: 0, Origin: plc.A(1)}
		m1 := core.Msg{ID: 1, Origin: plc.B(1)}
		newSched = func() mac.Scheduler {
			return &sched.ParallelLines{
				Net:  plc,
				IsM0: func(p any) bool { return p == m0 },
				IsM1: func(p any) bool { return p == m1 },
			}
		}
	default:
		return fmt.Errorf("unknown scheduler %q", *sname)
	}

	var workload *core.Workload
	if *span > 0 {
		if *algName != "bmmb" {
			return fmt.Errorf("-span (online arrivals) requires -alg bmmb: FMMB's staged schedule expects time-zero arrivals")
		}
		workload = core.PoissonWorkload(d.N(), *k, sim.Time(*span), *seed)
		a = make(core.Assignment, d.N())
	}
	runOnce := func(sd int64) *core.Result {
		return core.Run(core.RunConfig{
			Dual:             d,
			Fack:             sim.Time(*fack),
			Fprog:            sim.Time(*fprog),
			Scheduler:        newSched(),
			Mode:             mode,
			Seed:             sd,
			Assignment:       a,
			Workload:         workload,
			Automata:         newAutomata(),
			Horizon:          horizon,
			StepLimit:        1 << 62,
			HaltOnCompletion: true,
			Check:            *doCheck,
		})
	}

	fmt.Printf("network    : %s (n=%d, D=%d, |E|=%d, |E'\\E|=%d)\n",
		d.Name, d.N(), d.G.Diameter(), d.G.M(), len(d.UnreliableEdges()))
	if workload != nil {
		fmt.Printf("workload   : k=%d messages arriving online over the first %d ticks\n",
			workload.K(), *span)
	} else {
		fmt.Printf("workload   : k=%d messages at time zero\n", a.K())
	}
	fmt.Printf("algorithm  : %s (%s model)\n", *algName, mode)
	fmt.Printf("scheduler  : %s\n", newSched().Name())
	fmt.Printf("bounds     : Fprog=%d Fack=%d ticks\n", *fprog, *fack)

	if *trials > 1 {
		return runTrials(*trials, *par, *seed, sim.Time(*fack), runOnce)
	}

	res := runOnce(*seed)
	fmt.Printf("solved     : %v (%d/%d deliveries)\n", res.Solved, res.Delivered, res.Required)
	if res.Solved {
		fmt.Printf("completion : %d ticks (= %.1f Fprog, %.2f Fack)\n",
			int64(res.CompletionTime),
			float64(res.CompletionTime)/float64(*fprog),
			float64(res.CompletionTime)/float64(*fack))
	}
	fmt.Printf("broadcasts : %d instances over %d simulation events\n", res.Broadcasts, res.Steps)
	if res.Report != nil {
		printReport(res.Report)
	}
	if len(res.MMBViolations) > 0 {
		fmt.Printf("MMB violations: %v\n", res.MMBViolations)
	}
	if *stats {
		rep := metrics.Collect(d, res.Engine.Instances(), res.Engine.Trace())
		fmt.Print(rep.String())
	}
	if *trace {
		fmt.Print(res.Engine.Trace().String())
	}
	if !res.Solved {
		return fmt.Errorf("MMB not solved within the horizon")
	}
	return nil
}

// runTrials replays the configured execution across trials consecutive
// seeds on a worker pool of size par, printing per-seed summaries in seed
// order plus the aggregate. Each run is an independent deterministic
// simulation, so the report is identical at any parallelism.
func runTrials(trials, par int, seed int64, fack sim.Time, runOnce func(int64) *core.Result) error {
	fmt.Printf("trials     : %d seeds starting at %d, %d workers\n", trials, seed, par)
	results := make([]*core.Result, trials)
	harness.ParallelFor(par, trials, func(i int) {
		results[i] = runOnce(seed + int64(i))
	})
	solved := 0
	var sum, worst float64
	var steps uint64
	for i, res := range results {
		status := "solved"
		if !res.Solved {
			status = "UNSOLVED"
		}
		fmt.Printf("  seed %-5d: %s in %d ticks (%d/%d deliveries, %d events)\n",
			seed+int64(i), status, int64(res.CompletionTime), res.Delivered, res.Required, res.Steps)
		if res.Solved {
			solved++
			sum += float64(res.CompletionTime)
			if float64(res.CompletionTime) > worst {
				worst = float64(res.CompletionTime)
			}
		}
		steps += res.Steps
		if res.Report != nil && !res.Report.OK() {
			return fmt.Errorf("seed %d: model violation: %v", seed+int64(i), res.Report.Violations[0])
		}
	}
	if solved == 0 {
		fmt.Printf("aggregate  : 0/%d solved, %d events total\n", trials, steps)
		return fmt.Errorf("all %d trials unsolved", trials)
	}
	fmt.Printf("aggregate  : %d/%d solved, mean completion %.1f ticks (%.2f Fack), worst %.0f, %d events total\n",
		solved, trials, sum/float64(solved), sum/float64(solved)/float64(fack), worst, steps)
	if solved != trials {
		return fmt.Errorf("%d of %d trials unsolved", trials-solved, trials)
	}
	return nil
}

func printReport(rep *check.Report) {
	if rep.OK() {
		fmt.Println("model check: all guarantees hold (receive/ack correctness, termination, Fack bound, Fprog bound)")
		return
	}
	fmt.Printf("model check: %d violations\n", len(rep.Violations))
	for i, v := range rep.Violations {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(rep.Violations)-5)
			break
		}
		fmt.Printf("  %s\n", v.Error())
	}
}

// Log2i returns ⌈log₂ n⌉ with a floor of 1, for sizing heuristics.
func Log2i(n int) int {
	l := core.Log2Ceil(n)
	if l < 1 {
		l = 1
	}
	return l
}
